(* figures — regenerate the paper's schedule figures as ASCII Gantt charts.

   Usage: dune exec bin/figures.exe [-- fig1 fig2 ...]   (default: all)

   The paper's figures are illustrations of algorithm output shapes rather
   than measured data; each command below builds an instance with the same
   structure as the figure's caption, runs the corresponding algorithm,
   verifies the result with the exact checker, and renders it. The
   EXPERIMENTS.md table records the structural properties asserted here. *)

open Bss_util
open Bss_instances
open Bss_core

let tee_guides tee =
  [
    ("T/4", Rat.div_int tee 4);
    ("T/2", Rat.div_int tee 2);
    ("3T/4", Rat.mul_int (Rat.div_int tee 4) 3);
    ("T", tee);
    ("3T/2", Rat.mul_int (Rat.div_int tee 2) 3);
  ]

let banner title = Printf.printf "\n=== %s ===\n" title

let render ~variant ~tee inst sched =
  Checker.check_exn variant inst sched;
  print_endline (Render.gantt ~width:72 ~guides:(tee_guides tee) inst sched);
  Printf.printf "makespan %s <= 3/2 T = %s\n" (Rat.to_string (Schedule.makespan sched))
    (Rat.to_string (Rat.mul_int (Rat.div_int tee 2) 3))

(* Figure 1: splittable algorithm, 4 expensive + 4 cheap classes. *)
let fig1 () =
  banner "Figure 1: splittable 3/2-dual, I_exp = {a,b,c,d}, I_chp = {e,f,g,h}";
  let inst =
    Instance.make ~m:10
      ~setups:[| 12; 13; 11; 14; 3; 4; 2; 5 |]
      ~jobs:
        [|
          (0, 14); (0, 13); (1, 9); (1, 8); (2, 6); (3, 11);
          (4, 7); (4, 6); (5, 9); (6, 4); (7, 8); (7, 2);
        |]
  in
  let tee = Rat.of_int 26 in
  (* 1(a): only the expensive classes wrapped (steps 1) — shown by running
     the dual on the expensive-only sub-instance. *)
  let exp_only =
    Instance.make ~m:10 ~setups:[| 12; 13; 11; 14 |]
      ~jobs:[| (0, 14); (0, 13); (1, 9); (1, 8); (2, 6); (3, 11) |]
  in
  print_endline "(a) after step 1 — every expensive class on its own beta_i machines:";
  (match Splittable_dual.run exp_only tee with
  | Dual.Accepted s -> render ~variant:Variant.Splittable ~tee exp_only s
  | Dual.Rejected r -> Format.printf "unexpected: %a@." Dual.pp_rejection r);
  print_endline "(b) after step 2 — cheap classes wrapped into the leftovers:";
  match Splittable_dual.run inst tee with
  | Dual.Accepted s -> render ~variant:Variant.Splittable ~tee inst s
  | Dual.Rejected r -> Format.printf "unexpected: %a@." Dual.pp_rejection r

(* Figure 2: Algorithm 2 on a nice instance, I+exp = {a, b}. *)
let nice_instance () =
  Instance.make ~m:7
    ~setups:[| 10; 9; 9; 8; 4; 1 |]
    ~jobs:
      [|
        (0, 6); (0, 6); (0, 6) (* I+exp: s+P = 28 >= 16, s+tmax = 16 <= T *);
        (1, 4); (1, 4) (* I+exp: s+P = 17 >= 16 *);
        (2, 2) (* I-exp: 11 <= 12 *);
        (3, 3) (* I-exp: 11 <= 12 *);
        (4, 6); (4, 2); (5, 8); (5, 1);
      |]

let fig2 () =
  banner "Figure 2: Algorithm 2 (nice instance), alpha'-machines for I+exp";
  let inst = nice_instance () in
  let tee = Rat.of_int 16 in
  match Pmtn_nice.run_instance inst tee with
  | Dual.Accepted s -> render ~variant:Variant.Preemptive ~tee inst s
  | Dual.Rejected r -> Format.printf "rejected: %a@." Dual.pp_rejection r

(* Figures 3/4/9: Algorithm 3 with large machines and the knapsack. *)
let general_instance () =
  Instance.make ~m:5
    ~setups:[| 13; 12; 3; 2; 1 |]
    ~jobs:
      [|
        (0, 2) (* I0exp at T=16: 3/4T < 15 < T *);
        (1, 2) (* I0exp: 14 *);
        (2, 7); (2, 6); (2, 2) (* I-chp with big jobs (3+7, 3+6 > 8) *);
        (3, 7); (3, 3) (* I-chp, big job 2+7 > 8 *);
        (4, 5); (4, 4); (4, 2) (* plain cheap *);
      |]

let fig3_4_9 () =
  banner "Figures 3, 4, 9: Algorithm 3 — large machines, knapsack, K at the bottom";
  let inst = general_instance () in
  let tee = Rat.of_int 16 in
  match Pmtn_dual.run inst tee with
  | Dual.Accepted s ->
    render ~variant:Variant.Preemptive ~tee inst s;
    print_endline "large machines carry their I0exp class from T/2 up; K pieces sit below T/2."
  | Dual.Rejected r -> Format.printf "rejected: %a@." Dual.pp_rejection r

(* Figure 5: the gamma-mode modification used by preemptive class jumping. *)
let fig5 () =
  banner "Figure 5: gamma-mode step 1 (T/2 gaps above each setup)";
  let inst = nice_instance () in
  let tee = Rat.of_int 16 in
  match Pmtn_nice.run_instance ~mode:Pmtn_nice.Gamma inst tee with
  | Dual.Accepted s -> render ~variant:Variant.Preemptive ~tee inst s
  | Dual.Rejected r -> Format.printf "rejected (gamma mode is stricter): %a@." Dual.pp_rejection r

(* Figure 6: anatomy of a wrap template. *)
let fig6 () =
  banner "Figure 6: a wrap template (4 gaps) and a wrapped sequence";
  let inst = Instance.make ~m:4 ~setups:[| 2 |] ~jobs:[| (0, 6); (0, 5); (0, 7); (0, 4) |] in
  let omega =
    Bss_wrap.Template.make
      [
        { Bss_wrap.Template.machine = 0; lo = Rat.of_int 2; hi = Rat.of_int 9 };
        { Bss_wrap.Template.machine = 1; lo = Rat.of_int 4; hi = Rat.of_int 10 };
        { Bss_wrap.Template.machine = 2; lo = Rat.of_int 3; hi = Rat.of_int 8 };
        { Bss_wrap.Template.machine = 3; lo = Rat.of_int 5; hi = Rat.of_int 12 };
      ]
  in
  let sched = Schedule.create 4 in
  let q = Bss_wrap.Sequence.of_classes inst [ 0 ] in
  let _ = Bss_wrap.Wrap.wrap inst sched q omega in
  Checker.check_exn Variant.Splittable inst sched;
  Printf.printf "S(omega) = %s, L(Q) = %s\n"
    (Rat.to_string (Bss_wrap.Template.span omega))
    (Rat.to_string (Bss_wrap.Sequence.load inst q));
  print_endline (Render.gantt ~width:72 inst sched)

(* Figure 7: the 2-approximation's next-fit with border repair, m = c = 5. *)
let fig7 () =
  banner "Figure 7: 2-approx next-fit with threshold T_min (m = c = 5)";
  let inst =
    Instance.make ~m:5
      ~setups:[| 3; 4; 2; 5; 3 |]
      ~jobs:
        [|
          (0, 6); (0, 5); (1, 7); (1, 4); (2, 6); (2, 5); (3, 8); (3, 3); (4, 7); (4, 4);
        |]
  in
  let s = Two_approx.nonpreemptive inst in
  Checker.check_exn Variant.Nonpreemptive inst s;
  let tmin = Lower_bounds.t_min Variant.Nonpreemptive inst in
  print_endline
    (Render.gantt ~width:72
       ~guides:[ ("Tmin", tmin); ("2Tmin", Rat.mul_int tmin 2) ]
       inst s);
  Printf.printf "makespan %s <= 2 T_min = %s\n" (Rat.to_string (Schedule.makespan s))
    (Rat.to_string (Rat.mul_int tmin 2))

(* Figure 8: Lemma 11's large-machine normal form: content from T/2 up. *)
let fig8 () =
  banner "Figure 8: large-machine normal form (content parked at T/2)";
  let inst = general_instance () in
  let tee = Rat.of_int 16 in
  (match Pmtn_dual.run inst tee with
  | Dual.Accepted s ->
    for u = 0 to 1 do
      Printf.printf "machine %d (large):\n" u;
      List.iter
        (fun (seg : Schedule.seg) ->
          let kind =
            match seg.Schedule.content with
            | Schedule.Setup i -> Printf.sprintf "setup s%d" i
            | Schedule.Work j -> Printf.sprintf "job %d" j
          in
          Printf.printf "  [%s, %s) %s\n" (Rat.to_string seg.Schedule.start)
            (Rat.to_string (Rat.add seg.Schedule.start seg.Schedule.dur))
            kind)
        (Schedule.segments s u)
    done
  | Dual.Rejected r -> Format.printf "rejected: %a@." Dual.pp_rejection r)

(* Figures 10-13: Algorithm 6 for the non-preemptive case. *)
let fig10_13 () =
  banner "Figures 10-13: Algorithm 6 (non-preemptive), 1 expensive + cheap classes";
  let inst =
    Instance.make ~m:12
      ~setups:[| 11; 3; 2; 2; 2 |]
      ~jobs:
        [|
          (0, 8); (0, 8); (0, 7); (0, 5);
          (1, 12); (1, 11); (1, 9); (1, 8); (1, 4);
          (2, 5); (2, 4); (3, 6); (4, 3); (4, 2);
        |]
  in
  let r = Nonp_search.solve inst in
  Checker.check_exn Variant.Nonpreemptive inst r.Nonp_search.schedule;
  let tee = r.Nonp_search.accepted in
  Printf.printf "T* = %s (smallest accepted integer)\n" (Rat.to_string tee);
  render ~variant:Variant.Nonpreemptive ~tee inst r.Nonp_search.schedule

let all_figs =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3_4_9);
    ("fig4", fig3_4_9);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig3_4_9);
    ("fig10", fig10_13);
    ("fig11", fig10_13);
    ("fig12", fig10_13);
    ("fig13", fig10_13);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let unique_runs = [ fig1; fig2; fig3_4_9; fig5; fig6; fig7; fig8; fig10_13 ] in
  if requested = [] then List.iter (fun f -> f ()) unique_runs
  else
    List.iter
      (fun name ->
        match List.assoc_opt name all_figs with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown figure %s (fig1..fig13)\n" name;
          exit 1)
      requested
