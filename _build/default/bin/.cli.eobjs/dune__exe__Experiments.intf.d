bin/experiments.mli:
