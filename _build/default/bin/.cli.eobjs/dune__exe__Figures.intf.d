bin/figures.mli:
