bin/cli.mli:
