(* experiments — regenerate the paper's quantitative claims.

   Usage: dune exec bin/experiments.exe [-- table1|ratios|scaling|crossover|all]

   table1    measured ratio vs the certified lower bound, and wall-clock,
             for every algorithm/variant on the standard suite — the
             empirical counterpart of the paper's Table 1.
   ratios    true approximation ratios against exact optima (tiny suite).
   scaling   wall-clock growth with n per algorithm; prints the log-log
             slope (the near-linear claims).
   crossover Monma-Potts vs Theorem 6 as m grows on the anti-wrap family:
             the wrap's guarantee degrades toward 2, Theorem 6 stays 3/2. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_baselines
open Bss_workloads

let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

type contender = { name : string; variant : Variant.t; run : Instance.t -> Schedule.t }

let contenders =
  let solver algorithm variant inst = (Solver.solve ~algorithm variant inst).Solver.schedule in
  let eps = Rat.of_ints 1 10 in
  List.concat_map
    (fun v ->
      [
        { name = "2-approx"; variant = v; run = solver Solver.Approx2 v };
        { name = "3/2+1/10"; variant = v; run = solver (Solver.Approx3_2_eps eps) v };
        { name = "3/2 exact"; variant = v; run = solver Solver.Approx3_2 v };
      ])
    Variant.all
  @ [
      { name = "MP wrap"; variant = Variant.Preemptive; run = Monma_potts.schedule };
      { name = "MP batch-split"; variant = Variant.Preemptive; run = Batch_split.schedule };
      { name = "batch greedy"; variant = Variant.Nonpreemptive; run = List_scheduling.greedy };
      { name = "batch LPT"; variant = Variant.Nonpreemptive; run = List_scheduling.lpt };
    ]

let table1 () =
  print_endline "Table 1 (empirical): max / mean makespan ratio vs certified LB; mean time";
  print_endline "(the paper's Table 1 lists guarantees; we measure the implementations)\n";
  let cases = Suite.table1 () in
  let rows =
    List.map
      (fun cont ->
        let ratios = ref [] and times = ref [] in
        List.iter
          (fun case ->
            let inst = case.Suite.instance in
            let sched, dt = time_it (fun () -> cont.run inst) in
            Checker.check_exn cont.variant inst sched;
            let lb = Lower_bounds.lower_bound cont.variant inst in
            ratios := (Rat.to_float (Schedule.makespan sched) /. Rat.to_float lb) :: !ratios;
            times := dt :: !times)
          cases;
        let ratios = Array.of_list !ratios and times = Array.of_list !times in
        [
          cont.name;
          Variant.to_string cont.variant;
          Printf.sprintf "%.3f" (Stats.max ratios);
          Printf.sprintf "%.3f" (Stats.mean ratios);
          Printf.sprintf "%.2f" (Stats.mean times *. 1000.0);
        ])
      contenders
  in
  Table.print
    ~header:[ "algorithm"; "variant"; "max ratio/LB"; "mean ratio/LB"; "mean ms" ]
    ~align:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    rows

let ratios () =
  print_endline "True ratios vs exact optima (tiny suite; OPT_pmtn bracketed by OPT_nonp)\n";
  let cases = Suite.tiny_exact () in
  let measure name variant run opt_of =
    (* the exact oracles dominate the cost; fan the cases out over domains *)
    let rs =
      Parallel.map
        (fun case ->
          let inst = case.Suite.instance in
          let sched = run inst in
          Checker.check_exn variant inst sched;
          let opt = opt_of inst in
          Rat.to_float (Schedule.makespan sched) /. Rat.to_float opt)
        cases
    in
    let rs = Array.of_list rs in
    [ name; Printf.sprintf "%.4f" (Stats.max rs); Printf.sprintf "%.4f" (Stats.mean rs) ]
  in
  let nonp_opt inst = Rat.of_int (Exact.nonpreemptive_opt inst) in
  let split_opt inst = Exact.splittable_opt_small inst in
  let rows =
    [
      measure "nonp 3/2 (Thm 8) vs OPT_nonp" Variant.Nonpreemptive
        (fun i -> (Nonp_search.solve i).Nonp_search.schedule)
        nonp_opt;
      measure "split 3/2 (Thm 3) vs OPT_split" Variant.Splittable
        (fun i -> (Splittable_cj.solve i).Splittable_cj.schedule)
        split_opt;
      measure "pmtn 3/2 (Thm 6) vs OPT_nonp >= OPT_pmtn" Variant.Preemptive
        (fun i -> (Pmtn_cj.solve i).Pmtn_cj.schedule)
        nonp_opt;
      measure "nonp 2-approx vs OPT_nonp" Variant.Nonpreemptive Two_approx.nonpreemptive nonp_opt;
      measure "MP wrap vs OPT_nonp" Variant.Preemptive Monma_potts.schedule nonp_opt;
      measure "MP batch-split vs OPT_nonp" Variant.Preemptive Batch_split.schedule nonp_opt;
      measure "batch LPT vs OPT_nonp" Variant.Nonpreemptive List_scheduling.lpt nonp_opt;
    ]
  in
  Table.print ~header:[ "algorithm"; "worst ratio"; "mean ratio" ]
    ~align:[ Table.Left; Table.Right; Table.Right ]
    rows;
  print_endline "\npaper's guarantees: 3/2 for the exact algorithms, 2 for Theorem 1; all hold."

let scaling () =
  print_endline "Runtime scaling (uniform family, m = 16); log-log slope ~ 1 means linear\n";
  let ns = [ 2_000; 4_000; 8_000; 16_000; 32_000; 64_000 ] in
  let cases = Suite.scaling ~family:Generator.uniform ~m:16 ns in
  let algos =
    [
      ("2-approx nonp", fun i -> ignore (Two_approx.nonpreemptive i));
      ("2-approx split", fun i -> ignore (Two_approx.splittable i));
      ("3/2 split CJ", fun i -> ignore (Splittable_cj.solve i));
      ("3/2 nonp BS", fun i -> ignore (Nonp_search.solve i));
      ("3/2 pmtn CJ", fun i -> ignore (Pmtn_cj.solve i));
      ( "3/2+1/10 pmtn",
        fun i ->
          ignore (Solver.solve ~algorithm:(Solver.Approx3_2_eps (Rat.of_ints 1 10)) Variant.Preemptive i) );
      ("MP wrap", fun i -> ignore (Monma_potts.schedule i));
    ]
  in
  let rows =
    List.map
      (fun (name, run) ->
        let pts =
          List.map
            (fun case ->
              let inst = case.Suite.instance in
              (* best of 3 runs to damp noise *)
              let dt =
                List.fold_left min infinity (List.init 3 (fun _ -> snd (time_it (fun () -> run inst))))
              in
              (float_of_int (Instance.n inst), dt))
            cases
        in
        let slope = Stats.loglog_slope (Array.of_list pts) in
        name
        :: Printf.sprintf "%.2f" slope
        :: List.map (fun (_, dt) -> Printf.sprintf "%.1f" (dt *. 1000.0)) pts)
      algos
  in
  Table.print
    ~header:([ "algorithm"; "slope" ] @ List.map (fun n -> Printf.sprintf "n=%d ms" n) ns)
    ~align:(Table.Left :: List.init (List.length ns + 1) (fun _ -> Table.Right))
    rows

let by_family () =
  print_endline "Per-family hardness (3/2 exact algorithms, ratio vs certified LB)\n";
  let rows =
    Parallel.map
      (fun (family : Generator.spec) ->
        let per_variant v =
          let ratios =
            List.map
              (fun run ->
                let rng = Prng.create ((Hashtbl.hash family.Generator.name * 97) + run) in
                let inst = family.Generator.generate rng ~m:8 ~n:96 in
                let r = Solver.solve ~algorithm:Solver.Approx3_2 v inst in
                Checker.check_exn v inst r.Solver.schedule;
                Rat.to_float (Schedule.makespan r.Solver.schedule)
                /. Rat.to_float (Lower_bounds.lower_bound v inst))
              [ 0; 1; 2; 3 ]
          in
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list ratios))
        in
        [
          family.Generator.name;
          per_variant Variant.Nonpreemptive;
          per_variant Variant.Preemptive;
          per_variant Variant.Splittable;
        ])
      Generator.all
  in
  Table.print
    ~header:[ "family"; "nonp"; "pmtn"; "split" ]
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    rows

let crossover () =
  print_endline "Monma-Potts vs Theorem 6 on the anti-wrap family as m grows";
  print_endline "(ratios vs the certified lower bound; MP's guarantee 2-1/(floor(m/2)+1) -> 2)\n";
  let rows =
    List.map
      (fun m ->
        let ratios_mp = ref [] and ratios_cj = ref [] in
        for run = 0 to 4 do
          let rng = Prng.create ((m * 1000) + run) in
          let inst = Generator.anti_wrap.Generator.generate rng ~m ~n:(m * 6) in
          let lb = Rat.to_float (Lower_bounds.lower_bound Variant.Preemptive inst) in
          let mp = Monma_potts.schedule inst in
          Checker.check_exn Variant.Preemptive inst mp;
          let cj = (Solver.solve ~algorithm:Solver.Approx3_2 Variant.Preemptive inst).Solver.schedule in
          Checker.check_exn Variant.Preemptive inst cj;
          ratios_mp := (Rat.to_float (Schedule.makespan mp) /. lb) :: !ratios_mp;
          ratios_cj := (Rat.to_float (Schedule.makespan cj) /. lb) :: !ratios_cj
        done;
        let guarantee = 2.0 -. (1.0 /. float_of_int ((m / 2) + 1)) in
        [
          string_of_int m;
          Printf.sprintf "%.3f" guarantee;
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !ratios_mp));
          Printf.sprintf "%.3f" (Stats.mean (Array.of_list !ratios_cj));
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  Table.print
    ~header:[ "m"; "MP guarantee"; "MP measured"; "Thm 6 measured" ]
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right ]
    rows

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "table1" -> table1 ()
  | "families" -> by_family ()
  | "ratios" -> ratios ()
  | "scaling" -> scaling ()
  | "crossover" -> crossover ()
  | "all" ->
    table1 ();
    print_newline ();
    by_family ();
    print_newline ();
    ratios ();
    print_newline ();
    crossover ();
    print_newline ();
    scaling ()
  | other ->
    Printf.eprintf "unknown experiment %s (table1|families|ratios|scaling|crossover|all)\n" other;
    exit 1
