  $ bss fuzz --seed 42 --cases 50
  $ bss fuzz --seed 42 --cases 8 --family tiny --variant split | head -1
  $ bss fuzz --seed 42 --replay tiny:7
  $ bss fuzz --seed 42 --replay bogus:xx
  $ bss fuzz --family nope --cases 5
  $ bss fuzz --seed 42 --cases 6 --family tiny --variant split --profile
