  $ bss generate -f uniform -m 4 -n 16 -s 1 > inst.txt
  $ head -2 inst.txt
  $ bss check inst.txt
  $ bss solve inst.txt -v nonp -a 3/2 | head -3
  $ bss solve inst.txt -v split -a 2 | grep -c makespan
  $ bss generate -f nope 2>&1 | head -1
  $ bss solve inst.txt -a 7/8 2>&1 | tail -1 | grep -c algorithm
  $ bss solve inst.txt -v split -a 3/2 --svg out.svg --csv out.csv > /dev/null
  $ head -c 4 out.svg
  $ head -1 out.csv
  $ tail -1 out.svg
  $ bss solve inst.txt -v split -a 3/2 --json
  $ bss generate -f expensive -m 16 -n 48 -s 1 > exp.txt
  $ bss solve exp.txt -v split -a 3/2 --profile=table | grep -E 'bound_tests|jump_steps|region_steps'
  $ bss solve exp.txt -v pmtn -a 3/2 --profile=csv | grep '^counter,pmtn'
  $ bss solve exp.txt -v nonp -a 3/2+1/8 --profile=table | grep dual_search
  $ bss solve exp.txt -v split -a 3/2 --json --profile | python3 -c "import json,sys; d=json.load(sys.stdin); print(sorted(d['profile']['counters'].items()))"
