The figure gallery regenerates; every rendered schedule passes the exact
checker inside the binary (Checker.check_exn), so a successful run is the
assertion.

  $ bss-figures | grep -c '==='
  8

  $ bss-figures fig6 | grep 'S(omega)'
  S(omega) = 25, L(Q) = 24

  $ bss-figures fig7 | grep 'makespan'
  makespan 26 <= 2 T_min = 144/5

  $ bss-figures nope 2>&1
  unknown figure nope (fig1..fig13)
  [1]
