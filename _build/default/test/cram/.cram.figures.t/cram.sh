  $ bss-figures | grep -c '==='
  $ bss-figures fig6 | grep 'S(omega)'
  $ bss-figures fig7 | grep 'makespan'
  $ bss-figures nope 2>&1
