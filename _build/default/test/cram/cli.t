The CLI generates, inspects and solves instances end to end.

Generate a deterministic instance:

  $ bss generate -f uniform -m 4 -n 16 -s 1 > inst.txt
  $ head -2 inst.txt
  m 4
  setups 17 30

Statistics and per-variant lower bounds:

  $ bss check inst.txt
  instance: m=4 c=2 n=16 N=811 smax=30 tmax=99
  non-preemptive  T_min = 811/4
  preemptive      T_min = 811/4
  splittable      T_min = 811/4

Solving prints the certificate chain:

  $ bss solve inst.txt -v nonp -a 3/2 | head -3
  non-preemptive / 3/2 binary-search (Thm 8)
  makespan    246
  certificate 645/2 (makespan <= 3/2 * OPT)

  $ bss solve inst.txt -v split -a 2 | grep -c makespan
  2

Unknown inputs fail cleanly:

  $ bss generate -f nope 2>&1 | head -1
  unknown family; available: uniform, small-batches, single-job, expensive, zipf, anti-list, anti-wrap, tiny

  $ bss solve inst.txt -a 7/8 2>&1 | tail -1 | grep -c algorithm
  0
  [1]

SVG and CSV exports:

  $ bss solve inst.txt -v split -a 3/2 --svg out.svg --csv out.csv > /dev/null
  $ head -c 4 out.svg
  <svg
  $ head -1 out.csv
  machine,start,duration,kind,id,class
  $ tail -1 out.svg
  </svg>
