test/test_knapsack.ml: Alcotest Array Bss_knapsack Bss_util Knapsack List QCheck2 QCheck_alcotest Rat
