test/test_compaction.ml: Alcotest Bss_core Bss_instances Bss_util Checker Compaction Helpers Instance List Nonp_search Pmtn_cj QCheck2 Rat Schedule Solver Splittable_cj Variant
