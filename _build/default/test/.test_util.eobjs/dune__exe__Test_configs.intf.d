test/test_configs.mli:
