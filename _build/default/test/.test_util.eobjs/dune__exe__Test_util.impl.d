test/test_util.ml: Alcotest Array Atomic Bigint Bss_util Intmath List Parallel Prng QCheck2 QCheck_alcotest Rat Select Stats String Table
