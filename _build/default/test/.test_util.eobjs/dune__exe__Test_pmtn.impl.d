test/test_pmtn.ml: Alcotest Array Bss_core Bss_instances Bss_util Checker Dual Helpers Instance Intmath List Lower_bounds Pmtn_cj Pmtn_dual Pmtn_nice Prng QCheck2 Rat Variant
