test/test_nonp.ml: Alcotest Bss_core Bss_instances Bss_util Checker Dual Helpers Instance Intmath Lower_bounds Nonp_dual Nonp_search Prng QCheck2 Rat Variant
