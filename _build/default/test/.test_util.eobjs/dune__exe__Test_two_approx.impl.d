test/test_two_approx.ml: Alcotest Array Bss_core Bss_instances Bss_util Checker Helpers Instance List Lower_bounds Prng QCheck2 Rat Schedule Two_approx Variant
