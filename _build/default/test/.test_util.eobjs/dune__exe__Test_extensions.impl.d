test/test_extensions.ml: Alcotest Array Bss_extensions Bss_instances Bss_util Helpers Instance Prng QCheck2 Seqdep
