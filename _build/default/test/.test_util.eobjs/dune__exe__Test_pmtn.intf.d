test/test_pmtn.mli:
