test/test_obs.ml: Alcotest Bss_core Bss_instances Bss_obs Bss_util Bss_workloads Event Gc Int64 List Prng Probe Rat Render Report Solver String Variant
