test/test_splittable.mli:
