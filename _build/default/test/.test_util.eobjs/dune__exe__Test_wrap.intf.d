test/test_wrap.mli:
