test/test_wrap.ml: Alcotest Array Bss_instances Bss_util Bss_wrap Checker Instance List QCheck2 QCheck_alcotest Rat Schedule Sequence Template Variant Wrap
