test/test_compact_solver.mli:
