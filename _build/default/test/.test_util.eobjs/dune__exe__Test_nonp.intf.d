test/test_nonp.mli:
