test/test_oracle.ml: Alcotest Array Bss_instances Bss_oracle Bss_oracle_qc Case Harness Instance List Metamorphic Property QCheck QCheck_alcotest Random Shrink
