test/test_configs.ml: Alcotest Bss_core Bss_instances Bss_util Checker Config_schedule Helpers Instance List QCheck2 Rat Schedule Splittable_cj String Two_approx Variant
