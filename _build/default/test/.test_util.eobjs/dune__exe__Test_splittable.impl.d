test/test_splittable.ml: Alcotest Bss_core Bss_instances Bss_util Checker Dual Helpers Instance Intmath Lower_bounds Prng QCheck2 Rat Splittable_cj Splittable_dual Variant
