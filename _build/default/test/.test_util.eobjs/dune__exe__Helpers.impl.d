test/helpers.ml: Array Bss_instances Bss_util Checker Instance List Printf Prng QCheck2 QCheck_alcotest Rat Schedule
