test/test_two_approx.mli:
