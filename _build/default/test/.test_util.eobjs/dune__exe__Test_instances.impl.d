test/test_instances.ml: Alcotest Array Bss_instances Bss_util Checker Format Instance List Lower_bounds Metrics Partition QCheck2 QCheck_alcotest Rat Render Schedule String Trace Variant
