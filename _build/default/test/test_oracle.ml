(* Conformance-oracle suites: every Property and Metamorphic law as a
   qcheck case over the oracle's own generators, plus unit tests for the
   deterministic case machinery, harness reproducibility and the
   structural shrinker (a planted bug must minimize to a tiny witness).

   Budgets are small and the qcheck seed is pinned: tier-1 must stay fast
   and bit-stable. The heavyweight sweep lives behind `dune build
   @fuzz-smoke` and the `bss fuzz` CLI. *)

open Bss_instances
open Bss_oracle
module Arb = Bss_oracle_qc.Arb

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ---------------- properties as qcheck suites ---------------- *)

(* Pin the qcheck seed so tier-1 sees the same instances every run. *)
let qsuite_seeded name tests =
  ( name,
    List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x0b57ac1e |])) tests )

let prop_test (p : Property.t) =
  QCheck.Test.make ~name:(p.Property.name ^ " [" ^ p.Property.theorem ^ "]") ~count:15
    (Arb.arbitrary ~max_m:4 ~max_n:20 ())
    (fun inst ->
      match Property.check_instance p inst with
      | Property.Pass | Property.Skip _ -> true
      | Property.Fail msg -> QCheck.Test.fail_report msg)

let oracle_props = List.map prop_test Property.all
let metamorphic_props = List.map prop_test Metamorphic.all

(* The generator itself: instances are well-formed and print/parse
   round-trips exactly. *)
let prop_generator_roundtrip =
  QCheck.Test.make ~name:"generated instances roundtrip through to_string" ~count:50
    (Arb.arbitrary ())
    (fun inst ->
      inst.Instance.m >= 1
      && Instance.n inst >= 1
      && Instance.c inst >= 1
      && Instance.to_string (Instance.of_string (Instance.to_string inst)) = Instance.to_string inst)

(* Shrink candidates preserve well-formedness and strictly decrease the
   instance measure m + n + sum(s) + sum(t). *)
let measure inst =
  inst.Instance.m + Instance.n inst
  + Array.fold_left ( + ) 0 inst.Instance.setups
  + Array.fold_left ( + ) 0 inst.Instance.job_time

let prop_shrink_candidates =
  QCheck.Test.make ~name:"shrink candidates well-formed and smaller" ~count:50
    (Arb.arbitrary ())
    (fun inst ->
      List.for_all
        (fun c ->
          c.Instance.m >= 1 && Instance.n c >= 1 && Instance.c c >= 1
          && Array.for_all (fun s -> s >= 1) c.Instance.setups
          && Array.for_all (fun t -> t >= 1) c.Instance.job_time
          && Array.for_all (fun k -> k >= 0 && k < Instance.c c) c.Instance.job_class
          && measure c < measure inst)
        (Shrink.candidates inst))

(* ---------------- deterministic case machinery ---------------- *)

let test_case_seed_deterministic () =
  let c = Case.make ~master:42 ~family:"uniform" ~index:7 in
  let c' = Case.make ~master:42 ~family:"uniform" ~index:7 in
  check int_c "equal seed" (Case.seed c) (Case.seed c');
  check bool_c "index changes seed" true
    (Case.seed c <> Case.seed (Case.make ~master:42 ~family:"uniform" ~index:8));
  check bool_c "master changes seed" true
    (Case.seed c <> Case.seed (Case.make ~master:43 ~family:"uniform" ~index:7));
  check bool_c "family changes seed" true
    (Case.seed c <> Case.seed (Case.make ~master:42 ~family:"tiny" ~index:7))

let test_case_instance_bit_reproducible () =
  List.iter
    (fun index ->
      let c = Case.make ~master:11 ~family:"zipf" ~index in
      check string_c "same dump"
        (Instance.to_string (Case.instance c))
        (Instance.to_string (Case.instance c)))
    [ 0; 1; 2; 17 ]

let test_case_id_roundtrip () =
  let c = Case.make ~master:5 ~family:"anti-wrap" ~index:123 in
  check string_c "id" "anti-wrap:123" (Case.id c);
  check bool_c "roundtrip" true (Case.of_id ~master:5 (Case.id c) = c);
  check bool_c "bad family rejected" true
    (try ignore (Case.of_id ~master:0 "nope:3"); false with Invalid_argument _ -> true);
  check bool_c "bad index rejected" true
    (try ignore (Case.of_id ~master:0 "uniform:x"); false with Invalid_argument _ -> true)

(* ---------------- harness reproducibility ---------------- *)

let small_config =
  { Harness.default_config with Harness.master = 42; cases = 10; max_m = 4; max_n = 16 }

let test_harness_reproducible_across_domains () =
  let render config = Harness.render (Harness.run config) in
  let sequential = render { small_config with Harness.domains = Some 1 } in
  let parallel = render { small_config with Harness.domains = Some 4 } in
  check string_c "domain count does not change the report" sequential parallel;
  check bool_c "clean sweep" true
    (let report = Harness.run small_config in
     report.Harness.failures = [])

let test_replay_matches_sweep () =
  let case = Harness.case_of_index small_config 3 in
  let txt, ok = Harness.replay small_config case in
  let txt', ok' = Harness.replay small_config case in
  check string_c "replay deterministic" txt txt';
  check bool_c "replay ok" true (ok && ok')

(* ---------------- planted bug: catch and shrink ---------------- *)

(* Plant a bug — "fails whenever the instance has >= 2 jobs and a job of
   length >= 4" — and require the shrinker to minimize any raw
   counterexample down to <= 4 jobs with the failure still reproducing. *)
let test_planted_bug_shrinks_small () =
  let planted inst =
    Instance.n inst >= 2 && Array.exists (fun t -> t >= 4) inst.Instance.job_time
  in
  let rec witness index =
    if index > 50 then Alcotest.fail "no planted-bug witness in 50 cases"
    else
      let inst = Case.instance (Case.make ~master:0 ~family:"uniform" ~index) in
      if planted inst then inst else witness (index + 1)
  in
  let raw = witness 0 in
  let shrunk, steps = Shrink.minimize ~keep:planted raw in
  check bool_c "still failing after shrink" true (planted shrunk);
  check bool_c "shrunk to <= 4 jobs" true (Instance.n shrunk <= 4);
  check bool_c "shrinking made progress" true (steps > 0 && measure shrunk < measure raw);
  (* local minimum: no candidate keeps the failure alive *)
  check bool_c "local minimum" true
    (List.for_all (fun c -> not (planted c)) (Shrink.candidates shrunk))

let test_minimize_rejects_passing_instance () =
  let inst = Case.instance (Case.make ~master:0 ~family:"uniform" ~index:0) in
  check bool_c "requires failing start" true
    (try ignore (Shrink.minimize ~keep:(fun _ -> false) inst); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "oracle"
    [
      qsuite_seeded "properties" oracle_props;
      qsuite_seeded "metamorphic" metamorphic_props;
      qsuite_seeded "generator" [ prop_generator_roundtrip; prop_shrink_candidates ];
      ( "case",
        [
          Alcotest.test_case "seed deterministic" `Quick test_case_seed_deterministic;
          Alcotest.test_case "instance bit-reproducible" `Quick test_case_instance_bit_reproducible;
          Alcotest.test_case "id roundtrip" `Quick test_case_id_roundtrip;
        ] );
      ( "harness",
        [
          Alcotest.test_case "reproducible across domains" `Quick test_harness_reproducible_across_domains;
          Alcotest.test_case "replay deterministic" `Quick test_replay_matches_sweep;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "planted bug shrinks to <= 4 jobs" `Quick test_planted_bug_shrinks_small;
          Alcotest.test_case "minimize rejects passing start" `Quick test_minimize_rejects_passing_instance;
        ] );
    ]
