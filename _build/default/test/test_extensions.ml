(* Tests for the sequence-dependent-setup extension (the paper's
   concluding remark: m=1, single-job classes with t=0 is the TSP path). *)

open Bss_util
open Bss_instances
open Bss_extensions

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let square c f = Array.init c (fun a -> Array.init c (f a))

(* brute-force optimum over all permutations (c <= 8) *)
let brute t c =
  let best = ref max_int in
  let order = Array.init c (fun i -> i) in
  let rec permute k =
    if k = c then best := min !best (Seqdep.cost t order)
    else
      for i = k to c - 1 do
        let tmp = order.(k) in
        order.(k) <- order.(i);
        order.(i) <- tmp;
        permute (k + 1);
        let tmp = order.(k) in
        order.(k) <- order.(i);
        order.(i) <- tmp
      done
  in
  permute 0;
  !best

let test_cost_evaluation () =
  let t =
    Seqdep.make
      ~setup:[| [| 0; 5; 9 |]; [| 2; 0; 4 |]; [| 7; 1; 0 |] |]
      ~initial:[| 3; 6; 2 |]
      ~load:[| 10; 20; 30 |]
  in
  (* order 2,1,0: initial 2 + s(2,1)=1 + s(1,0)=2 + loads 60 = 65 *)
  check int_c "cost" 65 (Seqdep.cost t [| 2; 1; 0 |]);
  check bool_c "not a permutation" true
    (try ignore (Seqdep.cost t [| 0; 0; 1 |]); false with Invalid_argument _ -> true)

let test_held_karp_matches_brute () =
  let rng = Prng.create 5 in
  for _ = 1 to 40 do
    let c = 2 + Prng.int rng 6 in
    let t =
      Seqdep.make
        ~setup:(square c (fun _ _ -> Prng.int_in rng 1 50))
        ~initial:(Array.init c (fun _ -> Prng.int_in rng 0 20))
        ~load:(Array.init c (fun _ -> Prng.int_in rng 0 30))
    in
    let order, opt = Seqdep.held_karp t in
    check int_c "held-karp = brute" (brute t c) opt;
    check int_c "order evaluates to opt" opt (Seqdep.cost t order)
  done

let test_heuristics_feasible_and_bounded () =
  let rng = Prng.create 11 in
  for _ = 1 to 40 do
    let c = 2 + Prng.int rng 8 in
    let t =
      Seqdep.make
        ~setup:(square c (fun _ _ -> Prng.int_in rng 1 50))
        ~initial:(Array.init c (fun _ -> Prng.int_in rng 0 20))
        ~load:(Array.init c (fun _ -> Prng.int_in rng 0 30))
    in
    let _, opt = Seqdep.held_karp t in
    let order_nn, nn = Seqdep.nearest_neighbour t in
    let order_ge, ge = Seqdep.greedy_edge t in
    check int_c "nn consistent" nn (Seqdep.cost t order_nn);
    check int_c "greedy consistent" ge (Seqdep.cost t order_ge);
    check bool_c "nn >= opt" true (nn >= opt);
    check bool_c "greedy >= opt" true (ge >= opt)
  done

(* The paper's reduction: a TSP path instance is a scheduling instance
   with zero loads and free start. *)
let test_tsp_reduction () =
  (* 4 cities on a line at 0, 1, 3, 7: optimal path walks the line: 7 *)
  let pos = [| 0; 1; 3; 7 |] in
  let dist = square 4 (fun a b -> abs (pos.(a) - pos.(b))) in
  let t = Seqdep.of_tsp dist in
  let _, opt = Seqdep.held_karp t in
  check int_c "line path" 7 opt;
  (* nearest neighbour from the line's start is optimal here too *)
  let _, nn = Seqdep.nearest_neighbour t in
  check int_c "nn on a line" 7 nn

(* Sequence-independent embedding: order never matters; every algorithm
   returns Σ s_i + Σ t_j, which equals the single-machine optimum. *)
let prop_independent_embedding =
  QCheck2.Test.make ~name:"sequence-independent embedding: all orders equal N" ~count:100
    (Helpers.gen_instance ~max_m:1 ~max_c:6 ())
    (fun inst ->
      let t = Seqdep.of_instance inst in
      let _, hk = Seqdep.held_karp t in
      let _, nn = Seqdep.nearest_neighbour t in
      let _, ge = Seqdep.greedy_edge t in
      hk = inst.Instance.total && nn = inst.Instance.total && ge = inst.Instance.total)

(* On metric instances nearest neighbour stays within the known
   O(log c) factor — we assert the much weaker sanity factor 4 for the
   sizes used here, catching gross implementation bugs. *)
let prop_nn_metric_sane =
  QCheck2.Test.make ~name:"nearest neighbour sane on metric instances" ~count:100
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 9))
    (fun (seed, c) ->
      let rng = Prng.create seed in
      let xs = Array.init c (fun _ -> Prng.int_in rng 0 100) in
      let ys = Array.init c (fun _ -> Prng.int_in rng 0 100) in
      let dist = square c (fun a b -> abs (xs.(a) - xs.(b)) + abs (ys.(a) - ys.(b))) in
      let t = Seqdep.of_tsp dist in
      let _, opt = Seqdep.held_karp t in
      let _, nn = Seqdep.nearest_neighbour t in
      opt = 0 || nn <= 4 * opt)

let () =
  Alcotest.run "extensions"
    [
      ( "seqdep",
        [
          Alcotest.test_case "cost evaluation" `Quick test_cost_evaluation;
          Alcotest.test_case "held-karp vs brute" `Quick test_held_karp_matches_brute;
          Alcotest.test_case "heuristics bounded" `Quick test_heuristics_feasible_and_bounded;
          Alcotest.test_case "tsp reduction" `Quick test_tsp_reduction;
        ] );
      Helpers.qsuite "props" [ prop_independent_embedding; prop_nn_metric_sane ];
    ]
