(* Tests for Batch Wrapping: templates, sequences, and the Wrap/Split
   placement algorithm of Appendix A.1. *)

open Bss_util
open Bss_instances
open Bss_wrap

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let rat_c = Alcotest.testable Rat.pp Rat.equal

let r = Rat.of_int

(* ---------------- Template ---------------- *)

let test_template_validation () =
  let expect_invalid gaps = try ignore (Template.make gaps); false with Invalid_argument _ -> true in
  check bool_c "machines must increase" true
    (expect_invalid
       [ { Template.machine = 1; lo = r 0; hi = r 5 }; { Template.machine = 1; lo = r 0; hi = r 5 } ]);
  check bool_c "lo < hi" true (expect_invalid [ { Template.machine = 0; lo = r 5; hi = r 5 } ]);
  check bool_c "lo >= 0" true (expect_invalid [ { Template.machine = 0; lo = Rat.of_int (-1); hi = r 5 } ])

let test_template_span () =
  let t =
    Template.make
      [ { Template.machine = 0; lo = r 0; hi = r 5 }; { Template.machine = 2; lo = r 3; hi = r 7 } ]
  in
  check rat_c "span" (r 9) (Template.span t);
  check int_c "length" 2 (Template.length t)

let test_template_uniform_run () =
  let gaps = Template.uniform_run ~first_machine:3 ~count:4 ~lo:(r 1) ~hi:(r 2) in
  check int_c "count" 4 (List.length gaps);
  let t = Template.concat [ gaps ] in
  check rat_c "span" (r 4) (Template.span t)

(* ---------------- Sequence ---------------- *)

let fixture () =
  Instance.make ~m:4 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]

let test_sequence_of_classes () =
  let inst = fixture () in
  let q = Sequence.of_classes inst [ 0; 1 ] in
  check int_c "|Q| = c + n" 7 (Sequence.length q);
  check rat_c "L(Q) = N" (r inst.Instance.total) (Sequence.load inst q);
  check int_c "max setup" 4 (Sequence.max_setup inst q);
  (* starts with setup of class 0 *)
  match q with
  | Sequence.Setup 0 :: _ -> ()
  | _ -> Alcotest.fail "expected leading setup"

let test_sequence_of_batches () =
  let inst = fixture () in
  let q = Sequence.of_batches inst [ (1, [ (1, r 3) ]); (0, []) ] in
  (* empty batch emits nothing, non-empty emits setup + pieces *)
  check int_c "length" 2 (Sequence.length q);
  check rat_c "load" (r 5) (Sequence.load inst q)

(* ---------------- Wrap ---------------- *)

(* Wrap all jobs into one big gap: everything lands sequentially. *)
let test_wrap_single_gap () =
  let inst = fixture () in
  let q = Sequence.of_classes inst [ 0; 1 ] in
  let omega = Template.make [ { Template.machine = 0; lo = r 0; hi = r inst.Instance.total } ] in
  let sched = Schedule.create inst.Instance.m in
  let gap_idx, t_end = Wrap.wrap inst sched q omega in
  check int_c "last gap" 0 gap_idx;
  check rat_c "fill front" (r inst.Instance.total) t_end;
  Checker.check_exn Variant.Nonpreemptive inst sched;
  check rat_c "makespan" (r inst.Instance.total) (Schedule.makespan sched)

(* A job crossing a border is split and gets a fresh setup below the next
   gap (McNaughton-style). *)
let test_wrap_splits_at_border () =
  let inst = Instance.make ~m:2 ~setups:[| 2 |] ~jobs:[| (0, 10) |] in
  (* gaps [2,8) on m0 and [2,10) on m1; setup fits below second gap *)
  let omega =
    Template.make
      [ { Template.machine = 0; lo = r 2; hi = r 8 }; { Template.machine = 1; lo = r 2; hi = r 10 } ]
  in
  let sched = Schedule.create 2 in
  let q = Sequence.of_classes inst [ 0 ] in
  let _ = Wrap.wrap inst sched q omega in
  Checker.check_exn Variant.Splittable inst sched;
  (* job volume split: 4 on m0 (2..8 minus setup 2..4 -> work 4..8), 6 on m1 *)
  check int_c "two pieces" 2 (List.length (Schedule.work_of_job sched 0));
  check int_c "two setups" 2 (Schedule.setup_count sched ~cls:0);
  (* the second setup sits directly below the second gap *)
  match Schedule.segments sched 1 with
  | { Schedule.start; dur; content = Schedule.Setup 0 } :: _ ->
    check rat_c "setup start" (r 0) start;
    check rat_c "setup dur" (r 2) dur
  | _ -> Alcotest.fail "expected setup at bottom of machine 1"

(* A long job spanning three gaps splits twice; pieces never overlap in
   time when gaps are stacked like the algorithms build them. *)
let test_wrap_multi_gap_split () =
  let inst = Instance.make ~m:3 ~setups:[| 1 |] ~jobs:[| (0, 12) |] in
  let omega =
    Template.make
      [
        { Template.machine = 0; lo = r 1; hi = r 6 };
        { Template.machine = 1; lo = r 6; hi = r 11 };
        { Template.machine = 2; lo = r 11; hi = r 16 };
      ]
  in
  let sched = Schedule.create 3 in
  let _ = Wrap.wrap inst sched (Sequence.of_classes inst [ 0 ]) omega in
  (* pmtn-feasible: pieces are [1,6),[6,11),[11,13) — no self-overlap *)
  Checker.check_exn Variant.Preemptive inst sched;
  check int_c "three pieces" 3 (List.length (Schedule.work_of_job sched 0))

(* A setup crossing the border moves below the next gap; the current gap's
   tail is abandoned. *)
let test_wrap_setup_crosses () =
  let inst = Instance.make ~m:2 ~setups:[| 1; 3 |] ~jobs:[| (0, 2); (1, 4) |] in
  let omega =
    Template.make
      [ { Template.machine = 0; lo = r 0; hi = r 4 }; { Template.machine = 1; lo = r 3; hi = r 8 } ]
  in
  let sched = Schedule.create 2 in
  (* class 0: setup(1)+job(2) = [0,3); then setup of class 1 (3) would end
     at 6 > 4 -> moved below gap 2 at [0,3) on m1; job 1 runs [3,7). *)
  let _ = Wrap.wrap inst sched (Sequence.of_classes inst [ 0; 1 ]) omega in
  Checker.check_exn Variant.Nonpreemptive inst sched;
  check int_c "one setup each" 1 (Schedule.setup_count sched ~cls:1);
  match Schedule.segments sched 1 with
  | [ { Schedule.content = Schedule.Setup 1; start; _ }; { Schedule.content = Schedule.Work 1; start = wstart; _ } ] ->
    check rat_c "setup at 0" (r 0) start;
    check rat_c "work at 3" (r 3) wstart
  | _ -> Alcotest.fail "unexpected machine 1 layout"

let test_wrap_template_exhausted () =
  let inst = Instance.make ~m:1 ~setups:[| 1 |] ~jobs:[| (0, 100) |] in
  let omega = Template.make [ { Template.machine = 0; lo = r 0; hi = r 10 } ] in
  let sched = Schedule.create 1 in
  check bool_c "raises" true
    (try
       let _ = Wrap.wrap inst sched (Sequence.of_classes inst [ 0 ]) omega in
       false
     with Wrap.Template_exhausted -> true)

let test_wrap_empty_sequence () =
  let inst = fixture () in
  let sched = Schedule.create 1 in
  let omega = Template.make [ { Template.machine = 0; lo = r 0; hi = r 1 } ] in
  let gap_idx, t_end = Wrap.wrap inst sched [] omega in
  check int_c "gap 0" 0 gap_idx;
  check rat_c "at lo" (r 0) t_end

(* Property: wrapping random classes into a sufficient single-machine-run
   template always yields a splittable-feasible schedule whose total load
   matches, and every piece lies inside some gap. *)
let gen_case =
  QCheck2.Gen.(
    let* c = int_range 1 4 in
    let* setups = array_size (return c) (int_range 1 8) in
    let* base = array_size (return c) (int_range 1 12) in
    let* extra = list_size (int_range 0 8) (pair (int_range 0 (c - 1)) (int_range 1 12)) in
    let jobs = Array.to_list (Array.mapi (fun i t -> (i, t)) base) @ extra in
    let* gap_height = int_range 4 12 in
    return (setups, Array.of_list jobs, gap_height))

let prop_wrap_feasible =
  QCheck2.Test.make ~name:"wrap into tall-enough uniform gaps is feasible" ~count:300 gen_case
    (fun (setups, jobs, gap_height) ->
      let smax = Array.fold_left max 1 setups in
      let inst = Instance.make ~m:64 ~setups ~jobs in
      let q = Sequence.of_classes inst (List.init (Array.length setups) (fun i -> i)) in
      let load = Sequence.load inst q in
      (* enough gaps of height gap_height starting at smax *)
      let count = 1 + Rat.ceil_int (Rat.div load (r gap_height)) in
      let count = min count 64 in
      let gaps =
        Template.uniform_run ~first_machine:0 ~count ~lo:(r smax) ~hi:(r (smax + gap_height))
      in
      let omega = Template.concat [ gaps ] in
      if Rat.( < ) (Template.span omega) load then QCheck2.assume_fail ()
      else begin
        let sched = Schedule.create 64 in
        let _ = Wrap.wrap inst sched q omega in
        (* The checker verifies volumes, setup rules, and non-overlap; the
           extra setups Wrap places below gaps only ever add load. *)
        Checker.is_feasible Variant.Splittable inst sched
        && Rat.( >= ) (Schedule.total_load sched) load
      end)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bss_wrap"
    [
      ( "template",
        [
          Alcotest.test_case "validation" `Quick test_template_validation;
          Alcotest.test_case "span" `Quick test_template_span;
          Alcotest.test_case "uniform run" `Quick test_template_uniform_run;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "of_classes" `Quick test_sequence_of_classes;
          Alcotest.test_case "of_batches" `Quick test_sequence_of_batches;
        ] );
      ( "wrap",
        [
          Alcotest.test_case "single gap" `Quick test_wrap_single_gap;
          Alcotest.test_case "split at border" `Quick test_wrap_splits_at_border;
          Alcotest.test_case "multi-gap split" `Quick test_wrap_multi_gap_split;
          Alcotest.test_case "setup crosses" `Quick test_wrap_setup_crosses;
          Alcotest.test_case "template exhausted" `Quick test_wrap_template_exhausted;
          Alcotest.test_case "empty sequence" `Quick test_wrap_empty_sequence;
        ] );
      qsuite "wrap-props" [ prop_wrap_feasible ];
    ]
