(* Tests for the splittable 3/2 machinery: Theorem 7 dual and Theorem 3
   class jumping. *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool

let fixture () =
  Instance.make ~m:3 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]

(* ---------------- dual ---------------- *)

let test_dual_accepts_large_t () =
  let inst = fixture () in
  let tee = Rat.of_int inst.Instance.total in
  match Splittable_dual.run inst tee with
  | Dual.Accepted s ->
    Helpers.check_feasible_within ~variant:Variant.Splittable ~num:3 ~den:2 inst s tee
  | Dual.Rejected r -> Alcotest.failf "rejected N: %a" Dual.pp_rejection r

let test_dual_rejects_tiny_t () =
  let inst = fixture () in
  match Splittable_dual.run inst Rat.one with
  | Dual.Accepted _ -> Alcotest.fail "accepted T=1"
  | Dual.Rejected _ -> ()

let test_dual_rejects_below_smax () =
  let inst = Instance.make ~m:4 ~setups:[| 10 |] ~jobs:[| (0, 1) |] in
  match Splittable_dual.run inst (Rat.of_int 9) with
  | Dual.Rejected (Dual.Below_trivial_bound _) -> ()
  | Dual.Rejected r -> Alcotest.failf "wrong rejection: %a" Dual.pp_rejection r
  | Dual.Accepted _ -> Alcotest.fail "accepted T < smax"

let test_dual_accepts_at_smax_when_bounds_ok () =
  (* m=10, s=10, P=1: N/m small, bounds pass at T = smax. *)
  let inst = Instance.make ~m:10 ~setups:[| 10 |] ~jobs:[| (0, 1) |] in
  match Splittable_dual.run inst (Rat.of_int 10) with
  | Dual.Accepted s ->
    Helpers.check_feasible_within ~variant:Variant.Splittable ~num:3 ~den:2 inst s (Rat.of_int 10)
  | Dual.Rejected r -> Alcotest.failf "rejected: %a" Dual.pp_rejection r

let test_dual_machine_rejection () =
  (* Two expensive classes but one machine: m < m_exp. *)
  let inst = Instance.make ~m:1 ~setups:[| 10; 10 |] ~jobs:[| (0, 10); (1, 10) |] in
  match Splittable_dual.run inst (Rat.of_int 15) with
  | Dual.Rejected _ -> ()
  | Dual.Accepted _ -> Alcotest.fail "accepted though two expensive classes on one machine"

let test_dual_monotone_acceptance () =
  let rng = Prng.create 99 in
  for _ = 1 to 50 do
    let inst = Helpers.random_instance rng in
    let accept tee = Dual.is_accepted (Splittable_dual.run inst tee) in
    (* sample increasing T values; once accepted, stays accepted *)
    let accepted_seen = ref false in
    for t = 1 to 2 * inst.Instance.total do
      let a = accept (Rat.of_ints t 2) in
      if !accepted_seen && not a then Alcotest.fail "acceptance not monotone";
      if a then accepted_seen := true
    done;
    if not !accepted_seen then Alcotest.fail "never accepted up to 2N"
  done

(* Paper Figure 1 shape: 4 expensive + 4 cheap classes. *)
let figure1_instance () =
  (* T target ~ 20: expensive setups > 10, cheap <= 10 *)
  Instance.make ~m:10
    ~setups:[| 12; 13; 11; 14; 3; 4; 2; 5 |]
    ~jobs:
      [|
        (0, 14); (0, 13); (1, 9); (1, 8); (2, 6); (3, 11);
        (4, 7); (4, 6); (5, 9); (6, 4); (7, 8); (7, 2);
      |]

let test_dual_figure1_shape () =
  let inst = figure1_instance () in
  let tmin = Lower_bounds.t_min Variant.Splittable inst in
  (* find an accepted T by doubling from tmin *)
  let rec go tee n =
    if n > 20 then Alcotest.fail "no accepted T found"
    else begin
      match Splittable_dual.run inst tee with
      | Dual.Accepted s -> (tee, s)
      | Dual.Rejected _ -> go (Rat.mul (Rat.of_ints 11 10) tee) (n + 1)
    end
  in
  let tee, s = go tmin 0 in
  Helpers.check_feasible_within ~variant:Variant.Splittable ~num:3 ~den:2 inst s tee

(* ---------------- class jumping ---------------- *)

let test_cj_fixture () =
  let inst = fixture () in
  let r = Splittable_cj.solve inst in
  Helpers.check_feasible_within ~variant:Variant.Splittable ~num:3 ~den:2 inst r.Splittable_cj.schedule
    r.Splittable_cj.accepted;
  (* T* <= OPT <= N *)
  check bool_c "T* <= N" true (Rat.( <= ) r.Splittable_cj.accepted (Rat.of_int inst.Instance.total));
  check bool_c "T* >= Tmin" true
    (Rat.( >= ) r.Splittable_cj.accepted (Lower_bounds.t_min Variant.Splittable inst))

let test_cj_smax_binding () =
  (* The case where T* = s_max (clamp binds, not the load bound). *)
  let inst = Instance.make ~m:10 ~setups:[| 10 |] ~jobs:[| (0, 1) |] in
  let r = Splittable_cj.solve inst in
  check bool_c "T* = smax" true (Rat.equal r.Splittable_cj.accepted (Rat.of_int 10));
  Helpers.check_feasible_within ~variant:Variant.Splittable ~num:3 ~den:2 inst r.Splittable_cj.schedule
    r.Splittable_cj.accepted

let test_cj_volume_binding () =
  (* All cheap at T*: T* = N/m. *)
  let inst = Instance.make ~m:2 ~setups:[| 1 |] ~jobs:[| (0, 99) |] in
  let r = Splittable_cj.solve inst in
  check bool_c "T* = N/m = 50" true (Rat.equal r.Splittable_cj.accepted (Rat.of_int 50))

(* T* is the minimum accepted guess: verify against a fine grid scan. *)
let prop_cj_matches_grid_minimum =
  QCheck2.Test.make ~name:"CJ T* equals grid-scan minimal accepted T" ~count:120
    (Helpers.gen_instance ~max_m:5 ~max_c:4 ~max_extra_jobs:8 ~max_setup:12 ~max_time:12 ())
    (fun inst ->
      let r = Splittable_cj.solve inst in
      let t_star = r.Splittable_cj.accepted in
      let accept tee = Dual.is_accepted (Splittable_dual.run inst tee) in
      (* (a) T* accepted; (b) nothing below on a fine rational grid accepts;
         scan denominator 4 which includes all interesting integer-ish
         points of small instances. *)
      accept t_star
      && begin
           let ok = ref true in
           let quarter = Rat.of_ints 1 4 in
           let tee = ref Rat.zero in
           while Rat.( < ) !tee t_star && !ok do
             if accept !tee then ok := false;
             tee := Rat.add !tee quarter
           done;
           !ok
         end)

let prop_cj_feasible_and_bounded =
  QCheck2.Test.make ~name:"CJ schedules feasible, <= 3/2 T*, T* <= OPT-cert" ~count:300
    (Helpers.gen_instance ~max_m:16 ())
    (fun inst ->
      let r = Splittable_cj.solve inst in
      Checker.is_feasible Variant.Splittable inst r.Splittable_cj.schedule
      && Helpers.within_factor ~num:3 ~den:2 r.Splittable_cj.schedule r.Splittable_cj.accepted
      (* certification: the point just below T* (minus 1/1024) is rejected *)
      && (let eps = Rat.of_ints 1 1024 in
          let below = Rat.sub r.Splittable_cj.accepted eps in
          Rat.sign below <= 0 || not (Dual.is_accepted (Splittable_dual.run inst below))))

let prop_cj_test_count_logarithmic =
  QCheck2.Test.make ~name:"CJ uses O(log(c+m)) bound tests" ~count:100
    (Helpers.gen_instance ~max_m:32 ~max_c:6 ~max_extra_jobs:30 ())
    (fun inst ->
      let r = Splittable_cj.solve inst in
      (* 3 binary searches over <= c+2, m+1, c points plus O(1) probes *)
      let c = Instance.c inst and m = inst.Instance.m in
      let budget = (3 * (Intmath.log2_ceil (c + m + 4) + 2)) + 12 in
      r.Splittable_cj.bound_tests <= budget)

let () =
  Alcotest.run "splittable"
    [
      ( "dual",
        [
          Alcotest.test_case "accepts N" `Quick test_dual_accepts_large_t;
          Alcotest.test_case "rejects T=1" `Quick test_dual_rejects_tiny_t;
          Alcotest.test_case "rejects below smax" `Quick test_dual_rejects_below_smax;
          Alcotest.test_case "accepts at smax" `Quick test_dual_accepts_at_smax_when_bounds_ok;
          Alcotest.test_case "machine rejection" `Quick test_dual_machine_rejection;
          Alcotest.test_case "monotone acceptance" `Slow test_dual_monotone_acceptance;
          Alcotest.test_case "figure 1 shape" `Quick test_dual_figure1_shape;
        ] );
      ( "class-jumping",
        [
          Alcotest.test_case "fixture" `Quick test_cj_fixture;
          Alcotest.test_case "smax binding" `Quick test_cj_smax_binding;
          Alcotest.test_case "volume binding" `Quick test_cj_volume_binding;
        ] );
      Helpers.qsuite "props"
        [ prop_cj_matches_grid_minimum; prop_cj_feasible_and_bounded; prop_cj_test_count_logarithmic ];
    ]
