(* Tests for the non-preemptive 3/2 machinery: Theorem 9 dual (Algorithm 6)
   and Theorem 8 integer binary search. *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool

let fixture () =
  Instance.make ~m:3 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]

let test_dual_accepts_n () =
  let inst = fixture () in
  let tee = Rat.of_int inst.Instance.total in
  match Nonp_dual.run inst tee with
  | Dual.Accepted s -> Helpers.check_feasible_within ~variant:Variant.Nonpreemptive ~num:3 ~den:2 inst s tee
  | Dual.Rejected r -> Alcotest.failf "rejected N: %a" Dual.pp_rejection r

let test_dual_rejects_below_trivial () =
  let inst = fixture () in
  (* max(s_i + tmax_i) = 9 *)
  match Nonp_dual.run inst (Rat.of_int 8) with
  | Dual.Rejected (Dual.Below_trivial_bound _) -> ()
  | Dual.Rejected r -> Alcotest.failf "wrong rejection: %a" Dual.pp_rejection r
  | Dual.Accepted _ -> Alcotest.fail "accepted below trivial bound"

let test_dual_machine_rejection () =
  (* Three mutually exclusive big jobs, two machines. *)
  let inst = Instance.make ~m:2 ~setups:[| 2; 2; 2 |] ~jobs:[| (0, 9); (1, 9); (2, 9) |] in
  match Nonp_dual.run inst (Rat.of_int 11) with
  | Dual.Rejected _ -> ()
  | Dual.Accepted _ -> Alcotest.fail "accepted: 3 exclusive jobs on 2 machines"

(* The paper's Figure 10-13 shape: one expensive class, one cheap class
   with J+ and K jobs, several leftover cheap classes. *)
let figure10_instance () =
  Instance.make ~m:12
    ~setups:[| 11; 3; 2; 2; 2 |]
    ~jobs:
      [|
        (* class 0: expensive (s=11 > T/2 for T ~= 20) *)
        (0, 8); (0, 8); (0, 7); (0, 5);
        (* class 1: cheap with big jobs (t > 10) and K jobs (3+t > 10) *)
        (1, 12); (1, 11); (1, 9); (1, 8); (1, 4);
        (* classes 2-4: small leftovers *)
        (2, 5); (2, 4); (3, 6); (4, 3); (4, 2);
      |]

let test_dual_figure10_shape () =
  let inst = figure10_instance () in
  let rec go tee n =
    if n > 40 then Alcotest.fail "no accepted T"
    else begin
      match Nonp_dual.run inst tee with
      | Dual.Accepted s -> (tee, s)
      | Dual.Rejected _ -> go (Rat.add_int tee 1) (n + 1)
    end
  in
  let tee, s = go (Lower_bounds.t_min Variant.Nonpreemptive inst) 0 in
  Helpers.check_feasible_within ~variant:Variant.Nonpreemptive ~num:3 ~den:2 inst s tee

let test_search_fixture () =
  let inst = fixture () in
  let r = Nonp_search.solve inst in
  Helpers.check_feasible_within ~variant:Variant.Nonpreemptive ~num:3 ~den:2 inst r.Nonp_search.schedule
    r.Nonp_search.accepted;
  check bool_c "T* integral" true (Rat.is_integer r.Nonp_search.accepted);
  check bool_c "T* >= Tmin" true
    (Rat.( >= ) r.Nonp_search.accepted (Lower_bounds.t_min Variant.Nonpreemptive inst))

let test_search_single_machine () =
  let inst = Instance.make ~m:1 ~setups:[| 2; 3 |] ~jobs:[| (0, 4); (1, 5) |] in
  let r = Nonp_search.solve inst in
  (* OPT = N = 14; T* <= OPT *)
  check bool_c "T* <= N" true (Rat.( <= ) r.Nonp_search.accepted (Rat.of_int 14));
  Checker.check_exn Variant.Nonpreemptive inst r.Nonp_search.schedule

let test_search_logarithmic_calls () =
  let inst = figure10_instance () in
  let r = Nonp_search.solve inst in
  let tmin = Rat.ceil_int (Lower_bounds.t_min Variant.Nonpreemptive inst) in
  check bool_c "calls bounded" true (r.Nonp_search.dual_calls <= Intmath.log2_ceil (tmin + 2) + 3)

(* ---------------- properties ---------------- *)

let prop_dual_dichotomy =
  QCheck2.Test.make ~name:"dual accepts with 3/2 bound or rejects certifiably" ~count:400
    QCheck2.Gen.(pair (Helpers.gen_instance ()) (int_range 1 400))
    (fun (inst, t) ->
      let tee = Rat.of_int t in
      match Nonp_dual.run inst tee with
      | Dual.Accepted s ->
        Checker.is_feasible Variant.Nonpreemptive inst s && Helpers.within_factor ~num:3 ~den:2 s tee
      | Dual.Rejected _ ->
        (* rejection implies T < N (very weak sanity; exactness is checked
           via the search tests against brute force) *)
        t < inst.Instance.total)

let prop_search_feasible =
  QCheck2.Test.make ~name:"search: feasible, <= 3/2 T*, T*-1 rejected" ~count:300
    (Helpers.gen_instance ~max_m:10 ())
    (fun inst ->
      let r = Nonp_search.solve inst in
      let t_star = r.Nonp_search.accepted in
      Checker.is_feasible Variant.Nonpreemptive inst r.Nonp_search.schedule
      && Helpers.within_factor ~num:3 ~den:2 r.Nonp_search.schedule t_star
      &&
      let below = Rat.add_int t_star (-1) in
      Rat.( < ) below (Lower_bounds.t_min Variant.Nonpreemptive inst)
      || not (Dual.is_accepted (Nonp_dual.run inst below)))

let prop_search_extreme_shapes =
  QCheck2.Test.make ~name:"search on extreme shapes" ~count:150
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* shape = int_range 0 3 in
      return (seed, shape))
    (fun (seed, shape) ->
      let rng = Prng.create seed in
      let inst =
        match shape with
        | 0 -> Helpers.random_instance ~max_m:32 ~max_c:2 ~max_extra_jobs:2 rng
        | 1 -> Helpers.random_instance ~max_m:2 ~max_c:8 ~max_extra_jobs:50 rng
        | 2 -> Helpers.random_instance ~max_setup:100 ~max_time:3 rng
        | _ -> Helpers.random_instance ~max_setup:2 ~max_time:100 rng
      in
      let r = Nonp_search.solve inst in
      Checker.is_feasible Variant.Nonpreemptive inst r.Nonp_search.schedule
      && Helpers.within_factor ~num:3 ~den:2 r.Nonp_search.schedule r.Nonp_search.accepted)

let () =
  Alcotest.run "nonpreemptive"
    [
      ( "dual",
        [
          Alcotest.test_case "accepts N" `Quick test_dual_accepts_n;
          Alcotest.test_case "rejects below trivial" `Quick test_dual_rejects_below_trivial;
          Alcotest.test_case "machine rejection" `Quick test_dual_machine_rejection;
          Alcotest.test_case "figure 10 shape" `Quick test_dual_figure10_shape;
        ] );
      ( "search",
        [
          Alcotest.test_case "fixture" `Quick test_search_fixture;
          Alcotest.test_case "single machine" `Quick test_search_single_machine;
          Alcotest.test_case "log calls" `Quick test_search_logarithmic_calls;
        ] );
      Helpers.qsuite "props" [ prop_dual_dichotomy; prop_search_feasible; prop_search_extreme_shapes ];
    ]
