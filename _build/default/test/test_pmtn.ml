(* Tests for the preemptive 3/2 machinery: Theorem 4 (nice instances),
   Theorem 5 (Algorithm 3 with the knapsack reduction), and Theorem 6
   (class jumping, γ-mode). *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool

(* A nice fixture at T = 16: one I+exp class, two I-exp classes, cheap
   classes; no I0exp. *)
let nice_fixture () =
  Instance.make ~m:6
    ~setups:[| 10; 9; 9; 4; 1 |]
    ~jobs:
      [|
        (0, 6); (0, 5); (0, 4) (* s+P = 25 >= 16: I+exp *);
        (1, 3) (* s+P = 12 <= 12: I-exp *);
        (2, 2) (* s+P = 11 <= 12: I-exp *);
        (3, 6); (3, 2) (* cheap *);
        (4, 8); (4, 1) (* cheap *);
      |]

let test_nice_structure () =
  let inst = nice_fixture () in
  let tee = Rat.of_int 16 in
  match Pmtn_nice.run_instance inst tee with
  | Dual.Accepted s ->
    Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst s tee
  | Dual.Rejected r -> Alcotest.failf "rejected: %a" Dual.pp_rejection r

let test_nice_rejects_not_nice () =
  (* I0exp non-empty: 3T/4 < s+P < T *)
  let inst = Instance.make ~m:2 ~setups:[| 9 |] ~jobs:[| (0, 4) |] in
  check bool_c "raises" true
    (try
       ignore (Pmtn_nice.run_instance inst (Rat.of_int 16));
       false
     with Invalid_argument _ -> true)

let test_nice_gamma_mode () =
  let inst = nice_fixture () in
  let tee = Rat.of_int 16 in
  match Pmtn_nice.run_instance ~mode:Pmtn_nice.Gamma inst tee with
  | Dual.Accepted s ->
    Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst s tee
  | Dual.Rejected _ -> () (* γ-mode may reject guesses α'-mode accepts *)

let test_nice_machine_numbers () =
  let inst = nice_fixture () in
  let tee = Rat.of_int 16 in
  let batches = List.init (Instance.c inst) (Pmtn_nice.batch_of_class inst) in
  (* α'_0 = ⌊15/6⌋ = 2; m_nice = 2 + ⌈2/2⌉ = 3 *)
  check Alcotest.int "m_nice" 3 (Pmtn_nice.m_nice inst tee batches);
  (* L_nice = P(J) + 2*10 + (9 + 9 + 4 + 1) = 37 + 20 + 23 = 80 *)
  check bool_c "l_nice" true (Rat.equal (Pmtn_nice.l_nice inst tee batches) (Rat.of_int 80))

(* General fixture: large machines (I0exp), I*chp with big jobs, forcing
   the knapsack path for suitable T. *)
let general_fixture () =
  Instance.make ~m:4
    ~setups:[| 13; 3; 2; 1 |]
    ~jobs:
      [|
        (0, 2) (* s+P = 15: I0exp for T = 16 *);
        (1, 7); (1, 6) (* cheap, s+t: 10, 9 > 8: C* jobs *);
        (2, 7); (2, 2) (* 9 > 8 big, 4 small *);
        (3, 5); (3, 4); (3, 3) (* 6, 5, 4 <= 8: plain cheap *);
      |]

let test_general_dual_accepts () =
  let inst = general_fixture () in
  let tee = Rat.of_int 16 in
  match Pmtn_dual.run inst tee with
  | Dual.Accepted s ->
    Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst s tee
  | Dual.Rejected r -> Alcotest.failf "rejected: %a" Dual.pp_rejection r

let test_general_dual_rejects_small () =
  let inst = general_fixture () in
  match Pmtn_dual.run inst (Rat.of_int 5) with
  | Dual.Rejected _ -> ()
  | Dual.Accepted _ -> Alcotest.fail "accepted T=5"

let test_y_guard () =
  (* The instance from the development scan where mT >= L_pmtn holds but
     the cheap class cannot fit outside the large machine: the Y-guard
     must reject (the paper's tests alone would accept and then fail to
     construct). m=2, s0=9 P0=6 (large at T=16), s1=4 P1=13 (I+chp). *)
  let inst = Instance.make ~m:2 ~setups:[| 9; 4 |] ~jobs:[| (0, 4); (0, 2); (1, 3); (1, 5); (1, 5) |] in
  (match Pmtn_dual.run inst (Rat.of_int 16) with
  | Dual.Rejected _ -> ()
  | Dual.Accepted _ -> Alcotest.fail "accepted T=16 despite Y < 0");
  (* and T = 17 is accepted (class 1 fits alone on machine 1) *)
  match Pmtn_dual.run inst (Rat.of_int 17) with
  | Dual.Accepted s ->
    Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst s (Rat.of_int 17)
  | Dual.Rejected r -> Alcotest.failf "rejected 17: %a" Dual.pp_rejection r

let test_dual_accepts_n () =
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    let inst = Helpers.random_instance rng in
    let tee = Rat.of_int inst.Instance.total in
    match Pmtn_dual.run inst tee with
    | Dual.Accepted s ->
      Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst s tee
    | Dual.Rejected r -> Alcotest.failf "rejected N: %a" Dual.pp_rejection r
  done

(* ---------------- class jumping ---------------- *)

let test_cj_fixture () =
  let inst = general_fixture () in
  let r = Pmtn_cj.solve inst in
  Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst r.Pmtn_cj.schedule
    r.Pmtn_cj.accepted;
  let tmin = Lower_bounds.t_min Variant.Preemptive inst in
  check bool_c "T* in [Tmin, 2Tmin]" true
    (Rat.( >= ) r.Pmtn_cj.accepted tmin && Rat.( <= ) r.Pmtn_cj.accepted (Rat.mul_int tmin 2))

let test_cj_single_class () =
  let inst = Instance.make ~m:3 ~setups:[| 4 |] ~jobs:(Array.init 9 (fun _ -> (0, 5))) in
  let r = Pmtn_cj.solve inst in
  Helpers.check_feasible_within ~variant:Variant.Preemptive ~num:3 ~den:2 inst r.Pmtn_cj.schedule
    r.Pmtn_cj.accepted

let prop_dual_dichotomy =
  QCheck2.Test.make ~name:"pmtn dual: accepted -> feasible within 3/2" ~count:300
    QCheck2.Gen.(pair (Helpers.gen_instance ()) (pair (int_range 1 400) (int_range 1 4)))
    (fun (inst, (num, den)) ->
      let tee = Rat.of_ints num den in
      match Pmtn_dual.run inst tee with
      | Dual.Accepted s ->
        Checker.is_feasible Variant.Preemptive inst s && Helpers.within_factor ~num:3 ~den:2 s tee
      | Dual.Rejected _ -> true)

let prop_dual_gamma_dichotomy =
  QCheck2.Test.make ~name:"pmtn dual (gamma): accepted -> feasible within 3/2" ~count:300
    QCheck2.Gen.(pair (Helpers.gen_instance ()) (pair (int_range 1 400) (int_range 1 4)))
    (fun (inst, (num, den)) ->
      let tee = Rat.of_ints num den in
      match Pmtn_dual.run ~mode:Pmtn_nice.Gamma inst tee with
      | Dual.Accepted s ->
        Checker.is_feasible Variant.Preemptive inst s && Helpers.within_factor ~num:3 ~den:2 s tee
      | Dual.Rejected _ -> true)

let prop_cj_feasible =
  QCheck2.Test.make ~name:"pmtn CJ: feasible, <= 3/2 T*, T* in [Tmin, 2Tmin]" ~count:300
    (Helpers.gen_instance ~max_m:10 ())
    (fun inst ->
      let r = Pmtn_cj.solve inst in
      let tmin = Lower_bounds.t_min Variant.Preemptive inst in
      Checker.is_feasible Variant.Preemptive inst r.Pmtn_cj.schedule
      && Helpers.within_factor ~num:3 ~den:2 r.Pmtn_cj.schedule r.Pmtn_cj.accepted
      && Rat.( >= ) r.Pmtn_cj.accepted tmin
      && Rat.( <= ) r.Pmtn_cj.accepted (Rat.mul_int tmin 2))

let prop_cj_near_frontier =
  QCheck2.Test.make ~name:"pmtn CJ: a certified-rejected guess lies within 1/2 below T*" ~count:120
    (Helpers.gen_instance ~max_m:5 ~max_c:4 ~max_extra_jobs:8 ~max_setup:12 ~max_time:12 ())
    (fun inst ->
      let r = Pmtn_cj.solve inst in
      let t_star = r.Pmtn_cj.accepted in
      let accept tee =
        Rat.sign tee > 0
        && match Pmtn_dual.test ~mode:Pmtn_nice.Gamma inst tee with Ok () -> true | Error _ -> false
      in
      (* scan a 1/4-grid strictly below T*: some point within 1/2 of T*
         must be rejected (T* hugs the rejected frontier) *)
      let quarter = Rat.of_ints 1 4 in
      let p1 = Rat.sub t_star quarter and p2 = Rat.sub t_star (Rat.of_ints 1 2) in
      Rat.sign p2 <= 0 || not (accept p1) || not (accept p2))

(* quarter-integral guesses hit the partition boundaries (s_i = T/4,
   s_i = T/2, s_i + P = 3T/4) with exact equality *)
let prop_dual_quarter_grid =
  QCheck2.Test.make ~name:"pmtn dual sound on the quarter grid" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let inst = Helpers.random_instance ~max_m:4 ~max_c:3 ~max_extra_jobs:6 ~max_setup:8 ~max_time:8 rng in
      let tmax = 4 * (2 * Rat.ceil_int (Lower_bounds.t_min Variant.Preemptive inst)) in
      let ok = ref true in
      for q = 1 to tmax do
        let tee = Rat.of_ints q 4 in
        List.iter
          (fun mode ->
            match Pmtn_dual.run ~mode inst tee with
            | Dual.Accepted s ->
              if
                not
                  (Checker.is_feasible Variant.Preemptive inst s
                  && Helpers.within_factor ~num:3 ~den:2 s tee)
              then ok := false
            | Dual.Rejected _ -> ())
          [ Pmtn_nice.Alpha_prime; Pmtn_nice.Gamma ]
      done;
      !ok)

let prop_cj_test_count_logarithmic =
  QCheck2.Test.make ~name:"pmtn CJ uses O(log) bound tests" ~count:100
    (Helpers.gen_instance ~max_m:32 ~max_c:6 ~max_extra_jobs:30 ())
    (fun inst ->
      let r = Pmtn_cj.solve inst in
      (* four binary searches over O(n+m) points plus a 40-round bisection *)
      let n = Instance.n inst and m = inst.Instance.m in
      r.Pmtn_cj.bound_tests <= (4 * (Intmath.log2_ceil (n + m + 4) + 2)) + 40 + 16)

let () =
  Alcotest.run "preemptive"
    [
      ( "nice",
        [
          Alcotest.test_case "structure" `Quick test_nice_structure;
          Alcotest.test_case "rejects not nice" `Quick test_nice_rejects_not_nice;
          Alcotest.test_case "gamma mode" `Quick test_nice_gamma_mode;
          Alcotest.test_case "machine numbers" `Quick test_nice_machine_numbers;
        ] );
      ( "general-dual",
        [
          Alcotest.test_case "accepts fixture" `Quick test_general_dual_accepts;
          Alcotest.test_case "rejects small T" `Quick test_general_dual_rejects_small;
          Alcotest.test_case "Y guard" `Quick test_y_guard;
          Alcotest.test_case "accepts N" `Slow test_dual_accepts_n;
        ] );
      ( "class-jumping",
        [
          Alcotest.test_case "fixture" `Quick test_cj_fixture;
          Alcotest.test_case "single class" `Quick test_cj_single_class;
        ] );
      Helpers.qsuite "props"
        [
          prop_dual_dichotomy;
          prop_dual_gamma_dichotomy;
          prop_cj_feasible;
          prop_cj_near_frontier;
          prop_dual_quarter_grid;
          prop_cj_test_count_logarithmic;
        ];
    ]
