(* Shared helpers for the algorithm test suites: random instance
   generators and ratio assertions. *)

open Bss_util
open Bss_instances

(* Generate a random instance from a seeded PRNG with tunable shape. *)
let random_instance ?(max_m = 8) ?(max_c = 6) ?(max_extra_jobs = 20) ?(max_setup = 30) ?(max_time = 30)
    rng =
  let c = 1 + Prng.int rng max_c in
  let m = 1 + Prng.int rng max_m in
  let setups = Array.init c (fun _ -> 1 + Prng.int rng max_setup) in
  let base = Array.init c (fun i -> (i, 1 + Prng.int rng max_time)) in
  let extra =
    Array.init (Prng.int rng (max_extra_jobs + 1)) (fun _ -> (Prng.int rng c, 1 + Prng.int rng max_time))
  in
  Instance.make ~m ~setups ~jobs:(Array.append base extra)

(* QCheck generator wrapping the PRNG for reproducible shrink-free cases. *)
let gen_instance ?max_m ?max_c ?max_extra_jobs ?max_setup ?max_time () =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    return (random_instance ?max_m ?max_c ?max_extra_jobs ?max_setup ?max_time (Prng.create seed)))

(* makespan <= factor * bound, exact rational comparison *)
let within_factor ~num ~den schedule bound =
  Rat.( <= ) (Rat.mul_int (Schedule.makespan schedule) den) (Rat.mul_int bound num)

let check_feasible_within ~variant ~num ~den inst schedule bound =
  Checker.check_exn variant inst schedule;
  if not (within_factor ~num ~den schedule bound) then
    failwith
      (Printf.sprintf "makespan %s exceeds %d/%d * %s"
         (Rat.to_string (Schedule.makespan schedule))
         num den (Rat.to_string bound))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
