(* Tests for the telemetry layer: the disabled path must be free (no
   counters, no observable allocation), the enabled path must see the
   paper-level counters the searches advertise. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_obs

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* ---------------- disabled path ---------------- *)

(* Outside a recording, probes must not allocate: count/enter/leave take
   the [None] fast path and span tokens are unboxed ints. Event payload
   construction is the caller's responsibility (guard with [enabled]), so
   the event here is built once, before measuring. *)
let test_disabled_no_alloc () =
  assert (not (Probe.enabled ()));
  let static_event = Event.Note { source = "test"; key = "k"; value = "v" } in
  (* warm-up triggers any lazy initialization *)
  for _ = 1 to 128 do
    Probe.count "warmup";
    Probe.leave (Probe.enter "warmup")
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Probe.count "noop.counter";
    Probe.count ~n:5 "noop.counter5";
    Probe.event static_event;
    let tok = Probe.enter "noop.span" in
    Probe.leave tok
  done;
  let delta = Gc.minor_words () -. before in
  check (Alcotest.float 0.0) "minor words allocated while disabled" 0.0 delta

(* Probes fired outside any recording leave no trace in a later one. *)
let test_disabled_adds_nothing () =
  Probe.count "leaked.counter";
  Probe.event (Event.Note { source = "leak"; key = "k"; value = "v" });
  Probe.leave (Probe.enter "leaked.span");
  let (), report = Probe.with_recording (fun () -> ()) in
  check int_c "no counters" 0 (List.length report.Report.counters);
  check int_c "no spans" 0 (List.length report.Report.spans);
  check int_c "no events" 0 (List.length report.Report.events);
  check int_c "no drops" 0 report.Report.dropped_events

(* ---------------- enabled path ---------------- *)

let test_recording_basics () =
  let x, report =
    Probe.with_recording (fun () ->
        Probe.count "a";
        Probe.count ~n:4 "a";
        Probe.count "b";
        Probe.event (Event.Note { source = "t"; key = "k"; value = "v" });
        Probe.span "outer" (fun () -> Probe.span "inner" (fun () -> 42)))
  in
  check int_c "result" 42 x;
  check int_c "a" 5 (Report.counter report "a");
  check int_c "b" 1 (Report.counter report "b");
  check int_c "absent" 0 (Report.counter report "zzz");
  check int_c "events" 1 (List.length report.Report.events);
  let span_paths = List.map fst report.Report.spans in
  check bool_c "outer span" true (List.mem "outer" span_paths);
  check bool_c "nested path" true (List.mem "outer/inner" span_paths);
  List.iter
    (fun (_, { Report.calls; ns }) ->
      check int_c "calls" 1 calls;
      check bool_c "time >= 0" true (Int64.compare ns 0L >= 0))
    report.Report.spans

(* a raise between enter and leave only loses the skipped frames *)
let test_span_unwind_on_raise () =
  let (), report =
    Probe.with_recording (fun () ->
        try Probe.span "guarded" (fun () -> failwith "boom") with Failure _ -> ())
  in
  match report.Report.spans with
  | [ ("guarded", { Report.calls = 1; _ }) ] -> ()
  | spans -> Alcotest.failf "unexpected spans: %s" (String.concat "," (List.map fst spans))

let test_merge () =
  let (), r1 =
    Probe.with_recording (fun () ->
        Probe.count ~n:3 "x";
        Probe.leave (Probe.enter "s"))
  in
  let (), r2 =
    Probe.with_recording (fun () ->
        Probe.count ~n:4 "x";
        Probe.count "y";
        Probe.leave (Probe.enter "s"))
  in
  let m = Report.merge r1 r2 in
  check int_c "x summed" 7 (Report.counter m "x");
  check int_c "y" 1 (Report.counter m "y");
  match List.assoc_opt "s" m.Report.spans with
  | Some { Report.calls = 2; _ } -> ()
  | _ -> Alcotest.fail "span calls not summed"

(* ---------------- counters the algorithms advertise ---------------- *)

(* Deterministic instance on which both class-jumping searches take jump
   steps (the [expensive] family stresses Lemma 3 / Lemma 5 paths; the
   cram test pins the same instance's exact counter values). *)
let jumpy_instance () =
  let spec = Bss_workloads.Generator.by_name "expensive" in
  spec.Bss_workloads.Generator.generate (Prng.create 1) ~m:16 ~n:48

let profile algorithm variant inst =
  let _, report = Probe.with_recording (fun () -> Solver.solve ~algorithm variant inst) in
  report

let test_solver_counters () =
  let inst = jumpy_instance () in
  let r = profile Solver.Approx3_2 Variant.Splittable inst in
  check bool_c "split bound tests" true (Report.counter r "splittable_cj.bound_tests" > 0);
  check bool_c "split jump steps" true (Report.counter r "splittable_cj.jump_steps" > 0);
  let r = profile Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "pmtn bound tests" true (Report.counter r "pmtn_cj.bound_tests" > 0);
  check bool_c "pmtn jump steps" true (Report.counter r "pmtn_cj.jump_steps" > 0);
  let r = profile Solver.Approx3_2 Variant.Nonpreemptive inst in
  check bool_c "nonp guesses" true (Report.counter r "nonp_search.guesses" > 0);
  let r = profile (Solver.Approx3_2_eps (Rat.of_ints 1 8)) Variant.Nonpreemptive inst in
  check bool_c "eps guesses" true (Report.counter r "dual_search.guesses" > 0);
  check bool_c "eps verdicts partition guesses" true
    (Report.counter r "dual_search.accepted" + Report.counter r "dual_search.rejected"
    = Report.counter r "dual_search.guesses")

(* counters are deterministic: two identical runs, identical reports
   modulo span timings *)
let test_counters_deterministic () =
  let inst = jumpy_instance () in
  let r1 = profile Solver.Approx3_2 Variant.Preemptive inst in
  let r2 = profile Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "counters equal" true (r1.Report.counters = r2.Report.counters);
  check int_c "event count equal" (List.length r1.Report.events) (List.length r2.Report.events)

(* ---------------- sinks ---------------- *)

let sample_report () =
  let _, report =
    Probe.with_recording (fun () ->
        Probe.count ~n:2 "k";
        Probe.event (Event.Guess_rejected { source = "t"; t = Rat.of_ints 7 2; reason = "load" });
        Probe.span "s" (fun () -> ()))
  in
  report

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_table () =
  let t = Render.table ~events:true (sample_report ()) in
  List.iter
    (fun needle -> check bool_c ("table has " ^ needle) true (string_contains t needle))
    [ "counter"; "k"; "2"; "span"; "s"; "guess_rejected" ]

let test_render_json_and_csv () =
  let r = sample_report () in
  let j = Render.json r in
  check bool_c "json counters" true (string_contains j "\"k\":2");
  check bool_c "json rejected event" true (string_contains j "\"guess_rejected\"");
  check bool_c "json rational" true (string_contains j "7/2");
  let lines = String.split_on_char '\n' (Render.jsonl r) |> List.filter (fun l -> l <> "") in
  check bool_c "jsonl one object per line" true
    (List.for_all (fun l -> l.[0] = '{' && l.[String.length l - 1] = '}') lines);
  let csv = Render.csv r in
  check bool_c "csv header" true (string_contains csv "kind,name,value,detail");
  check bool_c "csv counter row" true (string_contains csv "counter,k,2,")

let test_event_cap () =
  let (), report =
    Probe.with_recording (fun () ->
        for i = 1 to Report.event_cap + 10 do
          Probe.event (Event.Note { source = "t"; key = "i"; value = string_of_int i })
        done)
  in
  check int_c "capped" Report.event_cap (List.length report.Report.events);
  check int_c "drops counted" 10 report.Report.dropped_events

let () =
  Alcotest.run "bss_obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "no allocation" `Quick test_disabled_no_alloc;
          Alcotest.test_case "adds nothing" `Quick test_disabled_adds_nothing;
        ] );
      ( "recording",
        [
          Alcotest.test_case "basics" `Quick test_recording_basics;
          Alcotest.test_case "unwind on raise" `Quick test_span_unwind_on_raise;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "event cap" `Quick test_event_cap;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "advertised counters" `Quick test_solver_counters;
          Alcotest.test_case "deterministic" `Quick test_counters_deterministic;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "json+csv" `Quick test_render_json_and_csv;
        ] );
    ]
