(* Tests for Theorem 1: the O(n) 2-approximations. *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool

let fixture () =
  Instance.make ~m:3 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]

let test_splittable_fixture () =
  let inst = fixture () in
  let s = Two_approx.splittable inst in
  let tmin = Lower_bounds.t_min Variant.Splittable inst in
  Helpers.check_feasible_within ~variant:Variant.Splittable ~num:2 ~den:1 inst s tmin

let test_nonpreemptive_fixture () =
  let inst = fixture () in
  let s = Two_approx.nonpreemptive inst in
  let tmin = Lower_bounds.t_min Variant.Nonpreemptive inst in
  Helpers.check_feasible_within ~variant:Variant.Nonpreemptive ~num:2 ~den:1 inst s tmin

let test_single_machine () =
  (* m = 1: everything runs on one machine; makespan is exactly N. *)
  let inst = Instance.make ~m:1 ~setups:[| 2; 3 |] ~jobs:[| (0, 4); (1, 5); (0, 1) |] in
  let s = Two_approx.nonpreemptive inst in
  Checker.check_exn Variant.Nonpreemptive inst s;
  check bool_c "makespan = N" true (Rat.equal (Schedule.makespan s) (Rat.of_int inst.Instance.total));
  let s = Two_approx.splittable inst in
  Checker.check_exn Variant.Splittable inst s

let test_one_class_many_machines () =
  let inst = Instance.make ~m:6 ~setups:[| 5 |] ~jobs:(Array.init 12 (fun _ -> (0, 3))) in
  List.iter
    (fun v ->
      let s = Two_approx.solve v inst in
      let tmin = Lower_bounds.t_min v inst in
      Helpers.check_feasible_within ~variant:v ~num:2 ~den:1 inst s tmin)
    Variant.all

let test_many_machines_few_jobs () =
  (* m >> n: splittable may use all machines; next-fit uses few. *)
  let inst = Instance.make ~m:40 ~setups:[| 3; 1 |] ~jobs:[| (0, 9); (1, 2) |] in
  List.iter
    (fun v ->
      let s = Two_approx.solve v inst in
      let tmin = Lower_bounds.t_min v inst in
      Helpers.check_feasible_within ~variant:v ~num:2 ~den:1 inst s tmin)
    Variant.all

let test_huge_setups () =
  let inst = Instance.make ~m:3 ~setups:[| 100; 90; 80 |] ~jobs:[| (0, 1); (1, 1); (2, 1) |] in
  List.iter
    (fun v ->
      let s = Two_approx.solve v inst in
      let tmin = Lower_bounds.t_min v inst in
      Helpers.check_feasible_within ~variant:v ~num:2 ~den:1 inst s tmin)
    Variant.all

let prop_all_variants =
  QCheck2.Test.make ~name:"2-approx feasible and within 2*Tmin" ~count:500 (Helpers.gen_instance ())
    (fun inst ->
      List.for_all
        (fun v ->
          let s = Two_approx.solve v inst in
          let tmin = Lower_bounds.t_min v inst in
          Checker.is_feasible v inst s && Helpers.within_factor ~num:2 ~den:1 s tmin)
        Variant.all)

let prop_stress_shapes =
  QCheck2.Test.make ~name:"2-approx on extreme shapes" ~count:200
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* shape = int_range 0 2 in
      return (seed, shape))
    (fun (seed, shape) ->
      let rng = Prng.create seed in
      let inst =
        match shape with
        | 0 -> Helpers.random_instance ~max_m:64 ~max_c:2 ~max_extra_jobs:3 rng (* m >> n *)
        | 1 -> Helpers.random_instance ~max_m:2 ~max_c:8 ~max_extra_jobs:60 rng (* n >> m *)
        | _ -> Helpers.random_instance ~max_setup:200 ~max_time:2 rng (* setup-dominated *)
      in
      List.for_all
        (fun v ->
          let s = Two_approx.solve v inst in
          Checker.is_feasible v inst s
          && Helpers.within_factor ~num:2 ~den:1 s (Lower_bounds.t_min v inst))
        Variant.all)

let () =
  Alcotest.run "two_approx"
    [
      ( "unit",
        [
          Alcotest.test_case "splittable fixture" `Quick test_splittable_fixture;
          Alcotest.test_case "nonpreemptive fixture" `Quick test_nonpreemptive_fixture;
          Alcotest.test_case "single machine" `Quick test_single_machine;
          Alcotest.test_case "one class many machines" `Quick test_one_class_many_machines;
          Alcotest.test_case "many machines few jobs" `Quick test_many_machines_few_jobs;
          Alcotest.test_case "huge setups" `Quick test_huge_setups;
        ] );
      Helpers.qsuite "props" [ prop_all_variants; prop_stress_shapes ];
    ]
