(* Tests for the continuous knapsack solvers and the DP oracle. *)

open Bss_util
open Bss_knapsack

let check = Alcotest.check
let bool_c = Alcotest.bool
let rat_c = Alcotest.testable Rat.pp Rat.equal

let item id profit weight = { Knapsack.id; profit = Rat.of_int profit; weight = Rat.of_int weight }

let test_sorted_basic () =
  (* Classic: items (p,w): (60,10) (100,20) (120,30), capacity 50.
     Continuous optimum: 60 + 100 + 120*(20/30) = 240. *)
  let items = [| item 0 60 10; item 1 100 20; item 2 120 30 |] in
  let sol = Knapsack.solve_sorted items ~capacity:(Rat.of_int 50) in
  check rat_c "value" (Rat.of_int 240) sol.Knapsack.value;
  check rat_c "used" (Rat.of_int 50) sol.Knapsack.used;
  check bool_c "split is item 2" true (sol.Knapsack.split = Some 2);
  check rat_c "fraction" (Rat.of_ints 2 3) sol.Knapsack.take.(2)

let test_sorted_all_fit () =
  let items = [| item 0 5 1; item 1 3 1 |] in
  let sol = Knapsack.solve_sorted items ~capacity:(Rat.of_int 10) in
  check rat_c "value" (Rat.of_int 8) sol.Knapsack.value;
  check bool_c "no split" true (sol.Knapsack.split = None)

let test_sorted_zero_capacity () =
  let items = [| item 0 5 1; item 1 7 0 |] in
  let sol = Knapsack.solve_sorted items ~capacity:Rat.zero in
  (* zero-weight item still taken *)
  check rat_c "value" (Rat.of_int 7) sol.Knapsack.value;
  check rat_c "used" Rat.zero sol.Knapsack.used

let test_sorted_negative_capacity_rejected_items () =
  let sol = Knapsack.solve_sorted [| item 0 5 2 |] ~capacity:(Rat.of_int (-1)) in
  check rat_c "nothing" Rat.zero sol.Knapsack.value

let test_empty () =
  let sol = Knapsack.solve_sorted [||] ~capacity:(Rat.of_int 5) in
  check rat_c "zero" Rat.zero sol.Knapsack.value;
  let sol = Knapsack.solve_linear [||] ~capacity:(Rat.of_int 5) in
  check rat_c "zero" Rat.zero sol.Knapsack.value

let test_oracle () =
  check Alcotest.int "dp" 220
    (Knapsack.integral_oracle ~profits:[| 60; 100; 120 |] ~weights:[| 10; 20; 30 |] ~capacity:50);
  check Alcotest.int "dp zero cap" 0 (Knapsack.integral_oracle ~profits:[| 5 |] ~weights:[| 1 |] ~capacity:0)

(* ---------------- properties ---------------- *)

let gen_items =
  QCheck2.Gen.(
    let* k = int_range 1 12 in
    let* profits = array_size (return k) (int_range 0 30) in
    let* weights = array_size (return k) (int_range 0 30) in
    let* cap = int_range 0 100 in
    return (profits, weights, cap))

let build profits weights =
  Array.init (Array.length profits) (fun i -> item i profits.(i) weights.(i))

let feasible_solution items cap (sol : Knapsack.solution) =
  let ok = ref true in
  let frac = ref 0 in
  Array.iteri
    (fun i x ->
      if Rat.sign x < 0 || Rat.( > ) x Rat.one then ok := false;
      if (not (Rat.is_zero x)) && not (Rat.equal x Rat.one) then incr frac;
      ignore items.(i))
    sol.Knapsack.take;
  !ok && !frac <= 1 && Rat.( <= ) sol.Knapsack.used (Rat.max Rat.zero cap)

let prop_solvers_agree =
  QCheck2.Test.make ~name:"sorted and linear solvers reach equal value" ~count:500 gen_items
    (fun (profits, weights, cap) ->
      let items = build profits weights in
      let capacity = Rat.of_int cap in
      let a = Knapsack.solve_sorted items ~capacity in
      let b = Knapsack.solve_linear items ~capacity in
      Rat.equal a.Knapsack.value b.Knapsack.value
      && feasible_solution items capacity a
      && feasible_solution items capacity b)

let prop_continuous_bounds_integral =
  QCheck2.Test.make ~name:"integral <= continuous <= integral + max profit" ~count:300 gen_items
    (fun (profits, weights, cap) ->
      let items = build profits weights in
      let cont = Knapsack.solve_sorted items ~capacity:(Rat.of_int cap) in
      let integral = Knapsack.integral_oracle ~profits ~weights ~capacity:cap in
      let pmax = Array.fold_left max 0 profits in
      Rat.( >= ) cont.Knapsack.value (Rat.of_int integral)
      && Rat.( <= ) cont.Knapsack.value (Rat.of_int (integral + pmax)))

let prop_monotone_capacity =
  QCheck2.Test.make ~name:"value is monotone in capacity" ~count:300 gen_items
    (fun (profits, weights, cap) ->
      let items = build profits weights in
      let v1 = (Knapsack.solve_sorted items ~capacity:(Rat.of_int cap)).Knapsack.value in
      let v2 = (Knapsack.solve_sorted items ~capacity:(Rat.of_int (cap + 10))).Knapsack.value in
      Rat.( <= ) v1 v2)

(* Exchange-argument optimality check against brute force over fractional
   choices restricted to item boundaries: continuous greedy is optimal, so
   value must dominate every 0/1 solution and equal the LP bound achieved by
   sorting — verified here against an exhaustive 0/1 enumeration plus one
   fractional fill. *)
let prop_dominates_enumeration =
  QCheck2.Test.make ~name:"greedy dominates exhaustive fractional fills" ~count:200
    QCheck2.Gen.(
      let* k = int_range 1 8 in
      let* profits = array_size (return k) (int_range 0 12) in
      let* weights = array_size (return k) (int_range 1 12) in
      let* cap = int_range 0 40 in
      return (profits, weights, cap))
    (fun (profits, weights, cap) ->
      let items = build profits weights in
      let k = Array.length items in
      let best = ref Rat.zero in
      (* enumerate subsets taken fully; fill the remainder with the best
         density leftover fractionally *)
      for mask = 0 to (1 lsl k) - 1 do
        let w = ref 0 and p = ref 0 in
        for i = 0 to k - 1 do
          if mask land (1 lsl i) <> 0 then begin
            w := !w + weights.(i);
            p := !p + profits.(i)
          end
        done;
        if !w <= cap then begin
          let rem = cap - !w in
          let value = ref (Rat.of_int !p) in
          let best_frac = ref Rat.zero in
          for i = 0 to k - 1 do
            if mask land (1 lsl i) = 0 then begin
              let frac = Rat.min Rat.one (Rat.of_ints rem weights.(i)) in
              let gain = Rat.mul frac (Rat.of_int profits.(i)) in
              if Rat.( > ) gain !best_frac then best_frac := gain
            end
          done;
          value := Rat.add !value !best_frac;
          if Rat.( > ) !value !best then best := !value
        end
      done;
      let sol = Knapsack.solve_sorted items ~capacity:(Rat.of_int cap) in
      Rat.( >= ) sol.Knapsack.value !best)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bss_knapsack"
    [
      ( "unit",
        [
          Alcotest.test_case "classic" `Quick test_sorted_basic;
          Alcotest.test_case "all fit" `Quick test_sorted_all_fit;
          Alcotest.test_case "zero capacity" `Quick test_sorted_zero_capacity;
          Alcotest.test_case "negative capacity" `Quick test_sorted_negative_capacity_rejected_items;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "dp oracle" `Quick test_oracle;
        ] );
      qsuite "props"
        [ prop_solvers_agree; prop_continuous_bounds_integral; prop_monotone_capacity; prop_dominates_enumeration ];
    ]
