(* Tests for schedule compaction: feasibility preservation, monotone
   makespan, and the practical improvement it buys on the dual
   constructions. *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let rat_c = Alcotest.testable Rat.pp Rat.equal

let test_closes_gaps () =
  let inst = Instance.make ~m:1 ~setups:[| 2 |] ~jobs:[| (0, 3); (0, 4) |] in
  let s = Schedule.create 1 in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:(r 5) ~dur:(r 2);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 10) ~dur:(r 3);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 20) ~dur:(r 4);
  let c = Compaction.compact Variant.Nonpreemptive inst s in
  Checker.check_exn Variant.Nonpreemptive inst c;
  check rat_c "gapless" (r 9) (Schedule.makespan c)

let test_respects_job_sequentiality () =
  (* job 0 preempted across two machines; its later piece must not be
     pulled before the earlier one ends *)
  let inst = Instance.make ~m:2 ~setups:[| 1 |] ~jobs:[| (0, 10); (0, 2) |] in
  let s = Schedule.create 2 in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:(r 0) ~dur:(r 1);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 1) ~dur:(r 6);
  Schedule.add_setup s ~machine:1 ~cls:0 ~start:(r 0) ~dur:(r 1);
  Schedule.add_work s ~machine:1 ~job:1 ~start:(r 1) ~dur:(r 2);
  (* second piece of job 0 far in the future on machine 1 *)
  Schedule.add_work s ~machine:1 ~job:0 ~start:(r 20) ~dur:(r 4);
  Checker.check_exn Variant.Preemptive inst s;
  let c = Compaction.compact Variant.Preemptive inst s in
  Checker.check_exn Variant.Preemptive inst c;
  (* the piece lands exactly when its first piece ends: at 7, not at 3 *)
  let pieces = List.sort compare (Schedule.work_of_job c 0) in
  (match pieces with
  | [ (0, s1, _); (1, s2, _) ] ->
    check rat_c "first piece" (r 1) s1;
    check rat_c "second piece waits" (r 7) s2
  | _ -> Alcotest.fail "unexpected piece layout");
  check rat_c "makespan improved" (r 11) (Schedule.makespan c)

let prop_preserves_feasibility_never_longer =
  QCheck2.Test.make ~name:"compaction: feasible, never longer, idempotent" ~count:300
    (Helpers.gen_instance ())
    (fun inst ->
      List.for_all
        (fun v ->
          let raw =
            match v with
            | Variant.Splittable -> (Splittable_cj.solve inst).Splittable_cj.schedule
            | Variant.Preemptive -> (Pmtn_cj.solve inst).Pmtn_cj.schedule
            | Variant.Nonpreemptive -> (Nonp_search.solve inst).Nonp_search.schedule
          in
          let once = Compaction.compact v inst raw in
          let twice = Compaction.compact v inst once in
          Checker.is_feasible v inst once
          && Rat.( <= ) (Schedule.makespan once) (Schedule.makespan raw)
          && Rat.equal (Schedule.makespan twice) (Schedule.makespan once))
        Variant.all)

let prop_improves_dual_constructions =
  QCheck2.Test.make ~name:"solver with compaction at least matches raw duals" ~count:150
    (Helpers.gen_instance ())
    (fun inst ->
      List.for_all
        (fun v ->
          let raw =
            match v with
            | Variant.Splittable -> (Splittable_cj.solve inst).Splittable_cj.schedule
            | Variant.Preemptive -> (Pmtn_cj.solve inst).Pmtn_cj.schedule
            | Variant.Nonpreemptive -> (Nonp_search.solve inst).Nonp_search.schedule
          in
          let polished = (Solver.solve ~algorithm:Solver.Approx3_2 v inst).Solver.schedule in
          Rat.( <= ) (Schedule.makespan polished) (Schedule.makespan raw))
        Variant.all)

let () =
  Alcotest.run "compaction"
    [
      ( "unit",
        [
          Alcotest.test_case "closes gaps" `Quick test_closes_gaps;
          Alcotest.test_case "job sequentiality" `Quick test_respects_job_sequentiality;
        ] );
      Helpers.qsuite "props" [ prop_preserves_feasibility_never_longer; prop_improves_dual_constructions ];
    ]
