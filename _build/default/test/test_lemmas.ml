(* Direct property tests of the paper's lemmas and notes — the analysis
   layer, independent of any schedule construction. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_baselines


(* Lemma 3: if T' is a jump of f (T' = 2P_f/β_f(T')) and T'' <= T' a jump
   of i with P_f >= P_i, then 2P_i/(β_i(T'')+1) <= 2P_f/(β_f(T')+1). *)
let prop_lemma3 =
  QCheck2.Test.make ~name:"Lemma 3: next jumps stay ordered" ~count:500
    QCheck2.Gen.(
      let* pf = int_range 1 1_000 in
      let* pi = int_range 1 1_000 in
      let* bf = int_range 1 50 in
      let* bi = int_range 1 50 in
      return (max pf pi, min pf pi, bf, bi))
    (fun (pf, pi, bf, bi) ->
      (* jumps: T' = 2pf/bf, T'' = 2pi/bi; require T'' <= T' *)
      let t' = Rat.of_ints (2 * pf) bf and t'' = Rat.of_ints (2 * pi) bi in
      if Rat.( > ) t'' t' then true (* premise violated: nothing to check *)
      else
        Rat.( <= ) (Rat.of_ints (2 * pi) (bi + 1)) (Rat.of_ints (2 * pf) (bf + 1)))

(* Lemma 5 is the same statement for jumps 2(s+P)/(γ+2). *)
let prop_lemma5 =
  QCheck2.Test.make ~name:"Lemma 5: preemptive next jumps stay ordered" ~count:500
    QCheck2.Gen.(
      let* wf = int_range 1 2_000 in
      let* wi = int_range 1 2_000 in
      let* gf = int_range 0 50 in
      let* gi = int_range 0 50 in
      return (max wf wi, min wf wi, gf, gi))
    (fun (wf, wi, gf, gi) ->
      (* w = s + P; jumps T' = 2wf/(gf+2), T'' = 2wi/(gi+2), T'' <= T' *)
      let t' = Rat.of_ints (2 * wf) (gf + 2) and t'' = Rat.of_ints (2 * wi) (gi + 2) in
      if Rat.( > ) t'' t' then true
      else Rat.( <= ) (Rat.of_ints (2 * wi) (gi + 3)) (Rat.of_ints (2 * wf) (gf + 3)))

(* Notes 1 and 2: OPT >= max_i (s_i + t^(i)_max) — verified against the
   exact non-preemptive optimum (>= the preemptive one). *)
let prop_notes_1_2 =
  QCheck2.Test.make ~name:"Notes 1/2: s_i + t_max^i lower-bounds the optimum" ~count:150
    (Helpers.gen_instance ~max_m:3 ~max_c:3 ~max_extra_jobs:5 ~max_setup:10 ~max_time:12 ())
    (fun inst ->
      let opt = Exact.nonpreemptive_opt inst in
      Lower_bounds.setup_plus_tmax inst <= opt)

(* Lemma 2: no two expensive setups share a machine in a T-feasible
   schedule — our accepted duals must respect it within their 3/2T bound
   reinterpreted at T: check on the splittable dual's schedule that
   machines carrying a setup of expensive class i1 never also carry a
   setup of a different expensive class i2. *)
let prop_lemma2_in_constructions =
  QCheck2.Test.make ~name:"Lemma 2: expensive classes never share machines (split dual)" ~count:200
    (Helpers.gen_instance ())
    (fun inst ->
      let r = Splittable_cj.solve inst in
      let tee = r.Splittable_cj.accepted in
      let sched = r.Splittable_cj.schedule in
      let ok = ref true in
      for u = 0 to Schedule.machines sched - 1 do
        let expensive_classes =
          List.filter_map
            (fun (seg : Schedule.seg) ->
              match seg.Schedule.content with
              | Schedule.Setup i when Partition.is_expensive inst tee i -> Some i
              | Schedule.Setup _ | Schedule.Work _ -> None)
            (Schedule.segments sched u)
          |> List.sort_uniq compare
        in
        if List.length expensive_classes > 1 then ok := false
      done;
      !ok)

(* Lemma 1: accepted guesses satisfy the machine bound m >= Σ_exp β_i —
   i.e. the dual never uses more machines for expensive classes than it
   reserved. *)
let prop_lemma1_machine_budget =
  QCheck2.Test.make ~name:"Lemma 1: expensive machine usage within Σ β_i" ~count:200
    (Helpers.gen_instance ())
    (fun inst ->
      let r = Splittable_cj.solve inst in
      let tee = r.Splittable_cj.accepted in
      let sched = r.Splittable_cj.schedule in
      let budget =
        List.fold_left
          (fun acc i -> if Partition.is_expensive inst tee i then acc + Partition.beta inst tee i else acc)
          0
          (List.init (Instance.c inst) (fun i -> i))
      in
      let used = ref 0 in
      for u = 0 to Schedule.machines sched - 1 do
        let has_exp =
          List.exists
            (fun (seg : Schedule.seg) ->
              match seg.Schedule.content with
              | Schedule.Setup i -> Partition.is_expensive inst tee i
              | Schedule.Work _ -> false)
            (Schedule.segments sched u)
        in
        if has_exp then incr used
      done;
      !used <= budget)

(* The dual-approximation contract itself: T >= OPT is always accepted
   (Theorem (i) contrapositive), checked with exact optima. *)
let prop_duals_accept_above_opt =
  QCheck2.Test.make ~name:"duals accept every T >= exact OPT" ~count:100
    (Helpers.gen_instance ~max_m:3 ~max_c:3 ~max_extra_jobs:5 ~max_setup:10 ~max_time:12 ())
    (fun inst ->
      let opt_nonp = Exact.nonpreemptive_opt inst in
      let opt_split = Exact.splittable_opt_small inst in
      (* a few sample points at and above the optimum *)
      List.for_all
        (fun k ->
          let t_nonp = Rat.add_int (Rat.of_int opt_nonp) k in
          let t_split = Rat.add_int opt_split k in
          Dual.is_accepted (Nonp_dual.run inst t_nonp)
          && Dual.is_accepted (Splittable_dual.run inst t_split)
          && Dual.is_accepted (Pmtn_dual.run inst t_nonp))
        [ 0; 1; 7 ])

let () =
  Alcotest.run "lemmas"
    [
      Helpers.qsuite "jump-ordering" [ prop_lemma3; prop_lemma5 ];
      Helpers.qsuite "lower-bounds" [ prop_notes_1_2 ];
      Helpers.qsuite "structure" [ prop_lemma2_in_constructions; prop_lemma1_machine_budget ];
      Helpers.qsuite "dual-contract" [ prop_duals_accept_above_opt ];
    ]
