(* Tests for the compact machine-configuration representation
   (Appendix C.1). *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool
let rat_c = Alcotest.testable Rat.pp Rat.equal

(* An instance whose splittable schedule has many identical machines: one
   huge job of one class spanning most of the fleet. *)
let repetitive_instance m =
  Instance.make ~m ~setups:[| 6 |] ~jobs:[| (0, 10 * m); (0, 3) |]

let test_compression_on_repetitive () =
  let m = 40 in
  let inst = repetitive_instance m in
  let r = Splittable_cj.solve inst in
  let sched = r.Splittable_cj.schedule in
  let compact = Config_schedule.of_schedule sched in
  check bool_c "fewer configs than machines" true
    (List.length compact.Config_schedule.configs < Schedule.machines sched / 2);
  (* statistics agree with the explicit schedule *)
  check rat_c "makespan" (Schedule.makespan sched) (Config_schedule.makespan compact);
  check rat_c "load" (Schedule.total_load sched) (Config_schedule.total_load compact)

let test_expand_roundtrip_stats () =
  let inst = repetitive_instance 16 in
  let r = Splittable_cj.solve inst in
  let compact = Config_schedule.of_schedule r.Splittable_cj.schedule in
  let back = Config_schedule.expand compact in
  check rat_c "makespan" (Schedule.makespan r.Splittable_cj.schedule) (Schedule.makespan back);
  check rat_c "load" (Schedule.total_load r.Splittable_cj.schedule) (Schedule.total_load back);
  (* the expansion is splittable-feasible *)
  Checker.check_exn Variant.Splittable inst back

let test_direct_checker_agrees () =
  let inst = repetitive_instance 12 in
  let r = Splittable_cj.solve inst in
  let compact = Config_schedule.of_schedule r.Splittable_cj.schedule in
  (match Config_schedule.check_splittable inst compact with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "compact checker rejected: %s"
      (String.concat "; " (List.map Checker.violation_to_string vs)));
  (* corrupt a volume: drop one configuration *)
  match compact.Config_schedule.configs with
  | first :: rest ->
    let broken = { compact with Config_schedule.configs = { first with Config_schedule.multiplicity = first.Config_schedule.multiplicity + 1 } :: rest } in
    check bool_c "flags volume or machine excess" true
      (match Config_schedule.check_splittable inst broken with Ok () -> false | Error _ -> true)
  | [] -> Alcotest.fail "no configs"

let test_multiplicity_exceeds_m () =
  let compact =
    {
      Config_schedule.m = 1;
      configs =
        [
          {
            Config_schedule.segments =
              [ { Schedule.start = Rat.zero; dur = Rat.one; content = Schedule.Setup 0 } ];
            multiplicity = 2;
          };
        ];
    }
  in
  check bool_c "expand raises" true
    (try ignore (Config_schedule.expand compact); false with Invalid_argument _ -> true)

let test_size_counts_segments () =
  let inst = repetitive_instance 10 in
  let r = Splittable_cj.solve inst in
  let compact = Config_schedule.of_schedule r.Splittable_cj.schedule in
  let explicit = List.length (Schedule.all_segments r.Splittable_cj.schedule) in
  check bool_c "compact smaller" true (Config_schedule.size compact <= explicit);
  check bool_c "positive" true (Config_schedule.size compact > 0)

let prop_compact_equals_explicit_checker =
  QCheck2.Test.make ~name:"compact splittable checker = explicit checker on expand" ~count:200
    (Helpers.gen_instance ~max_m:10 ())
    (fun inst ->
      let r = Splittable_cj.solve inst in
      let compact = Config_schedule.of_schedule r.Splittable_cj.schedule in
      let direct = match Config_schedule.check_splittable inst compact with Ok () -> true | Error _ -> false in
      let explicit = Checker.is_feasible Variant.Splittable inst (Config_schedule.expand compact) in
      direct = explicit && direct)

let prop_roundtrip_preserves_machine_count =
  QCheck2.Test.make ~name:"compression preserves machines used and load" ~count:200
    (Helpers.gen_instance ())
    (fun inst ->
      let sched = Two_approx.splittable inst in
      let compact = Config_schedule.of_schedule sched in
      let used_explicit =
        List.length
          (List.filter
             (fun u -> Schedule.segments sched u <> [])
             (List.init (Schedule.machines sched) (fun u -> u)))
      in
      Config_schedule.machines_used compact = used_explicit
      && Rat.equal (Config_schedule.total_load compact) (Schedule.total_load sched)
      && Rat.equal (Config_schedule.makespan compact) (Schedule.makespan sched))

let () =
  Alcotest.run "config-schedule"
    [
      ( "unit",
        [
          Alcotest.test_case "compression" `Quick test_compression_on_repetitive;
          Alcotest.test_case "expand roundtrip" `Quick test_expand_roundtrip_stats;
          Alcotest.test_case "direct checker" `Quick test_direct_checker_agrees;
          Alcotest.test_case "multiplicity > m" `Quick test_multiplicity_exceeds_m;
          Alcotest.test_case "size" `Quick test_size_counts_segments;
        ] );
      Helpers.qsuite "props" [ prop_compact_equals_explicit_checker; prop_roundtrip_preserves_machine_count ];
    ]
