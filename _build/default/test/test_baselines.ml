(* Tests for the baselines: McNaughton, the Monma-Potts-style wrap, list
   scheduling, and the exact tiny-instance oracles. *)

open Bss_util
open Bss_instances
open Bss_baselines

let check = Alcotest.check
let bool_c = Alcotest.bool
let rat_c = Alcotest.testable Rat.pp Rat.equal

(* ---------------- McNaughton ---------------- *)

let test_mcnaughton_simple () =
  let times = [| 3; 3; 3 |] in
  let pieces, span = Mcnaughton.schedule ~m:3 ~times in
  check rat_c "span" (Rat.of_int 3) span;
  check bool_c "valid" true (Mcnaughton.is_valid ~m:3 ~times pieces)

let test_mcnaughton_split () =
  (* 2 machines, jobs 4,4,4: span = 6, middle job split *)
  let times = [| 4; 4; 4 |] in
  let pieces, span = Mcnaughton.schedule ~m:2 ~times in
  check rat_c "span" (Rat.of_int 6) span;
  check bool_c "valid" true (Mcnaughton.is_valid ~m:2 ~times pieces)

let test_mcnaughton_tmax_binding () =
  let times = [| 10; 1; 1 |] in
  let _, span = Mcnaughton.schedule ~m:3 ~times in
  check rat_c "span = tmax" (Rat.of_int 10) span

let prop_mcnaughton_valid =
  QCheck2.Test.make ~name:"mcnaughton always optimal and valid" ~count:300
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 1 20) (int_range 1 30)))
    (fun (m, times) ->
      let times = Array.of_list times in
      let pieces, span = Mcnaughton.schedule ~m ~times in
      Mcnaughton.is_valid ~m ~times pieces
      && Rat.equal span (Mcnaughton.optimal_makespan ~m ~times))

(* ---------------- Monma-Potts wrap ---------------- *)

let prop_mp_feasible_within_level =
  QCheck2.Test.make ~name:"MP wrap: pmtn-feasible, makespan <= level <= 2 Tmin" ~count:400
    (Helpers.gen_instance ())
    (fun inst ->
      let s = Monma_potts.schedule inst in
      let level = Monma_potts.level inst in
      Checker.is_feasible Variant.Preemptive inst s
      && Rat.( <= ) (Schedule.makespan s) level
      && Rat.( <= ) level (Rat.mul_int (Lower_bounds.t_min Variant.Preemptive inst) 2))

let test_mp_pays_setup_over_volume () =
  (* anti-wrap shape: MP's level is ~ N/m + s_max while OPT stays near
     N/m; this is the gap the paper's 3/2 algorithms close. *)
  let inst =
    Instance.make ~m:4
      ~setups:[| 50; 50; 50; 50 |]
      ~jobs:[| (0, 50); (1, 50); (2, 50); (3, 50) |]
  in
  (* OPT = 100 (one class per machine); MP level = N/m + smax = 150 *)
  let s = Monma_potts.schedule inst in
  Checker.check_exn Variant.Preemptive inst s;
  check rat_c "level" (Rat.of_int 150) (Monma_potts.level inst);
  check bool_c "exact opt is 100" true (Exact.nonpreemptive_opt inst = 100)

(* ---------------- list scheduling ---------------- *)

let prop_list_feasible_all_variants =
  QCheck2.Test.make ~name:"list scheduling feasible for all variants" ~count:300
    (Helpers.gen_instance ())
    (fun inst ->
      let g = List_scheduling.greedy inst and l = List_scheduling.lpt inst in
      List.for_all
        (fun v -> Checker.is_feasible v inst g && Checker.is_feasible v inst l)
        Variant.all)

let test_list_unbounded_ratio () =
  (* One giant splittable class: list scheduling cannot split it, the
     paper's algorithms can. *)
  let inst = Instance.make ~m:4 ~setups:[| 1 |] ~jobs:(Array.init 8 (fun _ -> (0, 25))) in
  let lpt = List_scheduling.lpt inst in
  (* whole class on one machine: makespan 201 *)
  check rat_c "lpt stuck" (Rat.of_int 201) (Schedule.makespan lpt);
  let r = Bss_core.Splittable_cj.solve inst in
  check bool_c "CJ splits far better" true
    Rat.(Schedule.makespan r.Bss_core.Splittable_cj.schedule < of_int 100)

(* ---------------- batch splitting (MP's second approach) ---------------- *)

let prop_batch_split_feasible_and_dominates_lpt =
  QCheck2.Test.make ~name:"batch-split: pmtn-feasible, never worse than batch LPT" ~count:300
    (Helpers.gen_instance ())
    (fun inst ->
      let split = Batch_split.schedule inst in
      let lpt = List_scheduling.lpt inst in
      Checker.is_feasible Variant.Preemptive inst split
      && Rat.( <= ) (Schedule.makespan split) (Schedule.makespan lpt))

let test_batch_split_relieves_giant_batch () =
  (* one heavy class on 2 machines: LPT = 1 + 40; splitting balances *)
  let inst = Instance.make ~m:2 ~setups:[| 1 |] ~jobs:[| (0, 20); (0, 20) |] in
  let lpt = List_scheduling.lpt inst in
  check rat_c "lpt stuck" (Rat.of_int 41) (Schedule.makespan lpt);
  let split = Batch_split.schedule inst in
  Checker.check_exn Variant.Preemptive inst split;
  (* balanced: (40 + 2)/2 = 21 *)
  check rat_c "balanced" (Rat.of_int 21) (Schedule.makespan split)

let test_batch_split_small_batches_regime () =
  (* the Monma-Potts small-batch regime: many light classes; the split
     heuristic should track the volume bound closely *)
  let rng = Prng.create 17 in
  let inst =
    Bss_workloads.Generator.small_batches.Bss_workloads.Generator.generate rng ~m:6 ~n:60
  in
  let split = Batch_split.schedule inst in
  Checker.check_exn Variant.Preemptive inst split;
  let lb = Lower_bounds.lower_bound Variant.Preemptive inst in
  check bool_c "within 3/2 of LB on small batches" true
    (Rat.( <= ) (Rat.mul_int (Schedule.makespan split) 2) (Rat.mul_int lb 3))

(* ---------------- exact oracles ---------------- *)

let test_exact_nonp_known () =
  (* 2 machines, 2 classes: best split puts each class on its own machine *)
  let inst = Instance.make ~m:2 ~setups:[| 3; 3 |] ~jobs:[| (0, 5); (0, 5); (1, 5); (1, 5) |] in
  check Alcotest.int "opt" 13 (Exact.nonpreemptive_opt inst);
  let inst1 = Instance.make ~m:1 ~setups:[| 2 |] ~jobs:[| (0, 7) |] in
  check Alcotest.int "single" 9 (Exact.nonpreemptive_opt inst1)

let test_exact_split_known () =
  (* one class, huge load: splitting wins: m=2, s=2, P=20:
     OPT = (20 + 2*2)/2 = 12 using both machines *)
  let inst = Instance.make ~m:2 ~setups:[| 2 |] ~jobs:[| (0, 10); (0, 10) |] in
  check rat_c "split opt" (Rat.of_int 12) (Exact.splittable_opt_small inst);
  (* expensive setup, tiny load: parallelizing still wins, since the job
     may run on both machines at once: (4 + 2*10)/2 = 12 < 14 *)
  let inst2 = Instance.make ~m:2 ~setups:[| 10 |] ~jobs:[| (0, 4) |] in
  check rat_c "parallel split" (Rat.of_int 12) (Exact.splittable_opt_small inst2);
  (* even s=10, P=1 splits: (1+20)/2 = 21/2 < 11 — with parallelism a
     second setup pays as soon as it halves the tail *)
  let inst3 = Instance.make ~m:2 ~setups:[| 10 |] ~jobs:[| (0, 1) |] in
  check rat_c "still splits" (Rat.of_ints 21 2) (Exact.splittable_opt_small inst3);
  (* the no-split case needs a load smaller than the setup gap: m=2,
     s=10, P=1 with only ONE machine: trivially 11 *)
  let inst4 = Instance.make ~m:1 ~setups:[| 10 |] ~jobs:[| (0, 1) |] in
  check rat_c "single machine" (Rat.of_int 11) (Exact.splittable_opt_small inst4)

let prop_exact_brackets =
  QCheck2.Test.make ~name:"LB <= OPT_split <= OPT_nonp <= N" ~count:150
    (Helpers.gen_instance ~max_m:3 ~max_c:3 ~max_extra_jobs:5 ~max_setup:10 ~max_time:12 ())
    (fun inst ->
      let opt_nonp = Exact.nonpreemptive_opt inst in
      let opt_split = Exact.splittable_opt_small inst in
      let lb_split = Lower_bounds.lower_bound Variant.Splittable inst in
      let lb_nonp = Lower_bounds.lower_bound Variant.Nonpreemptive inst in
      Rat.( <= ) lb_split opt_split
      && Rat.( <= ) opt_split (Rat.of_int opt_nonp)
      && Rat.( <= ) lb_nonp (Rat.of_int opt_nonp)
      && opt_nonp <= inst.Instance.total)

(* The headline ratio checks against true optima on tiny instances. *)
let prop_true_ratios_tiny =
  QCheck2.Test.make ~name:"3/2 algorithms beat 3/2 of the true optimum (tiny)" ~count:150
    (Helpers.gen_instance ~max_m:3 ~max_c:3 ~max_extra_jobs:5 ~max_setup:10 ~max_time:12 ())
    (fun inst ->
      let opt_nonp = Exact.nonpreemptive_opt inst in
      let opt_split = Exact.splittable_opt_small inst in
      let nonp = Bss_core.Nonp_search.solve inst in
      let split = Bss_core.Splittable_cj.solve inst in
      let pmtn = Bss_core.Pmtn_cj.solve inst in
      (* makespan <= 3/2 OPT for each variant; preemptive compares against
         OPT_nonp >= OPT_pmtn *)
      Rat.( <= )
        (Rat.mul_int (Schedule.makespan nonp.Bss_core.Nonp_search.schedule) 2)
        (Rat.of_int (3 * opt_nonp))
      && Rat.( <= )
           (Rat.mul_int (Schedule.makespan split.Bss_core.Splittable_cj.schedule) 2)
           (Rat.mul_int opt_split 3)
      && Rat.( <= )
           (Rat.mul_int (Schedule.makespan pmtn.Bss_core.Pmtn_cj.schedule) 2)
           (Rat.of_int (3 * opt_nonp)))

(* T* of each search is at most the corresponding exact optimum. *)
let prop_t_star_below_opt_tiny =
  QCheck2.Test.make ~name:"accepted T* <= exact OPT (tiny)" ~count:150
    (Helpers.gen_instance ~max_m:3 ~max_c:3 ~max_extra_jobs:5 ~max_setup:10 ~max_time:12 ())
    (fun inst ->
      let opt_nonp = Exact.nonpreemptive_opt inst in
      let opt_split = Exact.splittable_opt_small inst in
      let nonp = Bss_core.Nonp_search.solve inst in
      let split = Bss_core.Splittable_cj.solve inst in
      let pmtn = Bss_core.Pmtn_cj.solve inst in
      Rat.( <= ) nonp.Bss_core.Nonp_search.accepted (Rat.of_int opt_nonp)
      && Rat.( <= ) split.Bss_core.Splittable_cj.accepted opt_split
      && Rat.( <= ) pmtn.Bss_core.Pmtn_cj.accepted (Rat.of_int opt_nonp))

let () =
  Alcotest.run "baselines"
    [
      ( "mcnaughton",
        [
          Alcotest.test_case "simple" `Quick test_mcnaughton_simple;
          Alcotest.test_case "split" `Quick test_mcnaughton_split;
          Alcotest.test_case "tmax binding" `Quick test_mcnaughton_tmax_binding;
        ] );
      ("monma-potts", [ Alcotest.test_case "pays setup over volume" `Quick test_mp_pays_setup_over_volume ]);
      ("list", [ Alcotest.test_case "unbounded ratio example" `Quick test_list_unbounded_ratio ]);
      ( "batch-split",
        [
          Alcotest.test_case "relieves giant batch" `Quick test_batch_split_relieves_giant_batch;
          Alcotest.test_case "small-batch regime" `Quick test_batch_split_small_batches_regime;
        ] );
      ( "exact",
        [
          Alcotest.test_case "nonp known" `Quick test_exact_nonp_known;
          Alcotest.test_case "split known" `Quick test_exact_split_known;
        ] );
      Helpers.qsuite "props"
        [
          prop_mcnaughton_valid;
          prop_mp_feasible_within_level;
          prop_list_feasible_all_variants;
          prop_batch_split_feasible_and_dominates_lpt;
          prop_exact_brackets;
          prop_true_ratios_tiny;
          prop_t_star_below_opt_tiny;
        ];
    ]
