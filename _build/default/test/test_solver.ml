(* Tests for the (3/2+eps) binary search (Theorem 2), the unified solver
   facade, and the workload generators. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_workloads

let check = Alcotest.check
let bool_c = Alcotest.bool

let fixture () =
  Instance.make ~m:3 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]

(* ---------------- dual_search ---------------- *)

let test_search_all_variants () =
  let inst = fixture () in
  let eps = Rat.of_ints 1 10 in
  List.iter
    (fun v ->
      let dual =
        match v with
        | Variant.Splittable -> Splittable_dual.run
        | Variant.Preemptive -> fun i t -> Pmtn_dual.run i t
        | Variant.Nonpreemptive -> Nonp_dual.run
      in
      let t_min = Lower_bounds.t_min v inst in
      let r = Dual_search.search ~dual ~epsilon:eps ~t_min inst in
      Checker.check_exn v inst r.Dual_search.schedule;
      (* makespan <= 3/2 accepted, accepted <= (1 + 2eps/3)(lowest rejected) *)
      check bool_c "within 3/2 accepted" true
        (Helpers.within_factor ~num:3 ~den:2 r.Dual_search.schedule r.Dual_search.accepted))
    Variant.all

let test_search_call_budget () =
  let inst = fixture () in
  let eps = Rat.of_ints 1 1000 in
  let t_min = Lower_bounds.t_min Variant.Splittable inst in
  let r = Dual_search.search ~dual:Splittable_dual.run ~epsilon:eps ~t_min inst in
  (* log2(3/(2*eps)) + 2 calls *)
  check bool_c "O(log 1/eps) calls" true (r.Dual_search.dual_calls <= 11 + 3)

let test_search_invalid_epsilon () =
  let inst = fixture () in
  check bool_c "raises" true
    (try
       ignore
         (Dual_search.search ~dual:Splittable_dual.run ~epsilon:Rat.zero
            ~t_min:(Lower_bounds.t_min Variant.Splittable inst) inst);
       false
     with Invalid_argument _ -> true)

let prop_search_guarantee =
  QCheck2.Test.make ~name:"(3/2+eps) search: feasible; accepted within eps' of a rejected guess"
    ~count:200 (Helpers.gen_instance ())
    (fun inst ->
      let eps = Rat.of_ints 1 7 in
      List.for_all
        (fun v ->
          let dual =
            match v with
            | Variant.Splittable -> Splittable_dual.run
            | Variant.Preemptive -> fun i t -> Pmtn_dual.run i t
            | Variant.Nonpreemptive -> Nonp_dual.run
          in
          let t_min = Lower_bounds.t_min v inst in
          let r = Dual_search.search ~dual ~epsilon:eps ~t_min inst in
          Checker.is_feasible v inst r.Dual_search.schedule
          && Helpers.within_factor ~num:3 ~den:2 r.Dual_search.schedule r.Dual_search.accepted)
        Variant.all)

(* ---------------- solver facade ---------------- *)

let prop_solver_certificates =
  QCheck2.Test.make ~name:"solver: schedules feasible and within certificates" ~count:150
    (Helpers.gen_instance ())
    (fun inst ->
      List.for_all
        (fun v ->
          List.for_all
            (fun algorithm ->
              let r = Solver.solve ~algorithm v inst in
              Checker.is_feasible v inst r.Solver.schedule
              && Rat.( <= ) (Schedule.makespan r.Solver.schedule) r.Solver.certificate
              && String.length (Solver.algorithm_name ~algorithm v) > 0)
            [ Solver.Approx2; Solver.Approx3_2_eps (Rat.of_ints 1 4); Solver.Approx3_2 ])
        Variant.all)

let test_solver_guarantees () =
  let inst = fixture () in
  let r2 = Solver.solve ~algorithm:Solver.Approx2 Variant.Splittable inst in
  check bool_c "2" true (Rat.equal r2.Solver.guarantee Rat.two);
  let r32 = Solver.solve ~algorithm:Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "3/2" true (Rat.equal r32.Solver.guarantee (Rat.of_ints 3 2));
  let re = Solver.solve ~algorithm:(Solver.Approx3_2_eps (Rat.of_ints 1 2)) Variant.Nonpreemptive inst in
  check bool_c "2 = 3/2+1/2" true (Rat.equal re.Solver.guarantee Rat.two)

(* ---------------- dual outcome API ---------------- *)

let test_dual_printers_and_accessors () =
  let inst = fixture () in
  let acc = Splittable_dual.run inst (Rat.of_int inst.Instance.total) in
  check bool_c "is_accepted" true (Dual.is_accepted acc);
  check bool_c "accepted some" true (Dual.accepted acc <> None);
  check bool_c "accepted prints" true
    (String.length (Format.asprintf "%a" Dual.pp_outcome acc) > 0);
  let rej = Splittable_dual.run inst Rat.one in
  check bool_c "not accepted" false (Dual.is_accepted rej);
  check bool_c "rejected none" true (Dual.accepted rej = None);
  check bool_c "rejection prints" true
    (String.length (Format.asprintf "%a" Dual.pp_outcome rej) > 0);
  (* all three rejection constructors print *)
  List.iter
    (fun r -> check bool_c "prints" true (String.length (Format.asprintf "%a" Dual.pp_rejection r) > 0))
    [
      Dual.Below_trivial_bound { bound = Rat.one };
      Dual.Load_exceeds { required = Rat.two; available = Rat.one };
      Dual.Machines_exceed { required = 3; available = 1 };
    ]

let test_algorithm_names_distinct () =
  let names =
    List.concat_map
      (fun v ->
        List.map
          (fun a -> Solver.algorithm_name ~algorithm:a v)
          [ Solver.Approx2; Solver.Approx3_2_eps (Rat.of_ints 1 8); Solver.Approx3_2 ])
      Variant.all
  in
  (* 2-approx and 3/2+eps names are variant-independent; the exact 3/2
     names differ per variant *)
  check bool_c "some distinct" true (List.length (List.sort_uniq compare names) >= 5)

(* ---------------- workloads ---------------- *)

let test_generators_produce_valid_instances () =
  List.iter
    (fun (spec : Generator.spec) ->
      let rng = Prng.create 42 in
      let inst = spec.Generator.generate rng ~m:8 ~n:64 in
      check bool_c (spec.Generator.name ^ " nonempty") true (Instance.n inst >= 1);
      check bool_c (spec.Generator.name ^ " classes nonempty") true
        (List.for_all (fun i -> Instance.class_size inst i >= 1) (List.init (Instance.c inst) (fun i -> i))))
    Generator.all

let test_generators_deterministic () =
  List.iter
    (fun (spec : Generator.spec) ->
      let a = spec.Generator.generate (Prng.create 7) ~m:4 ~n:30 in
      let b = spec.Generator.generate (Prng.create 7) ~m:4 ~n:30 in
      check bool_c spec.Generator.name true (Instance.equal a b))
    Generator.all

let test_generator_job_counts () =
  List.iter
    (fun (spec : Generator.spec) ->
      let inst = spec.Generator.generate (Prng.create 1) ~m:4 ~n:100 in
      let n = Instance.n inst in
      (* within a factor-ish of the target (families round to their shape) *)
      (* tiny clamps to <= 9 jobs; anti-wrap is one tiny job per class by
         design *)
      check bool_c
        (Printf.sprintf "%s count %d" spec.Generator.name n)
        true
        (n >= 8 || spec.Generator.name = "tiny" || spec.Generator.name = "anti-wrap"))
    Generator.all

let test_suites () =
  let t1 = Suite.table1 () in
  check bool_c "table1 nonempty" true (List.length t1 >= 16);
  let tiny = Suite.tiny_exact () in
  check bool_c "tiny" true (List.length tiny = 40);
  let sc = Suite.scaling ~family:Generator.uniform ~m:8 [ 100; 200 ] in
  check bool_c "scaling sizes" true (List.length sc = 2);
  (* deterministic: regenerating gives equal instances *)
  let t1' = Suite.table1 () in
  check bool_c "reproducible" true
    (List.for_all2 (fun a b -> Instance.equal a.Suite.instance b.Suite.instance) t1 t1')

let test_by_name () =
  check bool_c "found" true (Generator.by_name "uniform" == Generator.uniform);
  check bool_c "not found" true (try ignore (Generator.by_name "nope"); false with Not_found -> true)

let () =
  Alcotest.run "solver"
    [
      ( "dual-search",
        [
          Alcotest.test_case "all variants" `Quick test_search_all_variants;
          Alcotest.test_case "call budget" `Quick test_search_call_budget;
          Alcotest.test_case "invalid epsilon" `Quick test_search_invalid_epsilon;
        ] );
      ( "facade",
        [
          Alcotest.test_case "guarantees" `Quick test_solver_guarantees;
          Alcotest.test_case "dual printers" `Quick test_dual_printers_and_accessors;
          Alcotest.test_case "algorithm names" `Quick test_algorithm_names_distinct;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "valid instances" `Quick test_generators_produce_valid_instances;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "job counts" `Quick test_generator_job_counts;
          Alcotest.test_case "suites" `Quick test_suites;
          Alcotest.test_case "by name" `Quick test_by_name;
        ] );
      Helpers.qsuite "props" [ prop_search_guarantee; prop_solver_certificates ];
    ]
