(* Tests for the compact splittable construction (Appendix C.1): it must
   agree with the explicit dual on accept/reject, produce checkable
   schedules, and stay O(n + c)-sized even for enormous machine counts. *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool

let prop_agrees_with_explicit_dual =
  QCheck2.Test.make ~name:"compact dual accepts/rejects exactly like the explicit one" ~count:300
    QCheck2.Gen.(pair (Helpers.gen_instance ()) (int_range 1 300))
    (fun (inst, t) ->
      let tee = Rat.of_int t in
      match (Splittable_compact.run inst tee, Splittable_dual.run inst tee) with
      | Splittable_compact.Accepted compact, Dual.Accepted explicit ->
        (* both feasible within 3/2 T; makespans may differ slightly by
           construction but both are bounded *)
        let expanded = Config_schedule.expand compact in
        Checker.is_feasible Variant.Splittable inst expanded
        && Helpers.within_factor ~num:3 ~den:2 expanded tee
        && Helpers.within_factor ~num:3 ~den:2 explicit tee
        && (match Config_schedule.check_splittable inst compact with Ok () -> true | Error _ -> false)
      | Splittable_compact.Rejected _, Dual.Rejected _ -> true
      | Splittable_compact.Accepted _, Dual.Rejected _ | Splittable_compact.Rejected _, Dual.Accepted _ ->
        false)

let prop_solve_matches_cj =
  QCheck2.Test.make ~name:"compact solve returns the same T* as class jumping" ~count:200
    (Helpers.gen_instance ~max_m:16 ())
    (fun inst ->
      let compact, t_compact = Splittable_compact.solve inst in
      let r = Splittable_cj.solve inst in
      Rat.equal t_compact r.Splittable_cj.accepted
      && Checker.is_feasible Variant.Splittable inst (Config_schedule.expand compact))

let test_huge_machine_count () =
  (* m = 1_000_000 with a handful of jobs: the compact form must stay tiny
     and be produced quickly; expanding it would allocate a million
     machine slots, so statistics are computed on the compact form. *)
  let m = 1_000_000 in
  let inst =
    Instance.make ~m ~setups:[| 3; 5 |]
      ~jobs:[| (0, 40_000_000); (0, 7); (1, 9_000_000); (1, 11) |]
  in
  let compact, t_star = Splittable_compact.solve inst in
  check bool_c "few stored segments" true (Config_schedule.size compact <= 64);
  check bool_c "few distinct configs" true (List.length compact.Config_schedule.configs <= 16);
  check bool_c "uses many machines via multiplicities" true (Config_schedule.machines_used compact > 1000);
  check bool_c "within machine budget" true (Config_schedule.machines_used compact <= m);
  (* quality: makespan <= 3/2 T* and volumes exact *)
  check bool_c "makespan bound" true
    (Rat.( <= ) (Rat.mul_int (Config_schedule.makespan compact) 2) (Rat.mul_int t_star 3));
  (match Config_schedule.check_splittable inst compact with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "compact infeasible: %s" (String.concat "; " (List.map Checker.violation_to_string vs)))

let test_expand_small_case () =
  let inst = Instance.make ~m:6 ~setups:[| 4; 2 |] ~jobs:[| (0, 30); (1, 5); (1, 3) |] in
  let compact, t_star = Splittable_compact.solve inst in
  let expanded = Config_schedule.expand compact in
  Checker.check_exn Variant.Splittable inst expanded;
  check bool_c "bound" true
    (Rat.( <= ) (Rat.mul_int (Schedule.makespan expanded) 2) (Rat.mul_int t_star 3))

(* Exactness witness: scaling every input time by k scales T* by exactly
   k (all bounds are homogeneous of degree 1); floats would drift. *)
let prop_scale_invariance =
  QCheck2.Test.make ~name:"T* is exactly homogeneous under input scaling" ~count:150
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 2 1000))
    (fun (seed, k) ->
      let rng = Prng.create seed in
      let inst = Helpers.random_instance ~max_m:8 rng in
      let scaled =
        Instance.make ~m:inst.Instance.m
          ~setups:(Array.map (fun s -> k * s) inst.Instance.setups)
          ~jobs:
            (Array.init (Instance.n inst) (fun j ->
                 (inst.Instance.job_class.(j), k * inst.Instance.job_time.(j))))
      in
      let t1, _ = Splittable_cj.find_t_star inst in
      let t2, _ = Splittable_cj.find_t_star scaled in
      Rat.equal t2 (Rat.mul_int t1 k))

let () =
  Alcotest.run "compact-solver"
    [
      ( "unit",
        [
          Alcotest.test_case "huge machine count" `Quick test_huge_machine_count;
          Alcotest.test_case "expand small" `Quick test_expand_small_case;
        ] );
      Helpers.qsuite "props"
        [ prop_agrees_with_explicit_dual; prop_solve_matches_cj; prop_scale_invariance ];
    ]
