(* A transcoding farm: the motivating splittable scenario.

   Each class is a codec/preset whose encoder binary and reference data
   must be staged onto a worker before any chunk of that class runs (the
   setup). Video chunks can be cut arbitrarily and encoded on many workers
   in parallel — the splittable variant P|split,setup=s_i|Cmax.

   The example shows the class-jumping algorithm (Theorem 3) splitting a
   dominant class across workers, which no whole-batch heuristic can do.

   Run with: dune exec examples/video_transcode.exe *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_baselines

let () =
  let workers = 12 in
  (* codec presets: staging cost in seconds *)
  let setups = [| 40; 25; 25; 10 |] in
  let jobs =
    Array.concat
      [
        (* a feature film in 4K: one huge title under preset 0 *)
        Array.init 6 (fun _ -> (0, 900));
        (* episodic content under presets 1-2 *)
        Array.init 10 (fun i -> (1 + (i mod 2), 240));
        (* shorts under preset 3 *)
        Array.init 8 (fun _ -> (3, 60));
      ]
  in
  let inst = Instance.make ~m:workers ~setups ~jobs in
  Printf.printf "transcode farm: %d workers, %d presets, %d titles, %d s of encoding\n\n" workers
    (Array.length setups) (Instance.n inst) inst.Instance.total;

  let lpt = List_scheduling.lpt inst in
  Printf.printf "whole-preset LPT      : %s s (preset 0 is stuck on one worker)\n"
    (Rat.to_string (Schedule.makespan lpt));

  let r = Splittable_cj.solve inst in
  Checker.check_exn Variant.Splittable inst r.Splittable_cj.schedule;
  Printf.printf "Theorem 3 (3/2 CJ)    : %s s, accepted guess T* = %s, %d bound tests\n"
    (Rat.to_string (Schedule.makespan r.Splittable_cj.schedule))
    (Rat.to_string r.Splittable_cj.accepted)
    r.Splittable_cj.bound_tests;
  Printf.printf "volume lower bound    : %s s\n\n"
    (Rat.to_string (Lower_bounds.lower_bound Variant.Splittable inst));

  print_endline (Render.gantt ~width:76 inst r.Splittable_cj.schedule);
  let metrics = Metrics.compute inst r.Splittable_cj.schedule in
  Printf.printf "stagings: %d; workers used: %d/%d\n" metrics.Metrics.setup_count
    metrics.Metrics.machines_used workers
