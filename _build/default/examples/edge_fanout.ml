(* An edge-CDN fan-out: the splittable variant at fleet scale.

   A content provider must transcode-and-push a handful of large assets to
   a fleet of one million edge nodes. Staging a codec/package toolchain on
   a node is the setup; asset bytes can be split across any number of
   nodes and pushed in parallel — the splittable variant, with m >> n.

   Explicit schedules would materialize a million machine timetables; the
   compact solver (Appendix C.1) returns machine configurations with
   multiplicities instead: a few dozen stored segments, microseconds of
   work, and the exact same 3/2 certificate.

   Run with: dune exec examples/edge_fanout.exe *)

open Bss_util
open Bss_instances
open Bss_core

let () =
  let fleet = 1_000_000 in
  (* two toolchains; asset sizes in MB-seconds of push work *)
  let inst =
    Instance.make ~m:fleet ~setups:[| 3; 5 |]
      ~jobs:[| (0, 40_000_000); (0, 7); (1, 9_000_000); (1, 11) |]
  in
  Printf.printf "edge fan-out: %d nodes, %d toolchains, %d assets\n\n" fleet (Instance.c inst)
    (Instance.n inst);

  let t0 = Sys.time () in
  let compact, t_star = Splittable_compact.solve inst in
  let dt = Sys.time () -. t0 in

  Printf.printf "accepted guess T*     : %s (certified T* <= OPT)\n" (Rat.to_string t_star);
  Printf.printf "makespan              : %s <= 3/2 T*\n"
    (Rat.to_string (Config_schedule.makespan compact));
  Printf.printf "nodes used            : %d of %d\n"
    (Config_schedule.machines_used compact)
    fleet;
  Printf.printf "distinct node layouts : %d (%d stored segments)\n"
    (List.length compact.Config_schedule.configs)
    (Config_schedule.size compact);
  Printf.printf "solve time            : %.3f ms\n\n" (dt *. 1000.0);

  (* the compact checker validates one representative per layout *)
  (match Config_schedule.check_splittable inst compact with
  | Ok () -> print_endline "feasibility: OK (compact checker, exact rational arithmetic)"
  | Error vs ->
    List.iter (fun v -> print_endline ("violation: " ^ Checker.violation_to_string v)) vs;
    exit 1);

  print_endline "\nlayouts (multiplicity x segments):";
  List.iter
    (fun (c : Config_schedule.config) ->
      Printf.printf "  %7d x [" c.Config_schedule.multiplicity;
      List.iter
        (fun (seg : Schedule.seg) ->
          match seg.Schedule.content with
          | Schedule.Setup i -> Printf.printf " setup%d" i
          | Schedule.Work j -> Printf.printf " job%d(%s)" j (Rat.to_string seg.Schedule.dur))
        c.Config_schedule.segments;
      print_endline " ]")
    compact.Config_schedule.configs
