(* A print shop: the motivating non-preemptive scenario.

   Each job class is a paper/ink configuration; switching a press to a
   different configuration costs a wash-up and plate change (the setup
   time). Jobs are print runs that must not be interrupted once started —
   the non-preemptive variant P|setup=s_i|Cmax.

   The example compares the practitioner's whole-batch LPT with the
   paper's Theorem 8 algorithm and prints the press allocation.

   Run with: dune exec examples/print_shop.exe *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_baselines

let () =
  let rng = Prng.create 2024 in
  let presses = 5 in
  (* 8 configurations: wash-up 15-45 min; run lengths 10-120 min. *)
  let configs = 8 in
  let setups = Array.init configs (fun _ -> Prng.int_in rng 15 45) in
  let jobs = ref [] in
  for cfg = 0 to configs - 1 do
    for _ = 1 to Prng.int_in rng 2 6 do
      jobs := (cfg, Prng.int_in rng 10 120) :: !jobs
    done
  done;
  let inst = Instance.make ~m:presses ~setups ~jobs:(Array.of_list !jobs) in
  Printf.printf "print shop: %d presses, %d configurations, %d runs, total work %d min\n\n" presses
    configs (Instance.n inst) inst.Instance.total;

  let lpt = List_scheduling.lpt inst in
  Checker.check_exn Variant.Nonpreemptive inst lpt;
  Printf.printf "whole-batch LPT        : finishes at %s min\n"
    (Rat.to_string (Schedule.makespan lpt));

  let r = Solver.solve ~algorithm:Solver.Approx3_2 Variant.Nonpreemptive inst in
  Checker.check_exn Variant.Nonpreemptive inst r.Solver.schedule;
  Printf.printf "Theorem 8 (3/2-approx) : finishes at %s min (certified <= %s)\n\n"
    (Rat.to_string (Schedule.makespan r.Solver.schedule))
    (Rat.to_string r.Solver.certificate);

  print_endline "press allocation (letters = configurations, lowercase = wash-up):";
  print_endline (Render.gantt ~width:76 inst r.Solver.schedule);
  let metrics = Metrics.compute inst r.Solver.schedule in
  Printf.printf "wash-ups paid: %d (%s min total)\n" metrics.Metrics.setup_count
    (Rat.to_string metrics.Metrics.total_setup_time)
