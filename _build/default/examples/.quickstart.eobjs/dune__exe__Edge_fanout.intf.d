examples/edge_fanout.mli:
