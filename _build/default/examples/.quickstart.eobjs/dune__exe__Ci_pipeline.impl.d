examples/ci_pipeline.ml: Array Bss_baselines Bss_core Bss_instances Bss_util Checker Instance Lower_bounds Metrics Monma_potts Pmtn_cj Printf Rat Render Schedule Variant
