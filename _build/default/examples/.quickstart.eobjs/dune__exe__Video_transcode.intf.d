examples/video_transcode.mli:
