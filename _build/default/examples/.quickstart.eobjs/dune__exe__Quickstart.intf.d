examples/quickstart.mli:
