examples/print_shop.mli:
