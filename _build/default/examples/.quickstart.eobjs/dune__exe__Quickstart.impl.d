examples/quickstart.ml: Bss_core Bss_instances Bss_util Checker Instance List Lower_bounds Printf Rat Render Schedule Solver Variant
