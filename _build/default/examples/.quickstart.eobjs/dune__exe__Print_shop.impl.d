examples/print_shop.ml: Array Bss_baselines Bss_core Bss_instances Bss_util Checker Instance List_scheduling Metrics Printf Prng Rat Render Schedule Solver Variant
