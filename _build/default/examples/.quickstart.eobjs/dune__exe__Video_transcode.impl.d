examples/video_transcode.ml: Array Bss_baselines Bss_core Bss_instances Bss_util Checker Instance List_scheduling Lower_bounds Metrics Printf Rat Render Schedule Splittable_cj Variant
