examples/edge_fanout.ml: Bss_core Bss_instances Bss_util Checker Config_schedule Instance List Printf Rat Schedule Splittable_compact Sys
