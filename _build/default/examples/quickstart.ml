(* Quickstart: build an instance, run the paper's 3/2-approximation for
   each variant, verify feasibility with the exact checker, and render the
   schedules.

   Run with: dune exec examples/quickstart.exe *)

open Bss_util
open Bss_instances
open Bss_core

let () =
  (* 3 machines; class 0 has setup 4, class 1 has setup 2. *)
  let inst =
    Instance.make ~m:3 ~setups:[| 4; 2 |]
      ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]
  in
  print_endline (Instance.describe inst);
  print_newline ();
  List.iter
    (fun variant ->
      let r = Solver.solve ~algorithm:Solver.Approx3_2 variant inst in
      (* every example double-checks feasibility with the exact checker *)
      Checker.check_exn variant inst r.Solver.schedule;
      Printf.printf "%s — %s\n" (Variant.to_string variant)
        (Solver.algorithm_name ~algorithm:Solver.Approx3_2 variant);
      Printf.printf "  makespan   : %s\n" (Rat.to_string (Schedule.makespan r.Solver.schedule));
      Printf.printf "  certificate: makespan <= %s <= 3/2 * OPT\n" (Rat.to_string r.Solver.certificate);
      Printf.printf "  lower bound: OPT >= %s\n"
        (Rat.to_string (Lower_bounds.lower_bound variant inst));
      print_endline (Render.gantt ~width:60 inst r.Solver.schedule))
    Variant.all
