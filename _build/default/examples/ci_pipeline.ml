(* A CI test farm: the motivating preemptive scenario.

   Each class is a test suite whose container image must be booted on an
   agent before its tests run (the setup). A single test shard can be
   checkpointed and resumed on another agent, but cannot run on two agents
   at once — the preemptive variant P|pmtn,setup=s_i|Cmax.

   The example pits the Monma-Potts wrap heuristic (the best previously
   known guarantee, which tends to 2 as m grows) against the paper's main
   result, the 3/2 class-jumping algorithm of Theorem 6. On any single
   instance either can produce the shorter schedule; the difference is the
   certificate: Theorem 6 always stays within 3/2 of the optimum, the wrap
   only within its level N/m + s_max. Both are printed against the
   certified lower bound.

   Run with: dune exec examples/ci_pipeline.exe *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_baselines

let () =
  let agents = 6 in
  (* suites: image boot time, then shard durations (seconds) *)
  let setups = [| 90; 60; 45; 30; 30 |] in
  let jobs =
    Array.concat
      [
        Array.init 4 (fun _ -> (0, 300)) (* browser tests: heavy image, long shards *);
        Array.init 6 (fun _ -> (1, 150)) (* integration *);
        Array.init 8 (fun _ -> (2, 90)) (* API *);
        Array.init 10 (fun _ -> (3, 45)) (* unit *);
        Array.init 4 (fun _ -> (4, 30)) (* lint *);
      ]
  in
  let inst = Instance.make ~m:agents ~setups ~jobs in
  Printf.printf "CI farm: %d agents, %d suites, %d shards, %d s of testing\n\n" agents
    (Array.length setups) (Instance.n inst) inst.Instance.total;

  let lb = Lower_bounds.lower_bound Variant.Preemptive inst in
  let show name makespan guarantee =
    Printf.printf "%-29s: %7.1f s  (<= %.3f x LB, guaranteed <= %s x OPT)\n" name
      (Rat.to_float makespan)
      (Rat.to_float makespan /. Rat.to_float lb)
      guarantee
  in
  let mp = Monma_potts.schedule inst in
  Checker.check_exn Variant.Preemptive inst mp;
  show "Monma-Potts wrap (prev. best)" (Schedule.makespan mp) "~2";

  let r = Pmtn_cj.solve inst in
  Checker.check_exn Variant.Preemptive inst r.Pmtn_cj.schedule;
  show "Theorem 6 (3/2 class jumping)" (Schedule.makespan r.Pmtn_cj.schedule) "3/2";
  Printf.printf "certified lower bound        : %7.1f s\n\n" (Rat.to_float lb);

  print_endline (Render.gantt ~width:76 inst r.Pmtn_cj.schedule);
  let metrics = Metrics.compute inst r.Pmtn_cj.schedule in
  Printf.printf "image boots: %d; checkpointed shards: %d\n" metrics.Metrics.setup_count
    metrics.Metrics.preemption_count
