lib/extensions/seqdep.mli: Bss_instances
