lib/extensions/seqdep.ml: Array Bss_instances Instance List
