(** Sequence-dependent setups (the paper's concluding remark).

    With a setup matrix [S ∈ N^{c×c}], processing class [i2] on a machine
    currently set up for [i1] costs [s(i1,i2)]. The paper observes that for
    [m = 1], [C_i = { j_i }] and [t_{j_i} = 0] this is exactly the
    travelling-salesman {e path} problem: the class order visited by the
    single machine is a Hamiltonian path over the classes, and its total
    setup cost is the path length.

    This module makes that reduction concrete for the single-machine case:

    - {!schedule_of_order} evaluates a class order (the scheduling side);
    - {!held_karp} computes the optimal order exactly in [O(2^c c^2)]
      (open path, free start);
    - {!nearest_neighbour} and {!greedy_edge} are classic heuristics;
    - {!of_instance} embeds a sequence-independent instance as the matrix
      [s(·, i) = s_i], under which every algorithm here must agree with
      the single-machine sequence-independent optimum ([Σ s_i + Σ t_j] —
      order irrelevant), a property the tests pin down. *)

type t = {
  setup : int array array;  (** [setup.(i1).(i2) >= 0]; [setup.(i).(i)] unused *)
  initial : int array;  (** cost of the first setup on a cold machine *)
  load : int array;  (** total processing time per class *)
}

(** [make ~setup ~initial ~load] validates dimensions and non-negativity.
    @raise Invalid_argument on mismatch or negative entries. *)
val make : setup:int array array -> initial:int array -> load:int array -> t

(** [of_instance inst] is the sequence-independent embedding of a
    single-machine view of [inst]: [initial.(i) = setup.(_,i) = s_i],
    [load.(i) = P(C_i)]. *)
val of_instance : Bss_instances.Instance.t -> t

(** [of_tsp dist] is the paper's TSP-path reduction: one zero-length job
    per city, [setup = dist], [initial = 0] (free start anywhere). *)
val of_tsp : int array array -> t

(** [cost t order] is the single-machine makespan of visiting classes in
    [order]: [initial.(first) + Σ setup transitions + Σ load].
    @raise Invalid_argument unless [order] is a permutation of [0..c-1]. *)
val cost : t -> int array -> int

(** [held_karp t] is an optimal order and its cost; exact, [O(2^c c^2)].
    @raise Invalid_argument when [c > 20]. *)
val held_karp : t -> int array * int

(** [nearest_neighbour t] starts at the cheapest initial class and always
    moves to the cheapest next transition. [O(c^2)]. *)
val nearest_neighbour : t -> int array * int

(** [greedy_edge t] repeatedly commits the globally cheapest transition
    that keeps the partial orders acyclic (path version of the greedy
    matching heuristic). [O(c^2 log c)]. *)
val greedy_edge : t -> int array * int
