open Bss_instances

type t = { setup : int array array; initial : int array; load : int array }

let make ~setup ~initial ~load =
  let c = Array.length initial in
  if c = 0 then invalid_arg "Seqdep.make: no classes";
  if Array.length setup <> c || Array.length load <> c then invalid_arg "Seqdep.make: dimension mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Seqdep.make: setup matrix not square";
      Array.iter (fun v -> if v < 0 then invalid_arg "Seqdep.make: negative setup") row)
    setup;
  Array.iter (fun v -> if v < 0 then invalid_arg "Seqdep.make: negative initial") initial;
  Array.iter (fun v -> if v < 0 then invalid_arg "Seqdep.make: negative load") load;
  { setup; initial; load }

let of_instance inst =
  let c = Instance.c inst in
  let s i = inst.Instance.setups.(i) in
  make
    ~setup:(Array.init c (fun _ -> Array.init c s))
    ~initial:(Array.init c s)
    ~load:(Array.copy inst.Instance.class_load)

let of_tsp dist =
  let c = Array.length dist in
  make ~setup:(Array.map Array.copy dist) ~initial:(Array.make c 0) ~load:(Array.make c 0)

let total_load t = Array.fold_left ( + ) 0 t.load

let cost t order =
  let c = Array.length t.initial in
  if Array.length order <> c then invalid_arg "Seqdep.cost: wrong length";
  let seen = Array.make c false in
  Array.iter
    (fun i ->
      if i < 0 || i >= c || seen.(i) then invalid_arg "Seqdep.cost: not a permutation";
      seen.(i) <- true)
    order;
  let transitions = ref t.initial.(order.(0)) in
  for k = 1 to c - 1 do
    transitions := !transitions + t.setup.(order.(k - 1)).(order.(k))
  done;
  !transitions + total_load t

(* Held-Karp over subsets: best.(mask).(i) = cheapest transition cost of a
   path visiting exactly [mask], ending at class i. *)
let held_karp t =
  let c = Array.length t.initial in
  if c > 20 then invalid_arg "Seqdep.held_karp: c > 20";
  let full = (1 lsl c) - 1 in
  let inf = max_int / 4 in
  let best = Array.make_matrix (full + 1) c inf in
  let parent = Array.make_matrix (full + 1) c (-1) in
  for i = 0 to c - 1 do
    best.(1 lsl i).(i) <- t.initial.(i)
  done;
  for mask = 1 to full do
    for last = 0 to c - 1 do
      if mask land (1 lsl last) <> 0 && best.(mask).(last) < inf then begin
        let base = best.(mask).(last) in
        for next = 0 to c - 1 do
          if mask land (1 lsl next) = 0 then begin
            let mask' = mask lor (1 lsl next) in
            let cand = base + t.setup.(last).(next) in
            if cand < best.(mask').(next) then begin
              best.(mask').(next) <- cand;
              parent.(mask').(next) <- last
            end
          end
        done
      end
    done
  done;
  let last = ref 0 in
  for i = 1 to c - 1 do
    if best.(full).(i) < best.(full).(!last) then last := i
  done;
  let order = Array.make c 0 in
  let mask = ref full and cur = ref !last in
  for k = c - 1 downto 0 do
    order.(k) <- !cur;
    let prev = parent.(!mask).(!cur) in
    mask := !mask land lnot (1 lsl !cur);
    cur := if prev >= 0 then prev else 0
  done;
  (order, best.(full).(!last) + total_load t)

let nearest_neighbour t =
  let c = Array.length t.initial in
  let used = Array.make c false in
  let start = ref 0 in
  for i = 1 to c - 1 do
    if t.initial.(i) < t.initial.(!start) then start := i
  done;
  let order = Array.make c !start in
  used.(!start) <- true;
  for k = 1 to c - 1 do
    let prev = order.(k - 1) in
    let bestn = ref (-1) in
    for i = 0 to c - 1 do
      if (not used.(i)) && (!bestn < 0 || t.setup.(prev).(i) < t.setup.(prev).(!bestn)) then bestn := i
    done;
    order.(k) <- !bestn;
    used.(!bestn) <- true
  done;
  (order, cost t order)

(* Path-greedy: sort all directed transitions by cost; accept (a -> b)
   when a has no successor yet, b has no predecessor yet, and the edge
   does not close a cycle (union-find over path components). *)
let greedy_edge t =
  let c = Array.length t.initial in
  if c = 1 then ([| 0 |], cost t [| 0 |])
  else begin
    let succ = Array.make c (-1) and pred = Array.make c (-1) in
    let comp = Array.init c (fun i -> i) in
    let rec find i = if comp.(i) = i then i else (comp.(i) <- find comp.(i); comp.(i)) in
    let edges = ref [] in
    for a = 0 to c - 1 do
      for b = 0 to c - 1 do
        if a <> b then edges := (t.setup.(a).(b), a, b) :: !edges
      done
    done;
    let edges = List.sort compare !edges in
    let accepted = ref 0 in
    List.iter
      (fun (_, a, b) ->
        if !accepted < c - 1 && succ.(a) < 0 && pred.(b) < 0 && find a <> find b then begin
          succ.(a) <- b;
          pred.(b) <- a;
          comp.(find a) <- find b;
          incr accepted
        end)
      edges;
    (* the unique path start is the class with no predecessor *)
    let start = ref 0 in
    for i = 0 to c - 1 do
      if pred.(i) < 0 then start := i
    done;
    let order = Array.make c !start in
    for k = 1 to c - 1 do
      order.(k) <- succ.(order.(k - 1))
    done;
    (order, cost t order)
  end
