lib/oracle/property.mli: Bss_core Bss_instances Context Instance Variant
