lib/oracle/context.ml: Bss_baselines Bss_core Bss_instances Bss_util Exact Hashtbl Instance Lower_bounds Rat Solver Variant
