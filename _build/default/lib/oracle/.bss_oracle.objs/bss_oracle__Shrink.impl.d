lib/oracle/shrink.ml: Array Bss_instances Instance List
