lib/oracle/case.ml: Array Bss_instances Bss_util Bss_workloads Char Instance Int64 List Printf Prng String
