lib/oracle/metamorphic.ml: Array Bss_core Bss_instances Bss_util Checker Context Instance List Lower_bounds Printf Property Rat Schedule Solver Variant
