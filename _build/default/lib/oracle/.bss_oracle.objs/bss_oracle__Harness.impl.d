lib/oracle/harness.ml: Bss_core Bss_instances Bss_util Bss_workloads Case Context Instance List Metamorphic Parallel Printexc Printf Property Shrink Solver String Table Variant
