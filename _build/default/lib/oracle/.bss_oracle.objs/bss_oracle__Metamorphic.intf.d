lib/oracle/metamorphic.mli: Property
