lib/oracle/context.mli: Bss_core Bss_instances Bss_util Instance Rat Solver Variant
