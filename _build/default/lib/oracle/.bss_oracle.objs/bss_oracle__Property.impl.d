lib/oracle/property.ml: Bss_core Bss_instances Bss_util Checker Context Dual List Lower_bounds Nonp_dual Pmtn_dual Printexc Printf Rat Schedule Solver Splittable_dual String Variant
