lib/oracle/harness.mli: Bss_core Bss_instances Bss_workloads Case Instance Property Solver Variant
