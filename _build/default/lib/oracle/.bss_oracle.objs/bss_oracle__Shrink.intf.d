lib/oracle/shrink.mli: Bss_instances Instance
