lib/oracle/case.mli: Bss_instances Bss_util Instance Prng
