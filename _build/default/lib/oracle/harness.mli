(** The fuzz driver: sweep deterministic cases through every oracle.

    A sweep is fully described by its {!config}; equal configs give
    bit-identical reports (cases derive private PRNGs from
    [(master, family, index)] and properties are pure), regardless of how
    many domains execute it. Failing cases are minimized with
    {!Shrink.minimize} against the violated property before reporting. *)

open Bss_instances
open Bss_core

type config = {
  master : int;  (** master seed *)
  cases : int;  (** number of cases, round-robin over [families] *)
  families : Bss_workloads.Generator.spec list;
  variants : Variant.t list;
  algorithms : (string * Solver.algorithm) list;
  max_m : int;
  max_n : int;
  domains : int option;  (** worker domains; [None] = {!Bss_util.Parallel.recommended} *)
  shrink_budget : int;  (** predicate evaluations per failure minimization *)
}

(** 100 cases over all families, variants and default algorithms,
    [master = 0], [max_m = 8], [max_n = 48], shrink budget 400. *)
val default_config : config

type failure = {
  case : Case.t;
  property : string;
  message : string;
  instance : Instance.t;  (** the raw counterexample *)
  shrunk : Instance.t;  (** local minimum still violating the property *)
  shrink_steps : int;
}

type prop_stats = {
  property : string;
  theorem : string;
  cases : int;  (** cases the property ran on *)
  passed : int;
  skipped : int;
  failed : int;
}

type report = { config : config; stats : prop_stats list; failures : failure list }

(** All oracles a sweep runs: {!Property.all} followed by
    {!Metamorphic.all}. *)
val properties : Property.t list

(** [case_of_index config i] is the [i]-th case of the sweep. *)
val case_of_index : config -> int -> Case.t

(** [run_case config case] evaluates every property on the case's
    instance, exceptions folded into [Fail]. *)
val run_case : config -> Case.t -> (Property.t * Property.outcome) list

(** [run config] executes the sweep on the configured domains. *)
val run : config -> report

(** [render report] is the stats table plus one block per failure,
    including the shrunk counterexample and a replay hint. Ends with a
    one-line verdict. *)
val render : report -> string

(** [replay config case] re-runs one case verbosely: instance dump plus a
    per-property verdict table. Returns the rendering and [true] when no
    property failed. *)
val replay : config -> Case.t -> string * bool
