lib/oracle/qc/arb.mli: Bss_instances Instance QCheck
