lib/oracle/qc/arb.ml: Array Bss_instances Bss_oracle Bss_workloads Case QCheck Random Shrink
