open Bss_oracle

let families = Array.of_list Bss_workloads.Generator.all

let gen ?max_m ?max_n () st =
  let spec = families.(Random.State.int st (Array.length families)) in
  let case =
    Case.make
      ~master:(Random.State.int st 1_000_000)
      ~family:spec.Bss_workloads.Generator.name
      ~index:(Random.State.int st 1_000)
  in
  Case.instance ?max_m ?max_n case

let shrink inst = QCheck.Iter.of_list (Shrink.candidates inst)

let arbitrary ?max_m ?max_n () =
  QCheck.make ~print:Bss_instances.Instance.to_string ~shrink (gen ?max_m ?max_n ())
