open Bss_util
open Bss_instances
open Bss_core

let jobs_of inst =
  Array.init (Instance.n inst)
    (fun j -> (inst.Instance.job_class.(j), inst.Instance.job_time.(j)))

let scale k inst =
  Instance.make ~m:inst.Instance.m
    ~setups:(Array.map (fun s -> s * k) inst.Instance.setups)
    ~jobs:(Array.map (fun (cls, t) -> (cls, t * k)) (jobs_of inst))

let with_m m inst = Instance.make ~m ~setups:inst.Instance.setups ~jobs:(jobs_of inst)

let duplicate inst =
  let c = Instance.c inst in
  let jobs = jobs_of inst in
  Instance.make ~m:(2 * inst.Instance.m)
    ~setups:(Array.append inst.Instance.setups inst.Instance.setups)
    ~jobs:(Array.append jobs (Array.map (fun (cls, t) -> (cls + c, t)) jobs))

(* Merge the first two classes sharing a setup value; [None] if all setups
   are distinct. *)
let merge_equal_setups inst =
  let c = Instance.c inst in
  let setups = inst.Instance.setups in
  let pair = ref None in
  for i = 0 to c - 1 do
    for j = i + 1 to c - 1 do
      if !pair = None && setups.(i) = setups.(j) then pair := Some (i, j)
    done
  done;
  match !pair with
  | None -> None
  | Some (i, j) ->
    let remap cls = if cls = j then i else if cls > j then cls - 1 else cls in
    let setups' = Array.of_list (List.filteri (fun k _ -> k <> j) (Array.to_list setups)) in
    let jobs' = Array.map (fun (cls, t) -> (remap cls, t)) (jobs_of inst) in
    Some (Instance.make ~m:inst.Instance.m ~setups:setups' ~jobs:jobs')

let over_solves ctx f =
  let rec go = function
    | [] -> Property.Pass
    | (v, a) :: rest -> ( match f v a with Property.Pass -> go rest | o -> o)
  in
  go
    (List.concat_map
       (fun v -> List.map (fun a -> (v, a)) (Context.algorithms ctx))
       (Context.variants ctx))

let tag v (name, _) = Printf.sprintf "[%s/%s]" (Variant.to_string v) name

(* The non-preemptive exact-3/2 search is the one algorithm on an integer
   guess grid, where scaling refines the grid and can change the result. *)
let integer_grid v (_, algorithm) =
  v = Variant.Nonpreemptive && algorithm = Solver.Approx3_2

let scale_equivariance =
  {
    Property.name = "scale-equivariance";
    theorem = "meta";
    check =
      (fun ctx ->
        let k = 3 in
        let inst = Context.instance ctx in
        let scaled = scale k inst in
        let rec t_min_scales = function
          | [] -> Property.Pass
          | v :: rest ->
            if
              Rat.equal
                (Lower_bounds.t_min v scaled)
                (Rat.mul_int (Context.t_min ctx v) k)
            then t_min_scales rest
            else Property.Fail (Printf.sprintf "[%s] T_min does not scale by %d" (Variant.to_string v) k)
        in
        match t_min_scales (Context.variants ctx) with
        | Property.Pass ->
          over_solves ctx (fun v a ->
              let r = Context.solve ctx v a in
              let r' = Solver.solve ~algorithm:(snd a) v scaled in
              let mk' = Schedule.makespan r'.Solver.schedule in
              if not (Checker.is_feasible v scaled r'.Solver.schedule) then
                Property.Fail (tag v a ^ " scaled schedule infeasible")
              else if integer_grid v a then
                if Rat.( <= ) mk' (Rat.mul_int (Context.t_min ctx v) (2 * k)) then Property.Pass
                else Property.Fail (tag v a ^ " scaled makespan exceeds 2k*T_min")
              else if Rat.equal mk' (Rat.mul_int (Schedule.makespan r.Solver.schedule) k) then
                Property.Pass
              else
                Property.Fail
                  (Printf.sprintf "%s makespan %s does not scale to %s" (tag v a)
                     (Rat.to_string (Schedule.makespan r.Solver.schedule))
                     (Rat.to_string mk')))
        | o -> o);
  }

let machine_augment =
  {
    Property.name = "machine-augment";
    theorem = "meta";
    check =
      (fun ctx ->
        let inst = Context.instance ctx in
        let aug = with_m (inst.Instance.m + 1) inst in
        let ctx' = Context.create ~variants:(Context.variants ctx) ~algorithms:(Context.algorithms ctx) aug in
        let rec t_min_mono = function
          | [] -> Property.Pass
          | v :: rest ->
            if Rat.( <= ) (Context.t_min ctx' v) (Context.t_min ctx v) then t_min_mono rest
            else Property.Fail (Printf.sprintf "[%s] T_min grew with an extra machine" (Variant.to_string v))
        in
        let exact_mono () =
          match (Context.exact_nonp ctx, Context.exact_nonp ctx') with
          | Some opt, Some opt' when opt' > opt ->
            Property.Fail (Printf.sprintf "OPT_nonp grew from %d to %d with an extra machine" opt opt')
          | _ -> (
            match (Context.exact_split ctx, Context.exact_split ctx') with
            | Some opt, Some opt' when Rat.( > ) opt' opt ->
              Property.Fail "OPT_split grew with an extra machine"
            | _ -> Property.Pass)
        in
        match t_min_mono (Context.variants ctx) with
        | Property.Pass -> (
          match exact_mono () with
          | Property.Pass ->
            over_solves ctx (fun v a ->
                let r' = Context.solve ctx' v a in
                if not (Checker.is_feasible v aug r'.Solver.schedule) then
                  Property.Fail (tag v a ^ " schedule infeasible after adding a machine")
                else if
                  Rat.( <= )
                    (Schedule.makespan r'.Solver.schedule)
                    (Rat.mul_int (Context.t_min ctx v) 2)
                then Property.Pass
                else Property.Fail (tag v a ^ " makespan exceeds 2*T_min of the original"))
          | o -> o)
        | o -> o);
  }

let merge_classes =
  {
    Property.name = "merge-classes";
    theorem = "meta";
    check =
      (fun ctx ->
        let inst = Context.instance ctx in
        match merge_equal_setups inst with
        | None -> Property.Skip "no two classes share a setup value"
        | Some merged -> (
          let ctx' = Context.create ~variants:(Context.variants ctx) ~algorithms:(Context.algorithms ctx) merged in
          let rec t_min_mono = function
            | [] -> Property.Pass
            | v :: rest ->
              if Rat.( <= ) (Context.t_min ctx' v) (Context.t_min ctx v) then t_min_mono rest
              else Property.Fail (Printf.sprintf "[%s] T_min grew after merging classes" (Variant.to_string v))
          in
          let exact_mono () =
            match (Context.exact_nonp ctx, Context.exact_nonp ctx') with
            | Some opt, Some opt' when opt' > opt ->
              Property.Fail (Printf.sprintf "OPT_nonp grew from %d to %d after merging classes" opt opt')
            | _ -> (
              match (Context.exact_split ctx, Context.exact_split ctx') with
              | Some opt, Some opt' when Rat.( > ) opt' opt ->
                Property.Fail "OPT_split grew after merging classes"
              | _ -> Property.Pass)
          in
          match t_min_mono (Context.variants ctx) with
          | Property.Pass -> (
            match exact_mono () with
            | Property.Pass ->
              over_solves ctx (fun v a ->
                  let r' = Context.solve ctx' v a in
                  if not (Checker.is_feasible v merged r'.Solver.schedule) then
                    Property.Fail (tag v a ^ " schedule infeasible after merging classes")
                  else if
                    Rat.( <= )
                      (Schedule.makespan r'.Solver.schedule)
                      (Rat.mul_int (Context.t_min ctx v) 2)
                  then Property.Pass
                  else Property.Fail (tag v a ^ " merged makespan exceeds 2*T_min of the original"))
            | o -> o)
          | o -> o));
  }

let duplicate_2m =
  {
    Property.name = "duplicate-2m";
    theorem = "meta";
    check =
      (fun ctx ->
        let inst = Context.instance ctx in
        let dup = duplicate inst in
        let ctx' = Context.create ~variants:(Context.variants ctx) ~algorithms:(Context.algorithms ctx) dup in
        let rec t_min_eq = function
          | [] -> Property.Pass
          | v :: rest ->
            if Rat.equal (Context.t_min ctx' v) (Context.t_min ctx v) then t_min_eq rest
            else Property.Fail (Printf.sprintf "[%s] T_min changed under duplication" (Variant.to_string v))
        in
        match t_min_eq (Context.variants ctx) with
        | Property.Pass ->
          over_solves ctx (fun v a ->
              let r = Context.solve ctx v a in
              let r' = Context.solve ctx' v a in
              if not (Checker.is_feasible v dup r'.Solver.schedule) then
                Property.Fail (tag v a ^ " duplicated schedule infeasible")
              else if Rat.equal r'.Solver.certificate r.Solver.certificate then Property.Pass
              else
                Property.Fail
                  (Printf.sprintf "%s certificate %s changed to %s under duplication" (tag v a)
                     (Rat.to_string r.Solver.certificate)
                     (Rat.to_string r'.Solver.certificate)))
        | o -> o);
  }

let all = [ scale_equivariance; machine_augment; merge_classes; duplicate_2m ]
