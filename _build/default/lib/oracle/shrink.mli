(** Structural instance shrinking.

    When a property fails, the raw counterexample is typically a 50-job
    mutated workload. [minimize] greedily walks {!candidates} — machine
    halving, class and job-block deletion, value halving — re-checking the
    failing predicate at every step, and returns a local minimum: an
    instance on which the failure still reproduces but from which no
    single candidate step keeps it alive. Every candidate strictly
    decreases the instance measure [m + n + Σ s_i + Σ t_j], so the walk
    terminates; a budget caps predicate evaluations for expensive
    properties. *)

open Bss_instances

(** [candidates inst] are well-formed strictly-smaller variants, most
    aggressive first (fewer machines, half the jobs, a class dropped, a
    single job dropped, values halved). Empty for the 1-machine 1-job
    unit-value instance. *)
val candidates : Instance.t -> Instance.t list

(** [minimize ?budget ~keep inst] requires [keep inst = true] and greedily
    shrinks while [keep] holds, spending at most [budget] (default [400])
    [keep] evaluations. Returns the shrunk instance and the number of
    accepted shrink steps. *)
val minimize : ?budget:int -> keep:(Instance.t -> bool) -> Instance.t -> Instance.t * int
