open Bss_util
open Bss_instances
open Bss_core
open Bss_baselines

let default_algorithms =
  [
    ("2", Solver.Approx2);
    ("3/2+1/8", Solver.Approx3_2_eps (Rat.of_ints 1 8));
    ("3/2", Solver.Approx3_2);
  ]

type t = {
  instance : Instance.t;
  variants : Variant.t list;
  algorithms : (string * Solver.algorithm) list;
  solves : (string, Solver.result) Hashtbl.t;
  mutable nonp_opt : int option option;
  mutable split_opt : Rat.t option option;
}

let create ?(variants = Variant.all) ?(algorithms = default_algorithms) instance =
  { instance; variants; algorithms; solves = Hashtbl.create 16; nonp_opt = None; split_opt = None }

let instance t = t.instance
let variants t = t.variants
let algorithms t = t.algorithms

let solve t variant (name, algorithm) =
  let key = Variant.to_string variant ^ "/" ^ name in
  match Hashtbl.find_opt t.solves key with
  | Some r -> r
  | None ->
    let r = Solver.solve ~algorithm variant t.instance in
    Hashtbl.replace t.solves key r;
    r

let t_min t variant = Lower_bounds.t_min variant t.instance

(* Conservative affordability guards (stricter than the oracles' own
   [invalid_arg] limits, to keep fuzz sweeps fast). *)
let nonp_affordable inst =
  let m = inst.Instance.m and n = Instance.n inst in
  (* c <= 62: the branch-and-bound tracks per-machine class sets in an
     int bitmask *)
  Instance.c inst <= 62
  && try float_of_int m ** float_of_int n <= 1e6 with _ -> false

let split_affordable inst =
  let m = inst.Instance.m and c = Instance.c inst in
  c <= 10 && (try float_of_int (1 lsl c) ** float_of_int m <= 5e4 with _ -> false)

let exact_nonp t =
  match t.nonp_opt with
  | Some v -> v
  | None ->
    let v = if nonp_affordable t.instance then Some (Exact.nonpreemptive_opt t.instance) else None in
    t.nonp_opt <- Some v;
    v

let exact_split t =
  match t.split_opt with
  | Some v -> v
  | None ->
    let v = if split_affordable t.instance then Some (Exact.splittable_opt_small t.instance) else None in
    t.split_opt <- Some v;
    v
