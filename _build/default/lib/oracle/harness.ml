open Bss_util
open Bss_instances
open Bss_core

type config = {
  master : int;
  cases : int;
  families : Bss_workloads.Generator.spec list;
  variants : Variant.t list;
  algorithms : (string * Solver.algorithm) list;
  max_m : int;
  max_n : int;
  domains : int option;
  shrink_budget : int;
}

let default_config =
  {
    master = 0;
    cases = 100;
    families = Bss_workloads.Generator.all;
    variants = Variant.all;
    algorithms = Context.default_algorithms;
    max_m = 8;
    max_n = 48;
    domains = None;
    shrink_budget = 400;
  }

type failure = {
  case : Case.t;
  property : string;
  message : string;
  instance : Instance.t;
  shrunk : Instance.t;
  shrink_steps : int;
}

type prop_stats = {
  property : string;
  theorem : string;
  cases : int;
  passed : int;
  skipped : int;
  failed : int;
}

type report = { config : config; stats : prop_stats list; failures : failure list }

let properties = Property.all @ Metamorphic.all

let case_of_index (config : config) i =
  let nf = List.length config.families in
  if nf = 0 then invalid_arg "Harness: no families configured";
  let spec = List.nth config.families (i mod nf) in
  Case.make ~master:config.master ~family:spec.Bss_workloads.Generator.name ~index:i

let check_on (config : config) prop inst =
  try
    let ctx = Context.create ~variants:config.variants ~algorithms:config.algorithms inst in
    prop.Property.check ctx
  with e -> Property.Fail ("exception: " ^ Printexc.to_string e)

let run_case (config : config) case =
  let inst = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
  (* one memoizing context shared by all properties of the case *)
  let ctx = Context.create ~variants:config.variants ~algorithms:config.algorithms inst in
  List.map
    (fun p ->
      ( p,
        try p.Property.check ctx
        with e -> Property.Fail ("exception: " ^ Printexc.to_string e) ))
    properties

let run (config : config) =
  let cases = List.init config.cases (case_of_index config) in
  let outcomes = Parallel.map ?domains:config.domains (fun c -> (c, run_case config c)) cases in
  let stats =
    List.map
      (fun p ->
        let tally f =
          List.fold_left
            (fun acc (_, os) ->
              List.fold_left
                (fun acc (p', o) -> if p'.Property.name = p.Property.name && f o then acc + 1 else acc)
                acc os)
            0 outcomes
        in
        {
          property = p.Property.name;
          theorem = p.Property.theorem;
          cases = config.cases;
          passed = tally (function Property.Pass -> true | _ -> false);
          skipped = tally (function Property.Skip _ -> true | _ -> false);
          failed = tally (function Property.Fail _ -> true | _ -> false);
        })
      properties
  in
  let failures =
    List.concat_map
      (fun (case, os) ->
        List.filter_map
          (function
            | p, Property.Fail message ->
              let instance = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
              let keep i =
                match check_on config p i with Property.Fail _ -> true | _ -> false
              in
              let shrunk, shrink_steps =
                (* the failure may be flaky only through exceptions; guard
                   the initial keep so shrinking never raises *)
                if keep instance then Shrink.minimize ~budget:config.shrink_budget ~keep instance
                else (instance, 0)
              in
              Some { case; property = p.Property.name; message; instance; shrunk; shrink_steps }
            | _ -> None)
          os)
      outcomes
  in
  { config; stats; failures }

let indent s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l -> "    " ^ l)
  |> String.concat "\n"

let render_failure master (f : failure) =
  Printf.sprintf
    "FAIL %s on case %s\n  %s\n  shrunk counterexample (%d steps, %d jobs):\n%s\n  replay: bss fuzz --seed %d --replay %s\n"
    f.property (Case.id f.case) f.message f.shrink_steps (Instance.n f.shrunk)
    (indent (Instance.to_string f.shrunk))
    master (Case.id f.case)

let render report =
  let header = [ "property"; "theorem"; "cases"; "pass"; "skip"; "fail" ] in
  let align = Table.[ Left; Left; Right; Right; Right; Right ] in
  let rows =
    List.map
      (fun s ->
        [
          s.property;
          s.theorem;
          string_of_int s.cases;
          string_of_int s.passed;
          string_of_int s.skipped;
          string_of_int s.failed;
        ])
      report.stats
  in
  let table = Table.render ~header ~align rows in
  let total_failed = List.fold_left (fun acc s -> acc + s.failed) 0 report.stats in
  let verdict =
    Printf.sprintf "%d cases x %d properties: %d violation%s" report.config.cases
      (List.length report.stats) total_failed
      (if total_failed = 1 then "" else "s")
  in
  let blocks = List.map (render_failure report.config.master) report.failures in
  String.concat "\n" ((table :: blocks) @ [ verdict; "" ])

let replay (config : config) case =
  let inst = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
  let outcomes = run_case config case in
  let verdict = function
    | Property.Pass -> "pass"
    | Property.Skip _ -> "skip"
    | Property.Fail _ -> "FAIL"
  in
  let rows =
    List.map (fun (p, o) -> [ p.Property.name; p.Property.theorem; verdict o ]) outcomes
  in
  let table = Table.render ~header:[ "property"; "theorem"; "verdict" ] rows in
  let notes =
    List.filter_map
      (function
        | p, Property.Fail msg -> Some (Printf.sprintf "FAIL %s: %s" p.Property.name msg)
        | p, Property.Skip msg -> Some (Printf.sprintf "skip %s: %s" p.Property.name msg)
        | _, Property.Pass -> None)
      outcomes
  in
  let ok = List.for_all (fun (_, o) -> match o with Property.Fail _ -> false | _ -> true) outcomes in
  let txt =
    String.concat "\n"
      ([ Printf.sprintf "case %s (seed %d)" (Case.id case) config.master;
         String.trim (Instance.to_string inst);
         table ]
      @ notes
      @ [ (if ok then "ok" else "violations found"); "" ])
  in
  (txt, ok)
