open Bss_instances

let jobs_of inst =
  Array.init (Instance.n inst)
    (fun j -> (inst.Instance.job_class.(j), inst.Instance.job_time.(j)))

(* Rebuild with the given job multiset, dropping classes left without jobs
   and renumbering; [None] when no job remains. *)
let rebuild ~m ~setups jobs =
  if Array.length jobs = 0 then None
  else begin
    let c = Array.length setups in
    let used = Array.make c false in
    Array.iter (fun (cls, _) -> used.(cls) <- true) jobs;
    let remap = Array.make c (-1) in
    let k = ref 0 in
    for i = 0 to c - 1 do
      if used.(i) then begin
        remap.(i) <- !k;
        incr k
      end
    done;
    let setups' =
      Array.of_list (List.filteri (fun i _ -> used.(i)) (Array.to_list setups))
    in
    let jobs' = Array.map (fun (cls, t) -> (remap.(cls), t)) jobs in
    Some (Instance.make ~m ~setups:setups' ~jobs:jobs')
  end

let without a i =
  Array.of_list (List.filteri (fun k _ -> k <> i) (Array.to_list a))

let candidates inst =
  let m = inst.Instance.m and c = Instance.c inst and n = Instance.n inst in
  let setups = inst.Instance.setups in
  let jobs = jobs_of inst in
  let out = ref [] in
  let push o = match o with Some i -> out := i :: !out | None -> () in
  (* per-value halvings, least aggressive — pushed first, reversed last *)
  Array.iteri
    (fun i s ->
      if s >= 2 then begin
        let setups' = Array.copy setups in
        setups'.(i) <- s / 2;
        push (rebuild ~m ~setups:setups' jobs)
      end)
    setups;
  Array.iteri
    (fun j (cls, t) ->
      if t >= 2 then begin
        let jobs' = Array.copy jobs in
        jobs'.(j) <- (cls, t / 2);
        push (rebuild ~m ~setups jobs')
      end)
    jobs;
  (* single-job deletion *)
  if n >= 2 then
    for j = n - 1 downto 0 do
      push (rebuild ~m ~setups (without jobs j))
    done;
  (* global value halvings *)
  if Array.exists (fun s -> s >= 2) setups then
    push (rebuild ~m ~setups:(Array.map (fun s -> max 1 (s / 2)) setups) jobs);
  if Array.exists (fun (_, t) -> t >= 2) jobs then
    push (rebuild ~m ~setups (Array.map (fun (cls, t) -> (cls, max 1 (t / 2))) jobs));
  (* whole-class deletion *)
  if c >= 2 then
    for i = c - 1 downto 0 do
      push
        (rebuild ~m ~setups
           (Array.of_list (List.filter (fun (cls, _) -> cls <> i) (Array.to_list jobs))))
    done;
  (* drop half the jobs (both halves), most aggressive with machine cuts *)
  if n >= 2 then begin
    let half = n / 2 in
    let first = Array.sub jobs 0 half and second = Array.sub jobs half (n - half) in
    push (rebuild ~m ~setups first);
    push (rebuild ~m ~setups second)
  end;
  if m >= 2 then begin
    push (rebuild ~m:(m - 1) ~setups jobs);
    if m / 2 <> m - 1 then push (rebuild ~m:(m / 2) ~setups jobs)
  end;
  !out

let minimize ?(budget = 400) ~keep inst =
  if not (keep inst) then invalid_arg "Shrink.minimize: keep does not hold on the input";
  let budget = ref budget in
  let cur = ref inst and steps = ref 0 and progress = ref true in
  while !progress && !budget > 0 do
    let rec first_kept = function
      | [] -> None
      | cand :: rest ->
        if !budget <= 0 then None
        else begin
          decr budget;
          if keep cand then Some cand else first_kept rest
        end
    in
    match first_kept (candidates !cur) with
    | Some cand ->
      cur := cand;
      incr steps
    | None -> progress := false
  done;
  (!cur, !steps)
