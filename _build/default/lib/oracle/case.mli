(** Deterministic fuzz cases.

    A case is a name — a workload family plus an index under a master
    seed — that realizes to an {!Bss_instances.Instance.t} through a PRNG
    derived purely from [(master, family, index)]. Realization is therefore
    bit-reproducible regardless of evaluation order (the fuzz driver runs
    cases on several domains) and replayable from the id printed in a
    failure report.

    Roughly a third of the cases additionally pass the family's output
    through one or two adversarial mutations (value spikes, degenerate
    machine counts, class duplication, huge uniform scales) so the oracle
    also sees shapes no generator family produces on its own. *)

open Bss_util
open Bss_instances

type t = {
  master : int;  (** the sweep's master seed *)
  family : string;  (** a {!Bss_workloads.Generator} family name *)
  index : int;  (** position in the sweep, [>= 0] *)
}

(** [make ~master ~family ~index] names a case.
    @raise Not_found when [family] is unknown. *)
val make : master:int -> family:string -> index:int -> t

(** ["family:index"], the replay id printed in reports. *)
val id : t -> string

(** [of_id ~master s] parses {!id} output.
    @raise Invalid_argument on malformed input or an unknown family. *)
val of_id : master:int -> string -> t

(** [seed t] is the SplitMix-style avalanche of [(master, family, index)]
    seeding this case's private PRNG. *)
val seed : t -> int

(** [instance ?max_m ?max_n t] realizes the case: draws [m] in
    [\[1, max_m\]] (default 8) and a target job count in [\[4, max_n\]]
    (default 48) from the case PRNG, generates from the family, and
    possibly mutates. Equal cases give equal instances. *)
val instance : ?max_m:int -> ?max_n:int -> t -> Instance.t

(** [mutate rng inst] applies one random well-formedness-preserving
    adversarial mutation (exposed for the qcheck generators). *)
val mutate : Prng.t -> Instance.t -> Instance.t
