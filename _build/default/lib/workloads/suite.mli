(** Named experiment suites: fixed (family, m, n, seed) grids used by the
    benchmarks and EXPERIMENTS.md so every number in the report is
    reproducible. *)

open Bss_instances

type case = { label : string; instance : Instance.t }

(** The ratio-measurement suite behind Table 1: every family at a few
    machine counts, 3 seeds each (several dozen mid-sized instances). *)
val table1 : unit -> case list

(** Tiny suite with exact non-preemptive optima available. *)
val tiny_exact : unit -> case list

(** [scaling ~family ~m ns] instances of one family at increasing [n]
    (seeded deterministically) for runtime measurements. *)
val scaling : family:Generator.spec -> m:int -> int list -> case list
