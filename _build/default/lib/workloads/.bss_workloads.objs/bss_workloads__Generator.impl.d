lib/workloads/generator.ml: Array Bss_instances Bss_util Instance Intmath List Prng
