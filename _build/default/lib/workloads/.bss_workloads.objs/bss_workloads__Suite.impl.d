lib/workloads/suite.ml: Bss_instances Bss_util Generator Hashtbl Instance List Printf Prng
