lib/workloads/suite.mli: Bss_instances Generator Instance
