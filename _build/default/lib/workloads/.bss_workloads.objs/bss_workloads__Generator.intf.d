lib/workloads/generator.mli: Bss_instances Bss_util Instance Prng
