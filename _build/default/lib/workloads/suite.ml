open Bss_util
open Bss_instances

type case = { label : string; instance : Instance.t }

let seed_of family m n run =
  (* stable, collision-free seeding from the case coordinates *)
  (Hashtbl.hash family * 1_000_003) + (m * 7919) + (n * 131) + run

let table1 () =
  List.concat_map
    (fun (family : Generator.spec) ->
      List.concat_map
        (fun m ->
          List.map
            (fun run ->
              let n = 120 in
              let rng = Prng.create (seed_of family.Generator.name m n run) in
              {
                label = Printf.sprintf "%s m=%d #%d" family.Generator.name m run;
                instance = family.Generator.generate rng ~m ~n;
              })
            [ 1; 2; 3 ])
        [ 4; 16 ])
    Generator.all

let tiny_exact () =
  List.concat_map
    (fun run ->
      List.map
        (fun m ->
          let rng = Prng.create (seed_of "tiny" m 8 run) in
          {
            label = Printf.sprintf "tiny m=%d #%d" m run;
            instance = Generator.tiny.Generator.generate rng ~m ~n:8;
          })
        [ 2; 3 ])
    (List.init 20 (fun i -> i))

let scaling ~family ~m ns =
  List.map
    (fun n ->
      let rng = Prng.create (seed_of family.Generator.name m n 0) in
      {
        label = Printf.sprintf "%s n=%d" family.Generator.name n;
        instance = family.Generator.generate rng ~m ~n;
      })
    ns
