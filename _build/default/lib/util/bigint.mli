(** Arbitrary-precision signed integers.

    Schedule algorithms in this repository manipulate exact rational makespan
    guesses such as [2*P_f/(beta_f + k)] or binary-search midpoints whose
    numerators can exceed the native integer range after a few products.  This
    module provides a small, dependency-free bignum sufficient for exact
    rational arithmetic: magnitudes are little-endian arrays of base-2^30
    limbs, so limb products stay well inside a 63-bit native [int].

    The interface is deliberately minimal — only what {!Rat} and the
    schedulers need. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** [of_int n] is the bignum representing [n]. Total. *)
val of_int : int -> t

(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [to_int_exn x] is [x] as a native [int].
    @raise Failure when [x] does not fit. *)
val to_int_exn : t -> int

(** [to_float x] is the nearest-ish float; used only for rendering and
    benchmarks, never for feasibility decisions. *)
val to_float : t -> float

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < |b|]
    (Euclidean division; for [b > 0] this coincides with floor division).
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

(** [div a b] is the floor-division quotient of [divmod]. *)
val div : t -> t -> t

(** [rem a b] is the remainder of [divmod]. *)
val rem : t -> t -> t

(** [cdiv a b] is [ceil (a / b)] for [b > 0]. *)
val cdiv : t -> t -> t

(** [fdiv a b] is [floor (a / b)] for [b > 0]; alias of {!div}. *)
val fdiv : t -> t -> t

(** [mul_int x k] multiplies by a native int. *)
val mul_int : t -> int -> t

(** [shift_left x k] is [x * 2^k] for [k >= 0]. *)
val shift_left : t -> int -> t

(** [shift_right x k] is [x / 2^k] rounded toward zero on the magnitude
    (arithmetic use is restricted to non-negative values in this library). *)
val shift_right : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_even : t -> bool

(** [gcd a b] is the greatest common divisor of [|a|] and [|b|]
    (binary GCD; [gcd 0 0 = 0]). *)
val gcd : t -> t -> t

(** Decimal rendering, e.g. ["-1234567890123456789"]. *)
val to_string : t -> string

(** Parse an optionally ['-']-prefixed decimal string.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
