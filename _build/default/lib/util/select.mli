(** Expected-linear-time selection.

    The paper's preemptive dual approximation solves a {e continuous}
    knapsack in time [O(k)]; the standard tool is weighted-median selection
    rather than sorting. This module provides in-place quickselect and the
    weighted-median routine used by {!Knapsack.Linear}. *)

(** [select ~cmp a k] rearranges [a] so that [a.(k)] holds the element of
    rank [k] (0-based) under [cmp], everything before is [<=] it and
    everything after is [>=] it; returns [a.(k)].
    Expected [O(n)] with randomized pivots.
    @raise Invalid_argument when [k] is out of bounds. *)
val select : cmp:('a -> 'a -> int) -> 'a array -> int -> 'a

(** [kth_smallest ~cmp a k] is {!select} on a copy, leaving [a] intact. *)
val kth_smallest : cmp:('a -> 'a -> int) -> 'a array -> int -> 'a

(** [weighted_median ~weight ~cmp a] returns the least element [x] (under
    [cmp]) such that the total [weight] of elements strictly below [x]
    is [< W/2] and the total weight of elements [<= x] is [>= W/2], where
    [W] is the total weight. Expected [O(n)].
    @raise Invalid_argument on empty input or negative weights. *)
val weighted_median : weight:('a -> float) -> cmp:('a -> 'a -> int) -> 'a array -> 'a
