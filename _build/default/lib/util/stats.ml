let require_nonempty name a = if Array.length a = 0 then invalid_arg (name ^ ": empty")

let mean a =
  require_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  require_nonempty "Stats.stddev" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  require_nonempty "Stats.median" a;
  let b = sorted a in
  let n = Array.length b in
  if n land 1 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile p a =
  require_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted a in
  let n = Array.length b in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  b.(Intmath.clamp 0 (n - 1) (rank - 1))

let min a =
  require_nonempty "Stats.min" a;
  Array.fold_left Stdlib.min a.(0) a

let max a =
  require_nonempty "Stats.max" a;
  Array.fold_left Stdlib.max a.(0) a

let geometric_mean a =
  require_nonempty "Stats.geometric_mean" a;
  let sum_log =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value";
        acc +. log x)
      0.0 a
  in
  exp (sum_log /. float_of_int (Array.length a))

let loglog_slope pts =
  if Array.length pts < 2 then invalid_arg "Stats.loglog_slope: need >= 2 points";
  let logs =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.loglog_slope: non-positive point";
        (log x, log y))
      pts
  in
  let n = float_of_int (Array.length logs) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 logs in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 logs in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 logs in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 logs in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
