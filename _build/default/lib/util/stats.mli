(** Descriptive statistics for experiment reports. *)

(** Arithmetic mean of a non-empty array.
    @raise Invalid_argument on empty input. *)
val mean : float array -> float

(** Sample standard deviation (n-1 denominator); 0 for singletons.
    @raise Invalid_argument on empty input. *)
val stddev : float array -> float

(** Median (average of middle pair for even length).
    @raise Invalid_argument on empty input. *)
val median : float array -> float

(** [percentile p a] with [p] in [\[0, 100\]], nearest-rank.
    @raise Invalid_argument on empty input or out-of-range [p]. *)
val percentile : float -> float array -> float

val min : float array -> float
val max : float array -> float

(** [geometric_mean a] over strictly positive values.
    @raise Invalid_argument on empty or non-positive input. *)
val geometric_mean : float array -> float

(** Least-squares slope of [log y] against [log x]; the empirical growth
    exponent used to verify near-linear running times. Points with
    non-positive coordinates are rejected.
    @raise Invalid_argument when fewer than two points are given. *)
val loglog_slope : (float * float) array -> float
