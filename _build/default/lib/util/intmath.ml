let ceil_div a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b

let floor_div a b =
  assert (a >= 0 && b > 0);
  a / b

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let log2_ceil n =
  assert (n >= 1);
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let pow base e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc else go (if e land 1 = 1 then acc * base else acc) (base * base) (e lsr 1)
  in
  go 1 base e

let sum_array a =
  let s = ref 0 in
  Array.iter
    (fun x ->
      let s' = !s + x in
      assert ((x >= 0 && s' >= !s) || (x < 0 && s' < !s));
      s := s')
    a;
  !s

let max_array a =
  if Array.length a = 0 then invalid_arg "Intmath.max_array: empty";
  Array.fold_left max a.(0) a

let min_array a =
  if Array.length a = 0 then invalid_arg "Intmath.min_array: empty";
  Array.fold_left min a.(0) a

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x
