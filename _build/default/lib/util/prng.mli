(** Deterministic pseudo-random numbers (SplitMix64).

    All workload generators and randomized pivots take an explicit state so
    every experiment in this repository is bit-reproducible from its seed —
    no hidden [Random] global state. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [copy t] is an independent generator continuing from the same point. *)
val copy : t -> t

(** [split t] derives a statistically independent child generator and
    advances [t]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)], [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive), [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] picks a uniform element of a non-empty array.
    @raise Invalid_argument on empty input. *)
val choose : t -> 'a array -> 'a

(** [zipf t ~alpha ~n] samples from a Zipf distribution on [\[1, n\]] with
    exponent [alpha > 0] by inverse-CDF over precomputed weights — fine for
    the modest [n] used by workload generators. *)
val zipf : t -> alpha:float -> n:int -> int
