(** Minimal ASCII table rendering for experiment reports. *)

type align =
  | Left
  | Right

(** [render ~header ?align rows] lays out a monospace table with a header
    rule. Rows shorter than the header are padded with empty cells; longer
    rows are truncated to the header width. [align] defaults to [Left] for
    every column. *)
val render : header:string list -> ?align:align list -> string list list -> string

(** [print ~header ?align rows] renders to stdout with a trailing newline. *)
val print : header:string list -> ?align:align list -> string list list -> unit
