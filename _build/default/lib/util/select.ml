(* Randomized quickselect with three-way partitioning.  Pivot PRNGs are
   domain-local SplitMix64 streams: selection results are deterministic
   values regardless of pivot order, so the stream only affects running
   time — but keeping it domain-local avoids data races under
   Parallel.map. *)

let pivot_key =
  Domain.DLS.new_key (fun () -> Prng.create (0x5e1ec7 + ((Domain.self () :> int) * 0x9e3779b9)))

let pivot_rng_int bound = Prng.int (Domain.DLS.get pivot_key) bound

let swap a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

let select ~cmp a k =
  let n = Array.length a in
  if k < 0 || k >= n then invalid_arg "Select.select: rank out of bounds";
  (* Invariant: the rank-k element lies in [lo, hi]. *)
  let rec go lo hi =
    if lo = hi then a.(lo)
    else begin
      let p = a.(lo + pivot_rng_int (hi - lo + 1)) in
      (* Three-way partition (Dutch national flag) around p. *)
      let lt = ref lo and i = ref lo and gt = ref hi in
      while !i <= !gt do
        let c = cmp a.(!i) p in
        if c < 0 then begin
          swap a !lt !i;
          incr lt;
          incr i
        end
        else if c > 0 then begin
          swap a !i !gt;
          decr gt
        end
        else incr i
      done;
      if k < !lt then go lo (!lt - 1) else if k > !gt then go (!gt + 1) hi else a.(k)
    end
  in
  go 0 (n - 1)

let kth_smallest ~cmp a k = select ~cmp (Array.copy a) k

let weighted_median ~weight ~cmp a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Select.weighted_median: empty";
  let a = Array.copy a in
  let total = Array.fold_left (fun acc x ->
      let w = weight x in
      if w < 0.0 then invalid_arg "Select.weighted_median: negative weight";
      acc +. w) 0.0 a
  in
  let half = total /. 2.0 in
  (* Recurse on the side containing the weighted median, carrying the weight
     already known to lie strictly below the current window. *)
  let rec go lo hi below =
    if lo = hi then a.(lo)
    else begin
      let p = a.(lo + pivot_rng_int (hi - lo + 1)) in
      let lt = ref lo and i = ref lo and gt = ref hi in
      while !i <= !gt do
        let c = cmp a.(!i) p in
        if c < 0 then begin
          swap a !lt !i;
          incr lt;
          incr i
        end
        else if c > 0 then begin
          swap a !i !gt;
          decr gt
        end
        else incr i
      done;
      let w_lt = ref 0.0 in
      for j = lo to !lt - 1 do
        w_lt := !w_lt +. weight a.(j)
      done;
      let w_eq = ref 0.0 in
      for j = !lt to !gt do
        w_eq := !w_eq +. weight a.(j)
      done;
      if below +. !w_lt >= half then go lo (!lt - 1) below
      else if below +. !w_lt +. !w_eq >= half then p
      else go (!gt + 1) hi (below +. !w_lt +. !w_eq)
    end
  in
  go 0 (n - 1) 0.0
