(** Minimal JSON writer (no parser, no dependency).

    Combinators return already-serialized fragments; [obj]/[arr] compose
    them. Enough for the CLI's [--json] output and the telemetry sinks —
    exact rationals are emitted as strings to avoid float loss. *)

(** [escape s] is [s] with JSON string escapes applied (no quotes added). *)
val escape : string -> string

(** [str s] is the quoted, escaped string literal. *)
val str : string -> string

val int : int -> string
val int64 : int64 -> string
val bool : bool -> string

(** [float f] uses ["%.6g"]; non-finite values become [null]. *)
val float : float -> string

(** [obj fields] where each value is an already-serialized fragment. *)
val obj : (string * string) list -> string

val arr : string list -> string
