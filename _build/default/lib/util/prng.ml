(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
   quality for simulation workloads, trivially splittable. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = Int64.logxor seed 0xA5A5A5A5A5A5A5A5L }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  let limit = (max_int / bound) * bound in
  let rec go v = if v < limit then v mod bound else go (Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)) in
  go mask

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty";
  a.(int t (Array.length a))

let zipf t ~alpha ~n =
  if n < 1 then invalid_arg "Prng.zipf: n must be >= 1";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** alpha)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let u = float t *. total in
  let rec go i acc =
    if i >= n - 1 then n
    else begin
      let acc = acc +. weights.(i) in
      if u < acc then i + 1 else go (i + 1) acc
    end
  in
  go 0 0.0
