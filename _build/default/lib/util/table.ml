type align =
  | Left
  | Right

let render ~header ?align rows =
  let ncols = List.length header in
  let fit row =
    let row = if List.length row > ncols then List.filteri (fun i _ -> i < ncols) row else row in
    row @ List.init (ncols - List.length row) (fun _ -> "")
  in
  let rows = List.map fit rows in
  let align =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ | None -> Array.make ncols Left
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row -> List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    match align.(i) with
    | Left -> cell ^ fill
    | Right -> fill ^ cell
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let rule = "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print ~header ?align rows = print_endline (render ~header ?align rows)
