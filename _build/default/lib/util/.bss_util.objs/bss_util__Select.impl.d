lib/util/select.ml: Array Domain Prng
