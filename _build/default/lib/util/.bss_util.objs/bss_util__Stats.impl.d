lib/util/stats.ml: Array Intmath Stdlib
