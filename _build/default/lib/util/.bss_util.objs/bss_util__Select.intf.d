lib/util/select.mli:
