lib/util/json.mli:
