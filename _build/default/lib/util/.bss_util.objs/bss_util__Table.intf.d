lib/util/table.mli:
