lib/util/prng.mli:
