lib/util/intmath.mli:
