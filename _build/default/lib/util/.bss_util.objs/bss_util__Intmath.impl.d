lib/util/intmath.ml: Array
