lib/util/stats.mli:
