lib/util/bigint.ml: Array Buffer Format List Printf Stdlib String Sys
