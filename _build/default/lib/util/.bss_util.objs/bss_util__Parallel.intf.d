lib/util/parallel.mli:
