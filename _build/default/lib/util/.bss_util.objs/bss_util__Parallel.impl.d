lib/util/parallel.ml: Array Atomic Domain Intmath List
