(** Multicore helpers (OCaml 5 domains).

    The experiment harness evaluates many independent (instance,
    algorithm) cases; this module fans them out over domains with a
    shared-counter work queue. No dependency beyond the stdlib's [Domain]
    and [Atomic]. *)

(** [recommended ()] is the runtime's recommended domain count. *)
val recommended : unit -> int

(** [map ?domains f xs] is [List.map f xs] computed on up to [domains]
    domains (default {!recommended}, capped by the list length).
    Order-preserving. If any [f] raises, one such exception is re-raised
    after all domains finish.

    [f] must be safe to run concurrently with itself (the library's
    solvers are pure given distinct instances; the shared PRNG in
    {!Select} is the one documented exception and is benign — pivot
    choice only affects performance). *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ?domains f xs] is [map] for side effects. *)
val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
