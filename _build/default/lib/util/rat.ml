(* Normalized rationals: positive denominator, gcd(|num|, den) = 1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let normalize num den =
  let s = B.sign den in
  if s = 0 then raise Division_by_zero;
  let num, den = if s < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let g = B.gcd num den in
    if B.equal g B.one then { num; den } else { num = B.div num g; den = B.div den g }
  end

let make num den = normalize num den

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let two = { num = B.two; den = B.one }

let of_int n = { num = B.of_int n; den = B.one }
let of_ints p q = normalize (B.of_int p) (B.of_int q)
let of_bigint n = { num = n; den = B.one }

let num x = x.num
let den x = x.den

let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }

let add a b = normalize (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
let sub a b = normalize (B.sub (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
let mul a b = normalize (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = normalize (B.mul a.num b.den) (B.mul a.den b.num)
let inv x = normalize x.den x.num
let mul_int x k = normalize (B.mul_int x.num k) x.den
let div_int x k = normalize x.num (B.mul_int x.den k)
let add_int x k = { num = B.add x.num (B.mul_int x.den k); den = x.den }

let floor x = B.fdiv x.num x.den
let ceil x = B.cdiv x.num x.den
let floor_int x = B.to_int_exn (floor x)
let ceil_int x = B.to_int_exn (ceil x)

let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)
let equal a b = B.equal a.num b.num && B.equal a.den b.den
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let ( = ) a b = equal a b
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num
let is_integer x = B.equal x.den B.one

let to_float x = B.to_float x.num /. B.to_float x.den

let to_int_opt x = if is_integer x then B.to_int_opt x.num else None

let to_string x =
  if is_integer x then B.to_string x.num else B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
end
