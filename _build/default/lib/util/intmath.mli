(** Small arithmetic helpers on native integers.

    Input processing and setup times are native ints (the paper's ℕ); these
    helpers implement the integer ceilings/floors and bit tricks the
    algorithms and analyses use. *)

(** [ceil_div a b] is [⌈a/b⌉] for [a >= 0], [b > 0]. *)
val ceil_div : int -> int -> int

(** [floor_div a b] is [⌊a/b⌋] for [a >= 0], [b > 0]. *)
val floor_div : int -> int -> int

(** Greatest common divisor of absolute values; [gcd 0 0 = 0]. *)
val gcd : int -> int -> int

(** [log2_ceil n] is the least [k] with [2^k >= n], for [n >= 1]. *)
val log2_ceil : int -> int

(** [pow base e] for [e >= 0]; unchecked overflow. *)
val pow : int -> int -> int

(** [sum_array a] with overflow assertion in debug builds. *)
val sum_array : int array -> int

(** [max_array a] over a non-empty array.
    @raise Invalid_argument on empty input. *)
val max_array : int array -> int

(** [min_array a] over a non-empty array.
    @raise Invalid_argument on empty input. *)
val min_array : int array -> int

(** [clamp lo hi x] limits [x] to [\[lo, hi\]]. *)
val clamp : int -> int -> int -> int
