(* Arbitrary-precision signed integers on base-2^30 limbs.

   Representation invariants:
   - [mag] is little-endian, has no trailing (most-significant) zero limb;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1;
   - every limb is in [0, 2^30). *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* --- magnitude helpers ----------------------------------------------- *)

let mag_is_zero m = Array.length m = 0

let normalize_mag m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if mag_is_zero mag then zero else { sign; mag }

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let x = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- x land base_mask;
    carry := x lsr base_bits
  done;
  assert (!carry = 0);
  normalize_mag r

(* [sub_mag a b] assumes [a >= b]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if x < 0 then begin
      r.(i) <- x + base;
      borrow := 1
    end
    else begin
      r.(i) <- x;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize_mag r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let x = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- x land base_mask;
        carry := x lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize_mag r
  end

let shl_mag m k =
  if mag_is_zero m || k = 0 then m
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let lm = Array.length m in
    let r = Array.make (lm + limbs + 1) 0 in
    for i = 0 to lm - 1 do
      let x = m.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (x land base_mask);
      r.(i + limbs + 1) <- x lsr base_bits
    done;
    normalize_mag r
  end

let shr_mag m k =
  if mag_is_zero m || k = 0 then m
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let lm = Array.length m in
    if limbs >= lm then [||]
    else begin
      let lr = lm - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = m.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < lm then (m.(i + limbs + 1) lsl (base_bits - bits)) land base_mask else 0 in
        r.(i) <- if bits = 0 then m.(i + limbs) else lo lor hi
      done;
      normalize_mag r
    end
  end

let bit_length_mag m =
  let lm = Array.length m in
  if lm = 0 then 0
  else begin
    let top = m.(lm - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((lm - 1) * base_bits) + width 1
  end

let test_bit m i =
  let limb = i / base_bits and bit = i mod base_bits in
  if limb >= Array.length m then false else (m.(limb) lsr bit) land 1 = 1

(* Short division of a magnitude by a native int in (0, 2^30). *)
let divmod_mag_small m d =
  assert (d > 0 && d < base);
  let lm = Array.length m in
  let q = Array.make lm 0 in
  let r = ref 0 in
  for i = lm - 1 downto 0 do
    let cur = (!r lsl base_bits) lor m.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize_mag q, !r)

(* Schoolbook binary long division: O(bits(a) * limbs(b)).  The bignums in
   this library stay small (a handful of limbs), so simplicity wins over a
   Knuth-D implementation. *)
let divmod_mag a b =
  assert (not (mag_is_zero b));
  if cmp_mag a b < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = divmod_mag_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let bits = bit_length_mag a in
    let q = Array.make (Array.length a) 0 in
    let r = ref [||] in
    for i = bits - 1 downto 0 do
      r := shl_mag !r 1;
      if test_bit a i then r := add_mag !r [| 1 |];
      if cmp_mag !r b >= 0 then begin
        r := sub_mag !r b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (normalize_mag q, !r)
  end

(* --- signed operations ------------------------------------------------ *)

let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let of_int n =
  if n = 0 then zero
  else if n = min_int then begin
    (* |min_int| = 2^(int_size-1); negating would overflow, so build it
       directly. *)
    let k = Sys.int_size - 1 in
    let m = Array.make ((k / base_bits) + 1) 0 in
    m.(k / base_bits) <- 1 lsl (k mod base_bits);
    make (-1) m
  end
  else begin
    let sign = if n < 0 then -1 else 1 in
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land base_mask) :: acc) (n lsr base_bits) in
    make sign (Array.of_list (limbs [] (abs n)))
  end

let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a k = mul a (of_int k)

let shift_left x k = if x.sign = 0 then zero else make x.sign (shl_mag x.mag k)
let shift_right x k = if x.sign = 0 then zero else make x.sign (shr_mag x.mag k)

let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = divmod_mag a.mag b.mag in
  let q0 = make (a.sign * b.sign) qm and r0 = make 1 rm in
  if a.sign >= 0 then (q0, r0)
  else if is_zero r0 then (q0, zero)
  else
    (* Pull the remainder up into [0, |b|). *)
    (sub q0 (of_int b.sign), sub (abs b) r0)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv = div

let cdiv a b =
  let q, r = divmod a b in
  if is_zero r then q else add q one

let gcd a b =
  (* Binary GCD on magnitudes. *)
  let rec twos m k = if mag_is_zero m || test_bit m 0 then (m, k) else twos (shr_mag m 1) (k + 1) in
  let rec go a b =
    if mag_is_zero a then b
    else if mag_is_zero b then a
    else begin
      let a, _ = twos a 0 and b, _ = twos b 0 in
      if cmp_mag a b >= 0 then go (sub_mag a b) b else go (sub_mag b a) a
    end
  in
  let a = a.mag and b = b.mag in
  if mag_is_zero a then make 1 b
  else if mag_is_zero b then make 1 a
  else begin
    let a', ka = twos a 0 and b', kb = twos b 0 in
    let g = go a' b' in
    make 1 (shl_mag g (Stdlib.min ka kb))
  end

let to_int_opt x =
  if x.sign = 0 then Some 0
  else if bit_length_mag x.mag >= Sys.int_size then None
  else begin
    let v = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor x.mag.(i)
    done;
    Some (x.sign * !v)
  end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of native range"

let to_float x =
  let v = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !v

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref x.mag in
    while not (mag_is_zero !m) do
      let q, r = divmod_mag_small !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := q
    done;
    let buf = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten9 = of_int 1_000_000_000 in
  let i = ref start in
  while !i < len do
    let stop = Stdlib.min len (!i + 9) in
    let chunk = String.sub s !i (stop - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") chunk;
    let scale = if stop - !i = 9 then ten9 else of_int (int_of_float (10. ** float_of_int (stop - !i))) in
    acc := add (mul !acc scale) (of_int (int_of_string chunk));
    i := stop
  done;
  if negative then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
