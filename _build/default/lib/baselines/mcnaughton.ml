open Bss_util

type piece = { job : int; start : Rat.t; dur : Rat.t }

let optimal_makespan ~m ~times =
  if m < 1 then invalid_arg "Mcnaughton: m < 1";
  if Array.length times = 0 then invalid_arg "Mcnaughton: no jobs";
  Array.iter (fun t -> if t < 1 then invalid_arg "Mcnaughton: non-positive time") times;
  let total = Intmath.sum_array times in
  Rat.max (Rat.of_int (Intmath.max_array times)) (Rat.of_ints total m)

let schedule ~m ~times =
  let horizon = optimal_makespan ~m ~times in
  let machines = Array.make m [] in
  let u = ref 0 and t = ref Rat.zero in
  Array.iteri
    (fun j tj ->
      let remaining = ref (Rat.of_int tj) in
      while Rat.sign !remaining > 0 do
        let room = Rat.sub horizon !t in
        if Rat.sign room <= 0 then begin
          incr u;
          t := Rat.zero
        end
        else begin
          let chunk = Rat.min !remaining room in
          machines.(!u) <- { job = j; start = !t; dur = chunk } :: machines.(!u);
          t := Rat.add !t chunk;
          remaining := Rat.sub !remaining chunk
        end
      done)
    times;
  (Array.map List.rev machines, horizon)

let is_valid ~m ~times pieces =
  if Array.length pieces <> m then false
  else begin
    let horizon = optimal_makespan ~m ~times in
    let volumes = Array.make (Array.length times) Rat.zero in
    let machine_ok =
      Array.for_all
        (fun ps ->
          let sorted = List.sort (fun a b -> Rat.compare a.start b.start) ps in
          let rec chain prev_end = function
            | [] -> true
            | p :: rest ->
              volumes.(p.job) <- Rat.add volumes.(p.job) p.dur;
              Rat.( >= ) p.start prev_end
              && Rat.( <= ) (Rat.add p.start p.dur) horizon
              && chain (Rat.add p.start p.dur) rest
          in
          chain Rat.zero sorted)
        pieces
    in
    let volume_ok =
      Array.for_all2 (fun v t -> Rat.equal v (Rat.of_int t)) volumes times
    in
    (* no self-parallelism: pieces of one job must not overlap in time *)
    let by_job = Array.make (Array.length times) [] in
    Array.iter (List.iter (fun p -> by_job.(p.job) <- p :: by_job.(p.job))) pieces;
    let parallel_ok =
      Array.for_all
        (fun ps ->
          let sorted = List.sort (fun a b -> Rat.compare a.start b.start) ps in
          let rec chain prev_end = function
            | [] -> true
            | p :: rest -> Rat.( >= ) p.start prev_end && chain (Rat.add p.start p.dur) rest
          in
          chain Rat.zero sorted)
        by_job
    in
    machine_ok && volume_ok && parallel_ok
  end
