open Bss_util
open Bss_instances

type piece = { job : int; dur : Rat.t }

type chunk = {
  cls : int;
  pieces : piece list;  (** bottom-to-top *)
  splittable : bool;
  shift : Rat.t;  (** idle inserted below the chunk (job-sequencing guard) *)
}

let chunk_work c = List.fold_left (fun acc p -> Rat.add acc p.dur) Rat.zero c.pieces

let chunk_span inst c = Rat.add c.shift (Rat.add (Rat.of_int inst.Instance.setups.(c.cls)) (chunk_work c))

let load inst chunks = List.fold_left (fun acc c -> Rat.add acc (chunk_span inst c)) Rat.zero chunks

(* split the chunk's job list so that the moved suffix carries work [x];
   returns (kept pieces, moved pieces, split_job_end_offset option) where
   the offset is the kept part's work after which the cut job's first
   piece ends (None when the cut lands on a job boundary). *)
let cut_suffix pieces x =
  let total = List.fold_left (fun acc p -> Rat.add acc p.dur) Rat.zero pieces in
  let keep_work = Rat.sub total x in
  let rec go acc_work acc_kept = function
    | [] -> (List.rev acc_kept, [], false)
    | p :: rest ->
      let after = Rat.add acc_work p.dur in
      if Rat.( <= ) after keep_work then go after (p :: acc_kept) rest
      else if Rat.equal acc_work keep_work then (List.rev acc_kept, p :: rest, false)
      else begin
        (* p is cut into two sequential pieces of one job *)
        let head = Rat.sub keep_work acc_work in
        let tail = Rat.sub p.dur head in
        (List.rev ({ p with dur = head } :: acc_kept), { p with dur = tail } :: rest, true)
      end
  in
  go Rat.zero [] pieces

let schedule inst =
  let m = inst.Instance.m in
  let machines = Array.make m ([] : chunk list (* bottom-to-top *)) in
  let loads = Array.make m Rat.zero in
  (* phase 1: LPT over whole batches *)
  let size i = inst.Instance.setups.(i) + inst.Instance.class_load.(i) in
  let order =
    List.sort (fun a b -> compare (size b, a) (size a, b)) (List.init (Instance.c inst) (fun i -> i))
  in
  List.iter
    (fun i ->
      let u = ref 0 in
      for v = 1 to m - 1 do
        if Rat.( < ) loads.(v) loads.(!u) then u := v
      done;
      let pieces =
        Array.to_list (Instance.jobs_of_class inst i)
        |> List.map (fun j -> { job = j; dur = Rat.of_int inst.Instance.job_time.(j) })
      in
      let c = { cls = i; pieces; splittable = true; shift = Rat.zero } in
      machines.(!u) <- machines.(!u) @ [ c ];
      loads.(!u) <- Rat.add loads.(!u) (chunk_span inst c))
    order;
  (* phase 2: relieve the makespan machine by splitting its last batch *)
  let argmax () =
    let u = ref 0 in
    for v = 1 to m - 1 do
      if Rat.( > ) loads.(v) loads.(!u) then u := v
    done;
    !u
  in
  let argmin_except u0 =
    let u = ref (if u0 = 0 then min 1 (m - 1) else 0) in
    for v = 0 to m - 1 do
      if v <> u0 && Rat.( < ) loads.(v) loads.(!u) then u := v
    done;
    !u
  in
  let improved = ref (m > 1) in
  let rounds = ref 0 in
  while !improved && !rounds <= Instance.c inst do
    incr rounds;
    improved := false;
    let u = argmax () in
    let v = argmin_except u in
    match List.rev machines.(u) with
    | top :: rest_rev when top.splittable && v <> u ->
      let s = Rat.of_int inst.Instance.setups.(top.cls) in
      let work = chunk_work top in
      let l_u = loads.(u) and l_v = loads.(v) in
      (* candidate cut sizes: the fractional balance point and the job
         boundaries bracketing it *)
      let ideal = Rat.div_int (Rat.sub (Rat.sub l_u l_v) s) 2 in
      (* the two job-boundary cuts bracketing the ideal one (boundary cuts
         avoid the job-sequencing guard entirely) *)
      let boundaries =
        let below = ref None and above = ref None in
        let suffix = ref Rat.zero in
        List.iter
          (fun p ->
            suffix := Rat.add !suffix p.dur;
            if Rat.( < ) !suffix work then begin
              if Rat.( <= ) !suffix ideal then below := Some !suffix
              else if !above = None then above := Some !suffix
            end)
          (List.rev top.pieces);
        List.filter_map (fun x -> x) [ !below; !above ]
      in
      let evaluate x =
        if Rat.sign x <= 0 || Rat.( >= ) x work then None
        else begin
          let kept, _, cuts_a_job = cut_suffix top.pieces x in
          ignore kept;
          let new_u = Rat.sub l_u x in
          let new_v =
            if cuts_a_job then
              (* the moved first piece must wait for its kept part *)
              Rat.max (Rat.add l_v (Rat.add s x)) l_u
            else Rat.add l_v (Rat.add s x)
          in
          Some (Rat.max new_u new_v, x)
        end
      in
      let candidates = List.filter_map evaluate (ideal :: boundaries) in
      let best =
        List.fold_left
          (fun acc (peak, x) ->
            match acc with
            | Some (bp, _) when Rat.( <= ) bp peak -> acc
            | _ -> Some (peak, x))
          None candidates
      in
      (match best with
      | Some (peak, x)
        when Rat.( < ) peak l_u
             && List.for_all (fun w -> Rat.( < ) (loads.(w)) l_u || w = u) (List.init m (fun w -> w)) ->
        let kept, moved, cuts_a_job = cut_suffix top.pieces x in
        let kept_chunk = { top with pieces = kept; splittable = false } in
        let shift =
          if cuts_a_job then
            (* first moved piece starts at shift + l_v + s; it must be
               >= the kept part's end, which is the new load of u *)
            Rat.max Rat.zero (Rat.sub (Rat.sub l_u x) (Rat.add l_v s))
          else Rat.zero
        in
        let moved_chunk = { cls = top.cls; pieces = moved; splittable = false; shift } in
        machines.(u) <- List.rev (kept_chunk :: rest_rev);
        machines.(v) <- machines.(v) @ [ moved_chunk ];
        loads.(u) <- load inst machines.(u);
        loads.(v) <- load inst machines.(v);
        improved := true
      | Some _ | None -> ())
    | _ -> ()
  done;
  (* materialize *)
  let sched = Schedule.create m in
  for u = 0 to m - 1 do
    let t = ref Rat.zero in
    List.iter
      (fun c ->
        t := Rat.add !t c.shift;
        let s = Rat.of_int inst.Instance.setups.(c.cls) in
        Schedule.add_setup sched ~machine:u ~cls:c.cls ~start:!t ~dur:s;
        t := Rat.add !t s;
        List.iter
          (fun p ->
            Schedule.add_work sched ~machine:u ~job:p.job ~start:!t ~dur:p.dur;
            t := Rat.add !t p.dur)
          c.pieces)
      machines.(u)
  done;
  sched
