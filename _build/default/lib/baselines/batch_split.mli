(** Monma and Potts' second heuristic (reconstruction): list scheduling of
    complete batches followed by splitting batches across two machines.

    Their 1993 paper (and Chen's 1993 improvement) schedules whole batches
    by LPT and then relieves the longest machine by moving a suffix of its
    last batch — paying one extra setup — to the least-loaded machine,
    which is what makes the heuristic [(3/2 − 1/(4m−4))]-ish on small
    batches. We reconstruct that core:

    + LPT over whole batches;
    + repeat: take the makespan machine, split its last batch at the
      fractional point balancing the two machines (pieces of a cut job
      are kept sequential in time, so the schedule stays
      preemptive-feasible), move the suffix to the least-loaded machine
      with a fresh setup; stop when no move improves the makespan.

    Result: preemptive-feasible, never worse than plain batch LPT
    (property-tested), and measurably close to optimal on the paper's
    small-batch regime. *)

open Bss_instances

(** [schedule inst] runs the heuristic. *)
val schedule : Instance.t -> Schedule.t
