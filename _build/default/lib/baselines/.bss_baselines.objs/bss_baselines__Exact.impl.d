lib/baselines/exact.ml: Array Bss_instances Bss_util Instance List Rat
