lib/baselines/mcnaughton.ml: Array Bss_util Intmath List Rat
