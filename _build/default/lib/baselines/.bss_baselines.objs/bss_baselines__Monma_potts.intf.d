lib/baselines/monma_potts.mli: Bss_instances Bss_util Instance Schedule
