lib/baselines/batch_split.mli: Bss_instances Instance Schedule
