lib/baselines/mcnaughton.mli: Bss_util Rat
