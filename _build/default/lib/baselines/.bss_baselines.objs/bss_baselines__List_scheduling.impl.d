lib/baselines/list_scheduling.ml: Array Bss_instances Bss_util Instance List Rat Schedule
