lib/baselines/list_scheduling.mli: Bss_instances Instance Schedule
