lib/baselines/exact.mli: Bss_instances Bss_util Instance
