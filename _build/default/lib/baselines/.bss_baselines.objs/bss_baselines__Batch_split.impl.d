lib/baselines/batch_split.ml: Array Bss_instances Bss_util Instance List Rat Schedule
