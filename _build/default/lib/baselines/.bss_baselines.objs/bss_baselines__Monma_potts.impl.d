lib/baselines/monma_potts.ml: Array Bss_instances Bss_util Instance Lower_bounds Rat Schedule
