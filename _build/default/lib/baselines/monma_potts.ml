open Bss_util
open Bss_instances

let level inst =
  let volume_plus_setup = Rat.add (Rat.of_ints inst.Instance.total inst.Instance.m) (Rat.of_int inst.Instance.s_max) in
  Rat.max volume_plus_setup (Rat.of_int (Lower_bounds.setup_plus_tmax inst))

let schedule inst =
  let m = inst.Instance.m in
  let horizon = level inst in
  let sched = Schedule.create m in
  let u = ref 0 and t = ref Rat.zero in
  let advance_with_setup cls =
    (* a cut class restarts on the next machine with a fresh setup *)
    assert (!u + 1 < m);
    incr u;
    t := Rat.zero;
    let s = Rat.of_int inst.Instance.setups.(cls) in
    Schedule.add_setup sched ~machine:!u ~cls ~start:Rat.zero ~dur:s;
    t := s
  in
  let place_setup cls =
    let s = Rat.of_int inst.Instance.setups.(cls) in
    if Rat.( > ) (Rat.add !t s) horizon then advance_with_setup cls
    else begin
      Schedule.add_setup sched ~machine:!u ~cls ~start:!t ~dur:s;
      t := Rat.add !t s
    end
  in
  let place_job cls j =
    let remaining = ref (Rat.of_int inst.Instance.job_time.(j)) in
    while Rat.sign !remaining > 0 do
      let room = Rat.sub horizon !t in
      if Rat.sign room <= 0 then advance_with_setup cls
      else begin
        let chunk = Rat.min !remaining room in
        Schedule.add_work sched ~machine:!u ~job:j ~start:!t ~dur:chunk;
        t := Rat.add !t chunk;
        remaining := Rat.sub !remaining chunk
      end
    done
  in
  for i = 0 to Instance.c inst - 1 do
    place_setup i;
    Array.iter (place_job i) (Instance.jobs_of_class inst i)
  done;
  sched
