(** The Monma–Potts-style wrap-around heuristic for
    [P|pmtn,setup=s_i|Cmax] (their 1993 heuristic; the previous best ratio
    for general preemptive batch-setup scheduling before this paper's
    3/2).

    Reconstruction note: Monma and Potts wrap the batch sequence
    [[s_1, C_1, s_2, C_2, …]] McNaughton-style at a level [L], inserting a
    fresh setup when a class is cut at a machine border. We implement that
    wrap-around core at the level
    [L = max(N/m + s_max, max_i (s_i + t^(i)_max))] — linear time, and
    every piece of a cut job obeys [s_i + t_j <= L], so no job overlaps
    itself. The makespan is at most [L <= 2·OPT], matching the asymptotic
    shape of their [2 − 1/(⌊m/2⌋+1)] guarantee (which tends to 2 as
    [m → ∞]); EXPERIMENTS.md reports the measured ratios next to the
    paper's 3/2 algorithms. *)

open Bss_instances

(** [schedule inst] is a preemptive-feasible schedule with makespan at
    most [max(N/m + s_max, max_i (s_i + t^(i)_max)) <= 2·OPT]. *)
val schedule : Instance.t -> Schedule.t

(** The level [L] used by {!schedule}. *)
val level : Instance.t -> Bss_util.Rat.t
