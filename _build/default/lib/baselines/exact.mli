(** Exact optima for tiny instances — ratio oracles for the test suite.

    [OPT_split <= OPT_pmtn <= OPT_nonp], so the non-preemptive optimum
    brackets all three variants from above while {!Bss_instances.Lower_bounds}
    brackets from below. The non-preemptive solver enumerates job→machine
    assignments with branch-and-bound (per machine, grouping a class
    behind one setup is always optimal, so machine load is
    [Σ_{i present} s_i + Σ t_j]). Exponential: use only for [n·log m]
    small (the test suites keep [m^n] under ~2^20). *)

open Bss_instances

(** [nonpreemptive_opt inst] is the exact optimal non-preemptive makespan.
    @raise Invalid_argument when the search space [m^n] exceeds ~4·10^6. *)
val nonpreemptive_opt : Instance.t -> int

(** [splittable_opt_small inst] is the exact splittable optimum computed
    by enumerating setup multiplicities [λ_i ∈ [1, m]] per class and, for
    each choice, binary-searching the minimal feasible fractional
    makespan; exact for small [c] and [m].
    @raise Invalid_argument when [m^c] exceeds ~10^5. *)
val splittable_opt_small : Instance.t -> Bss_util.Rat.t
