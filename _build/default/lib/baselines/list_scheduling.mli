(** Whole-batch list scheduling baselines.

    The natural practitioner baselines: treat each class as one
    indivisible batch of length [s_i + P(C_i)] and assign greedily to the
    least-loaded machine — either in input order ([greedy]) or longest
    batch first ([lpt]). Both produce schedules feasible for all three
    variants (each class runs contiguously on one machine) but offer no
    constant ratio for batch-setup scheduling: a single class larger than
    [m]'s share cannot be split, which is exactly what the paper's
    algorithms exploit. *)

open Bss_instances

(** [greedy inst] assigns whole classes in input order. *)
val greedy : Instance.t -> Schedule.t

(** [lpt inst] assigns whole classes longest-first. *)
val lpt : Instance.t -> Schedule.t
