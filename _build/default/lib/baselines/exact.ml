open Bss_util
open Bss_instances

let nonpreemptive_opt inst =
  let m = inst.Instance.m and n = Instance.n inst in
  (* m^n bounded to keep the oracle fast *)
  let space = try float_of_int m ** float_of_int n with _ -> infinity in
  if space > 4e6 && n > 12 then invalid_arg "Exact.nonpreemptive_opt: instance too large";
  (* Longest-first ordering tightens the bound early. *)
  let order = Array.init n (fun j -> j) in
  Array.sort (fun a b -> compare inst.Instance.job_time.(b) inst.Instance.job_time.(a)) order;
  let loads = Array.make m 0 in
  let masks = Array.make m 0 in
  let best = ref inst.Instance.total in
  let rec go idx current_max =
    if current_max >= !best then ()
    else if idx = n then best := current_max
    else begin
      let j = order.(idx) in
      let cls = inst.Instance.job_class.(j) in
      let seen_empty = ref false in
      for u = 0 to m - 1 do
        let empty = loads.(u) = 0 in
        (* identical empty machines are symmetric: try only the first *)
        if (not empty) || not !seen_empty then begin
          if empty then seen_empty := true;
          let extra =
            inst.Instance.job_time.(j) + (if masks.(u) land (1 lsl cls) = 0 then inst.Instance.setups.(cls) else 0)
          in
          let old_load = loads.(u) and old_mask = masks.(u) in
          loads.(u) <- old_load + extra;
          masks.(u) <- old_mask lor (1 lsl cls);
          go (idx + 1) (max current_max loads.(u));
          loads.(u) <- old_load;
          masks.(u) <- old_mask
        end
      done
    end
  in
  go 0 0;
  !best

let splittable_opt_small inst =
  let m = inst.Instance.m and c = Instance.c inst in
  let combos = try float_of_int (1 lsl c) ** float_of_int m with _ -> infinity in
  if combos > 1e5 then invalid_arg "Exact.splittable_opt_small: instance too large";
  let setup_sum mask =
    let acc = ref 0 in
    for i = 0 to c - 1 do
      if mask land (1 lsl i) <> 0 then acc := !acc + inst.Instance.setups.(i)
    done;
    !acc
  in
  let class_load mask =
    let acc = ref 0 in
    for i = 0 to c - 1 do
      if mask land (1 lsl i) <> 0 then acc := !acc + inst.Instance.class_load.(i)
    done;
    !acc
  in
  let best = ref (Rat.of_int inst.Instance.total) in
  (* machine u gets the setup-set placement.(u) ⊆ classes; for a fixed
     placement the minimal feasible fractional makespan is
     max(max_u setups(u), max_{A ⊆ [c]} (P(A) + Σ_{u serves A} setups(u)) / #serving)
     — Hall's condition of the class→machine capacity flow. *)
  let placement = Array.make m 0 in
  let rec enumerate u =
    if u = m then begin
      (* every class needs at least one setup *)
      let union = Array.fold_left ( lor ) 0 placement in
      if union = (1 lsl c) - 1 then begin
        let t = ref Rat.zero in
        Array.iter (fun mask -> t := Rat.max !t (Rat.of_int (setup_sum mask))) placement;
        for a = 1 to (1 lsl c) - 1 do
          let serving = Array.to_list placement |> List.filter (fun mask -> mask land a <> 0) in
          let k = List.length serving in
          if k > 0 then begin
            let numer = class_load a + List.fold_left (fun acc mask -> acc + setup_sum mask) 0 serving in
            t := Rat.max !t (Rat.of_ints numer k)
          end
        done;
        if Rat.( < ) !t !best then best := !t
      end
    end
    else begin
      (* canonical order to halve the symmetric search a little *)
      for mask = 0 to (1 lsl c) - 1 do
        if u = 0 || mask <= placement.(u - 1) then begin
          placement.(u) <- mask;
          enumerate (u + 1)
        end
      done;
      placement.(u) <- 0
    end
  in
  enumerate 0;
  !best
