open Bss_util
open Bss_instances

let assign inst order =
  let m = inst.Instance.m in
  let sched = Schedule.create m in
  let loads = Array.make m Rat.zero in
  let least_loaded () =
    let best = ref 0 in
    for u = 1 to m - 1 do
      if Rat.( < ) loads.(u) loads.(!best) then best := u
    done;
    !best
  in
  List.iter
    (fun i ->
      let u = least_loaded () in
      let s = Rat.of_int inst.Instance.setups.(i) in
      Schedule.add_setup sched ~machine:u ~cls:i ~start:loads.(u) ~dur:s;
      loads.(u) <- Rat.add loads.(u) s;
      Array.iter
        (fun j ->
          let t = Rat.of_int inst.Instance.job_time.(j) in
          Schedule.add_work sched ~machine:u ~job:j ~start:loads.(u) ~dur:t;
          loads.(u) <- Rat.add loads.(u) t)
        (Instance.jobs_of_class inst i))
    order;
  sched

let greedy inst = assign inst (List.init (Instance.c inst) (fun i -> i))

let lpt inst =
  let size i = inst.Instance.setups.(i) + inst.Instance.class_load.(i) in
  let order =
    List.sort (fun a b -> compare (size b, a) (size a, b)) (List.init (Instance.c inst) (fun i -> i))
  in
  assign inst order
