(** McNaughton's wrap-around rule for [P|pmtn|Cmax] (no setup times).

    The optimal preemptive makespan without setups is
    [max(t_max, Σt_j / m)]; the rule fills machines left to right and
    splits a job whenever it crosses the border. It is both the ancestor
    of the paper's Batch Wrapping (Appendix A.1) and a test oracle for our
    wrap machinery. *)

open Bss_util

type piece = { job : int; start : Rat.t; dur : Rat.t }

(** [schedule ~m ~times] is the per-machine piece lists plus the optimal
    makespan [max(t_max, Σt/m)].
    @raise Invalid_argument when [m < 1], [times] is empty or contains a
    non-positive time. *)
val schedule : m:int -> times:int array -> piece list array * Rat.t

(** [optimal_makespan ~m ~times] is [max(t_max, Σt/m)]. *)
val optimal_makespan : m:int -> times:int array -> Rat.t

(** [is_valid ~m ~times pieces] checks volumes, machine capacity and the
    no-self-parallelism constraint (used in tests). *)
val is_valid : m:int -> times:int array -> piece list array -> bool
