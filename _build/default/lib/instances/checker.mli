(** Exact feasibility checking of schedules, per problem variant.

    The checker enforces the paper's model: machines are single-threaded, a
    setup of class [i] precedes class-[i] processing whenever the machine
    starts or switches to class [i], setups are never preempted (always a
    single full-length segment), and every job is processed for exactly its
    processing time. Variant-specific rules: non-preemptive jobs run as one
    contiguous block on one machine; preemptive jobs never overlap
    themselves in time; splittable jobs are unconstrained.

    All checks are exact rational arithmetic — no tolerance. *)

open Bss_util

type violation =
  | Bad_machine_index of { machine : int }
      (** a non-empty machine with index [>= m] (more machines used than
          the instance has) *)
  | Overlap of { machine : int; at : Rat.t }
      (** two segments on one machine intersect in time *)
  | Bad_setup_duration of { machine : int; cls : int; at : Rat.t; got : Rat.t }
      (** a setup segment shorter/longer than [s_i] (setups are
          unpreemptable); [at] is the segment's start *)
  | Missing_setup of { machine : int; job : int; at : Rat.t }
      (** class-[i] work starting at [at] not preceded by a class-[i] setup
          or class-[i] work *)
  | Wrong_volume of { job : int; got : Rat.t; expected : Rat.t }
      (** total processed time differs from [t_j = expected] *)
  | Self_parallel of { machine : int; job : int; at : Rat.t }
      (** (preemptive) two pieces of one job overlap in time; [machine]
          runs the later-starting piece *)
  | Not_contiguous of { machine : int; job : int; at : Rat.t }
      (** (non-preemptive) job is preempted or split across machines;
          [(machine, at)] locate the first piece that breaks contiguity *)
  | Makespan_exceeded of { machine : int; got : Rat.t; bound : Rat.t }

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** [check variant instance schedule] validates the schedule; with
    [?makespan_bound] also checks every machine finishes by the bound.
    Returns all violations found (not just the first). *)
val check : ?makespan_bound:Rat.t -> Variant.t -> Instance.t -> Schedule.t -> (unit, violation list) result

(** [check_exn] raises [Failure] with a readable message on violations. *)
val check_exn : ?makespan_bound:Rat.t -> Variant.t -> Instance.t -> Schedule.t -> unit

(** [is_feasible] is [check] collapsed to a boolean. *)
val is_feasible : ?makespan_bound:Rat.t -> Variant.t -> Instance.t -> Schedule.t -> bool
