(** Certified lower bounds on the optimal makespan.

    For every instance [I]: [OPT >= N/m] (total volume), [OPT > s_max],
    and for the preemptive and non-preemptive variants additionally
    [OPT >= max_i (s_i + t^(i)_max)] (Notes 1 and 2 of the paper). The value
    [T_min] below satisfies [OPT ∈ [T_min, 2 T_min]] thanks to the
    2-approximations of Theorem 1, which is what the binary searches use. *)

open Bss_util

(** [volume_bound inst] is [N/m] as an exact rational. *)
val volume_bound : Instance.t -> Rat.t

(** [setup_plus_tmax inst] is [max_i (s_i + t^(i)_max)]. *)
val setup_plus_tmax : Instance.t -> int

(** [t_min variant inst] is the paper's [T_min]:
    [max(N/m, s_max)] for splittable, [max(N/m, max_i (s_i + t^(i)_max))]
    otherwise. In all variants [T_min <= OPT <= 2 T_min]. *)
val t_min : Variant.t -> Instance.t -> Rat.t

(** [lower_bound variant inst] is a certified lower bound on [OPT]; equals
    {!t_min} (ratio measurements divide by this). *)
val lower_bound : Variant.t -> Instance.t -> Rat.t
