open Bss_util

type t = {
  makespan : Rat.t;
  total_load : Rat.t;
  total_setup_time : Rat.t;
  setup_count : int;
  preemption_count : int;
  machines_used : int;
  idle_within_makespan : Rat.t;
}

let compute inst sched =
  let makespan = Schedule.makespan sched in
  let total_load = Schedule.total_load sched in
  let setup_time = ref Rat.zero and setup_count = ref 0 in
  let work_segs = ref 0 in
  let used = ref 0 in
  for u = 0 to Schedule.machines sched - 1 do
    let segs = Schedule.segments sched u in
    if segs <> [] then incr used;
    List.iter
      (fun (seg : Schedule.seg) ->
        match seg.content with
        | Schedule.Setup _ ->
          incr setup_count;
          setup_time := Rat.add !setup_time seg.dur
        | Schedule.Work _ -> incr work_segs)
      segs
  done;
  {
    makespan;
    total_load;
    total_setup_time = !setup_time;
    setup_count = !setup_count;
    preemption_count = max 0 (!work_segs - Instance.n inst);
    machines_used = !used;
    idle_within_makespan = Rat.sub (Rat.mul_int makespan (Schedule.machines sched)) total_load;
  }

let ratio_vs lb metrics =
  if Rat.is_zero lb then infinity else Rat.to_float (Rat.div metrics.makespan lb)

let to_string t =
  Printf.sprintf "makespan=%s load=%s setups=%d (time %s) preemptions=%d machines=%d idle=%s"
    (Rat.to_string t.makespan) (Rat.to_string t.total_load) t.setup_count
    (Rat.to_string t.total_setup_time) t.preemption_count t.machines_used
    (Rat.to_string t.idle_within_makespan)
