open Bss_util

let class_letter i = Char.chr (Char.code 'a' + (i mod 26))

let gantt ?(width = 72) ?(guides = []) inst sched =
  ignore inst;
  let horizon =
    List.fold_left (fun acc (_, g) -> Rat.max acc g) (Schedule.makespan sched) guides
  in
  let horizon = if Rat.is_zero horizon then Rat.one else horizon in
  let cell_of time =
    (* Position of a rational time in [0, width]. *)
    let scaled = Rat.mul_int (Rat.div time horizon) width in
    Intmath.clamp 0 width (Rat.floor_int scaled)
  in
  let buf = Buffer.create 1024 in
  (* Guide line. *)
  if guides <> [] then begin
    let line = Bytes.make (width + 1) ' ' in
    List.iter
      (fun (label, g) ->
        let p = cell_of g in
        let label = if String.length label > width - p then String.sub label 0 (width - p) else label in
        Bytes.blit_string label 0 line p (String.length label))
      guides;
    Buffer.add_string buf ("      " ^ Bytes.to_string line ^ "\n");
    let marks = Bytes.make (width + 1) '-' in
    List.iter (fun (_, g) -> Bytes.set marks (cell_of g) '+') guides;
    Buffer.add_string buf ("      " ^ Bytes.to_string marks ^ "\n")
  end;
  for u = 0 to Schedule.machines sched - 1 do
    let row = Bytes.make width '.' in
    List.iter
      (fun (seg : Schedule.seg) ->
        let a = cell_of seg.start in
        let b = max (a + 1) (cell_of (Rat.add seg.start seg.dur)) in
        let ch =
          match seg.content with
          | Schedule.Setup i -> class_letter i
          | Schedule.Work j -> Char.uppercase_ascii (class_letter inst.Instance.job_class.(j))
        in
        for p = a to min (b - 1) (width - 1) do
          Bytes.set row p ch
        done)
      (Schedule.segments sched u);
    Buffer.add_string buf (Printf.sprintf "m%-3d |%s|\n" u (Bytes.to_string row))
  done;
  Buffer.add_string buf
    (Printf.sprintf "      horizon = %s (cells of %s time units)\n" (Rat.to_string horizon)
       (Rat.to_string (Rat.div_int horizon width)));
  Buffer.contents buf

let machine_summary inst sched =
  ignore inst;
  let buf = Buffer.create 256 in
  for u = 0 to Schedule.machines sched - 1 do
    let segs = Schedule.segments sched u in
    Buffer.add_string buf
      (Printf.sprintf "m%-3d end=%-10s busy=%-10s segs=%d\n" u
         (Rat.to_string (Schedule.machine_end sched u))
         (Rat.to_string (Schedule.machine_load sched u))
         (List.length segs))
  done;
  Buffer.contents buf

(* A fixed qualitative palette; classes cycle through it. *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948"; "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]

let svg ?(width = 720) ?(row_height = 26) ?(guides = []) inst sched =
  let m = Schedule.machines sched in
  let horizon =
    List.fold_left (fun acc (_, g) -> Rat.max acc g) (Schedule.makespan sched) guides
  in
  let horizon = if Rat.is_zero horizon then Rat.one else horizon in
  let margin_left = 40 and margin_top = 18 in
  let height = margin_top + (m * row_height) + 24 in
  let xpos time = margin_left + Rat.floor_int (Rat.mul_int (Rat.div time horizon) (width - margin_left - 10)) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"10\">\n"
       width height);
  Buffer.add_string buf
    "<defs><pattern id=\"hatch\" width=\"4\" height=\"4\" patternUnits=\"userSpaceOnUse\" patternTransform=\"rotate(45)\"><rect width=\"4\" height=\"4\" fill=\"white\" opacity=\"0.45\"/><line x1=\"0\" y1=\"0\" x2=\"0\" y2=\"4\" stroke=\"black\" stroke-width=\"1\" opacity=\"0.35\"/></pattern></defs>\n";
  for u = 0 to m - 1 do
    let y = margin_top + (u * row_height) in
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"2\" y=\"%d\">m%d</text>\n" (y + (row_height / 2) + 3) u);
    List.iter
      (fun (seg : Schedule.seg) ->
        let x0 = xpos seg.Schedule.start in
        let x1 = xpos (Rat.add seg.Schedule.start seg.Schedule.dur) in
        let w = max 1 (x1 - x0) in
        let cls, is_setup =
          match seg.Schedule.content with
          | Schedule.Setup i -> (i, true)
          | Schedule.Work j -> (inst.Instance.job_class.(j), false)
        in
        let colour = palette.(cls mod Array.length palette) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"#333\" stroke-width=\"0.5\"/>\n"
             x0 (y + 2) w (row_height - 6) colour);
        if is_setup then
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"url(#hatch)\"/>\n" x0 (y + 2) w
               (row_height - 6)))
      (Schedule.segments sched u)
  done;
  List.iter
    (fun (label, g) ->
      let x = xpos g in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888\" stroke-dasharray=\"4 3\"/>\n" x
           (margin_top - 4) x
           (margin_top + (m * row_height)));
      Buffer.add_string buf (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#555\">%s</text>\n" (x + 2) (margin_top - 6) label))
    guides;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
