open Bss_util

let volume_bound inst = Rat.of_ints inst.Instance.total inst.Instance.m

let setup_plus_tmax inst =
  let best = ref 0 in
  Array.iteri
    (fun i s ->
      let v = s + inst.Instance.class_tmax.(i) in
      if v > !best then best := v)
    inst.Instance.setups;
  !best

let t_min variant inst =
  let base = volume_bound inst in
  match variant with
  | Variant.Splittable -> Rat.max base (Rat.of_int inst.Instance.s_max)
  | Variant.Preemptive | Variant.Nonpreemptive -> Rat.max base (Rat.of_int (setup_plus_tmax inst))

let lower_bound = t_min
