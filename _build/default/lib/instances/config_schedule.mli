(** Machine configurations with multiplicities (Appendix C.1).

    The paper allows splittable schedules to be given as {e machine
    configurations with associated multiplicities} instead of one explicit
    timetable per machine: when a long job is wrapped across many identical
    gaps, all middle machines carry the same layout (a setup at 0 and one
    piece filling the gap), so a single configuration with multiplicity [k]
    describes them — this is what removes the [Ω(m)] term from the
    splittable running time.

    This module provides the compact form, conversion both ways, and
    direct (no-expansion) statistics. Per-machine feasibility of a
    configuration transfers to all its copies; for the {e splittable}
    variant that is full feasibility (jobs may run in parallel with
    themselves), which {!check_splittable} exploits — it validates one
    representative per configuration. *)

open Bss_util

type config = {
  segments : Schedule.seg list;  (** one machine's layout, sorted by start *)
  multiplicity : int;  (** [>= 1] *)
}

type t = {
  m : int;  (** total machines (copies may be fewer; the rest are idle) *)
  configs : config list;
}

(** [of_schedule sched] groups machines with identical layouts. Empty
    machines are dropped (represented by the [m] field). *)
val of_schedule : Schedule.t -> t

(** [expand t] materializes the explicit schedule on [t.m] machines.
    @raise Invalid_argument when [Σ multiplicities > m]. *)
val expand : t -> Schedule.t

(** [makespan t], [total_load t], [machines_used t], [size t] — computed
    directly on the compact form ([size] is the number of stored segments,
    the quantity the paper's argument bounds by [O(n + c)]). *)
val makespan : t -> Rat.t

val total_load : t -> Rat.t
val machines_used : t -> int
val size : t -> int

(** [check_splittable inst t] validates the compact schedule for the
    splittable variant by checking one representative machine per
    configuration plus global job volumes. Agrees with running
    {!Checker.check} on {!expand} (property-tested). *)
val check_splittable : Instance.t -> t -> (unit, Checker.violation list) result
