(** Class partitions and minimal machine numbers for a makespan guess [T].

    For a threshold [T] the paper classifies classes as {e expensive}
    ([s_i > T/2]) or {e cheap} ([s_i <= T/2]) and refines both sides
    (Sections 2, 3.3, 4.1, 4.4):

    - [I+exp]: expensive with [T <= s_i + P(C_i)]
    - [I0exp]: expensive with [3T/4 < s_i + P(C_i) < T]
    - [I-exp]: expensive with [s_i + P(C_i) <= 3T/4]
    - [I+chp]: cheap with [T/4 <= s_i <= T/2]
    - [I-chp]: cheap with [s_i < T/4]
    - [C*_i] (for [i ∈ I-chp]): big jobs [{ j ∈ C_i | s_i + t_j > T/2 }]
    - [I*chp]: classes of [I-chp] with [C*_i] non-empty.

    It also defines the machine-count functions [α_i = ⌈P(C_i)/(T-s_i)⌉],
    [α'_i = ⌊P(C_i)/(T-s_i)⌋], [β_i = ⌈2P(C_i)/T⌉], [β'_i = ⌊2P(C_i)/T⌋],
    the preemptive-class-jumping [γ_i], and the non-preemptive [m_i]. *)

open Bss_util

type t = {
  tee : Rat.t;
  exp : int list;  (** [Iexp], ascending class ids *)
  chp : int list;  (** [Ichp] *)
  exp_plus : int list;  (** [I+exp] *)
  exp_zero : int list;  (** [I0exp] *)
  exp_minus : int list;  (** [I-exp] *)
  chp_plus : int list;  (** [I+chp] *)
  chp_minus : int list;  (** [I-chp] *)
  chp_star : int list;  (** [I*chp] *)
  big_jobs : int array array;  (** [C*_i] per class; empty unless [i ∈ I-chp] *)
}

(** [is_expensive inst tee i] is [s_i > T/2]. *)
val is_expensive : Instance.t -> Rat.t -> int -> bool

(** [make inst tee] computes the full partition in [O(n)]. *)
val make : Instance.t -> Rat.t -> t

(** [alpha inst tee i] is [⌈P(C_i)/(T - s_i)⌉].
    @raise Invalid_argument when [T <= s_i]. *)
val alpha : Instance.t -> Rat.t -> int -> int

(** [alpha' inst tee i] is [⌊P(C_i)/(T - s_i)⌋].
    @raise Invalid_argument when [T <= s_i]. *)
val alpha' : Instance.t -> Rat.t -> int -> int

(** [beta inst tee i] is [⌈2 P(C_i)/T⌉]. *)
val beta : Instance.t -> Rat.t -> int -> int

(** [beta' inst tee i] is [⌊2 P(C_i)/T⌋]. *)
val beta' : Instance.t -> Rat.t -> int -> int

(** [gamma inst tee i] is the preemptive class-jumping machine number of
    Section 4.4: [max(β'_i, 1)] when [P(C_i) - β'_i·T/2 <= T - s_i],
    else [β_i]. *)
val gamma : Instance.t -> Rat.t -> int -> int

(** [j_plus inst tee] is the set of big jobs [J+ = { j | t_j > T/2 }]. *)
val j_plus : Instance.t -> Rat.t -> int array

(** [k_set inst tee] is
    [K = ⋃_{i ∈ Ichp} { j ∈ C_i ∩ J− | s_i + t_j > T/2 }] (Section 3.3). *)
val k_set : Instance.t -> Rat.t -> int array

(** [m_i inst tee i] is the non-preemptive minimum machine count:
    [α_i] for expensive [i]; [|C_i ∩ J+| + ⌈P(C_i ∩ K)/(T−s_i)⌉] for cheap
    [i].
    @raise Invalid_argument when [T <= s_i]. *)
val m_i : Instance.t -> Rat.t -> int -> int
