(** ASCII Gantt rendering of schedules.

    Used to regenerate the paper's schedule figures (Figs. 1–5, 7–13) as
    text. Each machine is one row; setups render as the lowercase letter of
    their class, work as the uppercase letter, idle time as ['.']. An
    optional list of guide times (e.g. [T/2], [T], [3T/2]) draws a scale
    line. *)

open Bss_util

(** [class_letter i] is the display letter of class [i] ([a-z] cycled). *)
val class_letter : int -> char

(** [gantt ?width ?guides inst sched] renders all machines to a string.
    [width] is the number of character cells for the busy horizon (default
    [72]); [guides] are labelled time marks shown in the header. *)
val gantt : ?width:int -> ?guides:(string * Rat.t) list -> Instance.t -> Schedule.t -> string

(** [machine_summary inst sched] is a one-line-per-machine summary:
    end time, busy load, segment count. *)
val machine_summary : Instance.t -> Schedule.t -> string

(** [svg ?width ?row_height ?guides inst sched] renders the schedule as a
    standalone SVG document: one row per machine, setups hatched in the
    class colour, work solid, optional vertical guide lines. Deterministic
    output (class colours from a fixed palette), suitable for golden
    tests. *)
val svg : ?width:int -> ?row_height:int -> ?guides:(string * Rat.t) list -> Instance.t -> Schedule.t -> string
