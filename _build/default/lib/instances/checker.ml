open Bss_util

type violation =
  | Bad_machine_index of { machine : int }
  | Overlap of { machine : int; at : Rat.t }
  | Bad_setup_duration of { machine : int; cls : int; got : Rat.t }
  | Missing_setup of { machine : int; job : int }
  | Wrong_volume of { job : int; got : Rat.t }
  | Self_parallel of { job : int; at : Rat.t }
  | Not_contiguous of { job : int }
  | Makespan_exceeded of { machine : int; got : Rat.t; bound : Rat.t }

let pp_violation fmt = function
  | Bad_machine_index { machine } -> Format.fprintf fmt "bad machine index %d" machine
  | Overlap { machine; at } -> Format.fprintf fmt "overlap on machine %d at %a" machine Rat.pp at
  | Bad_setup_duration { machine; cls; got } ->
    Format.fprintf fmt "setup of class %d on machine %d has duration %a" cls machine Rat.pp got
  | Missing_setup { machine; job } -> Format.fprintf fmt "job %d on machine %d lacks a preceding setup" job machine
  | Wrong_volume { job; got } -> Format.fprintf fmt "job %d processed for %a, not its full time" job Rat.pp got
  | Self_parallel { job; at } -> Format.fprintf fmt "job %d runs in parallel with itself at %a" job Rat.pp at
  | Not_contiguous { job } -> Format.fprintf fmt "job %d is not one contiguous block" job
  | Makespan_exceeded { machine; got; bound } ->
    Format.fprintf fmt "machine %d ends at %a > bound %a" machine Rat.pp got Rat.pp bound

let violation_to_string v = Format.asprintf "%a" pp_violation v

let check ?makespan_bound variant instance schedule =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  let m = Schedule.machines schedule in
  let n = Instance.n instance in
  (* The schedule must not place load on machines the instance does not
     have (an over-provisioned but empty tail is tolerated: wrapping
     sometimes allocates the full machine array up front). *)
  for u = instance.Instance.m to m - 1 do
    if Schedule.segments schedule u <> [] then report (Bad_machine_index { machine = u })
  done;
  (* Per-machine structure: ordering, setup durations, setup-before-class. *)
  for u = 0 to m - 1 do
    let segs = Schedule.segments schedule u in
    let rec scan prev_end prev_content = function
      | [] -> ()
      | (seg : Schedule.seg) :: rest ->
        if Rat.( < ) seg.start prev_end then report (Overlap { machine = u; at = seg.start });
        (match seg.content with
        | Schedule.Setup cls ->
          if not (Rat.equal seg.dur (Rat.of_int instance.Instance.setups.(cls))) then
            report (Bad_setup_duration { machine = u; cls; got = seg.dur })
        | Schedule.Work job ->
          let cls = instance.Instance.job_class.(job) in
          let ok =
            match prev_content with
            | Some (Schedule.Setup c) -> c = cls
            | Some (Schedule.Work j) -> instance.Instance.job_class.(j) = cls
            | None -> false
          in
          if not ok then report (Missing_setup { machine = u; job }));
        scan (Rat.add seg.start seg.dur) (Some seg.content) rest
    in
    scan Rat.zero None segs;
    (match makespan_bound with
    | Some bound ->
      let finish = Schedule.machine_end schedule u in
      if Rat.( > ) finish bound then report (Makespan_exceeded { machine = u; got = finish; bound })
    | None -> ())
  done;
  (* Volumes and variant-specific job constraints. *)
  let idx = Schedule.job_index ~n schedule in
  for j = 0 to n - 1 do
    let pieces = idx.(j) in
    let volume = List.fold_left (fun acc (_, _, d) -> Rat.add acc d) Rat.zero pieces in
    if not (Rat.equal volume (Rat.of_int instance.Instance.job_time.(j))) then
      report (Wrong_volume { job = j; got = volume });
    match variant with
    | Variant.Splittable -> ()
    | Variant.Preemptive ->
      let sorted = List.sort (fun (_, a, _) (_, b, _) -> Rat.compare a b) pieces in
      let rec no_parallel prev_end = function
        | [] -> ()
        | (_, start, dur) :: rest ->
          if Rat.( < ) start prev_end then report (Self_parallel { job = j; at = start });
          no_parallel (Rat.max prev_end (Rat.add start dur)) rest
      in
      no_parallel Rat.zero sorted
    | Variant.Nonpreemptive -> (
      match List.sort (fun (_, a, _) (_, b, _) -> Rat.compare a b) pieces with
      | [] -> () (* already reported as Wrong_volume *)
      | (u0, s0, d0) :: rest ->
        let contiguous, _ =
          List.fold_left
            (fun (ok, prev_end) (u, s, d) -> (ok && u = u0 && Rat.equal s prev_end, Rat.add s d))
            (true, Rat.add s0 d0)
            rest
        in
        if not contiguous then report (Not_contiguous { job = j }))
  done;
  match !violations with
  | [] -> Ok ()
  | vs -> Error (List.rev vs)

let check_exn ?makespan_bound variant instance schedule =
  match check ?makespan_bound variant instance schedule with
  | Ok () -> ()
  | Error vs ->
    let msg = String.concat "; " (List.map violation_to_string vs) in
    failwith (Printf.sprintf "infeasible %s schedule: %s" (Variant.to_string variant) msg)

let is_feasible ?makespan_bound variant instance schedule =
  match check ?makespan_bound variant instance schedule with
  | Ok () -> true
  | Error _ -> false
