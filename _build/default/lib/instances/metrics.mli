(** Schedule quality metrics used by experiments and tests. *)

open Bss_util

type t = {
  makespan : Rat.t;
  total_load : Rat.t;  (** busy time summed over machines *)
  total_setup_time : Rat.t;  (** time spent in setups *)
  setup_count : int;
  preemption_count : int;  (** work segments beyond one per job *)
  machines_used : int;  (** machines with at least one segment *)
  idle_within_makespan : Rat.t;  (** [m·makespan − total busy] *)
}

val compute : Instance.t -> Schedule.t -> t

(** [ratio_vs lb metrics] is [makespan / lb] as a float (for reports). *)
val ratio_vs : Rat.t -> t -> float

val to_string : t -> string
