(** The three problem flavours studied by the paper. *)

type t =
  | Nonpreemptive  (** [P|setup=s_i|Cmax]: jobs run contiguously on one machine. *)
  | Preemptive  (** [P|pmtn,setup=s_i|Cmax]: preemption allowed, no self-parallelism. *)
  | Splittable  (** [P|split,setup=s_i|Cmax]: arbitrary splitting and parallelism. *)

(** All variants, in the fixed order non-preemptive, preemptive,
    splittable. *)
val all : t list

val to_string : t -> string

(** Graham three-field notation as used in the paper. *)
val notation : t -> string

val pp : Format.formatter -> t -> unit
