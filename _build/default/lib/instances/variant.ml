(** The three problem flavours studied by the paper. *)

type t =
  | Nonpreemptive  (** [P|setup=s_i|Cmax]: jobs run contiguously on one machine. *)
  | Preemptive  (** [P|pmtn,setup=s_i|Cmax]: preemption allowed, no self-parallelism. *)
  | Splittable  (** [P|split,setup=s_i|Cmax]: arbitrary splitting and parallelism. *)

let all = [ Nonpreemptive; Preemptive; Splittable ]

let to_string = function
  | Nonpreemptive -> "non-preemptive"
  | Preemptive -> "preemptive"
  | Splittable -> "splittable"

(** Graham three-field notation as used in the paper. *)
let notation = function
  | Nonpreemptive -> "P|setup=s_i|Cmax"
  | Preemptive -> "P|pmtn,setup=s_i|Cmax"
  | Splittable -> "P|split,setup=s_i|Cmax"

let pp fmt v = Format.pp_print_string fmt (to_string v)
