(** Execution traces and interchange formats for schedules.

    A schedule is a geometric object; downstream consumers (simulators,
    dashboards, shop-floor controllers) want it as an ordered event stream
    or a flat table. This module derives both, plus per-job completion
    times — the quantity a dispatcher actually promises. *)

open Bss_util

type event_kind =
  | Setup_start of int  (** class *)
  | Setup_end of int
  | Job_start of int  (** job; emitted per piece *)
  | Job_end of int

type event = { time : Rat.t; machine : int; kind : event_kind }

(** [events inst sched] is the event stream sorted by time (ties: ends
    before starts, then machine). Each segment contributes a start and an
    end event. *)
val events : Instance.t -> Schedule.t -> event list

(** [completion_times inst sched] maps each job to the end of its last
    piece. Jobs with no piece map to zero (an infeasible schedule; the
    checker reports it separately). *)
val completion_times : Instance.t -> Schedule.t -> Rat.t array

(** [total_flow_time inst sched] is [Σ_j completion_j] — a secondary
    quality metric the makespan algorithms do not optimize but users ask
    about. *)
val total_flow_time : Instance.t -> Schedule.t -> Rat.t

(** [to_csv inst sched] renders one line per segment:
    [machine,start,duration,kind,id,class] with exact rational times.
    Stable order: machine, then start. *)
val to_csv : Instance.t -> Schedule.t -> string

(** [pp_events fmt events] — human-readable event log. *)
val pp_events : Format.formatter -> event list -> unit
