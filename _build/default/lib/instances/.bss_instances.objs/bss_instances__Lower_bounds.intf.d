lib/instances/lower_bounds.mli: Bss_util Instance Rat Variant
