lib/instances/trace.ml: Array Bss_util Buffer Format Instance List Printf Rat Schedule
