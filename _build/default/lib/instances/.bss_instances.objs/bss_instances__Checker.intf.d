lib/instances/checker.mli: Bss_util Format Instance Rat Schedule Variant
