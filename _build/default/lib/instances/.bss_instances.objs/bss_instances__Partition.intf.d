lib/instances/partition.mli: Bss_util Instance Rat
