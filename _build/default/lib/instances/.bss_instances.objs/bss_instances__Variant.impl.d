lib/instances/variant.ml: Format
