lib/instances/trace.mli: Bss_util Format Instance Rat Schedule
