lib/instances/variant.mli: Format
