lib/instances/render.mli: Bss_util Instance Rat Schedule
