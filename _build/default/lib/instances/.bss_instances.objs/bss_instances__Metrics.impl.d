lib/instances/metrics.ml: Bss_util Instance List Printf Rat Schedule
