lib/instances/instance.mli:
