lib/instances/metrics.mli: Bss_util Instance Rat Schedule
