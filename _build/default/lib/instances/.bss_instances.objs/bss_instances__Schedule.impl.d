lib/instances/schedule.ml: Array Bss_util List Rat
