lib/instances/lower_bounds.ml: Array Bss_util Instance Rat Variant
