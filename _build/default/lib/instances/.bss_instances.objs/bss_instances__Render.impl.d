lib/instances/render.ml: Array Bss_util Buffer Bytes Char Instance Intmath List Printf Rat Schedule String
