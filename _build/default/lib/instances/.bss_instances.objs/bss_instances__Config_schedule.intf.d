lib/instances/config_schedule.mli: Bss_util Checker Instance Rat Schedule
