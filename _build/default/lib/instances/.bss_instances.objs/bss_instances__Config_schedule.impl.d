lib/instances/config_schedule.ml: Array Bss_util Checker Hashtbl Instance List Rat Schedule
