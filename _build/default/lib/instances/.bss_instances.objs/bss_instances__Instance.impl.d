lib/instances/instance.ml: Array Bss_util Buffer List Printf String
