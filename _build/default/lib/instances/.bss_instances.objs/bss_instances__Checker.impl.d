lib/instances/checker.ml: Array Bss_util Format Instance List Printf Rat Schedule String Variant
