lib/instances/schedule.mli: Bss_util Rat
