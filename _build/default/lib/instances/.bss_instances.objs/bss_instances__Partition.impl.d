lib/instances/partition.ml: Array Bss_util Instance List Rat
