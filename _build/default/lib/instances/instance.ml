type t = {
  m : int;
  setups : int array;
  job_class : int array;
  job_time : int array;
  class_jobs : int array array;
  class_load : int array;
  class_tmax : int array;
  total : int;
  s_max : int;
  t_max : int;
}

let make ~m ~setups ~jobs =
  let c = Array.length setups in
  if m < 1 then invalid_arg "Instance.make: m < 1";
  if c < 1 then invalid_arg "Instance.make: no classes";
  Array.iter (fun s -> if s < 1 then invalid_arg "Instance.make: setup < 1") setups;
  let n = Array.length jobs in
  if n < 1 then invalid_arg "Instance.make: no jobs";
  let job_class = Array.make n 0 and job_time = Array.make n 0 in
  let count = Array.make c 0 in
  Array.iteri
    (fun j (cls, time) ->
      if cls < 0 || cls >= c then invalid_arg "Instance.make: class out of range";
      if time < 1 then invalid_arg "Instance.make: job time < 1";
      job_class.(j) <- cls;
      job_time.(j) <- time;
      count.(cls) <- count.(cls) + 1)
    jobs;
  Array.iteri (fun i k -> if k = 0 then invalid_arg (Printf.sprintf "Instance.make: class %d empty" i)) count;
  let class_jobs = Array.map (fun k -> Array.make k 0) count in
  let fill = Array.make c 0 in
  for j = 0 to n - 1 do
    let i = job_class.(j) in
    class_jobs.(i).(fill.(i)) <- j;
    fill.(i) <- fill.(i) + 1
  done;
  let class_load = Array.make c 0 and class_tmax = Array.make c 0 in
  for j = 0 to n - 1 do
    let i = job_class.(j) in
    class_load.(i) <- class_load.(i) + job_time.(j);
    if job_time.(j) > class_tmax.(i) then class_tmax.(i) <- job_time.(j)
  done;
  let total = Bss_util.Intmath.sum_array setups + Bss_util.Intmath.sum_array job_time in
  {
    m;
    setups = Array.copy setups;
    job_class;
    job_time;
    class_jobs;
    class_load;
    class_tmax;
    total;
    s_max = Bss_util.Intmath.max_array setups;
    t_max = Bss_util.Intmath.max_array job_time;
  }

let n t = Array.length t.job_time
let c t = Array.length t.setups
let jobs_of_class t i = t.class_jobs.(i)
let class_size t i = Array.length t.class_jobs.(i)
let delta t = max t.s_max t.t_max
let single_machine_bound t = t.total

let describe t =
  Printf.sprintf "instance: m=%d c=%d n=%d N=%d smax=%d tmax=%d" t.m (c t) (n t) t.total t.s_max t.t_max

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "m %d\n" t.m);
  Buffer.add_string buf "setups";
  Array.iter (fun s -> Buffer.add_string buf (" " ^ string_of_int s)) t.setups;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun j cls -> Buffer.add_string buf (Printf.sprintf "job %d %d\n" cls t.job_time.(j)))
    t.job_class;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let m = ref None and setups = ref None and jobs = ref [] in
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else begin
      match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
      | [ "m"; v ] -> m := Some (int_of_string v)
      | "setups" :: vs -> setups := Some (Array.of_list (List.map int_of_string vs))
      | [ "job"; cls; time ] -> jobs := (int_of_string cls, int_of_string time) :: !jobs
      | _ -> invalid_arg ("Instance.of_string: bad line: " ^ line)
    end
  in
  (try List.iter parse_line lines with Failure _ -> invalid_arg "Instance.of_string: bad number");
  match (!m, !setups) with
  | Some m, Some setups -> make ~m ~setups ~jobs:(Array.of_list (List.rev !jobs))
  | _ -> invalid_arg "Instance.of_string: missing m or setups"

let equal a b =
  a.m = b.m && a.setups = b.setups && a.job_class = b.job_class && a.job_time = b.job_time
