open Bss_util

type event_kind =
  | Setup_start of int
  | Setup_end of int
  | Job_start of int
  | Job_end of int

type event = { time : Rat.t; machine : int; kind : event_kind }

let is_end = function
  | Setup_end _ | Job_end _ -> true
  | Setup_start _ | Job_start _ -> false

let events _inst sched =
  let acc = ref [] in
  List.iter
    (fun (machine, (seg : Schedule.seg)) ->
      let finish = Rat.add seg.Schedule.start seg.Schedule.dur in
      match seg.Schedule.content with
      | Schedule.Setup i ->
        acc := { time = seg.Schedule.start; machine; kind = Setup_start i }
               :: { time = finish; machine; kind = Setup_end i }
               :: !acc
      | Schedule.Work j ->
        acc := { time = seg.Schedule.start; machine; kind = Job_start j }
               :: { time = finish; machine; kind = Job_end j }
               :: !acc)
    (Schedule.all_segments sched);
  List.sort
    (fun a b ->
      let c = Rat.compare a.time b.time in
      if c <> 0 then c
      else begin
        let c = compare (is_end b.kind) (is_end a.kind) (* ends first *) in
        if c <> 0 then c else compare a.machine b.machine
      end)
    !acc

let completion_times inst sched =
  let out = Array.make (Instance.n inst) Rat.zero in
  List.iter
    (fun (_, (seg : Schedule.seg)) ->
      match seg.Schedule.content with
      | Schedule.Work j -> out.(j) <- Rat.max out.(j) (Rat.add seg.Schedule.start seg.Schedule.dur)
      | Schedule.Setup _ -> ())
    (Schedule.all_segments sched);
  out

let total_flow_time inst sched =
  Array.fold_left Rat.add Rat.zero (completion_times inst sched)

let to_csv inst sched =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "machine,start,duration,kind,id,class\n";
  for u = 0 to Schedule.machines sched - 1 do
    List.iter
      (fun (seg : Schedule.seg) ->
        let kind, id, cls =
          match seg.Schedule.content with
          | Schedule.Setup i -> ("setup", i, i)
          | Schedule.Work j -> ("work", j, inst.Instance.job_class.(j))
        in
        Buffer.add_string buf
          (Printf.sprintf "%d,%s,%s,%s,%d,%d\n" u
             (Rat.to_string seg.Schedule.start)
             (Rat.to_string seg.Schedule.dur)
             kind id cls))
      (Schedule.segments sched u)
  done;
  Buffer.contents buf

let pp_kind fmt = function
  | Setup_start i -> Format.fprintf fmt "setup(class %d) starts" i
  | Setup_end i -> Format.fprintf fmt "setup(class %d) ends" i
  | Job_start j -> Format.fprintf fmt "job %d starts" j
  | Job_end j -> Format.fprintf fmt "job %d ends" j

let pp_events fmt evs =
  List.iter
    (fun e -> Format.fprintf fmt "t=%-10s m%-3d %a@." (Rat.to_string e.time) e.machine pp_kind e.kind)
    evs
