open Bss_util
open Bss_instances

exception Template_exhausted

let wrap inst sched q (omega : Template.t) =
  let ngaps = Template.length omega in
  let gap r = (omega :> Template.gap array).(r) in
  (* Current fill front: gap index [r], time [t] within that gap. *)
  let r = ref 0 and t = ref Rat.zero in
  if ngaps = 0 then begin
    if q <> [] then raise Template_exhausted
  end
  else t := (gap 0).Template.lo;
  (* Advance to the next gap, placing a setup of class [cls] directly below
     it ([Split]'s "place setup s_i at time t − s_i"). *)
  let advance_with_setup cls =
    if !r + 1 >= ngaps then raise Template_exhausted;
    incr r;
    let g = gap !r in
    let s = Rat.of_int inst.Instance.setups.(cls) in
    Schedule.add_setup sched ~machine:g.Template.machine ~cls ~start:(Rat.sub g.Template.lo s) ~dur:s;
    t := g.Template.lo
  in
  let place_item = function
    | Sequence.Setup cls ->
      let g = gap !r in
      let s = Rat.of_int inst.Instance.setups.(cls) in
      if Rat.( > ) (Rat.add !t s) g.Template.hi then
        (* The setup crosses the border: move it below the next gap. *)
        advance_with_setup cls
      else begin
        Schedule.add_setup sched ~machine:g.Template.machine ~cls ~start:!t ~dur:s;
        t := Rat.add !t s
      end
    | Sequence.Piece { job; time } ->
      let cls = inst.Instance.job_class.(job) in
      let remaining = ref time in
      let continue = ref true in
      while !continue do
        let g = gap !r in
        let room = Rat.sub g.Template.hi !t in
        if Rat.( > ) !remaining room then begin
          (* Split at the border; the head piece fills the gap out. *)
          Schedule.add_work sched ~machine:g.Template.machine ~job ~start:!t ~dur:room;
          remaining := Rat.sub !remaining room;
          advance_with_setup cls
        end
        else begin
          Schedule.add_work sched ~machine:g.Template.machine ~job ~start:!t ~dur:!remaining;
          t := Rat.add !t !remaining;
          continue := false
        end
      done
  in
  List.iter place_item q;
  (!r, !t)
