lib/wrap/sequence.mli: Bss_instances Bss_util Instance Rat
