lib/wrap/wrap.mli: Bss_instances Bss_util Instance Rat Schedule Sequence Template
