lib/wrap/wrap.ml: Array Bss_instances Bss_util Instance List Rat Schedule Sequence Template
