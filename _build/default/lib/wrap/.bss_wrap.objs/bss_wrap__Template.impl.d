lib/wrap/template.ml: Array Bss_util List Rat
