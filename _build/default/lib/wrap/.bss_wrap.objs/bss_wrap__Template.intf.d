lib/wrap/template.mli: Bss_util Rat
