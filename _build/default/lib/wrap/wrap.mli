(** Batch Wrapping (Appendix A.1): schedule a wrap sequence into a wrap
    template, McNaughton-style.

    Items are placed left-to-right into the gaps. When an item hits a gap
    border [b_r]:
    - a {e setup} is moved below the next gap (placed at [a_{r+1} − s_i]);
    - a {e job piece} is split at the border; the remainder continues at the
      start of the next gap, preceded by a fresh setup of its class placed
      below that gap ([Split], Algorithm 5).

    Feasibility of the setups placed below gaps requires free time of at
    least the sequence's largest setup below every gap but the first
    (Lemma 6); callers arrange their templates accordingly and the exact
    checker verifies the result in tests. *)

open Bss_util
open Bss_instances

exception Template_exhausted
(** Raised when the sequence does not fit, i.e. the caller violated
    [L(Q) <= S(ω)] (Lemma 6). *)

(** [wrap inst sched q ω] places [q] into [ω], adding segments to [sched].
    Returns [(r, t)] — the gap index and time where the next item would
    start (the "fill front" after the last placed item).
    @raise Template_exhausted when [q] does not fit in [ω]. *)
val wrap : Instance.t -> Schedule.t -> Sequence.t -> Template.t -> int * Rat.t
