open Bss_util
open Bss_instances

type item =
  | Setup of int
  | Piece of { job : int; time : Rat.t }

type t = item list

let load inst q =
  List.fold_left
    (fun acc item ->
      match item with
      | Setup i -> Rat.add acc (Rat.of_int inst.Instance.setups.(i))
      | Piece { time; _ } -> Rat.add acc time)
    Rat.zero q

let of_classes inst classes =
  List.concat_map
    (fun i ->
      Setup i
      :: (Array.to_list (Instance.jobs_of_class inst i)
         |> List.map (fun j -> Piece { job = j; time = Rat.of_int inst.Instance.job_time.(j) })))
    classes

let of_batches _inst batches =
  List.concat_map
    (fun (i, pieces) ->
      match pieces with
      | [] -> []
      | _ -> Setup i :: List.map (fun (j, time) -> Piece { job = j; time }) pieces)
    batches

let max_setup inst q =
  List.fold_left
    (fun acc item ->
      match item with
      | Setup i -> max acc inst.Instance.setups.(i)
      | Piece _ -> acc)
    0 q

let length = List.length
