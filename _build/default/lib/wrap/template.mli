(** Wrap templates (Definition 2).

    A wrap template is a list of gaps [(u_r, a_r, b_r)] — one free time
    window per machine, on strictly increasing machines — into which a wrap
    sequence is scheduled McNaughton-style. [S(ω) = Σ (b_r − a_r)] is the
    provided period of time. *)

open Bss_util

type gap = { machine : int; lo : Rat.t; hi : Rat.t }

type t = private gap array

(** [make gaps] validates Definition 2: machines strictly increasing,
    [0 <= lo < hi] for every gap.
    @raise Invalid_argument on violation. *)
val make : gap list -> t

(** [of_array gaps] is {!make} on an array. *)
val of_array : gap array -> t

(** [length t] is [|ω|]. *)
val length : t -> int

(** [span t] is [S(ω)], the total provided time. *)
val span : t -> Rat.t

(** [uniform_run ~first_machine ~count ~lo ~hi] builds [count] identical
    gaps [(u0+r, lo, hi)]. *)
val uniform_run : first_machine:int -> count:int -> lo:Rat.t -> hi:Rat.t -> gap list

(** [concat runs] flattens and validates gap runs into a template. *)
val concat : gap list list -> t
