(** Wrap sequences (Definition 2).

    A wrap sequence is a flat list of batches [[s_{i_1}, C'_1, s_{i_2},
    C'_2, …]]: each class contributes one setup item followed by its jobs
    (or job pieces — pieces carry a rational remaining time). [L(Q)] is the
    total load. *)

open Bss_util
open Bss_instances

type item =
  | Setup of int  (** class id *)
  | Piece of { job : int; time : Rat.t }  (** a piece of job [job] *)

type t = item list

(** [load inst q] is [L(Q)]: setup times plus piece times. *)
val load : Instance.t -> t -> Rat.t

(** [of_classes inst classes] is the simple sequence [[s_i, C_i]] for the
    given classes in order, with whole jobs as pieces. *)
val of_classes : Instance.t -> int list -> t

(** [of_batches inst batches] builds [[s_i, pieces_i]] from explicit
    [(class, pieces)] pairs; classes with an empty piece list are skipped
    (no setup emitted). *)
val of_batches : Instance.t -> (int * (int * Rat.t) list) list -> t

(** [max_setup inst q] is the largest setup time occurring in [q]
    ([s_max^(Q)] in Lemma 6); [0] for a setup-free sequence. *)
val max_setup : Instance.t -> t -> int

(** [length q] is [|Q|] (items). *)
val length : t -> int
