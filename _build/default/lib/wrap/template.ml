open Bss_util

type gap = { machine : int; lo : Rat.t; hi : Rat.t }

type t = gap array

let validate gaps =
  Array.iteri
    (fun r g ->
      if Rat.sign g.lo < 0 then invalid_arg "Template: gap starts before time 0";
      if Rat.( >= ) g.lo g.hi then invalid_arg "Template: empty or inverted gap";
      if r > 0 && gaps.(r - 1).machine >= g.machine then
        invalid_arg "Template: machines must strictly increase")
    gaps;
  gaps

let of_array gaps = validate (Array.copy gaps)
let make gaps = of_array (Array.of_list gaps)
let length t = Array.length t

let span t = Array.fold_left (fun acc g -> Rat.add acc (Rat.sub g.hi g.lo)) Rat.zero t

let uniform_run ~first_machine ~count ~lo ~hi =
  List.init count (fun r -> { machine = first_machine + r; lo; hi })

let concat runs = make (List.concat runs)
