(** Continuous (fractional) knapsack, exact rational arithmetic.

    The preemptive 3/2-dual approximation (Section 4.2, case 3.a) decides
    which cheap classes to schedule entirely off the large machines by
    solving a continuous knapsack: profits are setup times, weights are
    non-obligatory loads, the capacity is the remaining free time. An
    optimal continuous solution has at most one fractional item — the
    paper's split item [e].

    Two solvers with identical results: {!solve_sorted} sorts by
    profit/weight density ([O(k log k)]), {!solve_linear} recurses on
    median densities (expected [O(k)], the bound the paper cites). A 0/1 DP
    {!integral_oracle} exists only as a test oracle. *)

open Bss_util

type item = { id : int; profit : Rat.t; weight : Rat.t }
(** [weight >= 0], [profit >= 0]. *)

type solution = {
  take : Rat.t array;  (** fraction of each input item taken, in [\[0,1\]] *)
  value : Rat.t;  (** total fractional profit *)
  used : Rat.t;  (** total fractional weight, [<= capacity] *)
  split : int option;  (** index (into the input array) of the one fractional item *)
}

(** [solve_sorted items ~capacity] — greedy by density after sorting.
    Zero-weight items are always taken fully. A non-positive capacity takes
    only zero-weight items.
    @raise Invalid_argument on negative weights or profits. *)
val solve_sorted : item array -> capacity:Rat.t -> solution

(** [solve_linear items ~capacity] — expected linear time via median-density
    partitioning; same optimal value as {!solve_sorted}. *)
val solve_linear : item array -> capacity:Rat.t -> solution

(** [integral_oracle ~profits ~weights ~capacity] solves 0/1 knapsack by DP
    over integer capacity (test oracle; small inputs only). Returns the
    optimal total profit. *)
val integral_oracle : profits:int array -> weights:int array -> capacity:int -> int
