lib/knapsack/knapsack.ml: Array Bss_obs Bss_util List Rat Select
