lib/knapsack/knapsack.ml: Array Bss_util List Rat Select
