lib/knapsack/knapsack.mli: Bss_util Rat
