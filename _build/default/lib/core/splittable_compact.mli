(** The splittable 3/2-dual emitting machine configurations
    (Appendix C.1) — output size [O(n + c)] independent of [m].

    {!Splittable_dual} materializes one timetable per machine, which is
    the right interface for mid-sized fleets but costs [Ω(m)] when a few
    jobs are split across millions of machines. The paper's remedy: when a
    long job wraps across a run of {e identical} gaps, all middle machines
    carry the same layout — a setup at 0 and one piece filling the gap —
    and can be emitted as a single configuration with a multiplicity
    computed in constant time.

    This module rebuilds the Theorem 7 construction in that compact form.
    It accepts and rejects exactly like {!Splittable_dual.run} (same
    bounds), and on acceptance returns a {!Bss_instances.Config_schedule.t}
    whose expansion is splittable-feasible with makespan at most [3T/2]
    (property-tested against the explicit construction). *)

open Bss_util
open Bss_instances

type outcome =
  | Accepted of Config_schedule.t
  | Rejected of Dual.rejection

(** [run inst tee] is the compact dual. *)
val run : Instance.t -> Rat.t -> outcome

(** [solve inst] is class jumping (Theorem 3) on top of the compact
    construction: the accepted [T*] equals {!Splittable_cj.solve}'s, and
    the schedule is returned compactly. *)
val solve : Instance.t -> Config_schedule.t * Rat.t
