open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event

type algorithm =
  | Approx2
  | Approx3_2_eps of Rat.t
  | Approx3_2

type result = { schedule : Schedule.t; guarantee : Rat.t; certificate : Rat.t; dual_calls : int }

let three_half = Rat.of_ints 3 2

(* The dual constructions intentionally spread load up to (3/2)T*, so on
   easy instances the plain 2-approximation can produce a shorter
   schedule. Returning the better of the two keeps every certificate valid
   (both schedules are feasible and the bound [makespan <= certificate]
   only improves); EXPERIMENTS.md reports the raw constructions
   separately. *)
let prefer_shorter primary fallback =
  let mp = Schedule.makespan primary and mf = Schedule.makespan fallback in
  let won = Rat.( <= ) mf mp in
  if Probe.enabled () then begin
    Probe.count (if won then "solver.won_two_approx" else "solver.won_construction");
    let name = if won then "two-approx" else "construction" in
    let winner = if won then mf else mp in
    Probe.event
      (Event.Candidate_won { name; makespan = winner; margin = Rat.abs (Rat.sub mp mf) })
  end;
  if won then fallback else primary

(* compacted best-of: close idle gaps in both candidates, keep the
   shorter *)
let polish variant inst primary =
  Probe.span "polish" (fun () ->
      let primary = Compaction.compact variant inst primary in
      let fallback = Compaction.compact variant inst (Two_approx.solve variant inst) in
      prefer_shorter primary fallback)

let dual_for variant =
  match variant with
  | Variant.Splittable -> Splittable_dual.run
  | Variant.Preemptive -> fun inst tee -> Pmtn_dual.run inst tee
  | Variant.Nonpreemptive -> Nonp_dual.run

let solve ~algorithm variant inst =
  Probe.span "solve" (fun () ->
      match algorithm with
      | Approx2 ->
        let schedule =
          Probe.span "two_approx" (fun () ->
              Compaction.compact variant inst (Two_approx.solve variant inst))
        in
        let t_min = Lower_bounds.t_min variant inst in
        { schedule; guarantee = Rat.two; certificate = Rat.mul_int t_min 2; dual_calls = 0 }
      | Approx3_2_eps epsilon ->
        let t_min = Lower_bounds.t_min variant inst in
        let r =
          Probe.span "search" (fun () -> Dual_search.search ~dual:(dual_for variant) ~epsilon ~t_min inst)
        in
        {
          schedule = polish variant inst r.Dual_search.schedule;
          guarantee = Rat.add three_half epsilon;
          certificate = Rat.mul three_half r.Dual_search.accepted;
          dual_calls = r.Dual_search.dual_calls;
        }
      | Approx3_2 -> (
        match variant with
        | Variant.Splittable ->
          let r = Probe.span "search" (fun () -> Splittable_cj.solve inst) in
          {
            schedule = polish variant inst r.Splittable_cj.schedule;
            guarantee = three_half;
            certificate = Rat.mul three_half r.Splittable_cj.accepted;
            dual_calls = r.Splittable_cj.bound_tests;
          }
        | Variant.Preemptive ->
          let r = Probe.span "search" (fun () -> Pmtn_cj.solve inst) in
          {
            schedule = polish variant inst r.Pmtn_cj.schedule;
            guarantee = three_half;
            certificate = Rat.mul three_half r.Pmtn_cj.accepted;
            dual_calls = r.Pmtn_cj.bound_tests;
          }
        | Variant.Nonpreemptive ->
          let r = Probe.span "search" (fun () -> Nonp_search.solve inst) in
          {
            schedule = polish variant inst r.Nonp_search.schedule;
            guarantee = three_half;
            certificate = Rat.mul three_half r.Nonp_search.accepted;
            dual_calls = r.Nonp_search.dual_calls;
          }))

let algorithm_name ~algorithm variant =
  match (algorithm, variant) with
  | Approx2, _ -> "2-approx (Thm 1)"
  | Approx3_2_eps eps, _ -> Printf.sprintf "3/2+%s (Thm 2)" (Rat.to_string eps)
  | Approx3_2, Variant.Splittable -> "3/2 class-jumping (Thm 3)"
  | Approx3_2, Variant.Preemptive -> "3/2 class-jumping (Thm 6)"
  | Approx3_2, Variant.Nonpreemptive -> "3/2 binary-search (Thm 8)"
