(** Theorem 2: binary search over makespan guesses with a 3/2-dual
    algorithm, yielding a (3/2 + ε)-approximation in [O(n log 1/ε)].

    [OPT ∈ [T_min, 2 T_min]] (Theorem 1), and every dual in this library
    accepts any [T >= OPT]. The search keeps an interval [(lo, hi]] with
    [lo] rejected (hence [lo < OPT]) and [hi] accepted, halving until
    [hi − lo <= ε'·T_min] with [ε' = 2ε/3]; then the accepted schedule has
    makespan [<= (3/2)·hi <= (3/2)(1 + ε')·OPT = (3/2 + ε)·OPT]. *)

open Bss_util
open Bss_instances

type result = {
  schedule : Schedule.t;
  accepted : Rat.t;  (** the accepted guess; makespan [<= (3/2)·accepted] *)
  dual_calls : int;  (** number of dual invocations (for ablations) *)
}

(** [search ~dual ~epsilon ~t_min inst] runs the search. [epsilon] must be
    positive; [t_min] is the variant's {!Bss_instances.Lower_bounds.t_min}.
    @raise Invalid_argument on non-positive [epsilon].
    @raise Failure if the dual rejects [2·t_min] (a dual-contract
    violation — cannot happen for the duals in this library). *)
val search : dual:Dual.algorithm -> epsilon:Rat.t -> t_min:Rat.t -> Instance.t -> result
