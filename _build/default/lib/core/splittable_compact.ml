open Bss_util
open Bss_instances

type outcome =
  | Accepted of Config_schedule.t
  | Rejected of Dual.rejection

let seg start dur content = { Schedule.start; dur; content }

(* A configuration being assembled: segments in increasing start order
   (reversed list) plus the current fill front. *)
type building = { rev_segments : Schedule.seg list; front : Rat.t }

let to_config b ~multiplicity = { Config_schedule.segments = List.rev b.rev_segments; multiplicity }

let construct inst tee =
  let m = inst.Instance.m in
  let half = Rat.div_int tee 2 in
  let three_half = Rat.mul_int half 3 in
  let p = Partition.make inst tee in
  let configs = ref [] in
  let used = ref 0 in
  let emit ?(multiplicity = 1) b =
    if b.rev_segments <> [] then begin
      configs := to_config b ~multiplicity :: !configs;
      used := !used + multiplicity
    end
  in
  (* ---- step 1: expensive classes, gaps of height T/2 above a setup ---- *)
  (* every machine of class i is [setup 0..s][work s..s+T/2]; the middle
     machines a single long job fills whole are emitted with a
     multiplicity computed in O(1) *)
  let leftovers = ref [] (* last machines with front < T, open for step 2 *) in
  List.iter
    (fun i ->
      let s = Rat.of_int inst.Instance.setups.(i) in
      let top = Rat.add s half in
      let fresh () = { rev_segments = [ seg Rat.zero s (Schedule.Setup i) ]; front = s } in
      let cur = ref (fresh ()) in
      let dirty = ref true (* does !cur hold anything beyond its setup? *) in
      Array.iter
        (fun j ->
          let remaining = ref (Rat.of_int inst.Instance.job_time.(j)) in
          while Rat.sign !remaining > 0 do
            let room = Rat.sub top !cur.front in
            if Rat.( < ) !remaining room then begin
              cur :=
                {
                  rev_segments = seg !cur.front !remaining (Schedule.Work j) :: !cur.rev_segments;
                  front = Rat.add !cur.front !remaining;
                };
              dirty := true;
              remaining := Rat.zero
            end
            else begin
              (* fill the gap out and close this machine *)
              emit { !cur with rev_segments = seg !cur.front room (Schedule.Work j) :: !cur.rev_segments };
              remaining := Rat.sub !remaining room;
              (* full middle machines, all identical: [setup][j fills gap] *)
              let fulls = Rat.floor_int (Rat.div !remaining half) in
              if fulls >= 1 then begin
                emit ~multiplicity:fulls
                  { rev_segments = [ seg s half (Schedule.Work j); seg Rat.zero s (Schedule.Setup i) ]; front = top };
                remaining := Rat.sub !remaining (Rat.mul_int half fulls)
              end;
              cur := fresh ();
              dirty := false
            end
          done)
        (Instance.jobs_of_class inst i);
      (* the class's last machine: open for cheap load when short of T *)
      if !dirty then begin
        if Rat.( < ) !cur.front tee then leftovers := !cur :: !leftovers else emit !cur
      end)
    p.Partition.exp;
  let leftovers = List.rev !leftovers in
  (* ---- step 2: cheap classes into leftover tops and empty machines ---- *)
  (* leftover gaps: [front + T/2, 3T/2] on that very machine; empty-machine
     gaps: [T/2, 3T/2], with the below-gap setup convention of Wrap *)
  let cheap_items =
    List.concat_map
      (fun i ->
        `S i
        :: (Array.to_list (Instance.jobs_of_class inst i) |> List.map (fun j -> `J (j, inst.Instance.job_time.(j)))))
      p.Partition.chp
  in
  if cheap_items <> [] then begin
    let pending = ref leftovers in
    let empties_left = ref (m - !used - List.length leftovers) in
    (* current gap state; gaps are opened lazily so a machine boundary
       always places the setup the continuing class needs *)
    let cur = ref None (* (building, gap_hi) *) in
    let exception Out_of_machines in
    let open_next_gap ~below_setup =
      (* close nothing; grab the next gap, placing [below_setup] under it *)
      match !pending with
      | b :: rest ->
        pending := rest;
        let lo = Rat.add b.front half in
        let b =
          match below_setup with
          | None -> b
          | Some cls ->
            let s = Rat.of_int inst.Instance.setups.(cls) in
            { b with rev_segments = seg (Rat.sub lo s) s (Schedule.Setup cls) :: b.rev_segments }
        in
        cur := Some ({ b with front = lo }, three_half)
      | [] ->
        if !empties_left <= 0 then raise Out_of_machines;
        decr empties_left;
        let b =
          match below_setup with
          | None -> { rev_segments = []; front = half }
          | Some cls ->
            let s = Rat.of_int inst.Instance.setups.(cls) in
            { rev_segments = [ seg (Rat.sub half s) s (Schedule.Setup cls) ]; front = half }
        in
        cur := Some (b, three_half)
    in
    let close_current () =
      match !cur with
      | None -> ()
      | Some (b, _) ->
        emit b;
        cur := None
    in
    let current ~below_setup =
      (match !cur with
      | None -> open_next_gap ~below_setup
      | Some _ -> ());
      Option.get !cur
    in
    (try
      List.iter
      (fun item ->
        match item with
        | `S i ->
          let s = Rat.of_int inst.Instance.setups.(i) in
          let b, hi = current ~below_setup:None in
          if Rat.( > ) (Rat.add b.front s) hi then begin
            (* the setup crosses the border: move it below the next gap *)
            close_current ();
            open_next_gap ~below_setup:(Some i)
          end
          else
            cur := Some ({ rev_segments = seg b.front s (Schedule.Setup i) :: b.rev_segments; front = Rat.add b.front s }, hi)
        | `J (j, t) ->
          let cls = inst.Instance.job_class.(j) in
          let remaining = ref (Rat.of_int t) in
          while Rat.sign !remaining > 0 do
            let b, hi = current ~below_setup:(Some cls) in
            let room = Rat.sub hi b.front in
            if Rat.( <= ) !remaining room then begin
              cur :=
                Some
                  ( { rev_segments = seg b.front !remaining (Schedule.Work j) :: b.rev_segments;
                      front = Rat.add b.front !remaining },
                    hi );
              remaining := Rat.zero
            end
            else begin
              emit { b with rev_segments = seg b.front room (Schedule.Work j) :: b.rev_segments };
              cur := None;
              remaining := Rat.sub !remaining room;
              (* full empty machines this job covers alone: emit with a
                 multiplicity (only available once the explicit leftover
                 gaps are exhausted) *)
              if !pending = [] then begin
                let fulls = Rat.floor_int (Rat.div !remaining tee) in
                let fulls = min fulls !empties_left in
                if fulls >= 1 then begin
                  let s = Rat.of_int inst.Instance.setups.(cls) in
                  emit ~multiplicity:fulls
                    {
                      rev_segments = [ seg half tee (Schedule.Work j); seg (Rat.sub half s) s (Schedule.Setup cls) ];
                      front = three_half;
                    };
                  empties_left := !empties_left - fulls;
                  remaining := Rat.sub !remaining (Rat.mul_int tee fulls)
                end
              end;
              (* the loop reopens a gap (with this class's setup) when
                 work remains; otherwise the next item opens its own *)
            end
          done)
      cheap_items
    with Out_of_machines ->
      failwith "Splittable_compact: out of machines (guess was not truly accepted)");
    close_current ();
    (* any untouched leftover machines still carry their expensive load *)
    List.iter (fun b -> emit b) !pending
  end
  else List.iter (fun b -> emit b) leftovers;
  { Config_schedule.m; configs = List.rev !configs }

let run inst tee =
  let m = inst.Instance.m in
  if Rat.( < ) tee (Rat.of_int inst.Instance.s_max) then
    Rejected (Dual.Below_trivial_bound { bound = Rat.of_int inst.Instance.s_max })
  else begin
    let l_split, m_exp = Splittable_dual.bounds inst tee in
    if Rat.( < ) (Rat.mul_int tee m) l_split then
      Rejected (Dual.Load_exceeds { required = l_split; available = Rat.mul_int tee m })
    else if m < m_exp then Rejected (Dual.Machines_exceed { required = m_exp; available = m })
    else Accepted (construct inst tee)
  end

let solve inst =
  let t_star, _ = Splittable_cj.find_t_star inst in
  match run inst t_star with
  | Accepted compact -> (compact, t_star)
  | Rejected r -> failwith (Format.asprintf "Splittable_compact: T* rejected: %a" Dual.pp_rejection r)
