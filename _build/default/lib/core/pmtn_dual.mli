(** Theorem 5: the 3/2-dual approximation for general preemptive
    scheduling (Algorithm 3).

    For a guess [T]:

    + every class of [I0exp] ([3T/4 < s_i + P(C_i) < T]) gets its own
      {e large machine}, its load placed from [T/2] upward — sound by
      Lemma 10;
    + the free time [F] on the other [m − l] machines must host
      [J(I+exp ∪ I-exp ∪ I+chp)] entirely; big jobs of [I-chp] classes
      ([s_i + t_j > T/2], the set [C*_i]) cannot live on large machines
      alone (Lemma 4), so each contributes an obligatory piece
      [t^(2)_j = s_i + t_j − T/2] outside;
    + when [F] cannot host all of [I*chp], a {e continuous knapsack}
      (profits [s_i], weights [P(C_i) − L*_i], capacity [F − L*]) decides
      which classes live entirely outside; the fractional split item [e]
      is divided per Eq. (6);
    + the selected load forms a {e nice} instance placed by Algorithm 2 on
      the non-large machines (all cheap pieces at or above [T/2]); the
      leftovers [K] go below the large machines' loads: big leftovers
      ([t > T/4]) one per machine at the bottom, small ones wrapped into
      [(0, T/2)] and [(T/4, T/2)] gaps. Sibling pieces stay on opposite
      sides of the [T/2] line, so no job ever runs parallel to itself.

    Rejection (certifying [T < OPT]) happens on the trivial bound
    [max_i (s_i + t^(i)_max)], on [mT < L_pmtn], on [m < m'], or when the
    obligatory outside load exceeds [F]. *)

open Bss_util
open Bss_instances

(** [run inst tee] is the dual algorithm. [mode] selects how many
    machines an [I+exp] class occupies: [Alpha_prime] (default, Algorithm
    3) or [Gamma] (Section 4.4, used by class jumping). Both are valid
    3/2-duals. *)
val run : ?mode:Pmtn_nice.mode -> Instance.t -> Rat.t -> Dual.outcome

(** [bounds inst tee] is [(L_pmtn, m')] (knapsack included), exposed for
    the class-jumping search and tests. Requires
    [tee >= max_i (s_i + t^(i)_max)]. *)
val bounds : ?mode:Pmtn_nice.mode -> Instance.t -> Rat.t -> Rat.t * int

(** [test inst tee] runs every rejection check of {!run} without building
    the schedule ([Ok ()] means {!run} would accept). Used by the searches,
    which probe many guesses and construct only once. *)
val test : ?mode:Pmtn_nice.mode -> Instance.t -> Rat.t -> (unit, Dual.rejection) result

(** [analysis] quantities exposed for the class-jumping search. *)
type analysis

val analyze : ?mode:Pmtn_nice.mode -> Instance.t -> Rat.t -> analysis

(** [search_quantities inst tee a] is
    [(L_low, m', large_count, case_a, y, star_count)] where [L_low] is
    [L_pmtn] without its knapsack (unselected-setup) term — a
    piecewise-constant lower bound on [L_pmtn] — [y = F − L*] is the
    outside capacity, and [star_count = Σ_{I*chp} |C*_i|]. *)
val search_quantities : Instance.t -> Rat.t -> analysis -> Rat.t * int * int * bool * Rat.t * int
