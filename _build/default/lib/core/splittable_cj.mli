(** Theorem 3: 3/2-approximation for splittable scheduling via Class
    Jumping (Algorithm 1), in [O(n + c log(c + m))].

    The dual acceptance test of Theorem 7 is monotone in [T] (both
    [L_split] and [m_exp] only shrink as [T] grows while [mT] grows), and
    its acceptance set is left-closed, so
    [T* = min { T : accepted(T) } <= OPT] exists. Class Jumping locates
    [T*] exactly with [O(log(c+m))] bound evaluations of [O(c)] each:

    + binary search over the partition breakpoints [2·s̃_k] (plus [0] and
      [2N]) for the region whose interior has a fixed expensive set;
    + binary search over the jumps [2 P_f / κ] of a fastest-jumping class
      [f] ([P_f] maximal) — [κ] never exceeds [m + 1], since [m_exp > m]
      rejects;
    + between two consecutive jumps of [f], every other class jumps at most
      once (Lemma 3): collect and binary search those [O(c)] jumps;
    + inside the final jump-free interval the bounds are constant, so
      [T* = max(s_max, L_split/m)] (or the interval's right end when the
      machine test binds).

    The returned schedule is the dual's schedule at [T*]: feasible with
    makespan [<= (3/2)·T* <= (3/2)·OPT]. *)

open Bss_util
open Bss_instances

type result = {
  schedule : Schedule.t;
  accepted : Rat.t;  (** [T*]; the schedule's makespan is [<= (3/2)·T*] *)
  bound_tests : int;  (** number of O(c) acceptance tests performed *)
}

val solve : Instance.t -> result

(** [find_t_star inst] is the search half only: the minimal accepted guess
    and the number of bound tests, without building a schedule. Used by
    the compact (Appendix C.1) construction. *)
val find_t_star : Instance.t -> Rat.t * int
