(** Theorem 4: the 3/2-dual approximation for {e nice} preemptive
    instances (Algorithm 2), generalized to batches of rational job pieces
    so that the general algorithm (Algorithm 3) can schedule its derived
    instance [I^(new)] through the same code.

    A batch is one class with a set of job pieces. For a makespan [T] the
    batches split into [I+exp] ([T <= s_i + P_i]), [I0exp]
    ([3T/4 < s_i + P_i < T]), [I-exp] ([s_i + P_i <= 3T/4]) and cheap
    ([s_i <= T/2]); the instance is nice when [I0exp] is empty.

    Construction:
    + every [I+exp] batch fills [α'_i = ⌊P_i/(T−s_i)⌋] machines — the
      first [α'_i − 1] exactly to [T], the last takes the remainder and
      ends below [3T/2] (each job obeys [s_i + t_j <= T], so wrapped pieces
      never self-overlap);
    + [I-exp] batches are paired two per machine (load [<= 3T/2]); an odd
      leftover sits alone on machine [µ];
    + cheap batches wrap into [(µ, T, 3T/2)] (odd case) and
      [(u, T/2, 3T/2)] gaps on the remaining machines — all cheap job
      pieces run at or above [T/2], which the general algorithm exploits to
      keep them clear of their sibling pieces below [T/2] on the large
      machines. *)

open Bss_util
open Bss_instances

type batch = { cls : int; pieces : (int * Rat.t) list (* (job, time), each > 0 *) }

(** How many machines an [I+exp] batch occupies, and the step-1 layout.

    [Alpha_prime] is Algorithm 2: [α'_i = ⌊P_i/(T−s_i)⌋] machines filled to
    [T] (the last takes the remainder, ending under [3T/2]).

    [Gamma] is the Section 4.4 modification used by preemptive class
    jumping: [γ_i] machines, each a gap of height [T/2] above the setup
    (so the class's jumps [2(s_i+P_i)/(γ+2)] depend less on [s_i]); the
    last machine absorbs up to [T − s_i] beyond its gap. *)
type mode =
  | Alpha_prime
  | Gamma

(** [batch_of_class inst i] is class [i] with all of its jobs whole. *)
val batch_of_class : Instance.t -> int -> batch

(** [load inst b] is [s_i + P_i]. *)
val load : Instance.t -> batch -> Rat.t

(** [l_nice inst tee batches] and [m_nice inst tee batches] are the
    rejection quantities of Theorem 4. *)
val l_nice : ?mode:mode -> Instance.t -> Rat.t -> batch list -> Rat.t

val m_nice : ?mode:mode -> Instance.t -> Rat.t -> batch list -> int

(** [machines_for inst tee ~mode b] is [α'_i] or [γ_i] for a [Plus_exp]
    batch under the given mode. *)
val machines_for : Instance.t -> Rat.t -> mode:mode -> batch -> int

(** [place inst sched ~tee ~first_machine ~machines batches] schedules the
    batches onto machines [first_machine .. first_machine+machines-1] of
    [sched] with makespan at most [3T/2] per machine. The caller must have
    verified the Theorem 4 acceptance conditions; [Error] reports a
    construction overflow (a contract violation).
    @raise Invalid_argument when a batch is in [I0exp] (not nice). *)
val place :
  ?mode:mode -> Instance.t -> Schedule.t -> tee:Rat.t -> first_machine:int -> machines:int ->
  batch list -> (unit, string) result

(** [run_instance inst tee] is the standalone Theorem 4 dual for a whole
    instance that is nice for [tee].
    @raise Invalid_argument when the instance is not nice for [tee]. *)
val run_instance : ?mode:mode -> Instance.t -> Rat.t -> Dual.outcome
