(** Unified entry point: pick a problem variant and an algorithm, get a
    checked schedule with its quality certificate.

    This is the API the examples and the experiment harness use; each
    algorithm corresponds to one theorem of the paper. *)

open Bss_util
open Bss_instances

type algorithm =
  | Approx2  (** Theorem 1: 2-approximation, [O(n)] *)
  | Approx3_2_eps of Rat.t  (** Theorem 2: (3/2+ε)-approximation, [O(n log 1/ε)] *)
  | Approx3_2
      (** the exact 3/2-approximations: Theorem 3 (splittable, class
          jumping), Theorem 6 (preemptive, class jumping), Theorem 8
          (non-preemptive, integer binary search) *)

type result = {
  schedule : Schedule.t;
  guarantee : Rat.t;
      (** proven upper bound on [makespan / OPT] for this run: [2] for
          {!Approx2}, [3/2 + ε] for {!Approx3_2_eps}, [3/2] for
          {!Approx3_2} *)
  certificate : Rat.t;
      (** a value [X <= guarantee·OPT] with [makespan <= X]: [2·T_min] for
          {!Approx2}, [(3/2)·T_accepted] otherwise *)
  dual_calls : int;  (** dual/bound evaluations performed (0 for Approx2) *)
}

(** [solve ~algorithm variant inst] runs the requested algorithm. The
    returned schedule is feasible for [variant] (exercised by the test
    suite via the exact checker on every path). *)
val solve : algorithm:algorithm -> Variant.t -> Instance.t -> result

(** [algorithm_name ~algorithm variant] is a short display name, e.g.
    ["3/2 class-jumping (split)"] . *)
val algorithm_name : algorithm:algorithm -> Variant.t -> string
