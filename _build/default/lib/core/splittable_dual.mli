(** Theorem 7: the 3/2-dual approximation for splittable scheduling
    (Appendix C).

    For a guess [T], let [β_i = ⌈2 P(C_i)/T⌉],
    [L_split = P(J) + Σ_{chp} s_i + Σ_{exp} β_i s_i] and
    [m_exp = Σ_{exp} β_i]. If [mT < L_split] or [m < m_exp] then [T < OPT];
    otherwise a feasible schedule of makespan at most [3T/2] is built in
    linear time:

    + each expensive class [i] is wrapped into [β_i] gaps of height [T/2]
      sitting on top of its own setup;
    + the cheap classes are wrapped into the leftovers of the last machines
      of step 1 (above [L(ū_i) + T/2]) and into gaps [(T/2, 3T/2)] on the
      unused machines, with room for one cheap setup below every gap.

    Additionally, [T < s_max] rejects immediately (OPT > s_max); [T = s_max]
    is allowed — every gap top [s_i + T/2] then still fits under [3T/2] —
    which keeps the acceptance set left-closed, a property the
    class-jumping search relies on. *)

open Bss_util
open Bss_instances

(** [run inst tee] is the dual algorithm. *)
val run : Instance.t -> Rat.t -> Dual.outcome

(** [bounds inst tee] is [(L_split, m_exp)] — the rejection quantities,
    exposed for the class-jumping search.
    Requires [tee > s_max]. *)
val bounds : Instance.t -> Rat.t -> Rat.t * int
