open Bss_util
open Bss_instances
open Bss_wrap

let bounds inst tee =
  let c = Instance.c inst in
  (* P(J) from the precomputed class loads: keeps each bound test O(c),
     which is what gives class jumping its O(n + c log(c+m)) total. *)
  let l_split = ref (Rat.of_int (Intmath.sum_array inst.Instance.class_load)) in
  let m_exp = ref 0 in
  for i = 0 to c - 1 do
    let s = inst.Instance.setups.(i) in
    if Partition.is_expensive inst tee i then begin
      let b = Partition.beta inst tee i in
      m_exp := !m_exp + b;
      l_split := Rat.add !l_split (Rat.of_int (b * s))
    end
    else l_split := Rat.add !l_split (Rat.of_int s)
  done;
  (!l_split, !m_exp)

let run inst tee =
  let m = inst.Instance.m in
  (* OPT > s_max strictly, so any T < s_max is certainly below OPT. T =
     s_max itself is allowed: every gap top s_i + T/2 then stays within
     3T/2, keeping the acceptance set left-closed (the class-jumping search
     returns its minimum). *)
  if Rat.( < ) tee (Rat.of_int inst.Instance.s_max) then
    Dual.Rejected (Dual.Below_trivial_bound { bound = Rat.of_int inst.Instance.s_max })
  else begin
    let l_split, m_exp = bounds inst tee in
    let m_t = Rat.mul_int tee m in
    if Rat.( < ) m_t l_split then Dual.Rejected (Dual.Load_exceeds { required = l_split; available = m_t })
    else if m < m_exp then Dual.Rejected (Dual.Machines_exceed { required = m_exp; available = m })
    else begin
      let sched = Schedule.create m in
      let half = Rat.div_int tee 2 in
      let three_half = Rat.mul_int half 3 in
      let p = Partition.make inst tee in
      (* Step 1: wrap each expensive class into β_i gaps of height T/2 on
         top of its setup; first machine's gap starts at 0 (the setup is
         part of the wrapped sequence), later gaps start at s_i with the
         setup re-placed below by Wrap. *)
      let cursor = ref 0 in
      let last_machines = ref [] in
      List.iter
        (fun i ->
          let s = Rat.of_int inst.Instance.setups.(i) in
          let b = Partition.beta inst tee i in
          let top = Rat.add s half in
          let first = { Template.machine = !cursor; lo = Rat.zero; hi = top } in
          let rest = Template.uniform_run ~first_machine:(!cursor + 1) ~count:(b - 1) ~lo:s ~hi:top in
          let omega = Template.concat [ [ first ]; rest ] in
          let _ = Wrap.wrap inst sched (Sequence.of_classes inst [ i ]) omega in
          let last = !cursor + b - 1 in
          last_machines := (i, last) :: !last_machines;
          cursor := !cursor + b)
        p.Partition.exp;
      (* Step 2: cheap classes go into the leftovers of the last machines
         with load < T (gap [L(ū_i) + T/2, 3T/2]) and into the unused
         machines (gap [T/2, 3T/2]); T/2 below each gap leaves room for one
         cheap setup. *)
      let leftover_gaps =
        List.rev !last_machines
        |> List.filter_map (fun (_, u) ->
               let load = Schedule.machine_load sched u in
               if Rat.( < ) load tee then
                 Some { Template.machine = u; lo = Rat.add load half; hi = three_half }
               else None)
      in
      let empty_gaps =
        Template.uniform_run ~first_machine:!cursor ~count:(m - !cursor) ~lo:half ~hi:three_half
      in
      let q = Sequence.of_classes inst p.Partition.chp in
      if q <> [] then begin
        let omega = Template.concat [ leftover_gaps; empty_gaps ] in
        let _ = Wrap.wrap inst sched q omega in
        ()
      end;
      Dual.Accepted sched
    end
  end
