(** Shared vocabulary of dual approximation algorithms (Hochbaum–Shmoys).

    A ρ-dual approximation receives the input and a makespan guess [T] and
    either computes a feasible schedule of makespan at most [ρT], or rejects
    [T], certifying [T < OPT]. The paper's 3/2-duals (Theorems 4, 5, 7, 9)
    reject through one of the load/machine-count inequalities below. *)

open Bss_util
open Bss_instances

(** Why a guess [T] was rejected; each constructor certifies [T < OPT]. *)
type rejection =
  | Below_trivial_bound of { bound : Rat.t }
      (** [T] is under a per-variant trivial lower bound ([s_max] for
          splittable, [max_i (s_i + t^(i)_max)] otherwise). *)
  | Load_exceeds of { required : Rat.t; available : Rat.t }
      (** the paper's [mT < L_x] test fired: total obligatory load beats
          [m·T] *)
  | Machines_exceed of { required : int; available : int }
      (** the paper's [m < m_x] test fired: obligatory machine count beats
          [m] *)

type outcome =
  | Accepted of Schedule.t  (** feasible, makespan [<= ρT] *)
  | Rejected of rejection  (** certified [T < OPT] *)

(** A dual algorithm: instance and guess to outcome. *)
type algorithm = Instance.t -> Rat.t -> outcome

val pp_rejection : Format.formatter -> rejection -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** [accepted o] extracts the schedule of an [Accepted] outcome. *)
val accepted : outcome -> Schedule.t option

(** [is_accepted o]. *)
val is_accepted : outcome -> bool
