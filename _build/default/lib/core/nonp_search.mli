(** Theorem 8: exact 3/2-approximation for non-preemptive scheduling in
    [O(n log(n + Δ))].

    [OPT] is integral (all inputs are integers and nothing is preempted),
    and [OPT ∈ [⌈T_min⌉, 2 T_min]], so an integer binary search with the
    3/2-dual of Theorem 9 finds the smallest accepted integer
    [T* <= OPT]; the dual's schedule at [T*] has makespan
    [<= (3/2)·T* <= (3/2)·OPT]. *)

open Bss_util
open Bss_instances

type result = {
  schedule : Schedule.t;
  accepted : Rat.t;  (** integral [T*]; makespan [<= (3/2)·T*] *)
  dual_calls : int;
}

val solve : Instance.t -> result
