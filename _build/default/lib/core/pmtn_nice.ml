open Bss_util
open Bss_instances
open Bss_wrap

type batch = { cls : int; pieces : (int * Rat.t) list }

type mode =
  | Alpha_prime
  | Gamma

let batch_of_class inst i =
  {
    cls = i;
    pieces =
      Array.to_list (Instance.jobs_of_class inst i)
      |> List.map (fun j -> (j, Rat.of_int inst.Instance.job_time.(j)));
  }

let job_load b = List.fold_left (fun acc (_, t) -> Rat.add acc t) Rat.zero b.pieces

let load inst b = Rat.add (Rat.of_int inst.Instance.setups.(b.cls)) (job_load b)

type shape =
  | Plus_exp  (** T <= s + P *)
  | Zero_exp  (** 3T/4 < s + P < T *)
  | Minus_exp  (** expensive, s + P <= 3T/4 *)
  | Cheap

let shape_of inst tee b =
  let s = inst.Instance.setups.(b.cls) in
  if Rat.( <= ) (Rat.of_int (2 * s)) tee then Cheap
  else begin
    let total = load inst b in
    if Rat.( <= ) tee total then Plus_exp
    else if Rat.( > ) (Rat.mul_int total 4) (Rat.mul_int tee 3) then Zero_exp
    else Minus_exp
  end

(* α'_i = ⌊P_i / (T − s_i)⌋ for a Plus_exp batch; at least 1. *)
let alpha' inst tee b =
  let s = Rat.of_int inst.Instance.setups.(b.cls) in
  let slack = Rat.sub tee s in
  assert (Rat.sign slack > 0);
  max 1 (Rat.floor_int (Rat.div (job_load b) slack))

(* γ_i of Section 4.4 on a batch: max(β'_i, 1) while the overhang
   P − β' T/2 fits into T − s_i, else β_i. *)
let gamma inst tee b =
  let s = Rat.of_int inst.Instance.setups.(b.cls) in
  let p = job_load b in
  let beta' = Rat.floor_int (Rat.div (Rat.mul_int p 2) tee) in
  let overhang_ok =
    Rat.( <= ) (Rat.sub p (Rat.mul_int (Rat.div_int tee 2) beta')) (Rat.sub tee s)
  in
  if overhang_ok then max beta' 1 else Rat.ceil_int (Rat.div (Rat.mul_int p 2) tee)

let machines_for inst tee ~mode b =
  match mode with
  | Alpha_prime -> alpha' inst tee b
  | Gamma -> gamma inst tee b

let l_nice ?(mode = Alpha_prime) inst tee batches =
  List.fold_left
    (fun acc b ->
      let s = inst.Instance.setups.(b.cls) in
      let setups =
        match shape_of inst tee b with
        | Plus_exp -> Rat.of_int (machines_for inst tee ~mode b * s)
        | Zero_exp -> invalid_arg "Pmtn_nice: instance is not nice"
        | Minus_exp | Cheap -> Rat.of_int s
      in
      Rat.add acc (Rat.add setups (job_load b)))
    Rat.zero batches

let m_nice ?(mode = Alpha_prime) inst tee batches =
  let minus = ref 0 and plus = ref 0 in
  List.iter
    (fun b ->
      match shape_of inst tee b with
      | Plus_exp -> plus := !plus + machines_for inst tee ~mode b
      | Zero_exp -> invalid_arg "Pmtn_nice: instance is not nice"
      | Minus_exp -> incr minus
      | Cheap -> ())
    batches;
  !plus + ((!minus + 1) / 2)

let place ?(mode = Alpha_prime) inst sched ~tee ~first_machine ~machines batches =
  let half = Rat.div_int tee 2 in
  let three_half = Rat.mul_int half 3 in
  let plus = ref [] and minus = ref [] and cheap = ref [] in
  List.iter
    (fun b ->
      match shape_of inst tee b with
      | Plus_exp -> plus := b :: !plus
      | Zero_exp -> invalid_arg "Pmtn_nice: instance is not nice"
      | Minus_exp -> minus := b :: !minus
      | Cheap -> cheap := b :: !cheap)
    batches;
  let plus = List.rev !plus and minus = List.rev !minus and cheap = List.rev !cheap in
  let cursor = ref first_machine in
  let limit = first_machine + machines in
  let exception Overflow of string in
  try
    let fresh () =
      if !cursor >= limit then raise (Overflow "out of machines");
      let u = !cursor in
      incr cursor;
      u
    in
    (* Step 1: each I+exp batch fills α' machines; the first α'−1 exactly
       to T, the last takes the remainder (< 3T/2 since the remainder is
       below T − s_i plus a full T − s_i row and s_i > T/2). *)
    List.iter
      (fun b ->
        let s = Rat.of_int inst.Instance.setups.(b.cls) in
        let count = machines_for inst tee ~mode b in
        (* In Alpha_prime mode the first count−1 machines fill exactly to
           T; in Gamma mode each machine is a T/2 gap above its setup. The
           last machine absorbs the remainder and stays under 3T/2 in both
           modes. *)
        let inner_cap =
          match mode with
          | Alpha_prime -> tee
          | Gamma -> Rat.add s half
        in
        let u = ref (fresh ()) in
        let used = ref 1 in
        Schedule.add_setup sched ~machine:!u ~cls:b.cls ~start:Rat.zero ~dur:s;
        let pos = ref s in
        let advance () =
          u := fresh ();
          incr used;
          Schedule.add_setup sched ~machine:!u ~cls:b.cls ~start:Rat.zero ~dur:s;
          pos := s
        in
        List.iter
          (fun (j, time) ->
            let remaining = ref time in
            while Rat.sign !remaining > 0 do
              (* only the last of the machines may exceed the inner cap *)
              let cap = if !used < count then inner_cap else three_half in
              let room = Rat.sub cap !pos in
              if Rat.sign room <= 0 then advance ()
              else begin
                let chunk = if !used < count then Rat.min !remaining room else !remaining in
                if Rat.( > ) chunk room then raise (Overflow "I+exp last machine overflow");
                Schedule.add_work sched ~machine:!u ~job:j ~start:!pos ~dur:chunk;
                pos := Rat.add !pos chunk;
                remaining := Rat.sub !remaining chunk
              end
            done)
          b.pieces;
        if !used > count then raise (Overflow "I+exp used too many machines"))
      plus;
    (* Step 2: pair the I-exp batches, the odd one alone on µ. *)
    let place_batch u pos b =
      let s = Rat.of_int inst.Instance.setups.(b.cls) in
      Schedule.add_setup sched ~machine:u ~cls:b.cls ~start:pos ~dur:s;
      let pos = ref (Rat.add pos s) in
      List.iter
        (fun (j, time) ->
          Schedule.add_work sched ~machine:u ~job:j ~start:!pos ~dur:time;
          pos := Rat.add !pos time)
        b.pieces;
      !pos
    in
    let rec pair = function
      | [] -> None
      | [ b ] ->
        let u = fresh () in
        let _ = place_batch u Rat.zero b in
        Some u
      | b1 :: b2 :: rest ->
        let u = fresh () in
        let pos = place_batch u Rat.zero b1 in
        let _ = place_batch u pos b2 in
        pair rest
    in
    let mu_odd = pair minus in
    (* Step 3: wrap the cheap batches above T/2 (above T on the odd µ). *)
    let q = Sequence.of_batches inst (List.map (fun b -> (b.cls, b.pieces)) cheap) in
    if q <> [] then begin
      let first_gap =
        match mu_odd with
        | Some mu -> [ { Template.machine = mu; lo = tee; hi = three_half } ]
        | None -> []
      in
      let rest_gaps =
        Template.uniform_run ~first_machine:!cursor ~count:(limit - !cursor) ~lo:half ~hi:three_half
      in
      let omega = Template.concat [ first_gap; rest_gaps ] in
      if Rat.( < ) (Template.span omega) (Sequence.load inst q) then
        raise (Overflow "cheap wrap template too small");
      let _ = Wrap.wrap inst sched q omega in
      ()
    end;
    Ok ()
  with
  | Overflow msg -> Error ("Pmtn_nice.place: " ^ msg)
  | Wrap.Template_exhausted -> Error "Pmtn_nice.place: cheap wrap exhausted"

let run_instance ?(mode = Alpha_prime) inst tee =
  let trivial = Rat.of_int (Lower_bounds.setup_plus_tmax inst) in
  if Rat.( < ) tee trivial then Dual.Rejected (Dual.Below_trivial_bound { bound = trivial })
  else begin
    let batches = List.init (Instance.c inst) (batch_of_class inst) in
    let m = inst.Instance.m in
    let l = l_nice ~mode inst tee batches in
    let m_t = Rat.mul_int tee m in
    if Rat.( < ) m_t l then Dual.Rejected (Dual.Load_exceeds { required = l; available = m_t })
    else begin
      let needed = m_nice ~mode inst tee batches in
      if m < needed then Dual.Rejected (Dual.Machines_exceed { required = needed; available = m })
      else begin
        let sched = Schedule.create m in
        match place ~mode inst sched ~tee ~first_machine:0 ~machines:m batches with
        | Ok () -> Dual.Accepted sched
        | Error msg -> failwith msg
      end
    end
  end
