(** Theorem 1: linear-time 2-approximations for all three variants
    (Appendix A.2, Lemmas 8 and 9).

    - Splittable: wrap the single sequence [[s_i, C_i]] into one gap
      [(r, s_max, s_max + N/m)] per machine; makespan
      [<= s_max + N/m <= 2 T_min].
    - Non-preemptive and preemptive: next-fit with threshold [T_min],
      then move every border-crossing item to the start of the next
      machine (with a fresh setup when the item is a job) and drop setups
      left trailing; makespan [<= 2 T_min].

    Every returned schedule is feasible for its variant and has makespan at
    most [2·T_min(variant) <= 2·OPT]. *)

open Bss_instances

val splittable : Instance.t -> Schedule.t
val nonpreemptive : Instance.t -> Schedule.t

(** The non-preemptive schedule is also preemptive-feasible and the bounds
    coincide (Lemma 9). *)
val preemptive : Instance.t -> Schedule.t

(** [solve variant inst] dispatches on the variant. *)
val solve : Variant.t -> Instance.t -> Schedule.t
