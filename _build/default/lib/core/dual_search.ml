open Bss_util
open Bss_instances

type result = { schedule : Schedule.t; accepted : Rat.t; dual_calls : int }

let search ~dual ~epsilon ~t_min inst =
  if Rat.sign epsilon <= 0 then invalid_arg "Dual_search.search: epsilon must be positive";
  let calls = ref 0 in
  let test tee =
    incr calls;
    dual inst tee
  in
  (* ε' = 2ε/3 makes the final ratio exactly 3/2 + ε. *)
  let tolerance = Rat.mul t_min (Rat.mul_int (Rat.div_int epsilon 3) 2) in
  match test t_min with
  | Dual.Accepted s -> { schedule = s; accepted = t_min; dual_calls = !calls }
  | Dual.Rejected _ -> begin
    let hi = Rat.mul_int t_min 2 in
    match test hi with
    | Dual.Rejected r ->
      failwith (Format.asprintf "dual rejected 2*T_min >= OPT: %a" Dual.pp_rejection r)
    | Dual.Accepted s ->
      let rec go lo hi best_sched =
        if Rat.( <= ) (Rat.sub hi lo) tolerance then { schedule = best_sched; accepted = hi; dual_calls = !calls }
        else begin
          let mid = Rat.div_int (Rat.add lo hi) 2 in
          match test mid with
          | Dual.Accepted s -> go lo mid s
          | Dual.Rejected _ -> go mid hi best_sched
        end
      in
      go t_min hi s
  end
