lib/core/pmtn_nice.ml: Array Bss_instances Bss_util Bss_wrap Dual Instance List Lower_bounds Rat Schedule Sequence Template Wrap
