lib/core/dual_search.ml: Bss_instances Bss_util Dual Format Rat Schedule
