lib/core/dual_search.ml: Bss_instances Bss_obs Bss_util Dual Format Rat Schedule
