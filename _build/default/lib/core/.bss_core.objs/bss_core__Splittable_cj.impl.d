lib/core/splittable_cj.ml: Array Bss_instances Bss_obs Bss_util Dual Format Instance List Partition Rat Schedule Splittable_dual
