lib/core/dual_search.mli: Bss_instances Bss_util Dual Instance Rat Schedule
