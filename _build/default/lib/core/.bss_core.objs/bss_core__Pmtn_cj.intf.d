lib/core/pmtn_cj.mli: Bss_instances Bss_util Instance Rat Schedule
