lib/core/splittable_cj.mli: Bss_instances Bss_util Instance Rat Schedule
