lib/core/nonp_search.mli: Bss_instances Bss_util Instance Rat Schedule
