lib/core/splittable_dual.ml: Array Bss_instances Bss_util Bss_wrap Dual Instance Intmath List Partition Rat Schedule Sequence Template Wrap
