lib/core/splittable_compact.mli: Bss_instances Bss_util Config_schedule Dual Instance Rat
