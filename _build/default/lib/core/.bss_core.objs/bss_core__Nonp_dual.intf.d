lib/core/nonp_dual.mli: Bss_instances Bss_util Dual Instance Rat
