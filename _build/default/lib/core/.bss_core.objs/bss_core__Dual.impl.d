lib/core/dual.ml: Bss_instances Bss_util Format Instance Rat Schedule
