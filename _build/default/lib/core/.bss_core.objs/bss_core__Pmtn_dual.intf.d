lib/core/pmtn_dual.mli: Bss_instances Bss_util Dual Instance Pmtn_nice Rat
