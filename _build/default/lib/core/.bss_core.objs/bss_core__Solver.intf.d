lib/core/solver.mli: Bss_instances Bss_util Instance Rat Schedule Variant
