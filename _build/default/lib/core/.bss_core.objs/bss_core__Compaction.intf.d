lib/core/compaction.mli: Bss_instances Instance Schedule Variant
