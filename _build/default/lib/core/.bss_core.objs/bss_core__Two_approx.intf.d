lib/core/two_approx.mli: Bss_instances Instance Schedule Variant
