lib/core/pmtn_nice.mli: Bss_instances Bss_util Dual Instance Rat Schedule
