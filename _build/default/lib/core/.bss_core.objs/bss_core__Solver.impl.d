lib/core/solver.ml: Bss_instances Bss_obs Bss_util Compaction Dual_search Lower_bounds Nonp_dual Nonp_search Pmtn_cj Pmtn_dual Printf Rat Schedule Splittable_cj Splittable_dual Two_approx Variant
