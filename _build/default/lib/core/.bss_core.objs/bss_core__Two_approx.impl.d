lib/core/two_approx.ml: Array Bss_instances Bss_util Bss_wrap Instance List Lower_bounds Rat Schedule Sequence Template Variant Wrap
