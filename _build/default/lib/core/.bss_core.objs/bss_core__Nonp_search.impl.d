lib/core/nonp_search.ml: Bss_instances Bss_obs Bss_util Dual Format Lower_bounds Nonp_dual Rat Schedule Variant
