lib/core/splittable_compact.ml: Array Bss_instances Bss_util Config_schedule Dual Format Instance List Option Partition Rat Schedule Splittable_cj Splittable_dual
