lib/core/pmtn_dual.ml: Array Bss_instances Bss_knapsack Bss_obs Bss_util Bss_wrap Dual Instance Intmath Knapsack List Lower_bounds Partition Pmtn_nice Rat Schedule Sequence Template Wrap
