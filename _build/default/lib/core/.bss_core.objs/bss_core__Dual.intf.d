lib/core/dual.mli: Bss_instances Bss_util Format Instance Rat Schedule
