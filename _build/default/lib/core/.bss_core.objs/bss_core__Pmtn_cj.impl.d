lib/core/pmtn_cj.ml: Array Bss_instances Bss_obs Bss_util Dual Format Instance List Lower_bounds Partition Pmtn_dual Pmtn_nice Rat Schedule
