lib/core/nonp_dual.ml: Array Bss_instances Bss_util Dual Hashtbl Instance Intmath List Lower_bounds Partition Rat Schedule
