lib/core/compaction.ml: Array Bss_instances Bss_obs Bss_util Instance List Rat Schedule Variant
