lib/core/compaction.ml: Array Bss_instances Bss_util Instance List Rat Schedule Variant
