(** Schedule compaction: close idle gaps without breaking feasibility.

    The paper's dual constructions place load deliberately high (cheap
    wraps between [T/2] and [3T/2], large-machine content parked at
    [T/2]), so their schedules contain idle time a practitioner would
    reclaim. Compaction replays every segment in original start order and
    starts it as early as its machine — and, in the preemptive variant,
    its job's earlier pieces — allow:

    [new_start = max(machine_front, job_front)].

    By induction no segment starts later than before, so the makespan
    never increases, relative orders are preserved (setup-before-class
    stays intact), and pieces of one job stay sequential. The result is
    feasible whenever the input is (property-tested via the exact
    checker). *)

open Bss_instances

(** [compact variant inst sched] is the repacked schedule. *)
val compact : Variant.t -> Instance.t -> Schedule.t -> Schedule.t
