(** Theorem 9: the 3/2-dual approximation for non-preemptive scheduling
    (Algorithm 6, Appendix D).

    For a guess [T], the jobs
    [L = ⋃_i { j ∈ C_i | s_i + t_j > T/2 }] pairwise exclude each other
    across classes (Note 5), giving per-class machine minima [m_i] and the
    rejection quantities [L_nonp = P(J) + Σ m_i s_i + Σ_{x_i>0} s_i] and
    [m' = Σ m_i] where [x_i = P(C_i) − m_i (T − s_i)].

    Otherwise the schedule is built in four steps:
    + schedule [L] (expensive classes whole; cheap big jobs [J+] one per
      machine; cheap [K]-jobs wrapped) on [m_i] machines per class,
      preemptively for now;
    + fill the remaining jobs of each cheap class onto its own machines
      (no new setups), splitting at the border [T];
    + greedily stack the leftover classes' chunks ([s_i] then jobs) across
      machines with load [< T], never splitting, moving on whenever an item
      crosses [T];
    + repair: replace each split job's first piece by the whole job
      (removing its sibling pieces), and move every step-3 border-crossing
      item below the item placed next on the following machine, adding the
      missing setups.

    The result is non-preemptively feasible with makespan at most [3T/2].
    [T < max_i (s_i + t^(i)_max)] rejects immediately (Note 2). *)

open Bss_util
open Bss_instances

(** [run inst tee] is the dual algorithm. *)
val run : Instance.t -> Rat.t -> Dual.outcome

(** [bounds inst tee] is [(L_nonp, m')], for searches and tests.
    Requires [tee >= max_i (s_i + t^(i)_max)] (so that [T − s_i > 0]). *)
val bounds : Instance.t -> Rat.t -> Rat.t * int
