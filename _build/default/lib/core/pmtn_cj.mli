(** Theorem 6: 3/2-approximation for preemptive scheduling via Class
    Jumping (Algorithm 4), in [O(n log n)].

    The search runs against the γ-mode dual of Theorem 5 (Section 4.4),
    whose [I+exp] jumps have the form [2(s_i + P_i)/(κ + 2)] — the shape
    Lemma 5 needs so that between two consecutive jumps of a fastest class
    every other class jumps at most once. The search narrows a right
    interval through four stages:

    + binary search over all partition breakpoints ([2s_i], [s_i + P_i],
      [4(s_i+P_i)/3], [4s_i], and the big-job thresholds [2(s_i + t_j)]);
    + binary search over the γ-jumps [2(s_f+P_f)/(κ+2)] of the class
      maximizing [s_f + P_f] (Lemma 5);
    + binary search over the β-jumps [2P_g/κ] of the class maximizing
      [P_g] (Lemma 3) — these drive [β'_i/β_i] and hence [γ_i];
    + collect the [O(c)] single jumps of both families inside the final
      interval and binary search them.

    Inside the final jump-free interval the piecewise-constant part of the
    acceptance threshold is [max(trivial, L_low/m, Y-root)]; the remaining
    variation (the knapsack's unselected-setup term, which the paper keeps
    constant per right interval) is resolved by a bounded ascent of exact
    dual tests — every returned guess is verified accepted, and the
    property suite checks minimality against grid scans. *)

open Bss_util
open Bss_instances

type result = {
  schedule : Schedule.t;
  accepted : Rat.t;  (** [T*]; the schedule's makespan is [<= (3/2)·T*] *)
  bound_tests : int;  (** number of construction-free dual tests *)
}

val solve : Instance.t -> result
