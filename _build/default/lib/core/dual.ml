open Bss_util
open Bss_instances

type rejection =
  | Below_trivial_bound of { bound : Rat.t }
  | Load_exceeds of { required : Rat.t; available : Rat.t }
  | Machines_exceed of { required : int; available : int }

type outcome =
  | Accepted of Schedule.t
  | Rejected of rejection

type algorithm = Instance.t -> Rat.t -> outcome

let pp_rejection fmt = function
  | Below_trivial_bound { bound } -> Format.fprintf fmt "rejected: T below trivial bound %a" Rat.pp bound
  | Load_exceeds { required; available } ->
    Format.fprintf fmt "rejected: load %a exceeds mT = %a" Rat.pp required Rat.pp available
  | Machines_exceed { required; available } ->
    Format.fprintf fmt "rejected: needs %d machines, have %d" required available

let pp_outcome fmt = function
  | Accepted s -> Format.fprintf fmt "accepted (makespan %a)" Rat.pp (Schedule.makespan s)
  | Rejected r -> pp_rejection fmt r

let accepted = function
  | Accepted s -> Some s
  | Rejected _ -> None

let is_accepted = function
  | Accepted _ -> true
  | Rejected _ -> false
