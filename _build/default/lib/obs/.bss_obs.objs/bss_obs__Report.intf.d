lib/obs/report.mli: Event
