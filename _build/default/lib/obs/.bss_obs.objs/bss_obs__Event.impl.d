lib/obs/event.ml: Bss_util Format Json Printf Rat
