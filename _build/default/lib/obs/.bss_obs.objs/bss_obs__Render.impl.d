lib/obs/render.ml: Bss_util Buffer Event Format Int64 Json List Printf Report String Table
