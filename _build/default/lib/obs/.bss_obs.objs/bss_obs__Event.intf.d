lib/obs/event.mli: Bss_util Format Rat
