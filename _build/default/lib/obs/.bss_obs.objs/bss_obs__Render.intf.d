lib/obs/render.mli: Report
