lib/obs/probe.mli: Event Report
