lib/obs/probe.ml: Event Fun Hashtbl Int64 List Monotonic_clock Report
