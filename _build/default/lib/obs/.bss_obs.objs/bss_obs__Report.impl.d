lib/obs/report.ml: Event Int64 List
