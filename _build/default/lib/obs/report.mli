(** The immutable outcome of one recorded run (or a merge of several).

    Produced by {!Probe.with_recording}; rendered by {!Render}. All three
    collections are sorted by name so equal runs render identically. *)

type span_total = {
  calls : int;  (** completed enter/leave pairs on this path *)
  ns : int64;  (** inclusive monotonic-clock nanoseconds *)
}

type t = {
  counters : (string * int) list;  (** sorted by counter name *)
  spans : (string * span_total) list;  (** sorted by span path, e.g. ["solve/search/dual"] *)
  events : Event.t list;  (** chronological *)
  dropped_events : int;  (** events beyond the per-run cap, counted not stored *)
}

val empty : t

(** [counter t name] is the counter's value, [0] when absent. *)
val counter : t -> string -> int

(** [merge a b] sums counters and spans pointwise and concatenates events
    (capped; overflow adds to [dropped_events]). Used by aggregate sinks
    such as [bss fuzz --profile]. *)
val merge : t -> t -> t

(** Maximum events a report stores; {!merge} and the collector both
    enforce it. *)
val event_cap : int
