(** Report sinks: ASCII table (via {!Bss_util.Table}), JSON, CSV.

    Counters and span structure are deterministic for a fixed instance and
    algorithm; span durations are wall-clock and are not. Tests pin
    counter rows and treat timings as opaque. *)

(** Monospace tables: spans (path, calls, total ms), counters
    (name, value), then a one-line event count. [?events] (default false)
    additionally lists every recorded event. *)
val table : ?events:bool -> Report.t -> string

(** One JSON object: [{"counters":{...},"spans":{...},"events":[...],
    "dropped_events":n}]. Span times in integer nanoseconds. *)
val json : Report.t -> string

(** JSON-lines: one object per counter, span and event. *)
val jsonl : Report.t -> string

(** CSV with header [kind,name,value,detail]: counters
    ([counter,<name>,<value>,]), spans ([span,<path>,<calls>,<ns>]) and
    events ([event,<tag>,<value>,<detail>]). *)
val csv : Report.t -> string
