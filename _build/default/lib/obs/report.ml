type span_total = { calls : int; ns : int64 }

type t = {
  counters : (string * int) list;
  spans : (string * span_total) list;
  events : Event.t list;
  dropped_events : int;
}

let empty = { counters = []; spans = []; events = []; dropped_events = 0 }
let event_cap = 10_000

let counter t name = match List.assoc_opt name t.counters with Some v -> v | None -> 0

(* merge two name-sorted association lists with [add] on collisions *)
let rec merge_sorted add a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = compare ka kb in
    if c < 0 then (ka, va) :: merge_sorted add ta b
    else if c > 0 then (kb, vb) :: merge_sorted add a tb
    else (ka, add va vb) :: merge_sorted add ta tb

let merge a b =
  let events, dropped =
    let na = List.length a.events in
    let room = event_cap - na in
    if room >= List.length b.events then (a.events @ b.events, 0)
    else (a.events @ List.filteri (fun i _ -> i < room) b.events, List.length b.events - max 0 room)
  in
  {
    counters = merge_sorted ( + ) a.counters b.counters;
    spans =
      merge_sorted
        (fun x y -> { calls = x.calls + y.calls; ns = Int64.add x.ns y.ns })
        a.spans b.spans;
    events;
    dropped_events = a.dropped_events + b.dropped_events + dropped;
  }
