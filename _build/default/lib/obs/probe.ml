(* The disabled path must stay allocation-free: every probe first reads
   [current] and returns on [None]. Structured constants at call sites
   (string literals, [~n:5]) are statically allocated by the compiler, so
   a disabled probe costs one load and one branch. *)

type agg = { mutable calls : int; mutable ns : int64 }
type frame = { path : string; start : int64 }

type collector = {
  counters : (string, int ref) Hashtbl.t;
  spans : (string, agg) Hashtbl.t;
  mutable events_rev : Event.t list;
  mutable nevents : int;
  mutable dropped : int;
  mutable stack : frame list;  (* innermost first *)
}

let current : collector option ref = ref None
let enabled () = !current != None

let count ?(n = 1) name =
  match !current with
  | None -> ()
  | Some c -> (
    match Hashtbl.find_opt c.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add c.counters name (ref n))

let event ev =
  match !current with
  | None -> ()
  | Some c ->
    if c.nevents >= Report.event_cap then c.dropped <- c.dropped + 1
    else begin
      c.events_rev <- ev :: c.events_rev;
      c.nevents <- c.nevents + 1
    end

(* A span token is the frame's depth (1-based); [leave] unwinds to it, so
   an exception that skips inner [leave]s cannot misattribute time to the
   wrong path — the skipped frames are closed when the ancestor leaves. *)
type span = int

let enter name =
  match !current with
  | None -> 0
  | Some c ->
    let path = match c.stack with [] -> name | parent :: _ -> parent.path ^ "/" ^ name in
    c.stack <- { path; start = Monotonic_clock.now () } :: c.stack;
    List.length c.stack

let record c frame now =
  let elapsed = Int64.max 0L (Int64.sub now frame.start) in
  match Hashtbl.find_opt c.spans frame.path with
  | Some a ->
    a.calls <- a.calls + 1;
    a.ns <- Int64.add a.ns elapsed
  | None -> Hashtbl.add c.spans frame.path { calls = 1; ns = elapsed }

let leave tok =
  match !current with
  | None -> ()
  | Some c ->
    let depth = List.length c.stack in
    if tok >= 1 && depth >= tok then begin
      let now = Monotonic_clock.now () in
      let rec pop st d =
        match st with
        | f :: rest when d >= tok ->
          record c f now;
          pop rest (d - 1)
        | st -> st
      in
      c.stack <- pop c.stack depth
    end

let span name f =
  let tok = enter name in
  Fun.protect ~finally:(fun () -> leave tok) f

let harvest c =
  let sorted_bindings to_value tbl =
    Hashtbl.fold (fun k v acc -> (k, to_value v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    Report.counters = sorted_bindings (fun r -> !r) c.counters;
    spans = sorted_bindings (fun (a : agg) -> { Report.calls = a.calls; ns = a.ns }) c.spans;
    events = List.rev c.events_rev;
    dropped_events = c.dropped;
  }

let with_recording f =
  let c =
    {
      counters = Hashtbl.create 32;
      spans = Hashtbl.create 16;
      events_rev = [];
      nevents = 0;
      dropped = 0;
      stack = [];
    }
  in
  let prev = !current in
  current := Some c;
  let result =
    try f ()
    with e ->
      current := prev;
      raise e
  in
  current := prev;
  (result, harvest c)
