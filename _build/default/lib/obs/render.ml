open Bss_util

let ms ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e6)

let table ?(events = false) (r : Report.t) =
  let buf = Buffer.create 1024 in
  if r.spans <> [] then begin
    Buffer.add_string buf
      (Table.render
         ~header:[ "span"; "calls"; "total ms" ]
         ~align:[ Table.Left; Table.Right; Table.Right ]
         (List.map
            (fun (path, (s : Report.span_total)) -> [ path; string_of_int s.calls; ms s.ns ])
            r.spans));
    Buffer.add_char buf '\n'
  end;
  if r.counters <> [] then begin
    Buffer.add_string buf
      (Table.render ~header:[ "counter"; "value" ]
         ~align:[ Table.Left; Table.Right ]
         (List.map (fun (name, v) -> [ name; string_of_int v ]) r.counters));
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf
    (Printf.sprintf "events: %d recorded%s\n" (List.length r.events)
       (if r.dropped_events > 0 then Printf.sprintf " (+%d dropped)" r.dropped_events else ""));
  if events then
    List.iter (fun ev -> Buffer.add_string buf (Format.asprintf "  %a\n" Event.pp ev)) r.events;
  Buffer.contents buf

let json (r : Report.t) =
  Json.obj
    [
      ("counters", Json.obj (List.map (fun (name, v) -> (name, Json.int v)) r.counters));
      ( "spans",
        Json.obj
          (List.map
             (fun (path, (s : Report.span_total)) ->
               (path, Json.obj [ ("calls", Json.int s.calls); ("ns", Json.int64 s.ns) ]))
             r.spans) );
      ("events", Json.arr (List.map Event.to_json r.events));
      ("dropped_events", Json.int r.dropped_events);
    ]

let jsonl (r : Report.t) =
  let buf = Buffer.create 1024 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (name, v) -> line (Json.obj [ ("counter", Json.str name); ("value", Json.int v) ]))
    r.counters;
  List.iter
    (fun (path, (s : Report.span_total)) ->
      line (Json.obj [ ("span", Json.str path); ("calls", Json.int s.calls); ("ns", Json.int64 s.ns) ]))
    r.spans;
  List.iter (fun ev -> line (Event.to_json ev)) r.events;
  if r.dropped_events > 0 then line (Json.obj [ ("dropped_events", Json.int r.dropped_events) ]);
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv (r : Report.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,value,detail\n";
  let row kind name value detail =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s\n" kind (csv_cell name) (csv_cell value) (csv_cell detail))
  in
  List.iter (fun (name, v) -> row "counter" name (string_of_int v) "") r.counters;
  List.iter
    (fun (path, (s : Report.span_total)) ->
      row "span" path (string_of_int s.calls) (Int64.to_string s.ns))
    r.spans;
  List.iter
    (fun ev ->
      let tag, value, detail = Event.summary ev in
      row "event" tag value detail)
    r.events;
  Buffer.contents buf
