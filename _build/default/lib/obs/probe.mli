(** Probe points: the API instrumented code calls.

    Design choice (see docs/observability.md): a {e scoped global sink}
    rather than an [?obs] parameter threaded through every algorithm — the
    algorithms' [.mli]s stay untouched and call sites stay one line. A
    recording is installed with {!with_recording}; outside such a scope
    every probe is a no-op.

    Cost contract when disabled: {!count}, {!event}, {!enter} and {!leave}
    read one root ref and return — no allocation, no branch beyond the
    [None] check (verified by a Gc-stat test in [test/test_obs.ml]). Guard
    any payload construction that itself allocates with {!enabled}:

    {[
      if Probe.enabled () then
        Probe.event (Event.Guess_rejected { source = "dual_search"; t; reason })
    ]}

    The sink is process-global and not synchronized: record on one domain
    at a time (the fuzz driver forces a single domain under [--profile]). *)

(** [enabled ()] is true inside a {!with_recording} scope. *)
val enabled : unit -> bool

(** [count ?n name] adds [n] (default 1) to counter [name]. Names are
    dot-separated ["module.metric"]; the full vocabulary is tabled in
    docs/observability.md. *)
val count : ?n:int -> string -> unit

(** [event ev] appends [ev] to the event stream (dropped beyond
    {!Report.event_cap}, counted in [dropped_events]). *)
val event : Event.t -> unit

(** Span token returned by {!enter}; pass it to {!leave}. *)
type span

(** [enter name] opens a nested monotonic-clock span; the span's path is
    its ancestors' names joined with ['/']. Returns a token ({!leave}
    unwinds to it, so a raise between enter and leave only loses the
    unwound frames' timings, never corrupts the stack). *)
val enter : string -> span

val leave : span -> unit

(** [span name f] = [enter]/[f ()]/[leave], exception-safe. Allocates a
    closure even when disabled — fine at per-run phase granularity, avoid
    in per-item loops (use {!enter}/{!leave} there). *)
val span : string -> (unit -> 'a) -> 'a

(** [with_recording f] installs a fresh collector, runs [f], and returns
    its result with the harvested report. Nests: the innermost recording
    wins; the outer one resumes afterwards (probes hit one sink at a time,
    so nested scopes partition, not duplicate, the observations). *)
val with_recording : (unit -> 'a) -> 'a * Report.t
