(* The rational type used throughout the library is the two-tier
   implementation in Num2: a native-int fast tier with overflow-checked
   operations that promote to the Bigint-backed exact tier. Keeping [Rat] as
   a thin face over [Num2] threads the fast path through every consumer
   without changing any semantics — results are bit-identical to the former
   all-Bigint representation. *)

include Num2
