(* Two-tier exact rationals.

   Tier S holds numerator and denominator in native ints; every operation
   guards with the overflow predicates from {!Intmath} and recomputes on the
   Bigint-backed tier X at the first overflow, so results are always exact —
   the fast tier changes representation, never values.

   Invariants (both tiers): den > 0, gcd(|num|, den) = 1, zero is 0/1.
   Representation is canonical: a value is [S] exactly when both components
   fit a native int other than [min_int] (excluding [min_int] keeps [neg],
   [abs] and the division-based overflow checks total). Canonicity means two
   equal rationals built under the same force-exact setting are also
   structurally equal, so existing polymorphic-equality call sites keep
   working. [X] values whose components would fit tier S arise only under
   force-exact; the semantic [equal]/[compare] handle those mixed cases. *)

module B = Bigint

type t = S of { num : int; den : int } | X of { num : B.t; den : B.t }

let force_exact =
  ref
    (match Sys.getenv_opt "BSS_FORCE_EXACT" with
    | None | Some ("" | "0" | "false" | "no") -> false
    | Some _ -> true)

let set_force_exact b = force_exact := b
let force_exact_enabled () = !force_exact

let with_force_exact b f =
  let saved = !force_exact in
  force_exact := b;
  Fun.protect ~finally:(fun () -> force_exact := saved) f

let tier = function S _ -> `Small | X _ -> `Big

(* Constructors. [small] and [demote] take already-normalized components;
   both funnel through the force-exact switch, so under force every freshly
   built value lands on tier X and the whole pipeline exercises the exact
   path end to end. *)

let small num den =
  if !force_exact then X { num = B.of_int num; den = B.of_int den } else S { num; den }

let demote num den =
  if !force_exact then X { num; den }
  else
    match (B.to_int_opt num, B.to_int_opt den) with
    | Some n, Some d when n <> min_int -> S { num = n; den = d }
    | _ -> X { num; den }

let norm_big num den =
  let s = B.sign den in
  if s = 0 then raise Division_by_zero;
  let num, den = if s < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then small 0 1
  else
    let g = B.gcd num den in
    if B.equal g B.one then demote num den else demote (B.div num g) (B.div den g)

let norm_small num den =
  if den = 0 then raise Division_by_zero
  else if num = min_int || den = min_int then norm_big (B.of_int num) (B.of_int den)
  else
    let num, den = if den < 0 then (-num, -den) else (num, den) in
    if num = 0 then small 0 1
    else
      let g = Intmath.gcd num den in
      if g = 1 then small num den else small (num / g) (den / g)

let zero = small 0 1
let one = small 1 1
let two = small 2 1
let of_int n = if n = min_int then demote (B.of_int n) B.one else small n 1
let of_ints p q = norm_small p q
let of_bigint n = demote n B.one
let make num den = norm_big num den

let bnum = function S { num; _ } -> B.of_int num | X { num; _ } -> num
let bden = function S { den; _ } -> B.of_int den | X { den; _ } -> den
let num = bnum
let den = bden

(* Arithmetic. Each binary operation has a native fast path for S/S inputs
   (skipped under force-exact) and a Bigint slow path shared by everything
   else. Fast paths construct through [norm_small], which re-reduces, or
   through [small] when the result is known to stay coprime. *)

let add_big x y = norm_big (B.add (B.mul (bnum x) (bden y)) (B.mul (bnum y) (bden x))) (B.mul (bden x) (bden y))

let add x y =
  match (x, y) with
  | S { num = an; den = ad }, S { num = bn; den = bd } when not !force_exact ->
      if ad = bd then if Intmath.add_fits an bn then norm_small (an + bn) ad else add_big x y
      else if Intmath.mul_fits an bd && Intmath.mul_fits bn ad && Intmath.mul_fits ad bd then
        let p = an * bd and q = bn * ad in
        if Intmath.add_fits p q then norm_small (p + q) (ad * bd) else add_big x y
      else add_big x y
  | _ -> add_big x y

let sub_big x y = norm_big (B.sub (B.mul (bnum x) (bden y)) (B.mul (bnum y) (bden x))) (B.mul (bden x) (bden y))

let sub x y =
  match (x, y) with
  | S { num = an; den = ad }, S { num = bn; den = bd } when not !force_exact ->
      if ad = bd then if Intmath.sub_fits an bn then norm_small (an - bn) ad else sub_big x y
      else if Intmath.mul_fits an bd && Intmath.mul_fits bn ad && Intmath.mul_fits ad bd then
        let p = an * bd and q = bn * ad in
        if Intmath.sub_fits p q then norm_small (p - q) (ad * bd) else sub_big x y
      else sub_big x y
  | _ -> sub_big x y

let mul_big x y = norm_big (B.mul (bnum x) (bnum y)) (B.mul (bden x) (bden y))

let mul x y =
  match (x, y) with
  | S { num = an; den = ad }, S { num = bn; den = bd } when not !force_exact ->
      if Intmath.mul_fits an bn && Intmath.mul_fits ad bd then norm_small (an * bn) (ad * bd)
      else mul_big x y
  | _ -> mul_big x y

let div_big x y = norm_big (B.mul (bnum x) (bden y)) (B.mul (bden x) (bnum y))

let div x y =
  match (x, y) with
  | S { num = an; den = ad }, S { num = bn; den = bd } when not !force_exact ->
      if Intmath.mul_fits an bd && Intmath.mul_fits ad bn then norm_small (an * bd) (ad * bn)
      else div_big x y
  | _ -> div_big x y

let inv = function S { num; den } -> norm_small den num | X { num; den } -> norm_big den num

let neg = function
  | S { num; den } -> small (-num) den
  | X { num; den } -> X { num = B.neg num; den }

let abs x =
  match x with
  | S { num; den } -> if num < 0 then small (-num) den else x
  | X { num; den } -> if B.sign num < 0 then X { num = B.abs num; den } else x

let mul_int x k =
  match x with
  | S { num; den } when (not !force_exact) && Intmath.mul_fits num k -> norm_small (num * k) den
  | _ -> norm_big (B.mul_int (bnum x) k) (bden x)

let div_int x k =
  match x with
  | S { num; den } when (not !force_exact) && Intmath.mul_fits den k -> norm_small num (den * k)
  | _ -> norm_big (bnum x) (B.mul_int (bden x) k)

let add_int x k =
  match x with
  | S { num; den } when (not !force_exact) && Intmath.mul_fits k den && Intmath.add_fits num (k * den)
    ->
      (* gcd(num + k*den, den) = gcd(num, den) = 1: stays normalized *)
      small (num + (k * den)) den
  | _ -> demote (B.add (bnum x) (B.mul_int (bden x) k)) (bden x)

(* Rounding. Tier S needs explicit floor/ceil semantics for negative
   numerators; native [/] truncates toward zero. *)

let floor_int = function
  | S { num; den } -> if num >= 0 || num mod den = 0 then num / den else (num / den) - 1
  | X { num; den } -> B.to_int_exn (B.fdiv num den)

let ceil_int = function
  | S { num; den } -> if num <= 0 || num mod den = 0 then num / den else (num / den) + 1
  | X { num; den } -> B.to_int_exn (B.cdiv num den)

let floor = function
  | S _ as x -> B.of_int (floor_int x)
  | X { num; den } -> B.fdiv num den

let ceil = function
  | S _ as x -> B.of_int (ceil_int x)
  | X { num; den } -> B.cdiv num den

(* Comparisons. The S/S and [compare_int]/[compare_scaled] paths allocate
   nothing: the overflow guards return unboxed bools and the products stay
   in registers. Mixed tiers (force-exact leftovers) fall back to Bigint
   cross-multiplication. *)

let compare_big x y = B.compare (B.mul (bnum x) (bden y)) (B.mul (bnum y) (bden x))

let compare x y =
  match (x, y) with
  | S { num = an; den = ad }, S { num = bn; den = bd } ->
      if ad = bd then Int.compare an bn
      else if Intmath.mul_fits an bd && Intmath.mul_fits bn ad then
        Int.compare (an * bd) (bn * ad)
      else compare_big x y
  | _ -> compare_big x y

let compare_int x k =
  match x with
  | S { num; den } ->
      if den = 1 then Int.compare num k
      else if Intmath.mul_fits k den then Int.compare num (k * den)
      else if k > 0 then -1 (* k*den > max_int >= num *)
      else 1 (* k*den < min_int < num *)
  | X { num; den } -> B.compare num (B.mul_int den k)

let compare_scaled x s k =
  match x with
  | S { num; den } when Intmath.mul_fits s num && Intmath.mul_fits k den ->
      Int.compare (s * num) (k * den)
  | _ -> B.compare (B.mul_int (bnum x) s) (B.mul_int (bden x) k)

let equal x y =
  match (x, y) with
  | S { num = an; den = ad }, S { num = bn; den = bd } -> an = bn && ad = bd
  | X { num = an; den = ad }, X { num = bn; den = bd } -> B.equal an bn && B.equal ad bd
  | S { num = sn; den = sd }, X { num = xn; den = xd }
  | X { num = xn; den = xd }, S { num = sn; den = sd } ->
      (* both normalized, so equality is componentwise across tiers *)
      B.equal (B.of_int sn) xn && B.equal (B.of_int sd) xd

let min x y = if Stdlib.( <= ) (compare x y) 0 then x else y
let max x y = if Stdlib.( >= ) (compare x y) 0 then x else y
let ( < ) x y = Stdlib.( < ) (compare x y) 0
let ( <= ) x y = Stdlib.( <= ) (compare x y) 0
let ( > ) x y = Stdlib.( > ) (compare x y) 0
let ( >= ) x y = Stdlib.( >= ) (compare x y) 0
let ( = ) x y = equal x y
let sign = function S { num; _ } -> Stdlib.compare num 0 | X { num; _ } -> B.sign num
let is_zero = function S { num; _ } -> Stdlib.( = ) num 0 | X { num; _ } -> B.is_zero num

let is_integer = function
  | S { den; _ } -> Stdlib.( = ) den 1
  | X { den; _ } -> B.equal den B.one

let to_float = function
  | S { num; den } -> float_of_int num /. float_of_int den
  | X { num; den } -> B.to_float num /. B.to_float den

let to_int_opt = function
  | S { num; den } -> if Stdlib.( = ) den 1 then Some num else None
  | X { num; den } -> if B.equal den B.one then B.to_int_opt num else None

let to_string = function
  | S { num; den } ->
      if Stdlib.( = ) den 1 then string_of_int num
      else string_of_int num ^ "/" ^ string_of_int den
  | X { num; den } ->
      if B.equal den B.one then B.to_string num else B.to_string num ^ "/" ^ B.to_string den

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
end
