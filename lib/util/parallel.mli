(** Multicore helpers (OCaml 5 domains).

    The experiment harness evaluates many independent (instance,
    algorithm) cases; this module fans them out over domains with a
    shared-counter work queue. No dependency beyond the stdlib's [Domain]
    and [Atomic]. *)

(** [recommended ()] is the runtime's recommended domain count. *)
val recommended : unit -> int

(** [map ?domains f xs] is [List.map f xs] computed on up to [domains]
    domains (default {!recommended}, capped by the list length).
    Order-preserving. If any [f] raises, one such exception is re-raised
    after all domains finish.

    [f] must be safe to run concurrently with itself (the library's
    solvers are pure given distinct instances; the shared PRNG in
    {!Select} is the one documented exception and is benign — pivot
    choice only affects performance). *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ?domains f xs] is [map] for side effects. *)
val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit

(** {1 Crash containment}

    {!map} aborts the whole sweep on the first exception — right for
    all-or-nothing experiment batches, wrong for a fuzz driver that must
    survive a crashing case. {!map_results} contains failures per item. *)

type failure = {
  index : int;  (** position of the failing item in the input list *)
  attempts : int;  (** evaluations performed, in [\[1, retries + 1\]] *)
  exn : exn;  (** the exception of the {e last} attempt *)
}

(** [map_results ?domains ?retries f xs] evaluates [f] on every item,
    capturing each item's outcome: [Ok y], or — after the item raised on
    an initial attempt plus up to [retries] (default 1) further attempts —
    [Error failure]. Order-preserving; every item is evaluated no matter
    how many others fail, and no exception escapes.
    @raise Invalid_argument when [retries < 0]. *)
val map_results :
  ?domains:int -> ?retries:int -> ('a -> 'b) -> 'a list -> ('b, failure) result list
