(** Crash-safe file replacement.

    [write path content] makes [content] the contents of [path] without
    ever exposing a partial write: the bytes go to a fresh temporary file
    in the {e same directory} (so the final step never crosses a
    filesystem boundary) and the temporary is renamed over [path] —
    atomic on POSIX. A reader, or a process resuming after SIGKILL,
    therefore sees either the old contents or the new contents in full,
    never a truncated mixture. Used by the service checkpoint journal and
    the fuzz corpus writer. *)

(** [write ?hook path content] atomically replaces [path] with [content].
    Raises [Sys_error] when the directory is not writable; on any
    failure the temporary file is removed and [path] is untouched.

    [hook] (default ignore) is called at the four crash points of the
    protocol, in order: ["write.before"] (nothing on disk yet),
    ["write.after"] (bytes durable in the temporary file),
    ["rename.before"] (about to publish) and ["rename.after"]
    (published). A hook that raises aborts the remaining steps and is
    treated like any other failure: the temporary is removed and [path]
    keeps its previous contents — except after ["rename.after"], where
    the replacement has already happened and only the (now nonexistent)
    temporary cleanup runs. The torture harness injects simulated
    crashes here to prove every interleaving leaves a readable file. *)
val write : ?hook:(string -> unit) -> string -> string -> unit
