(** Crash-safe file replacement.

    [write path content] makes [content] the contents of [path] without
    ever exposing a partial write: the bytes go to a fresh temporary file
    in the {e same directory} (so the final step never crosses a
    filesystem boundary) and the temporary is renamed over [path] —
    atomic on POSIX. A reader, or a process resuming after SIGKILL,
    therefore sees either the old contents or the new contents in full,
    never a truncated mixture. Used by the service checkpoint journal and
    the fuzz corpus writer. *)

(** [write path content] atomically replaces [path] with [content].
    Raises [Sys_error] when the directory is not writable; on any
    failure the temporary file is removed and [path] is untouched. *)
val write : string -> string -> unit
