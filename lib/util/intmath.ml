let ceil_div a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b

let floor_div a b =
  assert (a >= 0 && b > 0);
  a / b

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let log2_ceil n =
  assert (n >= 1);
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let pow base e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc else go (if e land 1 = 1 then acc * base else acc) (base * base) (e lsr 1)
  in
  go 1 base e

let sum_array a =
  let s = ref 0 in
  Array.iter
    (fun x ->
      let s' = !s + x in
      assert ((x >= 0 && s' >= !s) || (x < 0 && s' < !s));
      s := s')
    a;
  !s

let max_array a =
  if Array.length a = 0 then invalid_arg "Intmath.max_array: empty";
  Array.fold_left max a.(0) a

let min_array a =
  if Array.length a = 0 then invalid_arg "Intmath.min_array: empty";
  Array.fold_left min a.(0) a

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* Overflow predicates. The two-tier rational layer ({!Num2}) calls the
   [_fits] forms on its fast path — they return an unboxed [bool], so a
   passing check allocates nothing. The [_checked] option forms are the
   testable face of the same predicates.

   [add_fits]/[sub_fits] use the sign rule: a two's-complement sum can only
   wrap when both operands share a sign and the result does not.
   [mul_fits] divides the wrapped product back: with [a ∉ {0, -1}] the
   quotient [a * b / a] equals [b] iff the true product fits, because a
   wrapped product is off by [k * 2^63] with [k <> 0], which exceeds any
   remainder bound [|a| <= 2^62]. The [a = -1] row is split off so the
   division itself cannot trap on [min_int / -1]. *)

let add_fits a b =
  let s = a + b in
  not ((a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0))

let sub_fits a b =
  let d = a - b in
  not ((a >= 0) <> (b >= 0) && (d >= 0) <> (a >= 0))

let mul_fits a b =
  if a = 0 || b = 0 then true
  else if a = -1 then b <> min_int
  else if b = -1 then a <> min_int
  else a * b / a = b

let add_checked a b = if add_fits a b then Some (a + b) else None
let sub_checked a b = if sub_fits a b then Some (a - b) else None
let mul_checked a b = if mul_fits a b then Some (a * b) else None
