(** Small arithmetic helpers on native integers.

    Input processing and setup times are native ints (the paper's ℕ); these
    helpers implement the integer ceilings/floors and bit tricks the
    algorithms and analyses use. *)

(** [ceil_div a b] is [⌈a/b⌉] for [a >= 0], [b > 0]. *)
val ceil_div : int -> int -> int

(** [floor_div a b] is [⌊a/b⌋] for [a >= 0], [b > 0]. *)
val floor_div : int -> int -> int

(** Greatest common divisor of absolute values; [gcd 0 0 = 0]. *)
val gcd : int -> int -> int

(** [log2_ceil n] is the least [k] with [2^k >= n], for [n >= 1]. *)
val log2_ceil : int -> int

(** [pow base e] for [e >= 0]; unchecked overflow. *)
val pow : int -> int -> int

(** [sum_array a] with overflow assertion in debug builds. *)
val sum_array : int array -> int

(** [max_array a] over a non-empty array.
    @raise Invalid_argument on empty input. *)
val max_array : int array -> int

(** [min_array a] over a non-empty array.
    @raise Invalid_argument on empty input. *)
val min_array : int array -> int

(** [clamp lo hi x] limits [x] to [\[lo, hi\]]. *)
val clamp : int -> int -> int -> int

(** {1 Overflow-checked arithmetic}

    The [_fits] predicates report whether the native-int operation is exact
    (no wrap-around). They allocate nothing, so hot paths can guard with
    them and fall back to {!Bigint} only on overflow. The [_checked]
    variants package predicate plus result as an option. *)

(** [add_fits a b] is true iff [a + b] does not overflow. *)
val add_fits : int -> int -> bool

(** [sub_fits a b] is true iff [a - b] does not overflow. *)
val sub_fits : int -> int -> bool

(** [mul_fits a b] is true iff [a * b] does not overflow. *)
val mul_fits : int -> int -> bool

(** [add_checked a b] is [Some (a + b)] when exact, else [None]. *)
val add_checked : int -> int -> int option

(** [sub_checked a b] is [Some (a - b)] when exact, else [None]. *)
val sub_checked : int -> int -> int option

(** [mul_checked a b] is [Some (a * b)] when exact, else [None]. *)
val mul_checked : int -> int -> int option
