(** Deterministic string hashing shared across layers.

    Keying decisions by a request's {e identity} rather than its arrival
    order is what makes the service runtime replayable: backoff jitter and
    chaos plans derive from [djb2 id], and the socket front end pins each
    tenant's requests to one worker shard with [shard tenant]. The hash is
    fixed forever (it participates in seeded streams pinned by cram
    tests); it is djb2 folded into the non-negative native-int range, not
    a general-purpose hash. Never replace it with [Hashtbl.hash], whose
    value may change across compiler versions. *)

(** [djb2 s] = fold of [h*33 + byte] from 5381, masked to [0, max_int]. *)
val djb2 : string -> int

(** [shard ~shards s] buckets [s] into [\[0, shards)] by [djb2 s mod
    shards]. Raises [Invalid_argument] when [shards < 1]. *)
val shard : shards:int -> string -> int
