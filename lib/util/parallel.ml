let recommended () = Domain.recommended_domain_count ()

let map ?domains f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let domains =
      match domains with
      | Some d -> Intmath.clamp 1 n d
      | None -> Intmath.clamp 1 n (recommended ())
    in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_work = ref true in
      while !continue_work do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_work := false
        else begin
          match f inputs.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
            (* remember one failure; drain the queue so siblings stop *)
            ignore (Atomic.compare_and_set failure None (Some e));
            continue_work := false
        end
      done
    in
    let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join handles;
    (match Atomic.get failure with
    | Some e -> raise e
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some y -> y
           | None -> failwith "Parallel.map: missing result (worker aborted)")
         results)

let iter ?domains f xs = ignore (map ?domains f xs)

type failure = { index : int; attempts : int; exn : exn }

let attempt ~retries f x =
  let rec go n =
    match f x with
    | y -> Ok (y, n)
    | exception e -> if n > retries then Error (n, e) else go (n + 1)
  in
  go 1

let map_results ?domains ?(retries = 1) f xs =
  if retries < 0 then invalid_arg "Parallel.map_results: retries < 0";
  let wrap i = function
    | Ok (y, _) -> Ok y
    | Error (attempts, e) -> Error { index = i; attempts; exn = e }
  in
  match xs with
  | [] -> []
  | [ x ] -> [ wrap 0 (attempt ~retries f x) ]
  | _ ->
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let domains =
      match domains with
      | Some d -> Intmath.clamp 1 n d
      | None -> Intmath.clamp 1 n (recommended ())
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* unlike [map], a failing item never drains the queue: its outcome is
       captured in place and the sweep keeps going *)
    let worker () =
      let continue_work = ref true in
      while !continue_work do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_work := false else results.(i) <- Some (attempt ~retries f inputs.(i))
      done
    in
    let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join handles;
    List.init n (fun i ->
        match results.(i) with
        | Some r -> wrap i r
        | None -> wrap i (Error (0, Failure "Parallel.map_results: missing result")))
