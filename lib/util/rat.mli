(** Exact rational numbers — the two-tier implementation of {!Num2}.

    Every schedule coordinate (segment start, duration, makespan guess) in
    this library is an exact rational, so feasibility checking needs no
    epsilon and the dual-approximation accept/reject decisions are exact.
    Since PR 6 the representation is two-tier: a native-int fast tier with
    overflow-checked operations that promote to the {!Bigint}-backed tier on
    the first overflow (see [docs/two-tier-numerics.md]). Both tiers are
    exact; the tier is invisible to this interface.

    Values are kept normalized: the denominator is positive and coprime with
    the numerator; zero is [0/1]. *)

type t = Num2.t

val zero : t
val one : t
val two : t

(** [of_int n] is [n/1]. *)
val of_int : int -> t

(** [of_ints p q] is [p/q].
    @raise Division_by_zero when [q = 0]. *)
val of_ints : int -> int -> t

val of_bigint : Bigint.t -> t

(** [make num den] is [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on zero divisor. *)
val div : t -> t -> t

val inv : t -> t
val mul_int : t -> int -> t
val div_int : t -> int -> t
val add_int : t -> int -> t

(** [floor x] is the greatest integer [<= x], as a bigint. *)
val floor : t -> Bigint.t

(** [ceil x] is the least integer [>= x], as a bigint. *)
val ceil : t -> Bigint.t

(** [floor_int x] / [ceil_int x] convert through {!Bigint.to_int_exn}.
    @raise Failure when out of native range. *)
val floor_int : t -> int

val ceil_int : t -> int

val compare : t -> t -> int

(** [compare_int x k] compares [x] against the integer [k]; allocation-free
    on the fast tier. *)
val compare_int : t -> int -> int

(** [compare_scaled x s k] compares [s * x] against the integer [k] without
    materializing the product; allocation-free on the fast tier. *)
val compare_scaled : t -> int -> int -> int

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int
val is_zero : t -> bool

(** [is_integer x] is true when the denominator is 1. *)
val is_integer : t -> bool

val to_float : t -> float

(** [to_int_opt x] is [Some n] iff [x] is an integer fitting a native int. *)
val to_int_opt : t -> int option

(** ["p/q"] or ["p"] when integral. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Convenience infix operators, meant to be locally [open]ed as
    [Rat.Infix]. *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
end
