let write ?(hook = fun _ -> ()) path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path ^ ".") ".tmp" in
  match
    hook "write.before";
    let oc = open_out_bin tmp in
    (try output_string oc content
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    hook "write.after";
    hook "rename.before";
    Sys.rename tmp path;
    hook "rename.after"
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
