let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int = string_of_int
let int64 = Int64.to_string
let bool = string_of_bool

let float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

(* ---------------- parsing ---------------- *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
          in
          (* our writer only \u-escapes control characters; decode the
             ASCII range and substitute beyond it *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code) else Buffer.add_char buf '?';
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with Some f -> f | None -> fail ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "Json.parse: %s at offset %d" msg at)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
