(** Two-tier exact rational numbers.

    Tier [S] keeps numerator and denominator in native ints and guards every
    operation with the overflow predicates from {!Intmath}; on the first
    overflow the operation recomputes on tier [X], backed by {!Bigint}. Both
    tiers are exact — the tier is a representation choice, never a rounding
    choice — so results are bit-identical to an all-{!Bigint} computation
    (certified by the differential suite in [test/test_num2.ml] and the
    [two-tier-exact] oracle property).

    Values are normalized: the denominator is positive and coprime with the
    numerator; zero is [0/1]. Representation is canonical: a value is [S]
    exactly when both components fit a native int other than [min_int].
    Under {!with_force_exact} every freshly constructed value lands on tier
    [X] instead, forcing the whole pipeline down the exact path; comparisons
    across tiers remain correct via {!equal}/{!compare}. *)

type t = S of { num : int; den : int } | X of { num : Bigint.t; den : Bigint.t }

(** {1 Force-exact switch} *)

(** [set_force_exact b] routes all subsequent constructions to tier [X]
    ([b = true]) or restores two-tier behavior ([b = false]). The initial
    value honors the [BSS_FORCE_EXACT] environment variable (any value other
    than [0]/[false]/[no]/empty enables it). *)
val set_force_exact : bool -> unit

val force_exact_enabled : unit -> bool

(** [with_force_exact b f] runs [f ()] with the switch set to [b], restoring
    the previous setting afterwards (also on exceptions). *)
val with_force_exact : bool -> (unit -> 'a) -> 'a

(** Representation tier of a value, for tests and diagnostics. *)
val tier : t -> [ `Small | `Big ]

(** {1 Construction} *)

val zero : t
val one : t
val two : t

(** [of_int n] is [n/1]. *)
val of_int : int -> t

(** [of_ints p q] is [p/q].
    @raise Division_by_zero when [q = 0]. *)
val of_ints : int -> int -> t

val of_bigint : Bigint.t -> t

(** [make num den] is [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on zero divisor. *)
val div : t -> t -> t

val inv : t -> t
val mul_int : t -> int -> t
val div_int : t -> int -> t
val add_int : t -> int -> t

(** [floor x] is the greatest integer [<= x], as a bigint. *)
val floor : t -> Bigint.t

(** [ceil x] is the least integer [>= x], as a bigint. *)
val ceil : t -> Bigint.t

(** [floor_int x] / [ceil_int x] convert through {!Bigint.to_int_exn} on
    tier [X].
    @raise Failure when out of native range. *)
val floor_int : t -> int

val ceil_int : t -> int

(** {1 Comparisons}

    [compare], [compare_int] and [compare_scaled] allocate nothing on tier
    [S]: the overflow guards return unboxed bools and products stay in
    registers (pinned by the Gc test in [test/test_num2.ml]). *)

val compare : t -> t -> int

(** [compare_int x k] compares [x] against the integer [k]. *)
val compare_int : t -> int -> int

(** [compare_scaled x s k] compares [s * x] against the integer [k] without
    materializing the product. *)
val compare_scaled : t -> int -> int -> int

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int
val is_zero : t -> bool

(** [is_integer x] is true when the denominator is 1. *)
val is_integer : t -> bool

(** {1 Conversions} *)

val to_float : t -> float

(** [to_int_opt x] is [Some n] iff [x] is an integer fitting a native int. *)
val to_int_opt : t -> int option

(** ["p/q"] or ["p"] when integral. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Convenience infix operators, meant to be locally [open]ed. *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
end
