(** Minimal JSON writer (no parser, no dependency).

    Combinators return already-serialized fragments; [obj]/[arr] compose
    them. Enough for the CLI's [--json] output and the telemetry sinks —
    exact rationals are emitted as strings to avoid float loss. *)

(** [escape s] is [s] with JSON string escapes applied (no quotes added). *)
val escape : string -> string

(** [str s] is the quoted, escaped string literal. *)
val str : string -> string

val int : int -> string
val int64 : int64 -> string
val bool : bool -> string

(** [float f] uses ["%.6g"]; non-finite values become [null]. *)
val float : float -> string

(** [obj fields] where each value is an already-serialized fragment. *)
val obj : (string * string) list -> string

val arr : string list -> string

(** {1 Parsing}

    A small recursive-descent reader, added for the benchmark
    regression gate ([bss bench --against]) which must read back the
    JSON this module wrote. It handles the full JSON grammar this
    writer can produce (objects, arrays, strings with escapes, numbers,
    booleans, null); numbers are read as [float] (exact for integers
    below 2{^53}, which covers every counter and nanosecond total we
    emit). *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list  (** fields in document order *)

(** [parse s] reads one JSON document (trailing whitespace allowed).
    [Error msg] carries the byte offset of the failure. *)
val parse : string -> (value, string) result

(** [member k v] is field [k] of object [v], if both exist. *)
val member : string -> value -> value option
