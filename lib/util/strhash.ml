let djb2 s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land max_int) s;
  !h

let shard ~shards s =
  if shards < 1 then invalid_arg "Strhash.shard: shards < 1";
  djb2 s mod shards
