(** The batch-service runtime: composition of the resilience primitives
    into a long-running, fault-tolerant solve loop.

    Requests flow from a batch (or generated soak stream) through a
    bounded {!Bqueue} in {e waves} of [burst] admissions; each wave is
    drained and dispatched to a worker pool
    ({!Bss_util.Parallel.map_results}, one domain per worker). Every
    request runs {!Bss_core.Solver.solve_robust} under its own
    per-request guard ([deadline_ms]/[fuel]), with bounded retry and
    deterministic exponential backoff ({!Backoff}) around retryable
    failures, behind a per-variant circuit {!Breaker}. Completions are
    checkpointed in a crash-safe {!Journal}; a resumed run restores
    journaled results verbatim and re-solves only the rest.

    Determinism contract: with no wall-clock deadline and no armed chaos,
    the summary's result set (id, rung, makespan) is a pure function of
    the request list and config — independent of worker count, and of
    being killed and resumed any number of times (the acceptance property
    pinned by [test/test_service.ml]). Chaos plans under [config.chaos]
    force a single worker (the armed plan is process-global). *)

open Bss_instances

type config = {
  queue_capacity : int;  (** bounded-queue capacity, >= 1 *)
  burst : int;  (** admissions attempted per wave; > capacity exercises rejection *)
  workers : int option;  (** worker domains; [None] = {!Bss_util.Parallel.recommended} *)
  retries : int;  (** retry attempts per request beyond the first, >= 0 *)
  backoff : Backoff.policy;
  breaker_k : int;  (** consecutive ladder failures that trip a variant's breaker *)
  breaker_cooldown : int;  (** fallback-routed requests before a half-open probe *)
  deadline_ms : int option;  (** per-request wall-clock budget *)
  fuel : int option;  (** per-request tick budget *)
  checkpoint_every : int;  (** journal flush cadence, in completions *)
  chaos : int option;  (** arm seeded fault plans (service + solver sites); forces 1 worker *)
  seed : int;  (** backoff-jitter seed *)
  metrics_every : int option;
      (** emit a periodic [metrics] JSON line through [emit_metrics] every
          N completions ([None] = never) *)
  window_every : int option;
      (** arm the live telemetry plane ({!Bss_obs.Timeseries}): close one
          window every N processed requests (completions + aborts — the
          wall-clock-free window clock) and hand it to the driver's
          window sink ([?on_window] / [Engine.set_on_window]). The stream
          is deterministic across worker counts in its counter/gauge
          prefix; [None] = no windows (zero overhead). Must be >= 1. *)
  trace_sample : int option;
      (** [Some k] enables request-scoped tracing
          ({!Bss_obs.Trace_ctx}): every request gets a span tree with a
          deterministic id derived from (seed, admission sequence,
          request id). At the end of the run the traces are
          tail-sampled — errors, degradations, retried requests, SLO
          violations and histogram-exemplar traces are always kept, the
          uneventful rest is reservoir-sampled down to [k] under the
          run seed. [None] disables tracing entirely (the disabled path
          allocates nothing — pinned by a Gc test). *)
  slo : Bss_obs.Slo.t option;
      (** evaluate these objectives over the run: one rolling-window
          check per [metrics_every] emission (burn rates into the
          metrics line) and a final cumulative verdict in the summary —
          the [bss soak --slo] gate *)
}

(** capacity 64, burst 64, workers [None], 2 retries, default backoff,
    breaker k=3 cooldown=4, no budgets, checkpoint every 8, no chaos,
    seed 0, no periodic metrics, no windows, no tracing, no SLOs. *)
val default_config : config

type status =
  | Done  (** a checker-feasible schedule was produced (possibly degraded) *)
  | Rejected  (** refused at admission: queue full, or an injected admission fault *)
  | Aborted  (** realization failed, or retries were exhausted on crashes *)

type outcome = {
  request : Request.t;
  status : status;
  rung : string option;  (** ladder rung of the result, for [Done] *)
  makespan : string option;  (** exact rational makespan, for [Done] *)
  routed : string;  (** ["requested"], ["fallback"], ["probe"] or ["-"] *)
  retries_used : int;
  degraded : bool;  (** left the requested rung of its routed algorithm *)
  from_checkpoint : bool;  (** restored from the journal, not re-solved *)
  error : Bss_resilience.Error.t option;  (** for [Rejected]/[Aborted] *)
  latency_ns : int64;  (** wall-clock in the worker; 0 for checkpointed *)
  queue_wait_ns : int64;
      (** admission-to-dispatch wait; 0 for rejected/checkpointed. The
          socket front end copies both durations into response frames so
          a remote client can reconstruct the latency histograms the SLO
          gate reads. *)
}

type summary = {
  outcomes : outcome list;  (** one per attempted request, in request order *)
  total : int;  (** requests presented *)
  completed : int;
  checkpointed : int;  (** of [completed], restored from the journal *)
  rejected : int;
  aborted : int;
  dropped : int;  (** presented requests with no outcome — 0 by contract *)
  not_admitted : int;  (** left unattempted by an interrupted drain *)
  retries : int;  (** total retry attempts performed *)
  rungs : (string * int) list;  (** rung -> completions, sorted *)
  breaker : (Variant.t * string list) list;  (** transitions per variant, oldest first *)
  queue_peak : int;  (** deepest wave the queue held *)
  waves : int;
  flush_failures : int;  (** journal flushes that failed (chaos or I/O) and were retried *)
  journal_dirty : int;  (** completions not on disk at exit — 0 unless every flush failed *)
  journal_salvaged : int;
      (** corrupt lines salvaged around when the journal was loaded — 0 on
          a healthy chain (rendered, and emitted in JSON, only when > 0) *)
  interrupted : bool;  (** [should_stop] drained the run early *)
  hists : (string * Bss_obs.Hist.snapshot) list;
      (** service latency histograms, sorted by name: per-variant solve
          latency ([service.solve_ns.<variant>]), queue wait
          ([service.queue.wait_ns]), retries per request
          ([service.retries_per_request]) and journal flush latency
          ([service.journal.flush_ns]). Recorded on the coordinator from
          data the dispatch loop already holds, so they need no installed
          {!Bss_obs.Probe} recording; with one installed the same
          observations are mirrored into it. When tracing is enabled,
          queue-wait and per-variant solve buckets carry exemplar trace
          IDs ({!Bss_obs.Hist.record_exemplar}), attached on the
          coordinator in request order so eviction replays
          deterministically. *)
  traces : Bss_obs.Trace_ctx.trace list;
      (** the tail-sampled request traces, in admission order: all
          error/degraded/retried/SLO-violating traces, every trace an
          exemplar cites, plus a seeded reservoir of [trace_sample]
          uneventful ones; [] when tracing is off *)
  slo_verdict : Bss_obs.Slo.verdict option;
      (** the final cumulative SLO evaluation, when [config.slo] is set *)
}

(** The wave machinery shared by the batch driver ({!run}) and the socket
    front end ([Bss_net.Server]): admission into the bounded queue,
    breaker routing, worker-pool fan-out, outcome accounting, journal
    checkpointing and metrics/trace/SLO bookkeeping — without an intake
    policy. Drivers decide {e when} to admit and dispatch; the engine
    guarantees the bookkeeping is identical whichever driver runs it
    (the batch cram pins did not move when [run] was rebuilt on it).

    Not synchronized: all engine calls must come from one coordinator
    domain (workers are managed internally). *)
module Engine : sig
  type t

  (** [create ?journal ?emit_metrics config] validates [config] (raising
      [Invalid_argument] as {!run} does) and allocates an idle engine.
      [chaos] forces one worker, as in {!run}. *)
  val create : ?journal:Journal.t -> ?emit_metrics:(string -> unit) -> config -> t

  (** Resolved worker-domain count (also the shard count). *)
  val workers : t -> int

  (** Outcomes restored from the journal so far. *)
  val checkpointed : t -> int

  (** Requests admitted since the last {!dispatch}. *)
  val queued : t -> int

  (** The outcome already recorded for [id], if any — a checkpoint
      restore, a completed solve, or a rejection. The socket front end
      uses this to answer re-sent ids without re-solving (exactly-once
      across reconnects). *)
  val cached : t -> string -> outcome option

  (** [from_checkpoint t r] restores [r] from the journal when present
      (recording a [from_checkpoint] outcome) — [None] if the journal
      lacks it or an outcome already exists. Does not count
      ["service.resumed"]; drivers count their own restore policy. *)
  val from_checkpoint : t -> Request.t -> outcome option

  (** [admit t r] offers [r] to the bounded queue. [Error o] is the
      recorded [Rejected] outcome (typed [Overloaded] backpressure, or an
      injected admission fault). Does not dedup against {!cached} — the
      driver decides replay semantics first. *)
  val admit : t -> Request.t -> (unit, outcome) result

  (** [dispatch t] drains the queue into one wave: queue-wait accounting,
      coordinator-side breaker routing, worker fan-out (tenant-hash
      sharding when the wave has non-default tenants), outcome recording,
      checkpoint flushes and periodic metrics. Returns the wave's
      outcomes in wave order. An empty wave still counts (as in the batch
      loop, where every burst dispatches). *)
  val dispatch : t -> outcome list

  (** Marks the run interrupted with [pending] unattempted requests. *)
  val interrupt : t -> pending:int -> unit

  (** Retries the journal flush up to 4 times (armed chaos hits are
      consumed by the retries) — call once at the end of a run. *)
  val final_flush : t -> unit

  (** The seeded coordinator-side chaos plan over the service sites
      (admission, breaker probe, journal flush); [[]] when [config.chaos]
      is [None]. Drivers arm it ({!Bss_resilience.Chaos.with_plan})
      around their whole loop including the final flush. *)
  val coordinator_plan : config -> (string * int * Bss_resilience.Chaos.action) list

  (** The run summary. With [~requests] (the batch driver), outcomes are
      listed in request order and [total]/[dropped] account against that
      list; without it (the socket front end), outcomes are in
      first-record order and [total] is the recorded count. *)
  val summary : ?requests:Request.t list -> t -> summary

  (** {2 The live telemetry plane}

      Armed by [config.window_every]; every call below is a no-op (or
      [None]/[[]]) when it is unset. *)

  (** Install the window sink: called on the coordinator with each window
      the moment it closes (mid-dispatch) — the socket front end
      broadcasts it to watchers. Default: ignore. *)
  val set_on_window : t -> (Bss_obs.Timeseries.window -> unit) -> unit

  (** Close the final (possibly partial, possibly empty) window, marked
      [final], so the stream's cumulative deltas reconcile exactly with
      the summary. Idempotent; call at drain, before {!final_flush}. *)
  val finalize_windows : t -> unit

  (** Ring contents, oldest first — the backfill a newly subscribed
      watcher receives for stream contiguity. *)
  val windows : t -> Bss_obs.Timeseries.window list

  (** The window {!push} would close right now, marked [live], without
      closing it — the [stats] frame's on-demand snapshot. *)
  val live_window : t -> Bss_obs.Timeseries.window option
end

(** [run ?journal ?should_stop ?emit_metrics config requests] executes the
    batch. [journal] enables checkpointing (entries already present are
    restored, not re-solved); [should_stop] is polled between waves — when
    it turns true the runtime stops admitting, finishes the in-flight
    wave, flushes the journal and returns with [interrupted = true] (the
    CLI wires SIGINT/SIGTERM to it). When [config.metrics_every] is
    [Some n], [emit_metrics] (default: ignore) receives a one-line
    [{"metrics":{...}}] JSON object after each wave that crosses another
    [n] completions — live counters plus current histogram snapshots.
    When [config.window_every] is [Some n], [on_window] (default: ignore)
    receives each closed telemetry window, the final drain-time window
    included. Never raises: every failure is an outcome. *)
val run :
  ?journal:Journal.t ->
  ?should_stop:(unit -> bool) ->
  ?emit_metrics:(string -> unit) ->
  ?on_window:(Bss_obs.Timeseries.window -> unit) ->
  config ->
  Request.t list ->
  summary

(** Stable text rendering: per-request lines in request order, rung
    counts, breaker transitions and totals — no timestamps or latencies,
    so seed-pinned runs render identically (cram-pinned). *)
val render_text : summary -> string

(** Just the aggregate tail of {!render_text} (totals, rungs, breaker,
    queue, journal, traces, SLO) without the per-request lines — the
    socket front end prints this after its own connection counters, where
    per-request lines would duplicate the response frames. *)
val render_totals : summary -> string

(** One JSON object with the full summary, including per-outcome typed
    error records ({!Bss_resilience.Error.to_json}) and latency
    aggregates. *)
val render_json : summary -> string
