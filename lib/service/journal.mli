(** The crash-safe checkpoint journal.

    One line per completed request — tab-separated
    [id <TAB> rung <TAB> makespan] — rewritten in full through
    {!Bss_util.Atomic_file.write} (temp file + rename in the journal's
    directory) at every flush. A SIGKILL therefore leaves either the
    previous journal or the new one, never a truncated mixture; a resumed
    run trusts every entry it finds and re-solves only the rest. A flush
    that fails (including an armed ["service.journal.flush"] chaos fault)
    leaves the previous on-disk journal intact — checkpointing is delayed,
    results are never corrupted. *)

type entry = {
  id : string;  (** the request id (no tabs or newlines) *)
  rung : string;  (** ladder rung that produced the result *)
  makespan : string;  (** exact rational, as [Rat.to_string] *)
}

type t

(** [load path] reads the journal at [path]; a missing file is an empty
    journal. Unparseable lines are impossible under the atomic-write
    contract and raise [Failure] (a corrupt journal should stop a resume
    loudly, not silently re-solve). *)
val load : string -> t

(** A fresh, empty journal backed by [path]. *)
val fresh : string -> t

val path : t -> string

(** [mem t id] is true when [id] is already checkpointed. *)
val mem : t -> string -> bool

(** Checkpointed entries, oldest first. *)
val entries : t -> entry list

(** [add t entry] records a completion in memory; it reaches disk at the
    next {!flush}. Re-adding a checkpointed id is a no-op. *)
val add : t -> entry -> unit

(** Completions recorded since the last successful {!flush}. *)
val dirty : t -> int

(** [flush t] atomically rewrites the journal file when dirty. Fires
    {!Bss_resilience.Guard.point} ["service.journal.flush"] first; an
    armed chaos fault or an I/O error escapes — the caller contains it
    and retries at the next checkpoint. *)
val flush : t -> unit
