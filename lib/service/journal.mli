(** The crash-safe checkpoint journal, with zero-downtime rotation.

    One line per completed request — tab-separated
    [id <TAB> rung <TAB> makespan]. The {e active} file at [path] is
    rewritten through {!Bss_util.Atomic_file.write} (temp file + rename in
    the journal's directory) at every flush, so a SIGKILL leaves either
    the previous active file or the new one, never a truncated mixture. A
    flush that fails (including an armed ["service.journal.flush"] chaos
    fault) leaves the previous on-disk state intact — checkpointing is
    delayed, results are never corrupted.

    {b Rotation.} With [rotate_every = Some k], a flush that brings the
    active file to [k] or more entries {e seals} it: the active file is
    [rename(2)]d to the next numbered segment ([path.1], [path.2], ...)
    and subsequent flushes start a fresh active file. Sealed segments are
    never rewritten, so flush cost stays proportional to the unsealed
    tail instead of the whole history, and rotation commutes with crash
    safety (the entries exist on disk under exactly one of the two names
    at every instant). {!load} resumes across the whole chain: segments
    in order, then the active file.

    {b Salvage.} A corrupt line — impossible under the atomic-write
    contract, but disks and operators exist — does not abort the resume:
    {!load} keeps the valid prefix of the torn file, abandons the rest of
    that file (entries after a tear are suspect; re-solving them is always
    safe), records a typed {!Bss_resilience.Error.t} detail retrievable
    via {!salvaged}, and bumps the ["service.journal.salvaged"] counter. *)

type entry = {
  id : string;  (** the request id (no tabs or newlines) *)
  rung : string;  (** ladder rung that produced the result *)
  makespan : string;  (** exact rational, as [Rat.to_string] *)
}

type t

(** [load ?rotate_every path] reads the journal chain at [path] — sealed
    segments [path.1 .. path.n] in order, then the active file; missing
    files are empty. Corrupt lines trigger the salvage path described
    above instead of raising. *)
val load : ?rotate_every:int -> string -> t

(** A fresh, empty journal backed by [path]. [rotate_every] enables
    rotation (raises [Invalid_argument] when [< 1]). *)
val fresh : ?rotate_every:int -> string -> t

val path : t -> string

(** [mem t id] is true when [id] is already checkpointed. *)
val mem : t -> string -> bool

(** The checkpointed entry for [id], O(1). *)
val find : t -> string -> entry option

(** Checkpointed entries, oldest first, spanning sealed segments and the
    active file. *)
val entries : t -> entry list

(** Typed details of corrupt lines salvaged around during {!load}, oldest
    first; [[]] on a healthy journal. Each is an [Invalid_input] whose
    [line] is the 1-based line of the first corrupt line in its file. *)
val salvaged : t -> Bss_resilience.Error.t list

(** Sealed segment files on disk ([path.1 .. path.(segments t)]). *)
val segments : t -> int

(** [add t entry] records a completion in memory; it reaches disk at the
    next {!flush}. Re-adding a checkpointed id is a no-op. *)
val add : t -> entry -> unit

(** Completions recorded since the last successful {!flush}. *)
val dirty : t -> int

(** [flush t] atomically rewrites the active file when dirty, then seals
    it into a numbered segment when rotation is enabled and the active
    file reached [rotate_every] entries. Fires
    {!Bss_resilience.Guard.point} ["service.journal.flush"] first; an
    armed chaos fault or an I/O error escapes — the caller contains it
    and retries at the next checkpoint. The six
    {!Bss_resilience.Chaos.journal_sites} crash points fire along the
    way ([journal.write.*]/[journal.rename.*] from inside the atomic
    write, [journal.seal.*] around the rotation rename), so a torture
    schedule can simulate a kill between any two steps of the
    protocol. *)
val flush : t -> unit
