(** A bounded FIFO work queue with typed backpressure.

    Admission beyond [capacity] is refused with
    {!Bss_resilience.Error.Overloaded} — the runtime's memory use is
    bounded by construction, and producers learn about overload through
    the same typed-error channel as every other failure. Admission also
    fires the ["service.admit"] chaos site, so fault plans can make the
    admission path itself crash.

    Not synchronized: the runtime admits and drains from its coordinator
    domain only (workers see requests only after they leave the queue). *)

type 'a t

(** [create ~capacity] is an empty queue. @raise Invalid_argument when
    [capacity < 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Requests currently queued, in [\[0, capacity\]]. *)
val length : 'a t -> int

(** [admit q x] enqueues [x], or refuses: [Error (Overloaded _)] when the
    queue is full. Fires {!Bss_resilience.Guard.point}
    ["service.admit"] first, so an armed chaos fault escapes as
    {!Bss_resilience.Chaos.Injected} — callers contain it like any crash. *)
val admit : 'a t -> 'a -> (unit, Bss_resilience.Error.t) result

(** [drain q] dequeues everything, oldest first. *)
val drain : 'a t -> 'a list
