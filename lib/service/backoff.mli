(** Bounded retry with exponential backoff and deterministic jitter.

    Delays grow geometrically with the attempt number, are capped, and
    carry jitter drawn from an explicit {!Bss_util.Prng.t} — no wall-clock
    randomness, so a retry schedule is a pure function of the policy and
    the seed, and a killed-and-resumed batch replays identical waits.
    Waiting busy-spins on the monotonic clock (same discipline as
    {!Bss_resilience.Chaos}'s [Stall]): the delays involved are hundreds
    of microseconds, far below the cost of a sleep syscall's wake-up
    slop, and nothing here may depend on signal-interruptible sleeps. *)

type policy = {
  base_us : int;  (** first-retry delay, microseconds *)
  factor : int;  (** geometric growth per attempt *)
  cap_us : int;  (** upper bound on any single delay *)
}

(** base 200µs, factor 2, cap 20ms. *)
val default : policy

(** The module-level hard cap (1s) on any single delay, applied on top of
    the policy's own [cap_us]. A policy cannot exceed it, and the growth
    recursion stops before a multiplication could overflow toward it, so
    even an adversarial policy ([cap_us] near [max_int]) yields bounded,
    non-negative delays. *)
val hard_cap_us : int

(** [delay_us policy rng ~attempt] is the wait before retry [attempt]
    (1-based): [min cap (base_us·factor^(attempt-1))] plus jitter
    uniform in [\[0, delay/2\]] drawn from [rng], where [cap = min cap_us
    hard_cap_us]. Exactly one jitter draw per call, whatever the clamp
    path — the rng stream position is a function of the attempt count
    alone. *)
val delay_us : policy -> Bss_util.Prng.t -> attempt:int -> int

(** [wait us] busy-waits [us] microseconds on the monotonic clock. *)
val wait : int -> unit
