module Guard = Bss_resilience.Guard
module Rerror = Bss_resilience.Error

type entry = { id : string; rung : string; makespan : string }

type t = {
  path : string;
  rotate_every : int option;
  mutable order : string list;  (* completion order, newest first *)
  by_id : (string, entry) Hashtbl.t;
  mutable total : int;
  mutable sealed : int;  (* oldest entries frozen into rotated segment files *)
  mutable segments : int;  (* sealed segment files on disk: path.1 .. path.segments *)
  mutable dirty : int;
  mutable salvaged : Rerror.t list;  (* newest first *)
}

let fresh ?rotate_every path =
  (match rotate_every with
  | Some k when k < 1 -> invalid_arg "Journal.fresh: rotate_every < 1"
  | _ -> ());
  {
    path;
    rotate_every;
    order = [];
    by_id = Hashtbl.create 64;
    total = 0;
    sealed = 0;
    segments = 0;
    dirty = 0;
    salvaged = [];
  }

let segment_path path i = Printf.sprintf "%s.%d" path i

let parse_line line =
  match String.split_on_char '\t' line with
  | [ id; rung; makespan ] when id <> "" -> Some { id; rung; makespan }
  | _ -> None

let insert t e =
  if not (Hashtbl.mem t.by_id e.id) then begin
    t.order <- e.id :: t.order;
    Hashtbl.replace t.by_id e.id e;
    t.total <- t.total + 1
  end

(* Read one journal file, keeping the valid prefix. The first corrupt line
   abandons the rest of that file (a torn tail means everything after the
   tear is suspect) and records a typed detail; the abandoned entries are
   simply re-solved by the resumed run, which is always safe. *)
let load_file t file =
  let ic = open_in file in
  let lineno = ref 0 in
  (try
     let ok = ref true in
     while !ok do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match parse_line line with
         | Some e -> insert t e
         | None ->
           t.salvaged <-
             Rerror.Invalid_input
               {
                 line = Some !lineno;
                 field = "journal";
                 reason = Printf.sprintf "corrupt entry in %s; salvaged the valid prefix" file;
               }
             :: t.salvaged;
           if Bss_obs.Probe.enabled () then Bss_obs.Probe.count "service.journal.salvaged";
           ok := false
       end
     done
   with End_of_file -> ());
  close_in ic

let load ?rotate_every path =
  let t = fresh ?rotate_every path in
  let rec load_segments i =
    let seg = segment_path path i in
    if Sys.file_exists seg then begin
      load_file t seg;
      t.segments <- i;
      load_segments (i + 1)
    end
  in
  load_segments 1;
  t.sealed <- t.total;
  if Sys.file_exists path then load_file t path;
  t

let path t = t.path
let mem t id = Hashtbl.mem t.by_id id
let find t id = Hashtbl.find_opt t.by_id id
let entries t = List.rev_map (Hashtbl.find t.by_id) t.order
let salvaged t = List.rev t.salvaged
let segments t = t.segments

let add t e =
  if not (Hashtbl.mem t.by_id e.id) then begin
    insert t e;
    t.dirty <- t.dirty + 1
  end

let dirty t = t.dirty

(* Entries not yet sealed into a rotated segment, oldest first: the first
   [total - sealed] ids of [order] (which is newest-first), reversed. *)
let unsealed t =
  let rec take acc k ids = if k = 0 then acc else match ids with [] -> acc | id :: tl -> take (Hashtbl.find t.by_id id :: acc) (k - 1) tl in
  take [] (t.total - t.sealed) t.order

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : entry) -> Buffer.add_string buf (Printf.sprintf "%s\t%s\t%s\n" e.id e.rung e.makespan))
    (unsealed t);
  Buffer.contents buf

let flush t =
  if t.dirty > 0 then begin
    Guard.point "service.journal.flush";
    Bss_util.Atomic_file.write
      ~hook:(fun ev -> Bss_resilience.Chaos.fire ("journal." ^ ev))
      t.path (render t);
    t.dirty <- 0;
    match t.rotate_every with
    | Some k when t.total - t.sealed >= k ->
      (* Seal the active file under the next segment name. rename(2) is
         atomic, and the entries are on disk under either name, so a kill
         at any instant between the two flush steps loses nothing. *)
      Bss_resilience.Chaos.fire "journal.seal.before";
      Sys.rename t.path (segment_path t.path (t.segments + 1));
      Bss_resilience.Chaos.fire "journal.seal.after";
      t.segments <- t.segments + 1;
      t.sealed <- t.total;
      if Bss_obs.Probe.enabled () then Bss_obs.Probe.count "service.journal.rotated"
    | _ -> ()
  end
