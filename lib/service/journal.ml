module Guard = Bss_resilience.Guard

type entry = { id : string; rung : string; makespan : string }

type t = {
  path : string;
  mutable order : string list;  (* completion order, newest first *)
  by_id : (string, entry) Hashtbl.t;
  mutable dirty : int;
}

let fresh path = { path; order = []; by_id = Hashtbl.create 64; dirty = 0 }

let parse_line line =
  match String.split_on_char '\t' line with
  | [ id; rung; makespan ] -> { id; rung; makespan }
  | _ -> failwith ("Journal.load: corrupt journal line: " ^ line)

let load path =
  let t = fresh path in
  if Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then begin
           let e = parse_line line in
           if not (Hashtbl.mem t.by_id e.id) then begin
             t.order <- e.id :: t.order;
             Hashtbl.replace t.by_id e.id e
           end
         end
       done
     with End_of_file -> ());
    close_in ic
  end;
  t

let path t = t.path
let mem t id = Hashtbl.mem t.by_id id
let entries t = List.rev_map (Hashtbl.find t.by_id) t.order

let add t e =
  if not (Hashtbl.mem t.by_id e.id) then begin
    t.order <- e.id :: t.order;
    Hashtbl.replace t.by_id e.id e;
    t.dirty <- t.dirty + 1
  end

let dirty t = t.dirty

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : entry) -> Buffer.add_string buf (Printf.sprintf "%s\t%s\t%s\n" e.id e.rung e.makespan))
    (entries t);
  Buffer.contents buf

let flush t =
  if t.dirty > 0 then begin
    Guard.point "service.journal.flush";
    Bss_util.Atomic_file.write t.path (render t);
    t.dirty <- 0
  end
