module Rerror = Bss_resilience.Error
module Guard = Bss_resilience.Guard

type 'a t = { capacity : int; items : 'a Queue.t }

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
  { capacity; items = Queue.create () }

let capacity q = q.capacity
let length q = Queue.length q.items

let admit q x =
  Guard.point "service.admit";
  if Queue.length q.items >= q.capacity then
    Error (Rerror.Overloaded { capacity = q.capacity; pending = Queue.length q.items })
  else begin
    Queue.add x q.items;
    Ok ()
  end

let drain q =
  let rec go acc = match Queue.take_opt q.items with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
