type policy = { base_us : int; factor : int; cap_us : int }

let default = { base_us = 200; factor = 2; cap_us = 20_000 }
let hard_cap_us = 1_000_000

let delay_us policy rng ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_us: attempt < 1";
  let cap = max 1 (min policy.cap_us hard_cap_us) in
  let factor = max 1 policy.factor in
  (* Stop one multiplication early when the next step would pass the cap:
     [d * factor] can wrap past max_int for adversarial policies (cap close
     to max_int), so the overflow test divides instead of multiplying. *)
  let rec grow d k =
    if k <= 1 || d >= cap then d
    else if d > cap / factor then cap (* the multiplication would land past the cap *)
    else grow (d * factor) (k - 1)
  in
  let d = min cap (grow (min policy.base_us cap) attempt) in
  d + Bss_util.Prng.int rng ((d / 2) + 1)

let wait us =
  if us > 0 then begin
    let stop = Int64.add (Monotonic_clock.now ()) (Int64.mul (Int64.of_int us) 1_000L) in
    while Int64.compare (Monotonic_clock.now ()) stop < 0 do
      ()
    done
  end
