type policy = { base_us : int; factor : int; cap_us : int }

let default = { base_us = 200; factor = 2; cap_us = 20_000 }

let delay_us policy rng ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_us: attempt < 1";
  let rec grow d k = if k <= 1 || d >= policy.cap_us then d else grow (d * policy.factor) (k - 1) in
  let d = min policy.cap_us (grow policy.base_us attempt) in
  d + Bss_util.Prng.int rng ((d / 2) + 1)

let wait us =
  if us > 0 then begin
    let stop = Int64.add (Monotonic_clock.now ()) (Int64.mul (Int64.of_int us) 1_000L) in
    while Int64.compare (Monotonic_clock.now ()) stop < 0 do
      ()
    done
  end
