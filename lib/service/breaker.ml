module Guard = Bss_resilience.Guard

type state =
  | Closed of { failures : int }
  | Open of { remaining : int }
  | Half_open of { probing : bool }

type route = Requested | Probe | Fallback

type t = {
  k : int;
  cooldown : int;
  lock : Mutex.t;
  mutable state : state;
  mutable transitions : string list;  (* newest first *)
}

let make ~k ~cooldown () =
  if k < 1 then invalid_arg "Breaker.make: k < 1";
  if cooldown < 1 then invalid_arg "Breaker.make: cooldown < 1";
  { k; cooldown; lock = Mutex.create (); state = Closed { failures = 0 }; transitions = [] }

let state t = Mutex.protect t.lock (fun () -> t.state)

let name = function Closed _ -> "closed" | Open _ -> "open" | Half_open _ -> "half-open"

let shift t next =
  if Bss_obs.Probe.enabled () then Bss_obs.Probe.count ("service.breaker." ^ name next);
  t.transitions <- (name t.state ^ "->" ^ name next) :: t.transitions;
  t.state <- next

let route t =
  (* Decide-and-mark is one critical section: when several domains race a
     half-open breaker, exactly one caller observes [probing = false] and
     wins the probe; the rest see the marked state and fall back. The
     guard point fires inside the section so a chaos raise leaves the
     probe unmarked — the very next route may legitimately re-probe, and
     the lock is released on the way out ([Mutex.protect]). *)
  Mutex.protect t.lock (fun () ->
      match t.state with
      | Closed _ -> Requested
      | Open _ -> Fallback
      | Half_open { probing = true } -> Fallback
      | Half_open { probing = false } ->
        Guard.point "service.breaker.probe";
        t.state <- Half_open { probing = true };
        Probe)

let record_locked t ~route ~ok =
  match (t.state, route) with
  | Closed { failures }, Requested ->
    if ok then t.state <- Closed { failures = 0 }
    else if failures + 1 >= t.k then shift t (Open { remaining = t.cooldown })
    else t.state <- Closed { failures = failures + 1 }
  | Open { remaining }, Fallback ->
    if remaining <= 1 then shift t (Half_open { probing = false })
    else t.state <- Open { remaining = remaining - 1 }
  | Half_open _, Probe ->
    if ok then shift t (Closed { failures = 0 }) else shift t (Open { remaining = t.cooldown })
  | Half_open _, Fallback -> ()
  | _, _ ->
    (* a route decided under an older state (the wave was dispatched
       before a transition landed): requested-route outcomes still count
       in closed state above; anything else is informational only *)
    ()

let record t ~route ~ok = Mutex.protect t.lock (fun () -> record_locked t ~route ~ok)
let transitions t = Mutex.protect t.lock (fun () -> List.rev t.transitions)
