module Guard = Bss_resilience.Guard

type state =
  | Closed of { failures : int }
  | Open of { remaining : int }
  | Half_open of { probing : bool }

type route = Requested | Probe | Fallback

type t = {
  k : int;
  cooldown : int;
  mutable state : state;
  mutable transitions : string list;  (* newest first *)
}

let make ~k ~cooldown () =
  if k < 1 then invalid_arg "Breaker.make: k < 1";
  if cooldown < 1 then invalid_arg "Breaker.make: cooldown < 1";
  { k; cooldown; state = Closed { failures = 0 }; transitions = [] }

let state t = t.state

let name = function Closed _ -> "closed" | Open _ -> "open" | Half_open _ -> "half-open"

let shift t next =
  if Bss_obs.Probe.enabled () then Bss_obs.Probe.count ("service.breaker." ^ name next);
  t.transitions <- (name t.state ^ "->" ^ name next) :: t.transitions;
  t.state <- next

let route t =
  match t.state with
  | Closed _ -> Requested
  | Open _ -> Fallback
  | Half_open { probing = true } -> Fallback
  | Half_open { probing = false } ->
    Guard.point "service.breaker.probe";
    t.state <- Half_open { probing = true };
    Probe

let record t ~route ~ok =
  match (t.state, route) with
  | Closed { failures }, Requested ->
    if ok then t.state <- Closed { failures = 0 }
    else if failures + 1 >= t.k then shift t (Open { remaining = t.cooldown })
    else t.state <- Closed { failures = failures + 1 }
  | Open { remaining }, Fallback ->
    if remaining <= 1 then shift t (Half_open { probing = false })
    else t.state <- Open { remaining = remaining - 1 }
  | Half_open _, Probe ->
    if ok then shift t (Closed { failures = 0 }) else shift t (Open { remaining = t.cooldown })
  | Half_open _, Fallback -> ()
  | _, _ ->
    (* a route decided under an older state (the wave was dispatched
       before a transition landed): requested-route outcomes still count
       in closed state above; anything else is informational only *)
    ()

let transitions t = List.rev t.transitions
