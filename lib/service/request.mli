(** Solve requests: the unit of work the batch-service runtime schedules.

    A request names an instance — either an on-disk instance file or a
    seeded draw from a workload family — together with the problem variant
    and algorithm to run. Realization is deterministic: equal requests
    give equal instances, so a batch killed and resumed re-solves exactly
    the work the checkpoint journal does not cover. *)

open Bss_instances
open Bss_core

type source =
  | File of string  (** path to an {!Instance.of_string} file *)
  | Gen of { family : string; seed : int; m : int; n : int }
      (** a {!Bss_workloads.Generator} family drawn under [seed] *)

type t = {
  id : string;  (** unique within a batch; the journal key *)
  variant : Variant.t;
  algorithm : Solver.algorithm;
  source : source;
}

(** [instance t] realizes the request's instance.
    @raise Bss_resilience.Error.Error
      ([Invalid_input]) on a malformed instance file or an unknown
      family. *)
val instance : t -> Instance.t

(** [of_batch_string s] parses a batch file: one request per line,

    {v
    <id> <variant> <algorithm> file <path>
    <id> <variant> <algorithm> gen <family> <seed> <m> <n>
    v}

    where [<variant>] is [nonp]/[pmtn]/[split] and [<algorithm>] is [2],
    [3/2] or [3/2+1/<k>]. Blank lines and [#] comments are skipped.
    @raise Bss_resilience.Error.Error
      ([Invalid_input] with the 1-based line) on a malformed line or a
      duplicate id. *)
val of_batch_string : string -> t list

(** One batch-file line (inverse of {!of_batch_string} for one request). *)
val to_line : t -> string

(** [soak_stream ~seed ~requests] is a deterministic soak workload:
    [requests] generated requests round-robining the workload families and
    variants, algorithm 3/2, ids ["soak-<family>-<i>"], sizes drawn from a
    PRNG derived from [(seed, i)] (so any sub-batch realizes identically
    regardless of processing order). *)
val soak_stream : seed:int -> requests:int -> t list
