(** Solve requests: the unit of work the batch-service runtime schedules.

    A request names an instance — either an on-disk instance file or a
    seeded draw from a workload family — together with the problem variant
    and algorithm to run. Realization is deterministic: equal requests
    give equal instances, so a batch killed and resumed re-solves exactly
    the work the checkpoint journal does not cover. *)

open Bss_instances
open Bss_core

type source =
  | File of string  (** path to an {!Instance.of_string} file *)
  | Gen of { family : string; seed : int; m : int; n : int }
      (** a {!Bss_workloads.Generator} family drawn under [seed] *)

type t = {
  id : string;  (** unique within a batch; the journal key *)
  tenant : string;  (** admission-quota + shard key; {!default_tenant} for batch work *)
  variant : Variant.t;
  algorithm : Solver.algorithm;
  source : source;
}

(** ["default"] — the tenant of batch-file and plain soak requests. The
    socket front end spreads default-tenant work round-robin across the
    worker pool; any other tenant is pinned to its hash shard
    ({!Bss_util.Strhash.shard}). *)
val default_tenant : string

(** [instance t] realizes the request's instance.
    @raise Bss_resilience.Error.Error
      ([Invalid_input]) on a malformed instance file or an unknown
      family. *)
val instance : t -> Instance.t

(** [of_batch_string s] parses a batch file: one request per line,

    {v
    <id> <variant> <algorithm> file <path>
    <id> <variant> <algorithm> gen <family> <seed> <m> <n>
    v}

    where [<variant>] is [nonp]/[pmtn]/[split] and [<algorithm>] is [2],
    [3/2] or [3/2+1/<k>]. Blank lines and [#] comments are skipped.
    @raise Bss_resilience.Error.Error
      ([Invalid_input] with the 1-based line) on a malformed line or a
      duplicate id. *)
val of_batch_string : string -> t list

(** One batch-file line (inverse of {!of_batch_string} for one request).
    The tenant is not represented — batch files are single-tenant. *)
val to_line : t -> string

(** [variant_of_string ~line s] parses [nonp]/[pmtn]/[split] (and their
    long forms); [line] tags the typed error on failure.
    @raise Bss_resilience.Error.Error ([Invalid_input]) otherwise. *)
val variant_of_string : line:int -> string -> Variant.t

(** [algorithm_of_string ~line s] parses [2], [3/2] or [3/2+1/<k>].
    @raise Bss_resilience.Error.Error ([Invalid_input]) otherwise. *)
val algorithm_of_string : line:int -> string -> Solver.algorithm

(** Inverse of {!algorithm_of_string} (["3/2+1/4"] prints as ["3/2+1/4"]). *)
val algorithm_to_string : Solver.algorithm -> string

(** [soak_stream ?tenants ~seed ~requests ()] is a deterministic soak
    workload: [requests] generated requests round-robining the workload
    families and variants, algorithm 3/2, ids ["soak-<family>-<i>"], sizes
    drawn from a PRNG derived from [(seed, i)] (so any sub-batch realizes
    identically regardless of processing order). [tenants] round-robins
    tenant names over the stream (default: all {!default_tenant}); tenant
    assignment does not perturb the realized instances. *)
val soak_stream : ?tenants:string list -> seed:int -> requests:int -> unit -> t list
