(** A per-variant circuit breaker over the degradation ladder.

    The runtime keeps one breaker per problem variant. While {e closed},
    requests run their requested algorithm; [k] consecutive {e ladder
    failures} (a request that had to leave its requested rung, or aborted
    outright) trip the breaker {e open}, and the next [cooldown] requests
    on that variant are routed straight to the certified 2-approximation
    rung (Theorem 1) without touching the failing search. When the
    cooldown is spent the breaker goes {e half-open}: exactly one probe
    request runs the requested algorithm again — success closes the
    breaker, failure re-opens it for another cooldown.

    In the batch runtime all decisions are made and recorded on the
    coordinator domain in request order, so breaker behavior is
    deterministic for a fixed request stream no matter how many worker
    domains solve. The state machine is nevertheless mutex-guarded:
    {!route} decides {e and} marks the half-open probe in one critical
    section, so concurrent callers racing a half-open breaker admit
    exactly one probe — the losers get [Fallback], never a raced second
    probe (pinned by a multi-domain test in [test/test_service.ml]). *)

type state =
  | Closed of { failures : int }  (** consecutive ladder failures so far *)
  | Open of { remaining : int }  (** fallback-routed requests left before probing *)
  | Half_open of { probing : bool }  (** [probing] once the probe is dispatched *)

type route =
  | Requested  (** run the request's own algorithm *)
  | Probe  (** run the requested algorithm as the half-open probe *)
  | Fallback  (** route to the certified 2-approx rung *)

type t

(** [make ~k ~cooldown ()] — trip after [k] >= 1 consecutive failures;
    stay open for [cooldown] >= 1 fallback-routed requests. *)
val make : k:int -> cooldown:int -> unit -> t

val state : t -> state

(** [route t] decides how the next request on this variant runs, and
    marks the probe in flight when it returns [Probe] (so later routes —
    from this domain or a concurrent one — fall back until the probe's
    outcome arrives; decide-and-mark is atomic).
    A [Probe] decision fires {!Bss_resilience.Guard.point}
    ["service.breaker.probe"]; an armed chaos fault there escapes as
    {!Bss_resilience.Chaos.Injected} and the caller must treat the probe
    as failed. *)
val route : t -> route

(** [record t ~route ~ok] feeds one outcome back, in request order.
    [ok = false] means a ladder failure. Fallback outcomes only count
    down the open cooldown; they never close or trip the breaker. *)
val record : t -> route:route -> ok:bool -> unit

(** Transitions so far, oldest first, as ["closed->open"],
    ["open->half-open"], ["half-open->closed"], ["half-open->open"]. *)
val transitions : t -> string list
