open Bss_util
open Bss_instances
open Bss_core
module Rerror = Bss_resilience.Error
module Guard = Bss_resilience.Guard
module Chaos = Bss_resilience.Chaos
module Probe = Bss_obs.Probe
module Hist = Bss_obs.Hist
module Event = Bss_obs.Event
module Trace_ctx = Bss_obs.Trace_ctx
module Slo = Bss_obs.Slo

type config = {
  queue_capacity : int;
  burst : int;
  workers : int option;
  retries : int;
  backoff : Backoff.policy;
  breaker_k : int;
  breaker_cooldown : int;
  deadline_ms : int option;
  fuel : int option;
  checkpoint_every : int;
  chaos : int option;
  seed : int;
  metrics_every : int option;
  trace_sample : int option;
  slo : Slo.t option;
}

let default_config =
  {
    queue_capacity = 64;
    burst = 64;
    workers = None;
    retries = 2;
    backoff = Backoff.default;
    breaker_k = 3;
    breaker_cooldown = 4;
    deadline_ms = None;
    fuel = None;
    checkpoint_every = 8;
    chaos = None;
    seed = 0;
    metrics_every = None;
    trace_sample = None;
    slo = None;
  }

type status = Done | Rejected | Aborted

type outcome = {
  request : Request.t;
  status : status;
  rung : string option;
  makespan : string option;
  routed : string;
  retries_used : int;
  degraded : bool;
  from_checkpoint : bool;
  error : Rerror.t option;
  latency_ns : int64;
}

type summary = {
  outcomes : outcome list;
  total : int;
  completed : int;
  checkpointed : int;
  rejected : int;
  aborted : int;
  dropped : int;
  not_admitted : int;
  retries : int;
  rungs : (string * int) list;
  breaker : (Variant.t * string list) list;
  queue_peak : int;
  waves : int;
  flush_failures : int;
  journal_dirty : int;
  interrupted : bool;
  hists : (string * Hist.snapshot) list;
  traces : Trace_ctx.trace list;
  slo_verdict : Slo.verdict option;
}

(* deterministic across processes, unlike Hashtbl.hash's documented-but-
   version-dependent mixing: retry jitter and chaos plans derived from a
   request id must replay identically on resume *)
let id_hash s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land max_int) s;
  !h

(* ---------------- the per-request worker ---------------- *)

type wres =
  | Wdone of { rung : string; makespan : string; degraded : bool; retries_used : int; latency_ns : int64 }
  | Waborted of { error : Rerror.t; retries_used : int; latency_ns : int64 }

let request_sites = Chaos.sites @ [ "service.solve" ]

(* Retryable failures are crashes escaping the solve envelope (injected or
   real) and uncertified terminal-rung results; a degraded-but-certified
   result (the 2-approx rung) is accepted as-is. Chaos plans are re-drawn
   per attempt from (chaos, id, attempt) — a transient-fault model that is
   independent of processing order, so retries and resumes replay
   identically. *)
let process ?(tctx = Trace_ctx.disabled) config (request : Request.t) algorithm =
  let t0 = Monotonic_clock.now () in
  let latency () = Int64.sub (Monotonic_clock.now ()) t0 in
  match Request.instance request with
  | exception Rerror.Error e -> Waborted { error = e; retries_used = 0; latency_ns = latency () }
  | exception exn -> Waborted { error = Rerror.Internal exn; retries_used = 0; latency_ns = latency () }
  | inst ->
    let rng = Prng.create (config.seed lxor id_hash request.id) in
    let plan attempt =
      match config.chaos with
      | None -> []
      | Some c ->
        Chaos.plan_of_seed ~sites:request_sites
          (c lxor id_hash request.id lxor (attempt * 0x9e3779b9))
    in
    let rec attempt a =
      let solve_once () =
        Guard.point "service.solve";
        Solver.solve_robust ?deadline_ms:config.deadline_ms ?fuel:config.fuel ~algorithm
          request.variant inst
      in
      (* one "attempt" frame per try: its duration is the solve (the
         backoff before a retry lives in its own "backoff" frame), its
         attrs say how the try ended; all no-ops when tracing is off *)
      let tok = Trace_ctx.enter tctx "attempt" in
      if Trace_ctx.enabled tctx then begin
        Trace_ctx.add_attr tctx "phase" (Trace_ctx.S "solve");
        Trace_ctx.add_attr tctx "n" (Trace_ctx.I a)
      end;
      match Chaos.with_plan (plan a) solve_once with
      | r ->
        if Trace_ctx.enabled tctx then begin
          Trace_ctx.add_attr tctx "rung" (Trace_ctx.S r.Solver.rung);
          Trace_ctx.add_attr tctx "degraded" (Trace_ctx.B (r.Solver.attempts <> []))
        end;
        Trace_ctx.leave tctx tok;
        if r.Solver.rung = "list-scheduling" && a < config.retries then retry a
        else
          Wdone
            {
              rung = r.Solver.rung;
              makespan = Rat.to_string (Schedule.makespan r.Solver.schedule);
              degraded = r.Solver.attempts <> [];
              retries_used = a;
              latency_ns = latency ();
            }
      | exception exn ->
        if Trace_ctx.enabled tctx then
          Trace_ctx.add_attr tctx "error" (Trace_ctx.S (Printexc.to_string exn));
        Trace_ctx.leave tctx tok;
        if a < config.retries then retry a
        else Waborted { error = Rerror.Internal exn; retries_used = a; latency_ns = latency () }
    and retry a =
      let tok = Trace_ctx.enter tctx "backoff" in
      if Trace_ctx.enabled tctx then Trace_ctx.add_attr tctx "phase" (Trace_ctx.S "retry");
      Backoff.wait (Backoff.delay_us config.backoff rng ~attempt:(a + 1));
      Trace_ctx.leave tctx tok;
      attempt (a + 1)
    in
    attempt 0

(* ---------------- the coordinator loop ---------------- *)

let rec take n = function
  | [] -> ([], [])
  | xs when n = 0 -> ([], xs)
  | x :: xs ->
    let front, rest = take (n - 1) xs in
    (x :: front, rest)

let run ?journal ?(should_stop = fun () -> false) ?(emit_metrics = ignore) config
    (requests : Request.t list) =
  if config.burst < 1 then invalid_arg "Runtime.run: burst < 1";
  if config.retries < 0 then invalid_arg "Runtime.run: retries < 0";
  if config.checkpoint_every < 1 then invalid_arg "Runtime.run: checkpoint_every < 1";
  (* the armed chaos plan is process-global scoped state, so fault
     injection forces a single worker domain *)
  let workers =
    if config.chaos <> None then 1 else Option.value config.workers ~default:(Parallel.recommended ())
  in
  let queue = Bqueue.create ~capacity:config.queue_capacity in
  let breakers =
    List.map
      (fun v -> (v, (Breaker.make ~k:config.breaker_k ~cooldown:config.breaker_cooldown (), ref 0)))
      Variant.all
  in
  let breaker v = fst (List.assoc v breakers) in
  (* surface each state change once: a counter plus a typed event, fed
     after every route/record (the only operations that can flip state) *)
  let note_transitions v =
    let b, seen = List.assoc v breakers in
    let ts = Breaker.transitions b in
    let total = List.length ts in
    if total > !seen then begin
      if Probe.enabled () then
        List.iteri
          (fun i change ->
            if i >= !seen then begin
              Probe.count "service.breaker.transitions";
              Probe.event (Event.Breaker_transition { variant = Variant.to_string v; change })
            end)
          ts;
      seen := total
    end
  in
  let outcomes : (string, outcome) Hashtbl.t = Hashtbl.create 64 in
  let record_outcome o = Hashtbl.replace outcomes o.request.Request.id o in
  let retries_total = ref 0 in
  let queue_peak = ref 0 in
  let waves = ref 0 in
  let flush_failures = ref 0 in
  let interrupted = ref false in
  let not_admitted = ref 0 in
  (* Service histograms live on the coordinator: every observation is
     derived from data the dispatch loop already holds (worker latencies
     come back in the wave results), so recording needs no cross-domain
     sink and works with or without an installed Probe recording —
     [--metrics-every] and the summary read these, [--profile] sees the
     mirrored copies. *)
  let hist_tbl : (string, Hist.t) Hashtbl.t = Hashtbl.create 8 in
  (* [?ex] attaches a trace id to the observation's bucket as an
     exemplar; attachment happens on the coordinator in request order,
     so the ring eviction replays deterministically *)
  let hobserve ?ex name v =
    let h =
      match Hashtbl.find_opt hist_tbl name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.add hist_tbl name h;
        h
    in
    (match ex with Some id -> Hist.record_exemplar h v id | None -> Hist.record h v);
    if Probe.enabled () then Probe.observe name v
  in
  let hist_snapshots () =
    Hashtbl.fold (fun k h acc -> (k, Hist.snapshot h) :: acc) hist_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let admitted_at : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  let completed_live = ref 0 and rejected_live = ref 0 and aborted_live = ref 0 in
  (* Request-scoped tracing: one context per admitted request, id
     derived from (seed, admission sequence, request id) — no wall
     clock. The context is written by exactly one party at a time
     (coordinator at admission/completion, the worker in between), so
     no synchronization is needed. Finished traces accumulate here and
     are tail-sampled once at the end of the run. *)
  let tracing = config.trace_sample <> None in
  let admit_seq = ref 0 in
  let ctxs : (string, Trace_ctx.t) Hashtbl.t = Hashtbl.create 64 in
  let traces_rev = ref [] in
  let finish_ctx ctx =
    match Trace_ctx.finish ctx with
    | Some t -> traces_rev := t :: !traces_rev
    | None -> ()
  in
  (* the per-request bound that marks a trace SLO-violating at the tail
     sampler: the tightest latency objective aimed at the solve hists *)
  let solve_slo_bound =
    match config.slo with
    | None -> None
    | Some spec ->
      List.fold_left
        (fun acc (o : Slo.objective) ->
          match o.Slo.target with
          | Slo.Latency { hist; max_ns; _ }
            when String.length hist >= 16 && String.sub hist 0 16 = "service.solve_ns" -> (
            match acc with Some b -> Some (Float.min b max_ns) | None -> Some max_ns)
          | _ -> acc)
        None spec.Slo.objectives
  in
  let slo_engine = Option.map Slo.engine config.slo in
  let current_sample () =
    {
      Slo.completed = !completed_live;
      rejected = !rejected_live;
      aborted = !aborted_live;
      retries = !retries_total;
      hists = hist_snapshots ();
    }
  in
  let last_metrics = ref 0 in
  let metrics_line () =
    Json.obj
      ([
         ("schema", Json.str Bss_obs.Offline.metrics_schema_version);
         ( "metrics",
           Json.obj
             [
               ("completed", Json.int !completed_live);
               ("rejected", Json.int !rejected_live);
               ("aborted", Json.int !aborted_live);
               ("retries", Json.int !retries_total);
               ("queue_peak", Json.int !queue_peak);
               ("waves", Json.int !waves);
               ("hists", Json.obj (List.map (fun (k, h) -> (k, Hist.to_json h)) (hist_snapshots ())));
             ] );
       ]
      @
      match slo_engine with
      | None -> []
      | Some e -> [ ("slo", Slo.verdict_json (Slo.window e (current_sample ()))) ])
  in
  let maybe_emit_metrics () =
    match config.metrics_every with
    | Some every when every > 0 && !completed_live - !last_metrics >= every ->
      last_metrics := !completed_live;
      emit_metrics (metrics_line ())
    | _ -> ()
  in
  (* restore checkpointed completions: journal entries are trusted verbatim *)
  let checkpointed = ref 0 in
  (match journal with
  | None -> ()
  | Some j ->
    List.iter
      (fun (r : Request.t) ->
        if Journal.mem j r.Request.id then begin
          let e = List.find (fun (e : Journal.entry) -> e.Journal.id = r.Request.id) (Journal.entries j) in
          incr checkpointed;
          record_outcome
            {
              request = r;
              status = Done;
              rung = Some e.Journal.rung;
              makespan = Some e.Journal.makespan;
              routed = "-";
              retries_used = 0;
              degraded = false;
              from_checkpoint = true;
              error = None;
              latency_ns = 0L;
            }
        end)
      requests);
  if Probe.enabled () && !checkpointed > 0 then Probe.count ~n:!checkpointed "service.resumed";
  let pending = List.filter (fun (r : Request.t) -> not (Hashtbl.mem outcomes r.Request.id)) requests in
  let try_flush () =
    match journal with
    | None -> ()
    | Some j -> (
      let t0 = Monotonic_clock.now () in
      match Journal.flush j with
      | () ->
        hobserve "service.journal.flush_ns" (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0));
        if Probe.enabled () then Probe.count "service.journal.flush_ok"
      | exception _ ->
        incr flush_failures;
        if Probe.enabled () then Probe.count "service.journal.flush_failed")
  in
  let admit r =
    let seq = !admit_seq in
    incr admit_seq;
    let ctx =
      if tracing then Trace_ctx.make ~seed:config.seed ~seq ~request_id:r.Request.id
      else Trace_ctx.disabled
    in
    if Trace_ctx.enabled ctx then begin
      Trace_ctx.add_attr ctx "variant" (Trace_ctx.S (Variant.to_string r.Request.variant));
      Trace_ctx.add_attr ctx "tenant" (Trace_ctx.S "default")
    end;
    let reject error =
      incr rejected_live;
      if Probe.enabled () then Probe.count "service.rejected";
      if Trace_ctx.enabled ctx then begin
        Trace_ctx.add_attr ctx "outcome" (Trace_ctx.S "rejected");
        Trace_ctx.add_attr ctx "error" (Trace_ctx.S (Rerror.to_string error));
        finish_ctx ctx
      end;
      record_outcome
        {
          request = r;
          status = Rejected;
          rung = None;
          makespan = None;
          routed = "-";
          retries_used = 0;
          degraded = false;
          from_checkpoint = false;
          error = Some error;
          latency_ns = 0L;
        }
    in
    match Bqueue.admit queue r with
    | Ok () ->
      Hashtbl.replace admitted_at r.Request.id (Monotonic_clock.now ());
      if Trace_ctx.enabled ctx then Hashtbl.replace ctxs r.Request.id ctx;
      if Probe.enabled () then Probe.count "service.enqueued"
    | Error e -> reject e
    | exception exn -> reject (Rerror.Internal exn)
  in
  let dispatch wave =
    Probe.span "service.wave" @@ fun () ->
    incr waves;
    queue_peak := max !queue_peak (List.length wave);
    if Probe.enabled () then begin
      Probe.count "service.wave";
      Probe.count ~n:(List.length wave) "service.queue.depth"
    end;
    let wave_start = Monotonic_clock.now () in
    let ctx_of id = Option.value ~default:Trace_ctx.disabled (Hashtbl.find_opt ctxs id) in
    List.iter
      (fun (r : Request.t) ->
        match Hashtbl.find_opt admitted_at r.Request.id with
        | Some t ->
          Hashtbl.remove admitted_at r.Request.id;
          let wait_ns = Int64.sub wave_start t in
          let ctx = ctx_of r.Request.id in
          if Trace_ctx.enabled ctx then begin
            Trace_ctx.add_span ctx "queue.wait" ~dur_ns:wait_ns
              ~attrs:[ ("phase", Trace_ctx.S "queue") ];
            hobserve ~ex:(Trace_ctx.trace_id ctx) "service.queue.wait_ns" (Int64.to_float wait_ns)
          end
          else hobserve "service.queue.wait_ns" (Int64.to_float wait_ns)
        | None -> ())
      wave;
    (* route through the breaker on the coordinator, in request order *)
    let routed =
      List.map
        (fun (r : Request.t) ->
          let b = breaker r.Request.variant in
          let res =
            match Breaker.route b with
            | Breaker.Requested -> (r, Breaker.Requested, "requested", r.Request.algorithm)
            | Breaker.Probe -> (r, Breaker.Probe, "probe", r.Request.algorithm)
            | Breaker.Fallback -> (r, Breaker.Fallback, "fallback", Solver.Approx2)
            | exception _ ->
              (* an injected fault on the half-open probe point: the probe
                 failed before it ran — re-open and fall back *)
              Breaker.record b ~route:Breaker.Probe ~ok:false;
              (r, Breaker.Fallback, "fallback", Solver.Approx2)
          in
          note_transitions r.Request.variant;
          (let ctx = ctx_of r.Request.id in
           if Trace_ctx.enabled ctx then
             let _, _, routed_as, _ = res in
             Trace_ctx.add_attr ctx "route" (Trace_ctx.S routed_as));
          res)
        wave
    in
    (* the worker domain takes over the request's trace context for the
       duration of [process]; the coordinator is blocked in
       [map_results] until every worker is joined, so ownership passes
       cleanly back without synchronization *)
    let results =
      Parallel.map_results ~domains:workers ~retries:0
        (fun (r, _, _, algorithm) -> process ~tctx:(ctx_of r.Request.id) config r algorithm)
        routed
    in
    List.iter2
      (fun (r, route, routed_as, _) result ->
        let wres =
          match result with
          | Ok w -> w
          | Error (f : Parallel.failure) ->
            (* [process] catches everything, so this is belt-and-braces *)
            Waborted { error = Rerror.Internal f.Parallel.exn; retries_used = 0; latency_ns = 0L }
        in
        let failed_ladder =
          match wres with Wdone d -> d.degraded | Waborted _ -> true
        in
        Breaker.record (breaker r.Request.variant) ~route ~ok:(not failed_ladder);
        note_transitions r.Request.variant;
        let ctx = ctx_of r.Request.id in
        Hashtbl.remove ctxs r.Request.id;
        let ex = if Trace_ctx.enabled ctx then Some (Trace_ctx.trace_id ctx) else None in
        (match wres with
        | Wdone d ->
          retries_total := !retries_total + d.retries_used;
          incr completed_live;
          hobserve ?ex
            ("service.solve_ns." ^ Variant.to_string r.Request.variant)
            (Int64.to_float d.latency_ns);
          hobserve "service.retries_per_request" (float_of_int d.retries_used);
          if Probe.enabled () then begin
            Probe.count "service.done";
            if d.retries_used > 0 then Probe.count ~n:d.retries_used "service.retries";
            if d.degraded then Probe.count "service.degraded"
          end;
          Option.iter
            (fun j ->
              let t0 = Monotonic_clock.now () in
              Journal.add j { Journal.id = r.Request.id; rung = d.rung; makespan = d.makespan };
              if Trace_ctx.enabled ctx then
                Trace_ctx.add_span ctx "journal.append"
                  ~dur_ns:(Int64.sub (Monotonic_clock.now ()) t0)
                  ~attrs:[ ("phase", Trace_ctx.S "journal") ])
            journal;
          if Trace_ctx.enabled ctx then begin
            Trace_ctx.add_attr ctx "outcome" (Trace_ctx.S "done");
            Trace_ctx.add_attr ctx "rung" (Trace_ctx.S d.rung);
            Trace_ctx.add_attr ctx "retries" (Trace_ctx.I d.retries_used);
            Trace_ctx.add_attr ctx "degraded" (Trace_ctx.B d.degraded);
            (match solve_slo_bound with
            | Some bound when Int64.to_float d.latency_ns > bound ->
              Trace_ctx.add_attr ctx "slo_violation" (Trace_ctx.B true)
            | _ -> ());
            finish_ctx ctx
          end;
          record_outcome
            {
              request = r;
              status = Done;
              rung = Some d.rung;
              makespan = Some d.makespan;
              routed = routed_as;
              retries_used = d.retries_used;
              degraded = d.degraded;
              from_checkpoint = false;
              error = None;
              latency_ns = d.latency_ns;
            }
        | Waborted a ->
          retries_total := !retries_total + a.retries_used;
          incr aborted_live;
          hobserve "service.retries_per_request" (float_of_int a.retries_used);
          if Probe.enabled () then begin
            Probe.count "service.aborted";
            if a.retries_used > 0 then Probe.count ~n:a.retries_used "service.retries"
          end;
          if Trace_ctx.enabled ctx then begin
            Trace_ctx.add_attr ctx "outcome" (Trace_ctx.S "aborted");
            Trace_ctx.add_attr ctx "retries" (Trace_ctx.I a.retries_used);
            Trace_ctx.add_attr ctx "error" (Trace_ctx.S (Rerror.to_string a.error));
            finish_ctx ctx
          end;
          record_outcome
            {
              request = r;
              status = Aborted;
              rung = None;
              makespan = None;
              routed = routed_as;
              retries_used = a.retries_used;
              degraded = false;
              from_checkpoint = false;
              error = Some a.error;
              latency_ns = a.latency_ns;
            });
        match journal with
        | Some j when Journal.dirty j >= config.checkpoint_every -> try_flush ()
        | _ -> ())
      routed results
  in
  let rec loop pending =
    if should_stop () then begin
      interrupted := true;
      not_admitted := List.length pending
    end
    else
      match pending with
      | [] -> ()
      | _ ->
        let front, rest = take config.burst pending in
        List.iter admit front;
        dispatch (Bqueue.drain queue);
        maybe_emit_metrics ();
        loop rest
  in
  (* Coordinator-level fault plan: the service sites that fire outside the
     per-request scopes (admission, journal flush, breaker probe). The
     per-request plans armed inside [process] nest within it and mask it
     only for the duration of one solve, where no coordinator site fires. *)
  let coordinator_plan =
    match config.chaos with
    | None -> []
    | Some c ->
      let sites = [ "service.admit"; "service.breaker.probe"; "service.journal.flush" ] in
      Chaos.plan_of_seed ~sites ~spread:16 c
      @ Chaos.plan_of_seed ~sites ~spread:16 (c lxor 0x55aa77)
  in
  Chaos.with_plan coordinator_plan (fun () ->
      loop pending;
      (* the final flush must land even under an armed journal-flush fault:
         every retry advances the site's hit counter past the armed hits *)
      match journal with
      | None -> ()
      | Some j ->
        let rec final k = if Journal.dirty j > 0 && k > 0 then (try_flush (); final (k - 1)) in
        final 4);
  let ordered =
    List.filter_map (fun (r : Request.t) -> Hashtbl.find_opt outcomes r.Request.id) requests
  in
  let count p = List.length (List.filter p ordered) in
  let completed = count (fun o -> o.status = Done) in
  let rejected = count (fun o -> o.status = Rejected) in
  let aborted = count (fun o -> o.status = Aborted) in
  let rungs =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun o ->
        match o.rung with
        | Some rung -> Hashtbl.replace tbl rung (1 + Option.value ~default:0 (Hashtbl.find_opt tbl rung))
        | None -> ())
      ordered;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let final_hists = hist_snapshots () in
  (* Tail sampling: always keep the stories worth reading — errors,
     degradations, retried requests, SLO violations and every trace a
     histogram bucket cites as an exemplar (the acceptance contract:
     a p99 exemplar id must resolve to a full span tree in the trace
     file) — and reservoir-sample the uneventful rest under the run
     seed. Output is in admission order. *)
  let traces =
    match List.rev !traces_rev with
    | [] -> []
    | all ->
      let exemplar_ids =
        List.concat_map (fun (_, h) -> Hist.exemplar_ids h) final_hists |> List.sort_uniq compare
      in
      let interesting (t : Trace_ctx.trace) =
        (match Trace_ctx.attr t "outcome" with Some "done" -> false | _ -> true)
        || Trace_ctx.attr t "degraded" = Some "true"
        || (match Trace_ctx.attr t "retries" with Some r -> r <> "0" | None -> false)
        || Trace_ctx.attr t "slo_violation" = Some "true"
        || List.mem t.Trace_ctx.trace_id exemplar_ids
      in
      let must, rest = List.partition interesting all in
      let sampled =
        Trace_ctx.reservoir ~seed:config.seed ~k:(Option.value config.trace_sample ~default:0) rest
      in
      List.sort
        (fun (a : Trace_ctx.trace) (b : Trace_ctx.trace) -> compare a.Trace_ctx.seq b.Trace_ctx.seq)
        (must @ sampled)
  in
  let slo_verdict = Option.map (fun e -> Slo.final e (current_sample ())) slo_engine in
  {
    outcomes = ordered;
    total = List.length requests;
    completed;
    checkpointed = !checkpointed;
    rejected;
    aborted;
    dropped = List.length requests - List.length ordered - !not_admitted;
    not_admitted = !not_admitted;
    retries = !retries_total;
    rungs;
    breaker =
      List.filter_map
        (fun (v, (b, _)) -> match Breaker.transitions b with [] -> None | ts -> Some (v, ts))
        breakers;
    queue_peak = !queue_peak;
    waves = !waves;
    flush_failures = !flush_failures;
    journal_dirty = (match journal with None -> 0 | Some j -> Journal.dirty j);
    interrupted = !interrupted;
    hists = final_hists;
    traces;
    slo_verdict;
  }

(* ---------------- rendering ---------------- *)

let render_text s =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun o ->
      match o.status with
      | Done ->
        add "%-24s done     rung=%s makespan=%s routed=%s retries=%d%s\n" o.request.Request.id
          (Option.get o.rung) (Option.get o.makespan) o.routed o.retries_used
          (if o.from_checkpoint then " (checkpointed)" else "")
      | Rejected ->
        add "%-24s rejected %s\n" o.request.Request.id
          (Rerror.to_string (Option.get o.error))
      | Aborted ->
        add "%-24s aborted  %s\n" o.request.Request.id (Rerror.to_string (Option.get o.error)))
    s.outcomes;
  add "service: %d requests | done=%d (checkpointed=%d) rejected=%d aborted=%d dropped=%d not-admitted=%d retries=%d\n"
    s.total s.completed s.checkpointed s.rejected s.aborted s.dropped s.not_admitted s.retries;
  if s.rungs <> [] then
    add "rungs: %s\n" (String.concat " " (List.map (fun (r, k) -> Printf.sprintf "%s=%d" r k) s.rungs));
  List.iter
    (fun (v, ts) -> add "breaker[%s]: %s\n" (Variant.to_string v) (String.concat " " ts))
    s.breaker;
  add "queue: capacity-peak=%d waves=%d\n" s.queue_peak s.waves;
  add "journal: dirty=%d flush-failures=%d\n" s.journal_dirty s.flush_failures;
  (match s.traces with [] -> () | ts -> add "traces: %d sampled\n" (List.length ts));
  Option.iter (fun v -> add "%s" (Slo.verdict_text v)) s.slo_verdict;
  if s.interrupted then add "interrupted: drained cleanly\n";
  Buffer.contents buf

let render_json s =
  let outcome_json o =
    let status =
      match o.status with Done -> "done" | Rejected -> "rejected" | Aborted -> "aborted"
    in
    Json.obj
      ([ ("id", Json.str o.request.Request.id); ("status", Json.str status) ]
      @ (match o.rung with Some r -> [ ("rung", Json.str r) ] | None -> [])
      @ (match o.makespan with Some m -> [ ("makespan", Json.str m) ] | None -> [])
      @ [
          ("routed", Json.str o.routed);
          ("retries", Json.int o.retries_used);
          ("degraded", Json.bool o.degraded);
          ("checkpointed", Json.bool o.from_checkpoint);
        ]
      @ match o.error with Some e -> [ ("error", Rerror.to_json e) ] | None -> [])
  in
  let latency_total_us =
    List.fold_left (fun acc o -> Int64.add acc (Int64.div o.latency_ns 1_000L)) 0L s.outcomes
  in
  Json.obj
    ([
      ("schema", Json.str Bss_obs.Offline.metrics_schema_version);
      ("total", Json.int s.total);
      ("done", Json.int s.completed);
      ("checkpointed", Json.int s.checkpointed);
      ("rejected", Json.int s.rejected);
      ("aborted", Json.int s.aborted);
      ("dropped", Json.int s.dropped);
      ("not_admitted", Json.int s.not_admitted);
      ("retries", Json.int s.retries);
      ("rungs", Json.obj (List.map (fun (r, k) -> (r, Json.int k)) s.rungs));
      ( "breaker",
        Json.obj
          (List.map
             (fun (v, ts) -> (Variant.to_string v, Json.arr (List.map Json.str ts)))
             s.breaker) );
      ("queue_peak", Json.int s.queue_peak);
      ("waves", Json.int s.waves);
      ("flush_failures", Json.int s.flush_failures);
      ("journal_dirty", Json.int s.journal_dirty);
      ("interrupted", Json.bool s.interrupted);
      ("latency_total_us", Json.int64 latency_total_us);
      ("hists", Json.obj (List.map (fun (k, h) -> (k, Hist.to_json h)) s.hists));
    ]
    @ (match s.slo_verdict with
      | Some v -> [ ("slo", Slo.verdict_json v) ]
      | None -> [])
    @ [ ("outcomes", Json.arr (List.map outcome_json s.outcomes)) ])
