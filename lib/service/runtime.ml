open Bss_util
open Bss_instances
open Bss_core
module Rerror = Bss_resilience.Error
module Guard = Bss_resilience.Guard
module Chaos = Bss_resilience.Chaos
module Probe = Bss_obs.Probe
module Hist = Bss_obs.Hist
module Event = Bss_obs.Event
module Trace_ctx = Bss_obs.Trace_ctx
module Slo = Bss_obs.Slo
module Timeseries = Bss_obs.Timeseries

type config = {
  queue_capacity : int;
  burst : int;
  workers : int option;
  retries : int;
  backoff : Backoff.policy;
  breaker_k : int;
  breaker_cooldown : int;
  deadline_ms : int option;
  fuel : int option;
  checkpoint_every : int;
  chaos : int option;
  seed : int;
  metrics_every : int option;
  window_every : int option;
  trace_sample : int option;
  slo : Slo.t option;
}

let default_config =
  {
    queue_capacity = 64;
    burst = 64;
    workers = None;
    retries = 2;
    backoff = Backoff.default;
    breaker_k = 3;
    breaker_cooldown = 4;
    deadline_ms = None;
    fuel = None;
    checkpoint_every = 8;
    chaos = None;
    seed = 0;
    metrics_every = None;
    window_every = None;
    trace_sample = None;
    slo = None;
  }

type status = Done | Rejected | Aborted

type outcome = {
  request : Request.t;
  status : status;
  rung : string option;
  makespan : string option;
  routed : string;
  retries_used : int;
  degraded : bool;
  from_checkpoint : bool;
  error : Rerror.t option;
  latency_ns : int64;
  queue_wait_ns : int64;
}

type summary = {
  outcomes : outcome list;
  total : int;
  completed : int;
  checkpointed : int;
  rejected : int;
  aborted : int;
  dropped : int;
  not_admitted : int;
  retries : int;
  rungs : (string * int) list;
  breaker : (Variant.t * string list) list;
  queue_peak : int;
  waves : int;
  flush_failures : int;
  journal_dirty : int;
  journal_salvaged : int;
  interrupted : bool;
  hists : (string * Hist.snapshot) list;
  traces : Trace_ctx.trace list;
  slo_verdict : Slo.verdict option;
}

(* deterministic across processes, unlike Hashtbl.hash's documented-but-
   version-dependent mixing: retry jitter and chaos plans derived from a
   request id must replay identically on resume *)
let id_hash = Strhash.djb2

(* A simulated process death must unwind the whole run, whatever catch-all
   it meets on the way out — containment would turn "the process died here"
   into "the request failed here". Every broad [exception] arm below calls
   this first. *)
let reraise_crash = function Chaos.Crashed _ as e -> raise e | _ -> ()

(* ---------------- the per-request worker ---------------- *)

type wres =
  | Wdone of { rung : string; makespan : string; degraded : bool; retries_used : int; latency_ns : int64 }
  | Waborted of { error : Rerror.t; retries_used : int; latency_ns : int64 }

let request_sites = Chaos.sites @ [ "service.solve" ]

(* Retryable failures are crashes escaping the solve envelope (injected or
   real) and uncertified terminal-rung results; a degraded-but-certified
   result (the 2-approx rung) is accepted as-is. Chaos plans are re-drawn
   per attempt from (chaos, id, attempt) — a transient-fault model that is
   independent of processing order, so retries and resumes replay
   identically. *)
let process ?(tctx = Trace_ctx.disabled) config (request : Request.t) algorithm =
  let t0 = Monotonic_clock.now () in
  let latency () = Int64.sub (Monotonic_clock.now ()) t0 in
  match Request.instance request with
  | exception Rerror.Error e -> Waborted { error = e; retries_used = 0; latency_ns = latency () }
  | exception exn ->
    reraise_crash exn;
    Waborted { error = Rerror.Internal exn; retries_used = 0; latency_ns = latency () }
  | inst ->
    let rng = Prng.create (config.seed lxor id_hash request.id) in
    let plan attempt =
      match config.chaos with
      | None -> []
      | Some c ->
        Chaos.plan_of_seed ~sites:request_sites
          (c lxor id_hash request.id lxor (attempt * 0x9e3779b9))
    in
    let rec attempt a =
      let solve_once () =
        Guard.point "service.solve";
        Solver.solve_robust ?deadline_ms:config.deadline_ms ?fuel:config.fuel ~algorithm
          request.variant inst
      in
      (* one "attempt" frame per try: its duration is the solve (the
         backoff before a retry lives in its own "backoff" frame), its
         attrs say how the try ended; all no-ops when tracing is off *)
      let tok = Trace_ctx.enter tctx "attempt" in
      if Trace_ctx.enabled tctx then begin
        Trace_ctx.add_attr tctx "phase" (Trace_ctx.S "solve");
        Trace_ctx.add_attr tctx "n" (Trace_ctx.I a)
      end;
      match Chaos.with_plan (plan a) solve_once with
      | r ->
        if Trace_ctx.enabled tctx then begin
          Trace_ctx.add_attr tctx "rung" (Trace_ctx.S r.Solver.rung);
          Trace_ctx.add_attr tctx "degraded" (Trace_ctx.B (r.Solver.attempts <> []))
        end;
        Trace_ctx.leave tctx tok;
        if r.Solver.rung = "list-scheduling" && a < config.retries then retry a
        else
          Wdone
            {
              rung = r.Solver.rung;
              makespan = Rat.to_string (Schedule.makespan r.Solver.schedule);
              degraded = r.Solver.attempts <> [];
              retries_used = a;
              latency_ns = latency ();
            }
      | exception exn ->
        if Trace_ctx.enabled tctx then
          Trace_ctx.add_attr tctx "error" (Trace_ctx.S (Printexc.to_string exn));
        Trace_ctx.leave tctx tok;
        reraise_crash exn;
        if a < config.retries then retry a
        else Waborted { error = Rerror.Internal exn; retries_used = a; latency_ns = latency () }
    and retry a =
      let tok = Trace_ctx.enter tctx "backoff" in
      if Trace_ctx.enabled tctx then Trace_ctx.add_attr tctx "phase" (Trace_ctx.S "retry");
      let d = Backoff.delay_us config.backoff rng ~attempt:(a + 1) in
      (* the jitter sequence is a pure function of (seed, id, attempt),
         so the merged histogram is identical across worker counts — the
         determinism test pins 1-worker == 4-worker snapshots *)
      if Probe.enabled () then Probe.observe "service.backoff.delay_us" (float_of_int d);
      Backoff.wait d;
      Trace_ctx.leave tctx tok;
      attempt (a + 1)
    in
    attempt 0

(* ---------------- the engine ---------------- *)

(* The wave machinery behind both drivers: [run] (batch: a request list
   admitted in bursts) and the socket front end ([Bss_net.Server]: frames
   admitted as they arrive, dispatched between select rounds). All mutable
   run state lives here; drivers own only their intake policy. *)
module Engine = struct
  type t = {
    config : config;
    workers : int;
    journal : Journal.t option;
    emit_metrics : string -> unit;
    queue : Request.t Bqueue.t;
    breakers : (Variant.t * (Breaker.t * int ref)) list;
    outcomes : (string, outcome) Hashtbl.t;
    mutable order : string list;  (* first-record order, newest first *)
    mutable recorded : int;
    mutable queued : int;
    retries_total : int ref;
    queue_peak : int ref;
    waves : int ref;
    flush_failures : int ref;
    interrupted : bool ref;
    not_admitted : int ref;
    checkpointed : int ref;
    hist_tbl : (string, Hist.t) Hashtbl.t;
    admitted_at : (string, int64) Hashtbl.t;
    completed_live : int ref;
    rejected_live : int ref;
    aborted_live : int ref;
    tracing : bool;
    admit_seq : int ref;
    ctxs : (string, Trace_ctx.t) Hashtbl.t;
    traces_rev : Trace_ctx.trace list ref;
    solve_slo_bound : float option;
    slo_engine : Slo.engine option;
    last_metrics : int ref;
    (* the live telemetry plane: a ring of windowed deltas, armed by
       [window_every]; [on_window] fans closed windows out to watchers *)
    ts : Timeseries.t option;
    mutable on_window : Timeseries.window -> unit;
    mutable windows_done : bool;
    (* last state numeric surfaced per variant, so the running sum of the
       [service.breaker.state.<v>] counter equals the current state *)
    breaker_gauge : (Variant.t * int ref) list;
  }

  let create ?journal ?(emit_metrics = ignore) config =
    if config.burst < 1 then invalid_arg "Runtime: burst < 1";
    if config.retries < 0 then invalid_arg "Runtime: retries < 0";
    if config.checkpoint_every < 1 then invalid_arg "Runtime: checkpoint_every < 1";
    (match config.window_every with
    | Some w when w < 1 -> invalid_arg "Runtime: window_every < 1"
    | _ -> ());
    (* the armed chaos plan is process-global scoped state, so fault
       injection forces a single worker domain *)
    let workers =
      if config.chaos <> None then 1
      else Option.value config.workers ~default:(Parallel.recommended ())
    in
    (* the per-request bound that marks a trace SLO-violating at the tail
       sampler: the tightest latency objective aimed at the solve hists *)
    let solve_slo_bound =
      match config.slo with
      | None -> None
      | Some spec ->
        List.fold_left
          (fun acc (o : Slo.objective) ->
            match o.Slo.target with
            | Slo.Latency { hist; max_ns; _ }
              when String.length hist >= 16 && String.sub hist 0 16 = "service.solve_ns" -> (
              match acc with Some b -> Some (Float.min b max_ns) | None -> Some max_ns)
            | _ -> acc)
          None spec.Slo.objectives
    in
    {
      config;
      workers;
      journal;
      emit_metrics;
      queue = Bqueue.create ~capacity:config.queue_capacity;
      breakers =
        List.map
          (fun v ->
            (v, (Breaker.make ~k:config.breaker_k ~cooldown:config.breaker_cooldown (), ref 0)))
          Variant.all;
      outcomes = Hashtbl.create 64;
      order = [];
      recorded = 0;
      queued = 0;
      retries_total = ref 0;
      queue_peak = ref 0;
      waves = ref 0;
      flush_failures = ref 0;
      interrupted = ref false;
      not_admitted = ref 0;
      checkpointed = ref 0;
      hist_tbl = Hashtbl.create 8;
      admitted_at = Hashtbl.create 64;
      completed_live = ref 0;
      rejected_live = ref 0;
      aborted_live = ref 0;
      tracing = config.trace_sample <> None;
      admit_seq = ref 0;
      ctxs = Hashtbl.create 64;
      traces_rev = ref [];
      solve_slo_bound;
      slo_engine = Option.map Slo.engine config.slo;
      last_metrics = ref 0;
      ts =
        Option.map
          (fun _ ->
            Timeseries.create
              { Timeseries.default_config with slo = config.slo; seed = config.seed })
          config.window_every;
      on_window = ignore;
      windows_done = false;
      breaker_gauge = List.map (fun v -> (v, ref 0)) Variant.all;
    }

  let workers t = t.workers
  let checkpointed t = !(t.checkpointed)
  let queued t = t.queued
  let interrupt t ~pending = t.interrupted := true; t.not_admitted := pending

  let breaker t v = fst (List.assoc v t.breakers)

  (* breaker state as a numeric gauge: Closed=0, Open=1, Half_open=2 *)
  let breaker_state_num b =
    match Breaker.state b with
    | Breaker.Closed _ -> 0
    | Breaker.Open _ -> 1
    | Breaker.Half_open _ -> 2

  let breaker_gauges t =
    List.map
      (fun (v, (b, _)) ->
        ("service.breaker.state." ^ Variant.to_string v, breaker_state_num b))
      t.breakers

  (* surface each state change once: a counter plus a typed event, fed
     after every route/record (the only operations that can flip state) *)
  let note_transitions t v =
    let b, seen = List.assoc v t.breakers in
    let ts = Breaker.transitions b in
    let total = List.length ts in
    if total > !seen then begin
      if Probe.enabled () then
        List.iteri
          (fun i change ->
            if i >= !seen then begin
              Probe.count "service.breaker.transitions";
              Probe.event (Event.Breaker_transition { variant = Variant.to_string v; change })
            end)
          ts;
      seen := total
    end;
    (* keep the probe-side counter's running sum equal to the current
       state numeric: add the (possibly negative) delta since last surfaced *)
    if Probe.enabled () then begin
      let prev = List.assoc v t.breaker_gauge in
      let cur = breaker_state_num b in
      if cur <> !prev then begin
        Probe.count ~n:(cur - !prev) ("service.breaker.state." ^ Variant.to_string v);
        prev := cur
      end
    end

  let record_outcome t o =
    let id = o.request.Request.id in
    if not (Hashtbl.mem t.outcomes id) then begin
      t.order <- id :: t.order;
      t.recorded <- t.recorded + 1
    end;
    Hashtbl.replace t.outcomes id o

  let cached t id = Hashtbl.find_opt t.outcomes id

  (* Service histograms live on the coordinator: every observation is
     derived from data the dispatch loop already holds (worker latencies
     come back in the wave results), so recording needs no cross-domain
     sink and works with or without an installed Probe recording —
     [--metrics-every] and the summary read these, [--profile] sees the
     mirrored copies. *)
  let hobserve ?ex t name v =
    let h =
      match Hashtbl.find_opt t.hist_tbl name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.add t.hist_tbl name h;
        h
    in
    (match ex with Some id -> Hist.record_exemplar h v id | None -> Hist.record h v);
    if Probe.enabled () then Probe.observe name v

  let hist_snapshots t =
    Hashtbl.fold (fun k h acc -> (k, Hist.snapshot h) :: acc) t.hist_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let finish_ctx t ctx =
    match Trace_ctx.finish ctx with
    | Some tr -> t.traces_rev := tr :: !(t.traces_rev)
    | None -> ()

  let current_sample t =
    {
      Slo.completed = !(t.completed_live);
      rejected = !(t.rejected_live);
      aborted = !(t.aborted_live);
      retries = !(t.retries_total);
      hists = hist_snapshots t;
    }

  (* ---------------- the live telemetry plane ---------------- *)

  (* The window clock: completions plus aborts, i.e. requests that left
     the system through the dispatch loop. Rejections move counters but
     not the clock (they never enter a wave); checkpoint restores and
     dedup hits bypass the loop entirely and are excluded — the stream
     observes live processing only. *)
  let processed t = !(t.completed_live) + !(t.aborted_live)

  (* Counters are the deterministic prefix: their deltas at a window
     boundary depend only on the admission/completion sequence, never on
     worker count or kernel scheduling ([rejected] is admission-order-
     deterministic in batch mode and zero in healthy server runs).
     Queue/wave gauges and latency hists ride in the timing tail. *)
  let window_sample t =
    {
      Timeseries.upto = processed t;
      counters =
        [
          ("service.aborted", !(t.aborted_live));
          ( "service.breaker.transitions",
            List.fold_left
              (fun acc (_, (b, _)) -> acc + List.length (Breaker.transitions b))
              0 t.breakers );
          ("service.completed", !(t.completed_live));
          ("service.rejected", !(t.rejected_live));
          ("service.retries", !(t.retries_total));
        ];
      gauges = breaker_gauges t;
      load =
        [
          ("service.queue.depth", t.queued);
          ("service.queue.peak", !(t.queue_peak));
          ("service.waves", !(t.waves));
        ];
      hists = hist_snapshots t;
    }

  let emit_window ?final t =
    match t.ts with
    | None -> ()
    | Some ts ->
      let w = Timeseries.push ?final ts (window_sample t) in
      t.on_window w

  (* called after every processed outcome: each one advances the clock by
     exactly 1, so the boundary test fires exactly once per window *)
  let maybe_close_window t =
    match (t.ts, t.config.window_every) with
    | Some _, Some every when not t.windows_done ->
      let p = processed t in
      if p > 0 && p mod every = 0 then emit_window t
    | _ -> ()

  (* the drain-time window closing the stream (possibly partial, possibly
     empty): cumulative sums over the full stream reconcile exactly with
     the final summary. Idempotent. *)
  let finalize_windows t =
    match t.ts with
    | Some _ when not t.windows_done ->
      t.windows_done <- true;
      emit_window ~final:true t
    | _ -> ()

  let set_on_window t f = t.on_window <- f
  let windows t = match t.ts with None -> [] | Some ts -> Timeseries.windows ts
  let live_window t = Option.map (fun ts -> Timeseries.peek ts (window_sample t)) t.ts

  let metrics_line t =
    Json.obj
      ([
         ("schema", Json.str Bss_obs.Offline.metrics_schema_version);
         ( "metrics",
           Json.obj
             ([
                ("completed", Json.int !(t.completed_live));
                ("rejected", Json.int !(t.rejected_live));
                ("aborted", Json.int !(t.aborted_live));
                ("retries", Json.int !(t.retries_total));
                ("queue_peak", Json.int !(t.queue_peak));
                ("waves", Json.int !(t.waves));
                ("hists", Json.obj (List.map (fun (k, h) -> (k, Hist.to_json h)) (hist_snapshots t)));
              ]
             @
             (* gauges ride the metrics line only on live-plane runs, so
                reports over plain-soak artifacts keep their pinned shape *)
             match t.ts with
             | None -> []
             | Some _ ->
               [ ("gauges", Json.obj (List.map (fun (k, v) -> (k, Json.int v)) (breaker_gauges t))) ]
             ) );
       ]
      @
      match t.slo_engine with
      | None -> []
      | Some e -> [ ("slo", Slo.verdict_json (Slo.window e (current_sample t))) ])

  let maybe_emit_metrics t =
    match t.config.metrics_every with
    | Some every when every > 0 && !(t.completed_live) - !(t.last_metrics) >= every ->
      t.last_metrics := !(t.completed_live);
      t.emit_metrics (metrics_line t)
    | _ -> ()

  (* restore a checkpointed completion: journal entries are trusted verbatim *)
  let from_checkpoint t (r : Request.t) =
    match t.journal with
    | None -> None
    | Some j -> (
      if Hashtbl.mem t.outcomes r.Request.id then None
      else
        match Journal.find j r.Request.id with
        | None -> None
        | Some e ->
          incr t.checkpointed;
          let o =
            {
              request = r;
              status = Done;
              rung = Some e.Journal.rung;
              makespan = Some e.Journal.makespan;
              routed = "-";
              retries_used = 0;
              degraded = false;
              from_checkpoint = true;
              error = None;
              latency_ns = 0L;
              queue_wait_ns = 0L;
            }
          in
          record_outcome t o;
          Some o)

  let try_flush t =
    match t.journal with
    | None -> ()
    | Some j -> (
      let t0 = Monotonic_clock.now () in
      match Journal.flush j with
      | () ->
        hobserve t "service.journal.flush_ns"
          (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0));
        if Probe.enabled () then Probe.count "service.journal.flush_ok"
      | exception exn ->
        reraise_crash exn;
        incr t.flush_failures;
        if Probe.enabled () then Probe.count "service.journal.flush_failed")

  (* the final flush must land even under an armed journal-flush fault:
     every retry advances the site's hit counter past the armed hits *)
  let final_flush t =
    match t.journal with
    | None -> ()
    | Some j ->
      let rec final k = if Journal.dirty j > 0 && k > 0 then (try_flush t; final (k - 1)) in
      final 4

  let admit t (r : Request.t) =
    let seq = !(t.admit_seq) in
    incr t.admit_seq;
    let ctx =
      if t.tracing then Trace_ctx.make ~seed:t.config.seed ~seq ~request_id:r.Request.id
      else Trace_ctx.disabled
    in
    if Trace_ctx.enabled ctx then begin
      Trace_ctx.add_attr ctx "variant" (Trace_ctx.S (Variant.to_string r.Request.variant));
      Trace_ctx.add_attr ctx "tenant" (Trace_ctx.S r.Request.tenant)
    end;
    let reject error =
      incr t.rejected_live;
      if Probe.enabled () then Probe.count "service.rejected";
      if Trace_ctx.enabled ctx then begin
        Trace_ctx.add_attr ctx "outcome" (Trace_ctx.S "rejected");
        Trace_ctx.add_attr ctx "error" (Trace_ctx.S (Rerror.to_string error));
        finish_ctx t ctx
      end;
      let o =
        {
          request = r;
          status = Rejected;
          rung = None;
          makespan = None;
          routed = "-";
          retries_used = 0;
          degraded = false;
          from_checkpoint = false;
          error = Some error;
          latency_ns = 0L;
          queue_wait_ns = 0L;
        }
      in
      record_outcome t o;
      Error o
    in
    match Bqueue.admit t.queue r with
    | Ok () ->
      t.queued <- t.queued + 1;
      Hashtbl.replace t.admitted_at r.Request.id (Monotonic_clock.now ());
      if Trace_ctx.enabled ctx then Hashtbl.replace t.ctxs r.Request.id ctx;
      if Probe.enabled () then Probe.count "service.enqueued";
      Ok ()
    | Error e -> reject e
    | exception exn ->
      reraise_crash exn;
      reject (Rerror.Internal exn)

  (* Fan a routed wave out to the worker pool. All-default-tenant waves
     (batch and plain soak) go straight through [Parallel.map_results] —
     one task per request, the historical layout. A wave with named
     tenants is first grouped into [workers] shards: a tenant's requests
     are pinned to the shard [Strhash.shard tenant], preserving their
     relative order (one flooding tenant contends with itself, not with
     everyone); default-tenant requests round-robin over shards by wave
     position. Results are reassembled into wave order, so downstream
     accounting is oblivious to the grouping. *)
  let solve_wave t routed ~ctx_of =
    let all_default =
      List.for_all
        (fun ((r : Request.t), _, _, _) -> r.Request.tenant = Request.default_tenant)
        routed
    in
    if all_default then
      Parallel.map_results ~domains:t.workers ~retries:0
        (fun ((r : Request.t), _, _, algorithm) ->
          process ~tctx:(ctx_of r.Request.id) t.config r algorithm)
        routed
    else begin
      let arr = Array.of_list routed in
      let shards = max 1 t.workers in
      let buckets = Array.make shards [] in
      Array.iteri
        (fun i ((r : Request.t), _, _, _) ->
          let s =
            if r.Request.tenant = Request.default_tenant then i mod shards
            else Strhash.shard ~shards r.Request.tenant
          in
          buckets.(s) <- i :: buckets.(s))
        arr;
      if Probe.enabled () then
        Array.iteri
          (fun s idxs ->
            if idxs <> [] then
              Probe.count ~n:(List.length idxs) (Printf.sprintf "service.shard.%d" s))
          buckets;
      let groups =
        Array.to_list buckets |> List.filter_map (function [] -> None | l -> Some (List.rev l))
      in
      let group_results =
        Parallel.map_results ~domains:t.workers ~retries:0
          (fun idxs ->
            List.map
              (fun i ->
                let (r : Request.t), _, _, algorithm = arr.(i) in
                (i, process ~tctx:(ctx_of r.Request.id) t.config r algorithm))
              idxs)
          groups
      in
      let out = Array.make (Array.length arr) None in
      List.iter2
        (fun idxs res ->
          match res with
          | Ok pairs -> List.iter (fun (i, w) -> out.(i) <- Some (Ok w)) pairs
          | Error (f : Parallel.failure) -> List.iter (fun i -> out.(i) <- Some (Error f)) idxs)
        groups group_results;
      Array.to_list (Array.map (function Some r -> r | None -> assert false) out)
    end

  let dispatch_wave t wave =
    let completed = ref [] in
    (Probe.span "service.wave" @@ fun () ->
     incr t.waves;
     t.queue_peak := max !(t.queue_peak) (List.length wave);
     if Probe.enabled () then begin
       Probe.count "service.wave";
       Probe.count ~n:(List.length wave) "service.queue.depth"
     end;
     let wave_start = Monotonic_clock.now () in
     let ctx_of id = Option.value ~default:Trace_ctx.disabled (Hashtbl.find_opt t.ctxs id) in
     let waits : (string, int64) Hashtbl.t = Hashtbl.create 16 in
     List.iter
       (fun (r : Request.t) ->
         match Hashtbl.find_opt t.admitted_at r.Request.id with
         | Some at ->
           Hashtbl.remove t.admitted_at r.Request.id;
           let wait_ns = Int64.sub wave_start at in
           Hashtbl.replace waits r.Request.id wait_ns;
           let ctx = ctx_of r.Request.id in
           if Trace_ctx.enabled ctx then begin
             Trace_ctx.add_span ctx "queue.wait" ~dur_ns:wait_ns
               ~attrs:[ ("phase", Trace_ctx.S "queue") ];
             hobserve ~ex:(Trace_ctx.trace_id ctx) t "service.queue.wait_ns"
               (Int64.to_float wait_ns)
           end
           else hobserve t "service.queue.wait_ns" (Int64.to_float wait_ns)
         | None -> ())
       wave;
     (* route through the breaker on the coordinator, in request order *)
     let routed =
       List.map
         (fun (r : Request.t) ->
           let b = breaker t r.Request.variant in
           let res =
             match Breaker.route b with
             | Breaker.Requested -> (r, Breaker.Requested, "requested", r.Request.algorithm)
             | Breaker.Probe -> (r, Breaker.Probe, "probe", r.Request.algorithm)
             | Breaker.Fallback -> (r, Breaker.Fallback, "fallback", Solver.Approx2)
             | exception exn ->
               reraise_crash exn;
               (* an injected fault on the half-open probe point: the probe
                  failed before it ran — re-open and fall back *)
               Breaker.record b ~route:Breaker.Probe ~ok:false;
               (r, Breaker.Fallback, "fallback", Solver.Approx2)
           in
           note_transitions t r.Request.variant;
           (let ctx = ctx_of r.Request.id in
            if Trace_ctx.enabled ctx then
              let _, _, routed_as, _ = res in
              Trace_ctx.add_attr ctx "route" (Trace_ctx.S routed_as));
           res)
         wave
     in
     (* the worker domain takes over the request's trace context for the
        duration of [process]; the coordinator is blocked until every
        worker is joined, so ownership passes cleanly back without
        synchronization *)
     let results = solve_wave t routed ~ctx_of in
     List.iter2
       (fun ((r : Request.t), route, routed_as, _) result ->
         let wres =
           match result with
           | Ok w -> w
           | Error (f : Parallel.failure) ->
             (* [process] re-raises Crashed and catches everything else, so
                the worker-pool wrapper only ever reports a crash here *)
             reraise_crash f.Parallel.exn;
             Waborted { error = Rerror.Internal f.Parallel.exn; retries_used = 0; latency_ns = 0L }
         in
         let failed_ladder = match wres with Wdone d -> d.degraded | Waborted _ -> true in
         Breaker.record (breaker t r.Request.variant) ~route ~ok:(not failed_ladder);
         note_transitions t r.Request.variant;
         let ctx = ctx_of r.Request.id in
         Hashtbl.remove t.ctxs r.Request.id;
         let ex = if Trace_ctx.enabled ctx then Some (Trace_ctx.trace_id ctx) else None in
         let wait_ns = Option.value ~default:0L (Hashtbl.find_opt waits r.Request.id) in
         (match wres with
         | Wdone d ->
           t.retries_total := !(t.retries_total) + d.retries_used;
           incr t.completed_live;
           hobserve ?ex t
             ("service.solve_ns." ^ Variant.to_string r.Request.variant)
             (Int64.to_float d.latency_ns);
           hobserve t "service.retries_per_request" (float_of_int d.retries_used);
           if Probe.enabled () then begin
             Probe.count "service.done";
             if d.retries_used > 0 then Probe.count ~n:d.retries_used "service.retries";
             if d.degraded then Probe.count "service.degraded"
           end;
           Option.iter
             (fun j ->
               let t0 = Monotonic_clock.now () in
               Journal.add j { Journal.id = r.Request.id; rung = d.rung; makespan = d.makespan };
               if Trace_ctx.enabled ctx then
                 Trace_ctx.add_span ctx "journal.append"
                   ~dur_ns:(Int64.sub (Monotonic_clock.now ()) t0)
                   ~attrs:[ ("phase", Trace_ctx.S "journal") ])
             t.journal;
           if Trace_ctx.enabled ctx then begin
             Trace_ctx.add_attr ctx "outcome" (Trace_ctx.S "done");
             Trace_ctx.add_attr ctx "rung" (Trace_ctx.S d.rung);
             Trace_ctx.add_attr ctx "retries" (Trace_ctx.I d.retries_used);
             Trace_ctx.add_attr ctx "degraded" (Trace_ctx.B d.degraded);
             (match t.solve_slo_bound with
             | Some bound when Int64.to_float d.latency_ns > bound ->
               Trace_ctx.add_attr ctx "slo_violation" (Trace_ctx.B true)
             | _ -> ());
             finish_ctx t ctx
           end;
           let o =
             {
               request = r;
               status = Done;
               rung = Some d.rung;
               makespan = Some d.makespan;
               routed = routed_as;
               retries_used = d.retries_used;
               degraded = d.degraded;
               from_checkpoint = false;
               error = None;
               latency_ns = d.latency_ns;
               queue_wait_ns = wait_ns;
             }
           in
           record_outcome t o;
           completed := o :: !completed
         | Waborted a ->
           t.retries_total := !(t.retries_total) + a.retries_used;
           incr t.aborted_live;
           hobserve t "service.retries_per_request" (float_of_int a.retries_used);
           if Probe.enabled () then begin
             Probe.count "service.aborted";
             if a.retries_used > 0 then Probe.count ~n:a.retries_used "service.retries"
           end;
           if Trace_ctx.enabled ctx then begin
             Trace_ctx.add_attr ctx "outcome" (Trace_ctx.S "aborted");
             Trace_ctx.add_attr ctx "retries" (Trace_ctx.I a.retries_used);
             Trace_ctx.add_attr ctx "error" (Trace_ctx.S (Rerror.to_string a.error));
             finish_ctx t ctx
           end;
           let o =
             {
               request = r;
               status = Aborted;
               rung = None;
               makespan = None;
               routed = routed_as;
               retries_used = a.retries_used;
               degraded = false;
               from_checkpoint = false;
               error = Some a.error;
               latency_ns = a.latency_ns;
               queue_wait_ns = wait_ns;
             }
           in
           record_outcome t o;
           completed := o :: !completed);
         (* the window clock ticks per outcome, in wave order on the
            coordinator — identical across worker counts *)
         maybe_close_window t;
         match t.journal with
         | Some j when Journal.dirty j >= t.config.checkpoint_every -> try_flush t
         | _ -> ())
       routed results);
    maybe_emit_metrics t;
    List.rev !completed

  let dispatch t =
    let wave = Bqueue.drain t.queue in
    t.queued <- 0;
    dispatch_wave t wave

  (* Coordinator-level fault plan: the service sites that fire outside the
     per-request scopes (admission, journal flush, breaker probe). The
     per-request plans armed inside [process] nest within it and mask it
     only for the duration of one solve, where no coordinator site fires. *)
  let coordinator_plan config =
    match config.chaos with
    | None -> []
    | Some c ->
      let sites = [ "service.admit"; "service.breaker.probe"; "service.journal.flush" ] in
      Chaos.plan_of_seed ~sites ~spread:16 c
      @ Chaos.plan_of_seed ~sites ~spread:16 (c lxor 0x55aa77)

  let summary ?requests t =
    let ordered =
      match requests with
      | Some reqs ->
        List.filter_map (fun (r : Request.t) -> Hashtbl.find_opt t.outcomes r.Request.id) reqs
      | None -> List.rev_map (fun id -> Hashtbl.find t.outcomes id) t.order
    in
    let total = match requests with Some reqs -> List.length reqs | None -> t.recorded in
    let count p = List.length (List.filter p ordered) in
    let completed = count (fun o -> o.status = Done) in
    let rejected = count (fun o -> o.status = Rejected) in
    let aborted = count (fun o -> o.status = Aborted) in
    let rungs =
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun o ->
          match o.rung with
          | Some rung ->
            Hashtbl.replace tbl rung (1 + Option.value ~default:0 (Hashtbl.find_opt tbl rung))
          | None -> ())
        ordered;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
    in
    let final_hists = hist_snapshots t in
    (* Tail sampling: always keep the stories worth reading — errors,
       degradations, retried requests, SLO violations and every trace a
       histogram bucket cites as an exemplar (the acceptance contract:
       a p99 exemplar id must resolve to a full span tree in the trace
       file) — and reservoir-sample the uneventful rest under the run
       seed. Output is in admission order. *)
    let traces =
      match List.rev !(t.traces_rev) with
      | [] -> []
      | all ->
        let exemplar_ids =
          List.concat_map (fun (_, h) -> Hist.exemplar_ids h) final_hists |> List.sort_uniq compare
        in
        let interesting (tr : Trace_ctx.trace) =
          (match Trace_ctx.attr tr "outcome" with Some "done" -> false | _ -> true)
          || Trace_ctx.attr tr "degraded" = Some "true"
          || (match Trace_ctx.attr tr "retries" with Some r -> r <> "0" | None -> false)
          || Trace_ctx.attr tr "slo_violation" = Some "true"
          || List.mem tr.Trace_ctx.trace_id exemplar_ids
        in
        let must, rest = List.partition interesting all in
        let sampled =
          Trace_ctx.reservoir ~seed:t.config.seed
            ~k:(Option.value t.config.trace_sample ~default:0)
            rest
        in
        List.sort
          (fun (a : Trace_ctx.trace) (b : Trace_ctx.trace) ->
            compare a.Trace_ctx.seq b.Trace_ctx.seq)
          (must @ sampled)
    in
    let slo_verdict = Option.map (fun e -> Slo.final e (current_sample t)) t.slo_engine in
    {
      outcomes = ordered;
      total;
      completed;
      checkpointed = !(t.checkpointed);
      rejected;
      aborted;
      dropped = total - List.length ordered - !(t.not_admitted);
      not_admitted = !(t.not_admitted);
      retries = !(t.retries_total);
      rungs;
      breaker =
        List.filter_map
          (fun (v, (b, _)) -> match Breaker.transitions b with [] -> None | ts -> Some (v, ts))
          t.breakers;
      queue_peak = !(t.queue_peak);
      waves = !(t.waves);
      flush_failures = !(t.flush_failures);
      journal_dirty = (match t.journal with None -> 0 | Some j -> Journal.dirty j);
      journal_salvaged =
        (match t.journal with None -> 0 | Some j -> List.length (Journal.salvaged j));
      interrupted = !(t.interrupted);
      hists = final_hists;
      traces;
      slo_verdict;
    }
end

(* ---------------- the batch driver ---------------- *)

let rec take n = function
  | [] -> ([], [])
  | xs when n = 0 -> ([], xs)
  | x :: xs ->
    let front, rest = take (n - 1) xs in
    (x :: front, rest)

let run ?journal ?(should_stop = fun () -> false) ?(emit_metrics = ignore) ?on_window config
    (requests : Request.t list) =
  let e = Engine.create ?journal ~emit_metrics config in
  Option.iter (Engine.set_on_window e) on_window;
  (* restore checkpointed completions before admitting anything *)
  (match journal with
  | None -> ()
  | Some _ -> List.iter (fun (r : Request.t) -> ignore (Engine.from_checkpoint e r)) requests);
  if Probe.enabled () && Engine.checkpointed e > 0 then
    Probe.count ~n:(Engine.checkpointed e) "service.resumed";
  let pending =
    List.filter (fun (r : Request.t) -> Engine.cached e r.Request.id = None) requests
  in
  let rec loop pending =
    if should_stop () then Engine.interrupt e ~pending:(List.length pending)
    else
      match pending with
      | [] -> ()
      | _ ->
        let front, rest = take config.burst pending in
        List.iter (fun r -> ignore (Engine.admit e r)) front;
        ignore (Engine.dispatch e);
        loop rest
  in
  Chaos.with_plan (Engine.coordinator_plan config) (fun () ->
      loop pending;
      Engine.finalize_windows e;
      Engine.final_flush e);
  Engine.summary ~requests e

(* ---------------- rendering ---------------- *)

let render_totals s =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "service: %d requests | done=%d (checkpointed=%d) rejected=%d aborted=%d dropped=%d not-admitted=%d retries=%d\n"
    s.total s.completed s.checkpointed s.rejected s.aborted s.dropped s.not_admitted s.retries;
  if s.rungs <> [] then
    add "rungs: %s\n" (String.concat " " (List.map (fun (r, k) -> Printf.sprintf "%s=%d" r k) s.rungs));
  List.iter
    (fun (v, ts) -> add "breaker[%s]: %s\n" (Variant.to_string v) (String.concat " " ts))
    s.breaker;
  add "queue: capacity-peak=%d waves=%d\n" s.queue_peak s.waves;
  add "journal: dirty=%d flush-failures=%d%s\n" s.journal_dirty s.flush_failures
    (if s.journal_salvaged > 0 then Printf.sprintf " salvaged=%d" s.journal_salvaged else "");
  (match s.traces with [] -> () | ts -> add "traces: %d sampled\n" (List.length ts));
  Option.iter (fun v -> add "%s" (Slo.verdict_text v)) s.slo_verdict;
  if s.interrupted then add "interrupted: drained cleanly\n";
  Buffer.contents buf

let render_text s =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun o ->
      match o.status with
      | Done ->
        add "%-24s done     rung=%s makespan=%s routed=%s retries=%d%s\n" o.request.Request.id
          (Option.get o.rung) (Option.get o.makespan) o.routed o.retries_used
          (if o.from_checkpoint then " (checkpointed)" else "")
      | Rejected ->
        add "%-24s rejected %s\n" o.request.Request.id
          (Rerror.to_string (Option.get o.error))
      | Aborted ->
        add "%-24s aborted  %s\n" o.request.Request.id (Rerror.to_string (Option.get o.error)))
    s.outcomes;
  Buffer.add_string buf (render_totals s);
  Buffer.contents buf

let render_json s =
  let outcome_json o =
    let status =
      match o.status with Done -> "done" | Rejected -> "rejected" | Aborted -> "aborted"
    in
    Json.obj
      ([ ("id", Json.str o.request.Request.id); ("status", Json.str status) ]
      @ (match o.rung with Some r -> [ ("rung", Json.str r) ] | None -> [])
      @ (match o.makespan with Some m -> [ ("makespan", Json.str m) ] | None -> [])
      @ [
          ("routed", Json.str o.routed);
          ("retries", Json.int o.retries_used);
          ("degraded", Json.bool o.degraded);
          ("checkpointed", Json.bool o.from_checkpoint);
        ]
      @ match o.error with Some e -> [ ("error", Rerror.to_json e) ] | None -> [])
  in
  let latency_total_us =
    List.fold_left (fun acc o -> Int64.add acc (Int64.div o.latency_ns 1_000L)) 0L s.outcomes
  in
  Json.obj
    ([
      ("schema", Json.str Bss_obs.Offline.metrics_schema_version);
      ("total", Json.int s.total);
      ("done", Json.int s.completed);
      ("checkpointed", Json.int s.checkpointed);
      ("rejected", Json.int s.rejected);
      ("aborted", Json.int s.aborted);
      ("dropped", Json.int s.dropped);
      ("not_admitted", Json.int s.not_admitted);
      ("retries", Json.int s.retries);
      ("rungs", Json.obj (List.map (fun (r, k) -> (r, Json.int k)) s.rungs));
      ( "breaker",
        Json.obj
          (List.map
             (fun (v, ts) -> (Variant.to_string v, Json.arr (List.map Json.str ts)))
             s.breaker) );
      ("queue_peak", Json.int s.queue_peak);
      ("waves", Json.int s.waves);
      ("flush_failures", Json.int s.flush_failures);
      ("journal_dirty", Json.int s.journal_dirty);
    ]
    @ (if s.journal_salvaged > 0 then [ ("salvaged", Json.int s.journal_salvaged) ] else [])
    @ [
      ("interrupted", Json.bool s.interrupted);
      ("latency_total_us", Json.int64 latency_total_us);
      ("hists", Json.obj (List.map (fun (k, h) -> (k, Hist.to_json h)) s.hists));
    ]
    @ (match s.slo_verdict with
      | Some v -> [ ("slo", Slo.verdict_json v) ]
      | None -> [])
    @ [ ("outcomes", Json.arr (List.map outcome_json s.outcomes)) ])
