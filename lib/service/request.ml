open Bss_util
open Bss_instances
open Bss_core
module Rerror = Bss_resilience.Error

type source = File of string | Gen of { family : string; seed : int; m : int; n : int }

type t = {
  id : string;
  tenant : string;
  variant : Variant.t;
  algorithm : Solver.algorithm;
  source : source;
}

let default_tenant = "default"

let instance t =
  match t.source with
  | File path ->
    let contents =
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      with Sys_error msg -> Rerror.invalid_input ~field:"file" msg
    in
    Instance.of_string contents
  | Gen { family; seed; m; n } -> (
    match Bss_workloads.Generator.by_name family with
    | spec -> spec.Bss_workloads.Generator.generate (Prng.create seed) ~m ~n
    | exception Not_found -> Rerror.invalid_input ~field:"family" ("unknown family: " ^ family))

let variant_of_string ~line = function
  | "nonp" | "non-preemptive" -> Variant.Nonpreemptive
  | "pmtn" | "preemptive" -> Variant.Preemptive
  | "split" | "splittable" -> Variant.Splittable
  | s -> Rerror.invalid_input ~line ~field:"variant" ("unknown variant: " ^ s)

let algorithm_of_string ~line = function
  | "2" -> Solver.Approx2
  | "3/2" -> Solver.Approx3_2
  | s -> (
    try Scanf.sscanf s "3/2+1/%d%!" (fun d -> Solver.Approx3_2_eps (Rat.of_ints 1 d))
    with _ -> Rerror.invalid_input ~line ~field:"algorithm" ("unknown algorithm: " ^ s))

let algorithm_to_string = function
  | Solver.Approx2 -> "2"
  | Solver.Approx3_2 -> "3/2"
  | Solver.Approx3_2_eps e -> "3/2+" ^ Rat.to_string e

let int_field ~line ~field s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> Rerror.invalid_input ~line ~field ("not an integer: " ^ s)

let of_batch_string s =
  let seen = Hashtbl.create 16 in
  let parse_line line text =
    match String.split_on_char ' ' text |> List.filter (fun w -> w <> "") with
    | [ id; variant; algorithm; "file"; path ] ->
      Some
        {
          id;
          tenant = default_tenant;
          variant = variant_of_string ~line variant;
          algorithm = algorithm_of_string ~line algorithm;
          source = File path;
        }
    | [ id; variant; algorithm; "gen"; family; seed; m; n ] ->
      Some
        {
          id;
          tenant = default_tenant;
          variant = variant_of_string ~line variant;
          algorithm = algorithm_of_string ~line algorithm;
          source =
            Gen
              {
                family;
                seed = int_field ~line ~field:"seed" seed;
                m = int_field ~line ~field:"m" m;
                n = int_field ~line ~field:"n" n;
              };
        }
    | [] -> None
    | _ -> Rerror.invalid_input ~line ~field:"request" ("malformed request line: " ^ text)
  in
  String.split_on_char '\n' s
  |> List.mapi (fun i text -> (i + 1, String.trim text))
  |> List.filter_map (fun (line, text) ->
         if text = "" || text.[0] = '#' then None
         else
           match parse_line line text with
           | None -> None
           | Some r ->
             if Hashtbl.mem seen r.id then
               Rerror.invalid_input ~line ~field:"id" ("duplicate request id: " ^ r.id);
             Hashtbl.add seen r.id ();
             Some r)

let to_line t =
  let head =
    Printf.sprintf "%s %s %s" t.id (Variant.to_string t.variant) (algorithm_to_string t.algorithm)
  in
  match t.source with
  | File path -> Printf.sprintf "%s file %s" head path
  | Gen { family; seed; m; n } -> Printf.sprintf "%s gen %s %d %d %d" head family seed m n

let soak_stream ?(tenants = []) ~seed ~requests () =
  let families = Array.of_list Bss_workloads.Generator.all in
  let variants = Array.of_list Variant.all in
  let tenants = Array.of_list tenants in
  List.init requests (fun i ->
      let family = families.(i mod Array.length families).Bss_workloads.Generator.name in
      (* per-request avalanche: realization is a pure function of
         (seed, i), independent of processing order *)
      let rng = Prng.create (seed lxor ((i + 1) * 0x9e3779b9)) in
      {
        id = Printf.sprintf "soak-%s-%d" family i;
        tenant =
          (if Array.length tenants = 0 then default_tenant else tenants.(i mod Array.length tenants));
        variant = variants.(Prng.int rng (Array.length variants));
        algorithm = Solver.Approx3_2;
        source =
          Gen { family; seed = Prng.int rng max_int; m = Prng.int_in rng 2 6; n = Prng.int_in rng 8 32 };
      })
