open Bss_util
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event

type item = { id : int; profit : Rat.t; weight : Rat.t }

type solution = { take : Rat.t array; value : Rat.t; used : Rat.t; split : int option }

let validate items =
  Array.iter
    (fun it ->
      if Rat.sign it.weight < 0 then invalid_arg "Knapsack: negative weight";
      if Rat.sign it.profit < 0 then invalid_arg "Knapsack: negative profit")
    items

(* density(a) > density(b) ⟺ p_a w_b > p_b w_a; positions with zero weight
   are handled before any density comparison. *)
let density_compare items a b =
  let ia = items.(a) and ib = items.(b) in
  Rat.compare (Rat.mul ia.profit ib.weight) (Rat.mul ib.profit ia.weight)

let finish items take =
  let value = ref Rat.zero and used = ref Rat.zero and split = ref None in
  Array.iteri
    (fun p x ->
      if Rat.sign x > 0 then begin
        value := Rat.add !value (Rat.mul x items.(p).profit);
        used := Rat.add !used (Rat.mul x items.(p).weight);
        if not (Rat.equal x Rat.one) then begin
          assert (!split = None);
          split := Some p
        end
      end)
    take;
  { take; value = !value; used = !used; split = !split }

(* Greedily fill positions [ps] (any order) into [cap], mutating [take];
   returns the remaining capacity. *)
let fill_greedy items take ps cap =
  List.fold_left
    (fun cap p ->
      if Rat.sign cap <= 0 then cap
      else begin
        let w = items.(p).weight in
        if Rat.( <= ) w cap then begin
          take.(p) <- Rat.one;
          Rat.sub cap w
        end
        else begin
          take.(p) <- Rat.div cap w;
          Rat.zero
        end
      end)
    cap ps

let split_zero_weight items =
  let zero = ref [] and pos = ref [] in
  Array.iteri (fun p it -> if Rat.is_zero it.weight then zero := p :: !zero else pos := p :: !pos) items;
  (!zero, !pos)

let solve_sorted items ~capacity =
  validate items;
  Probe.count "knapsack.sorted_calls";
  if Probe.enabled () then
    Probe.event (Event.Knapsack_path { path = "sorted"; items = Array.length items });
  let take = Array.make (Array.length items) Rat.zero in
  let zero, positive = split_zero_weight items in
  List.iter (fun p -> take.(p) <- Rat.one) zero;
  let order = Array.of_list positive in
  Array.sort
    (fun a b ->
      let c = density_compare items b a in
      if c <> 0 then c else compare a b)
    order;
  let _ = fill_greedy items take (Array.to_list order) capacity in
  finish items take

let solve_linear items ~capacity =
  validate items;
  Probe.count "knapsack.linear_calls";
  if Probe.enabled () then
    Probe.event (Event.Knapsack_path { path = "linear"; items = Array.length items });
  let take = Array.make (Array.length items) Rat.zero in
  let zero, positive = split_zero_weight items in
  List.iter (fun p -> take.(p) <- Rat.one) zero;
  (* Recurse on median density: each level halves the candidate count, so
     expected total work is linear. *)
  let rec go ps cap =
    match ps with
    | [] -> ()
    | _ when Rat.sign cap <= 0 -> ()
    | _ ->
      let arr = Array.of_list ps in
      let pivot = Select.select ~cmp:(density_compare items) arr (Array.length arr / 2) in
      let high = ref [] and equal = ref [] and low = ref [] in
      List.iter
        (fun p ->
          let c = density_compare items p pivot in
          if c > 0 then high := p :: !high
          else if c = 0 then equal := p :: !equal
          else low := p :: !low)
        ps;
      let w_high = List.fold_left (fun acc p -> Rat.add acc items.(p).weight) Rat.zero !high in
      if Rat.( > ) w_high cap then go !high cap
      else begin
        List.iter (fun p -> take.(p) <- Rat.one) !high;
        let cap = Rat.sub cap w_high in
        let w_equal = List.fold_left (fun acc p -> Rat.add acc items.(p).weight) Rat.zero !equal in
        if Rat.( <= ) w_equal cap then begin
          List.iter (fun p -> take.(p) <- Rat.one) !equal;
          go !low (Rat.sub cap w_equal)
        end
        else
          let _ = fill_greedy items take !equal cap in
          ()
      end
  in
  go positive capacity;
  finish items take

let integral_oracle ~profits ~weights ~capacity =
  let k = Array.length profits in
  if Array.length weights <> k then invalid_arg "Knapsack.integral_oracle: length mismatch";
  if capacity < 0 then 0
  else begin
    let best = Array.make (capacity + 1) 0 in
    for i = 0 to k - 1 do
      if weights.(i) < 0 || profits.(i) < 0 then invalid_arg "Knapsack.integral_oracle: negative input";
      for cap = capacity downto weights.(i) do
        let candidate = best.(cap - weights.(i)) + profits.(i) in
        if candidate > best.(cap) then best.(cap) <- candidate
      done
    done;
    best.(capacity)
  end
