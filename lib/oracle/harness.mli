(** The fuzz driver: sweep deterministic cases through every oracle.

    A sweep is fully described by its {!config}; equal configs give
    bit-identical reports (cases derive private PRNGs from
    [(master, family, index)] and properties are pure), regardless of how
    many domains execute it. Failing cases are minimized with
    {!Shrink.minimize} against the violated property before reporting. *)

open Bss_instances
open Bss_core

type config = {
  master : int;  (** master seed *)
  cases : int;  (** number of cases, round-robin over [families] *)
  families : Bss_workloads.Generator.spec list;
  variants : Variant.t list;
  algorithms : (string * Solver.algorithm) list;
  max_m : int;
  max_n : int;
  domains : int option;  (** worker domains; [None] = {!Bss_util.Parallel.recommended} *)
  shrink_budget : int;  (** predicate evaluations per failure minimization *)
}

(** 100 cases over all families, variants and default algorithms,
    [master = 0], [max_m = 8], [max_n = 48], shrink budget 400. *)
val default_config : config

type failure = {
  case : Case.t;
  property : string;
  message : string;
  instance : Instance.t;  (** the raw counterexample *)
  shrunk : Instance.t;  (** local minimum still violating the property *)
  shrink_steps : int;
}

type prop_stats = {
  property : string;
  theorem : string;
  cases : int;  (** cases the property ran on *)
  passed : int;
  skipped : int;
  failed : int;
}

type crash = {
  case : Case.t;
  attempts : int;  (** evaluations the parallel driver performed *)
  message : string;  (** the escaped exception, printed *)
}

type report = {
  config : config;
  stats : prop_stats list;
  failures : failure list;
  crashes : crash list;
      (** cases whose evaluation itself died (outside the per-property
          containment). The sweep survives them: all other cases report
          normally and the crashed case's replay id is preserved. *)
}

(** All oracles a sweep runs: {!Property.all} followed by
    {!Metamorphic.all}. *)
val properties : Property.t list

(** [case_of_index config i] is the [i]-th case of the sweep. *)
val case_of_index : config -> int -> Case.t

(** [run_case config case] evaluates every property on the case's
    instance, exceptions folded into [Fail]. *)
val run_case : config -> Case.t -> (Property.t * Property.outcome) list

(** [run config] executes the sweep on the configured domains. *)
val run : config -> report

(** [render report] is the stats table plus one block per failure,
    including the shrunk counterexample and a replay hint. Ends with a
    one-line verdict. *)
val render : report -> string

(** [replay config case] re-runs one case verbosely: instance dump plus a
    per-property verdict table. Returns the rendering and [true] when no
    property failed. *)
val replay : config -> Case.t -> string * bool

(** {1 Chaos sweeps}

    A chaos sweep drives {!Bss_core.Solver.solve_robust} — not the
    property oracles — over the configured cases while
    {!Bss_resilience.Chaos} injects deterministic faults into the
    algorithm interiors, and asserts the resilience contract: every run
    returns a checker-feasible schedule from some ladder rung and no
    exception escapes. *)

type chaos_report = {
  chaos_config : config;
  chaos_seed : int;
  sweeps : int;  (** ladder runs: cases × variants × algorithms *)
  rung_counts : (string * int) list;  (** runs finishing on each rung, sorted *)
  degraded : Case.t list;  (** cases where some run left the requested rung *)
  chaos_crashes : (Case.t * string) list;  (** escaped exceptions — contract violations *)
  chaos_infeasible : (Case.t * string) list;  (** checker rejections — contract violations *)
}

(** [chaos_sweep config ~chaos] runs sequentially on the calling domain
    (the chaos plan is process-global state). Each case's fault plan is
    {!Bss_resilience.Chaos.plan_of_seed} on a hash of [(chaos, case)], so
    equal configs and seeds inject identical faults. *)
val chaos_sweep : config -> chaos:int -> chaos_report

(** Rung-count table, one line per contract violation, and a verdict. *)
val render_chaos : chaos_report -> string
