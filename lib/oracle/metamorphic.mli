(** Metamorphic relations: transform the instance, predict the change.

    Each relation derives a second instance from the case instance and
    checks an exact prediction, run against all variants and algorithms of
    the context. Only *theorems* are encoded — relations that sound
    plausible but are false for approximation algorithms (raw-makespan
    monotonicity in [m], merge monotonicity of heuristic output) are
    stated on [OPT], [T_min] and certified bounds instead, which the
    paper's guarantees make mechanically checkable:

    - [scale-equivariance] — multiplying every [s_i] and [t_j] by [k]
      multiplies [T_min] and every solver makespan exactly by [k]. (The
      non-preemptive exact-3/2 search walks an integer guess grid, so for
      it the relation is the certified bound [makespan_k <= 2k·T_min]
      plus feasibility.)
    - [machine-augment] — adding a machine never increases [T_min] or the
      exact optima, and the [(m+1)]-machine schedule still obeys
      [makespan <= 2·T_min(m)].
    - [merge-classes] — merging two classes of equal setup can only
      reduce [OPT] and [T_min]; skipped when no equal-setup pair exists.
    - [duplicate-2m] — duplicating all classes and jobs onto [2m]
      machines preserves [T_min], every certificate, and feasibility. *)

(** The relations above, in a stable order (usable anywhere
    {!Property.t} is). *)
val all : Property.t list
