(** QCheck [arbitrary] instances over the oracle's generators.

    Kept out of [bss_oracle] so the fuzz CLI does not link qcheck; the
    test suites combine these with {!Bss_oracle.Property} to register
    every oracle as a qcheck-alcotest case. The shrinker is the
    structural {!Bss_oracle.Shrink.candidates}, so qcheck failures
    minimize to the same readable counterexamples the fuzz driver
    prints. *)

open Bss_instances

(** [gen ?max_m ?max_n ()] draws a family, realizes an instance through
    the oracle's deterministic case machinery, and sometimes mutates it. *)
val gen : ?max_m:int -> ?max_n:int -> unit -> Instance.t QCheck.Gen.t

(** Structural shrinking via {!Bss_oracle.Shrink.candidates}. *)
val shrink : Instance.t QCheck.Shrink.t

(** [arbitrary ?max_m ?max_n ()] bundles {!gen}, {!shrink} and
    {!Bss_instances.Instance.to_string} printing. *)
val arbitrary : ?max_m:int -> ?max_n:int -> unit -> Instance.t QCheck.arbitrary
