(** Per-instance evaluation context shared by all properties.

    Most properties interrogate the same handful of solver runs, exact
    optima and lower bounds; the context memoizes them so a case costs one
    solve per (variant, algorithm) pair no matter how many properties run.
    Exact optima are guarded: [None] when the instance exceeds the
    branch-and-bound budgets of {!Bss_baselines.Exact}. *)

open Bss_util
open Bss_instances
open Bss_core

(** The canonical algorithm set the oracle exercises: Theorem 1 ("2"),
    Theorem 2 at ε = 1/8 ("3/2+1/8"), and the exact 3/2 of Theorems
    3/6/8 ("3/2"). *)
val default_algorithms : (string * Solver.algorithm) list

type t

(** [create ?variants ?algorithms inst] — defaults: all variants,
    {!default_algorithms}. *)
val create :
  ?variants:Variant.t list ->
  ?algorithms:(string * Solver.algorithm) list ->
  Instance.t ->
  t

val instance : t -> Instance.t
val variants : t -> Variant.t list
val algorithms : t -> (string * Solver.algorithm) list

(** [solve t variant (name, algorithm)] is the memoized solver result. *)
val solve : t -> Variant.t -> string * Solver.algorithm -> Solver.result

(** [t_min t variant] is the memoized {!Bss_instances.Lower_bounds.t_min}. *)
val t_min : t -> Variant.t -> Rat.t

(** [exact_nonp t] is the exact non-preemptive optimum when the instance
    is small enough for the branch-and-bound oracle, else [None]. *)
val exact_nonp : t -> int option

(** [exact_split t] is the exact splittable optimum when the enumeration
    is affordable, else [None]. *)
val exact_split : t -> Rat.t option
