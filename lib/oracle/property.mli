(** Checkable laws of the paper, run against one instance.

    Every property is a pure function of the instance (through a
    memoizing {!Context}), so a failure reproduces deterministically and
    the shrinker can re-evaluate it on smaller instances. All comparisons
    are exact in {!Bss_util.Rat} — no floats, no tolerances.

    The laws, and the theorem each one checks:

    - [feasibility] — Theorems 1–9: every solver schedule passes the exact
      per-variant checker.
    - [certificate] — Theorems 1–3: [T_min <= makespan <= certificate],
      [makespan <= 2·T_min] and [certificate <= 2·guarantee·T_min].
    - [ratio-exact] — Theorems 1, 3, 6, 8 on oracle-sized instances:
      [OPT <= makespan <= guarantee·OPT] against the exact optima (the
      preemptive makespan is sandwiched by [OPT_split] from below and
      [guarantee·OPT_nonp] from above).
    - [opt-dominance] — §1: [T_min_split <= T_min_pmtn <= T_min_nonp] and,
      when exact optima are affordable, [OPT_split <= OPT_nonp].
    - [cross-feasibility] — §1 (variant relaxation chain): a
      non-preemptive schedule is feasible preemptively and splittably; a
      preemptive schedule is feasible splittably.
    - [dual-monotone] — Theorems 4, 5, 7, 9: along a guess ladder
      [T = k/8·T_min], k = 1..24, no rejection follows an acceptance, and
      every accepted schedule is feasible with makespan [<= 3/2·T].
    - [two-tier-exact] — {!Bss_util.Num2} certification: re-solving with
      the fast tier disabled ({!Bss_util.Num2.with_force_exact}) yields a
      bit-identical schedule, makespan, certificate and checker verdict. *)

open Bss_instances

type outcome =
  | Pass
  | Skip of string  (** the law does not apply (e.g. instance too large for the exact oracles) *)
  | Fail of string

type t = {
  name : string;
  theorem : string;  (** paper citation, e.g. ["Thm 1-9"] *)
  check : Context.t -> outcome;
}

(** The properties above, in a stable order. *)
val all : t list

(** [find name] looks a property up in {!all} @raise Not_found. *)
val find : string -> t

(** [check_instance prop ?variants ?algorithms inst] builds a fresh
    context and runs one property, catching exceptions into [Fail]. *)
val check_instance :
  ?variants:Variant.t list ->
  ?algorithms:(string * Bss_core.Solver.algorithm) list ->
  t ->
  Instance.t ->
  outcome
