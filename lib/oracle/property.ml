open Bss_util
open Bss_instances
open Bss_core

type outcome = Pass | Skip of string | Fail of string

type t = { name : string; theorem : string; check : Context.t -> outcome }

(* Fold a check over every (variant, algorithm) pair, stopping at the
   first failure. *)
let over_solves ctx f =
  let rec go = function
    | [] -> Pass
    | (v, a) :: rest -> ( match f v a with Pass -> go rest | o -> o)
  in
  go
    (List.concat_map
       (fun v -> List.map (fun a -> (v, a)) (Context.algorithms ctx))
       (Context.variants ctx))

let tag v (name, _) = Printf.sprintf "[%s/%s]" (Variant.to_string v) name

let feasibility =
  {
    name = "feasibility";
    theorem = "Thm 1-9";
    check =
      (fun ctx ->
        over_solves ctx (fun v a ->
            let r = Context.solve ctx v a in
            match Checker.check v (Context.instance ctx) r.Solver.schedule with
            | Ok () -> Pass
            | Error vs ->
              Fail
                (Printf.sprintf "%s infeasible: %s" (tag v a)
                   (String.concat "; " (List.map Checker.violation_to_string vs)))));
  }

let certificate =
  {
    name = "certificate";
    theorem = "Thm 1-3";
    check =
      (fun ctx ->
        over_solves ctx (fun v a ->
            let r = Context.solve ctx v a in
            let mk = Schedule.makespan r.Solver.schedule in
            let t_min = Context.t_min ctx v in
            let fail fmt_msg = Fail (tag v a ^ " " ^ fmt_msg) in
            if Rat.( < ) mk t_min then
              fail (Printf.sprintf "makespan %s below T_min %s" (Rat.to_string mk) (Rat.to_string t_min))
            else if Rat.( > ) mk r.Solver.certificate then
              fail
                (Printf.sprintf "makespan %s exceeds certificate %s" (Rat.to_string mk)
                   (Rat.to_string r.Solver.certificate))
            else if Rat.( > ) mk (Rat.mul_int t_min 2) then
              fail (Printf.sprintf "makespan %s exceeds 2*T_min" (Rat.to_string mk))
            else if Rat.( > ) r.Solver.certificate (Rat.mul (Rat.mul_int t_min 2) r.Solver.guarantee)
            then
              fail
                (Printf.sprintf "certificate %s exceeds 2*guarantee*T_min"
                   (Rat.to_string r.Solver.certificate))
            else Pass));
  }

let ratio_exact =
  {
    name = "ratio-exact";
    theorem = "Thm 1,3,6,8";
    check =
      (fun ctx ->
        let nonp = Context.exact_nonp ctx and split = Context.exact_split ctx in
        if nonp = None && split = None then Skip "instance too large for the exact oracles"
        else
          over_solves ctx (fun v a ->
              let r = Context.solve ctx v a in
              let mk = Schedule.makespan r.Solver.schedule in
              let ratio_ok opt = Rat.( <= ) mk (Rat.mul r.Solver.guarantee opt) in
              let fail opt =
                Fail
                  (Printf.sprintf "%s makespan %s vs OPT %s breaks guarantee %s" (tag v a)
                     (Rat.to_string mk) (Rat.to_string opt) (Rat.to_string r.Solver.guarantee))
              in
              match (v, nonp, split) with
              | Variant.Nonpreemptive, Some opt, _ ->
                let opt = Rat.of_int opt in
                if Rat.( < ) mk opt then
                  Fail (tag v a ^ " makespan below the exact non-preemptive optimum")
                else if ratio_ok opt then Pass
                else fail opt
              | Variant.Splittable, _, Some opt ->
                if Rat.( < ) mk opt then
                  Fail (tag v a ^ " makespan below the exact splittable optimum")
                else if ratio_ok opt then Pass
                else fail opt
              | Variant.Preemptive, nonp, split ->
                (* OPT_split <= OPT_pmtn <= OPT_nonp sandwiches the run *)
                let lower_ok =
                  match split with Some o -> Rat.( >= ) mk o | None -> true
                in
                let upper_ok =
                  match nonp with Some o -> ratio_ok (Rat.of_int o) | None -> true
                in
                if not lower_ok then
                  Fail (tag v a ^ " preemptive makespan below the exact splittable optimum")
                else if not upper_ok then
                  Fail (tag v a ^ " preemptive makespan exceeds guarantee * OPT_nonp")
                else Pass
              | _ -> Pass));
  }

let opt_dominance =
  {
    name = "opt-dominance";
    theorem = "Sec 1";
    check =
      (fun ctx ->
        let inst = Context.instance ctx in
        let ts = Lower_bounds.t_min Variant.Splittable inst
        and tp = Lower_bounds.t_min Variant.Preemptive inst
        and tn = Lower_bounds.t_min Variant.Nonpreemptive inst in
        if not (Rat.( <= ) ts tp && Rat.( <= ) tp tn) then
          Fail "T_min chain split <= pmtn <= nonp broken"
        else
          match (Context.exact_split ctx, Context.exact_nonp ctx) with
          | Some os, Some on when Rat.( > ) os (Rat.of_int on) ->
            Fail
              (Printf.sprintf "OPT_split %s > OPT_nonp %d" (Rat.to_string os) on)
          | Some os, _ ->
            (* any feasible schedule of any variant is splittable-feasible,
               so its makespan dominates OPT_split *)
            over_solves ctx (fun v a ->
                let r = Context.solve ctx v a in
                if Rat.( < ) (Schedule.makespan r.Solver.schedule) os then
                  Fail (tag v a ^ " makespan below OPT_split")
                else Pass)
          | None, _ -> Skip "exact splittable optimum unaffordable");
  }

let cross_feasibility =
  {
    name = "cross-feasibility";
    theorem = "Sec 1";
    check =
      (fun ctx ->
        let inst = Context.instance ctx in
        let relaxations = function
          | Variant.Nonpreemptive -> [ Variant.Preemptive; Variant.Splittable ]
          | Variant.Preemptive -> [ Variant.Splittable ]
          | Variant.Splittable -> []
        in
        over_solves ctx (fun v a ->
            let r = Context.solve ctx v a in
            let rec relax = function
              | [] -> Pass
              | v' :: rest ->
                if Checker.is_feasible v' inst r.Solver.schedule then relax rest
                else
                  Fail
                    (Printf.sprintf "%s schedule rejected by the %s checker" (tag v a)
                       (Variant.to_string v'))
            in
            relax (relaxations v)));
  }

let dual_for = function
  | Variant.Splittable -> Splittable_dual.run
  | Variant.Preemptive -> fun inst t -> Pmtn_dual.run inst t
  | Variant.Nonpreemptive -> Nonp_dual.run

let dual_monotone =
  {
    name = "dual-monotone";
    theorem = "Thm 4,5,7,9";
    check =
      (fun ctx ->
        let inst = Context.instance ctx in
        let three_half = Rat.of_ints 3 2 in
        let rec per_variant = function
          | [] -> Pass
          | v :: rest -> (
            let dual = dual_for v in
            let t_min = Context.t_min ctx v in
            let rec ladder k seen_accept =
              if k > 24 then Pass
              else
                let t = Rat.mul (Rat.of_ints k 8) t_min in
                match dual inst t with
                | Dual.Rejected _ when seen_accept ->
                  Fail
                    (Printf.sprintf "[%s] dual rejected %s/8*T_min after accepting a smaller guess"
                       (Variant.to_string v) (string_of_int k))
                | Dual.Rejected _ -> ladder (k + 1) false
                | Dual.Accepted sched -> (
                  match
                    Checker.check ~makespan_bound:(Rat.mul three_half t) v inst sched
                  with
                  | Ok () -> ladder (k + 1) true
                  | Error vs ->
                    Fail
                      (Printf.sprintf "[%s] accepted schedule at %d/8*T_min invalid: %s"
                         (Variant.to_string v) k
                         (String.concat "; " (List.map Checker.violation_to_string vs))))
            in
            match ladder 1 false with Pass -> per_variant rest | o -> o)
        in
        per_variant (Context.variants ctx));
  }

let two_tier_exact =
  {
    name = "two-tier-exact";
    theorem = "Num2";
    check =
      (fun ctx ->
        (* Re-solve with every construction forced onto the Bigint-backed
           exact tier and demand bit-identical results: same schedule (per
           {!Schedule.equal}, which compares rationals by value across
           tiers), same makespan/certificate, same checker verdict. This is
           the certification that the fast tier changes representation,
           never values. *)
        let inst = Context.instance ctx in
        over_solves ctx (fun v ((_, algorithm) as a) ->
            let fast = Context.solve ctx v a in
            let exact =
              Num2.with_force_exact true (fun () -> Solver.solve ~algorithm v inst)
            in
            let fail what =
              Fail
                (Printf.sprintf "%s two-tier vs forced-exact solve differ: %s" (tag v a) what)
            in
            if not (Rat.equal (Schedule.makespan fast.Solver.schedule) (Schedule.makespan exact.Solver.schedule))
            then fail "makespan"
            else if not (Rat.equal fast.Solver.certificate exact.Solver.certificate) then
              fail "certificate"
            else if not (Schedule.equal fast.Solver.schedule exact.Solver.schedule) then
              fail "schedule"
            else if
              Checker.is_feasible v inst fast.Solver.schedule
              <> Checker.is_feasible v inst exact.Solver.schedule
            then fail "checker verdict"
            else Pass));
  }

let all =
  [
    feasibility;
    certificate;
    ratio_exact;
    opt_dominance;
    cross_feasibility;
    dual_monotone;
    two_tier_exact;
  ]

let find name = List.find (fun p -> p.name = name) all

let check_instance ?variants ?algorithms prop inst =
  let ctx = Context.create ?variants ?algorithms inst in
  try prop.check ctx with e -> Fail ("exception: " ^ Printexc.to_string e)
