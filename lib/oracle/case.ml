open Bss_util
open Bss_instances

type t = { master : int; family : string; index : int }

let make ~master ~family ~index =
  ignore (Bss_workloads.Generator.by_name family);
  { master; family; index }

let id t = Printf.sprintf "%s:%d" t.family t.index

let of_id ~master s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg ("Case.of_id: missing ':' in " ^ s)
  | Some i -> (
    let family = String.sub s 0 i in
    let index =
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some k when k >= 0 -> k
      | _ -> invalid_arg ("Case.of_id: bad index in " ^ s)
    in
    try make ~master ~family ~index
    with Not_found -> invalid_arg ("Case.of_id: unknown family " ^ family))

(* SplitMix64 finalizer: full-avalanche mixing so that master, family and
   index each flip every bit of the case seed. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let seed t =
  let h = ref 0L in
  String.iter
    (fun ch -> h := Int64.add (Int64.mul !h 131L) (Int64.of_int (Char.code ch)))
    t.family;
  let x = Int64.of_int t.master in
  let x = mix64 (Int64.logxor x !h) in
  let x = mix64 (Int64.logxor x (Int64.of_int t.index)) in
  Int64.to_int (Int64.shift_right_logical x 1)

let jobs_of inst =
  Array.init (Instance.n inst)
    (fun j -> (inst.Instance.job_class.(j), inst.Instance.job_time.(j)))

(* One random mutation; every branch yields a well-formed instance. *)
let mutate rng inst =
  let m = inst.Instance.m and c = Instance.c inst in
  let setups = Array.copy inst.Instance.setups in
  let jobs = jobs_of inst in
  match Prng.int rng 8 with
  | 0 ->
    (* spike one setup towards 10^9: exercises s_max-dominated regimes *)
    setups.(Prng.int rng c) <- Prng.int_in rng 1_000_000 1_000_000_000;
    Instance.make ~m ~setups ~jobs
  | 1 ->
    (* spike one job time *)
    let j = Prng.int rng (Array.length jobs) in
    jobs.(j) <- (fst jobs.(j), Prng.int_in rng 1_000_000 1_000_000_000);
    Instance.make ~m ~setups ~jobs
  | 2 ->
    (* equalize all setups: the uniform-setup special case of the related
       work (Schalekamp et al.) *)
    let s = setups.(Prng.int rng c) in
    Instance.make ~m ~setups:(Array.map (fun _ -> s) setups) ~jobs
  | 3 ->
    (* unit jobs: setup cost dominates everything *)
    Instance.make ~m ~setups ~jobs:(Array.map (fun (cls, _) -> (cls, 1)) jobs)
  | 4 -> Instance.make ~m:1 ~setups ~jobs
  | 5 -> Instance.make ~m:((2 * m) + 1) ~setups ~jobs
  | 6 ->
    (* double one class's job multiset *)
    let cls = Prng.int rng c in
    let extra = Array.of_list (List.filter (fun (i, _) -> i = cls) (Array.to_list jobs)) in
    Instance.make ~m ~setups ~jobs:(Array.append jobs extra)
  | _ when Instance.delta inst <= 1_000_000 ->
    (* uniform huge scale: stresses exact arithmetic (skipped when the
       values are already large, to stay well inside native ints) *)
    let k = 1_000_000 in
    Instance.make ~m
      ~setups:(Array.map (fun s -> s * k) setups)
      ~jobs:(Array.map (fun (cls, t) -> (cls, t * k)) jobs)
  | _ -> Instance.make ~m:(m + 1) ~setups ~jobs

let instance ?(max_m = 8) ?(max_n = 48) t =
  let rng = Prng.create (seed t) in
  let spec = Bss_workloads.Generator.by_name t.family in
  let m = Prng.int_in rng 1 (max 1 max_m) in
  let n = Prng.int_in rng 4 (max 4 max_n) in
  let inst = spec.Bss_workloads.Generator.generate rng ~m ~n in
  match Prng.int rng 3 with
  | 0 -> mutate rng inst
  | 1 when Prng.bool rng -> mutate rng (mutate rng inst)
  | _ -> inst
