open Bss_util
open Bss_instances
open Bss_core

type config = {
  master : int;
  cases : int;
  families : Bss_workloads.Generator.spec list;
  variants : Variant.t list;
  algorithms : (string * Solver.algorithm) list;
  max_m : int;
  max_n : int;
  domains : int option;
  shrink_budget : int;
}

let default_config =
  {
    master = 0;
    cases = 100;
    families = Bss_workloads.Generator.all;
    variants = Variant.all;
    algorithms = Context.default_algorithms;
    max_m = 8;
    max_n = 48;
    domains = None;
    shrink_budget = 400;
  }

type failure = {
  case : Case.t;
  property : string;
  message : string;
  instance : Instance.t;
  shrunk : Instance.t;
  shrink_steps : int;
}

type prop_stats = {
  property : string;
  theorem : string;
  cases : int;
  passed : int;
  skipped : int;
  failed : int;
}

type crash = { case : Case.t; attempts : int; message : string }

type report = {
  config : config;
  stats : prop_stats list;
  failures : failure list;
  crashes : crash list;
}

let properties = Property.all @ Metamorphic.all

let case_of_index (config : config) i =
  let nf = List.length config.families in
  if nf = 0 then invalid_arg "Harness: no families configured";
  let spec = List.nth config.families (i mod nf) in
  Case.make ~master:config.master ~family:spec.Bss_workloads.Generator.name ~index:i

let check_on (config : config) prop inst =
  try
    let ctx = Context.create ~variants:config.variants ~algorithms:config.algorithms inst in
    prop.Property.check ctx
  with e -> Property.Fail ("exception: " ^ Printexc.to_string e)

let run_case (config : config) case =
  let inst = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
  (* one memoizing context shared by all properties of the case *)
  let ctx = Context.create ~variants:config.variants ~algorithms:config.algorithms inst in
  List.map
    (fun p ->
      ( p,
        try p.Property.check ctx
        with e -> Property.Fail ("exception: " ^ Printexc.to_string e) ))
    properties

let run (config : config) =
  let cases = List.init config.cases (case_of_index config) in
  (* per-case crash containment: a case whose realization or property run
     dies (outside the per-property try) is reported, not fatal. Cases are
     deterministic, so a retry would only repeat the crash. *)
  let contained =
    Parallel.map_results ?domains:config.domains ~retries:0
      (fun c -> (c, run_case config c))
      cases
  in
  let outcomes = List.filter_map (function Ok o -> Some o | Error _ -> None) contained in
  let crashes =
    List.filter_map
      (function
        | Ok _ -> None
        | Error { Parallel.index; attempts; exn } ->
          Some { case = List.nth cases index; attempts; message = Printexc.to_string exn })
      contained
  in
  let stats =
    List.map
      (fun p ->
        let tally f =
          List.fold_left
            (fun acc (_, os) ->
              List.fold_left
                (fun acc (p', o) -> if p'.Property.name = p.Property.name && f o then acc + 1 else acc)
                acc os)
            0 outcomes
        in
        {
          property = p.Property.name;
          theorem = p.Property.theorem;
          cases = config.cases;
          passed = tally (function Property.Pass -> true | _ -> false);
          skipped = tally (function Property.Skip _ -> true | _ -> false);
          failed = tally (function Property.Fail _ -> true | _ -> false);
        })
      properties
  in
  let failures =
    List.concat_map
      (fun (case, os) ->
        List.filter_map
          (function
            | p, Property.Fail message ->
              let instance = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
              let keep i =
                match check_on config p i with Property.Fail _ -> true | _ -> false
              in
              let shrunk, shrink_steps =
                (* the failure may be flaky only through exceptions; guard
                   the initial keep so shrinking never raises *)
                if keep instance then Shrink.minimize ~budget:config.shrink_budget ~keep instance
                else (instance, 0)
              in
              Some { case; property = p.Property.name; message; instance; shrunk; shrink_steps }
            | _ -> None)
          os)
      outcomes
  in
  { config; stats; failures; crashes }

let indent s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l -> "    " ^ l)
  |> String.concat "\n"

let render_failure master (f : failure) =
  Printf.sprintf
    "FAIL %s on case %s\n  %s\n  shrunk counterexample (%d steps, %d jobs):\n%s\n  replay: bss fuzz --seed %d --replay %s\n"
    f.property (Case.id f.case) f.message f.shrink_steps (Instance.n f.shrunk)
    (indent (Instance.to_string f.shrunk))
    master (Case.id f.case)

let render report =
  let header = [ "property"; "theorem"; "cases"; "pass"; "skip"; "fail" ] in
  let align = Table.[ Left; Left; Right; Right; Right; Right ] in
  let rows =
    List.map
      (fun s ->
        [
          s.property;
          s.theorem;
          string_of_int s.cases;
          string_of_int s.passed;
          string_of_int s.skipped;
          string_of_int s.failed;
        ])
      report.stats
  in
  let table = Table.render ~header ~align rows in
  let total_failed = List.fold_left (fun acc s -> acc + s.failed) 0 report.stats in
  let verdict =
    Printf.sprintf "%d cases x %d properties: %d violation%s%s" report.config.cases
      (List.length report.stats) total_failed
      (if total_failed = 1 then "" else "s")
      (match report.crashes with
      | [] -> ""
      | cs -> Printf.sprintf ", %d crashed case%s" (List.length cs) (if List.length cs = 1 then "" else "s"))
  in
  let blocks = List.map (render_failure report.config.master) report.failures in
  let crash_blocks =
    List.map
      (fun cr ->
        Printf.sprintf "CRASH case %s (%d attempt%s)\n  %s\n  replay: bss fuzz --seed %d --replay %s\n"
          (Case.id cr.case) cr.attempts
          (if cr.attempts = 1 then "" else "s")
          cr.message report.config.master (Case.id cr.case))
      report.crashes
  in
  String.concat "\n" ((table :: blocks) @ crash_blocks @ [ verdict; "" ])

(* ---------------- chaos sweeps ---------------- *)

module Chaos = Bss_resilience.Chaos

type chaos_report = {
  chaos_config : config;
  chaos_seed : int;
  sweeps : int;  (* (case, variant, algorithm) ladder runs *)
  rung_counts : (string * int) list;  (* sorted by rung name *)
  degraded : Case.t list;  (* cases where at least one run left the requested rung *)
  chaos_crashes : (Case.t * string) list;  (* escaped exceptions — must stay empty *)
  chaos_infeasible : (Case.t * string) list;  (* checker rejections — must stay empty *)
}

let chaos_sweep (config : config) ~chaos =
  (* Chaos state is a process-global scoped sink (like the probe layer),
     so the sweep runs sequentially on this domain. *)
  let rungs = Hashtbl.create 8 in
  let bump r = Hashtbl.replace rungs r (1 + Option.value ~default:0 (Hashtbl.find_opt rungs r)) in
  let degraded = ref [] and crashes = ref [] and infeasible = ref [] and sweeps = ref 0 in
  for i = 0 to config.cases - 1 do
    let case = case_of_index config i in
    (* the plan derives from (master, family, index, chaos): replaying the
       same sweep re-injects the same faults at the same sites *)
    let plan = Chaos.plan_of_seed (chaos lxor Case.seed case) in
    match
      Chaos.with_plan plan (fun () ->
          let inst = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
          List.iter
            (fun variant ->
              List.iter
                (fun (_, algorithm) ->
                  incr sweeps;
                  let r = Solver.solve_robust ~algorithm variant inst in
                  bump r.Solver.rung;
                  if r.Solver.attempts <> [] && not (List.memq case !degraded) then
                    degraded := case :: !degraded;
                  if not (Checker.is_feasible variant inst r.Solver.schedule) then
                    infeasible :=
                      (case, Variant.to_string variant ^ ": degraded schedule infeasible") :: !infeasible)
                config.algorithms)
            config.variants)
    with
    | () -> ()
    | exception e -> crashes := (case, Printexc.to_string e) :: !crashes
  done;
  {
    chaos_config = config;
    chaos_seed = chaos;
    sweeps = !sweeps;
    rung_counts =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rungs []);
    degraded = List.rev !degraded;
    chaos_crashes = List.rev !crashes;
    chaos_infeasible = List.rev !infeasible;
  }

let render_chaos (r : chaos_report) =
  let rows = List.map (fun (rung, k) -> [ rung; string_of_int k ]) r.rung_counts in
  let table = Table.render ~header:[ "rung"; "runs" ] ~align:Table.[ Left; Right ] rows in
  let problems =
    List.map (fun (c, msg) -> Printf.sprintf "CRASH case %s: %s" (Case.id c) msg) r.chaos_crashes
    @ List.map (fun (c, msg) -> Printf.sprintf "INFEASIBLE case %s: %s" (Case.id c) msg) r.chaos_infeasible
  in
  let verdict =
    Printf.sprintf "chaos: %d cases, %d ladder runs, %d degraded case%s, %d crashes, %d infeasible"
      r.chaos_config.cases r.sweeps (List.length r.degraded)
      (if List.length r.degraded = 1 then "" else "s")
      (List.length r.chaos_crashes) (List.length r.chaos_infeasible)
  in
  String.concat "\n" ((table :: problems) @ [ verdict; "" ])

let replay (config : config) case =
  let inst = Case.instance ~max_m:config.max_m ~max_n:config.max_n case in
  let outcomes = run_case config case in
  let verdict = function
    | Property.Pass -> "pass"
    | Property.Skip _ -> "skip"
    | Property.Fail _ -> "FAIL"
  in
  let rows =
    List.map (fun (p, o) -> [ p.Property.name; p.Property.theorem; verdict o ]) outcomes
  in
  let table = Table.render ~header:[ "property"; "theorem"; "verdict" ] rows in
  let notes =
    List.filter_map
      (function
        | p, Property.Fail msg -> Some (Printf.sprintf "FAIL %s: %s" p.Property.name msg)
        | p, Property.Skip msg -> Some (Printf.sprintf "skip %s: %s" p.Property.name msg)
        | _, Property.Pass -> None)
      outcomes
  in
  let ok = List.for_all (fun (_, o) -> match o with Property.Fail _ -> false | _ -> true) outcomes in
  let txt =
    String.concat "\n"
      ([ Printf.sprintf "case %s (seed %d)" (Case.id case) config.master;
         String.trim (Instance.to_string inst);
         table ]
      @ notes
      @ [ (if ok then "ok" else "violations found"); "" ])
  in
  (txt, ok)
