open Bss_util

type violation =
  | Bad_machine_index of { machine : int }
  | Overlap of { machine : int; at : Rat.t }
  | Bad_setup_duration of { machine : int; cls : int; at : Rat.t; got : Rat.t }
  | Missing_setup of { machine : int; job : int; at : Rat.t }
  | Wrong_volume of { job : int; got : Rat.t; expected : Rat.t }
  | Self_parallel of { machine : int; job : int; at : Rat.t }
  | Not_contiguous of { machine : int; job : int; at : Rat.t }
  | Makespan_exceeded of { machine : int; got : Rat.t; bound : Rat.t }

(* Every rendering names the machine and the exact (rational) time
   coordinate where the violation is visible, so a failing fuzz case can
   be located in a Gantt chart without re-running the checker. *)
let pp_violation fmt = function
  | Bad_machine_index { machine } -> Format.fprintf fmt "bad machine index %d" machine
  | Overlap { machine; at } -> Format.fprintf fmt "overlap on machine %d at t=%a" machine Rat.pp at
  | Bad_setup_duration { machine; cls; at; got } ->
    Format.fprintf fmt "setup of class %d on machine %d at t=%a has duration %a" cls machine Rat.pp at
      Rat.pp got
  | Missing_setup { machine; job; at } ->
    Format.fprintf fmt "job %d on machine %d at t=%a lacks a preceding setup" job machine Rat.pp at
  | Wrong_volume { job; got; expected } ->
    Format.fprintf fmt "job %d processed for %a, not its full time %a" job Rat.pp got Rat.pp expected
  | Self_parallel { machine; job; at } ->
    Format.fprintf fmt "job %d runs in parallel with itself on machine %d at t=%a" job machine Rat.pp
      at
  | Not_contiguous { machine; job; at } ->
    Format.fprintf fmt "job %d is not one contiguous block (breaks on machine %d at t=%a)" job
      machine Rat.pp at
  | Makespan_exceeded { machine; got; bound } ->
    Format.fprintf fmt "machine %d ends at t=%a > bound %a" machine Rat.pp got Rat.pp bound

let violation_to_string v = Format.asprintf "%a" pp_violation v

let check ?makespan_bound variant instance schedule =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  let m = Schedule.machines schedule in
  let n = Instance.n instance in
  (* The schedule must not place load on machines the instance does not
     have (an over-provisioned but empty tail is tolerated: wrapping
     sometimes allocates the full machine array up front). *)
  for u = instance.Instance.m to m - 1 do
    if Schedule.segments schedule u <> [] then report (Bad_machine_index { machine = u })
  done;
  (* Per-machine structure: ordering, setup durations, setup-before-class. *)
  for u = 0 to m - 1 do
    let segs = Schedule.segments schedule u in
    let rec scan prev_end prev_content = function
      | [] -> ()
      | (seg : Schedule.seg) :: rest ->
        if Rat.( < ) seg.start prev_end then report (Overlap { machine = u; at = seg.start });
        (match seg.content with
        | Schedule.Setup cls ->
          if not (Rat.equal seg.dur (Rat.of_int instance.Instance.setups.(cls))) then
            report (Bad_setup_duration { machine = u; cls; at = seg.start; got = seg.dur })
        | Schedule.Work job ->
          let cls = instance.Instance.job_class.(job) in
          let ok =
            match prev_content with
            | Some (Schedule.Setup c) -> c = cls
            | Some (Schedule.Work j) -> instance.Instance.job_class.(j) = cls
            | None -> false
          in
          if not ok then report (Missing_setup { machine = u; job; at = seg.start }));
        scan (Rat.add seg.start seg.dur) (Some seg.content) rest
    in
    scan Rat.zero None segs;
    (match makespan_bound with
    | Some bound ->
      let finish = Schedule.machine_end schedule u in
      if Rat.( > ) finish bound then report (Makespan_exceeded { machine = u; got = finish; bound })
    | None -> ())
  done;
  (* Volumes and variant-specific job constraints. *)
  let idx = Schedule.job_index ~n schedule in
  for j = 0 to n - 1 do
    let pieces = idx.(j) in
    let volume = List.fold_left (fun acc (_, _, d) -> Rat.add acc d) Rat.zero pieces in
    let expected = Rat.of_int instance.Instance.job_time.(j) in
    if not (Rat.equal volume expected) then report (Wrong_volume { job = j; got = volume; expected });
    match variant with
    | Variant.Splittable -> ()
    | Variant.Preemptive ->
      let sorted = List.sort (fun (_, a, _) (_, b, _) -> Rat.compare a b) pieces in
      let rec no_parallel prev_end = function
        | [] -> ()
        | (u, start, dur) :: rest ->
          if Rat.( < ) start prev_end then report (Self_parallel { machine = u; job = j; at = start });
          no_parallel (Rat.max prev_end (Rat.add start dur)) rest
      in
      no_parallel Rat.zero sorted
    | Variant.Nonpreemptive -> (
      match List.sort (fun (_, a, _) (_, b, _) -> Rat.compare a b) pieces with
      | [] -> () (* already reported as Wrong_volume *)
      | (u0, s0, d0) :: rest ->
        (* report the first piece breaking contiguity: a machine change or
           a start later/earlier than the previous piece's end *)
        let break, _ =
          List.fold_left
            (fun (break, prev_end) (u, s, d) ->
              let break =
                match break with
                | Some _ -> break
                | None -> if u = u0 && Rat.equal s prev_end then None else Some (u, s)
              in
              (break, Rat.add s d))
            (None, Rat.add s0 d0)
            rest
        in
        match break with
        | Some (u, at) -> report (Not_contiguous { machine = u; job = j; at })
        | None -> ())
  done;
  match !violations with
  | [] -> Ok ()
  | vs -> Error (List.rev vs)

let check_exn ?makespan_bound variant instance schedule =
  match check ?makespan_bound variant instance schedule with
  | Ok () -> ()
  | Error vs ->
    let msg = String.concat "; " (List.map violation_to_string vs) in
    failwith (Printf.sprintf "infeasible %s schedule: %s" (Variant.to_string variant) msg)

let is_feasible ?makespan_bound variant instance schedule =
  match check ?makespan_bound variant instance schedule with
  | Ok () -> true
  | Error _ -> false
