(** Problem instances of scheduling with batch setup times.

    An instance has [m] identical machines, [c] job classes with setup times
    [s_i >= 1], and [n] jobs, each belonging to one class with a processing
    time [t_j >= 1] (the paper's ℕ). Construction validates all invariants
    and precomputes the derived quantities every algorithm needs:
    [P(C_i)], [t^(i)_max], [N], [s_max], [t_max]. *)

type t = private {
  m : int;  (** number of machines, [>= 1] *)
  setups : int array;  (** [c] setup times, each [>= 1] *)
  job_class : int array;  (** class of job [j], in [\[0, c)] *)
  job_time : int array;  (** processing time of job [j], [>= 1] *)
  class_off : int array;
      (** CSR offsets, length [c + 1]: class [i]'s job ids live at indices
          [\[class_off.(i), class_off.(i+1))] of [class_job_ids] *)
  class_job_ids : int array;  (** flat job ids grouped by class, length [n] *)
  class_load : int array;  (** [P(C_i)] *)
  class_tmax : int array;  (** [t^(i)_max] *)
  total : int;  (** [N = Σ s_i + Σ t_j] *)
  s_max : int;
  t_max : int;
}

(** [make ~m ~setups ~jobs] builds an instance from [(class, time)] pairs.
    @raise Bss_resilience.Error.Error
      ([Invalid_input]) when [m < 1], any setup or time is [< 1], a class
      index is out of range, some class has no job, or the instance size
      [N] overflows the arithmetic headroom the searches need
      ([N <= max_int/8] — they evaluate points like [4(s_i + P_i)/3]). *)
val make : m:int -> setups:int array -> jobs:(int * int) array -> t

(** [n t] is the number of jobs. *)
val n : t -> int

(** [c t] is the number of classes. *)
val c : t -> int

(** [jobs_of_class t i] is the array of job ids in class [i] (a fresh copy
    of the CSR slice; hot paths should prefer {!iter_class_jobs} or
    {!fold_class_jobs}, which allocate nothing). *)
val jobs_of_class : t -> int -> int array

(** [class_size t i] is [|C_i|]. *)
val class_size : t -> int -> int

(** [class_job t i k] is the [k]-th job id of class [i], [0 <= k < |C_i|]. *)
val class_job : t -> int -> int -> int

(** [iter_class_jobs f t i] applies [f] to each job id of class [i] in CSR
    order, without copying. *)
val iter_class_jobs : (int -> unit) -> t -> int -> unit

(** [fold_class_jobs f acc t i] folds over class [i]'s job ids in CSR order,
    without copying. *)
val fold_class_jobs : ('a -> int -> 'a) -> 'a -> t -> int -> 'a

(** [delta t] is [max(s_max, t_max)], the largest input value [Δ]. *)
val delta : t -> int

(** [single_machine_bound t] is [N]: the makespan of running everything on
    one machine, an upper bound on [OPT] for every variant. *)
val single_machine_bound : t -> int

(** Render a compact human-readable description. *)
val describe : t -> string

(** Serialize to a simple line-oriented text format (see {!of_string}). *)
val to_string : t -> string

(** Parse the format produced by {!to_string}:
    {v
    m <machines>
    setups <s_1> ... <s_c>
    job <class> <time>        (one line per job)
    v}
    Blank lines and [#] comments are ignored.
    @raise Bss_resilience.Error.Error
      ([Invalid_input], carrying the 1-based line and field) on malformed
      input: unparseable or overflowing numbers, duplicate [m]/[setups]
      lines, trailing garbage on a line, or a missing [m]/[setups] line —
      plus everything {!make} rejects. *)
val of_string : string -> t

(** Structural equality (same machines, setups, and job multiset per class in
    the given order). *)
val equal : t -> t -> bool
