open Bss_util

type t = {
  tee : Rat.t;
  exp : int list;
  chp : int list;
  exp_plus : int list;
  exp_zero : int list;
  exp_minus : int list;
  chp_plus : int list;
  chp_minus : int list;
  chp_star : int list;
  big_jobs : int array array;
}

(* [s_i > T/2] without building T/2: [2 s_i > T]. [Rat.compare_int] keeps
   the whole test on the native fast tier with zero allocation. *)
let is_expensive inst tee i = Rat.compare_int tee (2 * inst.Instance.setups.(i)) < 0

let ratio_load_over_slack inst tee i =
  let s = inst.Instance.setups.(i) in
  let slack = Rat.sub tee (Rat.of_int s) in
  if Rat.sign slack <= 0 then invalid_arg "Partition: T <= s_i";
  Rat.div (Rat.of_int inst.Instance.class_load.(i)) slack

let alpha inst tee i = Rat.ceil_int (ratio_load_over_slack inst tee i)
let alpha' inst tee i = Rat.floor_int (ratio_load_over_slack inst tee i)

let beta inst tee i = Rat.ceil_int (Rat.div (Rat.of_int (2 * inst.Instance.class_load.(i))) tee)
let beta' inst tee i = Rat.floor_int (Rat.div (Rat.of_int (2 * inst.Instance.class_load.(i))) tee)

let gamma inst tee i =
  let b' = beta' inst tee i in
  (* P(C_i) - β'_i T/2 <= T - s_i  ⟺  2 P(C_i) + 2 s_i <= (β'_i + 2) T *)
  let lhs = Rat.of_int (2 * (inst.Instance.class_load.(i) + inst.Instance.setups.(i))) in
  let rhs = Rat.mul_int tee (b' + 2) in
  if Rat.( <= ) lhs rhs then max b' 1 else beta inst tee i

let make inst tee =
  let c = Instance.c inst in
  let exp = ref [] and chp = ref [] in
  let exp_plus = ref [] and exp_zero = ref [] and exp_minus = ref [] in
  let chp_plus = ref [] and chp_minus = ref [] and chp_star = ref [] in
  let big_jobs = Array.make c [||] in
  for i = c - 1 downto 0 do
    let s = inst.Instance.setups.(i) in
    let s_plus_load = s + inst.Instance.class_load.(i) in
    if is_expensive inst tee i then begin
      exp := i :: !exp;
      if Rat.compare_int tee s_plus_load <= 0 then exp_plus := i :: !exp_plus
      else if (* 4 (s_i + P(C_i)) > 3 T *) Rat.compare_scaled tee 3 (4 * s_plus_load) < 0 then
        exp_zero := i :: !exp_zero
      else exp_minus := i :: !exp_minus
    end
    else begin
      chp := i :: !chp;
      (* cheap: T/4 <= s_i splits I+chp from I-chp *)
      if Rat.compare_int tee (4 * s) <= 0 then chp_plus := i :: !chp_plus
      else begin
        chp_minus := i :: !chp_minus;
        let stars =
          Instance.fold_class_jobs
            (fun acc j ->
              if Rat.compare_int tee (2 * (s + inst.Instance.job_time.(j))) < 0 then j :: acc else acc)
            [] inst i
          |> List.rev
        in
        if stars <> [] then begin
          big_jobs.(i) <- Array.of_list stars;
          chp_star := i :: !chp_star
        end
      end
    end
  done;
  {
    tee;
    exp = !exp;
    chp = !chp;
    exp_plus = !exp_plus;
    exp_zero = !exp_zero;
    exp_minus = !exp_minus;
    chp_plus = !chp_plus;
    chp_minus = !chp_minus;
    chp_star = !chp_star;
    big_jobs;
  }

let j_plus inst tee =
  let acc = ref [] in
  for j = Instance.n inst - 1 downto 0 do
    if Rat.compare_int tee (2 * inst.Instance.job_time.(j)) < 0 then acc := j :: !acc
  done;
  Array.of_list !acc

let k_set inst tee =
  let acc = ref [] in
  for j = Instance.n inst - 1 downto 0 do
    let i = inst.Instance.job_class.(j) in
    let tj = inst.Instance.job_time.(j) in
    let small = Rat.compare_int tee (2 * tj) >= 0 in
    let heavy = Rat.compare_int tee (2 * (inst.Instance.setups.(i) + tj)) < 0 in
    if (not (is_expensive inst tee i)) && small && heavy then acc := j :: !acc
  done;
  Array.of_list !acc

let m_i inst tee i =
  if is_expensive inst tee i then alpha inst tee i
  else begin
    let s = inst.Instance.setups.(i) in
    let slack = Rat.sub tee (Rat.of_int s) in
    if Rat.sign slack <= 0 then invalid_arg "Partition.m_i: T <= s_i";
    let big = ref 0 and k_load = ref 0 in
    Instance.iter_class_jobs
      (fun j ->
        let tj = inst.Instance.job_time.(j) in
        if Rat.compare_int tee (2 * tj) < 0 then incr big
        else if Rat.compare_int tee (2 * (s + tj)) < 0 then k_load := !k_load + tj)
      inst i;
    !big + Rat.ceil_int (Rat.div (Rat.of_int !k_load) slack)
  end
