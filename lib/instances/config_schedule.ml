open Bss_util

type config = { segments : Schedule.seg list; multiplicity : int }

type t = { m : int; configs : config list }

(* canonical key for grouping: the sorted segment list *)
let layout_key segs =
  List.map
    (fun (s : Schedule.seg) ->
      ( Rat.to_string s.Schedule.start,
        Rat.to_string s.Schedule.dur,
        match s.Schedule.content with
        | Schedule.Setup i -> (0, i)
        | Schedule.Work j -> (1, j) ))
    segs

let of_schedule sched =
  let m = Schedule.machines sched in
  let table = Hashtbl.create 16 in
  let order = ref [] in
  for u = 0 to m - 1 do
    match Schedule.segments sched u with
    | [] -> ()
    | segs ->
      let key = layout_key segs in
      (match Hashtbl.find_opt table key with
      | Some r -> incr r
      | None ->
        Hashtbl.add table key (ref 1);
        order := (key, segs) :: !order)
  done;
  let configs =
    List.rev_map
      (fun (key, segs) -> { segments = segs; multiplicity = !(Hashtbl.find table key) })
      !order
  in
  { m; configs }

let expand t =
  List.iter
    (fun c -> if c.multiplicity < 1 then invalid_arg "Config_schedule.expand: multiplicity < 1")
    t.configs;
  let used = List.fold_left (fun acc c -> acc + c.multiplicity) 0 t.configs in
  if used > t.m then invalid_arg "Config_schedule.expand: multiplicities exceed m";
  let sched = Schedule.create t.m in
  let u = ref 0 in
  List.iter
    (fun c ->
      for _ = 1 to c.multiplicity do
        List.iter (fun seg -> Schedule.add sched ~machine:!u seg) c.segments;
        incr u
      done)
    t.configs;
  sched

let config_end c =
  List.fold_left (fun acc (s : Schedule.seg) -> Rat.max acc (Rat.add s.Schedule.start s.Schedule.dur)) Rat.zero
    c.segments

let config_load c = List.fold_left (fun acc (s : Schedule.seg) -> Rat.add acc s.Schedule.dur) Rat.zero c.segments

let makespan t = List.fold_left (fun acc c -> Rat.max acc (config_end c)) Rat.zero t.configs

let total_load t =
  List.fold_left (fun acc c -> Rat.add acc (Rat.mul_int (config_load c) c.multiplicity)) Rat.zero t.configs

let machines_used t = List.fold_left (fun acc c -> acc + c.multiplicity) 0 t.configs

let size t = List.fold_left (fun acc c -> acc + List.length c.segments) 0 t.configs

let check_splittable inst t =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  if machines_used t > t.m then report (Checker.Bad_machine_index { machine = t.m });
  let volumes = Array.make (Instance.n inst) Rat.zero in
  List.iteri
    (fun idx c ->
      (* one representative machine per configuration *)
      let rec scan prev_end prev_content = function
        | [] -> ()
        | (seg : Schedule.seg) :: rest ->
          if Rat.( < ) seg.Schedule.start prev_end then
            report (Checker.Overlap { machine = idx; at = seg.Schedule.start });
          (match seg.Schedule.content with
          | Schedule.Setup cls ->
            if not (Rat.equal seg.Schedule.dur (Rat.of_int inst.Instance.setups.(cls))) then
              report
                (Checker.Bad_setup_duration
                   { machine = idx; cls; at = seg.Schedule.start; got = seg.Schedule.dur })
          | Schedule.Work job ->
            volumes.(job) <-
              Rat.add volumes.(job) (Rat.mul_int seg.Schedule.dur c.multiplicity);
            let cls = inst.Instance.job_class.(job) in
            let ok =
              match prev_content with
              | Some (Schedule.Setup c') -> c' = cls
              | Some (Schedule.Work j') -> inst.Instance.job_class.(j') = cls
              | None -> false
            in
            if not ok then
              report (Checker.Missing_setup { machine = idx; job; at = seg.Schedule.start }));
          scan (Rat.add seg.Schedule.start seg.Schedule.dur) (Some seg.Schedule.content) rest
      in
      scan Rat.zero None c.segments)
    t.configs;
  Array.iteri
    (fun j v ->
      let expected = Rat.of_int inst.Instance.job_time.(j) in
      if not (Rat.equal v expected) then report (Checker.Wrong_volume { job = j; got = v; expected }))
    volumes;
  match !violations with
  | [] -> Ok ()
  | vs -> Error (List.rev vs)
