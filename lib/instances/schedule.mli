(** Explicit schedules: per-machine lists of time segments.

    A segment either performs the setup of a class or processes a piece of a
    job. All coordinates are exact rationals ({!Bss_util.Rat}), matching the
    fractional split points produced by wrapping and by rational makespan
    guesses. Segments may be appended in any order; accessors return them
    sorted by start time. *)

open Bss_util

type content =
  | Setup of int  (** class id *)
  | Work of int  (** job id *)

type seg = { start : Rat.t; dur : Rat.t; content : content }

type t

(** [create m] is an empty schedule on [m] machines.
    @raise Invalid_argument when [m < 1]. *)
val create : int -> t

val machines : t -> int

(** [add t ~machine seg] appends a segment. Zero-duration segments are
    silently dropped (wrapping can produce empty tail pieces).
    @raise Invalid_argument on a bad machine index or negative duration. *)
val add : t -> machine:int -> seg -> unit

(** [add_setup t ~machine ~cls ~start ~dur] convenience wrapper. *)
val add_setup : t -> machine:int -> cls:int -> start:Rat.t -> dur:Rat.t -> unit

(** [add_work t ~machine ~job ~start ~dur] convenience wrapper. *)
val add_work : t -> machine:int -> job:int -> start:Rat.t -> dur:Rat.t -> unit

(** [segments t u] is machine [u]'s segments sorted by start time. *)
val segments : t -> int -> seg list

(** [all_segments t] is [(machine, seg)] for every segment, unordered. *)
val all_segments : t -> (int * seg) list

(** [machine_end t u] is the end of the last segment on [u] ([0] if empty);
    idle gaps count, so this is the completion time, not the busy load. *)
val machine_end : t -> int -> Rat.t

(** [machine_load t u] is the total busy time (setups + work) on [u]. *)
val machine_load : t -> int -> Rat.t

(** [makespan t] is the maximum {!machine_end} over all machines. *)
val makespan : t -> Rat.t

(** [total_load t] is the sum of {!machine_load}. *)
val total_load : t -> Rat.t

(** [work_of_job t j] is every work piece of job [j] as
    [(machine, start, dur)], unordered. Built lazily per call in [O(total
    segments)]; use {!job_index} for bulk queries. *)
val work_of_job : t -> int -> (int * Rat.t * Rat.t) list

(** [job_index ~n t] is an array mapping each job id in [\[0,n)] to its work
    pieces [(machine, start, dur)], unordered. *)
val job_index : n:int -> t -> (int * Rat.t * Rat.t) list array

(** [setup_count t ~cls] is the number of setup segments of class [cls]. *)
val setup_count : t -> cls:int -> int

(** [total_setup_count t] is the number of setup segments. *)
val total_setup_count : t -> int

(** [copy t] is an independent deep copy. *)
val copy : t -> t

(** [remove_machine_segments t u] clears machine [u] and returns its former
    segments sorted by start (used by repair steps that re-place load). *)
val remove_machine_segments : t -> int -> seg list

(** [equal a b] holds when both schedules place the same segments (same
    start, duration and content under {!Bss_util.Rat.equal}) on the same
    machines. Semantic, not structural: rationals on different {!Num2} tiers
    compare by value, so a fast-tier schedule can be certified against a
    force-exact one. *)
val equal : t -> t -> bool
