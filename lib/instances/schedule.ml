open Bss_util

type content =
  | Setup of int
  | Work of int

type seg = { start : Rat.t; dur : Rat.t; content : content }

type t = { m : int; segs : seg list array (* reverse append order *) }

let create m =
  if m < 1 then invalid_arg "Schedule.create: m < 1";
  { m; segs = Array.make m [] }

let machines t = t.m

let add t ~machine seg =
  if machine < 0 || machine >= t.m then invalid_arg "Schedule.add: bad machine";
  if Rat.sign seg.dur < 0 then invalid_arg "Schedule.add: negative duration";
  if Rat.sign seg.start < 0 then invalid_arg "Schedule.add: negative start";
  if not (Rat.is_zero seg.dur) then t.segs.(machine) <- seg :: t.segs.(machine)

let add_setup t ~machine ~cls ~start ~dur = add t ~machine { start; dur; content = Setup cls }
let add_work t ~machine ~job ~start ~dur = add t ~machine { start; dur; content = Work job }

let by_start a b = Rat.compare a.start b.start

let segments t u = List.sort by_start t.segs.(u)

let all_segments t =
  let acc = ref [] in
  for u = 0 to t.m - 1 do
    List.iter (fun s -> acc := (u, s) :: !acc) t.segs.(u)
  done;
  !acc

let machine_end t u =
  List.fold_left (fun acc s -> Rat.max acc (Rat.add s.start s.dur)) Rat.zero t.segs.(u)

let machine_load t u = List.fold_left (fun acc s -> Rat.add acc s.dur) Rat.zero t.segs.(u)

let makespan t =
  let best = ref Rat.zero in
  for u = 0 to t.m - 1 do
    best := Rat.max !best (machine_end t u)
  done;
  !best

let total_load t =
  let acc = ref Rat.zero in
  for u = 0 to t.m - 1 do
    acc := Rat.add !acc (machine_load t u)
  done;
  !acc

let work_of_job t j =
  let acc = ref [] in
  for u = 0 to t.m - 1 do
    List.iter
      (fun s ->
        match s.content with
        | Work j' when j' = j -> acc := (u, s.start, s.dur) :: !acc
        | Work _ | Setup _ -> ())
      t.segs.(u)
  done;
  !acc

let job_index ~n t =
  let idx = Array.make n [] in
  for u = 0 to t.m - 1 do
    List.iter
      (fun s ->
        match s.content with
        | Work j when j >= 0 && j < n -> idx.(j) <- (u, s.start, s.dur) :: idx.(j)
        | Work _ | Setup _ -> ())
      t.segs.(u)
  done;
  idx

let setup_count t ~cls =
  let k = ref 0 in
  for u = 0 to t.m - 1 do
    List.iter
      (fun s ->
        match s.content with
        | Setup i when i = cls -> incr k
        | Setup _ | Work _ -> ())
      t.segs.(u)
  done;
  !k

let total_setup_count t =
  let k = ref 0 in
  for u = 0 to t.m - 1 do
    List.iter
      (fun s ->
        match s.content with
        | Setup _ -> incr k
        | Work _ -> ())
      t.segs.(u)
  done;
  !k

let copy t = { m = t.m; segs = Array.copy t.segs }

let remove_machine_segments t u =
  let old = segments t u in
  t.segs.(u) <- [];
  old

let seg_equal a b =
  Rat.equal a.start b.start && Rat.equal a.dur b.dur
  &&
  match (a.content, b.content) with
  | Setup i, Setup i' -> i = i'
  | Work j, Work j' -> j = j'
  | Setup _, Work _ | Work _, Setup _ -> false

let equal a b =
  a.m = b.m
  &&
  let rec segs_eq xs ys =
    match (xs, ys) with
    | [], [] -> true
    | x :: xs, y :: ys -> seg_equal x y && segs_eq xs ys
    | _ -> false
  in
  let rec machines_eq u = u >= a.m || (segs_eq (segments a u) (segments b u) && machines_eq (u + 1)) in
  machines_eq 0
