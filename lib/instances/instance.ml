module Error = Bss_resilience.Error

type t = {
  m : int;
  setups : int array;
  job_class : int array;
  job_time : int array;
  class_off : int array;
  class_job_ids : int array;
  class_load : int array;
  class_tmax : int array;
  total : int;
  s_max : int;
  t_max : int;
}

(* Headroom cap: the searches evaluate breakpoints like [2N], [4 s_i] and
   [4(s_i + P_i)/3] in native ints, so construction rejects instances whose
   total size N could make those overflow. *)
let max_total = max_int / 8

let checked_total ~setups ~job_time =
  let acc = ref 0 in
  let add v =
    let s = !acc + v in
    if s < 0 then Error.invalid_input ~field:"total" "instance size overflows max_int";
    acc := s
  in
  Array.iter add setups;
  Array.iter add job_time;
  if !acc > max_total then
    Error.invalid_input ~field:"total"
      (Printf.sprintf "instance size %d exceeds the supported maximum max_int/8" !acc);
  !acc

let make ~m ~setups ~jobs =
  let c = Array.length setups in
  if m < 1 then Error.invalid_input ~field:"m" "m < 1";
  if c < 1 then Error.invalid_input ~field:"setups" "no classes";
  Array.iteri
    (fun i s -> if s < 1 then Error.invalid_input ~field:"setup" (Printf.sprintf "setup of class %d < 1" i))
    setups;
  let n = Array.length jobs in
  if n < 1 then Error.invalid_input ~field:"jobs" "no jobs";
  let job_class = Array.make n 0 and job_time = Array.make n 0 in
  let count = Array.make c 0 in
  Array.iteri
    (fun j (cls, time) ->
      if cls < 0 || cls >= c then
        Error.invalid_input ~field:"class" (Printf.sprintf "job %d: class %d out of range [0, %d)" j cls c);
      if time < 1 then Error.invalid_input ~field:"time" (Printf.sprintf "job %d: time < 1" j);
      job_class.(j) <- cls;
      job_time.(j) <- time;
      count.(cls) <- count.(cls) + 1)
    jobs;
  Array.iteri
    (fun i k -> if k = 0 then Error.invalid_input ~field:"class" (Printf.sprintf "class %d empty" i))
    count;
  let total = checked_total ~setups ~job_time in
  (* CSR class layout: class [i]'s job ids are the flat slice
     [class_job_ids.(class_off.(i) .. class_off.(i+1) - 1)] — one contiguous
     array instead of [c] heap-separated ones, so the hot per-class loops
     walk cache lines, not pointers. *)
  let class_off = Array.make (c + 1) 0 in
  for i = 0 to c - 1 do
    class_off.(i + 1) <- class_off.(i) + count.(i)
  done;
  let class_job_ids = Array.make n 0 in
  let fill = Array.copy class_off in
  for j = 0 to n - 1 do
    let i = job_class.(j) in
    class_job_ids.(fill.(i)) <- j;
    fill.(i) <- fill.(i) + 1
  done;
  let class_load = Array.make c 0 and class_tmax = Array.make c 0 in
  for j = 0 to n - 1 do
    let i = job_class.(j) in
    class_load.(i) <- class_load.(i) + job_time.(j);
    if job_time.(j) > class_tmax.(i) then class_tmax.(i) <- job_time.(j)
  done;
  {
    m;
    setups = Array.copy setups;
    job_class;
    job_time;
    class_off;
    class_job_ids;
    class_load;
    class_tmax;
    total;
    s_max = Bss_util.Intmath.max_array setups;
    t_max = Bss_util.Intmath.max_array job_time;
  }

let n t = Array.length t.job_time
let c t = Array.length t.setups
let class_size t i = t.class_off.(i + 1) - t.class_off.(i)
let jobs_of_class t i = Array.sub t.class_job_ids t.class_off.(i) (class_size t i)
let class_job t i k = t.class_job_ids.(t.class_off.(i) + k)

let iter_class_jobs f t i =
  for p = t.class_off.(i) to t.class_off.(i + 1) - 1 do
    f t.class_job_ids.(p)
  done

let fold_class_jobs f acc t i =
  let acc = ref acc in
  for p = t.class_off.(i) to t.class_off.(i + 1) - 1 do
    acc := f !acc t.class_job_ids.(p)
  done;
  !acc
let delta t = max t.s_max t.t_max
let single_machine_bound t = t.total

let describe t =
  Printf.sprintf "instance: m=%d c=%d n=%d N=%d smax=%d tmax=%d" t.m (c t) (n t) t.total t.s_max t.t_max

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "m %d\n" t.m);
  Buffer.add_string buf "setups";
  Array.iter (fun s -> Buffer.add_string buf (" " ^ string_of_int s)) t.setups;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun j cls -> Buffer.add_string buf (Printf.sprintf "job %d %d\n" cls t.job_time.(j)))
    t.job_class;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let m = ref None and setups = ref None and jobs = ref [] in
  let parse_int ~line ~field w =
    (* [int_of_string_opt] rejects both garbage and numbers beyond
       max_int, so overflow-adjacent literals surface here, typed *)
    match int_of_string_opt w with
    | Some v -> v
    | None -> Error.invalid_input ~line ~field ("not a machine integer: " ^ w)
  in
  let parse_line idx raw =
    let line = idx + 1 in
    let text = String.trim raw in
    if text = "" || text.[0] = '#' then ()
    else begin
      match String.split_on_char ' ' text |> List.filter (fun w -> w <> "") with
      | [ "m"; v ] ->
        if !m <> None then Error.invalid_input ~line ~field:"m" "duplicate m line";
        m := Some (parse_int ~line ~field:"m" v)
      | "setups" :: vs ->
        if !setups <> None then Error.invalid_input ~line ~field:"setups" "duplicate setups line";
        if vs = [] then Error.invalid_input ~line ~field:"setups" "setups line has no values";
        setups := Some (Array.of_list (List.map (fun v -> parse_int ~line ~field:"setup" v) vs))
      | [ "job"; cls; time ] ->
        jobs := (parse_int ~line ~field:"class" cls, parse_int ~line ~field:"time" time) :: !jobs
      | _ -> Error.invalid_input ~line ~field:"line" ("unrecognized: " ^ text)
    end
  in
  List.iteri parse_line lines;
  match (!m, !setups) with
  | Some m, Some setups -> make ~m ~setups ~jobs:(Array.of_list (List.rev !jobs))
  | None, _ -> Error.invalid_input ~field:"m" "missing m line"
  | _, None -> Error.invalid_input ~field:"setups" "missing setups line"

let equal a b =
  a.m = b.m && a.setups = b.setups && a.job_class = b.job_class && a.job_time = b.job_time
