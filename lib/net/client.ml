module Request = Bss_service.Request
module Slo = Bss_obs.Slo
module Hist = Bss_obs.Hist
module Timeseries = Bss_obs.Timeseries

type config = {
  connect_path : string;
  window : int;
  rounds : int;
  connect_timeout_ms : int;
  idle_timeout_ms : int;
  slo : Slo.t option;
  watch : bool;
}

let default_config =
  {
    connect_path = "";
    window = 8;
    rounds = 1;
    connect_timeout_ms = 5_000;
    idle_timeout_ms = 10_000;
    slo = None;
    watch = false;
  }

type row = {
  id : string;
  tenant : string;
  status : string;
  variant : string;
  rung : string option;
  makespan : string option;
  retries : int;
  checkpointed : bool;
  solve_ns : int64;
  queue_wait_ns : int64;
}

type summary = {
  sent : int;
  answered : int;
  completed : int;
  shed : int;
  rejected : int;
  aborted : int;
  duplicates : int;
  protocol_errors : int;
  reconnects : int;
  rows : row list;
  unanswered : string list;
  shed_by_tenant : (string * int) list;
  slo_verdict : Slo.verdict option;
  watch_windows : int;
  watch_alerts : int;
}

let now () = Monotonic_clock.now ()
let ms_ns ms = Int64.mul (Int64.of_int ms) 1_000_000L

(* A peer that vanishes mid-write must surface as EPIPE, not kill the
   process. *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let connect ~path ~timeout_ms =
  ignore_sigpipe ();
  let deadline = Int64.add (now ()) (ms_ns timeout_ms) in
  let rec go () =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED | ENOTDIR), _, _) ->
      (try Unix.close fd with _ -> ());
      if Int64.compare (now ()) deadline < 0 then begin
        Unix.sleepf 0.05;
        go ()
      end
      else None
    | exception e ->
      (try Unix.close fd with _ -> ());
      raise e
  in
  go ()

let row_of_result ~id ~tenant ~status ~variant ~rung ~makespan ~retries ~checkpointed ~solve_ns
    ~queue_wait_ns =
  { id; tenant; status; variant; rung; makespan; retries; checkpointed; solve_ns; queue_wait_ns }

(* One connection's worth of pumping: send [pending] (stream order)
   under a [window]-deep pipeline, collect result frames. Ends on
   everything-answered, EOF, a shutdown frame, or idle timeout. *)
let pump fd config ~pending ~answered ~sent ~duplicates ~protocol_errors ~watch_windows
    ~watch_alerts =
  let rbuf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let to_send = ref pending in
  let inflight = ref 0 in
  let stop = ref false in
  let write_all frame =
    let len = String.length frame in
    let off = ref 0 in
    try
      while !off < len do
        off := !off + Unix.write_substring fd frame !off (len - !off)
      done;
      true
    with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      stop := true;
      false
  in
  (* subscribe before the first solve: windows interleave with result
     frames on the same connection — the watch-overhead soak *)
  if config.watch then ignore (write_all (Wire.watch_frame ^ "\n"));
  let send_one (r : Request.t) =
    if write_all (Wire.solve_frame r ^ "\n") then begin
      incr sent;
      incr inflight
    end
  in
  let handle_line line =
    if line <> "" then
      match Wire.parse_reply line with
      | Ok (Wire.Result { id; tenant; status; variant; rung; makespan; retries; checkpointed;
                          solve_ns; queue_wait_ns; _ }) ->
        if Hashtbl.mem answered id then incr duplicates
        else begin
          Hashtbl.replace answered id
            (row_of_result ~id ~tenant ~status ~variant ~rung ~makespan ~retries ~checkpointed
               ~solve_ns ~queue_wait_ns);
          decr inflight
        end
      | Ok Wire.Pong -> ()
      | Ok (Wire.Window w) ->
        incr watch_windows;
        watch_alerts := !watch_alerts + List.length w.Timeseries.alerts
      | Ok (Wire.Shutdown _) -> stop := true
      | Ok (Wire.Error_frame _) | Error _ -> incr protocol_errors
  in
  while not !stop && (!to_send <> [] || !inflight > 0) do
    while (not !stop) && !inflight < config.window && !to_send <> [] do
      match !to_send with
      | [] -> ()
      | r :: rest ->
        to_send := rest;
        send_one r
    done;
    if not !stop then begin
      match Unix.select [ fd ] [] [] (float_of_int config.idle_timeout_ms /. 1000.) with
      | [], _, _ -> stop := true (* idle: the server went away without closing *)
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> stop := true
        | n ->
          Buffer.add_subbytes rbuf chunk 0 n;
          List.iter handle_line (Wire.drain_lines rbuf)
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> stop := true
        | exception Unix.Unix_error (EINTR, _, _) -> ())
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    end
  done

let slo_sample rows =
  let solve_hists : (string, Hist.t) Hashtbl.t = Hashtbl.create 4 in
  let queue_hist = Hist.create () in
  let completed = ref 0 and rejected = ref 0 and aborted = ref 0 and retries = ref 0 in
  List.iter
    (fun r ->
      retries := !retries + r.retries;
      match r.status with
      | "done" ->
        incr completed;
        if not r.checkpointed then begin
          let h =
            match Hashtbl.find_opt solve_hists r.variant with
            | Some h -> h
            | None ->
              let h = Hist.create () in
              Hashtbl.add solve_hists r.variant h;
              h
          in
          Hist.record h (Int64.to_float r.solve_ns);
          Hist.record queue_hist (Int64.to_float r.queue_wait_ns)
        end
      | "aborted" -> incr aborted
      | _ -> incr rejected (* "rejected" and quota "shed" both burn error budget *))
    rows;
  let hists =
    Hashtbl.fold
      (fun v h acc -> ("service.solve_ns." ^ v, Hist.snapshot h) :: acc)
      solve_hists
      [ ("service.queue.wait_ns", Hist.snapshot queue_hist) ]
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    Slo.completed = !completed;
    rejected = !rejected;
    aborted = !aborted;
    retries = !retries;
    hists;
  }

let soak config (requests : Request.t list) =
  if config.window < 1 then invalid_arg "Client: window < 1";
  if config.rounds < 1 then invalid_arg "Client: rounds < 1";
  let answered : (string, row) Hashtbl.t = Hashtbl.create (List.length requests) in
  let sent = ref 0 and duplicates = ref 0 and protocol_errors = ref 0 and reconnects = ref 0 in
  let watch_windows = ref 0 and watch_alerts = ref 0 in
  let unanswered () =
    List.filter (fun (r : Request.t) -> not (Hashtbl.mem answered r.Request.id)) requests
  in
  let round = ref 0 in
  let give_up = ref false in
  while (not !give_up) && !round < config.rounds && unanswered () <> [] do
    incr round;
    if !round > 1 then incr reconnects;
    match connect ~path:config.connect_path ~timeout_ms:config.connect_timeout_ms with
    | None -> give_up := true
    | Some fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          pump fd config ~pending:(unanswered ()) ~answered ~sent ~duplicates ~protocol_errors
            ~watch_windows ~watch_alerts)
  done;
  let rows =
    List.filter_map (fun (r : Request.t) -> Hashtbl.find_opt answered r.Request.id) requests
  in
  let count st = List.length (List.filter (fun r -> r.status = st) rows) in
  let shed_by_tenant =
    List.fold_left
      (fun acc r ->
        if r.status <> "shed" then acc
        else
          match List.assoc_opt r.tenant acc with
          | Some n -> (r.tenant, n + 1) :: List.remove_assoc r.tenant acc
          | None -> (r.tenant, 1) :: acc)
      [] rows
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let slo_verdict =
    Option.map (fun slo -> Slo.final (Slo.engine slo) (slo_sample rows)) config.slo
  in
  {
    sent = !sent;
    answered = Hashtbl.length answered;
    completed = count "done";
    shed = count "shed";
    rejected = count "rejected";
    aborted = count "aborted";
    duplicates = !duplicates;
    protocol_errors = !protocol_errors;
    reconnects = !reconnects;
    rows;
    unanswered = List.map (fun (r : Request.t) -> r.Request.id) (unanswered ());
    shed_by_tenant;
    slo_verdict;
    watch_windows = !watch_windows;
    watch_alerts = !watch_alerts;
  }

let ok s = s.unanswered = [] && s.duplicates = 0 && s.protocol_errors = 0
           && match s.slo_verdict with Some v -> v.Slo.ok | None -> true

let render_rows s =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s\t%s\t%s\t%s\n" r.id r.status
           (Option.value ~default:"-" r.rung)
           (Option.value ~default:"-" r.makespan)))
    s.rows;
  Buffer.contents b

let render_summary s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "netsoak: sent=%d answered=%d done=%d shed=%d rejected=%d aborted=%d dup=%d\n"
       s.sent s.answered s.completed s.shed s.rejected s.aborted s.duplicates);
  Buffer.add_string b
    (Printf.sprintf "netsoak: reconnects=%d protocol_errors=%d unanswered=%d\n" s.reconnects
       s.protocol_errors (List.length s.unanswered));
  if s.watch_windows > 0 then
    Buffer.add_string b
      (Printf.sprintf "netsoak: watch windows=%d alerts=%d\n" s.watch_windows s.watch_alerts);
  if s.shed_by_tenant <> [] then begin
    Buffer.add_string b "netsoak: shed";
    List.iter
      (fun (tenant, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" tenant n))
      s.shed_by_tenant;
    Buffer.add_char b '\n'
  end;
  (match s.slo_verdict with
  | Some v -> Buffer.add_string b (Slo.verdict_text v)
  | None -> ());
  Buffer.contents b

(* Single raw frame in, single reply line out — the cram harness's
   protocol probe. *)
let send_raw ~path ~connect_timeout_ms ~idle_timeout_ms raw =
  match connect ~path ~timeout_ms:connect_timeout_ms with
  | None -> Error "connect: timed out"
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        let frame = raw ^ "\n" in
        let len = String.length frame in
        let off = ref 0 in
        try
          while !off < len do
            off := !off + Unix.write_substring fd frame !off (len - !off)
          done;
          let rbuf = Buffer.create 256 in
          let chunk = Bytes.create 4096 in
          let line = ref None in
          let stop = ref false in
          while !line = None && not !stop do
            match Unix.select [ fd ] [] [] (float_of_int idle_timeout_ms /. 1000.) with
            | [], _, _ -> stop := true
            | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> stop := true
              | n ->
                Buffer.add_subbytes rbuf chunk 0 n;
                (match Wire.drain_lines rbuf with l :: _ -> line := Some l | [] -> ())
              | exception Unix.Unix_error (EINTR, _, _) -> ())
            | exception Unix.Unix_error (EINTR, _, _) -> ()
          done;
          match !line with
          | Some l -> Ok l
          | None -> Error "no reply before timeout/EOF"
        with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> Error "connection reset")
