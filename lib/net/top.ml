module Timeseries = Bss_obs.Timeseries
module Hist = Bss_obs.Hist

type config = {
  connect_path : string;
  connect_timeout_ms : int;
  idle_timeout_ms : int;
  max_windows : int option;
  json : bool;
  clear : bool;
}

let default_config =
  {
    connect_path = "";
    connect_timeout_ms = 5_000;
    idle_timeout_ms = 10_000;
    max_windows = None;
    json = false;
    clear = false;
  }

type summary = {
  windows : int;
  alerts : int;
  final_seen : bool;
  last : Timeseries.window option;
}

let now () = Monotonic_clock.now ()
let ms_ns ms = Int64.mul (Int64.of_int ms) 1_000_000L

let connect ~path ~timeout_ms =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let deadline = Int64.add (now ()) (ms_ns timeout_ms) in
  let rec go () =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED | ENOTDIR), _, _) ->
      (try Unix.close fd with _ -> ());
      if Int64.compare (now ()) deadline < 0 then begin
        Unix.sleepf 0.05;
        go ()
      end
      else None
    | exception e ->
      (try Unix.close fd with _ -> ());
      raise e
  in
  go ()

(* ---------------- the dashboard rendering ---------------- *)

let state_name = function
  | 0 -> "closed"
  | 1 -> "open"
  | 2 -> "half-open"
  | n -> string_of_int n

let solve_prefix = "service.solve_ns."

let ms_of_ns ns = ns /. 1e6

let render (w : Timeseries.window) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "bss top — window %d%s  processed=%d (+%d)\n" w.Timeseries.id
    (if w.Timeseries.final then " [final]" else if w.Timeseries.live then " [live]" else "")
    w.Timeseries.upto w.Timeseries.span;
  let c k = Option.value ~default:0 (List.assoc_opt k w.Timeseries.counters) in
  add "  requests  +%d done  +%d aborted  +%d rejected  +%d retries  +%d breaker-transitions\n"
    (c "service.completed") (c "service.aborted") (c "service.rejected") (c "service.retries")
    (c "service.breaker.transitions");
  (* any counter series beyond the known five still shows — the
     dashboard renders the window, not a fixed schema *)
  List.iter
    (fun (k, v) ->
      match k with
      | "service.completed" | "service.aborted" | "service.rejected" | "service.retries"
      | "service.breaker.transitions" ->
        ()
      | _ -> add "  counter   %s +%d\n" k v)
    w.Timeseries.counters;
  let l k = Option.value ~default:0 (List.assoc_opt k w.Timeseries.load) in
  add "  queue     depth=%d peak=%d waves=%d\n" (l "service.queue.depth")
    (l "service.queue.peak") (l "service.waves");
  List.iter
    (fun (k, v) ->
      let variant =
        if String.length k > String.length "service.breaker.state." then
          String.sub k (String.length "service.breaker.state.")
            (String.length k - String.length "service.breaker.state.")
        else k
      in
      add "  breaker   %-16s %s\n" variant (state_name v))
    w.Timeseries.gauges;
  List.iter
    (fun (k, (h : Hist.snapshot)) ->
      if
        String.length k > String.length solve_prefix
        && String.sub k 0 (String.length solve_prefix) = solve_prefix
        && h.Hist.count > 0
      then
        let variant =
          String.sub k (String.length solve_prefix) (String.length k - String.length solve_prefix)
        in
        add "  solve     %-16s %5d req  p50=%.2fms p90=%.2fms p99=%.2fms\n" variant h.Hist.count
          (ms_of_ns (Hist.quantile h 0.50))
          (ms_of_ns (Hist.quantile h 0.90))
          (ms_of_ns (Hist.quantile h 0.99)))
    w.Timeseries.hists;
  (match List.assoc_opt "service.queue.wait_ns" w.Timeseries.hists with
  | Some h when h.Hist.count > 0 ->
    add "  wait      %5d obs  p50=%.2fms p99=%.2fms\n" h.Hist.count
      (ms_of_ns (Hist.quantile h 0.50))
      (ms_of_ns (Hist.quantile h 0.99))
  | _ -> ());
  List.iter
    (fun (a : Timeseries.alert) ->
      add "  ALERT     %s %s value=%.6g baseline=%.6g\n" a.Timeseries.kind a.Timeseries.series
        a.Timeseries.value a.Timeseries.baseline)
    w.Timeseries.alerts;
  Buffer.contents b

(* ---------------- the stream loop ---------------- *)

let run ?(out = print_string) config =
  match connect ~path:config.connect_path ~timeout_ms:config.connect_timeout_ms with
  | None -> Error "connect: timed out"
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        let frame = Wire.watch_frame ^ "\n" in
        let len = String.length frame in
        let off = ref 0 in
        try
          while !off < len do
            off := !off + Unix.write_substring fd frame !off (len - !off)
          done;
          let rbuf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let windows = ref 0 and alerts = ref 0 in
          let final_seen = ref false in
          let last = ref None in
          let stop = ref false in
          let err = ref None in
          let handle_line line =
            if (not !stop) && line <> "" then
              match Wire.parse_reply line with
              | Ok (Wire.Window w) ->
                incr windows;
                alerts := !alerts + List.length w.Timeseries.alerts;
                last := Some w;
                if config.json then out (line ^ "\n")
                else begin
                  if config.clear then out "\027[H\027[2J";
                  out (render w)
                end;
                if w.Timeseries.final then begin
                  final_seen := true;
                  stop := true
                end;
                (match config.max_windows with
                | Some n when !windows >= n -> stop := true
                | _ -> ())
              | Ok (Wire.Shutdown _) -> stop := true
              | Ok (Wire.Error_frame { error; _ }) ->
                err := Some ("server refused watch: " ^ error);
                stop := true
              | Ok _ -> ()
              | Error e ->
                err := Some ("malformed frame: " ^ e);
                stop := true
          in
          while not !stop do
            match Unix.select [ fd ] [] [] (float_of_int config.idle_timeout_ms /. 1000.) with
            | [], _, _ -> stop := true (* idle: the server went away without closing *)
            | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> stop := true
              | n ->
                Buffer.add_subbytes rbuf chunk 0 n;
                List.iter handle_line (Wire.drain_lines rbuf)
              | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> stop := true
              | exception Unix.Unix_error (EINTR, _, _) -> ())
            | exception Unix.Unix_error (EINTR, _, _) -> ()
          done;
          match !err with
          | Some e -> Error e
          | None ->
            Ok { windows = !windows; alerts = !alerts; final_seen = !final_seen; last = !last }
        with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> Error "connection reset")
