(** The [bss-net/1] wire codec: newline-delimited JSON frames over a
    Unix-domain stream socket.

    Every frame is one JSON object on one line, terminated by ['\n'].
    Requests carry [{"schema":"bss-net/1","op":...}] with op [solve]
    (a {!Bss_service.Request.t}: id, tenant, variant, algorithm, and a
    source of either [{"file":path}] or
    [{"gen":{family,seed,m,n}}]), [ping], [stats] (one on-demand live
    telemetry window) or [watch] (subscribe this connection to the
    server-pushed window stream — see docs/observability.md). Responses
    carry op [result] (terminal per-request answer, status
    [done|rejected|aborted|shed]), [pong], [error] (protocol-level
    rejection of a malformed or duplicate frame — the connection stays
    open), or [shutdown] (the server is draining; no further frames
    will be answered). Telemetry windows are the exception to the op
    rule: they travel as bare [bss-watch/1] objects
    ({!Bss_obs.Timeseries.window_json}) with no [op], so the watch
    stream is exactly the line format [bss top --json] re-emits.

    Generator seeds span the full native-int range — beyond the 2{^53}
    window where JSON numbers survive the parser's float round-trip —
    so ["seed"] travels as a decimal string. Instance realization must
    be bit-identical on both sides of the socket. *)

type frame = Solve of Bss_service.Request.t | Ping | Stats | Watch

(** A parsed server->client frame, as the soak client sees it. *)
type reply =
  | Result of {
      id : string;
      tenant : string;
      status : string;  (** ["done"], ["rejected"], ["aborted"] or ["shed"] *)
      variant : string;
      rung : string option;
      makespan : string option;
      routed : string;
      retries : int;
      degraded : bool;
      checkpointed : bool;
      solve_ns : int64;
      queue_wait_ns : int64;
      error : string option;  (** the typed error's [kind], when present *)
    }
  | Pong
  | Error_frame of { id : string option; error : string }
  | Shutdown of { reason : string; served : int }
  | Window of Bss_obs.Timeseries.window
      (** a live telemetry window: a [stats] answer ([live = true]) or
          one element of the [watch] stream *)

val schema_version : string

(** [drain_lines buf] extracts the complete ['\n']-terminated lines from
    [buf] (oldest first) and leaves any unterminated remainder buffered —
    the shared read-side framing of server and client. *)
val drain_lines : Buffer.t -> string list

(** {1 Client -> server} *)

(** One-line request frame (no trailing newline). *)
val solve_frame : Bss_service.Request.t -> string

val ping_frame : string

val stats_frame : string
(** Request one on-demand live window (answered even mid-window). *)

val watch_frame : string
(** Subscribe the connection to the pushed window stream, starting with
    a ring backfill for contiguity. Quota-exempt, like [ping]/[stats]. *)

(** [parse_frame line] decodes a request frame; the typed error of a
    malformed one becomes the payload of the server's [error] frame. *)
val parse_frame : string -> (frame, Bss_resilience.Error.t) result

(** {1 Server -> client} *)

(** The terminal answer for an engine outcome. *)
val result_frame : Bss_service.Runtime.outcome -> string

(** A [status:"shed"] result for a request refused by its tenant's
    admission quota; [capacity]/[pending] render the bucket's burst and
    remaining tokens as typed [Overloaded] backpressure. *)
val shed_frame : Bss_service.Request.t -> capacity:int -> pending:int -> string

val pong_frame : string
val error_frame : ?id:string -> Bss_resilience.Error.t -> string
val shutdown_frame : reason:string -> served:int -> string

(** [parse_reply line] decodes a server frame on the client side. *)
val parse_reply : string -> (reply, string) result
