module Request = Bss_service.Request
module Runtime = Bss_service.Runtime
module Journal = Bss_service.Journal
module Engine = Bss_service.Runtime.Engine
module Probe = Bss_obs.Probe
module Chaos = Bss_resilience.Chaos
module Guard = Bss_resilience.Guard
module Rerror = Bss_resilience.Error
module Prng = Bss_util.Prng
module Timeseries = Bss_obs.Timeseries

type config = {
  listen_path : string;
  service : Runtime.config;
  quota : Quota.config option;
  read_timeout_ms : int;
  write_timeout_ms : int;
  drain_after : int option;
  max_frame_bytes : int;
}

let default_read_timeout_ms = 5_000
let default_write_timeout_ms = 5_000
let default_max_frame_bytes = 65_536

type summary = {
  service : Runtime.summary;
  accepted : int;
  refused : int;
  evicted : int;
  closed : int;
  frames_read : int;
  frames_malformed : int;
  frames_written : int;
  frames_dropped : int;
  answers : int;
  dedup_hits : int;
  shed : (string * int) list;
  shed_total : int;
  rotations : int;
  drain_reason : string;
}

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  (* (frame, counted): whether completing the write increments
     [frames_written] — shutdown frames are uncounted, so the counter
     does not race the client closing first (it may or may not see them) *)
  wq : (string * bool) Queue.t;
  mutable whead : string;
  mutable whead_counted : bool;
  mutable woff : int;
  mutable last_read_ns : int64;
  mutable pending_since : int64 option;
  mutable watching : bool;
  mutable alive : bool;
}

(* One deterministic arm per net site (unlike the 1-2 sites
   [Chaos.plan_of_seed] samples): the CI soak criterion is chaos at all
   three of accept/read/write in one run. *)
let net_plan seed =
  let rng = Prng.create (seed lxor 0x6e6574) in
  List.map (fun site -> (site, Prng.int rng 8, Chaos.Raise)) Chaos.net_sites

let plan (config : config) =
  Engine.coordinator_plan config.service
  @ match config.service.Runtime.chaos with None -> [] | Some seed -> net_plan seed

let ms_ns ms = Int64.mul (Int64.of_int ms) 1_000_000L
let now () = Monotonic_clock.now ()

let validate (config : config) =
  if config.read_timeout_ms < 0 then invalid_arg "Server: read_timeout_ms < 0";
  if config.write_timeout_ms < 0 then invalid_arg "Server: write_timeout_ms < 0";
  if config.max_frame_bytes < 1 then invalid_arg "Server: max_frame_bytes < 1";
  (match config.drain_after with
  | Some n when n < 0 -> invalid_arg "Server: drain_after < 0"
  | _ -> ());
  if config.listen_path = "" then invalid_arg "Server: empty listen path"

let serve ?journal ?(should_stop = fun () -> false) ?(emit_metrics = ignore) ?(log = ignore)
    (config : config) =
  validate config;
  (* A client that closes mid-conversation must surface as EPIPE on our
     write, not kill the process. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let engine = Engine.create ?journal ~emit_metrics config.service in
  let quota = Option.map (fun qc -> (Quota.create qc, qc)) config.quota in
  (* A SIGKILLed predecessor leaves its socket file behind; binding needs
     the path free. The journal — not the socket — is the durable state. *)
  if Sys.file_exists config.listen_path then (try Unix.unlink config.listen_path with _ -> ());
  let lfd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.set_nonblock lfd;
  Unix.bind lfd (ADDR_UNIX config.listen_path);
  Unix.listen lfd 64;
  log ("net: listening on " ^ config.listen_path);
  let armed = plan config in
  if armed <> [] then log ("net: chaos " ^ Chaos.describe_plan armed);
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let owners : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let next_cid = ref 0 in
  let accepted = ref 0
  and refused = ref 0
  and evicted = ref 0
  and closed = ref 0
  and frames_read = ref 0
  and malformed = ref 0
  and written = ref 0
  and dropped = ref 0
  and answers = ref 0
  and dedup = ref 0 in
  let chunk = Bytes.create 4096 in
  let live () = Hashtbl.fold (fun _ c acc -> if c.alive then c :: acc else acc) conns [] in
  let conn_of_fd fd = List.find_opt (fun c -> c.fd == fd) (live ()) in
  let has_output c = c.whead <> "" || not (Queue.is_empty c.wq) in
  let close_conn c kind =
    if c.alive then begin
      c.alive <- false;
      Hashtbl.remove conns c.cid;
      (try Unix.close c.fd with _ -> ());
      match kind with
      | `Closed ->
        incr closed;
        Probe.count "net.conn.closed"
      | `Evicted ->
        incr evicted;
        Probe.count "net.conn.evicted"
    end
  in
  let evict c reason =
    log (Printf.sprintf "net: evict conn#%d (%s)" c.cid reason);
    close_conn c `Evicted
  in
  let drop_frame () =
    incr dropped;
    Probe.count "net.frames.dropped"
  in
  (* Returns false when the frame was dropped (dead connection, or a
     net.write chaos hit — which also evicts the connection; the engine
     has already journaled the outcome, so a reconnecting client gets
     the same answer from the cache). *)
  let queue_frame c frame =
    if not c.alive then begin
      drop_frame ();
      false
    end
    else
      match Guard.point "net.write" with
      | () ->
        Queue.push (frame ^ "\n", true) c.wq;
        if c.pending_since = None then c.pending_since <- Some (now ());
        true
      | exception Chaos.Injected _ ->
        drop_frame ();
        evict c "chaos:net.write";
        false
  in
  let answer c frame = if queue_frame c frame then incr answers in
  (* The live-plane broadcast: each closed window is pushed to every
     watching connection the moment the engine closes it (mid-dispatch).
     Pushes only enqueue — flushing stays in the select loop, so a slow
     watcher backs up its own queue until the write deadline evicts it,
     never blocking solve traffic. Watch frames ride [queue_frame], not
     [answer]: they are counted as written frames but never as answers,
     so [drain_after] accounting ignores them. *)
  Engine.set_on_window engine (fun w ->
      let line = Timeseries.window_json w in
      Hashtbl.iter (fun _ c -> if c.alive && c.watching then ignore (queue_frame c line)) conns);
  let plane_disabled =
    Rerror.Invalid_input
      { line = None; field = "op"; reason = "telemetry plane disabled (--window-every)" }
  in
  let handle_stats c =
    match Engine.live_window engine with
    | Some w -> ignore (queue_frame c (Timeseries.window_json w))
    | None -> ignore (queue_frame c (Wire.error_frame plane_disabled))
  in
  (* subscribe: backfill the ring first (contiguity from the oldest
     retained window), then stream every subsequent close *)
  let handle_watch c =
    match Engine.live_window engine with
    | None -> ignore (queue_frame c (Wire.error_frame plane_disabled))
    | Some _ ->
      if not c.watching then begin
        c.watching <- true;
        Probe.count "net.watchers";
        List.iter
          (fun w -> ignore (queue_frame c (Timeseries.window_json w)))
          (Engine.windows engine)
      end
  in
  let handle_solve c (r : Request.t) =
    if Hashtbl.mem owners r.Request.id then begin
      incr malformed;
      Probe.count "net.frames.malformed";
      ignore
        (queue_frame c
           (Wire.error_frame ~id:r.Request.id
              (Rerror.Invalid_input
                 { line = None; field = "id"; reason = "duplicate id in flight" })))
    end
    else
      match Engine.cached engine r.Request.id with
      | Some o ->
        incr dedup;
        Probe.count "net.dedup.hits";
        answer c (Wire.result_frame o)
      | None -> (
        match Engine.from_checkpoint engine r with
        | Some o ->
          Probe.count "service.resumed";
          answer c (Wire.result_frame o)
        | None -> (
          match quota with
          | Some (q, qc) when not (Quota.admit q r.Request.tenant) ->
            Probe.count "net.tenant.shed";
            Probe.count ("net.tenant.shed." ^ r.Request.tenant);
            answer c
              (Wire.shed_frame r ~capacity:qc.Quota.burst ~pending:(Quota.tokens q r.Request.tenant))
          | _ -> (
            match Engine.admit engine r with
            | Ok () -> Hashtbl.replace owners r.Request.id c.cid
            | Error o -> answer c (Wire.result_frame o))))
  in
  let handle_frame c line =
    match Guard.point "net.read" with
    | () -> (
      incr frames_read;
      Probe.count "net.frames.read";
      match Wire.parse_frame line with
      | Error e ->
        incr malformed;
        Probe.count "net.frames.malformed";
        ignore (queue_frame c (Wire.error_frame e))
      | Ok Wire.Ping -> ignore (queue_frame c Wire.pong_frame)
      (* stats/watch are control frames like ping: quota-exempt (the
         tenant quota guards solve admission only) and never answers *)
      | Ok Wire.Stats -> handle_stats c
      | Ok Wire.Watch -> handle_watch c
      | Ok (Wire.Solve r) -> handle_solve c r)
    | exception Chaos.Injected _ -> evict c "chaos:net.read"
  in
  let process_lines c =
    List.iter
      (fun line -> if c.alive && line <> "" then handle_frame c line)
      (Wire.drain_lines c.rbuf)
  in
  let rec read_some c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      c.last_read_ns <- now ();
      if n = Bytes.length chunk then read_some c else `Blocked
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> `Blocked
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof
  in
  let handle_readable c =
    match read_some c with
    | `Blocked ->
      process_lines c;
      if c.alive && Buffer.length c.rbuf > config.max_frame_bytes then begin
        incr malformed;
        Probe.count "net.frames.malformed";
        evict c "frame-overflow"
      end
    | `Eof ->
      process_lines c;
      if c.alive then close_conn c `Closed
  in
  let accept_new () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true lfd with
      | fd, _ -> (
        match Guard.point "net.accept" with
        | () ->
          Unix.set_nonblock fd;
          incr next_cid;
          let c =
            {
              cid = !next_cid;
              fd;
              rbuf = Buffer.create 256;
              wq = Queue.create ();
              whead = "";
              whead_counted = true;
              woff = 0;
              last_read_ns = now ();
              pending_since = None;
              watching = false;
              alive = true;
            }
          in
          Hashtbl.replace conns c.cid c;
          incr accepted;
          Probe.count "net.conn.accepted"
        | exception Chaos.Injected _ ->
          (try Unix.close fd with _ -> ());
          incr refused;
          Probe.count "net.conn.refused")
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN), _, _) -> continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  let flush_conn c =
    let progress = ref true in
    (try
       while c.alive && !progress do
         if c.whead = "" then
           if Queue.is_empty c.wq then progress := false
           else begin
             let frame, counted = Queue.pop c.wq in
             c.whead <- frame;
             c.whead_counted <- counted;
             c.woff <- 0
           end
         else begin
           let n = Unix.write_substring c.fd c.whead c.woff (String.length c.whead - c.woff) in
           c.woff <- c.woff + n;
           if c.woff = String.length c.whead then begin
             c.whead <- "";
             if c.whead_counted then begin
               incr written;
               Probe.count "net.frames.written"
             end
           end
           else if n = 0 then progress := false
         end
       done
     with
    | Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
    | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> close_conn c `Closed);
    if c.alive && not (has_output c) then c.pending_since <- None
  in
  let route outcomes =
    List.iter
      (fun (o : Runtime.outcome) ->
        let id = o.Runtime.request.Request.id in
        match Hashtbl.find_opt owners id with
        | Some cid ->
          Hashtbl.remove owners id;
          (match Hashtbl.find_opt conns cid with
          | Some c when c.alive -> answer c (Wire.result_frame o)
          | _ -> drop_frame ())
        | None -> drop_frame ())
      outcomes
  in
  let sweep_deadlines () =
    let t = now () in
    let stale =
      Hashtbl.fold
        (fun _ c acc ->
          if not c.alive then acc
          else if
            config.read_timeout_ms > 0
            && Buffer.length c.rbuf > 0
            && Int64.compare (Int64.sub t c.last_read_ns) (ms_ns config.read_timeout_ms) > 0
          then (c, "slow-read") :: acc
          else
            match c.pending_since with
            | Some t0
              when config.write_timeout_ms > 0
                   && Int64.compare (Int64.sub t t0) (ms_ns config.write_timeout_ms) > 0 ->
              (c, "slow-write") :: acc
            | _ -> acc)
        conns []
    in
    List.iter (fun (c, reason) -> evict c reason) stale
  in
  let drain reason =
    log ("net: draining (" ^ reason ^ ")");
    (try Unix.close lfd with _ -> ());
    (try Unix.unlink config.listen_path with _ -> ());
    while Engine.queued engine > 0 do
      route (Engine.dispatch engine)
    done;
    (* close the final telemetry window before the shutdown frames, so a
       watcher's stream terminates with [final:true] and reconciles *)
    Engine.finalize_windows engine;
    let served = !answers in
    (* pushed directly, not through [queue_frame]: uncounted, so
       [frames_written] is deterministic whether or not the client is
       still connected to receive the goodbye *)
    List.iter
      (fun c -> Queue.push (Wire.shutdown_frame ~reason ~served ^ "\n", false) c.wq)
      (live ());
    let deadline = Int64.add (now ()) 2_000_000_000L in
    let rec flush_all () =
      let pending = List.filter has_output (live ()) in
      if pending <> [] && Int64.compare (now ()) deadline < 0 then begin
        (match Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.05 with
        | _, ws, _ -> List.iter (fun fd -> Option.iter flush_conn (conn_of_fd fd)) ws
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        flush_all ()
      end
    in
    flush_all ();
    List.iter (fun c -> if has_output c then evict c "drain-flush" else close_conn c `Closed) (live ());
    Engine.final_flush engine
  in
  let run_loop () =
    let reason = ref "" in
    while !reason = "" do
      if should_stop () then reason := "signal"
      else
        (match config.drain_after with
        | Some n when !answers >= n -> reason := "drain-after"
        | _ -> ());
      if !reason = "" then begin
        let readers = lfd :: List.map (fun c -> c.fd) (live ()) in
        let writers = List.filter_map (fun c -> if has_output c then Some c.fd else None) (live ()) in
        let r, w, _ =
          try Unix.select readers writers [] 0.05
          with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
        in
        if List.memq lfd r then accept_new ();
        List.iter
          (fun fd -> if fd != lfd then Option.iter handle_readable (conn_of_fd fd))
          r;
        if Engine.queued engine > 0 then route (Engine.dispatch engine);
        List.iter (fun fd -> Option.iter flush_conn (conn_of_fd fd)) w;
        sweep_deadlines ()
      end
    done;
    drain !reason;
    !reason
  in
  let drain_reason = Chaos.with_plan armed run_loop in
  {
    service = Engine.summary engine;
    accepted = !accepted;
    refused = !refused;
    evicted = !evicted;
    closed = !closed;
    frames_read = !frames_read;
    frames_malformed = !malformed;
    frames_written = !written;
    frames_dropped = !dropped;
    answers = !answers;
    dedup_hits = !dedup;
    shed = (match quota with Some (q, _) -> Quota.shed_counts q | None -> []);
    shed_total = (match quota with Some (q, _) -> Quota.shed_total q | None -> 0);
    rotations = (match journal with Some j -> Journal.segments j | None -> 0);
    drain_reason;
  }
