(** The socket front end: a single-coordinator [select] loop serving the
    [bss-net/1] protocol ({!Wire}) over a Unix-domain stream socket,
    driving a {!Bss_service.Runtime.Engine}.

    Admission is layered: a per-tenant token-bucket quota ({!Quota})
    sheds first (typed [Overloaded] backpressure in a [status:"shed"]
    result; retryable — the bucket may have refilled by the next
    attempt), then the engine's bounded queue rejects (terminal for that
    id). Already-recorded ids are answered from the engine's outcome
    cache without re-solving, and journaled ids are restored — together
    the exactly-once contract across reconnects, evictions and
    kill-and-resume. Frames admitted in the same poll round form one
    dispatch wave, sharded across the worker pool by tenant hash.

    The live telemetry plane (docs/observability.md) rides the same
    loop when [service.window_every] is set: [stats] answers one
    on-demand window, [watch] subscribes the connection to the pushed
    [bss-watch/1] stream (ring backfill first, then every close —
    windows close mid-dispatch, flushes stay in the select loop).
    Both are control frames: quota-exempt and never counted as
    answers. A watcher too slow to keep up backs up its own write
    queue and is evicted by the ordinary write deadline — watch
    traffic can never block solving.

    Slow clients are evicted on wall-clock deadlines: a partial frame
    older than [read_timeout_ms], or queued output stuck longer than
    [write_timeout_ms]. Chaos arms {!Bss_resilience.Chaos.net_sites}:
    [net.accept] refuses the connection, [net.read]/[net.write] evict
    it (any solved outcome stays journaled, so the answer survives the
    eviction).

    Drain — on [should_stop] (the CLI's SIGINT/SIGTERM flag) or after
    [drain_after] answers — stops accepting, unlinks the socket,
    dispatches everything admitted, sends each surviving connection a
    [shutdown] frame, flushes within a bounded budget, then flushes the
    journal (rotation-aware: {!Bss_service.Journal}). *)

type config = {
  listen_path : string;  (** Unix-domain socket path; stale files are unlinked *)
  service : Bss_service.Runtime.config;
  quota : Quota.config option;  (** per-tenant admission quotas; [None] = no shedding *)
  read_timeout_ms : int;  (** evict a conn whose partial frame stalls this long; 0 = never *)
  write_timeout_ms : int;  (** evict a conn whose output stalls this long; 0 = never *)
  drain_after : int option;  (** drain after this many answers — deterministic cram runs *)
  max_frame_bytes : int;  (** evict on an unterminated frame beyond this size *)
}

val default_read_timeout_ms : int
val default_write_timeout_ms : int
val default_max_frame_bytes : int

type summary = {
  service : Bss_service.Runtime.summary;  (** engine summary, first-record order *)
  accepted : int;
  refused : int;  (** connections refused by [net.accept] chaos *)
  evicted : int;  (** deadline, overflow or chaos evictions *)
  closed : int;  (** orderly closes (client EOF or drain) *)
  frames_read : int;
  frames_malformed : int;  (** parse failures, duplicate in-flight ids, overflows *)
  frames_written : int;
      (** fully flushed to a socket. Shutdown frames are excluded: a
          client may legitimately close before the goodbye lands, and
          counting it would race that close (the count must be
          deterministic for seed-pinned runs) *)
  frames_dropped : int;  (** responses addressed to a dead connection *)
  answers : int;  (** result/shed frames queued to live connections *)
  dedup_hits : int;  (** re-sent ids answered from the outcome cache *)
  shed : (string * int) list;  (** quota sheds per tenant, sorted *)
  shed_total : int;
  rotations : int;  (** sealed journal segments at exit *)
  drain_reason : string;  (** ["signal"] or ["drain-after"] *)
}

(** The deterministic one-arm-per-site plan over
    {!Bss_resilience.Chaos.net_sites} that [--chaos seed] arms alongside
    the engine's coordinator plan — unlike the sampled
    {!Bss_resilience.Chaos.plan_of_seed}, every net site is always
    armed (the CI soak criterion). *)
val net_plan : int -> (string * int * Bss_resilience.Chaos.action) list

(** The full armed plan (coordinator sites + net sites); [[]] without
    [config.service.chaos]. *)
val plan : config -> (string * int * Bss_resilience.Chaos.action) list

(** [serve ?journal ?should_stop ?emit_metrics ?log config] binds,
    serves until drain, and returns the summary. [log] receives
    deterministic one-line progress notes (listen path, armed chaos
    plan, evictions, drain). Raises [Invalid_argument] on a malformed
    config and [Unix.Unix_error] if the socket cannot be bound. *)
val serve :
  ?journal:Bss_service.Journal.t ->
  ?should_stop:(unit -> bool) ->
  ?emit_metrics:(string -> unit) ->
  ?log:(string -> unit) ->
  config ->
  summary
