(** Deterministic per-tenant admission quotas: a token bucket per
    tenant, refilled by {e admission-attempt count} rather than the wall
    clock, so a seeded overload run sheds exactly the same requests on
    every machine, at every worker count, and across kill-and-resume.

    Each tenant's bucket starts full at [burst] tokens; an admission
    takes one. After every [refill_every] attempts (counted across all
    tenants), [rate] tokens are added to every live bucket, clamped at
    [burst], {e before} the next attempt draws — so a bucket emptied
    exactly at a window boundary admits the first attempt of the next
    window. [rate = 0] disables refill — a hard per-run budget per
    tenant. Quotas apply uniformly to all tenants, including
    {!Bss_service.Request.default_tenant}. *)

type config = { rate : int; burst : int; refill_every : int }

type t

(** Raises [Invalid_argument] on [burst < 1], [rate < 0] or
    [refill_every < 1]. *)
val create : config -> t

(** [admit t tenant] takes a token, creating a full bucket on first
    sight of [tenant]; [false] counts the shed. *)
val admit : t -> string -> bool

(** Remaining tokens (the bucket is created full if absent). *)
val tokens : t -> string -> int

(** Sheds per tenant, sorted by tenant name. *)
val shed_counts : t -> (string * int) list

val shed_total : t -> int
