type config = { rate : int; burst : int; refill_every : int }

let validate c =
  if c.burst < 1 then invalid_arg "Quota: burst < 1";
  if c.rate < 0 then invalid_arg "Quota: rate < 0";
  if c.refill_every < 1 then invalid_arg "Quota: refill_every < 1"

type t = {
  config : config;
  buckets : (string, int ref) Hashtbl.t;
  shed : (string, int ref) Hashtbl.t;
  mutable attempts : int;
}

let create config =
  validate config;
  { config; buckets = Hashtbl.create 16; shed = Hashtbl.create 16; attempts = 0 }

let bucket t tenant =
  match Hashtbl.find_opt t.buckets tenant with
  | Some b -> b
  | None ->
    let b = ref t.config.burst in
    Hashtbl.add t.buckets tenant b;
    b

let tally tbl tenant =
  match Hashtbl.find_opt tbl tenant with
  | Some n -> incr n
  | None -> Hashtbl.add tbl tenant (ref 1)

(* Refill is driven by the admission-attempt counter, not the wall
   clock, so a seeded overload run sheds the same requests on every
   machine and across kill-and-resume. The refill for a completed
   window lands before the next attempt draws a token: after
   [refill_every] attempts have been counted, attempt
   [refill_every + 1] sees the refilled bucket rather than paying for
   the window it did not belong to. *)
let admit t tenant =
  if t.config.rate > 0 && t.attempts > 0 && t.attempts mod t.config.refill_every = 0
  then
    Hashtbl.iter (fun _ b -> b := min t.config.burst (!b + t.config.rate)) t.buckets;
  t.attempts <- t.attempts + 1;
  let b = bucket t tenant in
  if !b > 0 then begin
    decr b;
    true
  end
  else begin
    tally t.shed tenant;
    false
  end

let tokens t tenant = !(bucket t tenant)

let shed_counts t =
  Hashtbl.fold (fun tenant n acc -> (tenant, !n) :: acc) t.shed []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let shed_total t = Hashtbl.fold (fun _ n acc -> acc + !n) t.shed 0
