(** The netsoak client: drives a seeded request stream at a [bss-net/1]
    server under a bounded pipeline window, reconnecting and re-sending
    only unanswered ids until everything is answered exactly once —
    the client half of the kill-and-resume acceptance soak.

    Duplicate responses (an id answered twice) are counted, never
    silently merged: a nonzero [duplicates] fails {!ok}, which is the
    exactly-once check. Quota sheds come back as [status:"shed"] rows
    and count as answers (the shed, not the silence, is the contract).
    With an SLO spec armed, the client rebuilds the latency histograms
    the server-side gate reads — per-variant [service.solve_ns.*] and
    [service.queue.wait_ns] — from the durations carried in result
    frames, and {!ok} includes the verdict. *)

type config = {
  connect_path : string;
  window : int;  (** max in-flight requests per connection *)
  rounds : int;  (** max connection attempts; each re-sends only unanswered ids *)
  connect_timeout_ms : int;  (** per-round budget to reach the socket (retries inside) *)
  idle_timeout_ms : int;  (** give up a round when the server sends nothing this long *)
  slo : Bss_obs.Slo.t option;
  watch : bool;
      (** also subscribe each connection to the live window stream
          ([bss netsoak --watch]): windows interleave with result frames
          and are counted, not stored — the watch-overhead soak *)
}

(** window 8, 1 round, 5 s connect, 10 s idle, no SLO, no watch, empty
    path. *)
val default_config : config

type row = {
  id : string;
  tenant : string;
  status : string;
  variant : string;
  rung : string option;
  makespan : string option;
  retries : int;
  checkpointed : bool;
  solve_ns : int64;
  queue_wait_ns : int64;
}

type summary = {
  sent : int;  (** frames written, re-sends included *)
  answered : int;  (** distinct ids with a result row *)
  completed : int;
  shed : int;
  rejected : int;
  aborted : int;
  duplicates : int;  (** ids answered more than once — must be 0 *)
  protocol_errors : int;  (** error frames and unparseable replies *)
  reconnects : int;
  rows : row list;  (** answered rows in request-stream order *)
  unanswered : string list;
  shed_by_tenant : (string * int) list;
  slo_verdict : Bss_obs.Slo.verdict option;
  watch_windows : int;  (** window frames received (0 unless [watch]) *)
  watch_alerts : int;  (** alerts carried by those windows *)
}

(** [soak config requests] runs the stream to completion or round/
    timeout exhaustion. Raises [Invalid_argument] on [window < 1] or
    [rounds < 1]. *)
val soak : config -> Bss_service.Request.t list -> summary

(** Every id answered exactly once, no protocol errors, SLO green. *)
val ok : summary -> bool

(** The deterministic per-request result table, one
    [id\tstatus\trung\tmakespan] line per answered row in stream order —
    the artifact CI joins across kill-and-resume for bit-identity. *)
val render_rows : summary -> string

(** Stable multi-line totals (plus the SLO verdict when armed). *)
val render_summary : summary -> string

(** [send_raw ~path ~connect_timeout_ms ~idle_timeout_ms frame] sends
    one raw line and returns the first reply line — the cram harness's
    protocol probe ([bss netsoak --frame]). *)
val send_raw :
  path:string -> connect_timeout_ms:int -> idle_timeout_ms:int -> string -> (string, string) result
