module Json = Bss_util.Json
module Rerror = Bss_resilience.Error
module Request = Bss_service.Request
module Runtime = Bss_service.Runtime
module Timeseries = Bss_obs.Timeseries
open Bss_instances

let schema_version = "bss-net/1"

type frame = Solve of Request.t | Ping | Stats | Watch

type reply =
  | Result of {
      id : string;
      tenant : string;
      status : string;
      variant : string;
      rung : string option;
      makespan : string option;
      routed : string;
      retries : int;
      degraded : bool;
      checkpointed : bool;
      solve_ns : int64;
      queue_wait_ns : int64;
      error : string option;
    }
  | Pong
  | Error_frame of { id : string option; error : string }
  | Shutdown of { reason : string; served : int }
  | Window of Timeseries.window

(* ---------------- buffered line framing ---------------- *)

let drain_lines buf =
  let s = Buffer.contents buf in
  let n = String.length s in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear buf;
      if start < n then Buffer.add_substring buf s start (n - start);
      List.rev acc
  in
  if n = 0 then [] else go 0 []

(* ---------------- field helpers ---------------- *)

let str_field k v = match Json.member k v with Some (Json.Str s) -> Some s | _ -> None

let int_field k v =
  match Json.member k v with
  | Some (Json.Num f) when Float.is_integer f && Float.abs f <= 2. ** 53. -> Some (int_of_float f)
  | _ -> None

let bad ?(field = "frame") reason = Error (Rerror.Invalid_input { line = None; field; reason })

let require what = function Some v -> Ok v | None -> bad ~field:what ("missing or malformed " ^ what)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* ---------------- request frames (client -> server) ---------------- *)

(* Seeds span the whole native-int range, beyond the 2^53 window where
   JSON numbers survive a float round-trip, so they travel as decimal
   strings — realization must be bit-identical on both sides of the
   socket. *)
let solve_frame (r : Request.t) =
  let source =
    match r.Request.source with
    | Request.File path -> ("file", Json.str path)
    | Request.Gen { family; seed; m; n } ->
      ( "gen",
        Json.obj
          [
            ("family", Json.str family);
            ("seed", Json.str (string_of_int seed));
            ("m", Json.int m);
            ("n", Json.int n);
          ] )
  in
  Json.obj
    [
      ("schema", Json.str schema_version);
      ("op", Json.str "solve");
      ("id", Json.str r.Request.id);
      ("tenant", Json.str r.Request.tenant);
      ("variant", Json.str (Variant.to_string r.Request.variant));
      ("algorithm", Json.str (Request.algorithm_to_string r.Request.algorithm));
      source;
    ]

let ping_frame =
  Json.obj [ ("schema", Json.str schema_version); ("op", Json.str "ping") ]

let stats_frame =
  Json.obj [ ("schema", Json.str schema_version); ("op", Json.str "stats") ]

let watch_frame =
  Json.obj [ ("schema", Json.str schema_version); ("op", Json.str "watch") ]

let parse_frame line =
  match Json.parse line with
  | Error msg -> bad ("not a JSON object: " ^ msg)
  | Ok v -> (
    let* schema = require "schema" (str_field "schema" v) in
    if schema <> schema_version then bad ~field:"schema" ("unsupported schema: " ^ schema)
    else
      let* op = require "op" (str_field "op" v) in
      match op with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "watch" -> Ok Watch
      | "solve" -> (
        let* id = require "id" (str_field "id" v) in
        let tenant = Option.value ~default:Request.default_tenant (str_field "tenant" v) in
        let* variant = require "variant" (str_field "variant" v) in
        let* algorithm = require "algorithm" (str_field "algorithm" v) in
        let* source =
          match (str_field "file" v, Json.member "gen" v) with
          | Some path, None -> Ok (Request.File path)
          | None, Some g -> (
            let* family = require "gen.family" (str_field "family" g) in
            let* seed_s = require "gen.seed" (str_field "seed" g) in
            let* m = require "gen.m" (int_field "m" g) in
            let* n = require "gen.n" (int_field "n" g) in
            match int_of_string_opt seed_s with
            | Some seed -> Ok (Request.Gen { family; seed; m; n })
            | None -> bad ~field:"gen.seed" ("not an integer: " ^ seed_s))
          | _ -> bad ~field:"source" "exactly one of \"file\" or \"gen\" required"
        in
        try
          Ok
            (Solve
               {
                 Request.id;
                 tenant;
                 variant = Request.variant_of_string ~line:0 variant;
                 algorithm = Request.algorithm_of_string ~line:0 algorithm;
                 source;
               })
        with Rerror.Error e -> Error e)
      | op -> bad ~field:"op" ("unknown op: " ^ op))

(* ---------------- reply frames (server -> client) ---------------- *)

let status_string = function
  | Runtime.Done -> "done"
  | Runtime.Rejected -> "rejected"
  | Runtime.Aborted -> "aborted"

let result_fields ~id ~tenant ~status ~variant ?rung ?makespan ~routed ~retries ~degraded
    ~checkpointed ~solve_ns ~queue_wait_ns ?error () =
  Json.obj
    ([
       ("schema", Json.str schema_version);
       ("op", Json.str "result");
       ("id", Json.str id);
       ("tenant", Json.str tenant);
       ("status", Json.str status);
       ("variant", Json.str variant);
     ]
    @ (match rung with Some r -> [ ("rung", Json.str r) ] | None -> [])
    @ (match makespan with Some m -> [ ("makespan", Json.str m) ] | None -> [])
    @ [
        ("routed", Json.str routed);
        ("retries", Json.int retries);
        ("degraded", Json.bool degraded);
        ("checkpointed", Json.bool checkpointed);
        ("solve_ns", Json.int64 solve_ns);
        ("queue_wait_ns", Json.int64 queue_wait_ns);
      ]
    @ match error with Some e -> [ ("error", e) ] | None -> [])

let result_frame (o : Runtime.outcome) =
  let r = o.Runtime.request in
  result_fields ~id:r.Request.id ~tenant:r.Request.tenant ~status:(status_string o.Runtime.status)
    ~variant:(Variant.to_string r.Request.variant) ?rung:o.Runtime.rung ?makespan:o.Runtime.makespan
    ~routed:o.Runtime.routed ~retries:o.Runtime.retries_used ~degraded:o.Runtime.degraded
    ~checkpointed:o.Runtime.from_checkpoint ~solve_ns:o.Runtime.latency_ns
    ~queue_wait_ns:o.Runtime.queue_wait_ns
    ?error:(Option.map Rerror.to_json o.Runtime.error)
    ()

let shed_frame (r : Request.t) ~capacity ~pending =
  result_fields ~id:r.Request.id ~tenant:r.Request.tenant ~status:"shed"
    ~variant:(Variant.to_string r.Request.variant) ~routed:"-" ~retries:0 ~degraded:false
    ~checkpointed:false ~solve_ns:0L ~queue_wait_ns:0L
    ~error:(Rerror.to_json (Rerror.Overloaded { capacity; pending }))
    ()

let pong_frame =
  Json.obj [ ("schema", Json.str schema_version); ("op", Json.str "pong") ]

let error_frame ?id e =
  Json.obj
    ([ ("schema", Json.str schema_version); ("op", Json.str "error") ]
    @ (match id with Some id -> [ ("id", Json.str id) ] | None -> [])
    @ [ ("error", Rerror.to_json e) ])

let shutdown_frame ~reason ~served =
  Json.obj
    [
      ("schema", Json.str schema_version);
      ("op", Json.str "shutdown");
      ("reason", Json.str reason);
      ("served", Json.int served);
    ]

let parse_reply line =
  match Json.parse line with
  | Error msg -> Error ("not a JSON object: " ^ msg)
  | Ok v -> (
    match str_field "op" v with
    | Some "pong" -> Ok Pong
    | Some "shutdown" ->
      Ok
        (Shutdown
           {
             reason = Option.value ~default:"" (str_field "reason" v);
             served = Option.value ~default:0 (int_field "served" v);
           })
    | Some "error" ->
      let error =
        match Json.member "error" v with
        | Some (Json.Obj _ as e) -> (
          match str_field "kind" e with Some k -> k | None -> "unknown")
        | _ -> "unknown"
      in
      Ok (Error_frame { id = str_field "id" v; error })
    | Some "result" -> (
      match (str_field "id" v, str_field "status" v) with
      | Some id, Some status ->
        let i64 k =
          match Json.member k v with Some (Json.Num f) -> Int64.of_float f | _ -> 0L
        in
        Ok
          (Result
             {
               id;
               tenant = Option.value ~default:Request.default_tenant (str_field "tenant" v);
               status;
               variant = Option.value ~default:"" (str_field "variant" v);
               rung = str_field "rung" v;
               makespan = str_field "makespan" v;
               routed = Option.value ~default:"-" (str_field "routed" v);
               retries = Option.value ~default:0 (int_field "retries" v);
               degraded =
                 (match Json.member "degraded" v with Some (Json.Bool b) -> b | _ -> false);
               checkpointed =
                 (match Json.member "checkpointed" v with Some (Json.Bool b) -> b | _ -> false);
               solve_ns = i64 "solve_ns";
               queue_wait_ns = i64 "queue_wait_ns";
               error =
                 (match Json.member "error" v with
                 | Some (Json.Obj _ as e) -> str_field "kind" e
                 | _ -> None);
             })
      | _ -> Error "result frame missing id/status")
    | Some op -> Error ("unknown op: " ^ op)
    | None -> (
      (* window lines are bare [bss-watch/1] objects with no [op]: the
         watch stream and the [stats] answer share the client's framing *)
      match str_field "schema" v with
      | Some s when s = Timeseries.schema_version -> (
        match Timeseries.window_of_json v with
        | Ok w -> Ok (Window w)
        | Error e -> Error e)
      | _ -> Error "frame has no op"))
