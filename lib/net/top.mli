(** The [bss top] client: subscribes to a server's live window stream
    ([watch] frame, docs/observability.md) and renders each window as a
    refreshing dashboard — or, with [json], re-emits the raw
    [bss-watch/1] lines verbatim (the machine-readable mode the CI
    top-smoke job parses).

    The stream ends at the server's [final] window or [shutdown] frame,
    at [max_windows], on EOF, or after [idle_timeout_ms] of silence;
    all of those return [Ok] with what was received. [Error] is
    reserved for a failed connect, a malformed frame, or the server
    refusing the subscription (telemetry plane not armed). *)

type config = {
  connect_path : string;
  connect_timeout_ms : int;
  idle_timeout_ms : int;
  max_windows : int option;  (** stop after this many windows; [None] = stream to the end *)
  json : bool;  (** re-emit raw window lines instead of rendering *)
  clear : bool;  (** ANSI clear before each rendered window (interactive refresh) *)
}

(** 5 s connect, 10 s idle, unbounded, rendered, no clear, empty path. *)
val default_config : config

type summary = {
  windows : int;
  alerts : int;  (** total alerts carried by the received windows *)
  final_seen : bool;  (** the stream terminated with the server's [final] window *)
  last : Bss_obs.Timeseries.window option;
}

(** One window as dashboard text: coverage, request/counter deltas,
    queue load, breaker states, per-variant throughput and latency
    quantiles, queue-wait quantiles, and any alerts. Pure — usable
    without a connection (unit tests render synthetic windows). *)
val render : Bss_obs.Timeseries.window -> string

(** [run ?out config] subscribes and pumps the stream, writing rendered
    dashboards (or raw lines) through [out] (default: [print_string]). *)
val run : ?out:(string -> unit) -> config -> (summary, string) result
