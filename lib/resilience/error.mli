(** The typed error taxonomy of the resilient runtime.

    Every failure a hardened entry point can report is one of these
    constructors; stringly [Invalid_argument]/[Failure] raises are reserved
    for programming errors (broken invariants), not for inputs or budgets.
    The CLI renders {!to_json} verbatim, so constructors carry structured
    payloads rather than pre-formatted prose. *)

type t =
  | Invalid_input of { line : int option; field : string; reason : string }
      (** a malformed instance: [field] names the offending datum (["m"],
          ["setup"], ["time"], ...); [line] is the 1-based source line when
          the input came from a textual instance file *)
  | Budget_exhausted of { phase : string; spent : int }
      (** the fuel counter ran out; [phase] is the guard site that observed
          it and [spent] the ticks charged so far *)
  | Deadline_exceeded of { phase : string; elapsed_ns : int64 }
      (** the monotonic-clock deadline passed; [phase] is the guard site
          that observed it *)
  | Overloaded of { capacity : int; pending : int }
      (** admission to a bounded work queue was refused: the queue held
          [pending] requests of [capacity] — the service's backpressure
          signal, never an unbounded buffer *)
  | Internal of exn
      (** an exception escaped an algorithm run under {!Guard.run} —
          including faults injected by {!Chaos} *)

(** The carrier exception: hardened code raises [Error e] and boundary
    layers ({!Guard.run}, the CLI) catch it. *)
exception Error of t

(** [invalid_input ?line ~field reason] raises [Error (Invalid_input _)]. *)
val invalid_input : ?line:int -> field:string -> string -> 'a

(** One-line human rendering, e.g.
    ["invalid input (line 3, field time): job time < 1"]. *)
val to_string : t -> string

(** One JSON object: [{"kind": ..., ...payload}]. *)
val to_json : t -> string
