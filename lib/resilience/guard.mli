(** Budget/deadline guard: bounded worst-case behavior for the searches.

    A guard couples a monotonic-clock deadline with a fuel counter.
    Instrumented algorithms charge it by calling {!tick} at their probe
    sites (one tick per dual/bound evaluation — the unit the paper's
    running-time analysis counts); when the budget is exhausted the tick
    raises {!Error.Error}, which {!run} converts to a [result] so callers
    such as the degradation ladder can fall back instead of crashing.

    Same discipline as {!Bss_obs.Probe}: a scoped sink, not a threaded
    parameter — algorithm signatures stay untouched, and with no guard
    installed {!tick} reads one domain-local slot and returns
    (allocation-free; pinned by a Gc-stat test in
    [test/test_resilience.ml]). The slot is {e domain-local}
    ([Domain.DLS]), so the service worker pool can run one guarded solve
    per domain concurrently; a guard {e value} must still not be shared
    across domains. *)

(** A guard's mutable state. One value can be shared by several {!run}
    scopes — the ladder reuses it across rungs so fuel spent on a failed
    rung stays spent. *)
type t

(** [make ?deadline_ms ?fuel ()] builds a guard. The deadline is absolute
    from now ([deadline_ms = 0] trips on the first tick); [fuel] is the
    number of ticks allowed. Omitted limits are unlimited. *)
val make : ?deadline_ms:int -> ?fuel:int -> unit -> t

(** Ticks charged so far (across all {!run} scopes of this guard). *)
val spent : t -> int

(** [limited g] is false when [g] was built with no deadline and no fuel. *)
val limited : t -> bool

(** [active ()] is true inside a {!run} scope. *)
val active : unit -> bool

(** [tick site] fires {!Chaos.fire}[ site], then charges the installed
    guard (if any): one fuel unit, plus a deadline check.
    @raise Error.Error
      [Budget_exhausted] or [Deadline_exceeded] with [phase = site]. Also
      whatever an armed chaos site raises. *)
val tick : string -> unit

(** [point site] is {!Chaos.fire}[ site] only — a fault-injection point
    that charges no budget. Used by the always-terminating constructions
    (e.g. the 2-approximation) that the ladder must still be able to test
    under injected faults. *)
val point : string -> unit

(** [run g f] installs [g], runs [f], uninstalls. [Error.Error] raises
    become [Error e]; any other exception becomes [Error (Internal exn)] —
    nothing escapes. Scopes nest (innermost guard is charged). *)
val run : t -> (unit -> 'a) -> ('a, Error.t) result
