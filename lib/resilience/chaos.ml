type action = Raise | Stall of int | Crash

exception Injected of { site : string; hit : int }
exception Crashed of { site : string; hit : int }

let sites =
  [
    "dual_search.guess";
    "nonp_search.guess";
    "pmtn_cj.bound_test";
    "pmtn_dual.test";
    "splittable_cj.bound_test";
    "two_approx.solve";
  ]

let service_sites =
  [ "service.admit"; "service.breaker.probe"; "service.journal.flush"; "service.solve" ]

let net_sites = [ "net.accept"; "net.read"; "net.write" ]

let journal_sites =
  [
    "journal.rename.after";
    "journal.rename.before";
    "journal.seal.after";
    "journal.seal.before";
    "journal.write.after";
    "journal.write.before";
  ]

type state = {
  plan : (string * int * action) list;
  hits : (string, int ref) Hashtbl.t;
  census : bool;  (* count fires without injecting *)
  fired : (string * int * action) list ref;  (* matched entries, firing order (reversed) *)
}

let current : state option ref = ref None
let armed () = !current != None

let stall_us us =
  let stop = Int64.add (Monotonic_clock.now ()) (Int64.mul (Int64.of_int us) 1_000L) in
  while Int64.compare (Monotonic_clock.now ()) stop < 0 do
    ()
  done

let fire site =
  match !current with
  | None -> ()
  | Some st ->
    let counter =
      match Hashtbl.find_opt st.hits site with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add st.hits site r;
        r
    in
    let hit = !counter in
    incr counter;
    if not st.census then
      List.iter
        (fun ((s, h, action) as entry) ->
          if s = site && h = hit then begin
            st.fired := entry :: !(st.fired);
            match action with
            | Raise -> raise (Injected { site; hit })
            | Crash -> raise (Crashed { site; hit })
            | Stall us -> stall_us us
          end)
        st.plan

let fresh_state ?(census = false) plan =
  { plan; hits = Hashtbl.create 8; census; fired = ref [] }

let with_plan plan f =
  match plan with
  | [] -> f ()
  | _ ->
    let prev = !current in
    current := Some (fresh_state plan);
    Fun.protect ~finally:(fun () -> current := prev) f

let run_plan plan f =
  let prev = !current in
  let st = fresh_state plan in
  current := Some st;
  let result = try Ok (f ()) with e -> Error e in
  current := prev;
  (result, List.rev !(st.fired))

let with_census f =
  let prev = !current in
  let st = fresh_state ~census:true [] in
  current := Some st;
  let r = Fun.protect ~finally:(fun () -> current := prev) f in
  let counts =
    Hashtbl.fold (fun site c acc -> (site, !c) :: acc) st.hits []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (r, counts)

let plan_of_seed ?(sites = sites) ?(spread = 12) seed =
  let rng = Bss_util.Prng.create (0x5eed_c4a0 lxor seed) in
  let arr = Array.of_list sites in
  let draw () =
    let site = Bss_util.Prng.choose rng arr in
    let hit = Bss_util.Prng.int rng spread in
    let action = if Bss_util.Prng.int rng 4 = 0 then Stall 2_000 else Raise in
    (site, hit, action)
  in
  let n = 1 + Bss_util.Prng.int rng 2 in
  List.init n (fun _ -> draw ())

let describe_action = function
  | Raise -> "raise"
  | Crash -> "crash"
  | Stall us -> Printf.sprintf "stall(%dus)" us

let describe_plan plan =
  String.concat " "
    (List.map
       (fun (site, hit, action) -> Printf.sprintf "%s@%d:%s" site hit (describe_action action))
       plan)
