(* Like Probe, the disabled path must stay allocation-free: [tick] reads
   two root refs (chaos, guard) and returns. *)

type t = {
  start : int64;
  deadline : int64 option;  (* absolute monotonic ns *)
  fuel : int option;
  mutable spent : int;
}

(* One installed-guard slot per domain: the service worker pool runs a
   guarded solve on every worker domain at once, so a process-global slot
   would let one worker's install/uninstall clobber another's budget. *)
let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let make ?deadline_ms ?fuel () =
  let start = match deadline_ms with None -> 0L | Some _ -> Monotonic_clock.now () in
  let deadline =
    Option.map (fun ms -> Int64.add start (Int64.mul (Int64.of_int ms) 1_000_000L)) deadline_ms
  in
  { start; deadline; fuel; spent = 0 }

let spent g = g.spent
let limited g = g.deadline <> None || g.fuel <> None
let active () = Domain.DLS.get key != None

let tick site =
  Chaos.fire site;
  match Domain.DLS.get key with
  | None -> ()
  | Some g ->
    g.spent <- g.spent + 1;
    (match g.fuel with
    | Some f when g.spent > f ->
      raise (Error.Error (Error.Budget_exhausted { phase = site; spent = g.spent }))
    | _ -> ());
    (match g.deadline with
    | Some d ->
      let now = Monotonic_clock.now () in
      if Int64.compare now d >= 0 then
        raise (Error.Error (Error.Deadline_exceeded { phase = site; elapsed_ns = Int64.sub now g.start }))
    | None -> ())

let point site = Chaos.fire site

let run g f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some g);
  let restore () = Domain.DLS.set key prev in
  match f () with
  | v ->
    restore ();
    Ok v
  | exception Error.Error e ->
    restore ();
    Error e
  | exception e ->
    restore ();
    Error (Error.Internal e)
