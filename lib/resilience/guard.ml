(* Like Probe, the disabled path must stay allocation-free: [tick] reads
   two root refs (chaos, guard) and returns. *)

type t = {
  start : int64;
  deadline : int64 option;  (* absolute monotonic ns *)
  fuel : int option;
  mutable spent : int;
}

let current : t option ref = ref None

let make ?deadline_ms ?fuel () =
  let start = match deadline_ms with None -> 0L | Some _ -> Monotonic_clock.now () in
  let deadline =
    Option.map (fun ms -> Int64.add start (Int64.mul (Int64.of_int ms) 1_000_000L)) deadline_ms
  in
  { start; deadline; fuel; spent = 0 }

let spent g = g.spent
let limited g = g.deadline <> None || g.fuel <> None
let active () = !current != None

let tick site =
  Chaos.fire site;
  match !current with
  | None -> ()
  | Some g ->
    g.spent <- g.spent + 1;
    (match g.fuel with
    | Some f when g.spent > f ->
      raise (Error.Error (Error.Budget_exhausted { phase = site; spent = g.spent }))
    | _ -> ());
    (match g.deadline with
    | Some d ->
      let now = Monotonic_clock.now () in
      if Int64.compare now d >= 0 then
        raise (Error.Error (Error.Deadline_exceeded { phase = site; elapsed_ns = Int64.sub now g.start }))
    | None -> ())

let point site = Chaos.fire site

let run g f =
  let prev = !current in
  current := Some g;
  let restore () = current := prev in
  match f () with
  | v ->
    restore ();
    Ok v
  | exception Error.Error e ->
    restore ();
    Error e
  | exception e ->
    restore ();
    Error (Error.Internal e)
