(** Deterministic seeded fault injection.

    A {e chaos site} is a named point inside an algorithm (the same
    vocabulary as the guard's charge sites, plus a few fault-only points —
    the full catalogue is {!sites} and docs/resilience.md). Arming a plan
    makes chosen sites misbehave at chosen hit counts: raise {!Injected},
    or stall long enough to trip an armed deadline. Tests use this to prove
    every edge of the degradation ladder is actually taken; [bss fuzz
    --chaos] sweeps seeded plans over random instances.

    Like {!Bss_obs.Probe}, the armed plan is a process-global scoped sink:
    disarmed, {!fire} reads one ref and returns (allocation-free — pinned
    by the Gc test in [test/test_resilience.ml]). The state is not
    synchronized; arm on one domain at a time (the chaos sweep forces a
    single domain). *)

type action =
  | Raise  (** raise {!Injected} out of the instrumented algorithm *)
  | Stall of int
      (** busy-wait this many microseconds on the monotonic clock — enough
          to push an armed deadline past, without wall-clock sleeps *)

(** The injected fault. Deliberately NOT {!Error.Error}: an armed site
    simulates an arbitrary crash, so resilient layers must contain it via
    their catch-all ([Internal]) path, not via the typed-error path. *)
exception Injected of { site : string; hit : int }

(** The algorithm-interior site catalogue, sorted: every name the solver
    pipeline passes to {!fire} (via {!Guard.tick} or {!Guard.point}). *)
val sites : string list

(** The batch-service runtime's fault sites ([Bss_service]):
    ["service.admit"] (bounded-queue admission), ["service.breaker.probe"]
    (half-open circuit-breaker probe), ["service.journal.flush"]
    (checkpoint journal write) and ["service.solve"] (per-request solve
    envelope). Disjoint from {!sites}; [bss soak --chaos] arms plans over
    both catalogues. *)
val service_sites : string list

(** The socket front end's fault sites ([Bss_net]): ["net.accept"] (one
    hit per accepted connection), ["net.read"] (one hit per complete
    frame parsed off a connection) and ["net.write"] (one hit per
    response frame queued for write). Hits are counted per {e frame},
    not per syscall, so a plan fires at the same protocol position
    regardless of how the kernel chunks the byte stream. Disjoint from
    {!sites} and {!service_sites}; [bss serve --listen --chaos] arms
    them. *)
val net_sites : string list

(** [armed ()] is true inside a {!with_plan} scope with a non-empty plan. *)
val armed : unit -> bool

(** [fire site] applies any armed [(site, hit, action)] whose 0-based hit
    counter matches the number of earlier [fire site] calls in this scope.
    No-op when disarmed. *)
val fire : string -> unit

(** [with_plan plan f] arms [plan] (a list of [(site, hit, action)]), runs
    [f], and disarms — also on exception. Hit counters start at zero; scopes
    nest (innermost plan wins). *)
val with_plan : (string * int * action) list -> (unit -> 'a) -> 'a

(** [plan_of_seed ?sites ?spread seed] draws a small deterministic plan
    (1-2 armed sites, hits in [\[0, spread)] with [spread] defaulting to
    12, mostly [Raise] with occasional [Stall]) from the given catalogue
    (default {!sites}). Equal arguments give equal plans; the default
    arguments reproduce the historical stream bit-for-bit. *)
val plan_of_seed : ?sites:string list -> ?spread:int -> int -> (string * int * action) list

(** ["site@hit:raise site@hit:stall(2000us)"] — for logs and reports. *)
val describe_plan : (string * int * action) list -> string
