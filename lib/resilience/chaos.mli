(** Deterministic fault injection: seeded plans and explicit schedules.

    A {e chaos site} is a named point inside an algorithm (the same
    vocabulary as the guard's charge sites, plus a few fault-only points —
    the full catalogue is {!sites} and docs/resilience.md). Arming a plan
    makes chosen sites misbehave at chosen hit counts: raise {!Injected},
    stall long enough to trip an armed deadline, or {!Crashed} — an
    in-process SIGKILL that no containment layer may catch. Tests use this
    to prove every edge of the degradation ladder is actually taken;
    [bss fuzz --chaos] sweeps seeded plans over random instances, and
    [bss torture] ([Bss_sim]) enumerates explicit schedules exhaustively.

    Like {!Bss_obs.Probe}, the armed plan is a process-global scoped sink:
    disarmed, {!fire} reads one ref and returns (allocation-free — pinned
    by the Gc test in [test/test_resilience.ml]). The state is not
    synchronized; arm on one domain at a time (the chaos sweep and the
    torture harness force a single domain). *)

type action =
  | Raise  (** raise {!Injected} out of the instrumented algorithm *)
  | Stall of int
      (** busy-wait this many microseconds on the monotonic clock — enough
          to push an armed deadline past, without wall-clock sleeps *)
  | Crash
      (** raise {!Crashed}: a simulated SIGKILL at the site. Resilient
          layers re-raise it instead of containing it, so it unwinds the
          whole run — the torture harness then resumes from the journal
          exactly as a restarted process would. *)

(** The injected fault. Deliberately NOT {!Error.Error}: an armed site
    simulates an arbitrary crash, so resilient layers must contain it via
    their catch-all ([Internal]) path, not via the typed-error path. *)
exception Injected of { site : string; hit : int }

(** The simulated process death. The one exception every catch-all in the
    service stack re-raises: containment would turn "the process died
    here" into "the request failed here", which is a different fact. *)
exception Crashed of { site : string; hit : int }

(** The algorithm-interior site catalogue, sorted: every name the solver
    pipeline passes to {!fire} (via {!Guard.tick} or {!Guard.point}). *)
val sites : string list

(** The batch-service runtime's fault sites ([Bss_service]):
    ["service.admit"] (bounded-queue admission), ["service.breaker.probe"]
    (half-open circuit-breaker probe), ["service.journal.flush"]
    (checkpoint journal write) and ["service.solve"] (per-request solve
    envelope). Disjoint from {!sites}; [bss soak --chaos] arms plans over
    both catalogues. *)
val service_sites : string list

(** The socket front end's fault sites ([Bss_net]): ["net.accept"] (one
    hit per accepted connection), ["net.read"] (one hit per complete
    frame parsed off a connection) and ["net.write"] (one hit per
    response frame queued for write). Hits are counted per {e frame},
    not per syscall, so a plan fires at the same protocol position
    regardless of how the kernel chunks the byte stream. Disjoint from
    {!sites} and {!service_sites}; [bss serve --listen --chaos] arms
    them. *)
val net_sites : string list

(** The journal's crash points, sorted: ["journal.write.before"/".after"]
    around the atomic temp-file write, ["journal.rename.before"/".after"]
    around the rename that publishes it, and
    ["journal.seal.before"/".after"] around the rotation rename that
    seals the active file into a numbered segment. One hit each per
    {!Bss_service.Journal.flush}. These exist for {!action.Crash}
    schedules: a crash between any two of them must leave a journal chain
    a resume can read. *)
val journal_sites : string list

(** [armed ()] is true inside a {!with_plan}/{!run_plan}/{!with_census}
    scope. *)
val armed : unit -> bool

(** [fire site] applies any armed [(site, hit, action)] whose 0-based hit
    counter matches the number of earlier [fire site] calls in this scope.
    No-op when disarmed; in a census scope it only counts. *)
val fire : string -> unit

(** [with_plan plan f] arms [plan] (a list of [(site, hit, action)]), runs
    [f], and disarms — also on exception. Hit counters start at zero; scopes
    nest (innermost plan wins). [with_plan [] f] is [f ()]: an empty plan
    does not open a scope, so an outer armed plan stays live. *)
val with_plan : (string * int * action) list -> (unit -> 'a) -> 'a

(** [run_plan plan f] arms [plan] (opening a scope even for []), runs [f]
    catching {e any} exception, and returns the result alongside the plan
    entries that actually fired, in firing order. The torture harness uses
    the fired list to tell which schedule entries were consumed before a
    {!Crashed} unwound the run (they are not re-armed on resume) and which
    never fired at all. *)
val run_plan :
  (string * int * action) list ->
  (unit -> 'a) ->
  ('a, exn) result * (string * int * action) list

(** [with_census f] runs [f] with a counting-only scope armed: every
    {!fire} is tallied, nothing is injected. Returns [f ()]'s result and
    the per-site hit counts, sorted by site — the fault-opportunity census
    a workload exposes, which is exactly the space [bss torture]
    enumerates schedules over. *)
val with_census : (unit -> 'a) -> 'a * (string * int) list

(** [plan_of_seed ?sites ?spread seed] draws a small deterministic plan
    (1-2 armed sites, hits in [\[0, spread)] with [spread] defaulting to
    12, mostly [Raise] with occasional [Stall]) from the given catalogue
    (default {!sites}). Equal arguments give equal plans; the default
    arguments reproduce the historical stream bit-for-bit. Never draws
    [Crash] — crash faults are for explicit schedules only. *)
val plan_of_seed : ?sites:string list -> ?spread:int -> int -> (string * int * action) list

(** ["raise"], ["crash"] or ["stall(2000us)"]. *)
val describe_action : action -> string

(** ["site@hit:raise site@hit:crash"] — for logs and reports. *)
val describe_plan : (string * int * action) list -> string
