open Bss_util

type t =
  | Invalid_input of { line : int option; field : string; reason : string }
  | Budget_exhausted of { phase : string; spent : int }
  | Deadline_exceeded of { phase : string; elapsed_ns : int64 }
  | Overloaded of { capacity : int; pending : int }
  | Internal of exn

exception Error of t

let invalid_input ?line ~field reason = raise (Error (Invalid_input { line; field; reason }))

let to_string = function
  | Invalid_input { line; field; reason } ->
    let where = match line with None -> "" | Some l -> Printf.sprintf "line %d, " l in
    Printf.sprintf "invalid input (%sfield %s): %s" where field reason
  | Budget_exhausted { phase; spent } ->
    Printf.sprintf "budget exhausted at %s after %d ticks" phase spent
  | Deadline_exceeded { phase; elapsed_ns } ->
    Printf.sprintf "deadline exceeded at %s after %.3fms" phase
      (Int64.to_float elapsed_ns /. 1e6)
  | Overloaded { capacity; pending } ->
    Printf.sprintf "overloaded: work queue full (%d pending, capacity %d)" pending capacity
  | Internal e -> "internal: " ^ Printexc.to_string e

let to_json = function
  | Invalid_input { line; field; reason } ->
    Json.obj
      ([ ("kind", Json.str "invalid_input") ]
      @ (match line with None -> [] | Some l -> [ ("line", Json.int l) ])
      @ [ ("field", Json.str field); ("reason", Json.str reason) ])
  | Budget_exhausted { phase; spent } ->
    Json.obj
      [ ("kind", Json.str "budget_exhausted"); ("phase", Json.str phase); ("spent", Json.int spent) ]
  | Deadline_exceeded { phase; elapsed_ns } ->
    Json.obj
      [
        ("kind", Json.str "deadline_exceeded");
        ("phase", Json.str phase);
        ("elapsed_ns", Json.int64 elapsed_ns);
      ]
  | Overloaded { capacity; pending } ->
    Json.obj
      [ ("kind", Json.str "overloaded"); ("capacity", Json.int capacity); ("pending", Json.int pending) ]
  | Internal e -> Json.obj [ ("kind", Json.str "internal"); ("exn", Json.str (Printexc.to_string e)) ]
