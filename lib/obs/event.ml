open Bss_util

type t =
  | Guess_accepted of { source : string; t : Rat.t }
  | Guess_rejected of { source : string; t : Rat.t; reason : string }
  | Interval_exit of { source : string; lo : Rat.t; hi : Rat.t }
  | Knapsack_path of { path : string; items : int }
  | Y_guard_fired of { t : Rat.t; deficit : Rat.t }
  | Gap_closed of { volume : Rat.t }
  | Candidate_won of { name : string; makespan : Rat.t; margin : Rat.t }
  | Breaker_transition of { variant : string; change : string }
  | Alert of { kind : string; series : string; window : int; value : float; baseline : float }
  | Note of { source : string; key : string; value : string }

let tag = function
  | Guess_accepted _ -> "guess_accepted"
  | Guess_rejected _ -> "guess_rejected"
  | Interval_exit _ -> "interval_exit"
  | Knapsack_path _ -> "knapsack_path"
  | Y_guard_fired _ -> "y_guard_fired"
  | Gap_closed _ -> "gap_closed"
  | Candidate_won _ -> "candidate_won"
  | Breaker_transition _ -> "breaker_transition"
  | Alert _ -> "alert"
  | Note _ -> "note"

let summary ev =
  match ev with
  | Guess_accepted { source; t } -> (tag ev, Rat.to_string t, source)
  | Guess_rejected { source; t; reason } -> (tag ev, Rat.to_string t, source ^ ": " ^ reason)
  | Interval_exit { source; lo; hi } ->
    (tag ev, Printf.sprintf "(%s, %s]" (Rat.to_string lo) (Rat.to_string hi), source)
  | Knapsack_path { path; items } -> (tag ev, path, Printf.sprintf "%d items" items)
  | Y_guard_fired { t; deficit } -> (tag ev, Rat.to_string t, "deficit " ^ Rat.to_string deficit)
  | Gap_closed { volume } -> (tag ev, Rat.to_string volume, "")
  | Candidate_won { name; makespan; margin } ->
    (tag ev, name, Printf.sprintf "makespan %s, margin %s" (Rat.to_string makespan) (Rat.to_string margin))
  | Breaker_transition { variant; change } -> (tag ev, change, variant)
  | Alert { kind; series; window; value; baseline } ->
    ( tag ev,
      kind,
      Printf.sprintf "%s window=%d value=%.6g baseline=%.6g" series window value baseline )
  | Note { source; key; value } -> (tag ev, value, source ^ ": " ^ key)

let to_json ev =
  let rat r = Json.str (Rat.to_string r) in
  let fields =
    match ev with
    | Guess_accepted { source; t } -> [ ("source", Json.str source); ("t", rat t) ]
    | Guess_rejected { source; t; reason } ->
      [ ("source", Json.str source); ("t", rat t); ("reason", Json.str reason) ]
    | Interval_exit { source; lo; hi } -> [ ("source", Json.str source); ("lo", rat lo); ("hi", rat hi) ]
    | Knapsack_path { path; items } -> [ ("path", Json.str path); ("items", Json.int items) ]
    | Y_guard_fired { t; deficit } -> [ ("t", rat t); ("deficit", rat deficit) ]
    | Gap_closed { volume } -> [ ("volume", rat volume) ]
    | Candidate_won { name; makespan; margin } ->
      [ ("name", Json.str name); ("makespan", rat makespan); ("margin", rat margin) ]
    | Breaker_transition { variant; change } ->
      [ ("variant", Json.str variant); ("change", Json.str change) ]
    | Alert { kind; series; window; value; baseline } ->
      [
        ("kind", Json.str kind);
        ("series", Json.str series);
        ("window", Json.int window);
        ("value", Json.float value);
        ("baseline", Json.float baseline);
      ]
    | Note { source; key; value } ->
      [ ("source", Json.str source); ("key", Json.str key); ("value", Json.str value) ]
  in
  Json.obj (("event", Json.str (tag ev)) :: fields)

let pp fmt ev =
  let tag, value, detail = summary ev in
  if detail = "" then Format.fprintf fmt "%s %s" tag value
  else Format.fprintf fmt "%s %s (%s)" tag value detail
