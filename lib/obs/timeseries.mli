(** The live telemetry plane's windowed time-series engine: a
    fixed-capacity ring of {e windows} — deltas between successive
    cumulative samples — with per-series EWMA baselines and a
    threshold-based anomaly detector.

    {b Window semantics.} The producer (the service runtime) pushes one
    cumulative {!sample} every [window_every] processed requests; a
    window id is therefore derived from the admission/completion
    sequence, never from the wall clock, and the stream replays
    bit-for-bit across worker counts. Counter deltas subtract exactly;
    histogram deltas go through {!Hist.diff}, which is exact bucket-wise
    (the same primitive the {!Slo} rolling windows use). Memory is
    bounded by [capacity] windows — the ring overwrites oldest-first —
    and the cumulative totals always reconcile: summing a field's deltas
    over the full stream (the final window included) reproduces the
    producer's final cumulative counter.

    {b Determinism partition.} A window's fields are split into a
    deterministic prefix (id, coverage, counter deltas, gauges, alerts)
    and a timing tail ([load] gauges and latency histograms, which
    depend on kernel scheduling). {!window_json} emits the prefix first
    and the tail last, so a comparison that strips everything from
    [,"load":] onward checks 1-worker == 4-worker bit-identity.

    {b Anomaly detection.} Per-series EWMA baselines feed three typed
    detectors, each emitting an {!alert} (and, under an installed
    {!Probe} recording, an [obs.alert.<kind>] counter plus a typed
    {!Event.Alert}) rather than prose:
    - [rate_spike]: a counter delta exceeds [spike_factor] x its EWMA
      baseline and clears the absolute floor [spike_min];
    - [p99_drift]: a window's p99 of a latency histogram exceeds
      [drift_factor] x its EWMA baseline, clears [drift_min_ns], and
      the window holds at least [drift_min_count] observations (the
      conservative floors keep healthy CI runs alert-free);
    - [burn_acceleration]: with an SLO spec armed, the worst window
      burn rate exceeds [burn_threshold] while still increasing.
    Detection and baseline updates are pure functions of the sample
    sequence (plus the config), so a seeded synthetic load pins an
    exact alert sequence. *)

val schema_version : string
(** ["bss-watch/1"]. *)

(** A cumulative observation of the producer's state, taken at a window
    boundary. [upto] is the number of requests processed so far (the
    window-id clock); [counters]/[gauges] are the deterministic series,
    [load]/[hists] the timing-dependent tail. Assoc lists are sorted by
    name. *)
type sample = {
  upto : int;
  counters : (string * int) list;  (** cumulative monotonic counters *)
  gauges : (string * int) list;  (** current values, not deltas (breaker states) *)
  load : (string * int) list;  (** timing-dependent gauges (queue depth, waves) *)
  hists : (string * Hist.snapshot) list;  (** cumulative histograms *)
}

val empty_sample : sample

(** [sample_of_report ~upto r] lifts a merged {!Report.t} into a sample:
    counters map across, histograms become the timing tail. *)
val sample_of_report : upto:int -> Report.t -> sample

type alert = {
  kind : string;  (** ["rate_spike"], ["p99_drift"] or ["burn_acceleration"] *)
  series : string;  (** the counter/histogram/objective that fired *)
  value : float;  (** the observed window value *)
  baseline : float;  (** the EWMA baseline (or previous burn) it was judged against *)
}

type window = {
  id : int;  (** 0-based, contiguous across the stream *)
  upto : int;  (** cumulative processed count at the window's close *)
  span : int;  (** processed count covered by this window *)
  final : bool;  (** the drain-time window closing the stream *)
  live : bool;  (** an on-demand {!peek}, not part of the stream *)
  counters : (string * int) list;  (** exact counter deltas *)
  gauges : (string * int) list;  (** current values at close *)
  alerts : alert list;
  load : (string * int) list;  (** timing tail: current load gauges *)
  hists : (string * Hist.snapshot) list;  (** timing tail: exact {!Hist.diff} deltas *)
}

type config = {
  capacity : int;  (** ring size, >= 1 *)
  alpha : float;  (** EWMA smoothing factor in (0, 1] *)
  warmup : int;  (** windows observed before any detector may fire *)
  spike_factor : float;
  spike_min : float;
  drift_factor : float;
  drift_min_count : int;
  drift_min_ns : float;
  burn_threshold : float;
  slo : Slo.t option;  (** objectives for the burn detector; [None] disables it *)
  seed : int;  (** stamped into the stream for provenance; detection is seed-free *)
}

(** capacity 64, alpha 0.3, warmup 3, spike 4x over a floor of 8,
    drift 8x over floors of 16 observations and 1 ms, burn threshold
    1.0, no SLO, seed 0. *)
val default_config : config

type t

(** Raises [Invalid_argument] on [capacity < 1] or [alpha] outside
    (0, 1]. *)
val create : config -> t

(** [push ?final t sample] closes the next window: computes deltas
    against the previous pushed sample, runs the detectors, updates the
    baselines, stores the window in the ring and returns it. *)
val push : ?final:bool -> t -> sample -> window

(** [peek t sample] is the window [push] would compute, marked [live],
    without storing it, updating baselines or alerting — the [stats]
    frame's on-demand snapshot. *)
val peek : t -> sample -> window

(** Ring contents, oldest first — at most [capacity] windows. *)
val windows : t -> window list

(** Windows ever pushed (the next window's id). *)
val pushed : t -> int

(** Alerts fired across all pushed windows. *)
val alert_total : t -> int

(** One [bss-watch/1] JSON line (no trailing newline), deterministic
    prefix first: [{"schema":"bss-watch/1","window":id,"upto":..,
    "span":..,"final":..,"live":..,"counters":{..},"gauges":{..},
    "alerts":[..],"load":{..},"hists":{..}}]. *)
val window_json : window -> string

(** Parse a {!window_json} line back (the [bss top] client side). *)
val window_of_json : Bss_util.Json.value -> (window, string) result
