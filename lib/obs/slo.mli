(** Declarative service-level objectives with an error-budget engine.

    An objectives file (schema {!schema_version}) names what a healthy
    run looks like — a latency quantile under a bound, an error rate and
    a retry rate under a ceiling — and the engine evaluates it twice
    over:

    - {e rolling windows}: at every [--metrics-every] emission, the
      delta since the previous emission (counters subtract; histograms
      subtract bucket-wise via {!Hist.diff}, exactly) is checked and
      each objective's {e burn rate} — measured over threshold, i.e.
      how fast the error budget is being consumed, [> 1.0] means
      violating — is tracked per window;
    - {e final}: the cumulative run is the hard pass/fail gate
      ([bss soak --slo]), with the worst window burn per objective
      carried along as the early-warning signal.

    Determinism: counter-based objectives are exact and reproduce
    across worker counts (the runtime's counters are deterministic);
    latency objectives read wall-clock histograms, so their [measured]
    values wobble — but the {e verdict} against an honest threshold
    does not, which is what the acceptance test pins. *)

val schema_version : string
(** ["bss-slo/1"]. *)

type target =
  | Latency of { hist : string; quantile : float; max_ns : float }
      (** [hist] names a histogram or a family prefix —
          ["service.solve_ns"] matches every
          ["service.solve_ns.<variant>"] and merges them exactly *)
  | Error_rate of { max : float }
      (** (rejected + aborted) / all outcomes [<= max] *)
  | Retry_rate of { max : float }
      (** retries / processed (completed + aborted) [<= max] *)

type objective = { name : string; target : target }
type t = { objectives : objective list }

(** What the engine evaluates against: the runtime's live counters and
    cumulative histogram snapshots. *)
type sample = {
  completed : int;
  rejected : int;
  aborted : int;
  retries : int;
  hists : (string * Hist.snapshot) list;
}

val empty_sample : sample

type check = {
  objective : string;
  ok : bool;
  measured : float;
  threshold : float;
  burn : float;  (** measured / threshold; > 1.0 is violating *)
}

type verdict = {
  ok : bool;
  checks : check list;  (** one per objective, in file order *)
  windows : int;  (** windows evaluated before this verdict *)
  worst_burn : (string * float) list;
      (** max window burn per objective, sorted; only on {!final} *)
}

val eval : t -> sample -> check list
(** One-shot evaluation of a sample (no window state). *)

type engine

val engine : t -> engine

val window : engine -> sample -> verdict
(** Evaluate the delta between [sample] (cumulative) and the previous
    {!window} call's sample, remember the burn rates, advance the
    window count. [worst_burn] is empty here. *)

val final : engine -> sample -> verdict
(** The cumulative verdict — the gate — with [worst_burn] filled from
    the windows seen. *)

val verdict_json : verdict -> string
(** One JSON object led by the deterministic fields:
    [{"verdict":"pass"|"fail","failed":[names],"windows":n,
      "checks":[{"objective":..,"ok":..,"measured":..,"threshold":..,
      "burn":..}],"worst_window_burn":{..}}]. *)

val verdict_text : verdict -> string
(** Stable multi-line rendering for the text summary. *)

val of_string : string -> (t, string) result
(** Parse an objectives file:
    [{"schema":"bss-slo/1","objectives":[
       {"name":..,"type":"latency","hist":..,"quantile":0.99,"max_ms":..},
       {"name":..,"type":"error_rate","max":..},
       {"name":..,"type":"retry_rate","max":..}]}].
    Rejects unknown schemas, unknown objective types, empty objective
    lists and non-positive bounds. *)

val to_json : t -> string
(** Render a spec back to the file format (round-trips {!of_string}). *)
