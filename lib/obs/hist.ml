open Bss_util

let buckets = 40

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () = { counts = Array.make buckets 0; n = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

(* frexp gives v = m * 2^e with m in [0.5, 1), so e >= 1 iff v >= 1 and
   bucket e covers [2^(e-1), 2^e) — fixed boundaries, one flop, no
   branch on the data beyond the clamps. *)
let bucket_of v =
  if not (Float.is_finite v) || v < 1.0 then 0
  else
    let _, e = Float.frexp v in
    if e >= buckets then buckets - 1 else e

let record t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let lower_bound i = if i <= 0 then 0. else Float.ldexp 1.0 (i - 1)
let upper_bound i = if i <= 0 then 1. else if i >= buckets - 1 then infinity else Float.ldexp 1.0 i

type snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  counts : (int * int) list;
}

let empty = { count = 0; sum = 0.; min = 0.; max = 0.; counts = [] }

let snapshot t =
  if t.n = 0 then empty
  else
    {
      count = t.n;
      sum = t.sum;
      min = t.vmin;
      max = t.vmax;
      counts =
        Array.to_list t.counts
        |> List.mapi (fun i c -> (i, c))
        |> List.filter (fun (_, c) -> c > 0);
    }

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    let rec add xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | (i, ci) :: tx, (j, cj) :: ty ->
        if i < j then (i, ci) :: add tx ys
        else if j < i then (j, cj) :: add xs ty
        else (i, ci + cj) :: add tx ty
    in
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      counts = add a.counts b.counts;
    }

let quantile s p =
  if s.count = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p *. float_of_int s.count)) in
    let rank = if rank < 1 then 1 else if rank > s.count then s.count else rank in
    let rec walk cum = function
      | [] -> s.max
      | (i, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then Float.max s.min (Float.min (lower_bound i) s.max) else walk cum rest
    in
    walk 0 s.counts

let to_json s =
  Json.obj
    [
      ("count", Json.int s.count);
      ("sum", Json.float s.sum);
      ("min", Json.float s.min);
      ("max", Json.float s.max);
      ("p50", Json.float (quantile s 0.5));
      ("p90", Json.float (quantile s 0.9));
      ("p99", Json.float (quantile s 0.99));
      ("buckets", Json.arr (List.map (fun (i, c) -> Json.arr [ Json.int i; Json.int c ]) s.counts));
    ]
