open Bss_util

let buckets = 40
let exemplar_cap = 2

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  (* exemplar ring per bucket, allocated on first [record_exemplar]:
     slot (seen mod cap) is overwritten, so eviction is a pure function
     of the attach order — deterministic whenever the caller's record
     order is (the service runtime attaches in request order). *)
  mutable ex : string array;  (* buckets * exemplar_cap slots *)
  mutable ex_seen : int array;  (* attaches per bucket, ever *)
}

let create () =
  {
    counts = Array.make buckets 0;
    n = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    ex = [||];
    ex_seen = [||];
  }

(* frexp gives v = m * 2^e with m in [0.5, 1), so e >= 1 iff v >= 1 and
   bucket e covers [2^(e-1), 2^e) — fixed boundaries, one flop, no
   branch on the data beyond the clamps. *)
let bucket_of v =
  if not (Float.is_finite v) || v < 1.0 then 0
  else
    let _, e = Float.frexp v in
    if e >= buckets then buckets - 1 else e

let record t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let record_exemplar t v id =
  record t v;
  if Array.length t.ex = 0 then begin
    t.ex <- Array.make (buckets * exemplar_cap) "";
    t.ex_seen <- Array.make buckets 0
  end;
  let b = bucket_of v in
  t.ex.((b * exemplar_cap) + (t.ex_seen.(b) mod exemplar_cap)) <- id;
  t.ex_seen.(b) <- t.ex_seen.(b) + 1

let lower_bound i = if i <= 0 then 0. else Float.ldexp 1.0 (i - 1)
let upper_bound i = if i <= 0 then 1. else if i >= buckets - 1 then infinity else Float.ldexp 1.0 i

type snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  counts : (int * int) list;
  exemplars : (int * string list) list;
}

let empty = { count = 0; sum = 0.; min = 0.; max = 0.; counts = []; exemplars = [] }

(* reconstruct the kept ids oldest-first: a full ring's oldest slot is
   (seen mod cap), a partial ring starts at 0 *)
let bucket_exemplars t b =
  if Array.length t.ex = 0 || t.ex_seen.(b) = 0 then []
  else
    let seen = t.ex_seen.(b) in
    let kept = min seen exemplar_cap in
    let start = if seen <= exemplar_cap then 0 else seen mod exemplar_cap in
    List.init kept (fun i -> t.ex.((b * exemplar_cap) + ((start + i) mod exemplar_cap)))

let snapshot t =
  if t.n = 0 then empty
  else
    {
      count = t.n;
      sum = t.sum;
      min = t.vmin;
      max = t.vmax;
      counts =
        Array.to_list t.counts
        |> List.mapi (fun i c -> (i, c))
        |> List.filter (fun (_, c) -> c > 0);
      exemplars =
        (if Array.length t.ex = 0 then []
         else
           List.init buckets (fun b -> (b, bucket_exemplars t b))
           |> List.filter (fun (_, ids) -> ids <> []));
    }

(* merge two ascending sparse (bucket, 'a) lists with [add] on collisions *)
let rec add_sparse add xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | (i, ci) :: tx, (j, cj) :: ty ->
    if i < j then (i, ci) :: add_sparse add tx ys
    else if j < i then (j, cj) :: add_sparse add xs ty
    else (i, add ci cj) :: add_sparse add tx ty

(* Exemplar merge keeps the lexicographically smallest [exemplar_cap]
   ids of the union — commutative and associative, so merged reports
   are order-insensitive like the rest of {!Report.merge}. *)
let merge_exemplars a b =
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  take exemplar_cap (List.sort_uniq compare (a @ b))

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      counts = add_sparse ( + ) a.counts b.counts;
      exemplars = add_sparse merge_exemplars a.exemplars b.exemplars;
    }

(* Bucket-wise subtraction: exact because the boundaries are fixed, so a
   later cumulative snapshot of the same histogram contains an earlier
   one bucket for bucket. Window min/max are unknowable from buckets
   alone; report the tightest bucket bounds instead. *)
let diff cur prev =
  if prev.count = 0 then cur
  else
    let counts =
      add_sparse ( + ) cur.counts (List.map (fun (i, c) -> (i, -c)) prev.counts)
      |> List.filter (fun (_, c) -> c > 0)
    in
    match counts with
    | [] -> empty
    | (lo, _) :: _ ->
      let hi = fst (List.nth counts (List.length counts - 1)) in
      {
        count = cur.count - prev.count;
        sum = cur.sum -. prev.sum;
        min = lower_bound lo;
        max = (if hi >= buckets - 1 then cur.max else upper_bound hi);
        counts;
        exemplars = List.filter (fun (b, _) -> List.mem_assoc b counts) cur.exemplars;
      }

let quantile_bucket s p =
  if s.count = 0 then None
  else
    let rank = int_of_float (Float.ceil (p *. float_of_int s.count)) in
    let rank = if rank < 1 then 1 else if rank > s.count then s.count else rank in
    let rec walk cum = function
      | [] -> None
      | (i, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then Some i else walk cum rest
    in
    walk 0 s.counts

let quantile s p =
  match quantile_bucket s p with
  | None -> if s.count = 0 then 0. else s.max
  | Some i -> Float.max s.min (Float.min (lower_bound i) s.max)

let quantile_exemplars s p =
  match quantile_bucket s p with
  | None -> []
  | Some i -> Option.value ~default:[] (List.assoc_opt i s.exemplars)

let exemplar_ids s = List.concat_map snd s.exemplars

let to_json s =
  Json.obj
    ([
       ("count", Json.int s.count);
       ("sum", Json.float s.sum);
       ("min", Json.float s.min);
       ("max", Json.float s.max);
       ("p50", Json.float (quantile s 0.5));
       ("p90", Json.float (quantile s 0.9));
       ("p99", Json.float (quantile s 0.99));
       ("buckets", Json.arr (List.map (fun (i, c) -> Json.arr [ Json.int i; Json.int c ]) s.counts));
     ]
    @
    if s.exemplars = [] then []
    else
      [
        ( "exemplars",
          Json.arr
            (List.map
               (fun (i, ids) -> Json.arr [ Json.int i; Json.arr (List.map Json.str ids) ])
               s.exemplars) );
      ])

let snapshot_of_json v =
  let ( let* ) = Result.bind in
  let num field =
    match Json.member field v with
    | Some (Json.Num n) -> Ok n
    | _ -> Error (Printf.sprintf "histogram: missing numeric %S" field)
  in
  let* count = num "count" in
  let* sum = num "sum" in
  let* vmin = num "min" in
  let* vmax = num "max" in
  let* counts =
    match Json.member "buckets" v with
    | Some (Json.Arr pairs) ->
      List.fold_left
        (fun acc pair ->
          let* acc = acc in
          match pair with
          | Json.Arr [ Json.Num i; Json.Num c ] -> Ok ((int_of_float i, int_of_float c) :: acc)
          | _ -> Error "histogram: malformed bucket pair")
        (Ok []) pairs
      |> Result.map List.rev
    | _ -> Error "histogram: missing \"buckets\" array"
  in
  let exemplars =
    match Json.member "exemplars" v with
    | Some (Json.Arr entries) ->
      List.filter_map
        (function
          | Json.Arr [ Json.Num i; Json.Arr ids ] ->
            Some
              ( int_of_float i,
                List.filter_map (function Json.Str s -> Some s | _ -> None) ids )
          | _ -> None)
        entries
    | _ -> []
  in
  Ok { count = int_of_float count; sum; min = vmin; max = vmax; counts; exemplars }
