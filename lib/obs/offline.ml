(* Offline analysis of the service's machine-readable artifacts: the
   [--metrics-every] JSONL stream (and the soak/serve summary JSON,
   which carries the same schema tag) and the [--trace-out] Chrome
   trace file. This is the engine behind [bss report] — it never runs
   anything, it only reads what a previous run wrote. *)

open Bss_util

let metrics_schema_version = "bss-metrics/1"

type point = {
  completed : int;
  rejected : int;
  aborted : int;
  retries : int;
  queue_peak : int;
  waves : int;
  salvaged : int option;
  schedules_explored : int option;
  schedules_violated : int option;
  hists : (string * Hist.snapshot) list;
  gauges : (string * int) list;
}

let empty_point =
  {
    completed = 0;
    rejected = 0;
    aborted = 0;
    retries = 0;
    queue_peak = 0;
    waves = 0;
    salvaged = None;
    schedules_explored = None;
    schedules_violated = None;
    hists = [];
    gauges = [];
  }

let ( let* ) = Result.bind

let int_member name v =
  match Json.member name v with Some (Json.Num n) -> int_of_float n | _ -> 0

(* Counters absent from old artifacts must stay absent from the report
   (the pinned tables predate them), so these parse to [None], not 0. *)
let opt_int_member name v =
  match Json.member name v with Some (Json.Num n) -> Some (int_of_float n) | _ -> None

let gauges_member v =
  match Json.member "gauges" v with
  | Some (Json.Obj kvs) ->
    List.filter_map
      (function k, Json.Num n -> Some (k, int_of_float n) | _ -> None)
      kvs
  | _ -> []

let hists_member v =
  match Json.member "hists" v with
  | Some (Json.Obj kvs) ->
    List.fold_left
      (fun acc (k, hv) ->
        let* acc = acc in
        match Hist.snapshot_of_json hv with
        | Ok h -> Ok ((k, h) :: acc)
        | Error e -> Error (Printf.sprintf "hist %S: %s" k e))
      (Ok []) kvs
    |> Result.map List.rev
  | _ -> Ok []

(* One record: either a periodic metrics line
   [{"schema":..,"metrics":{...}}] or a run-summary object
   [{"schema":..,"done":..,"hists":{..}}] — both carry the same tag. *)
let point_of_json v =
  let* () =
    match Json.member "schema" v with
    | Some (Json.Str s) when s = metrics_schema_version -> Ok ()
    | Some (Json.Str s) ->
      Error (Printf.sprintf "unsupported schema %S (this build reads %S)" s metrics_schema_version)
    | _ -> Error (Printf.sprintf "missing \"schema\" field (expected %S)" metrics_schema_version)
  in
  match Json.member "metrics" v with
  | Some m ->
    let* hists = hists_member m in
    Ok
      {
        completed = int_member "completed" m;
        rejected = int_member "rejected" m;
        aborted = int_member "aborted" m;
        retries = int_member "retries" m;
        queue_peak = int_member "queue_peak" m;
        waves = int_member "waves" m;
        salvaged = opt_int_member "salvaged" m;
        schedules_explored = opt_int_member "schedules_explored" m;
        schedules_violated = opt_int_member "schedules_violated" m;
        hists;
        gauges = gauges_member m;
      }
  | None ->
    let* hists = hists_member v in
    Ok
      {
        completed = int_member "done" v;
        rejected = int_member "rejected" v;
        aborted = int_member "aborted" v;
        retries = int_member "retries" v;
        queue_peak = int_member "queue_peak" v;
        waves = int_member "waves" v;
        salvaged = opt_int_member "salvaged" v;
        schedules_explored = opt_int_member "schedules_explored" v;
        schedules_violated = opt_int_member "schedules_violated" v;
        hists;
        gauges = gauges_member v;
      }

(* A captured stdout stream interleaves metrics lines with human text
   (the per-request lines, the summary footer). Non-JSON lines are
   skipped; any line that parses as a JSON object claiming to be a
   metrics record (a "schema", "metrics" or "done" member) must carry a
   schema this build understands — that is the rejection the versioned
   tag exists for. *)
let parse_metrics content =
  let lines = String.split_on_char '\n' content in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = String.trim line in
      if line = "" then go (n + 1) acc rest
      else
        match Json.parse line with
        | Error _ -> go (n + 1) acc rest
        | Ok v ->
          let claims =
            Json.member "schema" v <> None || Json.member "metrics" v <> None
            || Json.member "done" v <> None
          in
          if not claims then go (n + 1) acc rest
          else (
            match point_of_json v with
            | Ok p -> go (n + 1) (p :: acc) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" n e)))
  in
  let* points = go 1 [] lines in
  if points = [] then Error "no metrics records found (run with --metrics-every or --json)"
  else Ok points

let last points = match List.rev points with p :: _ -> p | [] -> empty_point

let counters p =
  let opt name = function Some v -> [ (name, v) ] | None -> [] in
  [
    ("completed", p.completed);
    ("rejected", p.rejected);
    ("aborted", p.aborted);
    ("retries", p.retries);
    ("queue_peak", p.queue_peak);
    ("waves", p.waves);
  ]
  @ opt "service.journal.salvaged" p.salvaged
  @ opt "sim.schedules.explored" p.schedules_explored
  @ opt "sim.schedules.violated" p.schedules_violated

(* breaker states travel as numerics; the table decodes the known ones *)
let gauge_state v =
  match v with 0 -> "closed" | 1 -> "open" | 2 -> "half-open" | _ -> "-"

(* ---------------- the trace file ---------------- *)

type trace_row = {
  trace_id : string;
  request_id : string;
  seq : int;
  total_ns : float;
  phases : (string * float) list;  (** phase attr -> summed ns, by first appearance *)
}

let str_member name v = match Json.member name v with Some (Json.Str s) -> Some s | _ -> None
let num_member name v = match Json.member name v with Some (Json.Num n) -> Some n | _ -> None

(* Request spans are X events with cat "request", grouped by tid (the
   admission sequence). The root span is named "request" and carries
   the total; every other span sums into its "phase" attribute bucket
   (queue, solve, retry, journal). dur is microseconds in the file. *)
let parse_traces content =
  let* v = Json.parse content in
  let* events =
    match Json.member "traceEvents" v with
    | Some (Json.Arr evs) -> Ok evs
    | _ -> Error "not a Chrome trace file (no \"traceEvents\" array)"
  in
  let rows : (int, trace_row) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      match (str_member "ph" e, str_member "cat" e) with
      | Some "X", Some "request" -> (
        match (num_member "tid" e, Json.member "args" e) with
        | Some tid, Some args ->
          let tid = int_of_float tid in
          let dur_ns = Option.value ~default:0. (num_member "dur" e) *. 1e3 in
          let row =
            match Hashtbl.find_opt rows tid with
            | Some r -> r
            | None ->
              order := tid :: !order;
              {
                trace_id = Option.value ~default:"" (str_member "trace_id" args);
                request_id = Option.value ~default:"" (str_member "request_id" args);
                seq = tid;
                total_ns = 0.;
                phases = [];
              }
          in
          let row =
            match str_member "name" e with
            | Some "request" -> { row with total_ns = row.total_ns +. dur_ns }
            | _ -> (
              match str_member "phase" args with
              | Some phase ->
                let prev = Option.value ~default:0. (List.assoc_opt phase row.phases) in
                {
                  row with
                  phases =
                    (if List.mem_assoc phase row.phases then
                       List.map (fun (k, v) -> if k = phase then (k, prev +. dur_ns) else (k, v)) row.phases
                     else row.phases @ [ (phase, dur_ns) ]);
                }
              | None -> row)
          in
          Hashtbl.replace rows tid row
        | _ -> ())
      | _ -> ())
    events;
  let rows = List.rev_map (fun tid -> Hashtbl.find rows tid) !order in
  if rows = [] then Error "no request traces in the file (run with --trace-out and tracing enabled)"
  else Ok rows

let slowest ~k rows =
  let sorted = List.stable_sort (fun a b -> compare b.total_ns a.total_ns) rows in
  let rec take n = function x :: xs when n > 0 -> x :: take (n - 1) xs | _ -> [] in
  take k sorted

(* ---------------- rendering ---------------- *)

let ms ns = Printf.sprintf "%.3f" (ns /. 1e6)
let num = Printf.sprintf "%.4g"

let percentile_table p =
  if p.hists = [] then "no histograms recorded\n"
  else
    (^) "\n"
    @@ Table.render
      ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max"; "p99 exemplars" ]
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      (List.map
         (fun (name, (h : Hist.snapshot)) ->
           [
             name;
             string_of_int h.Hist.count;
             num (Hist.quantile h 0.5);
             num (Hist.quantile h 0.9);
             num (Hist.quantile h 0.99);
             num h.Hist.max;
             String.concat " " (Hist.quantile_exemplars h 0.99);
           ])
         p.hists)
    ^ "\n"

let counter_table ?baseline p =
  (match baseline with
  | None ->
    Table.render ~header:[ "counter"; "value" ]
      ~align:[ Table.Left; Table.Right ]
      (List.map (fun (k, v) -> [ k; string_of_int v ]) (counters p))
  | Some b ->
    let base = counters b in
    Table.render
      ~header:[ "counter"; "baseline"; "current"; "delta" ]
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      (List.map
         (fun (k, v) ->
           let bv = Option.value ~default:0 (List.assoc_opt k base) in
           [ k; string_of_int bv; string_of_int v; Printf.sprintf "%+d" (v - bv) ])
         (counters p)))
  ^ "\n"

(* rendered only when the artifact carried gauges (a live-plane run) —
   older artifacts keep their pinned reports byte-identical *)
let gauge_table p =
  Table.render ~header:[ "gauge"; "value"; "state" ]
    ~align:[ Table.Left; Table.Right; Table.Left ]
    (List.map (fun (k, v) -> [ k; string_of_int v; gauge_state v ]) p.gauges)
  ^ "\n"

let phase_order = [ "queue"; "solve"; "retry"; "journal" ]

let trace_table rows =
  let phase_ms row name = ms (Option.value ~default:0. (List.assoc_opt name row.phases)) in
  let other row =
    row.total_ns -. List.fold_left (fun acc (_, v) -> acc +. v) 0. row.phases
  in
  Table.render
    ~header:
      ([ "trace"; "request"; "total ms" ] @ List.map (fun p -> p ^ " ms") phase_order @ [ "other ms" ])
    ~align:
      ([ Table.Left; Table.Left; Table.Right ]
      @ List.map (fun _ -> Table.Right) phase_order
      @ [ Table.Right ])
    (List.map
       (fun row ->
         [ row.trace_id; row.request_id; ms row.total_ns ]
         @ List.map (phase_ms row) phase_order
         @ [ ms (other row) ])
       rows)
  ^ "\n"
