open Bss_util

let schema_version = "bss-watch/1"

type sample = {
  upto : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  load : (string * int) list;
  hists : (string * Hist.snapshot) list;
}

let empty_sample = { upto = 0; counters = []; gauges = []; load = []; hists = [] }

let sort_assoc l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let sample_of_report ~upto (r : Report.t) =
  {
    upto;
    counters = sort_assoc r.Report.counters;
    gauges = [];
    load = [];
    hists = sort_assoc r.Report.hists;
  }

type alert = { kind : string; series : string; value : float; baseline : float }

type window = {
  id : int;
  upto : int;
  span : int;
  final : bool;
  live : bool;
  counters : (string * int) list;
  gauges : (string * int) list;
  alerts : alert list;
  load : (string * int) list;
  hists : (string * Hist.snapshot) list;
}

type config = {
  capacity : int;
  alpha : float;
  warmup : int;
  spike_factor : float;
  spike_min : float;
  drift_factor : float;
  drift_min_count : int;
  drift_min_ns : float;
  burn_threshold : float;
  slo : Slo.t option;
  seed : int;
}

let default_config =
  {
    capacity = 64;
    alpha = 0.3;
    warmup = 3;
    spike_factor = 4.0;
    spike_min = 8.0;
    drift_factor = 8.0;
    drift_min_count = 16;
    drift_min_ns = 1e6;
    burn_threshold = 1.0;
    slo = None;
    seed = 0;
  }

type t = {
  config : config;
  ring : window option array;
  mutable pushed : int;
  mutable prev : sample;
  (* EWMA baselines, one entry per series; created on first observation *)
  rate_base : (string, float) Hashtbl.t;
  p99_base : (string, float) Hashtbl.t;
  mutable prev_burn : float option;
  mutable alert_total : int;
}

let create config =
  if config.capacity < 1 then invalid_arg "Timeseries: capacity < 1";
  if not (config.alpha > 0.0 && config.alpha <= 1.0) then
    invalid_arg "Timeseries: alpha outside (0, 1]";
  if config.warmup < 0 then invalid_arg "Timeseries: warmup < 0";
  {
    config;
    ring = Array.make config.capacity None;
    pushed = 0;
    prev = empty_sample;
    rate_base = Hashtbl.create 16;
    p99_base = Hashtbl.create 8;
    prev_burn = None;
    alert_total = 0;
  }

let pushed t = t.pushed
let alert_total t = t.alert_total

let windows t =
  let n = min t.pushed (Array.length t.ring) in
  List.init n (fun i ->
      match t.ring.((t.pushed - n + i) mod Array.length t.ring) with
      | Some w -> w
      | None -> assert false)

(* exact deltas of cumulative counters; series present in [cur] only
   delta against 0, so a counter appearing mid-stream still reconciles *)
let counter_deltas cur prev =
  List.map
    (fun (k, v) -> (k, v - Option.value ~default:0 (List.assoc_opt k prev)))
    (sort_assoc cur)

let hist_deltas cur prev =
  List.map
    (fun (k, h) -> (k, Hist.diff h (Option.value ~default:Hist.empty (List.assoc_opt k prev))))
    (sort_assoc cur)

let delta_window ?(final = false) ?(live = false) t (s : sample) =
  {
    id = t.pushed;
    upto = s.upto;
    span = s.upto - t.prev.upto;
    final;
    live;
    counters = counter_deltas s.counters t.prev.counters;
    gauges = sort_assoc s.gauges;
    alerts = [];
    load = sort_assoc s.load;
    hists = hist_deltas s.hists t.prev.hists;
  }

let peek t s = delta_window ~live:true t s

(* ---------------- the anomaly detectors ---------------- *)

(* Baselines are read before the window updates them (the window is
   judged against history, not against itself), and every update is a
   pure function of the pushed sample sequence — a seeded synthetic load
   replays the exact alert sequence. *)

let ewma t tbl series v =
  let b = Option.value ~default:v (Hashtbl.find_opt tbl series) in
  Hashtbl.replace tbl series (b +. (t.config.alpha *. (v -. b)));
  b

let detect t (w : window) =
  let c = t.config in
  let armed = w.id >= c.warmup in
  let spikes =
    List.filter_map
      (fun (series, d) ->
        let v = float_of_int d in
        let b = ewma t t.rate_base series v in
        if armed && v >= c.spike_min && v > c.spike_factor *. Float.max b 1.0 then
          Some { kind = "rate_spike"; series; value = v; baseline = b }
        else None)
      w.counters
  in
  let drifts =
    List.filter_map
      (fun (series, (h : Hist.snapshot)) ->
        if h.Hist.count < c.drift_min_count then None
        else
          let p99 = Hist.quantile h 0.99 in
          let b = ewma t t.p99_base series p99 in
          if
            armed && b > 0.0
            && p99 > c.drift_factor *. b
            && p99 -. b >= c.drift_min_ns
          then Some { kind = "p99_drift"; series; value = p99; baseline = b }
          else None)
      w.hists
  in
  let burns =
    match c.slo with
    | None -> []
    | Some spec ->
      let assoc k = Option.value ~default:0 (List.assoc_opt k w.counters) in
      let delta_sample =
        {
          Slo.completed = assoc "service.completed";
          rejected = assoc "service.rejected";
          aborted = assoc "service.aborted";
          retries = assoc "service.retries";
          hists = w.hists;
        }
      in
      let worst =
        List.fold_left
          (fun acc (ch : Slo.check) ->
            match acc with
            | Some (_, b) when b >= ch.Slo.burn -> acc
            | _ -> Some (ch.Slo.objective, ch.Slo.burn))
          None (Slo.eval spec delta_sample)
      in
      let fired =
        match worst with
        | Some (objective, burn) when burn > c.burn_threshold -> (
          match t.prev_burn with
          | Some prev when burn > prev ->
            [ { kind = "burn_acceleration"; series = objective; value = burn; baseline = prev } ]
          | _ -> [])
        | _ -> []
      in
      t.prev_burn <- Option.map snd worst;
      if not armed then [] else fired
  in
  spikes @ drifts @ burns

let push ?(final = false) t s =
  let w = delta_window ~final t s in
  let alerts = detect t w in
  let w = { w with alerts } in
  t.alert_total <- t.alert_total + List.length alerts;
  if alerts <> [] && Probe.enabled () then
    List.iter
      (fun a ->
        Probe.count ("obs.alert." ^ a.kind);
        Probe.count "obs.alerts";
        Probe.event
          (Event.Alert
             { kind = a.kind; series = a.series; window = w.id; value = a.value; baseline = a.baseline }))
      alerts;
  t.ring.(t.pushed mod Array.length t.ring) <- Some w;
  t.pushed <- t.pushed + 1;
  t.prev <- s;
  w

(* ---------------- bss-watch/1 JSON ---------------- *)

let alert_json a =
  Json.obj
    [
      ("kind", Json.str a.kind);
      ("series", Json.str a.series);
      ("value", Json.float a.value);
      ("baseline", Json.float a.baseline);
    ]

let int_obj l = Json.obj (List.map (fun (k, v) -> (k, Json.int v)) l)

(* deterministic prefix first, timing tail ("load", "hists") last — a
   stream comparison strips from [,"load":] onward for worker-count
   bit-identity (docs/observability.md) *)
let window_json w =
  Json.obj
    [
      ("schema", Json.str schema_version);
      ("window", Json.int w.id);
      ("upto", Json.int w.upto);
      ("span", Json.int w.span);
      ("final", Json.bool w.final);
      ("live", Json.bool w.live);
      ("counters", int_obj w.counters);
      ("gauges", int_obj w.gauges);
      ("alerts", Json.arr (List.map alert_json w.alerts));
      ("load", int_obj w.load);
      ("hists", Json.obj (List.map (fun (k, h) -> (k, Hist.to_json h)) w.hists));
    ]

let window_of_json v =
  let ( let* ) r f = match r with Ok x -> f x | Error e -> Error e in
  let int_field k =
    match Json.member k v with
    | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "window: missing or malformed %S" k)
  in
  let bool_field k =
    match Json.member k v with Some (Json.Bool b) -> b | _ -> false
  in
  let int_assoc k =
    match Json.member k v with
    | Some (Json.Obj fields) ->
      Ok
        (List.filter_map
           (function name, Json.Num f when Float.is_integer f -> Some (name, int_of_float f) | _ -> None)
           fields)
    | None -> Ok []
    | Some _ -> Error (Printf.sprintf "window: %S is not an object" k)
  in
  match Json.member "schema" v with
  | Some (Json.Str s) when s = schema_version ->
    let* id = int_field "window" in
    let* upto = int_field "upto" in
    let* span = int_field "span" in
    let* counters = int_assoc "counters" in
    let* gauges = int_assoc "gauges" in
    let* load = int_assoc "load" in
    let* alerts =
      match Json.member "alerts" v with
      | Some (Json.Arr items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let str k =
              match Json.member k item with Some (Json.Str s) -> Ok s | _ -> Error ("alert: missing " ^ k)
            in
            let num k = match Json.member k item with Some (Json.Num f) -> f | _ -> 0.0 in
            let* kind = str "kind" in
            let* series = str "series" in
            Ok ({ kind; series; value = num "value"; baseline = num "baseline" } :: acc))
          (Ok []) items
        |> Result.map List.rev
      | None -> Ok []
      | Some _ -> Error "window: \"alerts\" is not an array"
    in
    let* hists =
      match Json.member "hists" v with
      | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (name, hv) ->
            let* acc = acc in
            let* h = Hist.snapshot_of_json hv in
            Ok ((name, h) :: acc))
          (Ok []) fields
        |> Result.map List.rev
      | None -> Ok []
      | Some _ -> Error "window: \"hists\" is not an object"
    in
    Ok
      {
        id;
        upto;
        span;
        final = bool_field "final";
        live = bool_field "live";
        counters;
        gauges;
        alerts;
        load;
        hists;
      }
  | Some (Json.Str s) -> Error ("window: unsupported schema: " ^ s)
  | _ -> Error "window: missing schema"
