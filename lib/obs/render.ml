open Bss_util

let ms ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e6)
let num = Printf.sprintf "%.4g"

let dropped_warning (r : Report.t) =
  Printf.sprintf "!! %d event(s) dropped beyond the %d-event cap — counters are complete, the event stream is not"
    r.Report.dropped_events Report.event_cap

let table ?(events = false) (r : Report.t) =
  let buf = Buffer.create 1024 in
  if r.dropped_events > 0 then begin
    Buffer.add_string buf (dropped_warning r);
    Buffer.add_char buf '\n'
  end;
  if r.spans <> [] then begin
    Buffer.add_string buf
      (Table.render
         ~header:[ "span"; "calls"; "total ms" ]
         ~align:[ Table.Left; Table.Right; Table.Right ]
         (List.map
            (fun (path, (s : Report.span_total)) -> [ path; string_of_int s.calls; ms s.ns ])
            r.spans));
    Buffer.add_char buf '\n'
  end;
  if r.hists <> [] then begin
    Buffer.add_string buf
      (Table.render
         ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
         ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
         (List.map
            (fun (name, (h : Hist.snapshot)) ->
              [
                name;
                string_of_int h.Hist.count;
                num (Hist.quantile h 0.5);
                num (Hist.quantile h 0.9);
                num (Hist.quantile h 0.99);
                num h.Hist.max;
              ])
            r.hists));
    Buffer.add_char buf '\n'
  end;
  if r.counters <> [] then begin
    Buffer.add_string buf
      (Table.render ~header:[ "counter"; "value" ]
         ~align:[ Table.Left; Table.Right ]
         (List.map (fun (name, v) -> [ name; string_of_int v ]) r.counters));
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf
    (Printf.sprintf "events: %d recorded%s\n" (List.length r.events)
       (if r.dropped_events > 0 then Printf.sprintf " (+%d dropped)" r.dropped_events else ""));
  if events then
    List.iter
      (fun (e : Report.event_entry) ->
        Buffer.add_string buf (Format.asprintf "  %a\n" Event.pp e.Report.event))
      r.events;
  Buffer.contents buf

let json (r : Report.t) =
  Json.obj
    ((if r.dropped_events > 0 then [ ("warning", Json.str (dropped_warning r)) ] else [])
    @ [
        ("counters", Json.obj (List.map (fun (name, v) -> (name, Json.int v)) r.counters));
        ("hists", Json.obj (List.map (fun (name, h) -> (name, Hist.to_json h)) r.hists));
        ( "spans",
          Json.obj
            (List.map
               (fun (path, (s : Report.span_total)) ->
                 (path, Json.obj [ ("calls", Json.int s.calls); ("ns", Json.int64 s.ns) ]))
               r.spans) );
        ( "events",
          Json.arr (List.map (fun (e : Report.event_entry) -> Event.to_json e.Report.event) r.events)
        );
        ("dropped_events", Json.int r.dropped_events);
      ])

let jsonl (r : Report.t) =
  let buf = Buffer.create 1024 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (name, v) -> line (Json.obj [ ("counter", Json.str name); ("value", Json.int v) ]))
    r.counters;
  List.iter
    (fun (name, h) -> line (Json.obj [ ("hist", Json.str name); ("value", Hist.to_json h) ]))
    r.hists;
  List.iter
    (fun (path, (s : Report.span_total)) ->
      line (Json.obj [ ("span", Json.str path); ("calls", Json.int s.calls); ("ns", Json.int64 s.ns) ]))
    r.spans;
  List.iter (fun (e : Report.event_entry) -> line (Event.to_json e.Report.event)) r.events;
  if r.dropped_events > 0 then line (Json.obj [ ("dropped_events", Json.int r.dropped_events) ]);
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv (r : Report.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,value,detail\n";
  let row kind name value detail =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s\n" kind (csv_cell name) (csv_cell value) (csv_cell detail))
  in
  List.iter (fun (name, v) -> row "counter" name (string_of_int v) "") r.counters;
  List.iter
    (fun (name, (h : Hist.snapshot)) ->
      row "hist" name (string_of_int h.Hist.count)
        (Printf.sprintf "p50=%s;p90=%s;p99=%s;max=%s" (num (Hist.quantile h 0.5))
           (num (Hist.quantile h 0.9)) (num (Hist.quantile h 0.99)) (num h.Hist.max)))
    r.hists;
  List.iter
    (fun (path, (s : Report.span_total)) ->
      row "span" path (string_of_int s.calls) (Int64.to_string s.ns))
    r.spans;
  List.iter
    (fun (e : Report.event_entry) ->
      let tag, value, detail = Event.summary e.Report.event in
      row "event" tag value detail)
    r.events;
  Buffer.contents buf

(* ---------------- Chrome trace_event export ---------------- *)

(* ts/dur are microseconds; emit with fixed precision so output is
   stable across float formatting quirks *)
let us ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

let leaf path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let metadata ~pid ~tid which name =
  Json.obj
    [
      ("ph", Json.str "M");
      ("name", Json.str which);
      ("pid", Json.int pid);
      ("tid", Json.int tid);
      ("args", Json.obj [ ("name", Json.str name) ]);
    ]

(* Lay one domain's aggregated span tree out as a flamegraph: children
   nest inside their parent's interval, siblings go end to end in path
   order. The cursor is a synthetic offset — span totals carry no start
   times. *)
let domain_events ~pid (spans : (string * Report.span_total) list) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (p, s) -> Hashtbl.replace tbl p s) spans;
  let children = Hashtbl.create 16 in
  List.iter
    (fun (p, s) ->
      let parent =
        match String.rindex_opt p '/' with
        | Some i ->
          let par = String.sub p 0 i in
          if Hashtbl.mem tbl par then par else ""
        | None -> ""
      in
      Hashtbl.replace children parent
        ((p, s) :: Option.value ~default:[] (Hashtbl.find_opt children parent)))
    spans;
  let kids parent = List.rev (Option.value ~default:[] (Hashtbl.find_opt children parent)) in
  let out = ref [] in
  let add e = out := e :: !out in
  (* both metadata records: Perfetto only groups tracks under a named
     process when the thread is named too *)
  add (metadata ~pid ~tid:0 "process_name" (Printf.sprintf "domain %d" pid));
  add (metadata ~pid ~tid:0 "thread_name" (Printf.sprintf "domain %d spans" pid));
  let rec emit cursor (path, (s : Report.span_total)) =
    add
      (Json.obj
         [
           ("ph", Json.str "X");
           ("name", Json.str (leaf path));
           ("cat", Json.str "span");
           ("ts", us cursor);
           ("dur", us s.Report.ns);
           ("pid", Json.int pid);
           ("tid", Json.int 0);
           ("args", Json.obj [ ("path", Json.str path); ("calls", Json.int s.Report.calls) ]);
         ]);
    ignore
      (List.fold_left
         (fun c child ->
           emit c child;
           Int64.add c (snd child).Report.ns)
         cursor (kids path))
  in
  ignore
    (List.fold_left
       (fun c root ->
         emit c root;
         Int64.add c (snd root).Report.ns)
       0L (kids ""));
  List.rev !out

(* Request traces live in their own trace process: one thread (tid =
   admission sequence) per trace, named by its trace id, every span
   event carrying the trace/request ids in [args] so Perfetto's flow and
   search find them. Spans inside a request are genuinely sequential
   (queue wait, attempts, journal), so the cursor layout is close to the
   real request timeline, with real durations. *)
let request_pid = 1000

let request_trace_events (t : Trace_ctx.trace) =
  let out = ref [] in
  let add e = out := e :: !out in
  add (metadata ~pid:request_pid ~tid:t.Trace_ctx.seq "thread_name" t.Trace_ctx.trace_id);
  let attr_json (k, v) =
    ( k,
      match v with
      | Trace_ctx.S s -> Json.str s
      | Trace_ctx.I i -> Json.int i
      | Trace_ctx.B b -> Json.bool b )
  in
  let rec emit cursor (s : Trace_ctx.span) =
    add
      (Json.obj
         [
           ("ph", Json.str "X");
           ("name", Json.str s.Trace_ctx.name);
           ("cat", Json.str "request");
           ("ts", us cursor);
           ("dur", us s.Trace_ctx.dur_ns);
           ("pid", Json.int request_pid);
           ("tid", Json.int t.Trace_ctx.seq);
           ( "args",
             Json.obj
               ([
                  ("trace_id", Json.str t.Trace_ctx.trace_id);
                  ("request_id", Json.str t.Trace_ctx.request_id);
                ]
               @ List.map attr_json s.Trace_ctx.attrs) );
         ]);
    ignore
      (List.fold_left
         (fun c child ->
           emit c child;
           Int64.add c child.Trace_ctx.dur_ns)
         cursor s.Trace_ctx.children)
  in
  emit 0L t.Trace_ctx.root;
  List.rev !out

let chrome_trace ?(traces = []) (r : Report.t) =
  let span_events =
    List.concat_map
      (fun (dom, spans) -> domain_events ~pid:(max dom 0) spans)
      r.Report.by_domain
  in
  let trace_events =
    if traces = [] then []
    else
      metadata ~pid:request_pid ~tid:0 "process_name" "requests"
      :: List.concat_map request_trace_events traces
  in
  let counter_events =
    List.map
      (fun (name, v) ->
        Json.obj
          [
            ("ph", Json.str "C");
            ("name", Json.str name);
            ("pid", Json.int 0);
            ("tid", Json.int 0);
            ("ts", "0");
            ("args", Json.obj [ ("value", Json.int v) ]);
          ])
      r.Report.counters
  in
  Json.obj
    [
      ("traceEvents", Json.arr (span_events @ trace_events @ counter_events));
      ("displayTimeUnit", Json.str "ms");
    ]
