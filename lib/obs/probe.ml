(* Multi-domain collection: one collector per (recording, domain), found
   through a Domain.DLS slot so the hot path never takes a lock.

   - [current] is the installed recording (or None), read with one
     atomic load. The disabled path reads it and returns — no
     allocation, no branch beyond the [None] check.
   - An enabled probe looks up its domain's slot; a slot cached for this
     recording id resolves in two loads. On the first probe of a
     (recording, domain) pair the slot misses and the domain registers a
     collector under the recording's mutex — once per domain per
     recording, never on the steady-state path.
   - Each collector is mutated only by its own domain; harvest happens
     after [f] returns, when any worker domains spawned inside [f] have
     been joined (Parallel.map/map_results join before returning). *)

type agg = { mutable calls : int; mutable ns : int64 }
type frame = { path : string; start : int64 }

type collector = {
  domain : int;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  spans : (string, agg) Hashtbl.t;
  mutable events_rev : (int * Event.t) list;  (* (per-domain seq, event) *)
  mutable nevents : int;
  mutable dropped : int;
  mutable stack : frame list;  (* innermost first *)
}

type recording = {
  id : int;  (* process-unique, so stale DLS slots never alias *)
  lock : Mutex.t;  (* guards [collectors] registration only *)
  mutable collectors : collector list;
}

let current : recording option Atomic.t = Atomic.make None
let enabled () = Atomic.get current != None

let fresh_collector domain =
  {
    domain;
    counters = Hashtbl.create 32;
    hists = Hashtbl.create 8;
    spans = Hashtbl.create 16;
    events_rev = [];
    nevents = 0;
    dropped = 0;
    stack = [];
  }

type slot = { mutable rid : int; mutable coll : collector }

let slot_key : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { rid = -1; coll = fresh_collector (-1) })

let collector_of r =
  let s = Domain.DLS.get slot_key in
  if s.rid = r.id then s.coll
  else begin
    let d = (Domain.self () :> int) in
    Mutex.lock r.lock;
    let c =
      (* a nested recording ending can leave the slot pointing at the
         inner id while this domain is already registered here: reuse
         the registered collector so sequences stay per-domain *)
      match List.find_opt (fun c -> c.domain = d) r.collectors with
      | Some c -> c
      | None ->
        let c = fresh_collector d in
        r.collectors <- c :: r.collectors;
        c
    in
    Mutex.unlock r.lock;
    s.rid <- r.id;
    s.coll <- c;
    c
  end

let count ?(n = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some r -> (
    let c = collector_of r in
    match Hashtbl.find_opt c.counters name with
    | Some v -> v := !v + n
    | None -> Hashtbl.add c.counters name (ref n))

let observe name v =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    let c = collector_of r in
    let h =
      match Hashtbl.find_opt c.hists name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.add c.hists name h;
        h
    in
    Hist.record h v

let event ev =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    let c = collector_of r in
    if c.nevents >= Report.event_cap then c.dropped <- c.dropped + 1
    else begin
      c.events_rev <- (c.nevents, ev) :: c.events_rev;
      c.nevents <- c.nevents + 1
    end

(* A span token is the frame's depth (1-based); [leave] unwinds to it, so
   an exception that skips inner [leave]s cannot misattribute time to the
   wrong path — the skipped frames are closed when the ancestor leaves. *)
type span = int

let enter name =
  match Atomic.get current with
  | None -> 0
  | Some r ->
    let c = collector_of r in
    let path = match c.stack with [] -> name | parent :: _ -> parent.path ^ "/" ^ name in
    c.stack <- { path; start = Monotonic_clock.now () } :: c.stack;
    List.length c.stack

let record c frame now =
  let elapsed = Int64.max 0L (Int64.sub now frame.start) in
  (match Hashtbl.find_opt c.spans frame.path with
  | Some a ->
    a.calls <- a.calls + 1;
    a.ns <- Int64.add a.ns elapsed
  | None -> Hashtbl.add c.spans frame.path { calls = 1; ns = elapsed });
  (* every span path doubles as a per-call latency histogram *)
  let h =
    match Hashtbl.find_opt c.hists frame.path with
    | Some h -> h
    | None ->
      let h = Hist.create () in
      Hashtbl.add c.hists frame.path h;
      h
  in
  Hist.record h (Int64.to_float elapsed)

let leave tok =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    let c = collector_of r in
    let depth = List.length c.stack in
    if tok >= 1 && depth >= tok then begin
      let now = Monotonic_clock.now () in
      let rec pop st d =
        match st with
        | f :: rest when d >= tok ->
          record c f now;
          pop rest (d - 1)
        | st -> st
      in
      c.stack <- pop c.stack depth
    end

let span name f =
  if Atomic.get current == None then f ()
  else begin
    let tok = enter name in
    Fun.protect ~finally:(fun () -> leave tok) f
  end

let harvest c =
  let sorted_bindings to_value tbl =
    Hashtbl.fold (fun k v acc -> (k, to_value v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let counters = sorted_bindings (fun r -> !r) c.counters in
  let counters =
    if c.dropped = 0 then counters
    else
      List.merge
        (fun (a, _) (b, _) -> compare a b)
        counters
        [ ("obs.events.dropped", c.dropped) ]
  in
  let spans = sorted_bindings (fun (a : agg) -> { Report.calls = a.calls; ns = a.ns }) c.spans in
  {
    Report.counters;
    hists = sorted_bindings Hist.snapshot c.hists;
    spans;
    by_domain = [ (c.domain, spans) ];
    events =
      List.rev_map (fun (seq, event) -> { Report.domain = c.domain; seq; event }) c.events_rev;
    dropped_events = c.dropped;
  }

let next_id = Atomic.make 1

let with_recording f =
  let r = { id = Atomic.fetch_and_add next_id 1; lock = Mutex.create (); collectors = [] } in
  let prev = Atomic.get current in
  Atomic.set current (Some r);
  let result =
    try f ()
    with e ->
      Atomic.set current prev;
      raise e
  in
  Atomic.set current prev;
  let report =
    List.sort (fun a b -> compare a.domain b.domain) r.collectors
    |> List.fold_left (fun acc c -> Report.merge acc (harvest c)) Report.empty
  in
  (result, report)
