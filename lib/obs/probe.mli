(** Probe points: the API instrumented code calls.

    Design choice (see docs/observability.md): a {e scoped global sink}
    rather than an [?obs] parameter threaded through every algorithm — the
    algorithms' [.mli]s stay untouched and call sites stay one line. A
    recording is installed with {!with_recording}; outside such a scope
    every probe is a no-op.

    Cost contract when disabled: {!count}, {!observe}, {!event}, {!enter},
    {!leave} and {!span} read one atomic root and return — no allocation,
    no branch beyond the [None] check (verified by a Gc-stat test in
    [test/test_obs.ml]). Guard any payload construction that itself
    allocates with {!enabled}:

    {[
      if Probe.enabled () then
        Probe.event (Event.Guess_rejected { source = "dual_search"; t; reason })
    ]}

    Recording is {e multi-domain}: each domain that fires a probe inside
    a {!with_recording} scope records into its own collector (found via
    [Domain.DLS], registered once per domain per recording), and the
    scope's exit merges the collectors deterministically
    ({!Report.merge}) — counters sum, histograms sum bucket-wise, span
    trees join by path, events interleave by per-domain sequence then
    domain id. The only contract: worker domains spawned inside the
    scope must be joined before the scope ends (the [Parallel] helpers
    always join before returning). *)

(** [enabled ()] is true inside a {!with_recording} scope. *)
val enabled : unit -> bool

(** [count ?n name] adds [n] (default 1) to counter [name]. Names are
    dot-separated ["module.metric"]; the full vocabulary is tabled in
    docs/observability.md. *)
val count : ?n:int -> string -> unit

(** [observe name v] adds one observation to the named log₂-bucket
    histogram ({!Hist}) — O(1), fixed boundaries, so per-domain
    histograms of the same metric merge exactly. Time-valued metrics
    record nanoseconds. *)
val observe : string -> float -> unit

(** [event ev] appends [ev] to the domain's event stream (dropped beyond
    {!Report.event_cap}, counted in [dropped_events] and the
    ["obs.events.dropped"] counter). *)
val event : Event.t -> unit

(** Span token returned by {!enter}; pass it to {!leave}. *)
type span

(** [enter name] opens a nested monotonic-clock span on this domain; the
    span's path is its ancestors' names joined with ['/']. Returns a
    token ({!leave} unwinds to it, so a raise between enter and leave
    only loses the unwound frames' timings, never corrupts the stack).
    Every completed span also feeds a histogram of per-call durations
    under the span's path. *)
val enter : string -> span

val leave : span -> unit

(** [span name f] = [enter]/[f ()]/[leave], exception-safe. The disabled
    path tail-calls [f] directly — no closure, no allocation (pass a
    statically-allocated closure to keep the call site free too). *)
val span : string -> (unit -> 'a) -> 'a

(** [with_recording f] installs a fresh recording, runs [f], and returns
    its result with the merged report of every domain that recorded.
    Nests: the innermost recording wins; the outer one resumes afterwards
    (probes hit one sink at a time, so nested scopes partition, not
    duplicate, the observations). *)
val with_recording : (unit -> 'a) -> 'a * Report.t
