open Bss_util

let schema_version = "bss-slo/1"

type target =
  | Latency of { hist : string; quantile : float; max_ns : float }
  | Error_rate of { max : float }
  | Retry_rate of { max : float }

type objective = { name : string; target : target }
type t = { objectives : objective list }

type sample = {
  completed : int;
  rejected : int;
  aborted : int;
  retries : int;
  hists : (string * Hist.snapshot) list;
}

let empty_sample = { completed = 0; rejected = 0; aborted = 0; retries = 0; hists = [] }

type check = {
  objective : string;
  ok : bool;
  measured : float;
  threshold : float;
  burn : float;
}

type verdict = { ok : bool; checks : check list; windows : int; worst_burn : (string * float) list }

(* ---------------- evaluation ---------------- *)

(* a latency objective names a histogram or a family prefix: [hist]
   matches the metric itself and every ["<hist>.<suffix>"] (the
   per-variant service.solve_ns.<variant> split), merged exactly *)
let matching_hist name hists =
  let prefix = name ^ "." in
  let plen = String.length prefix in
  List.fold_left
    (fun acc (k, h) ->
      if k = name || (String.length k >= plen && String.sub k 0 plen = prefix) then Hist.merge acc h
      else acc)
    Hist.empty hists

let ratio num den = if den <= 0 then 0. else float_of_int num /. float_of_int den

let eval_objective o (s : sample) =
  let measured, threshold =
    match o.target with
    | Latency { hist; quantile; max_ns } ->
      let h = matching_hist hist s.hists in
      ((if h.Hist.count = 0 then 0. else Hist.quantile h quantile), max_ns)
    | Error_rate { max } ->
      (ratio (s.rejected + s.aborted) (s.completed + s.rejected + s.aborted), max)
    | Retry_rate { max } -> (ratio s.retries (s.completed + s.aborted), max)
  in
  let burn = if threshold > 0. then measured /. threshold else if measured > 0. then infinity else 0. in
  { objective = o.name; ok = measured <= threshold; measured; threshold; burn }

let eval spec s = List.map (fun o -> eval_objective o s) spec.objectives

(* ---------------- the rolling-window engine ---------------- *)

type engine = {
  spec : t;
  mutable prev : sample;
  mutable windows : int;
  mutable worst : (string * float) list;  (* objective -> max window burn *)
}

let engine spec = { spec; prev = empty_sample; windows = 0; worst = [] }

let sample_diff cur prev =
  {
    completed = cur.completed - prev.completed;
    rejected = cur.rejected - prev.rejected;
    aborted = cur.aborted - prev.aborted;
    retries = cur.retries - prev.retries;
    hists =
      List.map
        (fun (k, h) ->
          (k, match List.assoc_opt k prev.hists with Some p -> Hist.diff h p | None -> h))
        cur.hists;
  }

let note_worst e (c : check) =
  let prev = Option.value ~default:neg_infinity (List.assoc_opt c.objective e.worst) in
  if c.burn > prev then e.worst <- (c.objective, c.burn) :: List.remove_assoc c.objective e.worst

let window e cur =
  let w = sample_diff cur e.prev in
  e.prev <- cur;
  e.windows <- e.windows + 1;
  let checks = eval e.spec w in
  List.iter (note_worst e) checks;
  { ok = List.for_all (fun (c : check) -> c.ok) checks; checks; windows = e.windows; worst_burn = [] }

(* the final verdict is cumulative — the hard gate — with the worst
   window burn per objective carried along as the early-warning signal *)
let final e cur =
  let checks = eval e.spec cur in
  {
    ok = List.for_all (fun (c : check) -> c.ok) checks;
    checks;
    windows = e.windows;
    worst_burn = List.sort compare e.worst;
  }

(* ---------------- rendering ---------------- *)

let check_json (c : check) =
  Json.obj
    [
      ("objective", Json.str c.objective);
      ("ok", Json.bool c.ok);
      ("measured", Json.float c.measured);
      ("threshold", Json.float c.threshold);
      ("burn", Json.float c.burn);
    ]

(* [verdict] and [failed] lead: they are deterministic for a seeded run
   (pass/fail against generous thresholds does not wobble with the
   wall clock the way [measured] does), so the gate's verdict can be
   compared bit-for-bit across worker counts *)
let verdict_json v =
  Json.obj
    ([
       ("verdict", Json.str (if v.ok then "pass" else "fail"));
       ( "failed",
         Json.arr (List.filter_map (fun (c : check) -> if c.ok then None else Some (Json.str c.objective)) v.checks)
       );
       ("windows", Json.int v.windows);
       ("checks", Json.arr (List.map check_json v.checks));
     ]
    @
    if v.worst_burn = [] then []
    else
      [
        ( "worst_window_burn",
          Json.obj (List.map (fun (k, b) -> (k, Json.float b)) v.worst_burn) );
      ])

let verdict_text v =
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) "slo: %s (%d objectives, %d windows)\n"
    (if v.ok then "pass" else "FAIL")
    (List.length v.checks) v.windows;
  List.iter
    (fun (c : check) ->
      Printf.ksprintf (Buffer.add_string buf) "  %-4s %-24s measured=%.4g threshold=%.4g burn=%.2f%s\n"
        (if c.ok then "ok" else "FAIL")
        c.objective c.measured c.threshold c.burn
        (match List.assoc_opt c.objective v.worst_burn with
        | Some b when b > c.burn +. 1e-9 -> Printf.sprintf " (worst window %.2f)" b
        | _ -> ""))
    v.checks;
  Buffer.contents buf

(* ---------------- the objectives file ---------------- *)

let to_json spec =
  let objective_json o =
    match o.target with
    | Latency { hist; quantile; max_ns } ->
      Json.obj
        [
          ("name", Json.str o.name);
          ("type", Json.str "latency");
          ("hist", Json.str hist);
          ("quantile", Json.float quantile);
          ("max_ms", Json.float (max_ns /. 1e6));
        ]
    | Error_rate { max } ->
      Json.obj [ ("name", Json.str o.name); ("type", Json.str "error_rate"); ("max", Json.float max) ]
    | Retry_rate { max } ->
      Json.obj [ ("name", Json.str o.name); ("type", Json.str "retry_rate"); ("max", Json.float max) ]
  in
  Json.obj
    [
      ("schema", Json.str schema_version);
      ("objectives", Json.arr (List.map objective_json spec.objectives));
    ]

let of_string s =
  let ( let* ) = Result.bind in
  let* v = Json.parse s in
  let* () =
    match Json.member "schema" v with
    | Some (Json.Str schema) when schema = schema_version -> Ok ()
    | Some (Json.Str schema) ->
      Error (Printf.sprintf "unsupported schema %S (this build reads %S)" schema schema_version)
    | _ -> Error (Printf.sprintf "missing \"schema\" field (expected %S)" schema_version)
  in
  let parse_objective ov =
    let str field =
      match Json.member field ov with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "objective: missing string %S" field)
    in
    let num field =
      match Json.member field ov with
      | Some (Json.Num n) -> Ok n
      | _ -> Error (Printf.sprintf "objective: missing numeric %S" field)
    in
    let* name = str "name" in
    let* kind = str "type" in
    let* target =
      match kind with
      | "latency" ->
        let* hist = str "hist" in
        let* quantile = num "quantile" in
        let* max_ms = num "max_ms" in
        if quantile <= 0. || quantile > 1. then Error (name ^ ": quantile must be in (0, 1]")
        else if max_ms <= 0. then Error (name ^ ": max_ms must be positive")
        else Ok (Latency { hist; quantile; max_ns = max_ms *. 1e6 })
      | "error_rate" ->
        let* max = num "max" in
        if max < 0. then Error (name ^ ": max must be >= 0") else Ok (Error_rate { max })
      | "retry_rate" ->
        let* max = num "max" in
        if max < 0. then Error (name ^ ": max must be >= 0") else Ok (Retry_rate { max })
      | k -> Error (Printf.sprintf "%s: unknown objective type %S" name k)
    in
    Ok { name; target }
  in
  match Json.member "objectives" v with
  | Some (Json.Arr os) ->
    let* objectives =
      List.fold_left
        (fun acc ov ->
          let* acc = acc in
          let* o = parse_objective ov in
          Ok (o :: acc))
        (Ok []) os
      |> Result.map List.rev
    in
    if objectives = [] then Error "objectives list is empty" else Ok { objectives }
  | _ -> Error "missing \"objectives\" array"
