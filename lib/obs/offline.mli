(** Offline analysis of a previous run's machine-readable artifacts —
    the engine behind [bss report].

    Two inputs, both schema-versioned:

    - the metrics stream: [--metrics-every] JSONL lines and/or the
      [--json] run summary, every record tagged
      [{"schema":"bss-metrics/1",...}]. Human text interleaved in a
      captured stdout stream is skipped; a JSON record claiming to be
      metrics with a schema this build does not understand is an
      {e error}, not a skip — that rejection is what the tag exists
      for;
    - the trace file: the [--trace-out] Chrome trace, whose
      [cat:"request"] events ({!Render.chrome_trace}[ ~traces]) are
      regrouped into one row per request trace with a critical-path
      breakdown by the spans' ["phase"] attribute (queue wait vs solve
      attempts vs retry backoff vs journal append). *)

val metrics_schema_version : string
(** ["bss-metrics/1"]. *)

(** One metrics record: live counters plus cumulative histogram
    snapshots (quantiles recomputed from buckets, not trusted). *)
type point = {
  completed : int;
  rejected : int;
  aborted : int;
  retries : int;
  queue_peak : int;
  waves : int;
  salvaged : int option;
      (** [service.journal.salvaged] — [None] when the artifact predates
          the counter or salvaged nothing, so old pinned reports are
          unchanged *)
  schedules_explored : int option;  (** [sim.schedules.explored] from [bss torture] *)
  schedules_violated : int option;  (** [sim.schedules.violated] from [bss torture] *)
  hists : (string * Hist.snapshot) list;
  gauges : (string * int) list;
      (** current-value gauges carried by the record (the breaker state
          numerics [service.breaker.state.<variant>]); [] when the
          artifact predates them *)
}

val empty_point : point

val parse_metrics : string -> (point list, string) result
(** Parse a whole captured stream (JSONL, possibly interleaved with
    text) into its metrics records, in file order. Errors on an
    unsupported schema (with the line number) and on a stream with no
    records at all. *)

val last : point list -> point
(** The final (cumulative) record; {!empty_point} for []. *)

val counters : point -> (string * int) list
(** The counter fields as rows, fixed order; the optional counters
    ([service.journal.salvaged], [sim.schedules.*]) appear only when the
    artifact carried them. *)

(** One request trace regrouped from the Chrome trace file. *)
type trace_row = {
  trace_id : string;
  request_id : string;
  seq : int;  (** admission sequence (the event tid) *)
  total_ns : float;  (** root ["request"] span duration *)
  phases : (string * float) list;
      (** ["phase"] attribute -> summed ns, by first appearance *)
}

val parse_traces : string -> (trace_row list, string) result
(** Regroup a [--trace-out] file's [cat:"request"] events by trace.
    Errors when the input is not a Chrome trace or holds no request
    traces. *)

val slowest : k:int -> trace_row list -> trace_row list
(** Top [k] rows by total duration, ties in file order. *)

val percentile_table : point -> string
(** Histogram table: name, count, p50/p90/p99/max and the p99 bucket's
    exemplar trace IDs — the link into the trace file. *)

val counter_table : ?baseline:point -> point -> string
(** Counter table; with [baseline], a four-column diff
    (baseline/current/delta) between two runs. *)

val gauge_table : point -> string
(** Gauge table (name, numeric, decoded breaker state) — render only
    when {!point.gauges} is non-empty, so reports on older artifacts
    are unchanged. *)

val trace_table : trace_row list -> string
(** Critical-path table: per trace, total ms and the
    queue/solve/retry/journal/other split. *)
