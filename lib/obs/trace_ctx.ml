(* Request-scoped tracing: one context per service request, owned by
   whoever currently processes the request (coordinator at admission and
   completion, one worker domain in between — never two writers at
   once), so recording is plain mutation with no locks.

   The trace id is derived from the run seed and the admission sequence
   number — no wall clock, no randomness — so a seeded run names its
   requests identically across processes, worker counts and resumes.
   Span durations are monotonic-clock and are not deterministic; tests
   pin ids and structure, never timings. *)

type value = S of string | I of int | B of bool

type span = {
  name : string;
  dur_ns : int64;
  attrs : (string * value) list;
  children : span list;
}

type trace = { trace_id : string; seq : int; request_id : string; root : span }

type frame = {
  fname : string;
  start : int64;
  mutable attrs_rev : (string * value) list;
  mutable children_rev : span list;
}

type active = {
  id : string;
  aseq : int;
  arequest_id : string;
  (* innermost first; the root frame is always last and only [finish]
     closes it *)
  mutable stack : frame list;
}

type t = Disabled | Active of active

let disabled = Disabled
let enabled = function Disabled -> false | Active _ -> true
let trace_id = function Disabled -> "" | Active a -> a.id

(* same deterministic mixing discipline as the service runtime's
   [id_hash]: stable across OCaml versions and processes *)
let derive_id ~seed ~seq ~request_id =
  let h = ref (seed lxor ((seq + 1) * 0x9e3779b9)) in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land max_int) request_id;
  Printf.sprintf "%08x-%04d" (!h land 0xffffffff) seq

let fresh_frame name =
  { fname = name; start = Monotonic_clock.now (); attrs_rev = []; children_rev = [] }

let make ~seed ~seq ~request_id =
  Active
    {
      id = derive_id ~seed ~seq ~request_id;
      aseq = seq;
      arequest_id = request_id;
      stack = [ fresh_frame "request" ];
    }

type token = int

let enter t name =
  match t with
  | Disabled -> 0
  | Active a ->
    a.stack <- fresh_frame name :: a.stack;
    List.length a.stack

let close_frame f now =
  {
    name = f.fname;
    dur_ns = Int64.max 0L (Int64.sub now f.start);
    attrs = List.rev f.attrs_rev;
    children = List.rev f.children_rev;
  }

(* unwind to the token's depth, like Probe.leave: a raise that skips
   inner leaves closes the skipped frames when the ancestor leaves; the
   root frame (depth 1) is only ever closed by [finish] *)
let leave t tok =
  match t with
  | Disabled -> ()
  | Active a ->
    if tok >= 2 then begin
      let now = Monotonic_clock.now () in
      let rec pop st d =
        match st with
        | f :: (parent :: _ as rest) when d >= tok ->
          parent.children_rev <- close_frame f now :: parent.children_rev;
          pop rest (d - 1)
        | st -> st
      in
      let depth = List.length a.stack in
      if depth >= tok then a.stack <- pop a.stack depth
    end

let span t name f =
  match t with
  | Disabled -> f ()
  | Active _ ->
    let tok = enter t name in
    Fun.protect ~finally:(fun () -> leave t tok) f

let add_attr t key v =
  match t with
  | Disabled -> ()
  | Active a -> (
    match a.stack with [] -> () | f :: _ -> f.attrs_rev <- (key, v) :: f.attrs_rev)

(* a pre-measured child (queue waits, journal appends: the duration was
   observed before or outside the context's ownership window) *)
let add_span t name ~dur_ns ~attrs =
  match t with
  | Disabled -> ()
  | Active a -> (
    match a.stack with
    | [] -> ()
    | f :: _ ->
      f.children_rev <- { name; dur_ns; attrs; children = [] } :: f.children_rev)

let finish t =
  match t with
  | Disabled -> None
  | Active a ->
    let now = Monotonic_clock.now () in
    let rec unwind = function
      | [ root ] -> close_frame root now
      | f :: (parent :: _ as rest) ->
        parent.children_rev <- close_frame f now :: parent.children_rev;
        unwind rest
      | [] -> close_frame (fresh_frame "request") now
    in
    let root = unwind a.stack in
    a.stack <- [];
    Some { trace_id = a.id; seq = a.aseq; request_id = a.arequest_id; root }

(* ---------------- tail sampling ---------------- *)

(* Algorithm R over the candidate list, driven by a run-seeded Prng:
   which items survive is a pure function of (seed, k, length) plus the
   list order, so coordinators sampling in admission order replay
   identically. Kept items come back in their input order. *)
let reservoir ~seed ~k items =
  if k <= 0 then []
  else begin
    let rng = Bss_util.Prng.create (seed lxor 0x5e1ec7ed) in
    let slots = Array.make (min k (List.length items)) (-1) in
    List.iteri
      (fun i _ ->
        if i < k then slots.(i) <- i
        else
          let j = Bss_util.Prng.int rng (i + 1) in
          if j < k then slots.(j) <- i)
      items;
    let kept = Array.to_list slots |> List.sort_uniq compare in
    List.filteri (fun i _ -> List.mem i kept) items
  end

(* ---------------- rendering ---------------- *)

let value_to_json = function
  | S s -> Bss_util.Json.str s
  | I i -> Bss_util.Json.int i
  | B b -> Bss_util.Json.bool b

let rec span_to_json s =
  Bss_util.Json.obj
    ([ ("name", Bss_util.Json.str s.name); ("dur_ns", Bss_util.Json.int64 s.dur_ns) ]
    @ (if s.attrs = [] then []
       else [ ("attrs", Bss_util.Json.obj (List.map (fun (k, v) -> (k, value_to_json v)) s.attrs)) ])
    @
    if s.children = [] then []
    else [ ("children", Bss_util.Json.arr (List.map span_to_json s.children)) ])

let to_json t =
  Bss_util.Json.obj
    [
      ("trace_id", Bss_util.Json.str t.trace_id);
      ("seq", Bss_util.Json.int t.seq);
      ("request_id", Bss_util.Json.str t.request_id);
      ("root", span_to_json t.root);
    ]

let attr t key =
  match List.assoc_opt key t.root.attrs with
  | Some (S s) -> Some s
  | Some (I i) -> Some (string_of_int i)
  | Some (B b) -> Some (string_of_bool b)
  | None -> None
