(** Request-scoped trace contexts: one per service request, with
    deterministic ids and a typed span tree.

    Where {!Probe} aggregates ("how long did all dual calls take?"), a
    trace context answers {e why was this request slow}: every request
    carries its own span tree through admission, queue wait, each retry
    attempt, the breaker decision, the degradation-ladder rung, the
    solve and the journal append, with typed attributes at each step.

    {b Determinism.} The trace id is derived from the run seed and the
    request's admission sequence number — never a wall clock — so a
    seeded run names its requests identically across worker counts,
    processes and resumes ({!derive_id}). Span {e durations} are
    monotonic-clock and are not deterministic; consumers pin ids,
    structure and attributes, never timings.

    {b Ownership.} A context has exactly one writer at a time: the
    coordinator at admission and completion, the processing worker in
    between (the worker is joined before the coordinator resumes), so
    recording is plain mutation — no locks, no atomics.

    {b Cost when disabled.} {!disabled} is a static constant; on it
    {!enter}, {!leave}, {!add_attr}, {!add_span} return immediately and
    {!span} tail-calls its body — no allocation (pinned by a Gc test in
    [test/test_obs.ml], like the {!Probe} contract). Guard attribute
    construction that itself allocates with {!enabled}. *)

(** A typed attribute value. *)
type value = S of string | I of int | B of bool

(** One completed span: children in emission order. *)
type span = {
  name : string;
  dur_ns : int64;  (** inclusive monotonic-clock nanoseconds *)
  attrs : (string * value) list;  (** in emission order *)
  children : span list;
}

(** A finished trace: the root span is named ["request"]. *)
type trace = { trace_id : string; seq : int; request_id : string; root : span }

type t

val disabled : t
(** The inert context: every operation is a no-op, {!finish} is [None].
    Statically allocated — hand it out when tracing is off. *)

val make : seed:int -> seq:int -> request_id:string -> t
(** A live context whose id is {!derive_id}[ ~seed ~seq ~request_id],
    with the root ["request"] frame already open. *)

val derive_id : seed:int -> seq:int -> request_id:string -> string
(** The deterministic id: [<hash hex>-<seq>] where the hash mixes seed,
    sequence and request id with the same process-stable discipline as
    the runtime's retry jitter. *)

val enabled : t -> bool

val trace_id : t -> string
(** [""] for {!disabled}. *)

(** Span token returned by {!enter}; pass it to {!leave}. *)
type token = int

val enter : t -> string -> token
(** Open a nested span. Like {!Probe.enter}, {!leave} unwinds to the
    token, so a raise between them loses only the skipped frames. The
    root frame is closed by {!finish} alone. *)

val leave : t -> token -> unit

val span : t -> string -> (unit -> 'a) -> 'a
(** [enter]/body/[leave], exception-safe; tail-calls the body when
    disabled. *)

val add_attr : t -> string -> value -> unit
(** Attach an attribute to the innermost open span. *)

val add_span : t -> string -> dur_ns:int64 -> attrs:(string * value) list -> unit
(** Append an already-measured child (a queue wait observed by the
    coordinator, a journal append) to the innermost open span. *)

val finish : t -> trace option
(** Close every open frame (root last) and return the trace; [None]
    when disabled. The context records nothing afterwards. *)

val reservoir : seed:int -> k:int -> 'a list -> 'a list
(** Deterministic reservoir sample (Algorithm R under a [seed]-derived
    {!Bss_util.Prng}): keeps at most [k] items, returned in input
    order. Which items survive is a pure function of [(seed, k)] and
    the list — the tail-sampling rule for traces that are neither
    errors, degraded, SLO-violating nor histogram exemplars. *)

val to_json : trace -> string
(** One JSON object: [{"trace_id":..,"seq":..,"request_id":..,
    "root":{"name":..,"dur_ns":..,"attrs":{..},"children":[..]}}]. *)

val attr : trace -> string -> string option
(** A root-span attribute, rendered to string. *)
