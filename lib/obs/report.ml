type span_total = { calls : int; ns : int64 }
type event_entry = { domain : int; seq : int; event : Event.t }

type t = {
  counters : (string * int) list;
  hists : (string * Hist.snapshot) list;
  spans : (string * span_total) list;
  by_domain : (int * (string * span_total) list) list;
  events : event_entry list;
  dropped_events : int;
}

let empty = { counters = []; hists = []; spans = []; by_domain = []; events = []; dropped_events = 0 }
let event_cap = 10_000

let counter t name = match List.assoc_opt name t.counters with Some v -> v | None -> 0
let hist t name = List.assoc_opt name t.hists

(* merge two key-sorted association lists with [add] on collisions *)
let rec merge_sorted add a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = compare ka kb in
    if c < 0 then (ka, va) :: merge_sorted add ta b
    else if c > 0 then (kb, vb) :: merge_sorted add a tb
    else (ka, add va vb) :: merge_sorted add ta tb

let add_span (x : span_total) (y : span_total) = { calls = x.calls + y.calls; ns = Int64.add x.ns y.ns }

(* interleave two (seq, domain)-ordered event streams *)
let rec merge_events a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | ea :: ta, eb :: tb ->
    if compare (ea.seq, ea.domain) (eb.seq, eb.domain) <= 0 then ea :: merge_events ta b
    else eb :: merge_events a tb

let rec take_count n dropped = function
  | [] -> ([], dropped)
  | _ :: rest when n = 0 -> take_count 0 (dropped + 1) rest
  | e :: rest ->
    let front, dropped = take_count (n - 1) dropped rest in
    (e :: front, dropped)

let merge a b =
  let events, overflow = take_count event_cap 0 (merge_events a.events b.events) in
  let counters = merge_sorted ( + ) a.counters b.counters in
  (* overflow dropped here (not in a collector) still surfaces in the
     counter, keeping it equal to [dropped_events] *)
  let counters =
    if overflow = 0 then counters else merge_sorted ( + ) counters [ ("obs.events.dropped", overflow) ]
  in
  {
    counters;
    hists = merge_sorted Hist.merge a.hists b.hists;
    spans = merge_sorted add_span a.spans b.spans;
    by_domain = merge_sorted (merge_sorted add_span) a.by_domain b.by_domain;
    events;
    dropped_events = a.dropped_events + b.dropped_events + overflow;
  }
