(** Tagged records of algorithm-interior decisions.

    Every constructor witnesses a quantity the paper's analysis counts: a
    binary-search guess with its verdict (Theorems 2/8), a class-jumping
    interval at exit (Theorems 3/6), the knapsack path of Theorem 5, the
    Y-guard of DESIGN.md §7.1, compaction's closed gap volume, and the
    solver façade's candidate choice. The probe layer ({!Probe}) collects
    them into a {!Report.t}; renderings live in {!Render}. *)

open Bss_util

type t =
  | Guess_accepted of { source : string; t : Rat.t }
      (** a dual/bound test accepted makespan guess [t] *)
  | Guess_rejected of { source : string; t : Rat.t; reason : string }
      (** a dual/bound test rejected [t]; [reason] renders the certifying
          inequality (e.g. the paper's [mT < L] test) *)
  | Interval_exit of { source : string; lo : Rat.t; hi : Rat.t }
      (** the search interval [(lo, hi]] when a search terminated *)
  | Knapsack_path of { path : string; items : int }
      (** which continuous-knapsack solver ran: ["sorted"] or ["linear"] *)
  | Y_guard_fired of { t : Rat.t; deficit : Rat.t }
      (** the preemptive dual's extra rejection (DESIGN.md §7.1): the
          obligatory outside load beats the free time by [deficit] *)
  | Gap_closed of { volume : Rat.t }
      (** total idle volume removed by one compaction pass *)
  | Candidate_won of { name : string; makespan : Rat.t; margin : Rat.t }
      (** the solver façade kept candidate [name]; [margin] is how much
          shorter it was than the loser *)
  | Breaker_transition of { variant : string; change : string }
      (** a service circuit breaker changed state, e.g.
          [change = "closed->open"] (docs/service.md) *)
  | Alert of { kind : string; series : string; window : int; value : float; baseline : float }
      (** the live telemetry plane's anomaly detector fired on [series]
          in window [window]: [kind] is ["rate_spike"], ["p99_drift"] or
          ["burn_acceleration"] (docs/observability.md) *)
  | Note of { source : string; key : string; value : string }
      (** free-form scalar observation (e.g. the returned [T*]) *)

(** Short machine-readable tag, e.g. ["guess_rejected"]. *)
val tag : t -> string

(** [(tag, value, detail)] — a flat rendering for CSV/table sinks. *)
val summary : t -> string * string * string

(** One JSON object (no trailing newline). *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
