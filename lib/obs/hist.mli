(** Fixed-boundary log₂-bucket latency histograms, with exemplars.

    A histogram is 40 buckets with {e fixed} power-of-two boundaries:
    bucket [0] holds values below [1.0] (including zero, negatives and
    non-finite values), bucket [i] for [1 <= i <= 38] holds the
    half-open range [[2^(i-1), 2^i)], and bucket [39] holds everything
    from [2^38] up. Because the boundaries never depend on the data,
    two histograms of the same metric merge {e exactly} by bucket-wise
    addition — the property {!Report.merge} relies on to combine
    per-domain collectors deterministically — and a later cumulative
    snapshot subtracts an earlier one exactly ({!diff}, the rolling
    windows {!Slo} evaluates).

    {!record} is O(1): one [Float.frexp], one clamp, one array
    increment (plus count/sum/min/max updates). No allocation after
    {!create}. The intended unit for time-valued metrics is
    {e nanoseconds} (bucket 39 then starts at [2^38] ns ≈ 4.6 min);
    count-valued metrics (retries per request) use the value itself.

    {b Exemplars} tie a bucket back to concrete requests: each bucket
    keeps up to {!exemplar_cap} trace IDs ({!record_exemplar}), evicted
    round-robin by attach order — slot [seen mod cap] is overwritten, so
    the kept set is a pure function of the attach sequence and replays
    deterministically. A p99 bucket's exemplars are the trace IDs to
    look up in the [--trace-out] file ({!quantile_exemplars}). *)

type t
(** A mutable histogram. Not synchronized — one writer domain, like the
    rest of a {!Probe} collector. *)

val buckets : int
(** Number of buckets, [40]. *)

val exemplar_cap : int
(** Exemplar trace IDs kept per bucket, [2]. *)

val create : unit -> t

val record : t -> float -> unit
(** [record t v] adds one observation. O(1), allocation-free. *)

val record_exemplar : t -> float -> string -> unit
(** [record_exemplar t v id] is {!record} plus attaching [id] to [v]'s
    bucket as an exemplar (ring-evicting the oldest beyond
    {!exemplar_cap}). Allocates the exemplar store on first use. *)

val lower_bound : int -> float
(** [lower_bound i] is bucket [i]'s inclusive lower boundary:
    [0.] for bucket 0, [2^(i-1)] otherwise. *)

val upper_bound : int -> float
(** [upper_bound i] is bucket [i]'s exclusive upper boundary:
    [1.] for bucket 0, [2^i] for middle buckets, [infinity] for the
    last. *)

(** Immutable summary of a histogram — the form stored in
    {!Report.t} and serialized by the sinks. *)
type snapshot = {
  count : int;
  sum : float;
  min : float;  (** exact smallest observation; [0.] when empty *)
  max : float;  (** exact largest observation; [0.] when empty *)
  counts : (int * int) list;
      (** sparse [(bucket, count)] pairs, ascending bucket, counts > 0 *)
  exemplars : (int * string list) list;
      (** sparse [(bucket, trace ids)] pairs, ascending bucket, at most
          {!exemplar_cap} ids each, oldest kept attach first *)
}

val empty : snapshot

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise sum; count/sum add, min/max combine, exemplar sets
    union (keeping the lexicographically smallest {!exemplar_cap} per
    bucket — commutative and associative). Exact: merged quantiles
    equal the quantiles of the pooled observations up to bucket
    resolution. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff cur prev] is the window between two cumulative snapshots of
    the {e same} histogram: bucket counts and count/sum subtract
    exactly. Window min/max are not recoverable from buckets, so they
    are the tightest bucket boundaries of the window's occupied range
    instead; exemplars are [cur]'s, restricted to the window's buckets.
    [cur] when [prev] is empty; {!empty} when nothing was recorded in
    between. *)

val quantile : snapshot -> float -> float
(** [quantile s p] for [p] in [[0, 1]] is the lower boundary of the
    bucket containing the rank-[ceil(p*count)] observation, clamped
    into [[s.min, s.max]] — deterministic given the buckets, exact
    when the underlying observations sit on bucket boundaries (the
    pinned-test contract), and never more than 2x below the true
    quantile otherwise. [0.] when empty. *)

val quantile_exemplars : snapshot -> float -> string list
(** The exemplar trace IDs attached to the bucket {!quantile} resolves
    [p] to — the concrete requests behind a p99. [[]] when empty or
    when that bucket carries no exemplars. *)

val exemplar_ids : snapshot -> string list
(** Every exemplar trace ID in the snapshot, bucket-ascending. *)

val to_json : snapshot -> string
(** One JSON object:
    [{"count":n,"sum":s,"min":..,"max":..,"p50":..,"p90":..,"p99":..,
      "buckets":[[i,c],...]}], plus ["exemplars":[[i,["id",...]],...]]
    when any bucket carries exemplars. *)

val snapshot_of_json : Bss_util.Json.value -> (snapshot, string) result
(** Parse a {!to_json} object back (the offline path under
    [bss report]). Quantile fields are recomputed, not trusted. *)
