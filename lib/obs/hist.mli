(** Fixed-boundary log₂-bucket latency histograms.

    A histogram is 40 buckets with {e fixed} power-of-two boundaries:
    bucket [0] holds values below [1.0] (including zero, negatives and
    non-finite values), bucket [i] for [1 <= i <= 38] holds the
    half-open range [[2^(i-1), 2^i)], and bucket [39] holds everything
    from [2^38] up. Because the boundaries never depend on the data,
    two histograms of the same metric merge {e exactly} by bucket-wise
    addition — the property {!Report.merge} relies on to combine
    per-domain collectors deterministically.

    {!record} is O(1): one [Float.frexp], one clamp, one array
    increment (plus count/sum/min/max updates). No allocation after
    {!create}. The intended unit for time-valued metrics is
    {e nanoseconds} (bucket 39 then starts at [2^38] ns ≈ 4.6 min);
    count-valued metrics (retries per request) use the value itself. *)

type t
(** A mutable histogram. Not synchronized — one writer domain, like the
    rest of a {!Probe} collector. *)

val buckets : int
(** Number of buckets, [40]. *)

val create : unit -> t

val record : t -> float -> unit
(** [record t v] adds one observation. O(1), allocation-free. *)

val lower_bound : int -> float
(** [lower_bound i] is bucket [i]'s inclusive lower boundary:
    [0.] for bucket 0, [2^(i-1)] otherwise. *)

val upper_bound : int -> float
(** [upper_bound i] is bucket [i]'s exclusive upper boundary:
    [1.] for bucket 0, [2^i] for middle buckets, [infinity] for the
    last. *)

(** Immutable summary of a histogram — the form stored in
    {!Report.t} and serialized by the sinks. *)
type snapshot = {
  count : int;
  sum : float;
  min : float;  (** exact smallest observation; [0.] when empty *)
  max : float;  (** exact largest observation; [0.] when empty *)
  counts : (int * int) list;
      (** sparse [(bucket, count)] pairs, ascending bucket, counts > 0 *)
}

val empty : snapshot

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise sum; count/sum add, min/max combine. Exact and
    commutative — merged quantiles equal the quantiles of the pooled
    observations up to bucket resolution. *)

val quantile : snapshot -> float -> float
(** [quantile s p] for [p] in [[0, 1]] is the lower boundary of the
    bucket containing the rank-[ceil(p*count)] observation, clamped
    into [[s.min, s.max]] — deterministic given the buckets, exact
    when the underlying observations sit on bucket boundaries (the
    pinned-test contract), and never more than 2x below the true
    quantile otherwise. [0.] when empty. *)

val to_json : snapshot -> string
(** One JSON object:
    [{"count":n,"sum":s,"min":..,"max":..,"p50":..,"p90":..,"p99":..,
      "buckets":[[i,c],...]}]. *)
