(** The immutable outcome of one recorded run — a deterministic merge of
    the per-domain collectors the recording registered (or of several
    such reports).

    Produced by {!Probe.with_recording}; rendered by {!Render}. All
    name-keyed collections are sorted so equal runs render identically. *)

type span_total = {
  calls : int;  (** completed enter/leave pairs on this path *)
  ns : int64;  (** inclusive monotonic-clock nanoseconds *)
}

(** One recorded event with its merge key: [seq] is the event's
    per-domain sequence number (0-based, in emission order on that
    domain), [domain] the recording domain's id. {!merge} interleaves
    event streams by [(seq, domain)]. *)
type event_entry = { domain : int; seq : int; event : Event.t }

type t = {
  counters : (string * int) list;  (** sorted by counter name; summed across domains *)
  hists : (string * Hist.snapshot) list;
      (** sorted by metric name: explicit {!Probe.observe} metrics plus
          one histogram per span path (per-call durations) *)
  spans : (string * span_total) list;
      (** sorted by span path, e.g. ["solve/search/dual"]; summed
          across domains *)
  by_domain : (int * (string * span_total) list) list;
      (** per-domain span trees, ascending domain id — the structure
          {!Render.chrome_trace} lays out as one process per domain *)
  events : event_entry list;  (** ordered by [(seq, domain)] *)
  dropped_events : int;  (** events beyond the per-run cap, counted not stored *)
}

val empty : t

(** [counter t name] is the counter's value, [0] when absent. *)
val counter : t -> string -> int

(** [hist t name] is the named histogram when recorded. *)
val hist : t -> string -> Hist.snapshot option

(** [merge a b] is the deterministic join: counters sum, histograms sum
    bucket-wise ({!Hist.merge}), span trees join by path, per-domain
    trees join by domain id, and events interleave by per-domain
    sequence then domain id (capped at {!event_cap}; overflow adds to
    [dropped_events] {e and} to the ["obs.events.dropped"] counter, so
    merged multi-domain reports surface the loss). Associative and
    commutative on reports from disjoint domains. *)
val merge : t -> t -> t

(** Maximum events a report stores; {!merge} and each per-domain
    collector both enforce it. *)
val event_cap : int
