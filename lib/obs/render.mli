(** Report sinks: ASCII table (via {!Bss_util.Table}), JSON, CSV, and
    Chrome [trace_event] export.

    Counters, span structure and histogram {e names} are deterministic
    for a fixed instance and algorithm; span durations and histogram
    contents are wall-clock and are not. Tests pin counter rows and
    report shape, and treat timings as opaque.

    When [dropped_events > 0] the table and JSON sinks lead with a
    prominent warning — counters stay complete, but the event stream was
    capped. *)

(** Monospace tables: a dropped-events warning (when any), spans
    (path, calls, total ms), histograms (name, count, p50/p90/p99/max),
    counters (name, value), then a one-line event count. [?events]
    (default false) additionally lists every recorded event. *)
val table : ?events:bool -> Report.t -> string

(** One JSON object: [{"counters":{...},"hists":{...},"spans":{...},
    "events":[...],"dropped_events":n}], plus a ["warning"] field when
    events were dropped. Span times in integer nanoseconds; histogram
    fields per {!Hist.to_json}. *)
val json : Report.t -> string

(** JSON-lines: one object per counter, histogram, span and event. *)
val jsonl : Report.t -> string

(** CSV with header [kind,name,value,detail]: counters
    ([counter,<name>,<value>,]), histograms
    ([hist,<name>,<count>,p50=..;p90=..;p99=..;max=..]), spans
    ([span,<path>,<calls>,<ns>]) and events ([event,<tag>,<value>,<detail>]). *)
val csv : Report.t -> string

(** [chrome_trace r] renders the report in Chrome [trace_event] JSON
    (the format [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}
    open directly): one {e pid} per recording domain, each domain's span
    tree laid out as complete (["ph":"X"]) events — children nested
    inside their parent's interval, siblings laid end to end, durations
    in microseconds — and merged counters as counter (["ph":"C"])
    events. Timestamps are synthetic offsets reconstructed from span
    totals (the collector aggregates, it does not log every interval),
    so the trace is a flamegraph of where time went, not a timeline of
    when.

    [?traces] adds sampled request traces ({!Trace_ctx.trace}) as their
    own ["requests"] process (pid 1000): one thread per trace, named by
    its trace id with the admission sequence as tid, spans as
    [cat:"request"] X events whose [args] carry [trace_id],
    [request_id] and the span's typed attributes — so a p99 histogram
    exemplar id found in a report resolves to a full span tree in the
    same file, searchable in Perfetto. Every process gets
    [process_name]/[thread_name] metadata (["ph":"M"]) events. *)
val chrome_trace : ?traces:Trace_ctx.trace list -> Report.t -> string
