module Chaos = Bss_resilience.Chaos
open Bss_util

type fault = string * int * Chaos.action
type t = fault list

let describe = Chaos.describe_plan

let fault_to_json (site, occurrence, action) =
  Json.obj
    ([ ("site", Json.str site); ("occurrence", Json.int occurrence) ]
    @
    match action with
    | Chaos.Raise -> [ ("action", Json.str "raise") ]
    | Chaos.Crash -> [ ("action", Json.str "crash") ]
    | Chaos.Stall us -> [ ("action", Json.str "stall"); ("us", Json.int us) ])

let to_json schedule = Json.arr (List.map fault_to_json schedule)

let ( let* ) = Result.bind

let fault_of_json v =
  let str name =
    match Json.member name v with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "fault: missing string %S" name)
  in
  let int name =
    match Json.member name v with
    | Some (Json.Num n) -> Ok (int_of_float n)
    | _ -> Error (Printf.sprintf "fault: missing number %S" name)
  in
  let* site = str "site" in
  let* occurrence = int "occurrence" in
  if occurrence < 0 then Error "fault: negative occurrence"
  else
    let* action =
      match str "action" with
      | Ok "raise" -> Ok Chaos.Raise
      | Ok "crash" -> Ok Chaos.Crash
      | Ok "stall" ->
        let* us = int "us" in
        Ok (Chaos.Stall us)
      | Ok other -> Error (Printf.sprintf "fault: unknown action %S" other)
      | Error e -> Error e
    in
    Ok (site, occurrence, action)

let of_json v =
  match v with
  | Json.Arr faults ->
    List.fold_left
      (fun acc fv ->
        let* acc = acc in
        let* f = fault_of_json fv in
        Ok (f :: acc))
      (Ok []) faults
    |> Result.map List.rev
  | _ -> Error "schedule: expected an array of faults"
