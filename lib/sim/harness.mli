(** The torture harness: systematic exploration of the fault-schedule
    space behind [bss torture].

    Where [bss fuzz --chaos] {e samples} seeded fault plans, this module
    {e enumerates} them: a census pass counts every fault opportunity a
    workload exposes (each chaos-site hit of a fault-free run, including
    the journal's write/rename/seal crash points), then every single-fault
    schedule — and, at [depth >= 2], a bounded pairwise frontier — runs
    the full batch loop in-process, crash-resuming from the journal as
    the schedule dictates. Each run is judged by {!Oracle.check}; any
    violating schedule is shrunk ({!minimize}) to a minimal reproducer
    and serialized as a replayable [bss-torture/1] artifact.

    Everything is deterministic: the workload is a seeded
    {!Bss_service.Request.soak_stream}, runs are single-worker with
    counted (not clocked) fault positions, and oracle details carry no
    timestamps — so replaying a reproducer yields a bit-identical
    violation report. *)

type config = {
  requests : int;  (** workload size (seeded soak stream) *)
  seed : int;
  depth : int;  (** 1 = single faults; >= 2 adds the pairwise frontier *)
  sites : string list;  (** site-name prefixes to enumerate; [["all"]] = every site *)
  max_pairs : int;  (** bound on pairwise schedules ([<= 0] = unbounded) *)
  dir : string;  (** scratch directory for the journal chain *)
  break_invariant : string option;
      (** test hook: report the first fired fault matching this site
          prefix as a synthetic exactly-once violation — the harness's
          own acceptance test, proving shrinking and replay end-to-end *)
  shrink_budget : int;  (** max schedule re-runs the shrinker may spend *)
}

(** 12 requests, seed 7, depth 1, all sites, 256 pairs, cwd, no hook,
    shrink budget 64. *)
val default_config : config

(** [dir]/torture.journal — the chain every schedule run starts clean. *)
val journal_path : config -> string

(** The seeded workload the config describes. *)
val workload : config -> Bss_service.Request.t list

(** Census only: run the workload fault-free under a counting scope and
    return the per-site fault-opportunity counts, sorted by site. *)
val census : config -> (string * int) list

type failure = { schedule : Schedule.t; violations : Oracle.violation list }

(** A minimal, self-contained reproducer: workload coordinates, the
    (shrunk) schedule, the violations it draws, and the test hook that
    was armed — everything replay needs, nothing run-dependent. *)
type reproducer = {
  r_requests : int;
  r_seed : int;
  r_break : string option;
  r_schedule : Schedule.t;
  r_violations : Oracle.violation list;
}

type sweep = {
  census : (string * int) list;  (** site -> fault opportunities, sorted *)
  opportunities : int;  (** total hits across all sites *)
  explored : int;  (** schedules actually run *)
  violated : int;
  truncated : int;  (** pairwise schedules dropped by [max_pairs] *)
  salvaged_total : int;  (** corrupt journal lines salvaged across all verification reloads *)
  failures : failure list;  (** exploration order, un-shrunk *)
  reproducer : reproducer option;  (** the first failure, shrunk and re-run *)
  shrink_runs : int;
  baseline_summary : Bss_service.Runtime.summary;
}

(** [explore ?log cfg] runs the whole sweep: census, enumeration, one
    oracle-judged run per schedule (bumping [sim.schedules.explored] /
    [sim.schedules.violated] when probes are armed), and greedy shrinking
    of the first violating schedule. [log] receives progress lines. *)
val explore : ?log:(string -> unit) -> config -> sweep

(** [minimize ~budget ~violates schedule] greedily shrinks a violating
    schedule to a fixpoint: drop faults, then lower occurrence indices
    (direct-to-0, then halving), keeping any step for which [violates]
    still holds. At most [budget] calls to [violates]; the result always
    violates when the input did. Exposed for the unit suite — [violates]
    can be a pure predicate. *)
val minimize : budget:int -> violates:(Schedule.t -> bool) -> Schedule.t -> Schedule.t

(** [replay ~dir r] re-runs the reproducer's schedule under its recorded
    workload and test hook, returning it with the violations this replay
    observed — serialize and diff against the original artifact to check
    replay determinism. *)
val replay : dir:string -> reproducer -> reproducer

(** The [bss-torture/1] artifact (one JSON object). *)
val reproducer_json : reproducer -> string

(** Inverse of {!reproducer_json}; the parsed [r_violations] is [[]]
    (replay recomputes them). *)
val reproducer_of_string : string -> (reproducer, string) result

val render_census : (string * int) list -> string
val render_reproducer : reproducer -> string
val render_sweep : sweep -> string

(** A [bss-metrics/1] summary object carrying the baseline counters plus
    [salvaged] / [schedules_explored] / [schedules_violated] — readable
    by [bss report]. *)
val summary_json : sweep -> string
