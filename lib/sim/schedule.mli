(** Fault schedules: the unit the torture harness enumerates, runs,
    shrinks and replays.

    A {e fault} is an [(site, occurrence, action)] triple — "at the
    [occurrence]-th time execution reaches chaos site [site] (0-based,
    counted per process life), perform [action]". A {e schedule} is a
    set of faults armed together for one run; it is explicit and
    replayable, unlike the seeded plans [bss fuzz --chaos] draws. The
    JSON grammar here is the [schedule] member of the [bss-torture/1]
    reproducer artifact:

    {v [{"site":"journal.rename.before","occurrence":2,"action":"crash"},
        {"site":"service.solve","occurrence":7,"action":"raise"},
        {"site":"net.read","occurrence":0,"action":"stall","us":2000}] v} *)

type fault = string * int * Bss_resilience.Chaos.action
type t = fault list

(** ["site@occ:action ..."] — {!Bss_resilience.Chaos.describe_plan}. *)
val describe : t -> string

val fault_to_json : fault -> string
val to_json : t -> string

(** Inverse of {!to_json}, rejecting unknown actions and negative
    occurrences with a description of the first bad fault. *)
val of_json : Bss_util.Json.value -> (t, string) result
