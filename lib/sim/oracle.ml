module Runtime = Bss_service.Runtime
module Journal = Bss_service.Journal
module Request = Bss_service.Request
module Rerror = Bss_resilience.Error

type violation = { invariant : string; detail : string }

type evidence = {
  requests : Request.t list;
  baseline : (string * (string * string)) list;
  summary : Runtime.summary;
  journal_path : string;
  rotate_every : int;
  lives : int;
}

type verdict = { violations : violation list; salvaged : int }

let v invariant fmt = Printf.ksprintf (fun detail -> { invariant; detail }) fmt

(* 1. Exactly-once: every request id draws exactly one terminal outcome,
   and no outcome answers an id that was never asked. *)
let exactly_once ev =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (o : Runtime.outcome) ->
      let id = o.Runtime.request.Request.id in
      Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    ev.summary.Runtime.outcomes;
  let asked = Hashtbl.create 64 in
  List.iter (fun (r : Request.t) -> Hashtbl.replace asked r.Request.id ()) ev.requests;
  List.concat_map
    (fun (r : Request.t) ->
      match Option.value ~default:0 (Hashtbl.find_opt counts r.Request.id) with
      | 1 -> []
      | 0 -> [ v "exactly-once" "lost answer: %s has no outcome after %d lives" r.Request.id ev.lives ]
      | n -> [ v "exactly-once" "duplicated answer: %s has %d outcomes" r.Request.id n ])
    ev.requests
  @ List.filter_map
      (fun (o : Runtime.outcome) ->
        let id = o.Runtime.request.Request.id in
        if Hashtbl.mem asked id then None
        else Some (v "exactly-once" "answer for unknown id %s" id))
      ev.summary.Runtime.outcomes

(* 2. Replay bit-identity: whenever a faulted run completes a request on
   the same ladder rung as the fault-free baseline, the makespan must be
   the identical decimal string — faults may degrade a request to a lower
   rung, but they may never change what a rung computes. *)
let replay_identity ev =
  List.filter_map
    (fun (o : Runtime.outcome) ->
      match (o.Runtime.status, o.Runtime.rung, o.Runtime.makespan) with
      | Runtime.Done, Some rung, Some makespan -> (
        let id = o.Runtime.request.Request.id in
        match List.assoc_opt id ev.baseline with
        | None -> Some (v "replay-identity" "%s completed but has no baseline outcome" id)
        | Some (brung, bmakespan) ->
          if rung = brung && makespan <> bmakespan then
            Some
              (v "replay-identity" "%s diverged on rung %s: %s (baseline %s)" id rung makespan
                 bmakespan)
          else None)
      | _ -> None)
    ev.summary.Runtime.outcomes

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let segment_path path i = Printf.sprintf "%s.%d" path i

(* 3. Journal chain integrity after resume: a fresh load of the chain the
   run left behind must be clean (no salvage — simulated crashes respect
   the atomic-write contract, so a torn line here is a real bug), with
   contiguous segment numbering, no id recorded twice across the chain,
   and every entry agreeing with the final outcome for its id. *)
let journal_integrity ev (reload : Journal.t) =
  let salvage =
    match Journal.salvaged reload with
    | [] -> []
    | d :: _ as ds ->
      [ v "journal-integrity" "%d corrupt line(s) after resume; first: %s" (List.length ds)
          (Rerror.to_string d) ]
  in
  let segs = Journal.segments reload in
  let orphans =
    List.filter_map
      (fun k ->
        let f = segment_path ev.journal_path (segs + k) in
        if Sys.file_exists f then Some (v "journal-integrity" "orphaned segment %s (chain ends at %d)" f segs)
        else None)
      [ 1; 2; 3 ]
  in
  let outcome_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (o : Runtime.outcome) -> Hashtbl.replace tbl o.Runtime.request.Request.id o)
      ev.summary.Runtime.outcomes;
    Hashtbl.find_opt tbl
  in
  let entry_checks =
    List.concat_map
      (fun (e : Journal.entry) ->
        match outcome_of e.Journal.id with
        | None -> [ v "journal-integrity" "journaled id %s is not a request of this run" e.Journal.id ]
        | Some o -> (
          match (o.Runtime.status, o.Runtime.makespan) with
          | Runtime.Done, Some m when m = e.Journal.makespan -> []
          | Runtime.Done, Some m ->
            [ v "journal-integrity" "journal disagrees with outcome for %s: %s vs %s" e.Journal.id
                e.Journal.makespan m ]
          | _ -> [ v "journal-integrity" "journaled id %s did not complete" e.Journal.id ]))
      (Journal.entries reload)
  in
  let raw_dups =
    let seen = Hashtbl.create 64 in
    let files =
      List.init segs (fun i -> segment_path ev.journal_path (i + 1))
      @ (if Sys.file_exists ev.journal_path then [ ev.journal_path ] else [])
    in
    List.concat_map
      (fun file ->
        List.filter_map
          (fun line ->
            match String.index_opt line '\t' with
            | Some t ->
              let id = String.sub line 0 t in
              if Hashtbl.mem seen id then
                Some (v "journal-integrity" "id %s recorded twice across the chain (in %s)" id file)
              else begin
                Hashtbl.replace seen id ();
                None
              end
            | None -> None)
          (List.filter (fun l -> String.trim l <> "") (read_lines file)))
      files
  in
  salvage @ orphans @ entry_checks @ raw_dups

(* 4. Outcome conservation: terminal statuses partition the request set —
   nothing dropped on the floor, nothing left unattempted. *)
let conservation ev =
  let s = ev.summary in
  let sum = s.Runtime.completed + s.Runtime.rejected + s.Runtime.aborted in
  (if sum <> s.Runtime.total then
     [ v "conservation" "done=%d + rejected=%d + aborted=%d <> total=%d" s.Runtime.completed
         s.Runtime.rejected s.Runtime.aborted s.Runtime.total ]
   else [])
  @ (if s.Runtime.dropped <> 0 then [ v "conservation" "dropped=%d" s.Runtime.dropped ] else [])
  @
  if s.Runtime.not_admitted <> 0 then [ v "conservation" "not_admitted=%d" s.Runtime.not_admitted ]
  else []

(* 5. Graceful-drain completeness: the final life flushed everything it
   checkpointed and was not cut short. *)
let drain_completeness ev =
  let s = ev.summary in
  (if s.Runtime.journal_dirty <> 0 then
     [ v "drain-completeness" "journal left dirty=%d at exit" s.Runtime.journal_dirty ]
   else [])
  @ if s.Runtime.interrupted then [ v "drain-completeness" "final life was interrupted" ] else []

let check ev =
  let reload = Journal.load ~rotate_every:ev.rotate_every ev.journal_path in
  let violations =
    exactly_once ev @ replay_identity ev @ journal_integrity ev reload @ conservation ev
    @ drain_completeness ev
  in
  { violations; salvaged = List.length (Journal.salvaged reload) }
