module Chaos = Bss_resilience.Chaos
module Probe = Bss_obs.Probe
module Runtime = Bss_service.Runtime
module Journal = Bss_service.Journal
module Request = Bss_service.Request
module Backoff = Bss_service.Backoff
open Bss_util

let schema_version = "bss-torture/1"

(* Small enough that a smoke workload rotates several times, so the
   journal.seal crash points actually occur in the census. *)
let rotate_every = 4

type config = {
  requests : int;
  seed : int;
  depth : int;
  sites : string list;
  max_pairs : int;
  dir : string;
  break_invariant : string option;
  shrink_budget : int;
}

let default_config =
  {
    requests = 12;
    seed = 7;
    depth = 1;
    sites = [ "all" ];
    max_pairs = 256;
    dir = ".";
    break_invariant = None;
    shrink_budget = 64;
  }

let journal_path cfg = Filename.concat cfg.dir "torture.journal"

(* Remove the whole journal chain (active file, sealed segments, stray
   temporaries) so every schedule starts from the same empty disk. *)
let clean_journal cfg =
  let base = Filename.basename (journal_path cfg) in
  Array.iter
    (fun f ->
      if String.starts_with ~prefix:base f || String.starts_with ~prefix:("." ^ base) f then
        try Sys.remove (Filename.concat cfg.dir f) with Sys_error _ -> ())
    (Sys.readdir cfg.dir)

let workload cfg = Request.soak_stream ~seed:cfg.seed ~requests:cfg.requests ()

(* One worker (the armed schedule is a process-global, domain-local ref),
   small bursts and a small checkpoint interval so admission, flush and
   seal sites all occur many times even on a smoke workload; one fast
   retry so Raise faults exercise the retry path without stalling the
   sweep on backoff waits. *)
let service_config cfg =
  {
    Runtime.default_config with
    burst = 4;
    workers = Some 1;
    retries = 1;
    backoff = { Backoff.base_us = 50; factor = 2; cap_us = 400 };
    checkpoint_every = 3;
    seed = cfg.seed;
  }

(* ---------------- census + fault-free baseline ---------------- *)

type baseline = {
  map : (string * (string * string)) list;  (* id -> fault-free (rung, makespan) *)
  census : (string * int) list;  (* site -> fault opportunities, sorted *)
  summary : Runtime.summary;
}

let run_baseline cfg requests =
  clean_journal cfg;
  let journal = Journal.fresh ~rotate_every (journal_path cfg) in
  let summary, census =
    Chaos.with_census (fun () -> Runtime.run ~journal (service_config cfg) requests)
  in
  let map =
    List.filter_map
      (fun (o : Runtime.outcome) ->
        match (o.Runtime.rung, o.Runtime.makespan) with
        | Some r, Some m -> Some (o.Runtime.request.Request.id, (r, m))
        | _ -> None)
      summary.Runtime.outcomes
  in
  { map; census; summary }

let census cfg = (run_baseline cfg (workload cfg)).census

(* ---------------- schedule enumeration ---------------- *)

let site_matches filters site =
  List.exists (fun f -> f = "all" || String.starts_with ~prefix:f site) filters

(* Crash is enumerated only where a simulated process death escapes to
   the top (the coordinator and journal sites): inside the solver the
   guard's catch-all would contain it, which tests containment, not
   crash-consistency — Raise already covers that path. *)
let crashable site =
  String.starts_with ~prefix:"service." site || String.starts_with ~prefix:"journal." site

let single_schedules cfg census =
  census
  |> List.filter (fun (s, _) -> site_matches cfg.sites s)
  |> List.concat_map (fun (site, count) ->
      List.concat_map
        (fun h ->
          [ (site, h, Chaos.Raise) ]
          :: (if crashable site then [ [ (site, h, Chaos.Crash) ] ] else []))
        (List.init count Fun.id))

(* The bounded pairwise frontier: all unordered pairs of distinct single
   faults at distinct (site, occurrence) positions, strided down to at
   most [cap] schedules so the selection spans the whole space instead of
   saturating on the first site. Returns the pair schedules and how many
   the bound dropped. *)
let bounded_pairs singles cap =
  let faults = Array.of_list (List.map (function [ f ] -> f | _ -> assert false) singles) in
  let n = Array.length faults in
  let key (s, h, _) = (s, h) in
  let total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if key faults.(i) <> key faults.(j) then incr total
    done
  done;
  let stride = if cap <= 0 || !total <= cap then 1 else (!total + cap - 1) / cap in
  let acc = ref [] and k = ref 0 and taken = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if key faults.(i) <> key faults.(j) then begin
        if !k mod stride = 0 && (cap <= 0 || !taken < cap) then begin
          acc := [ faults.(i); faults.(j) ] :: !acc;
          incr taken
        end;
        incr k
      end
    done
  done;
  (List.rev !acc, !total - !taken)

(* ---------------- running one schedule ---------------- *)

type run_outcome =
  | Finished of Oracle.evidence * Schedule.t  (* fired faults, firing order across lives *)
  | Escaped of exn

(* Run the workload under [schedule], resuming from the journal after
   every simulated crash exactly as a restarted process would. Faults
   that fired are not re-armed on resume; occurrence indices of the
   survivors count from the new life's start (a deterministic
   transient-fault model). Lives are bounded by the schedule length —
   every crash consumes its fault — plus slack. *)
let run_schedule cfg requests (bl : baseline) schedule =
  clean_journal cfg;
  let scfg = service_config cfg in
  let path = journal_path cfg in
  let max_lives = List.length schedule + 2 in
  let rec life remaining fired_acc n =
    let journal =
      if n = 1 then Journal.fresh ~rotate_every path else Journal.load ~rotate_every path
    in
    match Chaos.run_plan remaining (fun () -> Runtime.run ~journal scfg requests) with
    | Ok summary, fired ->
      let evidence =
        {
          Oracle.requests;
          baseline = bl.map;
          summary;
          journal_path = path;
          rotate_every;
          lives = n;
        }
      in
      Finished (evidence, fired_acc @ fired)
    | Error (Chaos.Crashed _), fired when n < max_lives ->
      let remaining = List.filter (fun e -> not (List.mem e fired)) remaining in
      life remaining (fired_acc @ fired) (n + 1)
    | Error exn, _ -> Escaped exn
  in
  life schedule [] 1

(* Run one schedule and judge it: the oracle's five invariants, plus the
   containment meta-invariant (nothing but a simulated crash may escape
   the runtime), plus the deliberate-break test hook — when armed with a
   site prefix, the first fired fault matching it is reported as a
   synthetic exactly-once violation, giving the shrinker and the replay
   path a deterministic target to prove themselves on. *)
let examine cfg requests bl schedule =
  match run_schedule cfg requests bl schedule with
  | Escaped exn ->
    ( [
        {
          Oracle.invariant = "containment";
          detail = "exception escaped the runtime: " ^ Printexc.to_string exn;
        };
      ],
      0 )
  | Finished (ev, fired) ->
    let verdict = Oracle.check ev in
    let hook =
      match cfg.break_invariant with
      | None -> []
      | Some prefix -> (
        match List.find_opt (fun (s, _, _) -> String.starts_with ~prefix s) fired with
        | Some (s, h, _) ->
          [
            {
              Oracle.invariant = "exactly-once";
              detail = Printf.sprintf "test hook: fault at %s@%d treated as a lost answer" s h;
            };
          ]
        | None -> [])
    in
    (verdict.Oracle.violations @ hook, verdict.Oracle.salvaged)

(* ---------------- shrinking ---------------- *)

(* Greedy delta-debugging to a fixpoint: drop whole faults, then lower
   surviving occurrence indices toward 0 (direct, then halving), re-running
   the schedule at every step. [violates] must hold for the input; every
   accepted step preserves it, so the result still reproduces. [budget]
   bounds the number of [violates] runs. *)
let minimize ~budget ~violates schedule =
  let calls = ref 0 in
  let try_schedule s =
    s <> [] && !calls < budget
    && begin
         incr calls;
         violates s
       end
  in
  let drop_pass s =
    let rec go i s =
      if i >= List.length s then s
      else
        let s' = List.filteri (fun j _ -> j <> i) s in
        if try_schedule s' then go i s' else go (i + 1) s
    in
    go 0 s
  in
  let lower_fault s i =
    let rec go s =
      let site, h, a = List.nth s i in
      if h = 0 then s
      else
        let candidates = if h = 1 then [ 0 ] else [ 0; h / 2 ] in
        let rec first = function
          | [] -> s
          | c :: rest ->
            let s' = List.mapi (fun j f -> if j = i then (site, c, a) else f) s in
            if try_schedule s' then go s' else first rest
        in
        first candidates
    in
    go s
  in
  let lower_pass s = List.fold_left lower_fault s (List.init (List.length s) Fun.id) in
  let rec fix s =
    let s' = lower_pass (drop_pass s) in
    if s' = s || !calls >= budget then s' else fix s'
  in
  fix schedule

(* ---------------- the sweep ---------------- *)

type failure = { schedule : Schedule.t; violations : Oracle.violation list }

type reproducer = {
  r_requests : int;
  r_seed : int;
  r_break : string option;
  r_schedule : Schedule.t;
  r_violations : Oracle.violation list;
}

type sweep = {
  census : (string * int) list;
  opportunities : int;
  explored : int;
  violated : int;
  truncated : int;  (* pairwise schedules dropped by the bound *)
  salvaged_total : int;
  failures : failure list;  (* exploration order, un-shrunk *)
  reproducer : reproducer option;  (* the first failure, shrunk and re-run *)
  shrink_runs : int;
  baseline_summary : Runtime.summary;
}

let explore ?(log = ignore) cfg =
  let requests = workload cfg in
  let bl = run_baseline cfg requests in
  let singles = single_schedules cfg bl.census in
  let pairs, truncated =
    if cfg.depth >= 2 then bounded_pairs singles cfg.max_pairs else ([], 0)
  in
  let schedules = singles @ pairs in
  log
    (Printf.sprintf "torture: %d single-fault and %d pairwise schedules queued (%d pairs beyond the bound)"
       (List.length singles) (List.length pairs) truncated);
  let explored = ref 0 and violated = ref 0 and salvaged_total = ref 0 in
  let failures = ref [] in
  List.iter
    (fun schedule ->
      let violations, salvaged = examine cfg requests bl schedule in
      incr explored;
      salvaged_total := !salvaged_total + salvaged;
      if Probe.enabled () then Probe.count "sim.schedules.explored";
      if violations <> [] then begin
        incr violated;
        if Probe.enabled () then Probe.count "sim.schedules.violated";
        failures := { schedule; violations } :: !failures;
        log (Printf.sprintf "torture: VIOLATED %s" (Schedule.describe schedule))
      end)
    schedules;
  let failures = List.rev !failures in
  let shrink_runs = ref 0 in
  let reproducer =
    match failures with
    | [] -> None
    | first :: _ ->
      let violates s =
        incr shrink_runs;
        fst (examine cfg requests bl s) <> []
      in
      let shrunk = minimize ~budget:cfg.shrink_budget ~violates first.schedule in
      (* re-run the shrunk schedule so the reproducer carries ITS
         violations — replaying the artifact must reproduce them
         bit-identically *)
      let violations, _ = examine cfg requests bl shrunk in
      Some
        {
          r_requests = cfg.requests;
          r_seed = cfg.seed;
          r_break = cfg.break_invariant;
          r_schedule = shrunk;
          r_violations = violations;
        }
  in
  {
    census = bl.census;
    opportunities = List.fold_left (fun acc (_, c) -> acc + c) 0 bl.census;
    explored = !explored;
    violated = !violated;
    truncated;
    salvaged_total = !salvaged_total;
    failures;
    reproducer;
    shrink_runs = !shrink_runs;
    baseline_summary = bl.summary;
  }

(* ---------------- the reproducer artifact ---------------- *)

let reproducer_json r =
  Json.obj
    ([
       ("schema", Json.str schema_version);
       ( "workload",
         Json.obj [ ("requests", Json.int r.r_requests); ("seed", Json.int r.r_seed) ] );
     ]
    @ (match r.r_break with Some p -> [ ("break_invariant", Json.str p) ] | None -> [])
    @ [
        ("schedule", Schedule.to_json r.r_schedule);
        ( "violations",
          Json.arr
            (List.map
               (fun (v : Oracle.violation) ->
                 Json.obj
                   [ ("invariant", Json.str v.Oracle.invariant); ("detail", Json.str v.Oracle.detail) ])
               r.r_violations) );
      ])

let ( let* ) = Result.bind

let reproducer_of_string content =
  let* v = Json.parse content in
  let* () =
    match Json.member "schema" v with
    | Some (Json.Str s) when s = schema_version -> Ok ()
    | Some (Json.Str s) ->
      Error (Printf.sprintf "unsupported schema %S (this build reads %S)" s schema_version)
    | _ -> Error (Printf.sprintf "missing \"schema\" field (expected %S)" schema_version)
  in
  let* requests, seed =
    match Json.member "workload" v with
    | Some w -> (
      match (Json.member "requests" w, Json.member "seed" w) with
      | Some (Json.Num r), Some (Json.Num s) -> Ok (int_of_float r, int_of_float s)
      | _ -> Error "workload: missing \"requests\" or \"seed\"")
    | None -> Error "missing \"workload\""
  in
  let r_break =
    match Json.member "break_invariant" v with Some (Json.Str p) -> Some p | _ -> None
  in
  let* schedule =
    match Json.member "schedule" v with
    | Some s -> Schedule.of_json s
    | None -> Error "missing \"schedule\""
  in
  Ok { r_requests = requests; r_seed = seed; r_break; r_schedule = schedule; r_violations = [] }

(* Re-run a reproducer under the workload and test hook it names; the
   returned reproducer carries the violations this replay observed, so
   serializing it and diffing against the original file is the
   determinism check. *)
let replay ~dir r =
  let cfg =
    {
      default_config with
      requests = r.r_requests;
      seed = r.r_seed;
      break_invariant = r.r_break;
      dir;
    }
  in
  let requests = workload cfg in
  let bl = run_baseline cfg requests in
  let violations, _ = examine cfg requests bl r.r_schedule in
  { r with r_violations = violations }

(* ---------------- rendering ---------------- *)

let render_census census =
  Table.render ~header:[ "site"; "hits" ]
    ~align:[ Table.Left; Table.Right ]
    (List.map (fun (site, count) -> [ site; string_of_int count ]) census)

let render_reproducer r =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "reproducer: %s\n" (Schedule.describe r.r_schedule);
  List.iter
    (fun (v : Oracle.violation) -> add "  %s: %s\n" v.Oracle.invariant v.Oracle.detail)
    r.r_violations;
  Buffer.contents buf

let render_sweep sweep =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "torture: sites=%d opportunities=%d\n" (List.length sweep.census) sweep.opportunities;
  add "torture: schedules explored=%d violated=%d truncated=%d salvaged=%d\n" sweep.explored
    sweep.violated sweep.truncated sweep.salvaged_total;
  let rec take n = function x :: xs when n > 0 -> x :: take (n - 1) xs | _ -> [] in
  List.iter
    (fun f ->
      add "violated: %s\n" (Schedule.describe f.schedule);
      List.iter
        (fun (v : Oracle.violation) -> add "  %s: %s\n" v.Oracle.invariant v.Oracle.detail)
        (take 4 f.violations))
    (take 8 sweep.failures);
  if List.length sweep.failures > 8 then
    add "... and %d more violating schedules\n" (List.length sweep.failures - 8);
  (match sweep.reproducer with
  | None -> ()
  | Some r ->
    add "shrunk to %d fault(s) in %d shrink run(s)\n" (List.length r.r_schedule) sweep.shrink_runs;
    Buffer.add_string buf (render_reproducer r));
  Buffer.contents buf

(* A bss-metrics/1 summary object: the fault-free baseline's counters
   plus the sweep counters, so [bss report] can surface
   sim.schedules.{explored,violated} and service.journal.salvaged from a
   torture artifact like from any other run artifact. *)
let summary_json sweep =
  let s = sweep.baseline_summary in
  Json.obj
    [
      ("schema", Json.str Bss_obs.Offline.metrics_schema_version);
      ("done", Json.int s.Runtime.completed);
      ("rejected", Json.int s.Runtime.rejected);
      ("aborted", Json.int s.Runtime.aborted);
      ("retries", Json.int s.Runtime.retries);
      ("queue_peak", Json.int s.Runtime.queue_peak);
      ("waves", Json.int s.Runtime.waves);
      ("salvaged", Json.int sweep.salvaged_total);
      ("schedules_explored", Json.int sweep.explored);
      ("schedules_violated", Json.int sweep.violated);
    ]
