(** The crash-consistency invariant oracle.

    After the harness runs a workload under a fault schedule (crashing
    and resuming as the schedule dictates), the oracle inspects what is
    left — the final life's summary, the fault-free baseline, and the
    journal chain on disk — and checks five invariants:

    + {b exactly-once}: every request id has exactly one terminal
      outcome; no answers for ids never asked.
    + {b replay-identity}: a request completed on the same ladder rung
      as the fault-free baseline has the bit-identical makespan string —
      faults may degrade, never silently change a result.
    + {b journal-integrity}: a fresh {!Bss_service.Journal.load} of the
      chain finds no corrupt lines, no orphaned segments beyond the
      contiguous chain, no id recorded twice across segment files, and
      every entry agreeing with the final outcome for its id.
    + {b conservation}: done + rejected + aborted = total, with nothing
      dropped or left unattempted.
    + {b drain-completeness}: the final life exited with an empty dirty
      set and was not interrupted.

    Every detail string is a pure function of the evidence (ids, counts,
    exact makespan strings — no clocks), so a replayed schedule yields a
    bit-identical violation report; the [bss-torture/1] reproducer
    depends on this. *)

type violation = { invariant : string; detail : string }

(** What one schedule run leaves behind. [baseline] maps request id to
    the fault-free [(rung, makespan)]; [summary] is the final life's;
    [journal_path]/[rotate_every] locate the chain for a fresh reload;
    [lives] counts process lives (1 = the schedule never crashed). *)
type evidence = {
  requests : Bss_service.Request.t list;
  baseline : (string * (string * string)) list;
  summary : Bss_service.Runtime.summary;
  journal_path : string;
  rotate_every : int;
  lives : int;
}

type verdict = {
  violations : violation list;
      (** invariant order, then request/entry order within one — deterministic *)
  salvaged : int;  (** corrupt lines the verification reload salvaged around *)
}

val check : evidence -> verdict
