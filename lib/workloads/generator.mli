(** Synthetic workload families.

    The paper has no benchmark data sets (it is a theory paper), so the
    experiment harness measures its claims — ratio shapes and running-time
    growth — on these generators. Every family takes an explicit
    {!Bss_util.Prng.t}, making all experiments reproducible from a seed. *)

open Bss_util
open Bss_instances

type spec = {
  name : string;
  description : string;
  generate : Prng.t -> m:int -> n:int -> Instance.t;
      (** [n] is a target job count; families keep the actual count within
          a small constant of it (every class must be non-empty). *)
}

(** Uniform setups in [\[1, 50\]], times in [\[1, 100\]], [c ≈ n/8] classes
    of balanced sizes. *)
val uniform : spec

(** Small batches (Monma–Potts regime): many classes, each class's
    [s_i + P(C_i)] well under the average machine load. *)
val small_batches : spec

(** Single-job batches ([|C_i| = 1], Schuurman–Woeginger regime). *)
val single_job : spec

(** Expensive-heavy: a few classes with setups comparable to the optimal
    makespan — exercises [I_exp] splitting and class jumping. *)
val expensive : spec

(** Zipf-sized classes: class sizes and loads follow a Zipf law
    (α = 1.2) — a few dominant classes, a long tail. *)
val zipf : spec

(** Adversarial for whole-batch heuristics: one giant class that must be
    split across machines plus filler classes. *)
val anti_list : spec

(** Adversarial for the Monma–Potts wrap: setups close to the machine
    share so the wrap pays nearly [s_max] over the volume bound. *)
val anti_wrap : spec

(** Tiny instances solvable by the exact oracles ([m <= 3], [n <= 9]). *)
val tiny : spec

(** Near-overflow magnitudes: few jobs whose setups and times sit close to
    the [max_int/8] construction cap, so every cross-multiplied comparison
    promotes to the exact {!Bss_util.Num2} tier. *)
val near_overflow : spec

(** All families above, in a stable order. *)
val all : spec list

(** [by_name name] finds a family.
    @raise Not_found when unknown. *)
val by_name : string -> spec
