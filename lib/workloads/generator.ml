open Bss_util
open Bss_instances

type spec = { name : string; description : string; generate : Prng.t -> m:int -> n:int -> Instance.t }

(* Build an instance from per-class setup and a list of job times,
   guaranteeing non-empty classes. *)
let build ~m ~setups ~jobs = Instance.make ~m ~setups ~jobs:(Array.of_list jobs)

let spread rng c n =
  (* distribute n jobs over c classes, each at least one *)
  let counts = Array.make c 1 in
  for _ = 1 to max 0 (n - c) do
    let i = Prng.int rng c in
    counts.(i) <- counts.(i) + 1
  done;
  counts

let uniform =
  {
    name = "uniform";
    description = "uniform setups [1,50], times [1,100], c ~ n/8 balanced classes";
    generate =
      (fun rng ~m ~n ->
        ignore m;
        let c = max 1 (n / 8) in
        let setups = Array.init c (fun _ -> Prng.int_in rng 1 50) in
        let counts = spread rng c n in
        let jobs = ref [] in
        Array.iteri
          (fun i k ->
            for _ = 1 to k do
              jobs := (i, Prng.int_in rng 1 100) :: !jobs
            done)
          counts;
        build ~m ~setups ~jobs:!jobs);
  }

let small_batches =
  {
    name = "small-batches";
    description = "many light classes: s_i + P(C_i) well below the machine share";
    generate =
      (fun rng ~m ~n ->
        let c = max m (n / 3) in
        let setups = Array.init c (fun _ -> Prng.int_in rng 1 5) in
        let counts = spread rng c n in
        let jobs = ref [] in
        Array.iteri
          (fun i k ->
            for _ = 1 to k do
              jobs := (i, Prng.int_in rng 1 12) :: !jobs
            done)
          counts;
        build ~m ~setups ~jobs:!jobs);
  }

let single_job =
  {
    name = "single-job";
    description = "|C_i| = 1 with job-dependent setups (Schuurman-Woeginger regime)";
    generate =
      (fun rng ~m ~n ->
        ignore m;
        let c = max 1 n in
        let setups = Array.init c (fun _ -> Prng.int_in rng 1 40) in
        let jobs = List.init c (fun i -> (i, Prng.int_in rng 1 60)) in
        build ~m ~setups ~jobs);
  }

let expensive =
  {
    name = "expensive";
    description = "few classes with setups comparable to OPT (exercises I_exp)";
    generate =
      (fun rng ~m ~n ->
        let c = max 2 (min 8 (m + 1)) in
        let setups = Array.init c (fun _ -> Prng.int_in rng 120 200) in
        let counts = spread rng c n in
        let jobs = ref [] in
        Array.iteri
          (fun i k ->
            for _ = 1 to k do
              jobs := (i, Prng.int_in rng 10 60) :: !jobs
            done)
          counts;
        build ~m ~setups ~jobs:!jobs);
  }

let zipf =
  {
    name = "zipf";
    description = "Zipf class sizes (alpha = 1.2): dominant classes plus a long tail";
    generate =
      (fun rng ~m ~n ->
        ignore m;
        let c = max 2 (n / 6) in
        let setups = Array.init c (fun _ -> Prng.int_in rng 1 60) in
        let counts = Array.make c 1 in
        for _ = 1 to max 0 (n - c) do
          let i = Prng.zipf rng ~alpha:1.2 ~n:c - 1 in
          counts.(i) <- counts.(i) + 1
        done;
        let jobs = ref [] in
        Array.iteri
          (fun i k ->
            for _ = 1 to k do
              jobs := (i, Prng.int_in rng 1 80) :: !jobs
            done)
          counts;
        build ~m ~setups ~jobs:!jobs);
  }

let anti_list =
  {
    name = "anti-list";
    description = "one giant class that must be split across machines, plus filler";
    generate =
      (fun rng ~m ~n ->
        let c = max 2 (min 10 n) in
        let setups = Array.init c (fun i -> if i = 0 then 2 else Prng.int_in rng 1 4) in
        let jobs = ref [] in
        (* class 0 holds ~ half the volume in m·3 jobs *)
        let giant_jobs = max 1 (min (n / 2) (m * 3)) in
        for _ = 1 to giant_jobs do
          jobs := (0, Prng.int_in rng 40 60) :: !jobs
        done;
        let rest = max (c - 1) (n - giant_jobs) in
        for k = 1 to rest do
          jobs := (1 + ((k - 1) mod (c - 1)), Prng.int_in rng 1 10) :: !jobs
        done;
        build ~m ~setups ~jobs:!jobs);
  }

let anti_wrap =
  {
    name = "anti-wrap";
    description = "m expensive classes with tiny jobs: the wrap level N/m + s_max is ~2*OPT";
    generate =
      (fun rng ~m ~n ->
        ignore n;
        let c = max m 2 in
        let setups = Array.init c (fun _ -> Prng.int_in rng 90 110) in
        let jobs = List.init c (fun i -> (i, Prng.int_in rng 1 5)) in
        build ~m ~setups ~jobs);
  }

let tiny =
  {
    name = "tiny";
    description = "exact-oracle-sized instances (m <= 3, n <= 9)";
    generate =
      (fun rng ~m ~n ->
        let m = Intmath.clamp 1 3 m in
        let n = Intmath.clamp 1 9 n in
        let c = 1 + Prng.int rng (min 3 n) in
        let setups = Array.init c (fun _ -> Prng.int_in rng 1 10) in
        let counts = spread rng c n in
        let jobs = ref [] in
        Array.iteri
          (fun i k ->
            for _ = 1 to k do
              jobs := (i, Prng.int_in rng 1 12) :: !jobs
            done)
          counts;
        build ~m ~setups ~jobs:!jobs);
  }

let near_overflow =
  {
    name = "near-overflow";
    description = "setups/times near the max_int/8 cap: exercises Num2 tier promotion";
    generate =
      (fun rng ~m ~n ->
        ignore m;
        (* Few huge values: every cross-multiplication in the searches
           overflows native ints, forcing the Bigint tier. Stay under
           (max_int/8)/8 in total so the fuzz mutations that duplicate a
           class's jobs (applied twice by some cases) cannot push the
           mutant past Instance.make's max_int/8 construction cap. *)
        let c = 1 + Prng.int rng 3 in
        let n = Intmath.clamp c 8 n in
        let unit = max_int / 8 / 8 / 32 in
        let setups = Array.init c (fun _ -> unit + Prng.int rng unit) in
        let counts = spread rng c n in
        let jobs = ref [] in
        Array.iteri
          (fun i k ->
            for _ = 1 to k do
              jobs := (i, (unit / 2) + Prng.int rng unit) :: !jobs
            done)
          counts;
        build ~m ~setups ~jobs:!jobs);
  }

let all =
  [ uniform; small_batches; single_job; expensive; zipf; anti_list; anti_wrap; tiny; near_overflow ]

let by_name name = List.find (fun s -> s.name = name) all
