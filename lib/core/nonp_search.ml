open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event
module Guard = Bss_resilience.Guard

type result = { schedule : Schedule.t; accepted : Rat.t; dual_calls : int }

let solve inst =
  let calls = ref 0 in
  let test t =
    incr calls;
    Guard.tick "nonp_search.guess";
    Probe.count "nonp_search.guesses";
    let sp = Probe.enter "dual" in
    let r = Nonp_dual.run inst (Rat.of_int t) in
    Probe.leave sp;
    (match r with
    | Dual.Accepted _ ->
      Probe.count "nonp_search.accepted";
      if Probe.enabled () then
        Probe.event (Event.Guess_accepted { source = "nonp_search"; t = Rat.of_int t })
    | Dual.Rejected rej ->
      Probe.count "nonp_search.rejected";
      if Probe.enabled () then
        Probe.event
          (Event.Guess_rejected
             {
               source = "nonp_search";
               t = Rat.of_int t;
               reason = Format.asprintf "%a" Dual.pp_rejection rej;
             }));
    r
  in
  let t_min = Lower_bounds.t_min Variant.Nonpreemptive inst in
  (* lo < OPT without testing: lo = ⌈T_min⌉ − 1 < T_min <= OPT. *)
  let lo = ref (Rat.ceil_int t_min - 1) in
  let hi = ref (Rat.ceil_int (Rat.mul_int t_min 2)) in
  match test !hi with
  | Dual.Rejected r -> failwith (Format.asprintf "dual rejected 2*T_min >= OPT: %a" Dual.pp_rejection r)
  | Dual.Accepted s ->
    let best = ref s in
    (* Invariant: !lo < OPT (rejected or below T_min), !hi accepted. On
       exit hi = lo + 1, so by integrality of OPT, hi <= OPT. *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      match test mid with
      | Dual.Accepted s ->
        best := s;
        hi := mid
      | Dual.Rejected _ -> lo := mid
    done;
    if Probe.enabled () then
      Probe.event
        (Event.Interval_exit { source = "nonp_search"; lo = Rat.of_int !lo; hi = Rat.of_int !hi });
    { schedule = !best; accepted = Rat.of_int !hi; dual_calls = !calls }
