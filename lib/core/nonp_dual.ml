open Bss_util
open Bss_instances

(* Intermediate representation: machines are gap-free stacks of items grown
   from time 0. Positions stay implicit until materialization, so the
   repair step (replacing split pieces by whole jobs, moving border
   crossers) is pure list surgery. *)

type kind =
  | Setup of int
  | Whole of int
  | Piece of { job : int; dur : Rat.t; first : bool }

type item = { uid : int; kind : kind }

let bounds inst tee =
  let c = Instance.c inst in
  let l_nonp = ref (Rat.of_int (Intmath.sum_array inst.Instance.class_load)) in
  let m' = ref 0 in
  for i = 0 to c - 1 do
    let s = inst.Instance.setups.(i) in
    let mi = Partition.m_i inst tee i in
    m' := !m' + mi;
    l_nonp := Rat.add !l_nonp (Rat.of_int (mi * s));
    (* x_i > 0 ⟺ P(C_i) > m_i (T − s_i) *)
    let xi_pos =
      Rat.( > ) (Rat.of_int inst.Instance.class_load.(i)) (Rat.mul_int (Rat.sub tee (Rat.of_int s)) mi)
    in
    if xi_pos then l_nonp := Rat.add !l_nonp (Rat.of_int s)
  done;
  (!l_nonp, !m')

let run inst tee =
  let m = inst.Instance.m in
  let trivial = Rat.of_int (Lower_bounds.setup_plus_tmax inst) in
  if Rat.( < ) tee trivial then Dual.Rejected (Dual.Below_trivial_bound { bound = trivial })
  else begin
    let l_nonp, m' = bounds inst tee in
    let m_t = Rat.mul_int tee m in
    if Rat.( < ) m_t l_nonp then Dual.Rejected (Dual.Load_exceeds { required = l_nonp; available = m_t })
    else if m < m' then Dual.Rejected (Dual.Machines_exceed { required = m'; available = m })
    else begin
      let stacks = Array.make m [] (* top-first *) in
      let loads = Array.make m Rat.zero in
      let next_uid = ref 0 in
      let push u kind dur =
        let it = { uid = !next_uid; kind } in
        incr next_uid;
        stacks.(u) <- it :: stacks.(u);
        loads.(u) <- Rat.add loads.(u) dur;
        it
      in
      let push_setup u i = ignore (push u (Setup i) (Rat.of_int inst.Instance.setups.(i))) in
      let cursor = ref 0 in
      let fresh_machine () =
        assert (!cursor < m);
        let u = !cursor in
        incr cursor;
        u
      in
      (* Sequential split-fill of class [i]'s jobs (supplied as an
         iteration [iter_jobs], so CSR slices and lists both feed it without
         copying) onto fresh machines: setup at 0, jobs until T, split at
         the border, new machine starts with a new setup. Every job fits a
         fresh machine whole, so at most one split per job here. *)
      let wrap_class i iter_jobs =
        let u = ref (fresh_machine ()) in
        push_setup !u i;
        iter_jobs
          (fun j ->
            let tj = Rat.of_int inst.Instance.job_time.(j) in
            let room = Rat.sub tee loads.(!u) in
            if Rat.( <= ) tj room then ignore (push !u (Whole j) tj)
            else begin
              if Rat.sign room > 0 then
                ignore (push !u (Piece { job = j; dur = room; first = true }) room);
              let rest = Rat.sub tj (Rat.max Rat.zero room) in
              u := fresh_machine ();
              push_setup !u i;
              assert (Rat.( <= ) rest (Rat.sub tee loads.(!u)));
              if Rat.sign room > 0 then
                ignore (push !u (Piece { job = j; dur = rest; first = false }) rest)
              else ignore (push !u (Whole j) rest)
            end);
        !u
      in
      (* ---- step 1: the exclusive jobs L ---- *)
      let c = Instance.c inst in
      let fill_machines = Array.make c [] (* reversed *) in
      let rest_jobs = Array.make c [] (* cheap classes' J \ L, reversed *) in
      for i = 0 to c - 1 do
        let s = inst.Instance.setups.(i) in
        if Partition.is_expensive inst tee i then
          ignore (wrap_class i (fun f -> Instance.iter_class_jobs f inst i))
        else begin
          let jplus = ref [] and kset = ref [] in
          Instance.iter_class_jobs
            (fun j ->
              let tj = inst.Instance.job_time.(j) in
              if Rat.compare_int tee (2 * tj) < 0 then jplus := j :: !jplus
              else if Rat.compare_int tee (2 * (s + tj)) < 0 then kset := j :: !kset
              else rest_jobs.(i) <- j :: rest_jobs.(i))
            inst i;
          List.iter
            (fun j ->
              let u = fresh_machine () in
              push_setup u i;
              ignore (push u (Whole j) (Rat.of_int inst.Instance.job_time.(j)));
              fill_machines.(i) <- u :: fill_machines.(i))
            (List.rev !jplus);
          match List.rev !kset with
          | [] -> ()
          | ks ->
            let last = wrap_class i (fun f -> List.iter f ks) in
            fill_machines.(i) <- last :: fill_machines.(i)
        end
      done;
      (* ---- step 2: fill each cheap class's own machines, splitting at T ---- *)
      let residual = Array.make c [] (* (job, remaining, fragments) queue *) in
      for i = 0 to c - 1 do
        let queue = ref (List.rev_map (fun j -> (j, Rat.of_int inst.Instance.job_time.(j), 0)) rest_jobs.(i)) in
        let fills = List.rev fill_machines.(i) in
        List.iter
          (fun u ->
            let continue_filling = ref true in
            while !continue_filling do
              match !queue with
              | [] -> continue_filling := false
              | (j, rem, nfrag) :: tail ->
                let room = Rat.sub tee loads.(u) in
                if Rat.sign room <= 0 then continue_filling := false
                else if Rat.( <= ) rem room then begin
                  if nfrag = 0 then ignore (push u (Whole j) rem)
                  else ignore (push u (Piece { job = j; dur = rem; first = false }) rem);
                  queue := tail
                end
                else begin
                  ignore (push u (Piece { job = j; dur = room; first = nfrag = 0 }) room);
                  queue := (j, Rat.sub rem room, nfrag + 1) :: tail;
                  continue_filling := false
                end
            done)
          fills;
        residual.(i) <- !queue
      done;
      (* ---- step 3: greedy stacking of the residual chunks ---- *)
      let q_items =
        List.concat_map
          (fun i ->
            match residual.(i) with
            | [] -> []
            | queue ->
              `S i
              :: List.map
                   (fun (j, rem, nfrag) ->
                     if nfrag = 0 then `W j else `P (j, rem))
                   queue)
          (List.init c (fun i -> i))
      in
      (* placement log: every step-3 item in order, with its machine;
         [crossed] marks items whose placement pushed the load strictly
         over T, [exact_fill] marks items landing exactly on T (the chunk
         may silently continue on the next machine and will need a setup
         delivered by the repair step). *)
      let placed = ref [] in
      let crossed = Hashtbl.create 16 in
      let exact_fill = Hashtbl.create 16 in
      let rec next_open w =
        if w >= m then failwith "Nonp_dual: ran out of machines in step 3 (should be unreachable)"
        else if Rat.( < ) loads.(w) tee then w
        else next_open (w + 1)
      in
      if q_items <> [] then begin
        let w = ref (next_open 0) in
        List.iter
          (fun entry ->
            if Rat.( >= ) loads.(!w) tee then w := next_open (!w + 1);
            let it =
              match entry with
              | `S i -> push !w (Setup i) (Rat.of_int inst.Instance.setups.(i))
              | `W j -> push !w (Whole j) (Rat.of_int inst.Instance.job_time.(j))
              | `P (j, rem) -> push !w (Piece { job = j; dur = rem; first = false }) rem
            in
            placed := (it.uid, !w) :: !placed;
            if Rat.( > ) loads.(!w) tee then Hashtbl.replace crossed it.uid ()
            else if Rat.equal loads.(!w) tee then Hashtbl.replace exact_fill it.uid ())
          q_items
      end;
      let placed = Array.of_list (List.rev !placed) in
      (* ---- step 4a: make jobs integral ---- *)
      let zeroed = Hashtbl.create 16 in
      for u = 0 to m - 1 do
        stacks.(u) <-
          List.map
            (fun it ->
              match it.kind with
              | Piece { job; first = true; _ } -> { it with kind = Whole job }
              | Piece p ->
                Hashtbl.replace zeroed it.uid ();
                { it with kind = Piece { p with dur = Rat.zero } }
              | Setup _ | Whole _ -> it)
            stacks.(u)
      done;
      (* ---- step 4b: move border crossers below their successors ----
         The successor of a crossing item is the next SURVIVING step-3 item
         (zero-dur sibling pieces vanished in 4a). A surviving crosser
         moves below its successor with a fresh setup; a vanished crosser
         still owes the continuation its setup, unless an earlier insertion
         below the same successor already supplies same-class support. *)
      let item_class it =
        match it.kind with
        | Setup i -> i
        | Whole j -> inst.Instance.job_class.(j)
        | Piece { job; _ } -> inst.Instance.job_class.(job)
      in
      let find_item w uid = List.find (fun it -> it.uid = uid) stacks.(w) in
      let insert_below w' s_uid insertion =
        let rec go = function
          | [] -> assert false
          | it :: rest when it.uid = s_uid -> (it :: insertion) @ rest
          | it :: rest -> it :: go rest
        in
        stacks.(w') <- go stacks.(w')
      in
      let supported = Hashtbl.create 16 in
      let received = Array.make m false in
      let next_surviving idx =
        let rec go k =
          if k >= Array.length placed then None
          else begin
            let uid, w = placed.(k) in
            if Hashtbl.mem zeroed uid then go (k + 1) else Some (uid, w)
          end
        in
        go (idx + 1)
      in
      let support_successor s_uid w' =
        (* the chunk continues at the successor without its crosser: give
           it a setup when it is a job and nothing supports it yet *)
        let succ_item = find_item w' s_uid in
        match succ_item.kind with
        | Setup _ -> ()
        | Whole _ | Piece _ ->
          if not (Hashtbl.mem supported s_uid) then begin
            let s = { uid = !next_uid; kind = Setup (item_class succ_item) } in
            incr next_uid;
            insert_below w' s_uid [ s ];
            received.(w') <- true;
            Hashtbl.replace supported s_uid ()
          end
      in
      let stayer = ref None in
      let with_setup q =
        (* top-first: the job above its fresh setup *)
        match q.kind with
        | Setup _ -> [ q ]
        | Whole _ | Piece _ ->
          let s = { uid = !next_uid; kind = Setup (item_class q) } in
          incr next_uid;
          [ q; s ]
      in
      Array.iteri
        (fun idx (q_uid, w) ->
          if Hashtbl.mem crossed q_uid || Hashtbl.mem exact_fill q_uid then begin
            match next_surviving idx with
            | None ->
              if Hashtbl.mem crossed q_uid && not (Hashtbl.mem zeroed q_uid) then stayer := Some (q_uid, w)
            | Some (s_uid, w') ->
              if Hashtbl.mem crossed q_uid && not (Hashtbl.mem zeroed q_uid) then begin
                let q = find_item w q_uid in
                stacks.(w) <- List.filter (fun it -> it.uid <> q_uid) stacks.(w);
                insert_below w' s_uid (with_setup q);
                received.(w') <- true;
                Hashtbl.replace supported s_uid ()
              end
              else support_successor s_uid w'
          end)
        placed;
      (* The very last crossing item has no successor and stays — unless
         its machine received an insertion, in which case it cascades to
         the next machine ("u+ passes away its last item too"): that
         machine holds at most T of load, so it ends within 3T/2. *)
      (match !stayer with
      | Some (q_uid, w) when received.(w) ->
        let stack_load u =
          List.fold_left
            (fun acc it ->
              match it.kind with
              | Setup i -> Rat.add acc (Rat.of_int inst.Instance.setups.(i))
              | Whole j -> Rat.add acc (Rat.of_int inst.Instance.job_time.(j))
              | Piece { dur; _ } -> Rat.add acc dur)
            Rat.zero stacks.(u)
        in
        let rec target u = if u >= m then None else if Rat.( <= ) (stack_load u) tee then Some u else target (u + 1) in
        (match target (w + 1) with
        | None -> () (* every later machine already exceeds T: impossible when
                        the load bound held; leave the stayer in place *)
        | Some u ->
          let q = find_item w q_uid in
          stacks.(w) <- List.filter (fun it -> it.uid <> q_uid) stacks.(w);
          (match q.kind with
          | Setup _ -> () (* a trailing setup is simply dropped *)
          | Whole _ | Piece _ -> stacks.(u) <- with_setup q @ stacks.(u)))
      | Some _ | None -> ());
      (* ---- materialize ---- *)
      let sched = Schedule.create m in
      for u = 0 to m - 1 do
        let t = ref Rat.zero in
        List.iter
          (fun it ->
            match it.kind with
            | Setup i ->
              let dur = Rat.of_int inst.Instance.setups.(i) in
              Schedule.add_setup sched ~machine:u ~cls:i ~start:!t ~dur;
              t := Rat.add !t dur
            | Whole j ->
              let dur = Rat.of_int inst.Instance.job_time.(j) in
              Schedule.add_work sched ~machine:u ~job:j ~start:!t ~dur;
              t := Rat.add !t dur
            | Piece { job; dur; _ } ->
              Schedule.add_work sched ~machine:u ~job ~start:!t ~dur;
              t := Rat.add !t dur)
          (List.rev stacks.(u))
      done;
      Dual.Accepted sched
    end
  end
