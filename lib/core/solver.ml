open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event

type algorithm =
  | Approx2
  | Approx3_2_eps of Rat.t
  | Approx3_2

type result = { schedule : Schedule.t; guarantee : Rat.t; certificate : Rat.t; dual_calls : int }

let three_half = Rat.of_ints 3 2

(* The dual constructions intentionally spread load up to (3/2)T*, so on
   easy instances the plain 2-approximation can produce a shorter
   schedule. Returning the better of the two keeps every certificate valid
   (both schedules are feasible and the bound [makespan <= certificate]
   only improves); EXPERIMENTS.md reports the raw constructions
   separately. *)
let prefer_shorter primary fallback =
  let mp = Schedule.makespan primary and mf = Schedule.makespan fallback in
  let won = Rat.( <= ) mf mp in
  if Probe.enabled () then begin
    Probe.count (if won then "solver.won_two_approx" else "solver.won_construction");
    let name = if won then "two-approx" else "construction" in
    let winner = if won then mf else mp in
    Probe.event
      (Event.Candidate_won { name; makespan = winner; margin = Rat.abs (Rat.sub mp mf) })
  end;
  if won then fallback else primary

(* compacted best-of: close idle gaps in both candidates, keep the
   shorter *)
let polish variant inst primary =
  Probe.span "polish" (fun () ->
      let primary = Compaction.compact variant inst primary in
      let fallback = Compaction.compact variant inst (Two_approx.solve variant inst) in
      prefer_shorter primary fallback)

let dual_for variant =
  match variant with
  | Variant.Splittable -> Splittable_dual.run
  | Variant.Preemptive -> fun inst tee -> Pmtn_dual.run inst tee
  | Variant.Nonpreemptive -> Nonp_dual.run

let solve ~algorithm variant inst =
  Probe.span "solve" (fun () ->
      match algorithm with
      | Approx2 ->
        let schedule =
          Probe.span "two_approx" (fun () ->
              Compaction.compact variant inst (Two_approx.solve variant inst))
        in
        let t_min = Lower_bounds.t_min variant inst in
        { schedule; guarantee = Rat.two; certificate = Rat.mul_int t_min 2; dual_calls = 0 }
      | Approx3_2_eps epsilon ->
        let t_min = Lower_bounds.t_min variant inst in
        let r =
          Probe.span "search" (fun () -> Dual_search.search ~dual:(dual_for variant) ~epsilon ~t_min inst)
        in
        {
          schedule = polish variant inst r.Dual_search.schedule;
          guarantee = Rat.add three_half epsilon;
          certificate = Rat.mul three_half r.Dual_search.accepted;
          dual_calls = r.Dual_search.dual_calls;
        }
      | Approx3_2 -> (
        match variant with
        | Variant.Splittable ->
          let r = Probe.span "search" (fun () -> Splittable_cj.solve inst) in
          {
            schedule = polish variant inst r.Splittable_cj.schedule;
            guarantee = three_half;
            certificate = Rat.mul three_half r.Splittable_cj.accepted;
            dual_calls = r.Splittable_cj.bound_tests;
          }
        | Variant.Preemptive ->
          let r = Probe.span "search" (fun () -> Pmtn_cj.solve inst) in
          {
            schedule = polish variant inst r.Pmtn_cj.schedule;
            guarantee = three_half;
            certificate = Rat.mul three_half r.Pmtn_cj.accepted;
            dual_calls = r.Pmtn_cj.bound_tests;
          }
        | Variant.Nonpreemptive ->
          let r = Probe.span "search" (fun () -> Nonp_search.solve inst) in
          {
            schedule = polish variant inst r.Nonp_search.schedule;
            guarantee = three_half;
            certificate = Rat.mul three_half r.Nonp_search.accepted;
            dual_calls = r.Nonp_search.dual_calls;
          }))

(* ---------------- resilient solving: the degradation ladder ---------------- *)

module Rerror = Bss_resilience.Error
module Guard = Bss_resilience.Guard

type attempt = { rung : string; error : Rerror.t }

type robust = {
  schedule : Schedule.t;
  rung : string;
  guarantee : Rat.t option;
  certificate : Rat.t option;
  dual_calls : int;
  attempts : attempt list;
  fuel_spent : int;
}

(* Terminal rung: whole-batch list scheduling onto the least-loaded
   machine. Every class stays contiguous on one machine, so the schedule
   is feasible for all three variants; plain array walking with no search,
   no guard charge and no chaos site — it cannot be cut short. No
   approximation guarantee (see lib/baselines/list_scheduling.mli for why
   none exists). *)
let last_resort inst =
  let m = inst.Instance.m in
  let sched = Schedule.create m in
  let ends = Array.make m Rat.zero in
  for i = 0 to Instance.c inst - 1 do
    let u = ref 0 in
    for v = 1 to m - 1 do
      if Rat.( < ) ends.(v) ends.(!u) then u := v
    done;
    let t = ref ends.(!u) in
    let s = Rat.of_int inst.Instance.setups.(i) in
    Schedule.add_setup sched ~machine:!u ~cls:i ~start:!t ~dur:s;
    t := Rat.add !t s;
    Array.iter
      (fun j ->
        let d = Rat.of_int inst.Instance.job_time.(j) in
        Schedule.add_work sched ~machine:!u ~job:j ~start:!t ~dur:d;
        t := Rat.add !t d)
      (Instance.jobs_of_class inst i);
    ends.(!u) <- !t
  done;
  sched

let solve_robust ?deadline_ms ?fuel ~algorithm variant inst =
  let guard = Guard.make ?deadline_ms ?fuel () in
  let of_result (r : result) = (r.schedule, Some r.guarantee, Some r.certificate, r.dual_calls) in
  let rungs =
    ("requested", fun () -> of_result (solve ~algorithm variant inst))
    ::
    (match algorithm with
    | Approx2 -> []
    | Approx3_2 | Approx3_2_eps _ ->
      [ ("two-approx", fun () -> of_result (solve ~algorithm:Approx2 variant inst)) ])
  in
  let finish rung (schedule, guarantee, certificate, dual_calls) attempts =
    if Probe.enabled () then begin
      Probe.count ("resilience.rung." ^ rung);
      if attempts <> [] then Probe.count "resilience.degraded"
    end;
    {
      schedule;
      rung;
      guarantee;
      certificate;
      dual_calls;
      attempts = List.rev attempts;
      fuel_spent = Guard.spent guard;
    }
  in
  let rec go attempts = function
    | [] -> finish "list-scheduling" (last_resort inst, None, None, 0) attempts
    | (name, f) :: rest -> (
      let outcome =
        Guard.run guard (fun () ->
            let ((schedule, _, _, _) as out) = f () in
            (* a rung that survives its guard must still hand back a
               checker-feasible schedule, or it degrades like any fault *)
            if not (Checker.is_feasible variant inst schedule) then
              raise (Rerror.Error (Rerror.Internal (Failure (name ^ " rung: infeasible schedule"))));
            out)
      in
      match outcome with
      | Ok out -> finish name out attempts
      | Error error ->
        if Probe.enabled () then begin
          Probe.count "resilience.rung_failed";
          Probe.event
            (Event.Note { source = "resilience"; key = "rung_failed:" ^ name; value = Rerror.to_string error })
        end;
        go ({ rung = name; error } :: attempts) rest)
  in
  go [] rungs

let algorithm_name ~algorithm variant =
  match (algorithm, variant) with
  | Approx2, _ -> "2-approx (Thm 1)"
  | Approx3_2_eps eps, _ -> Printf.sprintf "3/2+%s (Thm 2)" (Rat.to_string eps)
  | Approx3_2, Variant.Splittable -> "3/2 class-jumping (Thm 3)"
  | Approx3_2, Variant.Preemptive -> "3/2 class-jumping (Thm 6)"
  | Approx3_2, Variant.Nonpreemptive -> "3/2 binary-search (Thm 8)"
