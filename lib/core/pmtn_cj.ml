open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event
module Guard = Bss_resilience.Guard

type result = { schedule : Schedule.t; accepted : Rat.t; bound_tests : int }

let mode = Pmtn_nice.Gamma

let solve inst =
  let m = inst.Instance.m in
  let c = Instance.c inst in
  let trivial = Rat.of_int (Lower_bounds.setup_plus_tmax inst) in
  let tests = ref 0 in
  let accept tee =
    incr tests;
    Guard.tick "pmtn_cj.bound_test";
    Probe.count "pmtn_cj.bound_tests";
    Rat.sign tee > 0
    &&
    match Pmtn_dual.test ~mode inst tee with
    | Ok () -> true
    | Error _ -> false
  in
  (* Same test, phase-specific counters: region search (Theorem 6 stage 1)
     vs. the jump families of Lemmas 3/5 vs. the frontier bisection of
     DESIGN.md §7.5. *)
  let accept_region t =
    Probe.count "pmtn_cj.region_steps";
    accept t
  in
  let accept_jump t =
    Probe.count "pmtn_cj.jump_steps";
    accept t
  in
  (* ---- stage 1: region search over all partition breakpoints ---- *)
  let candidates =
    let acc = ref [ Rat.zero; Rat.of_int (2 * inst.Instance.total); trivial ] in
    for i = 0 to c - 1 do
      let s = inst.Instance.setups.(i) and p = inst.Instance.class_load.(i) in
      acc := Rat.of_int (2 * s) :: Rat.of_int (4 * s) :: Rat.of_int (s + p)
             :: Rat.of_ints (4 * (s + p)) 3 :: !acc;
      Instance.iter_class_jobs
        (fun j -> acc := Rat.of_int (2 * (s + inst.Instance.job_time.(j))) :: !acc)
        inst i
    done;
    let arr = Array.of_list !acc in
    Array.sort Rat.compare arr;
    arr
  in
  let first_true =
    (* candidates.(0) = 0 rejected; the largest (2N) accepted *)
    let lo = ref 0 and hi = ref (Array.length candidates - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if accept_region candidates.(mid) then hi := mid else lo := mid
    done;
    !hi
  in
  let lo = ref candidates.(first_true - 1) and hi = ref candidates.(first_true) in
  let interior () = Rat.div_int (Rat.add !lo !hi) 2 in
  (* Narrow (lo, hi) by binary search over a decreasing jump family
     [point κ], κ in [kmin, kmax]; keeps lo rejected / hi accepted. *)
  let narrow_by_jumps point kmin kmax =
    if kmin <= kmax then begin
      if not (accept_jump (point kmin)) then lo := point kmin
      else if accept_jump (point kmax) then hi := point kmax
      else begin
        let a = ref kmin and b = ref kmax in
        while !b - !a > 1 do
          let midk = (!a + !b) / 2 in
          if accept_jump (point midk) then a := midk else b := midk
        done;
        hi := point !a;
        lo := point !b
      end
    end
  in
  (* jump families; denominators grow with κ so points decrease in κ *)
  let family_gamma i kappa = Rat.of_ints (2 * (inst.Instance.setups.(i) + inst.Instance.class_load.(i))) (kappa + 2) in
  let family_beta i kappa = Rat.of_ints (2 * inst.Instance.class_load.(i)) kappa in
  let kappa_range numerator2 shift =
    (* κ with lo < numerator2/(κ+shift) < hi, capped at m+2 *)
    let kmin = Rat.floor_int (Rat.div (Rat.of_int numerator2) !hi) + 1 - shift in
    let kmax =
      if Rat.sign !lo <= 0 then m + 2
      else min (m + 2) (Rat.ceil_int (Rat.div (Rat.of_int numerator2) !lo) - 1 - shift)
    in
    (max kmin (1 - shift), kmax)
  in
  let expensive_plus_interior () =
    let mid = interior () in
    List.filter
      (fun i ->
        Partition.is_expensive inst mid i
        && Rat.( <= ) mid (Rat.of_int (inst.Instance.setups.(i) + inst.Instance.class_load.(i))))
      (List.init c (fun i -> i))
  in
  let plus = expensive_plus_interior () in
  (* ---- stage 2: jumps of the fastest (s+P) class, Lemma 5 ---- *)
  (match plus with
  | [] -> ()
  | i0 :: _ ->
    let weight i = inst.Instance.setups.(i) + inst.Instance.class_load.(i) in
    let f = List.fold_left (fun best i -> if weight i > weight best then i else best) i0 plus in
    let kmin, kmax = kappa_range (2 * weight f) 2 in
    narrow_by_jumps (family_gamma f) kmin kmax;
    (* ---- stage 3: β-jumps of the fastest P class, Lemma 3 ---- *)
    let g = List.fold_left (fun best i -> if inst.Instance.class_load.(i) > inst.Instance.class_load.(best) then i else best) i0 plus in
    let kmin, kmax = kappa_range (2 * inst.Instance.class_load.(g)) 0 in
    narrow_by_jumps (family_beta g) (max kmin 1) kmax;
    (* ---- stage 4: single jumps of every class, both families ---- *)
    let jumps = ref [] in
    List.iter
      (fun i ->
        let collect family numerator2 shift =
          let kmin, kmax = kappa_range numerator2 shift in
          let kmax = min kmax (kmin + 3) in
          for kappa = kmin to kmax do
            let t = family i kappa in
            if Rat.( < ) !lo t && Rat.( < ) t !hi then jumps := t :: !jumps
          done
        in
        collect family_gamma (2 * (inst.Instance.setups.(i) + inst.Instance.class_load.(i))) 2;
        collect family_beta (2 * inst.Instance.class_load.(i)) 0)
      plus;
    let jumps = List.sort_uniq Rat.compare !jumps in
    if Probe.enabled () then Probe.count ~n:(List.length jumps) "pmtn_cj.jump_candidates";
    (match jumps with
    | [] -> ()
    | _ ->
      let arr = Array.of_list jumps in
      let n = Array.length arr in
      if accept_jump arr.(0) then hi := arr.(0)
      else if not (accept_jump arr.(n - 1)) then lo := arr.(n - 1)
      else begin
        let a = ref 0 and b = ref (n - 1) in
        while !b - !a > 1 do
          let midk = (!a + !b) / 2 in
          if accept_jump arr.(midk) then b := midk else a := midk
        done;
        lo := arr.(!a);
        hi := arr.(!b)
      end));
  if Probe.enabled () then
    Probe.event (Event.Interval_exit { source = "pmtn_cj"; lo = !lo; hi = !hi });
  (* ---- final: resolve the crossover inside the jump-free interval ---- *)
  let t_star =
    let mid = interior () in
    let a = Pmtn_dual.analyze ~mode inst mid in
    let l_low, m', l_large, case_a, y, star_count = Pmtn_dual.search_quantities inst mid a in
    if m' > m then !hi
    else begin
      (* piecewise-constant floor of the acceptance threshold *)
      let base = Rat.max trivial (Rat.div_int l_low m) in
      let base =
        if case_a && Rat.sign y < 0 then begin
          Probe.count "pmtn_cj.deviation1";
          (* Y(T) is affine increasing with slope (m − l) + star_count/2 *)
          let slope = Rat.add (Rat.of_int (m - l_large)) (Rat.of_ints star_count 2) in
          if Rat.sign slope <= 0 then !hi
          else Rat.max base (Rat.add mid (Rat.div (Rat.neg y) slope))
        end
        else base
      in
      (* The acceptance threshold inside the piece is [base] except for the
         knapsack's unselected-setup term (and the Y-guard, our patch over
         Theorem 5's implicit assumption, whose infimum may be
         unattained). Seed a bisection with [base] — in the attained,
         knapsack-free case it converges immediately — then bisect: the
         returned guess is accepted and within (hi−lo)/2^40 of a certified
         rejected point, so the ratio stays 3/2 up to a vanishing term. *)
      let rej = ref !lo and acc = ref !hi in
      if Rat.( < ) !rej base && Rat.( < ) base !acc then begin
        if accept base then acc := base else rej := base
      end;
      let rounds = ref 0 in
      while !rounds < 40 && not (Rat.equal !rej !acc) do
        incr rounds;
        Probe.count "pmtn_cj.frontier_rounds";
        let midp = Rat.div_int (Rat.add !rej !acc) 2 in
        if Rat.( <= ) midp !rej || Rat.( >= ) midp !acc then rounds := 40
        else if accept midp then acc := midp
        else rej := midp
      done;
      !acc
    end
  in
  if Probe.enabled () then
    Probe.event (Event.Note { source = "pmtn_cj"; key = "t_star"; value = Rat.to_string t_star });
  match Pmtn_dual.run ~mode inst t_star with
  | Dual.Accepted schedule -> { schedule; accepted = t_star; bound_tests = !tests }
  | Dual.Rejected r ->
    failwith (Format.asprintf "Pmtn_cj: T* unexpectedly rejected: %a" Dual.pp_rejection r)
