open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event

let compact variant inst sched =
  Probe.count "compaction.runs";
  let m = Schedule.machines sched in
  let out = Schedule.create m in
  let machine_front = Array.make m Rat.zero in
  let job_front = Array.make (Instance.n inst) Rat.zero in
  (* replay in original start order; ties broken by machine for
     determinism. (start, machine) is unique per segment — same-machine
     segments never share a start since zero-duration segments are dropped
     on insertion — so the key is tie-free and the unstable in-place
     [Array.sort] yields the same order the stable list sort did. *)
  let segments = Array.of_list (Schedule.all_segments sched) in
  Array.sort
    (fun (u1, (s1 : Schedule.seg)) (u2, (s2 : Schedule.seg)) ->
      let c = Rat.compare s1.Schedule.start s2.Schedule.start in
      if c <> 0 then c else compare u1 u2)
    segments;
  Array.iter
    (fun (u, (seg : Schedule.seg)) ->
      let start =
        match (seg.Schedule.content, variant) with
        | Schedule.Work j, (Variant.Preemptive | Variant.Nonpreemptive) ->
          Rat.max machine_front.(u) job_front.(j)
        | Schedule.Work _, Variant.Splittable | Schedule.Setup _, _ -> machine_front.(u)
      in
      (match seg.Schedule.content with
      | Schedule.Setup cls -> Schedule.add_setup out ~machine:u ~cls ~start ~dur:seg.Schedule.dur
      | Schedule.Work j ->
        Schedule.add_work out ~machine:u ~job:j ~start ~dur:seg.Schedule.dur;
        job_front.(j) <- Rat.add start seg.Schedule.dur);
      machine_front.(u) <- Rat.add start seg.Schedule.dur)
    segments;
  if Probe.enabled () then begin
    (* gap volume closed = total leftward shift; busy time is invariant,
       so end-of-machine deltas sum exactly the idle removed *)
    let closed = ref Rat.zero in
    for u = 0 to m - 1 do
      closed := Rat.add !closed (Rat.sub (Schedule.machine_end sched u) (Schedule.machine_end out u))
    done;
    Probe.event (Event.Gap_closed { volume = !closed })
  end;
  out
