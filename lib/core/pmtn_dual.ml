open Bss_util
open Bss_instances
open Bss_wrap
open Bss_knapsack
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event

(* Shared analysis of (instance, T): partitions, free time, obligatory
   loads, and the knapsack decision of case 3.a. *)
type analysis = {
  mode : Pmtn_nice.mode;
  part : Partition.t;
  l : int;  (* number of large machines, |I0exp| *)
  free : Rat.t;  (* F: time for I-chp load on the non-large machines *)
  obligatory : Rat.t;  (* L*: obligatory I*chp load outside large machines *)
  star_load : Rat.t;  (* Σ_{I*chp} (s_i + P(C_i)) *)
  case_a : bool;
  infeasible_outside : bool;  (* case 3.a with capacity F − L* < 0 *)
  selected : bool array;  (* per class: lives entirely in the nice instance *)
  split : (int * Rat.t) option;  (* class e and its knapsack fraction *)
}

let half_of tee = Rat.div_int tee 2

let plus_exp_machines inst tee ~mode i =
  match mode with
  | Pmtn_nice.Alpha_prime -> Partition.alpha' inst tee i
  | Pmtn_nice.Gamma -> Partition.gamma inst tee i

let analyze ?(mode = Pmtn_nice.Alpha_prime) inst tee =
  let p = Partition.make inst tee in
  let half = half_of tee in
  let l = List.length p.Partition.exp_zero in
  let class_total i = Rat.of_int (inst.Instance.setups.(i) + inst.Instance.class_load.(i)) in
  let free =
    let used_plus =
      List.fold_left
        (fun acc i ->
          Rat.add acc
            (Rat.of_int
               ((plus_exp_machines inst tee ~mode i * inst.Instance.setups.(i)) + inst.Instance.class_load.(i))))
        Rat.zero p.Partition.exp_plus
    in
    let used_rest =
      List.fold_left (fun acc i -> Rat.add acc (class_total i)) Rat.zero
        (p.Partition.exp_minus @ p.Partition.chp_plus)
    in
    Rat.sub (Rat.mul_int tee (inst.Instance.m - l)) (Rat.add used_plus used_rest)
  in
  (* L*_i = P(C*_i) − |C*_i| (T/2 − s_i) *)
  let l_star_i i =
    let s = Rat.of_int inst.Instance.setups.(i) in
    let stars = p.Partition.big_jobs.(i) in
    let p_star =
      Array.fold_left (fun acc j -> Rat.add acc (Rat.of_int inst.Instance.job_time.(j))) Rat.zero stars
    in
    Rat.sub p_star (Rat.mul_int (Rat.sub half s) (Array.length stars))
  in
  let obligatory =
    List.fold_left
      (fun acc i -> Rat.add acc (Rat.add (Rat.of_int inst.Instance.setups.(i)) (l_star_i i)))
      Rat.zero p.Partition.chp_star
  in
  let star_load =
    List.fold_left (fun acc i -> Rat.add acc (class_total i)) Rat.zero p.Partition.chp_star
  in
  let case_a = Rat.( < ) free star_load in
  Probe.count (if case_a then "pmtn_dual.case_a" else "pmtn_dual.case_b");
  let selected = Array.make (Instance.c inst) false in
  let split = ref None in
  let infeasible_outside = ref false in
  if case_a then begin
    let capacity = Rat.sub free obligatory in
    if Rat.sign capacity < 0 then begin
      (* DESIGN.md §7.1: the paper's two tests would accept, but the
         obligatory outside load cannot fit in F — reject later. *)
      Probe.count "pmtn_dual.y_guard";
      if Probe.enabled () then
        Probe.event (Event.Y_guard_fired { t = tee; deficit = Rat.neg capacity });
      infeasible_outside := true
    end
    else begin
      let items =
        Array.of_list
          (List.map
             (fun i ->
               {
                 Knapsack.id = i;
                 profit = Rat.of_int inst.Instance.setups.(i);
                 weight = Rat.sub (Rat.of_int inst.Instance.class_load.(i)) (l_star_i i);
               })
             p.Partition.chp_star)
      in
      let sol = Knapsack.solve_linear items ~capacity in
      Array.iteri
        (fun pos take ->
          let i = items.(pos).Knapsack.id in
          if Rat.equal take Rat.one then selected.(i) <- true
          else if Rat.sign take > 0 then split := Some (i, take))
        sol.Knapsack.take
    end
  end
  else List.iter (fun i -> selected.(i) <- true) p.Partition.chp_star;
  {
    mode;
    part = p;
    l;
    free;
    obligatory;
    star_load;
    case_a;
    infeasible_outside = !infeasible_outside;
    selected;
    split = !split;
  }

let bounds_of_analysis inst tee a =
  let l_pmtn = ref (Rat.of_int (Intmath.sum_array inst.Instance.class_load)) in
  List.iter
    (fun i ->
      l_pmtn :=
        Rat.add !l_pmtn (Rat.of_int (plus_exp_machines inst tee ~mode:a.mode i * inst.Instance.setups.(i))))
    a.part.Partition.exp_plus;
  for i = 0 to Instance.c inst - 1 do
    if not (List.mem i a.part.Partition.exp_plus) then
      l_pmtn := Rat.add !l_pmtn (Rat.of_int inst.Instance.setups.(i))
  done;
  (* the extra setup of every unselected I*chp class (Lemma 4) *)
  List.iter
    (fun i ->
      let is_split = match a.split with Some (e, _) -> e = i | None -> false in
      if (not a.selected.(i)) && not is_split then
        l_pmtn := Rat.add !l_pmtn (Rat.of_int inst.Instance.setups.(i)))
    a.part.Partition.chp_star;
  let m' =
    a.l
    + List.fold_left (fun acc i -> acc + plus_exp_machines inst tee ~mode:a.mode i) 0 a.part.Partition.exp_plus
    + ((List.length a.part.Partition.exp_minus + 1) / 2)
  in
  (!l_pmtn, m')

let bounds ?mode inst tee = bounds_of_analysis inst tee (analyze ?mode inst tee)

let test_of_analysis inst tee a =
  let m = inst.Instance.m in
  let l_pmtn, m' = bounds_of_analysis inst tee a in
  let m_t = Rat.mul_int tee m in
  if Rat.( < ) m_t l_pmtn then Error (Dual.Load_exceeds { required = l_pmtn; available = m_t })
  else if m < m' then Error (Dual.Machines_exceed { required = m'; available = m })
  else if a.infeasible_outside then
    (* even with every class unselected the obligatory load beats F *)
    Error
      (Dual.Load_exceeds
         { required = Rat.add a.obligatory (Rat.sub (Rat.mul_int tee (m - a.l)) a.free); available = Rat.mul_int tee (m - a.l) })
  else Ok ()

let construct inst tee a =
  let m = inst.Instance.m in
  let half = half_of tee in
  let quarter = Rat.div_int tee 4 in
  let sched = Schedule.create m in
  (* Step 1: large machines, content from T/2 upward. *)
  List.iteri
    (fun u i ->
      let s = Rat.of_int inst.Instance.setups.(i) in
      Schedule.add_setup sched ~machine:u ~cls:i ~start:half ~dur:s;
      let pos = ref (Rat.add half s) in
      Instance.iter_class_jobs
        (fun j ->
          let t = Rat.of_int inst.Instance.job_time.(j) in
          Schedule.add_work sched ~machine:u ~job:j ~start:!pos ~dur:t;
          pos := Rat.add !pos t)
        inst i)
    a.part.Partition.exp_zero;
  (* Piece bookkeeping for I*chp: t1 = T/2 − s_i (inside, below the line),
     t2 = s_i + t_j − T/2 (obligatory, outside). *)
  let t1 i = Rat.sub half (Rat.of_int inst.Instance.setups.(i)) in
  let t2 i j = Rat.sub (Rat.of_int (inst.Instance.setups.(i) + inst.Instance.job_time.(j))) half in
  let is_star i j = Array.exists (fun j' -> j' = j) a.part.Partition.big_jobs.(i) in
  (* Nice batches and K batches (class, pieces) accumulate here. *)
  let nice = ref [] and kay = ref [] in
  let add_nice b = if b.Pmtn_nice.pieces <> [] then nice := b :: !nice in
  let add_k ?(front = false) cls pieces =
    let pieces = List.filter (fun (_, t) -> Rat.sign t > 0) pieces in
    if pieces <> [] then kay := (if front then ((cls, pieces) :: !kay) else !kay @ [ (cls, pieces) ])
  in
  List.iter
    (fun i -> add_nice (Pmtn_nice.batch_of_class inst i))
    (a.part.Partition.exp_plus @ a.part.Partition.exp_minus @ a.part.Partition.chp_plus);
  (* I*chp: selected fully inside; unselected split at the T/2 line; the
     knapsack's fractional class e split by Eq. (6). *)
  List.iter
    (fun i ->
      let is_split = match a.split with Some (e, _) -> e = i | None -> false in
      if a.selected.(i) then add_nice (Pmtn_nice.batch_of_class inst i)
      else if not is_split then begin
        let stars = Array.to_list a.part.Partition.big_jobs.(i) in
        add_nice { Pmtn_nice.cls = i; pieces = List.map (fun j -> (j, t2 i j)) stars };
        let others =
          Array.to_list (Instance.jobs_of_class inst i) |> List.filter (fun j -> not (is_star i j))
        in
        add_k i (List.map (fun j -> (j, t1 i)) stars @ List.map (fun j -> (j, Rat.of_int inst.Instance.job_time.(j))) others)
      end)
    a.part.Partition.chp_star;
  (match a.split with
  | None -> ()
  | Some (e, frac) ->
    let inside = ref [] and outside = ref [] in
    Instance.iter_class_jobs
      (fun j ->
        let tj = Rat.of_int inst.Instance.job_time.(j) in
        let inside_t =
          if is_star e j then Rat.add (Rat.mul frac (t1 e)) (t2 e j) else Rat.mul frac tj
        in
        let outside_t = Rat.sub tj inside_t in
        if Rat.sign inside_t > 0 then inside := (j, inside_t) :: !inside;
        if Rat.sign outside_t > 0 then outside := (j, outside_t) :: !outside)
      inst e;
    add_nice { Pmtn_nice.cls = e; pieces = List.rev !inside };
    add_k ~front:true e (List.rev !outside));
  (* I-chp \ I*chp: in case 3.a everything goes to K; in case 3.b fill the
     nice instance up to the budget F − Σ_{I*chp}(s_i + P(C_i)), with at
     most one class split across both sides. *)
  let plain_cheap =
    List.filter (fun i -> not (List.mem i a.part.Partition.chp_star)) a.part.Partition.chp_minus
  in
  if a.case_a then
    List.iter
      (fun i ->
        add_k i
          (Array.to_list (Instance.jobs_of_class inst i)
          |> List.map (fun j -> (j, Rat.of_int inst.Instance.job_time.(j)))))
      plain_cheap
  else begin
    let budget = ref (Rat.sub a.free a.star_load) in
    let partial_used = ref false in
    List.iter
      (fun i ->
        let s = Rat.of_int inst.Instance.setups.(i) in
        let need = Rat.add s (Rat.of_int inst.Instance.class_load.(i)) in
        let jobs = Array.to_list (Instance.jobs_of_class inst i) in
        let whole = List.map (fun j -> (j, Rat.of_int inst.Instance.job_time.(j))) jobs in
        if Rat.( <= ) need !budget then begin
          add_nice { Pmtn_nice.cls = i; pieces = whole };
          budget := Rat.sub !budget need
        end
        else if Rat.( > ) !budget s && not !partial_used then begin
          partial_used := true;
          let room = ref (Rat.sub !budget s) in
          budget := Rat.zero;
          let inside = ref [] and outside = ref [] in
          List.iter
            (fun (j, t) ->
              if Rat.sign !room <= 0 then outside := (j, t) :: !outside
              else if Rat.( <= ) t !room then begin
                inside := (j, t) :: !inside;
                room := Rat.sub !room t
              end
              else begin
                inside := (j, !room) :: !inside;
                outside := (j, Rat.sub t !room) :: !outside;
                room := Rat.zero
              end)
            whole;
          add_nice { Pmtn_nice.cls = i; pieces = List.rev !inside };
          add_k ~front:true i (List.rev !outside)
        end
        else add_k i whole)
      plain_cheap
  end;
  (* Nice instance on the non-large machines. *)
  (match
     Pmtn_nice.place ~mode:a.mode inst sched ~tee ~first_machine:a.l ~machines:(m - a.l)
       (List.rev !nice)
   with
  | Ok () -> ()
  | Error msg -> failwith msg);
  (* K at the bottom of the large machines: big pieces (t > T/4) one per
     machine, small ones wrapped into (0, T/2) and (T/4, T/2) gaps. *)
  let k_big = ref [] and k_small = ref [] in
  List.iter
    (fun (cls, pieces) ->
      let big, small = List.partition (fun (_, t) -> Rat.( > ) t quarter) pieces in
      List.iter (fun piece -> k_big := (cls, piece) :: !k_big) big;
      if small <> [] then k_small := (cls, small) :: !k_small)
    !kay;
  let k_big = List.rev !k_big and k_small = List.rev !k_small in
  let l' = List.length k_big in
  if l' > a.l then failwith "Pmtn_dual: more big K pieces than large machines";
  List.iteri
    (fun u (cls, (j, t)) ->
      let s = Rat.of_int inst.Instance.setups.(cls) in
      Schedule.add_setup sched ~machine:u ~cls ~start:Rat.zero ~dur:s;
      Schedule.add_work sched ~machine:u ~job:j ~start:s ~dur:t;
      if Rat.( > ) (Rat.add s t) half then failwith "Pmtn_dual: big K piece exceeds T/2")
    k_big;
  if k_small <> [] then begin
    if l' >= a.l then failwith "Pmtn_dual: no large machines left for small K pieces";
    let first = { Template.machine = l'; lo = Rat.zero; hi = half } in
    let rest = Template.uniform_run ~first_machine:(l' + 1) ~count:(a.l - l' - 1) ~lo:quarter ~hi:half in
    let omega = Template.concat [ [ first ]; rest ] in
    let q = Sequence.of_batches inst k_small in
    let _ = Wrap.wrap inst sched q omega in
    ()
  end;
  sched

let test ?mode inst tee =
  Bss_resilience.Guard.tick "pmtn_dual.test";
  let trivial = Rat.of_int (Lower_bounds.setup_plus_tmax inst) in
  if Rat.( < ) tee trivial then Error (Dual.Below_trivial_bound { bound = trivial })
  else test_of_analysis inst tee (analyze ?mode inst tee)

let run ?mode inst tee =
  Bss_resilience.Guard.tick "pmtn_dual.test";
  let trivial = Rat.of_int (Lower_bounds.setup_plus_tmax inst) in
  if Rat.( < ) tee trivial then Dual.Rejected (Dual.Below_trivial_bound { bound = trivial })
  else begin
    let a = analyze ?mode inst tee in
    match test_of_analysis inst tee a with
    | Error r -> Dual.Rejected r
    | Ok () -> Dual.Accepted (construct inst tee a)
  end

let search_quantities inst tee a =
  let l_low = ref (Rat.of_int (Intmath.sum_array inst.Instance.class_load)) in
  List.iter
    (fun i ->
      l_low :=
        Rat.add !l_low (Rat.of_int (plus_exp_machines inst tee ~mode:a.mode i * inst.Instance.setups.(i))))
    a.part.Partition.exp_plus;
  for i = 0 to Instance.c inst - 1 do
    if not (List.mem i a.part.Partition.exp_plus) then
      l_low := Rat.add !l_low (Rat.of_int inst.Instance.setups.(i))
  done;
  let _, m' = bounds_of_analysis inst tee a in
  let star_count =
    List.fold_left (fun acc i -> acc + Array.length a.part.Partition.big_jobs.(i)) 0 a.part.Partition.chp_star
  in
  (!l_low, m', a.l, a.case_a, Rat.sub a.free a.obligatory, star_count)
