open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event
module Guard = Bss_resilience.Guard

type result = { schedule : Schedule.t; accepted : Rat.t; dual_calls : int }

let observe_outcome tee = function
  | Dual.Accepted _ ->
    Probe.count "dual_search.accepted";
    if Probe.enabled () then Probe.event (Event.Guess_accepted { source = "dual_search"; t = tee })
  | Dual.Rejected r ->
    Probe.count "dual_search.rejected";
    if Probe.enabled () then
      Probe.event
        (Event.Guess_rejected
           { source = "dual_search"; t = tee; reason = Format.asprintf "%a" Dual.pp_rejection r })

let exit_interval lo hi =
  if Probe.enabled () then Probe.event (Event.Interval_exit { source = "dual_search"; lo; hi })

let search ~dual ~epsilon ~t_min inst =
  if Rat.sign epsilon <= 0 then invalid_arg "Dual_search.search: epsilon must be positive";
  let calls = ref 0 in
  let test tee =
    incr calls;
    Guard.tick "dual_search.guess";
    Probe.count "dual_search.guesses";
    let sp = Probe.enter "dual" in
    let r = dual inst tee in
    Probe.leave sp;
    observe_outcome tee r;
    r
  in
  (* ε' = 2ε/3 makes the final ratio exactly 3/2 + ε. *)
  let tolerance = Rat.mul t_min (Rat.mul_int (Rat.div_int epsilon 3) 2) in
  match test t_min with
  | Dual.Accepted s ->
    exit_interval t_min t_min;
    { schedule = s; accepted = t_min; dual_calls = !calls }
  | Dual.Rejected _ -> begin
    let hi = Rat.mul_int t_min 2 in
    match test hi with
    | Dual.Rejected r ->
      failwith (Format.asprintf "dual rejected 2*T_min >= OPT: %a" Dual.pp_rejection r)
    | Dual.Accepted s ->
      let rec go lo hi best_sched =
        if Rat.( <= ) (Rat.sub hi lo) tolerance then begin
          exit_interval lo hi;
          { schedule = best_sched; accepted = hi; dual_calls = !calls }
        end
        else begin
          let mid = Rat.div_int (Rat.add lo hi) 2 in
          match test mid with
          | Dual.Accepted s -> go lo mid s
          | Dual.Rejected _ -> go mid hi best_sched
        end
      in
      go t_min hi s
  end
