open Bss_util
open Bss_instances
module Probe = Bss_obs.Probe
module Event = Bss_obs.Event
module Guard = Bss_resilience.Guard

type result = { schedule : Schedule.t; accepted : Rat.t; bound_tests : int }

(* The search half of Theorem 3: locate T* = min accepted guess without
   constructing a schedule. *)
let find_t_star inst =
  let m = inst.Instance.m in
  let smax = Rat.of_int inst.Instance.s_max in
  let tests = ref 0 in
  (* The O(c) acceptance test of Theorem 7 with the left-closed s_max
     clamp; monotone in [tee]. *)
  let accept tee =
    incr tests;
    Guard.tick "splittable_cj.bound_test";
    Probe.count "splittable_cj.bound_tests";
    if Rat.( < ) tee smax then false
    else begin
      let l_split, m_exp = Splittable_dual.bounds inst tee in
      Rat.( >= ) (Rat.mul_int tee m) l_split && m_exp <= m
    end
  in
  (* [accept] on a region breakpoint vs. on a class-jump point: same test,
     separate counters, so a profile attributes the O(log c) region phase
     and the O(log m) jump phases individually (Theorem 3's accounting). *)
  let accept_region t =
    Probe.count "splittable_cj.region_steps";
    accept t
  in
  let accept_jump t =
    Probe.count "splittable_cj.jump_steps";
    accept t
  in
  (* Step 1-2: region search over partition breakpoints {0, 2 s_i, 2N}. *)
  let candidates =
    let setups = Array.map (fun s -> Rat.of_int (2 * s)) inst.Instance.setups in
    Array.sort Rat.compare setups;
    Array.append (Array.append [| Rat.zero |] setups) [| Rat.of_int (2 * inst.Instance.total) |]
  in
  (* First accepted candidate: index 0 (T = 0) is rejected, the last
     (T = 2N >= 2·OPT) is accepted. *)
  let first_true =
    let lo = ref 0 and hi = ref (Array.length candidates - 1) in
    (* invariant: candidates.(!lo) rejected, candidates.(!hi) accepted *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if accept_region candidates.(mid) then hi := mid else lo := mid
    done;
    !hi
  in
  let lo = ref candidates.(first_true - 1) and hi = ref candidates.(first_true) in
  (* Expensive set on the region's interior (constant there). *)
  let interior () = Rat.div_int (Rat.add !lo !hi) 2 in
  let expensive_interior =
    let mid = interior () in
    List.filter (fun i -> Partition.is_expensive inst mid i) (List.init (Instance.c inst) (fun i -> i))
  in
  (* Jumps of class [i] strictly inside (!lo, !hi) are 2 P_i / κ for
     κ ∈ [κ_min i, κ_max i]; κ is capped at m+1 because β_i > m rejects. *)
  let two_p i = Rat.of_int (2 * inst.Instance.class_load.(i)) in
  let kappa_min i = Rat.floor_int (Rat.div (two_p i) !hi) + 1 in
  let kappa_max i =
    let cap = m + 1 in
    if Rat.is_zero !lo then cap
    else begin
      let bound = Rat.ceil_int (Rat.div (two_p i) !lo) - 1 in
      min cap bound
    end
  in
  (* Step 5-6: binary search over the fastest class's jumps. *)
  (match expensive_interior with
  | [] -> ()
  | _ :: _ ->
    let f =
      List.fold_left
        (fun best i -> if inst.Instance.class_load.(i) > inst.Instance.class_load.(best) then i else best)
        (List.hd expensive_interior) expensive_interior
    in
    let jump i kappa = Rat.div (two_p i) (Rat.of_int kappa) in
    let kmin = kappa_min f and kmax = kappa_max f in
    if kmin <= kmax then begin
      (* jump f κ is decreasing in κ; accept is monotone increasing in T,
         so accept (jump f κ) is monotone decreasing in κ. *)
      if not (accept_jump (jump f kmin)) then lo := jump f kmin
      else if accept_jump (jump f kmax) then begin
        hi := jump f kmax;
        (* κ was capped only when the capped jump is rejected, so reaching
           here means kmax was the true range end: no f-jumps below. *)
        ()
      end
      else begin
        (* invariant: accept (jump f !a), not (accept (jump f !b)) *)
        let a = ref kmin and b = ref kmax in
        while !b - !a > 1 do
          let midk = (!a + !b) / 2 in
          if accept_jump (jump f midk) then a := midk else b := midk
        done;
        lo := jump f !b;
        hi := jump f !a
      end
    end;
    (* Step 7-8: every class now jumps at most once inside (!lo, !hi)
       (Lemma 3). Collect and binary search those jumps. *)
    let jumps = ref [] in
    List.iter
      (fun i ->
        let kmin = kappa_min i and kmax = kappa_max i in
        (* Lemma 3 bounds the count to 1; tolerate a couple defensively. *)
        let kmax = min kmax (kmin + 3) in
        for kappa = kmin to kmax do
          let t = jump i kappa in
          if Rat.( < ) !lo t && Rat.( < ) t !hi then jumps := t :: !jumps
        done)
      expensive_interior;
    let jumps = List.sort_uniq Rat.compare !jumps in
    if Probe.enabled () then Probe.count ~n:(List.length jumps) "splittable_cj.jump_candidates";
    if jumps <> [] then begin
      let arr = Array.of_list jumps in
      let n = Array.length arr in
      (* binary search first accepted jump; endpoints !lo/!hi keep their
         rejected/accepted roles *)
      if accept_jump arr.(0) then hi := arr.(0)
      else if not (accept_jump arr.(n - 1)) then lo := arr.(n - 1)
      else begin
        let a = ref 0 and b = ref (n - 1) in
        (* invariant: arr.(!a) rejected, arr.(!b) accepted *)
        while !b - !a > 1 do
          let midk = (!a + !b) / 2 in
          if accept_jump arr.(midk) then b := midk else a := midk
        done;
        lo := arr.(!a);
        hi := arr.(!b)
      end
    end);
  if Probe.enabled () then
    Probe.event (Event.Interval_exit { source = "splittable_cj"; lo = !lo; hi = !hi });
  (* Step 9: inside (!lo, !hi) no quantity jumps, so acceptance is
     T >= max(s_max, L_split/m) — or never, when the machine test binds. *)
  let t_star =
    (* bounds are right-continuous step functions with no jump inside
       (!lo, !hi), hence constant there — also at points below s_max, where
       only the clamp rejects. *)
    let mid = interior () in
    let l_split, m_exp = Splittable_dual.bounds inst mid in
    if m_exp > m then !hi
    else begin
      let t_crit = Rat.max smax (Rat.div_int l_split m) in
      if Rat.( < ) t_crit !hi then begin
        assert (Rat.( > ) t_crit !lo);
        t_crit
      end
      else !hi
    end
  in
  if Probe.enabled () then
    Probe.event (Event.Note { source = "splittable_cj"; key = "t_star"; value = Rat.to_string t_star });
  (t_star, !tests)

let solve inst =
  let t_star, tests = find_t_star inst in
  match Splittable_dual.run inst t_star with
  | Dual.Accepted schedule -> { schedule; accepted = t_star; bound_tests = tests }
  | Dual.Rejected r ->
    (* Cannot happen: t_star is accepted by construction. *)
    failwith (Format.asprintf "Splittable_cj: T* unexpectedly rejected: %a" Dual.pp_rejection r)
