(** Unified entry point: pick a problem variant and an algorithm, get a
    checked schedule with its quality certificate.

    This is the API the examples and the experiment harness use; each
    algorithm corresponds to one theorem of the paper. *)

open Bss_util
open Bss_instances

type algorithm =
  | Approx2  (** Theorem 1: 2-approximation, [O(n)] *)
  | Approx3_2_eps of Rat.t  (** Theorem 2: (3/2+ε)-approximation, [O(n log 1/ε)] *)
  | Approx3_2
      (** the exact 3/2-approximations: Theorem 3 (splittable, class
          jumping), Theorem 6 (preemptive, class jumping), Theorem 8
          (non-preemptive, integer binary search) *)

type result = {
  schedule : Schedule.t;
  guarantee : Rat.t;
      (** proven upper bound on [makespan / OPT] for this run: [2] for
          {!Approx2}, [3/2 + ε] for {!Approx3_2_eps}, [3/2] for
          {!Approx3_2} *)
  certificate : Rat.t;
      (** a value [X <= guarantee·OPT] with [makespan <= X]: [2·T_min] for
          {!Approx2}, [(3/2)·T_accepted] otherwise *)
  dual_calls : int;  (** dual/bound evaluations performed (0 for Approx2) *)
}

(** [solve ~algorithm variant inst] runs the requested algorithm. The
    returned schedule is feasible for [variant] (exercised by the test
    suite via the exact checker on every path). *)
val solve : algorithm:algorithm -> Variant.t -> Instance.t -> result

(** [algorithm_name ~algorithm variant] is a short display name, e.g.
    ["3/2 class-jumping (split)"] . *)
val algorithm_name : algorithm:algorithm -> Variant.t -> string

(** {1 Resilient solving}

    [solve_robust] runs the requested algorithm under a
    {!Bss_resilience.Guard} and, when the run is cut short — budget
    exhausted, deadline passed, an internal raise, or an injected
    {!Bss_resilience.Chaos} fault — walks down a degradation ladder:

    {v requested algorithm → 2-approx (Thm 1) → list scheduling v}

    Every rung's output is re-validated with the exact checker before it is
    returned, and each rung it descends past is recorded in [attempts]. The
    terminal rung is unguarded straight-line code and always succeeds, so
    [solve_robust] never raises. *)

type attempt = { rung : string; error : Bss_resilience.Error.t }

type robust = {
  schedule : Schedule.t;  (** feasible for the variant (checker-verified) *)
  rung : string;
      (** the rung that produced [schedule]: ["requested"], ["two-approx"]
          or ["list-scheduling"] *)
  guarantee : Rat.t option;
      (** certified approximation ratio of the rung actually used; [None]
          for the uncertified terminal rung *)
  certificate : Rat.t option;  (** as in {!result}; [None] for the terminal rung *)
  dual_calls : int;  (** dual/bound evaluations of the successful rung *)
  attempts : attempt list;  (** rungs that failed before it, in ladder order *)
  fuel_spent : int;  (** guard ticks charged across all guarded rungs *)
}

(** [solve_robust ?deadline_ms ?fuel ~algorithm variant inst] solves under
    a budget. The deadline and fuel are shared by the guarded rungs (fuel
    spent on a failed rung stays spent); the 2-approx rung charges no
    ticks, so it completes even on an exhausted budget — the paper's
    Theorem 1 guarantee is what the ladder degrades {e to}, not through.
    With no limits and no armed chaos this is {!solve} plus one
    feasibility check. *)
val solve_robust :
  ?deadline_ms:int -> ?fuel:int -> algorithm:algorithm -> Variant.t -> Instance.t -> robust

(** The terminal rung, exposed for tests: whole-batch list scheduling onto
    the least-loaded machine. Feasible for every variant; no guarantee. *)
val last_resort : Instance.t -> Schedule.t
