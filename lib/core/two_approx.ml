open Bss_util
open Bss_instances
open Bss_wrap

let splittable inst =
  let m = inst.Instance.m in
  let smax = Rat.of_int inst.Instance.s_max in
  let volume = Rat.of_ints inst.Instance.total m in
  let omega =
    Template.concat
      [ Template.uniform_run ~first_machine:0 ~count:m ~lo:smax ~hi:(Rat.add smax volume) ]
  in
  let q = Sequence.of_classes inst (List.init (Instance.c inst) (fun i -> i)) in
  let sched = Schedule.create m in
  let _ = Wrap.wrap inst sched q omega in
  sched

(* --- next-fit for the non-preemptive / preemptive case (Lemma 9) ------- *)

type item =
  | S of int  (** setup of class *)
  | J of int  (** job id *)

let item_duration inst = function
  | S i -> inst.Instance.setups.(i)
  | J j -> inst.Instance.job_time.(j)

let nonpreemptive inst =
  let m = inst.Instance.m in
  let tmin = Lower_bounds.t_min Variant.Nonpreemptive inst in
  (* Step 1: next-fit with threshold T_min. [placed] holds reversed item
     lists; [crossed] marks machines whose last item pushed the load over
     the threshold. *)
  let placed = Array.make m [] in
  let crossed = Array.make m false in
  let u = ref 0 and load = ref Rat.zero in
  let place item =
    assert (!u < m);
    placed.(!u) <- item :: placed.(!u);
    load := Rat.add !load (Rat.of_int (item_duration inst item));
    if Rat.( > ) !load tmin then begin
      crossed.(!u) <- true;
      incr u;
      load := Rat.zero
    end
  in
  for i = 0 to Instance.c inst - 1 do
    place (S i);
    Array.iter (fun j -> place (J j)) (Instance.jobs_of_class inst i)
  done;
  (* Step 2: move each crossing item (the last on its machine) to the
     beginning of the next machine, prefixing a setup when it is a job. *)
  let final = Array.make m [] in
  let carry = Array.make m [] in
  for v = 0 to m - 1 do
    let own = List.rev placed.(v) in
    let own =
      if not crossed.(v) then own
      else begin
        match placed.(v) with
        | last :: _ ->
          assert (v + 1 < m);
          (carry.(v + 1) <-
            (match last with
            | S _ -> [ last ]
            | J j -> [ S inst.Instance.job_class.(j); J j ]));
          List.rev (List.tl placed.(v))
        | [] -> assert false
      end
    in
    final.(v) <- carry.(v) @ own
  done;
  (* Step 3: drop setups that end up last on a machine. *)
  let rec drop_trailing_setups = function
    | [] -> []
    | items -> (
      match List.rev items with
      | S _ :: rest_rev -> drop_trailing_setups (List.rev rest_rev)
      | (J _ :: _ | []) -> items)
  in
  (* Materialize: items run back-to-back from time 0. *)
  let sched = Schedule.create m in
  for v = 0 to m - 1 do
    let t = ref Rat.zero in
    List.iter
      (fun item ->
        let dur = Rat.of_int (item_duration inst item) in
        (match item with
        | S i -> Schedule.add_setup sched ~machine:v ~cls:i ~start:!t ~dur
        | J j -> Schedule.add_work sched ~machine:v ~job:j ~start:!t ~dur);
        t := Rat.add !t dur)
      (drop_trailing_setups final.(v))
  done;
  sched

let preemptive = nonpreemptive

let solve variant inst =
  (* fault-only chaos point, no budget charge: the 2-approximation is the
     ladder's certified fallback and must finish even on an exhausted
     guard, but tests still need to crash it to reach the terminal rung *)
  Bss_resilience.Guard.point "two_approx.solve";
  match variant with
  | Variant.Splittable -> splittable inst
  | Variant.Nonpreemptive -> nonpreemptive inst
  | Variant.Preemptive -> preemptive inst
