(* Bechamel micro-benchmarks: one Test group per table/figure-level claim.

   - table1/*      : every algorithm of the paper's Table 1 row set on a
                     fixed mid-sized instance (who costs what).
   - scaling/*     : the near-linear running-time claims — each algorithm
                     at n = 1k/4k/16k; linear growth shows as ~4x steps.
   - ablation/*    : design choices called out in DESIGN.md §6 — knapsack
                     solvers, class jumping vs plain binary search, rat
                     arithmetic fast paths.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
module Variant = Bss_instances.Variant
open Bss_util
open Bss_core
open Bss_workloads

let instance_of ~m ~n seed = Generator.uniform.Generator.generate (Prng.create seed) ~m ~n

let mid = instance_of ~m:16 ~n:2_000 7

let table1_tests =
  let t name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"table1"
    [
      t "2approx-nonp" (fun () -> Two_approx.nonpreemptive mid);
      t "2approx-split" (fun () -> Two_approx.splittable mid);
      t "3/2eps-nonp" (fun () ->
          Solver.solve ~algorithm:(Solver.Approx3_2_eps (Rat.of_ints 1 10)) Variant.Nonpreemptive mid);
      t "3/2eps-pmtn" (fun () ->
          Solver.solve ~algorithm:(Solver.Approx3_2_eps (Rat.of_ints 1 10)) Variant.Preemptive mid);
      t "3/2eps-split" (fun () ->
          Solver.solve ~algorithm:(Solver.Approx3_2_eps (Rat.of_ints 1 10)) Variant.Splittable mid);
      t "3/2-nonp-bs" (fun () -> Nonp_search.solve mid);
      t "3/2-pmtn-cj" (fun () -> Pmtn_cj.solve mid);
      t "3/2-split-cj" (fun () -> Splittable_cj.solve mid);
      t "mp-wrap" (fun () -> Bss_baselines.Monma_potts.schedule mid);
      t "batch-lpt" (fun () -> Bss_baselines.List_scheduling.lpt mid);
    ]

let scaling_tests =
  let sizes = [ 1_000; 4_000; 16_000 ] in
  let insts = List.map (fun n -> (n, instance_of ~m:16 ~n (100 + n))) sizes in
  let group name f =
    Test.make_grouped ~name
      (List.map
         (fun (n, inst) -> Test.make ~name:(Printf.sprintf "n=%d" n) (Staged.stage (fun () -> f inst)))
         insts)
  in
  Test.make_grouped ~name:"scaling"
    [
      group "2approx-nonp" Two_approx.nonpreemptive;
      group "split-cj" Splittable_cj.solve;
      group "nonp-bs" Nonp_search.solve;
      group "pmtn-cj" Pmtn_cj.solve;
    ]

let ablation_tests =
  (* knapsack: sorted O(k log k) vs selection-based O(k) *)
  let rng = Prng.create 99 in
  let items =
    Array.init 4_000 (fun i ->
        {
          Bss_knapsack.Knapsack.id = i;
          profit = Rat.of_int (1 + Prng.int rng 1000);
          weight = Rat.of_int (1 + Prng.int rng 1000);
        })
  in
  let capacity = Rat.of_int 500_000 in
  (* class jumping vs fine binary search at eps = 1/1024 (same dual) *)
  let cj_inst = instance_of ~m:64 ~n:8_000 11 in
  let eps = Rat.of_ints 1 1024 in
  (* rationals: single-limb vs multi-limb arithmetic *)
  let small_a = Rat.of_ints 355 113 and small_b = Rat.of_ints 22 7 in
  let big_a =
    Rat.make (Bigint.of_string "123456789012345678901234567") (Bigint.of_string "987654321098765432109")
  and big_b =
    Rat.make (Bigint.of_string "314159265358979323846264338") (Bigint.of_string "271828182845904523536")
  in
  Test.make_grouped ~name:"ablation"
    [
      Test.make ~name:"knapsack-sorted"
        (Staged.stage (fun () -> Bss_knapsack.Knapsack.solve_sorted items ~capacity));
      Test.make ~name:"knapsack-linear"
        (Staged.stage (fun () -> Bss_knapsack.Knapsack.solve_linear items ~capacity));
      Test.make ~name:"search-class-jumping" (Staged.stage (fun () -> Splittable_cj.solve cj_inst));
      Test.make ~name:"search-binary-eps"
        (Staged.stage (fun () ->
             Dual_search.search ~dual:Splittable_dual.run ~epsilon:eps
               ~t_min:(Bss_instances.Lower_bounds.t_min Variant.Splittable cj_inst)
               cj_inst));
      Test.make ~name:"compact-split-m1e6"
        (Staged.stage
           (let inst =
              Bss_instances.Instance.make ~m:1_000_000 ~setups:[| 3; 5 |]
                ~jobs:[| (0, 40_000_000); (0, 7); (1, 9_000_000); (1, 11) |]
            in
            fun () -> Splittable_compact.solve inst));
      Test.make ~name:"explicit-split-m100k"
        (Staged.stage
           (let inst =
              Bss_instances.Instance.make ~m:100_000 ~setups:[| 3; 5 |]
                ~jobs:[| (0, 4_000_000); (0, 7); (1, 900_000); (1, 11) |]
            in
            fun () -> Splittable_cj.solve inst));
      Test.make ~name:"rat-add-small" (Staged.stage (fun () -> Rat.add small_a small_b));
      Test.make ~name:"rat-add-big" (Staged.stage (fun () -> Rat.add big_a big_b));
      Test.make ~name:"rat-mul-small" (Staged.stage (fun () -> Rat.mul small_a small_b));
      Test.make ~name:"rat-mul-big" (Staged.stage (fun () -> Rat.mul big_a big_b));
    ]

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  Benchmark.all cfg instances tests

(* One instrumented run per algorithm: where inside the solver the time
   goes (bechamel answers how much in total; the spans answer where). *)
let span_profile () =
  let algorithms =
    [
      ("3/2-split-cj", Solver.Approx3_2, Variant.Splittable);
      ("3/2-pmtn-cj", Solver.Approx3_2, Variant.Preemptive);
      ("3/2-nonp-bs", Solver.Approx3_2, Variant.Nonpreemptive);
      ("3/2+1/10-nonp", Solver.Approx3_2_eps (Rat.of_ints 1 10), Variant.Nonpreemptive);
    ]
  in
  print_endline "";
  print_endline "per-phase span totals (one instrumented run each, n=2000 m=16):";
  List.iter
    (fun (name, algorithm, variant) ->
      let _, report =
        Bss_obs.Probe.with_recording (fun () -> Solver.solve ~algorithm variant mid)
      in
      Printf.printf "  %s\n" name;
      List.iter
        (fun (path, { Bss_obs.Report.calls; ns }) ->
          Printf.printf "    %-24s %5d call(s) %10.3f ms\n" path calls (Int64.to_float ns /. 1e6))
        report.Bss_obs.Report.spans)
    algorithms

let () =
  let all = Test.make_grouped ~name:"bss" [ table1_tests; scaling_tests; ablation_tests ] in
  let raw = benchmark all in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "benchmark results (monotonic clock, estimated time per run):";
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, o) ->
      let estimate =
        match Analyze.OLS.estimates o with
        | Some [ e ] ->
          if e > 1e6 then Printf.sprintf "%10.3f ms" (e /. 1e6) else Printf.sprintf "%10.1f ns" e
        | Some _ | None -> "        n/a"
      in
      Printf.printf "  %-40s %s\n" name estimate)
    rows;
  span_profile ()
