open Bss_util
open Bss_core
open Bss_workloads
module Variant = Bss_instances.Variant

let schema_version = "bss-bench/1"

type entry = { name : string; ns_per_run : float; runs : int }

type t = {
  schema : string;
  quick : bool;
  meta : (string * string) list;
  entries : entry list;
  counters : (string * int) list;
}

type comparison = { table : string; lines : string list; failures : string list }

(* Provenance for the capture file: which commit produced these numbers.
   Shelling out keeps this dependency-free; a build outside a work tree
   degrades to "unknown" rather than failing the capture. *)
let git_rev () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | ic -> (
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
    | exception _ -> "unknown")
  | exception _ -> "unknown"

(* ---------------- the case set ---------------- *)

let instance_of ~m ~n seed = Generator.uniform.Generator.generate (Prng.create seed) ~m ~n

(* Mirrors bench/main.ml's table1/scaling groups (same names, same
   seeds) so numbers line up across the two harnesses; ablations are
   left to the exploratory harness. *)
let table1_cases () =
  let mid = instance_of ~m:16 ~n:2_000 7 in
  let eps = Rat.of_ints 1 10 in
  [
    ("table1/2approx-nonp", fun () -> ignore (Two_approx.nonpreemptive mid));
    ("table1/2approx-split", fun () -> ignore (Two_approx.splittable mid));
    ( "table1/3_2eps-nonp",
      fun () -> ignore (Solver.solve ~algorithm:(Solver.Approx3_2_eps eps) Variant.Nonpreemptive mid) );
    ( "table1/3_2eps-pmtn",
      fun () -> ignore (Solver.solve ~algorithm:(Solver.Approx3_2_eps eps) Variant.Preemptive mid) );
    ( "table1/3_2eps-split",
      fun () -> ignore (Solver.solve ~algorithm:(Solver.Approx3_2_eps eps) Variant.Splittable mid) );
    ("table1/3_2-nonp-bs", fun () -> ignore (Nonp_search.solve mid));
    ("table1/3_2-pmtn-cj", fun () -> ignore (Pmtn_cj.solve mid));
    ("table1/3_2-split-cj", fun () -> ignore (Splittable_cj.solve mid));
    ("table1/mp-wrap", fun () -> ignore (Bss_baselines.Monma_potts.schedule mid));
    ("table1/batch-lpt", fun () -> ignore (Bss_baselines.List_scheduling.lpt mid));
  ]

let scaling_cases ~quick =
  let sizes = if quick then [ 1_000 ] else [ 1_000; 4_000; 16_000 ] in
  List.concat_map
    (fun n ->
      let inst = instance_of ~m:16 ~n (100 + n) in
      [
        (Printf.sprintf "scaling/2approx-nonp/n=%d" n, fun () -> ignore (Two_approx.nonpreemptive inst));
        (Printf.sprintf "scaling/split-cj/n=%d" n, fun () -> ignore (Splittable_cj.solve inst));
        (Printf.sprintf "scaling/nonp-bs/n=%d" n, fun () -> ignore (Nonp_search.solve inst));
        (Printf.sprintf "scaling/pmtn-cj/n=%d" n, fun () -> ignore (Pmtn_cj.solve inst));
      ])
    sizes

(* The counter sweep runs the instrumented solvers on the jumpy
   "expensive" instance the cram tests pin and merges the recordings:
   guess/jump/dual-call counters are deterministic, so they transfer
   across machines and gate exactly. *)
let counter_sweep () =
  let inst = (Generator.by_name "expensive").Generator.generate (Prng.create 1) ~m:16 ~n:48 in
  let runs =
    [
      (Solver.Approx3_2, Variant.Nonpreemptive);
      (Solver.Approx3_2, Variant.Preemptive);
      (Solver.Approx3_2, Variant.Splittable);
      (Solver.Approx3_2_eps (Rat.of_ints 1 8), Variant.Nonpreemptive);
      (Solver.Approx2, Variant.Nonpreemptive);
    ]
  in
  let merged =
    List.fold_left
      (fun acc (algorithm, variant) ->
        let _, report =
          Bss_obs.Probe.with_recording (fun () -> Solver.solve ~algorithm variant inst)
        in
        Bss_obs.Report.merge acc report)
      Bss_obs.Report.empty runs
  in
  merged.Bss_obs.Report.counters

(* ---------------- timing ---------------- *)

let time_once f =
  let t0 = Monotonic_clock.now () in
  ignore (Sys.opaque_identity (f ()));
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0)

let median samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  a.(Array.length a / 2)

let measure ~runs f =
  ignore (Sys.opaque_identity (f ()));
  median (List.init runs (fun _ -> time_once f))

(* ---------------- net throughput ---------------- *)

(* One full serve+soak round trip over a loopback Unix-domain socket: a
   server domain answers the seeded 30-request stream and drains itself,
   while the netsoak client drives it under a bounded window — the
   closed-loop service path (wire parse, admission, dispatch waves,
   response flush) that pure solver timings never touch. The
   [scaling/net-throughput] entry gates the wall time of the round trip;
   [net/solve-p99] reports the p99 server-side solve time carried back
   in the result frames (informational — solver entries already gate
   compute). *)
let net_requests = 30

let net_socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bss-bench-%d.sock" (Unix.getpid ()))

let net_round_trip ?(watch = false) ~socket_path () =
  (try Sys.remove socket_path with Sys_error _ -> ());
  let requests = Bss_service.Request.soak_stream ~seed:7 ~requests:net_requests () in
  let config =
    {
      Bss_net.Server.listen_path = socket_path;
      service =
        {
          Bss_service.Runtime.default_config with
          workers = Some 2;
          seed = 7;
          window_every = (if watch then Some 4 else None);
        };
      quota = None;
      read_timeout_ms = Bss_net.Server.default_read_timeout_ms;
      write_timeout_ms = Bss_net.Server.default_write_timeout_ms;
      drain_after = Some net_requests;
      max_frame_bytes = Bss_net.Server.default_max_frame_bytes;
    }
  in
  let server = Domain.spawn (fun () -> Bss_net.Server.serve config) in
  let client =
    { Bss_net.Client.default_config with connect_path = socket_path; window = 8; rounds = 3; watch }
  in
  let summary = Bss_net.Client.soak client requests in
  ignore (Domain.join server);
  if not (Bss_net.Client.ok summary && summary.Bss_net.Client.answered = net_requests) then
    failwith "net-throughput round trip failed: stream not answered exactly once";
  summary

let percentile p samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0 else a.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let net_entries ~progress ~quick =
  let socket_path = net_socket_path () in
  let runs = if quick then 3 else 5 in
  let last = ref None in
  let ns = measure ~runs (fun () -> last := Some (net_round_trip ~socket_path ())) in
  (try Sys.remove socket_path with Sys_error _ -> ());
  let name = Printf.sprintf "scaling/net-throughput/n=%d" net_requests in
  progress
    (Printf.sprintf "%-28s %12.0f ns/run (%.0f req/s)" name ns
       (1e9 *. float_of_int net_requests /. ns));
  let p99 =
    match !last with
    | None -> 0.0
    | Some s ->
      percentile 0.99
        (List.map (fun r -> Int64.to_float r.Bss_net.Client.solve_ns) s.Bss_net.Client.rows)
  in
  progress (Printf.sprintf "%-28s %12.0f ns solve p99" "net/solve-p99" p99);
  (* the same round trip with the live plane armed and the client
     subscribed to the window stream: the entry is informational (the
     "obs/" prefix is ungated — wall-clock deltas between two noisy
     loopback soaks would flap a gate), but a grossly regressed live
     plane shows up as a ratio shift against the baseline capture *)
  let watched = ref None in
  let watch_ns =
    measure ~runs (fun () -> watched := Some (net_round_trip ~watch:true ~socket_path ()))
  in
  (try Sys.remove socket_path with Sys_error _ -> ());
  (match !watched with
  | Some s when s.Bss_net.Client.watch_windows = 0 ->
    failwith "watch-overhead round trip saw no windows"
  | _ -> ());
  progress
    (Printf.sprintf "%-28s %12.0f ns/run (%+.1f%% vs unwatched)" "obs/watch-overhead" watch_ns
       (100.0 *. ((watch_ns /. ns) -. 1.0)));
  [
    { name; ns_per_run = ns; runs };
    { name = "net/solve-p99"; ns_per_run = p99; runs = 1 };
    { name = "obs/watch-overhead"; ns_per_run = watch_ns; runs };
  ]

let run ?(progress = fun _ -> ()) ~quick () =
  let runs = if quick then 5 else 9 in
  let entries =
    List.map
      (fun (name, f) ->
        let ns = measure ~runs f in
        progress (Printf.sprintf "%-28s %12.0f ns/run" name ns);
        { name; ns_per_run = ns; runs })
      (table1_cases () @ scaling_cases ~quick)
  in
  let entries = entries @ net_entries ~progress ~quick in
  let counters = counter_sweep () in
  progress (Printf.sprintf "counter sweep: %d deterministic counters" (List.length counters));
  { schema = schema_version; quick; meta = [ ("git_rev", git_rev ()) ]; entries; counters }

(* ---------------- JSON round trip ---------------- *)

let to_json t =
  Json.obj
    [
      ("schema", Json.str t.schema);
      ("quick", Json.bool t.quick);
      ("meta", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) t.meta));
      ( "entries",
        Json.arr
          (List.map
             (fun e ->
               Json.obj
                 [
                   ("name", Json.str e.name);
                   ("ns_per_run", Json.float e.ns_per_run);
                   ("runs", Json.int e.runs);
                 ])
             t.entries) );
      ("counters", Json.obj (List.map (fun (k, v) -> (k, Json.int v)) t.counters));
    ]

let of_json s =
  let ( let* ) = Result.bind in
  let* v = Json.parse s in
  let* schema =
    match Json.member "schema" v with
    | Some (Json.Str schema) -> Ok schema
    | _ -> Error "missing \"schema\" field"
  in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "unsupported schema %S (this build reads %S)" schema schema_version)
  in
  let quick = match Json.member "quick" v with Some (Json.Bool b) -> b | _ -> false in
  (* meta is provenance, optional: files captured before it existed
     still parse *)
  let meta =
    match Json.member "meta" v with
    | Some (Json.Obj fields) ->
      List.filter_map (fun (k, mv) -> match mv with Json.Str s -> Some (k, s) | _ -> None) fields
    | _ -> []
  in
  let* entries =
    match Json.member "entries" v with
    | Some (Json.Arr es) ->
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          match (Json.member "name" e, Json.member "ns_per_run" e, Json.member "runs" e) with
          | Some (Json.Str name), Some (Json.Num ns_per_run), Some (Json.Num runs) ->
            Ok ({ name; ns_per_run; runs = int_of_float runs } :: acc)
          | _ -> Error "malformed entry")
        (Ok []) es
      |> Result.map List.rev
    | _ -> Error "missing \"entries\" array"
  in
  let* counters =
    match Json.member "counters" v with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, c) ->
          let* acc = acc in
          match c with
          | Json.Num n -> Ok ((k, int_of_float n) :: acc)
          | _ -> Error ("non-integer counter " ^ k))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "missing \"counters\" object"
  in
  Ok { schema; quick; meta; entries; counters }

(* ---------------- the gate ---------------- *)

let gated name = String.length name >= 8 && String.sub name 0 8 = "scaling/"

let against ?(tolerance = 0.25) ~baseline current =
  let lines = ref [] and failures = ref [] in
  let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let fail fmt = Printf.ksprintf (fun s -> lines := s :: !lines; failures := s :: !failures) fmt in
  (* every current entry gets a delta row; only scaling/* rows gate
     ([table1/*] is informational, entries without a baseline are new) *)
  let rows =
    List.map
      (fun (e : entry) ->
        match List.find_opt (fun (b : entry) -> b.name = e.name) baseline.entries with
        | None -> [ e.name; "-"; Printf.sprintf "%.0f" e.ns_per_run; "-"; "new" ]
        | Some b ->
          let ratio = e.ns_per_run /. b.ns_per_run in
          let verdict =
            if not (gated e.name) then "info"
            else if ratio > 1.0 +. tolerance then begin
              fail "REGRESS %s: %.0f -> %.0f ns (%.2fx > %.2fx allowed)" e.name b.ns_per_run
                e.ns_per_run ratio (1.0 +. tolerance);
              "REGRESS"
            end
            else "ok"
          in
          [
            e.name;
            Printf.sprintf "%.0f" b.ns_per_run;
            Printf.sprintf "%.0f" e.ns_per_run;
            Printf.sprintf "%.2fx" ratio;
            verdict;
          ])
      current.entries
  in
  let table =
    Table.render
      ~header:[ "case"; "baseline ns"; "current ns"; "ratio"; "verdict" ]
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      rows
    ^ "\n"
  in
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k baseline.counters with
      | None -> say "new     counter %s = %d (no baseline)" k v
      | Some bv when bv = v -> say "ok      counter %s = %d" k v
      | Some bv -> fail "DRIFT   counter %s: %d -> %d (deterministic counters must match)" k bv v)
    current.counters;
  { table; lines = List.rev !lines; failures = List.rev !failures }
