(** The benchmark regression gate behind [bss bench].

    Where [bench/main.exe] is the exploratory bechamel harness (full
    statistics, interactive output), this module is the {e gate}: a
    fixed-seed subset of the same table1/scaling cases timed with a
    simple warmup-then-median loop, plus one deterministic counter sweep
    of the instrumented solvers, serialized to schema-versioned JSON so
    two runs can be compared mechanically.

    The comparison policy ([against]) is asymmetric by design:
    - [scaling/*] timings gate with a relative tolerance (default 25%) —
      they carry the paper's near-linear running-time claim, and a
      same-machine before/after comparison at that tolerance survives
      normal scheduler noise;
    - [table1/*] timings are informational only (never gate);
    - telemetry counters must match {e exactly} on the intersection of
      names — they are deterministic per instance and algorithm, so any
      drift is an algorithmic change, not noise. *)

type entry = {
  name : string;  (** [group/case] or [group/case/n=...] *)
  ns_per_run : float;  (** median wall-clock of the timed runs *)
  runs : int;  (** timed runs behind the median (after 1 warmup) *)
}

type t = {
  schema : string;  (** [schema_version] at capture time *)
  quick : bool;  (** scaling stops at n=1000 *)
  meta : (string * string) list;
      (** capture provenance: [("git_rev", <commit sha or "unknown">)];
          optional in the file, so pre-meta captures still parse *)
  entries : entry list;
  counters : (string * int) list;
      (** merged deterministic counters from the instrumented sweep,
          sorted by name *)
}

(** ["bss-bench/1"] — bumped on any change to the JSON layout or the
    case set that would make old files incomparable. *)
val schema_version : string

(** [run ~quick] executes the suite: table1 cases on the fixed n=2000
    instance, scaling cases at n=1000 (plus 4000 and 16000 unless
    [quick]), and the counter sweep. [progress] (default: none) receives
    one line per completed case. *)
val run : ?progress:(string -> unit) -> quick:bool -> unit -> t

val to_json : t -> string

(** [of_json s] rejects unknown schemas and malformed documents with a
    one-line reason. *)
val of_json : string -> (t, string) result

type comparison = {
  table : string;
      (** the delta table: one row per current entry with baseline ns,
          current ns, ratio and verdict ([ok]/[REGRESS] for gated
          [scaling/*] rows, [info] for table1, [new] without baseline) *)
  lines : string list;  (** one human-readable verdict line per counter *)
  failures : string list;  (** subset of checks that failed the gate *)
}

(** [against ~tolerance ~baseline current] compares a fresh capture to a
    baseline file: every [scaling/*] entry present in both must not be
    slower than [baseline * (1 + tolerance)], and every counter name
    present in both must match exactly. [tolerance] is a fraction
    (0.25 = 25%). Entries or counters only on one side are reported but
    never fail — the case set is allowed to grow. *)
val against : ?tolerance:float -> baseline:t -> t -> comparison
