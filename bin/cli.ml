(* bss — command-line interface to the scheduling library.

   Subcommands:
     solve     solve an instance file with a chosen variant and algorithm
     generate  emit a random instance from a workload family
     check     validate an instance file and print its statistics
     fuzz      sweep the conformance oracle over random cases
     serve     run a batch of requests through the fault-tolerant service runtime
     soak      stream a generated workload through the service runtime
     report    analyze a previous run's metrics/trace files offline

   Instance file format (see Instance.of_string):
     m 4
     setups 10 3
     job 0 7
     job 1 2 *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_workloads
open Cmdliner

module Rerror = Bss_resilience.Error

let read_instance path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Instance.of_string s

(* Typed-error boundary: malformed input surfaces as one structured JSON
   object (under --json) or a one-line message, with exit code 2 — never a
   raw OCaml backtrace. *)
let or_invalid_input ~json f =
  try f ()
  with Rerror.Error (Rerror.Invalid_input _ as e) ->
    if json then print_endline (Json.obj [ ("error", Rerror.to_json e) ])
    else prerr_endline ("bss: " ^ Rerror.to_string e);
    exit 2

let variant_conv =
  let parse = function
    | "nonp" | "non-preemptive" -> Ok Variant.Nonpreemptive
    | "pmtn" | "preemptive" -> Ok Variant.Preemptive
    | "split" | "splittable" -> Ok Variant.Splittable
    | s -> Error (`Msg ("unknown variant: " ^ s))
  in
  Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt (Variant.to_string v))

let profile_conv =
  let parse = function
    | "table" -> Ok `Table
    | "json" -> Ok `Json
    | "csv" -> Ok `Csv
    | s -> Error (`Msg ("unknown profile format: " ^ s ^ " (use table, json or csv)"))
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt (match f with `Table -> "table" | `Json -> "json" | `Csv -> "csv") )

let algorithm_conv =
  let parse = function
    | "2" -> Ok Solver.Approx2
    | "3/2" -> Ok Solver.Approx3_2
    | s -> (
      match String.index_opt s '+' with
      | Some _ -> (
        try
          Scanf.sscanf s "3/2+1/%d" (fun d -> Ok (Solver.Approx3_2_eps (Rat.of_ints 1 d)))
        with _ -> Error (`Msg ("bad algorithm: " ^ s)))
      | None -> Error (`Msg ("unknown algorithm: " ^ s ^ " (use 2, 3/2 or 3/2+1/k)")))
  in
  Arg.conv
    ( parse,
      fun fmt a ->
        Format.pp_print_string fmt
          (match a with
          | Solver.Approx2 -> "2"
          | Solver.Approx3_2 -> "3/2"
          | Solver.Approx3_2_eps e -> "3/2+" ^ Rat.to_string e) )

let solve_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let variant =
    Arg.(value & opt variant_conv Variant.Nonpreemptive & info [ "variant"; "v" ] ~doc:"Problem variant: nonp, pmtn or split.")
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Solver.Approx3_2 & info [ "algorithm"; "a" ] ~doc:"Algorithm: 2, 3/2 or 3/2+1/k.")
  in
  let gantt = Arg.(value & flag & info [ "gantt"; "g" ] ~doc:"Render an ASCII Gantt chart.") in
  let svg_out =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG Gantt chart to $(docv).")
  in
  let csv_out =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the schedule as CSV to $(docv).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit one machine-readable JSON object instead of text.") in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some `Table) (some profile_conv) None
      & info [ "profile" ] ~docv:"FMT"
          ~doc:"Record algorithm-interior telemetry and print it as $(docv): table (default), json or csv.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record telemetry and write it as a Chrome trace_event file to $(docv) (open in \
             chrome://tracing or ui.perfetto.dev); composes with --profile.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Solve under a wall-clock deadline: when the search exceeds it, degrade down the \
             resilience ladder instead of running on (0 degrades immediately).")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"TICKS"
          ~doc:"Solve under a step budget: at most $(docv) guarded dual/bound evaluations.")
  in
  let error_brief (e : Rerror.t) =
    match e with
    | Rerror.Budget_exhausted { phase; _ } -> "budget_exhausted at " ^ phase
    | Rerror.Deadline_exceeded { phase; _ } -> "deadline_exceeded at " ^ phase
    | Rerror.Overloaded _ -> "overloaded"
    | Rerror.Internal _ -> "internal"
    | Rerror.Invalid_input _ -> "invalid_input"
  in
  let run file variant algorithm gantt svg_out csv_out json profile trace_out deadline_ms fuel =
    or_invalid_input ~json (fun () ->
        let inst = read_instance file in
        let robust_mode = deadline_ms <> None || fuel <> None in
        let solve_once () =
          if robust_mode then `Robust (Solver.solve_robust ?deadline_ms ?fuel ~algorithm variant inst)
          else `Plain (Solver.solve ~algorithm variant inst)
        in
        let r, obs_report =
          if profile <> None || trace_out <> None then
            let r, report = Bss_obs.Probe.with_recording solve_once in
            (r, Some report)
          else (solve_once (), None)
        in
        let schedule, certificate, guarantee, dual_calls, robust =
          match r with
          | `Plain r ->
            Checker.check_exn variant inst r.Solver.schedule;
            (r.Solver.schedule, Some r.Solver.certificate, Some r.Solver.guarantee, r.Solver.dual_calls, None)
          | `Robust r ->
            (* solve_robust already checker-verified its result *)
            (r.Solver.schedule, r.Solver.certificate, r.Solver.guarantee, r.Solver.dual_calls, Some r)
        in
        let lb = Lower_bounds.lower_bound variant inst in
        if json then begin
          let metrics = Metrics.compute inst schedule in
          let rat r = Json.str (Rat.to_string r) in
          let rat_opt = function Some r -> rat r | None -> "null" in
          let fields =
            [
              ("variant", Json.str (Variant.to_string variant));
              ("algorithm", Json.str (Solver.algorithm_name ~algorithm variant));
              ("makespan", rat metrics.Metrics.makespan);
              ("certificate", rat_opt certificate);
              ("guarantee", rat_opt guarantee);
              ("lower_bound", rat lb);
              ("ratio_vs_lower_bound", Json.float (Metrics.ratio_vs lb metrics));
              ("dual_calls", Json.int dual_calls);
              ( "metrics",
                Json.obj
                  [
                    ("total_load", rat metrics.Metrics.total_load);
                    ("total_setup_time", rat metrics.Metrics.total_setup_time);
                    ("setup_count", Json.int metrics.Metrics.setup_count);
                    ("preemption_count", Json.int metrics.Metrics.preemption_count);
                    ("machines_used", Json.int metrics.Metrics.machines_used);
                    ("idle_within_makespan", rat metrics.Metrics.idle_within_makespan);
                  ] );
            ]
          in
          let fields =
            match robust with
            | None -> fields
            | Some r ->
              fields
              @ [
                  ( "resilience",
                    Json.obj
                      [
                        ("rung", Json.str r.Solver.rung);
                        ("degraded", Json.bool (r.Solver.attempts <> []));
                        ("fuel_spent", Json.int r.Solver.fuel_spent);
                        ( "attempts",
                          Json.arr
                            (List.map
                               (fun (a : Solver.attempt) ->
                                 Json.obj
                                   [ ("rung", Json.str a.Solver.rung); ("error", Rerror.to_json a.Solver.error) ])
                               r.Solver.attempts) );
                      ] );
                ]
          in
          let fields =
            match (obs_report, profile) with
            | Some report, Some _ -> fields @ [ ("profile", Bss_obs.Render.json report) ]
            | _ -> fields
          in
          print_endline (Json.obj fields)
        end
        else begin
          Printf.printf "%s / %s\n" (Variant.to_string variant) (Solver.algorithm_name ~algorithm variant);
          Printf.printf "makespan    %s\n" (Rat.to_string (Schedule.makespan schedule));
          (match (certificate, guarantee) with
          | Some c, Some g ->
            Printf.printf "certificate %s (makespan <= %s * OPT)\n" (Rat.to_string c) (Rat.to_string g)
          | _ -> Printf.printf "certificate none (no certified rung completed)\n");
          Printf.printf "lower bound %s\n" (Rat.to_string lb);
          Printf.printf "dual calls  %d\n" dual_calls;
          (match robust with
          | None -> ()
          | Some r ->
            Printf.printf "rung        %s\n" r.Solver.rung;
            List.iter
              (fun (a : Solver.attempt) ->
                Printf.printf "fallback    %s failed: %s\n" a.Solver.rung (error_brief a.Solver.error))
              r.Solver.attempts);
          (match (obs_report, profile) with
          | Some report, Some fmt ->
            print_string
              (match fmt with
              | `Table -> Bss_obs.Render.table report
              | `Json -> Bss_obs.Render.json report ^ "\n"
              | `Csv -> Bss_obs.Render.csv report)
          | _ -> ())
        end;
        if gantt then print_endline (Render.gantt ~width:76 inst schedule);
        let write path content =
          let oc = open_out path in
          output_string oc content;
          close_out oc
        in
        Option.iter (fun path -> write path (Render.svg inst schedule)) svg_out;
        Option.iter (fun path -> write path (Trace.to_csv inst schedule)) csv_out;
        match (trace_out, obs_report) with
        | Some path, Some report -> write path (Bss_obs.Render.chrome_trace report)
        | _ -> ())
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve an instance file.")
    Term.(
      const run $ file $ variant $ algorithm $ gantt $ svg_out $ csv_out $ json $ profile $ trace_out
      $ deadline_ms $ fuel)

let generate_cmd =
  let family =
    Arg.(value & opt string "uniform" & info [ "family"; "f" ] ~doc:"Workload family (see DESIGN.md).")
  in
  let m = Arg.(value & opt int 8 & info [ "machines"; "m" ] ~doc:"Machine count.") in
  let n = Arg.(value & opt int 64 & info [ "jobs"; "n" ] ~doc:"Approximate job count.") in
  let seed = Arg.(value & opt int 0 & info [ "seed"; "s" ] ~doc:"PRNG seed.") in
  let run family m n seed =
    match Generator.by_name family with
    | spec ->
      let inst = spec.Generator.generate (Prng.create seed) ~m ~n in
      print_string (Instance.to_string inst)
    | exception Not_found ->
      prerr_endline
        ("unknown family; available: " ^ String.concat ", " (List.map (fun s -> s.Generator.name) Generator.all));
      exit 1
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a random instance.") Term.(const run $ family $ m $ n $ seed)

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let run file =
    or_invalid_input ~json:false (fun () ->
        let inst = read_instance file in
        print_endline (Instance.describe inst);
        List.iter
          (fun v ->
            Printf.printf "%-15s T_min = %s\n" (Variant.to_string v)
              (Rat.to_string (Lower_bounds.t_min v inst)))
          Variant.all)
  in
  Cmd.v (Cmd.info "check" ~doc:"Validate an instance file and print statistics.") Term.(const run $ file)

let fuzz_cmd =
  let open Bss_oracle in
  let seed = Arg.(value & opt int 0 & info [ "seed"; "s" ] ~doc:"Master PRNG seed.") in
  let cases = Arg.(value & opt int 100 & info [ "cases"; "n" ] ~doc:"Number of cases to sweep.") in
  let family =
    Arg.(value & opt_all string [] & info [ "family"; "f" ] ~doc:"Restrict to a workload family (repeatable; default all).")
  in
  let variant =
    Arg.(value & opt_all variant_conv [] & info [ "variant"; "v" ] ~doc:"Restrict to a problem variant (repeatable; default all).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"CASE"
          ~doc:
            "Re-run one case id (family:index) verbosely instead of sweeping; @FILE replays every id \
             recorded in a corpus file.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Sweep on one domain recording telemetry; print per-family counter sums instead of the stats table.")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Chaos sweep: inject deterministic seeded faults into the algorithm interiors and assert \
             the degradation ladder contains every one of them (single domain).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:
            "Append the replay ids of failing, crashing or chaos-degraded cases to $(docv) for later \
             --replay @$(docv).")
  in
  let read_corpus path =
    let ic = open_in path in
    let ids = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then ids := line :: !ids
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !ids
  in
  (* merge + atomic replace (temp file + rename, the journal's helper): a
     crash mid-write can never truncate or corrupt an existing corpus *)
  let append_corpus path ids =
    let existing = if Sys.file_exists path then read_corpus path else [] in
    let merged = List.sort_uniq compare (existing @ ids) in
    Atomic_file.write path (String.concat "" (List.map (fun id -> id ^ "\n") merged));
    Printf.printf "corpus: recorded %d id%s in %s\n" (List.length ids)
      (if List.length ids = 1 then "" else "s")
      path
  in
  let run seed cases family variant replay profile chaos corpus =
    if cases < 0 then begin
      prerr_endline "cases must be >= 0";
      exit 1
    end;
    let families =
      match family with
      | [] -> Generator.all
      | names ->
        List.map
          (fun name ->
            match Generator.by_name name with
            | spec -> spec
            | exception Not_found ->
              prerr_endline
                ("unknown family; available: "
                ^ String.concat ", " (List.map (fun s -> s.Generator.name) Generator.all));
              exit 1)
          names
    in
    let variants = match variant with [] -> Variant.all | vs -> vs in
    let config = { Harness.default_config with Harness.master = seed; cases; families; variants } in
    let parse_case id =
      try Case.of_id ~master:seed id
      with Invalid_argument msg ->
        prerr_endline msg;
        exit 1
    in
    match replay with
    | Some spec when String.length spec > 1 && spec.[0] = '@' ->
      (* corpus round-trip: replay every recorded id *)
      let path = String.sub spec 1 (String.length spec - 1) in
      let ids = read_corpus path in
      Printf.printf "replaying %d corpus case%s from %s\n" (List.length ids)
        (if List.length ids = 1 then "" else "s")
        path;
      let all_ok =
        List.fold_left
          (fun acc id ->
            let txt, ok = Harness.replay config (parse_case id) in
            print_string txt;
            acc && ok)
          true ids
      in
      if not all_ok then exit 1
    | Some id ->
      let txt, ok = Harness.replay config (parse_case id) in
      print_string txt;
      if not ok then exit 1
    | None when chaos <> None ->
      (* chaos plans are process-global, so the sweep is single-domain *)
      let chaos = Option.get chaos in
      Printf.printf "fuzz --chaos: seed=%d chaos=%d cases=%d families=%s variants=%s\n" seed chaos cases
        (String.concat "," (List.map (fun s -> s.Generator.name) families))
        (String.concat "," (List.map Variant.to_string variants));
      let r = Harness.chaos_sweep config ~chaos in
      print_string (Harness.render_chaos r);
      Option.iter
        (fun path ->
          append_corpus path
            (List.map Case.id r.Harness.degraded @ List.map (fun (c, _) -> Case.id c) r.Harness.chaos_crashes))
        corpus;
      if r.Harness.chaos_crashes <> [] || r.Harness.chaos_infeasible <> [] then exit 1
    | None when profile ->
      (* The sink is domain-safe (per-domain collectors, deterministic
         merge), but attribution here is per family: each case gets its
         own recording, merged into its family's report below, so the
         sweep iterates the cases itself instead of fanning out. *)
      let config = { config with Harness.domains = Some 1 } in
      Printf.printf "fuzz --profile: seed=%d cases=%d families=%s variants=%s\n" seed cases
        (String.concat "," (List.map (fun s -> s.Generator.name) families))
        (String.concat "," (List.map Variant.to_string variants));
      let by_family = Hashtbl.create 8 in
      let failed = ref 0 in
      for i = 0 to cases - 1 do
        let case = Harness.case_of_index config i in
        let outcomes, report =
          Bss_obs.Probe.with_recording (fun () -> Harness.run_case config case)
        in
        List.iter (function _, Property.Fail _ -> incr failed | _ -> ()) outcomes;
        let fam = case.Case.family in
        let prev = Option.value ~default:Bss_obs.Report.empty (Hashtbl.find_opt by_family fam) in
        Hashtbl.replace by_family fam (Bss_obs.Report.merge prev report)
      done;
      let fams = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_family []) in
      let rows =
        List.concat_map
          (fun fam ->
            let report = Hashtbl.find by_family fam in
            List.map
              (fun (name, v) -> [ fam; name; string_of_int v ])
              report.Bss_obs.Report.counters)
          fams
      in
      Table.print ~header:[ "family"; "counter"; "total" ] ~align:[ Table.Left; Table.Left; Table.Right ] rows;
      Printf.printf "profile: %d cases, %d property failures\n" cases !failed;
      if !failed > 0 then exit 1
    | None ->
      Printf.printf "fuzz: seed=%d cases=%d families=%s variants=%s\n" seed cases
        (String.concat "," (List.map (fun s -> s.Generator.name) families))
        (String.concat "," (List.map Variant.to_string variants));
      let report = Harness.run config in
      print_string (Harness.render report);
      Option.iter
        (fun path ->
          append_corpus path
            (List.map (fun (f : Harness.failure) -> Case.id f.Harness.case) report.Harness.failures
            @ List.map (fun (c : Harness.crash) -> Case.id c.Harness.case) report.Harness.crashes))
        corpus;
      if report.Harness.failures <> [] || report.Harness.crashes <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Sweep the conformance oracle over deterministic random cases.")
    Term.(const run $ seed $ cases $ family $ variant $ replay $ profile $ chaos $ corpus)

(* ---------------- the batch-service runtime ---------------- *)

module Service = Bss_service
module Net = Bss_net

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load_slo path =
  match Bss_obs.Slo.of_string (read_file path) with
  | Ok spec -> spec
  | Error msg ->
    prerr_endline (Printf.sprintf "bss: --slo %s: %s" path msg);
    exit 2

(* shared flags of `bss serve` and `bss soak` *)
let service_config_term =
  let open Service.Runtime in
  let queue =
    Arg.(value & opt int default_config.queue_capacity
         & info [ "queue" ] ~docv:"N" ~doc:"Bounded work-queue capacity (admission beyond it is rejected).")
  in
  let burst =
    Arg.(value & opt (some int) None
         & info [ "burst" ] ~docv:"N"
             ~doc:"Admissions attempted per dispatch wave (default: the queue capacity). A burst above \
                   the capacity exercises backpressure: the excess is rejected with a typed error.")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (default: the runtime's recommendation; chaos forces 1).")
  in
  let retries =
    Arg.(value & opt int default_config.retries
         & info [ "retries" ] ~docv:"N" ~doc:"Retry attempts per request beyond the first, with exponential backoff.")
  in
  let breaker_k =
    Arg.(value & opt int default_config.breaker_k
         & info [ "breaker-k" ] ~docv:"K" ~doc:"Consecutive ladder failures that trip a variant's circuit breaker.")
  in
  let breaker_cooldown =
    Arg.(value & opt int default_config.breaker_cooldown
         & info [ "breaker-cooldown" ] ~docv:"N"
             ~doc:"Requests routed to the certified 2-approx rung before a half-open probe.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request wall-clock budget (degrades down the resilience ladder).")
  in
  let fuel =
    Arg.(value & opt (some int) None
         & info [ "fuel" ] ~docv:"TICKS" ~doc:"Per-request step budget: guarded dual/bound evaluations.")
  in
  let checkpoint_every =
    Arg.(value & opt int default_config.checkpoint_every
         & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Journal flush cadence, in completed requests.")
  in
  let chaos =
    Arg.(value & opt (some int) None
         & info [ "chaos" ] ~docv:"SEED"
             ~doc:"Inject deterministic seeded faults into the service layer (admission, journal flush, \
                   breaker probe, solve envelope) and the algorithm interiors (single worker).")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Master seed (backoff jitter; soak stream).") in
  let metrics_every =
    Arg.(value & opt (some int) None
         & info [ "metrics-every" ] ~docv:"N"
             ~doc:"Emit a one-line JSON metrics record (schema bss-metrics/1: live counters + latency \
                   histograms, plus a rolling SLO window under --slo) to stdout after every $(docv) \
                   completed requests.")
  in
  let window_every =
    Arg.(value & opt (some int) None
         & info [ "window-every" ] ~docv:"N"
             ~doc:"Arm the live telemetry plane (schema bss-watch/1): close one time-series window \
                   every $(docv) processed requests — exact counter/histogram deltas, breaker-state \
                   gauges and EWMA anomaly alerts. Under `bss serve` the windows feed the stats/watch \
                   wire frames (`bss top`); under `bss soak` they only arm the detectors.")
  in
  let trace_sample =
    Arg.(value & opt (some int) None
         & info [ "trace-sample" ] ~docv:"K"
             ~doc:"Enable request-scoped tracing and keep a seeded reservoir of $(docv) uneventful \
                   traces besides the always-kept error/degraded/retried/exemplar ones (implied with \
                   default 8 by --trace-out).")
  in
  let slo =
    Arg.(value & opt (some file) None
         & info [ "slo" ] ~docv:"FILE"
             ~doc:"Evaluate the bss-slo/1 objectives in $(docv) (rolling windows per metrics emission, \
                   cumulative verdict in the summary) and exit nonzero when the final verdict fails.")
  in
  let build queue burst workers retries breaker_k breaker_cooldown deadline_ms fuel checkpoint_every chaos seed metrics_every window_every trace_sample slo =
    let slo = Option.map load_slo slo in
    {
      default_config with
      queue_capacity = queue;
      burst = Option.value burst ~default:queue;
      workers;
      retries;
      breaker_k;
      breaker_cooldown;
      deadline_ms;
      fuel;
      checkpoint_every;
      chaos;
      seed;
      metrics_every;
      window_every;
      trace_sample;
      slo;
    }
  in
  Term.(
    const build $ queue $ burst $ workers $ retries $ breaker_k $ breaker_cooldown $ deadline_ms $ fuel
    $ checkpoint_every $ chaos $ seed $ metrics_every $ window_every $ trace_sample $ slo)

(* SIGINT/SIGTERM request a graceful drain: stop admitting, finish the
   in-flight wave, flush the journal, exit 3. *)
let install_drain_signals () =
  let stop = ref false in
  let handler _ = stop := true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handler) with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handler) with Invalid_argument _ -> ());
  fun () -> !stop

let service_exit (s : Service.Runtime.summary) ~strict =
  if s.Service.Runtime.interrupted then exit 3;
  if s.Service.Runtime.dropped > 0 || s.Service.Runtime.journal_dirty > 0 then exit 1;
  (* the SLO gate is hard regardless of strictness: a soak that meets
     its objectives passes even with rejections budgeted for *)
  (match s.Service.Runtime.slo_verdict with
  | Some v when not v.Bss_obs.Slo.ok -> exit 1
  | _ -> ());
  if strict && (s.Service.Runtime.rejected > 0 || s.Service.Runtime.aborted > 0) then exit 1

let service_profile_term =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Record service telemetry (queue depth, retries, breaker transitions, latency \
           histograms) and print it after the summary. Collection is per-domain and the merge \
           is deterministic, so the full worker pool keeps running and counters are \
           reproducible across worker counts.")

let service_trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record service telemetry and write it as a Chrome trace_event file to $(docv) — one \
           trace process per worker domain; composes with --profile.")

(* Each domain records into its own DLS collector and the recording
   merges them deterministically on exit, so profiling no longer pins
   the worker pool to one domain. [--trace-out] implies request-scoped
   tracing (reservoir 8) so the file carries the sampled span trees
   alongside the aggregated flamegraph. *)
let with_service_profile ~profile ~trace_out ~json config run =
  let config =
    if trace_out <> None && config.Service.Runtime.trace_sample = None then
      { config with Service.Runtime.trace_sample = Some 8 }
    else config
  in
  if profile || trace_out <> None then begin
    let summary, report = Bss_obs.Probe.with_recording (fun () -> run config) in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (Bss_obs.Render.chrome_trace ~traces:summary.Service.Runtime.traces report);
        close_out oc)
      trace_out;
    ( summary,
      if profile then
        Some (if json then Bss_obs.Render.json report ^ "\n" else Bss_obs.Render.table report)
      else None )
  end
  else (run config, None)

(* The deterministic slice of a socket-server run: connection/frame/shed
   counters, completion totals, rung histogram and journal state — no
   latencies, waves or queue peaks, which depend on how the kernel
   batches reads. *)
let render_net_text (s : Net.Server.summary) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "net: conns accepted=%d refused=%d evicted=%d closed=%d\n" s.Net.Server.accepted
       s.Net.Server.refused s.Net.Server.evicted s.Net.Server.closed);
  Buffer.add_string b
    (Printf.sprintf "net: frames read=%d malformed=%d written=%d dropped=%d answers=%d dedup=%d\n"
       s.Net.Server.frames_read s.Net.Server.frames_malformed s.Net.Server.frames_written
       s.Net.Server.frames_dropped s.Net.Server.answers s.Net.Server.dedup_hits);
  if s.Net.Server.shed_total > 0 then begin
    Buffer.add_string b (Printf.sprintf "net: shed total=%d" s.Net.Server.shed_total);
    List.iter
      (fun (tenant, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" tenant n))
      s.Net.Server.shed;
    Buffer.add_char b '\n'
  end;
  let sv = s.Net.Server.service in
  Buffer.add_string b
    (Printf.sprintf "service: completed=%d checkpointed=%d rejected=%d aborted=%d retries=%d\n"
       sv.Service.Runtime.completed sv.Service.Runtime.checkpointed sv.Service.Runtime.rejected
       sv.Service.Runtime.aborted sv.Service.Runtime.retries);
  if sv.Service.Runtime.rungs <> [] then begin
    Buffer.add_string b "rungs:";
    List.iter
      (fun (rung, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" rung n))
      sv.Service.Runtime.rungs;
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b
    (Printf.sprintf "journal: rotations=%d dirty=%d\n" s.Net.Server.rotations
       sv.Service.Runtime.journal_dirty);
  Buffer.add_string b (Printf.sprintf "drain: %s\n" s.Net.Server.drain_reason);
  Buffer.contents b

let render_net_json (s : Net.Server.summary) =
  let module Json = Bss_util.Json in
  Json.obj
    [
      ("schema", Json.str "bss-net/1");
      ( "net",
        Json.obj
          [
            ("accepted", Json.int s.Net.Server.accepted);
            ("refused", Json.int s.Net.Server.refused);
            ("evicted", Json.int s.Net.Server.evicted);
            ("closed", Json.int s.Net.Server.closed);
            ("frames_read", Json.int s.Net.Server.frames_read);
            ("frames_malformed", Json.int s.Net.Server.frames_malformed);
            ("frames_written", Json.int s.Net.Server.frames_written);
            ("frames_dropped", Json.int s.Net.Server.frames_dropped);
            ("answers", Json.int s.Net.Server.answers);
            ("dedup_hits", Json.int s.Net.Server.dedup_hits);
            ("shed_total", Json.int s.Net.Server.shed_total);
            ( "shed",
              Json.obj (List.map (fun (t, n) -> (t, Json.int n)) s.Net.Server.shed) );
            ("rotations", Json.int s.Net.Server.rotations);
            ("drain", Json.str s.Net.Server.drain_reason);
          ] );
      ("service", Service.Runtime.render_json s.Net.Server.service);
    ]

let serve_cmd =
  let batch =
    Arg.(value & opt (some file) None
         & info [ "batch" ] ~docv:"FILE" ~doc:"Batch request file: one request per line (see docs/service.md).")
  in
  let listen =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"SOCKET"
             ~doc:"Serve the bss-net/1 line protocol on a Unix-domain socket at $(docv) instead of \
                   running a batch file. Per-tenant token-bucket quotas shed overload before the \
                   bounded queue; SIGINT/SIGTERM drain gracefully (stop accepting, finish in-flight \
                   requests, notify clients, flush the journal). Exactly one of $(b,--batch) or \
                   $(b,--listen) is required.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Checkpoint journal path (default with --batch: $(b,BATCH).journal; with --listen \
                   the journal is off unless given).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ] ~doc:"Restore completions from the journal and re-solve only the rest.")
  in
  let rotate_every =
    Arg.(value & opt (some int) None
         & info [ "rotate-every" ] ~docv:"N"
             ~doc:"Rotate the journal after every $(docv) newly flushed completions: the active file \
                   is sealed into a numbered segment atomically between flushes, and --resume reads \
                   segments plus the active tail (zero-downtime rotation).")
  in
  let tenant_burst =
    Arg.(value & opt (some int) None
         & info [ "tenant-burst" ] ~docv:"N"
             ~doc:"Arm per-tenant admission quotas (--listen only): each tenant's token bucket \
                   starts full at $(docv) tokens and an admission takes one; empty buckets shed \
                   with a typed overload answer.")
  in
  let tenant_rate =
    Arg.(value & opt int 0
         & info [ "tenant-rate" ] ~docv:"N"
             ~doc:"Tokens refilled per refill step, clamped at the burst (0 = no refill: a hard \
                   per-run budget per tenant).")
  in
  let tenant_refill_every =
    Arg.(value & opt int 1
         & info [ "tenant-refill-every" ] ~docv:"N"
             ~doc:"Refill step cadence, counted in admission attempts across all tenants — \
                   deterministic, unlike wall-clock refill.")
  in
  let drain_after =
    Arg.(value & opt (some int) None
         & info [ "drain-after" ] ~docv:"N"
             ~doc:"Drain after $(docv) answers have been queued to clients — deterministic \
                   shutdown for scripted runs (--listen only).")
  in
  let read_timeout_ms =
    Arg.(value & opt int Net.Server.default_read_timeout_ms
         & info [ "read-timeout-ms" ] ~docv:"MS"
             ~doc:"Evict a connection whose partial frame has stalled this long (0 = never).")
  in
  let write_timeout_ms =
    Arg.(value & opt int Net.Server.default_write_timeout_ms
         & info [ "write-timeout-ms" ] ~docv:"MS"
             ~doc:"Evict a connection whose queued responses have stalled this long (0 = never).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit one machine-readable JSON object instead of text.") in
  let run_batch config batch journal resume json profile trace_out =
    or_invalid_input ~json (fun () ->
        let requests = Service.Request.of_batch_string (read_file batch) in
        let journal_path = Option.value journal ~default:(batch ^ ".journal") in
        let journal =
          if resume then Service.Journal.load journal_path else Service.Journal.fresh journal_path
        in
        let should_stop = install_drain_signals () in
        if not json then
          Printf.printf "serve: batch=%s requests=%d queue=%d workers=%s resume=%b\n" batch
            (List.length requests) config.Service.Runtime.queue_capacity
            (match config.Service.Runtime.workers with
            | Some w -> string_of_int w
            | None -> if config.Service.Runtime.chaos <> None then "1" else "auto")
            resume;
        let summary, report =
          with_service_profile ~profile ~trace_out ~json config (fun config ->
              Service.Runtime.run ~journal ~should_stop ~emit_metrics:print_endline config requests)
        in
        if json then print_endline (Service.Runtime.render_json summary)
        else print_string (Service.Runtime.render_text summary);
        Option.iter print_string report;
        service_exit summary ~strict:true)
  in
  let run_listen config listen journal resume rotate_every quota drain_after read_timeout_ms
      write_timeout_ms json profile trace_out =
    or_invalid_input ~json (fun () ->
        (* Signals first: a supervisor may SIGTERM a server that is still
           loading its journal, and that must already mean drain. *)
        let should_stop = install_drain_signals () in
        let journal =
          Option.map
            (fun path ->
              if resume then Service.Journal.load ?rotate_every path
              else Service.Journal.fresh ?rotate_every path)
            journal
        in
        let net_config =
          {
            Net.Server.listen_path = listen;
            service = config;
            quota;
            read_timeout_ms;
            write_timeout_ms;
            drain_after;
            max_frame_bytes = Net.Server.default_max_frame_bytes;
          }
        in
        let log line = if not json then print_endline line in
        let config =
          if trace_out <> None && config.Service.Runtime.trace_sample = None then
            { config with Service.Runtime.trace_sample = Some 8 }
          else config
        in
        let net_config = { net_config with Net.Server.service = config } in
        let serve () =
          Net.Server.serve ?journal ~should_stop ~emit_metrics:print_endline ~log net_config
        in
        let summary, report =
          if profile || trace_out <> None then begin
            let s, report = Bss_obs.Probe.with_recording serve in
            Option.iter
              (fun path ->
                let oc = open_out path in
                output_string oc
                  (Bss_obs.Render.chrome_trace
                     ~traces:s.Net.Server.service.Service.Runtime.traces report);
                close_out oc)
              trace_out;
            ( s,
              if profile then
                Some (if json then Bss_obs.Render.json report ^ "\n" else Bss_obs.Render.table report)
              else None )
          end
          else (serve (), None)
        in
        if json then print_endline (render_net_json summary)
        else print_string (render_net_text summary);
        Option.iter print_string report;
        (match summary.Net.Server.service.Service.Runtime.slo_verdict with
        | Some v when not v.Bss_obs.Slo.ok -> exit 1
        | _ -> ());
        if summary.Net.Server.service.Service.Runtime.journal_dirty > 0 then exit 1)
  in
  let run config batch listen journal resume rotate_every tenant_burst tenant_rate
      tenant_refill_every drain_after read_timeout_ms write_timeout_ms json profile trace_out =
    match (batch, listen) with
    | Some batch, None -> run_batch config batch journal resume json profile trace_out
    | None, Some listen ->
      let quota =
        Option.map
          (fun burst ->
            { Net.Quota.rate = tenant_rate; burst; refill_every = tenant_refill_every })
          tenant_burst
      in
      run_listen config listen journal resume rotate_every quota drain_after read_timeout_ms
        write_timeout_ms json profile trace_out
    | _ ->
      prerr_endline "bss serve: exactly one of --batch or --listen is required";
      exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a batch of solve requests through the fault-tolerant service runtime, or serve \
             the bss-net/1 socket protocol with --listen.")
    Term.(
      const run $ service_config_term $ batch $ listen $ journal $ resume $ rotate_every
      $ tenant_burst $ tenant_rate $ tenant_refill_every $ drain_after $ read_timeout_ms
      $ write_timeout_ms $ json $ service_profile_term $ service_trace_term)

let soak_cmd =
  let requests =
    Arg.(value & opt int 200 & info [ "requests"; "n" ] ~docv:"N" ~doc:"Generated requests to stream.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE" ~doc:"Checkpoint journal path (enables kill-and-resume for long soaks).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ] ~doc:"Restore completions from the journal and re-solve only the rest.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit one machine-readable JSON object instead of text.") in
  let run config requests journal resume json profile trace_out =
    let stream = Service.Request.soak_stream ~seed:config.Service.Runtime.seed ~requests () in
    let journal =
      Option.map
        (fun path -> if resume then Service.Journal.load path else Service.Journal.fresh path)
        journal
    in
    let should_stop = install_drain_signals () in
    if not json then
      Printf.printf "soak: seed=%d requests=%d queue=%d burst=%d chaos=%s\n"
        config.Service.Runtime.seed requests config.Service.Runtime.queue_capacity
        config.Service.Runtime.burst
        (match config.Service.Runtime.chaos with None -> "off" | Some c -> string_of_int c);
    let summary, report =
      with_service_profile ~profile ~trace_out ~json config (fun config ->
          Service.Runtime.run ?journal ~should_stop ~emit_metrics:print_endline config stream)
    in
    if json then print_endline (Service.Runtime.render_json summary)
    else print_string (Service.Runtime.render_text summary);
    Option.iter print_string report;
    service_exit summary ~strict:false
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Stream a generated workload through the service runtime, optionally under chaos.")
    Term.(
      const run $ service_config_term $ requests $ journal $ resume $ json $ service_profile_term
      $ service_trace_term)

let netsoak_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"SOCKET" ~doc:"The serving socket path (bss serve --listen).")
  in
  let requests =
    Arg.(value & opt int 50 & info [ "requests"; "n" ] ~docv:"N" ~doc:"Generated requests to stream.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Stream seed (same stream as bss soak).") in
  let tenants =
    Arg.(value & opt string ""
         & info [ "tenants" ] ~docv:"A,B,C"
             ~doc:"Round-robin the stream across these tenant names (default: the default tenant). \
                   Tenancy routes sharding and quotas only — realized instances are unchanged.")
  in
  let window =
    Arg.(value & opt int Net.Client.default_config.Net.Client.window
         & info [ "window" ] ~docv:"N" ~doc:"Max in-flight requests per connection.")
  in
  let rounds =
    Arg.(value & opt int 1
         & info [ "rounds" ] ~docv:"N"
             ~doc:"Max connection rounds; each reconnect re-sends only unanswered ids, so a \
                   killed-and-resumed server must answer every id exactly once across rounds.")
  in
  let connect_timeout_ms =
    Arg.(value & opt int Net.Client.default_config.Net.Client.connect_timeout_ms
         & info [ "connect-timeout-ms" ] ~docv:"MS"
             ~doc:"Per-round budget to reach the socket (retrying inside it, for servers still \
                   starting or restarting).")
  in
  let idle_timeout_ms =
    Arg.(value & opt int Net.Client.default_config.Net.Client.idle_timeout_ms
         & info [ "idle-timeout-ms" ] ~docv:"MS" ~doc:"Give up a round when the server sends nothing this long.")
  in
  let slo =
    Arg.(value & opt (some file) None
         & info [ "slo" ] ~docv:"FILE"
             ~doc:"Evaluate the bss-slo/1 objectives in $(docv) against the answered stream — \
                   latency histograms rebuilt from the durations in result frames — and exit \
                   nonzero when the verdict fails.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the per-request result table (id, status, rung, makespan; stream order) \
                   to $(docv) — the artifact CI joins across kill-and-resume for bit-identity.")
  in
  let frame =
    Arg.(value & opt (some string) None
         & info [ "frame" ] ~docv:"RAW"
             ~doc:"Send this single raw line instead of a stream, print the first reply line, and \
                   exit — the protocol probe for scripted tests.")
  in
  let watch =
    Arg.(value & flag
         & info [ "watch" ]
             ~doc:"Also subscribe each connection to the live bss-watch/1 window stream (the server \
                   must run with --window-every): windows interleave with result frames and are \
                   counted in the summary — the live-plane overhead soak.")
  in
  let run connect requests seed tenants window rounds connect_timeout_ms idle_timeout_ms slo out
      frame watch =
    match frame with
    | Some raw -> (
      match Net.Client.send_raw ~path:connect ~connect_timeout_ms ~idle_timeout_ms raw with
      | Ok line -> print_endline line
      | Error msg ->
        prerr_endline ("bss netsoak: " ^ msg);
        exit 1)
    | None ->
      let slo = Option.map load_slo slo in
      let tenants = List.filter (fun t -> t <> "") (String.split_on_char ',' tenants) in
      let stream = Service.Request.soak_stream ~tenants ~seed ~requests () in
      let summary =
        Net.Client.soak
          {
            Net.Client.connect_path = connect;
            window;
            rounds;
            connect_timeout_ms;
            idle_timeout_ms;
            slo;
            watch;
          }
          stream
      in
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Net.Client.render_rows summary);
          close_out oc)
        out;
      print_string (Net.Client.render_summary summary);
      if not (Net.Client.ok summary) then exit 1
  in
  Cmd.v
    (Cmd.info "netsoak"
       ~doc:"Drive a seeded request stream at a bss serve --listen socket, reconnecting until \
             every id is answered exactly once, with an optional SLO gate over the answers.")
    Term.(
      const run $ connect $ requests $ seed $ tenants $ window $ rounds $ connect_timeout_ms
      $ idle_timeout_ms $ slo $ out $ frame $ watch)

let top_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"SOCKET"
             ~doc:"The serving socket path (the server must run with --window-every).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Re-emit the raw bss-watch/1 window lines verbatim instead of rendering the \
                   dashboard — the machine-readable stream CI parses.")
  in
  let windows =
    Arg.(value & opt (some int) None
         & info [ "windows" ] ~docv:"N"
             ~doc:"Stop after $(docv) windows (default: stream until the server's final window or \
                   shutdown).")
  in
  let connect_timeout_ms =
    Arg.(value & opt int Net.Top.default_config.Net.Top.connect_timeout_ms
         & info [ "connect-timeout-ms" ] ~docv:"MS"
             ~doc:"Budget to reach the socket (retrying inside it).")
  in
  let idle_timeout_ms =
    Arg.(value & opt int Net.Top.default_config.Net.Top.idle_timeout_ms
         & info [ "idle-timeout-ms" ] ~docv:"MS"
             ~doc:"Give up when the server pushes nothing this long.")
  in
  let run connect json windows connect_timeout_ms idle_timeout_ms =
    let clear = (not json) && (try Unix.isatty Unix.stdout with _ -> false) in
    match
      Net.Top.run
        {
          Net.Top.connect_path = connect;
          connect_timeout_ms;
          idle_timeout_ms;
          max_windows = windows;
          json;
          clear;
        }
    with
    | Ok s ->
      if not json then
        Printf.printf "top: windows=%d alerts=%d final=%b\n" s.Net.Top.windows s.Net.Top.alerts
          s.Net.Top.final_seen
    | Error msg ->
      prerr_endline ("bss top: " ^ msg);
      exit 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Watch a serving socket's live telemetry window stream as a refreshing dashboard \
             (queue, per-variant latency quantiles, breaker states, anomaly alerts), or as raw \
             bss-watch/1 JSON lines with --json.")
    Term.(const run $ connect $ json $ windows $ connect_timeout_ms $ idle_timeout_ms)

(* ---------------- offline run analysis ---------------- *)

let report_cmd =
  let module Offline = Bss_obs.Offline in
  let metrics =
    Arg.(value & opt (some file) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"A captured metrics stream: --metrics-every JSONL lines and/or a --json run summary \
                   (schema bss-metrics/1; interleaved human text is skipped; unknown schemas are \
                   rejected).")
  in
  let against =
    Arg.(value & opt (some file) None
         & info [ "against" ] ~docv:"FILE"
             ~doc:"A second metrics stream to diff counters against (baseline/current/delta).")
  in
  let trace =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"A --trace-out Chrome trace file: list the slowest request traces with their \
                   critical-path breakdown (queue vs solve vs retry vs journal).")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc:"Slowest traces to list (default 5).")
  in
  let read path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let run metrics against trace top =
    if metrics = None && trace = None then begin
      prerr_endline "bss report: nothing to analyze (pass --metrics and/or --trace)";
      exit 2
    end;
    let load_points path =
      match Offline.parse_metrics (read path) with
      | Ok points -> points
      | Error msg ->
        prerr_endline (Printf.sprintf "bss report: %s: %s" path msg);
        exit 2
    in
    Option.iter
      (fun path ->
        let points = load_points path in
        let current = Offline.last points in
        Printf.printf "metrics: %s (%d record%s)\n" path (List.length points)
          (if List.length points = 1 then "" else "s");
        let baseline = Option.map (fun p -> Offline.last (load_points p)) against in
        print_string (Offline.counter_table ?baseline current);
        if current.Offline.gauges <> [] then print_string (Offline.gauge_table current);
        print_string (Offline.percentile_table current))
      metrics;
    Option.iter
      (fun path ->
        match Offline.parse_traces (read path) with
        | Error msg ->
          prerr_endline (Printf.sprintf "bss report: %s: %s" path msg);
          exit 2
        | Ok rows ->
          Printf.printf "traces: %d in %s, slowest %d:\n" (List.length rows) path
            (min top (List.length rows));
          print_string (Offline.trace_table (Offline.slowest ~k:top rows)))
      trace
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Analyze a previous run's metrics JSONL and trace files offline: percentile tables, \
             counter diffs between runs, and the slowest request traces broken down by phase.")
    Term.(const run $ metrics $ against $ trace $ top)

(* ---------------- systematic fault-schedule exploration ---------------- *)

let torture_cmd =
  let module Harness = Bss_sim.Harness in
  let requests =
    Arg.(value & opt int 12
         & info [ "n"; "requests" ] ~docv:"N"
             ~doc:"Smoke-workload size: $(docv) seeded soak requests per schedule run.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let depth =
    Arg.(value & opt int 1
         & info [ "depth" ] ~docv:"D"
             ~doc:"1 explores every single-fault schedule exhaustively; 2 adds a bounded pairwise \
                   frontier (see --max-pairs).")
  in
  let sites =
    Arg.(value & opt string "all"
         & info [ "sites" ] ~docv:"PREFIXES"
             ~doc:"Comma-separated site-name prefixes to enumerate faults at (e.g. \
                   service.,journal.), or 'all' for every site the census finds.")
  in
  let max_pairs =
    Arg.(value & opt int 256
         & info [ "max-pairs" ] ~docv:"K"
             ~doc:"Bound on depth-2 pairwise schedules, strided across the whole space; 0 removes \
                   the bound. Single-fault schedules are never bounded.")
  in
  let dir =
    Arg.(value & opt string "."
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Scratch directory for the journal chain (cleaned before every schedule run).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write the bss-torture/1 reproducer on violation (default \
                   DIR/torture-reproducer.json); with --replay, where to write the replayed report.")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Skip the sweep; re-run the bss-torture/1 reproducer at $(docv) and report what \
                   this replay observes. Exit 1 when the violation reproduces.")
  in
  let break_invariant =
    Arg.(value & opt (some string) None
         & info [ "break-invariant" ] ~docv:"PREFIX"
             ~doc:"Test hook: treat the first fired fault whose site matches $(docv) as a \
                   synthetic exactly-once violation — demonstrates detection, shrinking and \
                   replay end-to-end on a healthy build.")
  in
  let census_only =
    Arg.(value & flag
         & info [ "census" ]
             ~doc:"Print the fault-opportunity census (site -> hits of a fault-free run) and exit.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the sweep summary as a bss-metrics/1 JSON object (readable \
                                 by bss report) instead of text.")
  in
  let run requests seed depth sites max_pairs dir out replay break_invariant census_only json =
    let cfg =
      {
        Harness.default_config with
        requests;
        seed;
        depth;
        sites = String.split_on_char ',' sites |> List.map String.trim
                |> List.filter (fun s -> s <> "");
        max_pairs;
        dir;
        break_invariant;
      }
    in
    match replay with
    | Some path -> (
      match Harness.reproducer_of_string (read_file path) with
      | Error msg ->
        prerr_endline (Printf.sprintf "bss torture: %s: %s" path msg);
        exit 2
      | Ok r ->
        let replayed = Harness.replay ~dir r in
        print_string (Harness.render_reproducer replayed);
        Option.iter
          (fun p ->
            let oc = open_out p in
            output_string oc (Harness.reproducer_json replayed);
            output_string oc "\n";
            close_out oc;
            Printf.printf "wrote %s\n" p)
          out;
        if replayed.Harness.r_violations <> [] then exit 1)
    | None ->
      if census_only then print_string (Harness.render_census (Harness.census cfg))
      else begin
        let sweep = Harness.explore ~log:prerr_endline cfg in
        if json then print_endline (Harness.summary_json sweep)
        else print_string (Harness.render_sweep sweep);
        (match sweep.Harness.reproducer with
        | None -> ()
        | Some r ->
          let path = Option.value out ~default:(Filename.concat dir "torture-reproducer.json") in
          let oc = open_out path in
          output_string oc (Harness.reproducer_json r);
          output_string oc "\n";
          close_out oc;
          Printf.printf "wrote %s\n" path);
        if sweep.Harness.violated > 0 then exit 1
      end
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Systematically explore fault schedules against the batch-service loop: census every \
             fault opportunity, run every single-fault schedule (and a bounded pairwise frontier) \
             with crash-resume, check the five crash-consistency invariants after each, and shrink \
             any violation to a minimal replayable reproducer.")
    Term.(
      const run $ requests $ seed $ depth $ sites $ max_pairs $ dir $ out $ replay
      $ break_invariant $ census_only $ json)

(* ---------------- the benchmark regression gate ---------------- *)

let bench_cmd =
  let module Regress = Bss_bench.Regress in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Scaling cases stop at n=1000 and fewer timed runs per case (CI-sized, well under two minutes).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the capture as schema-versioned JSON to $(docv).")
  in
  let against =
    Arg.(value & opt (some file) None
         & info [ "against" ] ~docv:"BASELINE"
             ~doc:"Compare this capture to $(docv): exit nonzero when any scaling/* case regresses \
                   beyond the tolerance or any deterministic counter drifts.")
  in
  let check =
    Arg.(value & opt (some file) None
         & info [ "check" ] ~docv:"FILE"
             ~doc:"Skip running the suite; load the capture from $(docv) instead (schema validation \
                   plus, with --against, the comparison).")
  in
  let tolerance =
    Arg.(value & opt int 25
         & info [ "tolerance" ] ~docv:"PCT" ~doc:"Allowed scaling/* slowdown vs the baseline, in percent.")
  in
  let load path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Regress.of_json s with
    | Ok t -> t
    | Error msg ->
      prerr_endline (Printf.sprintf "bss bench: %s: %s" path msg);
      exit 2
  in
  let run quick out against check tolerance =
    let current =
      match check with
      | Some path ->
        let t = load path in
        Printf.printf "loaded %s: schema %s, %d entries, %d counters\n" path t.Regress.schema
          (List.length t.Regress.entries) (List.length t.Regress.counters);
        t
      | None ->
        Printf.printf "bench: running %s suite (fixed seeds, median of warmed runs)\n"
          (if quick then "quick" else "full");
        Regress.run ~progress:print_endline ~quick ()
    in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Regress.to_json current);
        output_string oc "\n";
        close_out oc;
        Printf.printf "wrote %s\n" path)
      out;
    match against with
    | None -> ()
    | Some path ->
      let baseline = load path in
      let c = Regress.against ~tolerance:(float_of_int tolerance /. 100.) ~baseline current in
      print_string c.Regress.table;
      List.iter print_endline c.Regress.lines;
      let checks = List.length current.Regress.entries + List.length c.Regress.lines in
      if c.Regress.failures = [] then
        Printf.printf "gate: ok (%d checks, tolerance %d%%)\n" checks tolerance
      else begin
        Printf.printf "gate: %d failure(s)\n" (List.length c.Regress.failures);
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the fixed-seed benchmark suite and gate against a baseline capture.")
    Term.(const run $ quick $ out $ against $ check $ tolerance)

let () =
  let doc = "near-linear approximation algorithms for scheduling with batch setup times" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "bss" ~doc)
          [
            solve_cmd;
            generate_cmd;
            check_cmd;
            fuzz_cmd;
            serve_cmd;
            soak_cmd;
            netsoak_cmd;
            top_cmd;
            report_cmd;
            torture_cmd;
            bench_cmd;
          ]))
