(* Robustness suites: failure injection against the checker, huge-value
   exactness, and extreme-shape stress.

   The checker is the foundation every other test stands on, so here we
   corrupt known-good schedules in targeted ways and assert the checker
   catches each corruption; then we push the algorithms through inputs
   designed to break naive arithmetic (values near 10^12) and degenerate
   shapes (m >> n, n >> m, all-equal, powers of two). *)

open Bss_util
open Bss_instances
open Bss_core

let check = Alcotest.check
let bool_c = Alcotest.bool

(* ---------------- failure injection ---------------- *)

(* Rebuild a schedule with one segment transformed. *)
let mutate_segment sched ~victim f =
  let out = Schedule.create (Schedule.machines sched) in
  let k = ref 0 in
  List.iter
    (fun (u, (seg : Schedule.seg)) ->
      let seg = if !k = victim then f seg else seg in
      incr k;
      match seg.Schedule.content with
      | Schedule.Setup cls -> Schedule.add_setup out ~machine:u ~cls ~start:seg.start ~dur:seg.dur
      | Schedule.Work job -> Schedule.add_work out ~machine:u ~job ~start:seg.start ~dur:seg.dur)
    (Schedule.all_segments sched);
  out

let drop_segment sched ~victim =
  let out = Schedule.create (Schedule.machines sched) in
  let k = ref 0 in
  List.iter
    (fun (u, (seg : Schedule.seg)) ->
      let keep = !k <> victim in
      incr k;
      if keep then begin
        match seg.Schedule.content with
        | Schedule.Setup cls -> Schedule.add_setup out ~machine:u ~cls ~start:seg.start ~dur:seg.dur
        | Schedule.Work job -> Schedule.add_work out ~machine:u ~job ~start:seg.start ~dur:seg.dur
      end)
    (Schedule.all_segments sched);
  out

let segment_count sched = List.length (Schedule.all_segments sched)

(* Every mutation of a feasible schedule must be flagged by the checker
   for the variant it was feasible under (or remain feasible only if the
   mutation is a no-op — our mutations never are). *)
let prop_checker_catches_mutations =
  QCheck2.Test.make ~name:"checker flags every injected corruption" ~count:200
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* kind = int_range 0 3 in
      let* pick = int_range 0 1000 in
      return (seed, kind, pick))
    (fun (seed, kind, pick) ->
      let rng = Prng.create seed in
      let inst = Helpers.random_instance ~max_m:4 ~max_c:3 ~max_extra_jobs:6 rng in
      let sched = Two_approx.nonpreemptive inst in
      let nsegs = segment_count sched in
      if nsegs = 0 then true
      else begin
        let victim = pick mod nsegs in
        let mutated =
          match kind with
          | 0 ->
            (* shrink a segment: volume or setup-duration violation *)
            Some (mutate_segment sched ~victim (fun s -> { s with Schedule.dur = Rat.div_int s.Schedule.dur 2 }))
          | 1 ->
            (* shift a segment late: overlap or makespan trouble; at
               minimum it desynchronizes nothing — shifting the LAST
               segment is feasibility-preserving, so shift early
               instead, risking overlap with the predecessor *)
            Some
              (mutate_segment sched ~victim (fun s ->
                   { s with Schedule.start = Rat.div_int s.Schedule.start 2 }))
          | 2 -> Some (drop_segment sched ~victim)
          | _ ->
            (* retarget a work segment to another job of a different class *)
            let n = Instance.n inst in
            let all = Schedule.all_segments sched in
            let has_work =
              List.exists
                (fun (_, s) -> match s.Schedule.content with Schedule.Work _ -> true | _ -> false)
                all
            in
            if (not has_work) || n < 2 then None
            else begin
              let rec find k = function
                | [] -> None
                | (_, { Schedule.content = Schedule.Work j; _ }) :: _ when k = victim -> Some j
                | _ :: rest -> find (k + 1) rest
              in
              ignore (find 0 all);
              Some
                (mutate_segment sched ~victim (fun s ->
                     match s.Schedule.content with
                     | Schedule.Work j ->
                       let j' = (j + 1) mod n in
                       if inst.Instance.job_class.(j') <> inst.Instance.job_class.(j) then
                         { s with Schedule.content = Schedule.Work j' }
                       else s
                     | Schedule.Setup _ -> s))
            end
        in
        match mutated with
        | None -> true
        | Some m ->
          (* identical schedules (mutation was identity, e.g. start 0
             halved) stay feasible; anything changed must be caught *)
          let same =
            List.length (Schedule.all_segments m) = nsegs
            && List.for_all2
                 (fun (u1, s1) (u2, s2) ->
                   u1 = u2 && Rat.equal s1.Schedule.start s2.Schedule.start
                   && Rat.equal s1.Schedule.dur s2.Schedule.dur
                   && s1.Schedule.content = s2.Schedule.content)
                 (List.sort compare (Schedule.all_segments m))
                 (List.sort compare (Schedule.all_segments sched))
          in
          same || not (Checker.is_feasible Variant.Nonpreemptive inst m)
      end)

(* Rebuild a schedule onto a machine array widened by [extra]. *)
let widen sched ~extra =
  let out = Schedule.create (Schedule.machines sched + extra) in
  List.iter
    (fun (u, (seg : Schedule.seg)) ->
      match seg.Schedule.content with
      | Schedule.Setup cls -> Schedule.add_setup out ~machine:u ~cls ~start:seg.start ~dur:seg.dur
      | Schedule.Work job -> Schedule.add_work out ~machine:u ~job ~start:seg.start ~dur:seg.dur)
    (Schedule.all_segments sched);
  out

let has_violation pred variant ?makespan_bound inst sched =
  match Checker.check ?makespan_bound variant inst sched with
  | Ok () -> false
  | Error vs -> List.exists pred vs

let test_checker_makespan_exceeded () =
  let inst = Instance.make ~m:2 ~setups:[| 4; 2 |] ~jobs:[| (0, 6); (0, 3); (1, 5) |] in
  let sched = Two_approx.nonpreemptive inst in
  let mk = Schedule.makespan sched in
  (* the exact makespan as bound passes; anything strictly below flags
     Makespan_exceeded with the offending machine *)
  check bool_c "tight bound ok" true
    (Checker.is_feasible ~makespan_bound:mk Variant.Nonpreemptive inst sched);
  check bool_c "violated bound flagged" true
    (has_violation
       (function Checker.Makespan_exceeded _ -> true | _ -> false)
       Variant.Nonpreemptive
       ~makespan_bound:(Rat.sub mk (Rat.of_ints 1 2))
       inst sched);
  (* the bound is orthogonal: no other violation appears *)
  (match Checker.check ~makespan_bound:(Rat.sub mk Rat.one) Variant.Nonpreemptive inst sched with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error vs ->
    check bool_c "only makespan violations" true
      (List.for_all (function Checker.Makespan_exceeded _ -> true | _ -> false) vs))

let test_checker_bad_machine_index () =
  let inst = Instance.make ~m:2 ~setups:[| 3 |] ~jobs:[| (0, 5); (0, 2) |] in
  let sched = Two_approx.nonpreemptive inst in
  (* an over-provisioned but empty tail is tolerated *)
  check bool_c "empty tail ok" true
    (Checker.is_feasible Variant.Nonpreemptive inst (widen sched ~extra:2));
  (* load on a machine the instance does not have is flagged with its index *)
  let stray = widen sched ~extra:2 in
  Schedule.add_setup stray ~machine:(inst.Instance.m + 1) ~cls:0 ~start:Rat.zero
    ~dur:(Rat.of_int 3);
  List.iter
    (fun v ->
      check bool_c "stray machine flagged" true
        (has_violation
           (function
             | Checker.Bad_machine_index { machine } -> machine = inst.Instance.m + 1
             | _ -> false)
           v inst stray))
    Variant.all

(* ---------------- huge values: exactness under ~10^12 inputs ---------------- *)

let huge_instance rng =
  let scale = 1_000_000_000 in
  let c = 1 + Prng.int rng 4 in
  let m = 1 + Prng.int rng 5 in
  let setups = Array.init c (fun _ -> scale + Prng.int rng (scale * 900)) in
  let base = Array.init c (fun i -> (i, scale + Prng.int rng (scale * 900))) in
  let extra = Array.init (Prng.int rng 10) (fun _ -> (Prng.int rng c, scale + Prng.int rng (scale * 900))) in
  Instance.make ~m ~setups ~jobs:(Array.append base extra)

let prop_huge_values_exact =
  QCheck2.Test.make ~name:"algorithms stay exact at ~1e12 input values" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let inst = huge_instance rng in
      let split = Splittable_cj.solve inst in
      let nonp = Nonp_search.solve inst in
      let pmtn = Pmtn_cj.solve inst in
      Checker.is_feasible Variant.Splittable inst split.Splittable_cj.schedule
      && Checker.is_feasible Variant.Nonpreemptive inst nonp.Nonp_search.schedule
      && Checker.is_feasible Variant.Preemptive inst pmtn.Pmtn_cj.schedule
      && Helpers.within_factor ~num:3 ~den:2 split.Splittable_cj.schedule split.Splittable_cj.accepted
      && Helpers.within_factor ~num:3 ~den:2 nonp.Nonp_search.schedule nonp.Nonp_search.accepted
      && Helpers.within_factor ~num:3 ~den:2 pmtn.Pmtn_cj.schedule pmtn.Pmtn_cj.accepted)

(* ---------------- degenerate shapes ---------------- *)

let test_m_much_larger_than_n () =
  let inst = Instance.make ~m:500 ~setups:[| 7; 3 |] ~jobs:[| (0, 11); (1, 2); (1, 9) |] in
  List.iter
    (fun v ->
      let r = Solver.solve ~algorithm:Solver.Approx3_2 v inst in
      Checker.check_exn v inst r.Solver.schedule)
    Variant.all

let test_all_equal () =
  let inst = Instance.make ~m:7 ~setups:(Array.make 7 5) ~jobs:(Array.init 49 (fun i -> (i mod 7, 5))) in
  List.iter
    (fun v ->
      let r = Solver.solve ~algorithm:Solver.Approx3_2 v inst in
      Checker.check_exn v inst r.Solver.schedule;
      check bool_c "certificate" true (Rat.( <= ) (Schedule.makespan r.Solver.schedule) r.Solver.certificate))
    Variant.all

let test_powers_of_two () =
  let inst =
    Instance.make ~m:4
      ~setups:[| 1; 2; 4; 8; 16 |]
      ~jobs:(Array.init 20 (fun i -> (i mod 5, 1 lsl (i mod 10))))
  in
  List.iter
    (fun v ->
      let r = Solver.solve ~algorithm:Solver.Approx3_2 v inst in
      Checker.check_exn v inst r.Solver.schedule)
    Variant.all

let test_single_job_total () =
  let inst = Instance.make ~m:3 ~setups:[| 9 |] ~jobs:[| (0, 1) |] in
  List.iter
    (fun v ->
      let r = Solver.solve ~algorithm:Solver.Approx3_2 v inst in
      Checker.check_exn v inst r.Solver.schedule)
    Variant.all

let test_many_classes_one_job_each () =
  let c = 200 in
  let inst =
    Instance.make ~m:9 ~setups:(Array.init c (fun i -> 1 + (i mod 13)))
      ~jobs:(Array.init c (fun i -> (i, 1 + (i mod 17))))
  in
  List.iter
    (fun v ->
      let r = Solver.solve ~algorithm:Solver.Approx3_2 v inst in
      Checker.check_exn v inst r.Solver.schedule)
    Variant.all

(* large-scale smoke: every search at n = 30k stays feasible and fast *)
let test_large_smoke () =
  let inst = Bss_workloads.Generator.uniform.Bss_workloads.Generator.generate (Prng.create 3) ~m:24 ~n:30_000 in
  let split = Splittable_cj.solve inst in
  Checker.check_exn Variant.Splittable inst split.Splittable_cj.schedule;
  let pmtn = Pmtn_cj.solve inst in
  Checker.check_exn Variant.Preemptive inst pmtn.Pmtn_cj.schedule;
  let nonp = Nonp_search.solve inst in
  Checker.check_exn Variant.Nonpreemptive inst nonp.Nonp_search.schedule

let () =
  Alcotest.run "robustness"
    [
      Helpers.qsuite "injection" [ prop_checker_catches_mutations ];
      ( "injection-targeted",
        [
          Alcotest.test_case "makespan exceeded" `Quick test_checker_makespan_exceeded;
          Alcotest.test_case "bad machine index" `Quick test_checker_bad_machine_index;
        ] );
      Helpers.qsuite "huge-values" [ prop_huge_values_exact ];
      ( "degenerate",
        [
          Alcotest.test_case "m >> n" `Quick test_m_much_larger_than_n;
          Alcotest.test_case "all equal" `Quick test_all_equal;
          Alcotest.test_case "powers of two" `Quick test_powers_of_two;
          Alcotest.test_case "single job" `Quick test_single_job_total;
          Alcotest.test_case "many single-job classes" `Quick test_many_classes_one_job_each;
          Alcotest.test_case "large smoke" `Slow test_large_smoke;
        ] );
    ]
